// Dirty-log benchmarks: the incremental-rescan work is judged on the
// converged scan rate — how many pages KSM examines per one-second interval
// once a cluster has merged, under a given guest churn rate. The linear
// scanner walks every registered page forever; dirty-ring incremental mode
// should pay only for churn. BENCH_dirtylog.json records the pair.
package tpsim

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/simclock"
	"repro/internal/workload"
)

// benchmarkConvergedRescan measures pages scanned and wall time per
// one-second interval on a converged 4-guest DayTrader cluster, rewriting
// churnPct percent of every guest's RAM each interval first.
func benchmarkConvergedRescan(b *testing.B, incremental bool, churnPct int) {
	c := core.BuildCluster(core.ClusterConfig{
		Scale: benchScale, Specs: []workload.Spec{workload.DayTrader()},
		NumVMs: 4, SharedClasses: true, SteadyRounds: 10,
		IncrementalScan: incremental,
	})
	c.Run()
	var scanned uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		for vi, vm := range c.Host.VMs() {
			dirty := vm.GuestPages() * churnPct / 100
			seed := mem.Combine(mem.HashString("bench-dirtylog"), mem.Seed(vi<<24|i))
			for p := 0; p < dirty; p++ {
				vm.FillGuestPage(uint64(p), mem.Combine(seed, mem.Seed(p)))
			}
		}
		before := c.Scanner.Stats().PagesScanned
		b.StartTimer()
		c.Clock.RunFor(simclock.Second)
		b.StopTimer()
		scanned += c.Scanner.Stats().PagesScanned - before
		b.StartTimer()
	}
	b.ReportMetric(float64(scanned)/float64(b.N), "pages-scanned/interval")
}

// BenchmarkConvergedRescan is the BENCH_dirtylog.json grid: scan mode x
// churn rate. The "full/churn0" vs "incremental/churn0" pair is the
// headline — an idle converged cluster should cost the incremental scanner
// almost nothing while the linear scanner keeps walking all of it.
func BenchmarkConvergedRescan(b *testing.B) {
	for _, mode := range []struct {
		label       string
		incremental bool
	}{{"full", false}, {"incremental", true}} {
		for _, churn := range []int{0, 2, 8} {
			mode, churn := mode, churn
			b.Run(fmt.Sprintf("%s/churn%d", mode.label, churn), func(b *testing.B) {
				benchmarkConvergedRescan(b, mode.incremental, churn)
			})
		}
	}
}
