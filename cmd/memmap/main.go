// Command memmap is the measurement tool of §2.A as a standalone
// inspector: it builds a scenario, freezes it, and prints the full
// owner-oriented attribution of host physical memory — per VM, per process,
// per Table IV category — plus the distribution-oriented (PSS) comparison.
//
// This is the simulated analogue of the paper's crash-dump walker plus the
// host kernel module that extracts the KVM memslot tables.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/dump"
	"repro/internal/jvm"
	"repro/internal/report"
	"repro/internal/workload"
)

func main() {
	numVMs := flag.Int("vms", 4, "number of guest VMs")
	shared := flag.Bool("shareclasses", false, "copy a populated shared class cache into every VM")
	scale := flag.Int("scale", 0, "memory scale divisor (0 = default)")
	spec := flag.String("workload", "daytrader", "workload: daytrader, specje, tpcw, tuscany")
	dumpOut := flag.String("dump", "", "write a system dump of the final state to this file (virsh dump + crash workflow)")
	analyzeIn := flag.String("analyze", "", "skip simulation; analyze a previously written dump file offline")
	smaps := flag.Bool("smaps", false, "also print each Java process's smaps and the guest meminfo")
	showTrace := flag.Bool("trace", false, "print the experiment timeline")
	flag.Parse()

	if *analyzeIn != "" {
		analyzeOffline(*analyzeIn)
		return
	}

	var w workload.Spec
	switch *spec {
	case "daytrader":
		w = workload.DayTrader()
	case "specje":
		w = workload.SPECjEnterprise()
	case "tpcw":
		w = workload.TPCW()
	case "tuscany":
		w = workload.Tuscany()
	default:
		fmt.Fprintf(os.Stderr, "memmap: unknown workload %q\n", *spec)
		os.Exit(2)
	}

	c := core.BuildCluster(core.ClusterConfig{
		Scale:         *scale,
		Specs:         []workload.Spec{w},
		NumVMs:        *numVMs,
		SharedClasses: *shared,
		SteadyRounds:  20,
		EnableTrace:   *showTrace,
	})
	c.Run()
	if *dumpOut != "" {
		f, err := os.Create(*dumpOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "memmap: %v\n", err)
			os.Exit(1)
		}
		d := dump.Capture(c.Host, c.Kernels)
		if err := d.Write(f); err != nil {
			fmt.Fprintf(os.Stderr, "memmap: %v\n", err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("system dump written to %s (analyze offline with -analyze %s)\n\n", *dumpOut, *dumpOut)
	}
	a := c.Analyze()
	sc := c.Cfg.Scale

	if *showTrace {
		fmt.Println("Experiment timeline:")
		fmt.Println(c.Trace)
	}

	if *smaps {
		for _, w := range c.Workers {
			fmt.Println(w.JVM.Process().FormatSmaps())
		}
		for i, k := range c.Kernels {
			fmt.Printf("guest %d meminfo:\n%s\n\n", i+1, k.MemInfo())
		}
	}

	fmt.Printf("Host: %s, %d guest VMs running %s (shared classes: %v)\n",
		c.Host.Name(), *numVMs, w.Name, *shared)
	fmt.Printf("Attributed guest memory: %s MB; TPS savings: %s MB; shared frames: %d\n\n",
		report.MB(a.TotalGuestBytes()*int64(sc)), report.MB(a.TotalSavingsBytes()*int64(sc)), a.SharedFrameCount())

	t := &report.Table{Title: "Per-VM breakdown (owner-oriented, paper-scale MB)",
		Headers: []string{"VM", "Java", "Other procs", "Kernel", "VM overhead", "Total", "TPS saving"}}
	for _, b := range a.VMBreakdowns() {
		t.AddRow(b.VMName,
			report.MB(b.JavaBytes*int64(sc)), report.MB(b.OtherProcBytes*int64(sc)),
			report.MB(b.KernelBytes*int64(sc)), report.MB(b.VMOverheadBytes*int64(sc)),
			report.MB(b.Total()*int64(sc)), report.MB(b.SavingsBytes*int64(sc)))
	}
	fmt.Println(t)

	jt := &report.Table{Title: "Per-JVM Table IV breakdown (paper-scale MB)",
		Headers: []string{"JVM", "PID", "Category", "Mapped", "Owned", "Shared w/ TPS"}}
	for _, jb := range a.JavaBreakdowns() {
		first := true
		for _, cat := range jvm.Categories() {
			cu := jb.ByCat[cat]
			name, pid := "", ""
			if first {
				name, pid = jb.VMName+" "+jb.ProcName, fmt.Sprint(jb.PID)
				first = false
			}
			jt.AddRow(name, pid, cat,
				report.MB(cu.MappedBytes*int64(sc)), report.MB(cu.OwnedBytes*int64(sc)), report.MB(cu.SharedBytes*int64(sc)))
		}
	}
	fmt.Println(jt)

	pt := &report.Table{Title: "Accounting comparison per Java process (paper-scale MB)",
		Headers: []string{"Process", "Owner-oriented", "Distribution-oriented (PSS)"}}
	for i, wkr := range c.Workers {
		proc := wkr.JVM.Process()
		pt.AddRow(fmt.Sprintf("VM %d %s", i+1, proc.Name),
			report.MB(a.OwnerOrientedBytes(proc)*int64(sc)),
			fmt.Sprintf("%.0f", a.PSS(proc)*float64(sc)/(1<<20)))
	}
	fmt.Println(pt)
}

// analyzeOffline loads a dump file and runs the crash-utility-style
// analysis, printing the same breakdowns the live path does.
func analyzeOffline(path string) {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "memmap: %v\n", err)
		os.Exit(1)
	}
	defer f.Close()
	d, err := dump.Read(f)
	if err != nil {
		fmt.Fprintf(os.Stderr, "memmap: %v\n", err)
		os.Exit(1)
	}
	a := dump.Analyze(d)
	fmt.Printf("Offline analysis of dump from host %s: %d guests, %s MB attributed\n\n",
		d.HostName, len(d.Guests), report.MB(a.TotalGuestBytes()))
	t := &report.Table{Title: "Per-VM breakdown (simulated-scale MB)",
		Headers: []string{"VM", "Java", "Other procs", "Kernel", "VM overhead", "Total", "TPS saving"}}
	for _, b := range a.VMBreakdowns() {
		t.AddRow(b.VMName, report.MB1(b.JavaBytes), report.MB1(b.OtherProcBytes),
			report.MB1(b.KernelBytes), report.MB1(b.VMOverheadBytes),
			report.MB1(b.Total()), report.MB1(b.SavingsBytes))
	}
	fmt.Println(t)
	jt := &report.Table{Title: "Per-JVM Table IV breakdown (simulated-scale MB)",
		Headers: []string{"JVM", "PID", "Category", "Mapped", "Shared w/ TPS"}}
	for _, jb := range a.JavaBreakdowns() {
		first := true
		for _, cat := range jvm.Categories() {
			cu := jb.ByCat[cat]
			name, pid := "", ""
			if first {
				name, pid = jb.VMName+" "+jb.ProcName, fmt.Sprint(jb.PID)
				first = false
			}
			jt.AddRow(name, pid, cat, report.MB1(cu.MappedBytes), report.MB1(cu.SharedBytes))
		}
	}
	fmt.Println(jt)
}
