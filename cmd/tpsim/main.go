// Command tpsim reruns the experiments of "Increasing the Transparent Page
// Sharing in Java" (ISPASS 2013) on the simulated stack and prints
// paper-style reports.
//
// Usage:
//
//	tpsim [-scale N] [-seed S] [-quick] <experiment> [...]
//
// Experiments: table1 table2 table3 table4 fig2 fig3a fig3b fig3c fig4
// fig5a fig5b fig5c fig6 fig7 fig8, or "all". fig2/fig3a share one run, as
// do fig4/fig5a; requesting either id prints that part.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
)

func main() {
	scale := flag.Int("scale", 0, "memory scale divisor (0 = default 16; smaller = slower, more faithful)")
	seed := flag.Uint64("seed", 0, "randomization seed")
	quick := flag.Bool("quick", false, "shorter steady state and sweeps")
	csv := flag.Bool("csv", false, "emit CSV instead of rendered reports")
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() == 0 {
		usage()
		os.Exit(2)
	}
	opts := core.Options{Scale: *scale, Seed: core.SeedFromUint64(*seed), Quick: *quick}
	asCSV = *csv
	for _, id := range flag.Args() {
		if err := run(id, opts); err != nil {
			fmt.Fprintf(os.Stderr, "tpsim: %v\n", err)
			os.Exit(1)
		}
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `tpsim — rerun the ISPASS 2013 TPS-in-Java experiments

usage: tpsim [-scale N] [-seed S] [-quick] <experiment>...

experiments:
  table1..table4   the paper's configuration tables
  fig2, fig3a      baseline 4x DayTrader breakdown (one run, two views)
  fig3b            DayTrader / SPECjEnterprise / TPC-W baseline
  fig3c            3x Tuscany bigbank baseline
  fig4, fig5a      the same with the shared class cache copied to all VMs
  fig5b, fig5c     mixed and Tuscany breakdowns with caches
  fig6             PowerVM: totals before/after sharing, +/- preloading
  fig7             DayTrader throughput vs 1..9 guest VMs
  fig8             SPECjEnterprise score vs 5..8 guest VMs
  check            evaluate every paper claim on quick runs (self-test)
  all              everything above
`)
}

// asCSV selects CSV output (set by -csv).
var asCSV bool

func printMem(f core.MemFigure) {
	if asCSV {
		fmt.Print(core.MemFigureTable(f).CSV())
		return
	}
	fmt.Println(core.RenderMemFigure(f))
}

func printJava(f core.JavaFigure) {
	if asCSV {
		fmt.Print(core.JavaFigureTable(f).CSV())
		return
	}
	fmt.Println(core.RenderJavaFigure(f))
}

func printSweep(f core.SweepFigure) {
	if asCSV {
		fmt.Print(core.SweepFigureTable(f).CSV())
		return
	}
	fmt.Println(core.RenderSweepFigure(f))
}

func printPower(f core.PowerFigure) {
	if asCSV {
		fmt.Print(core.PowerFigureTable(f).CSV())
		return
	}
	fmt.Println(core.RenderPowerFigure(f))
}

func printTable(t interface {
	String() string
	CSV() string
}) {
	if asCSV {
		fmt.Print(t.CSV())
		return
	}
	fmt.Println(t)
}

func run(id string, opts core.Options) error {
	start := time.Now()
	switch id {
	case "table1":
		printTable(core.Table1())
	case "table2":
		printTable(core.Table2())
	case "table3":
		printTable(core.Table3())
	case "table4":
		printTable(core.Table4())
	case "fig2", "fig3a":
		memF, javaF := core.Fig2(opts)
		if id == "fig2" {
			printMem(memF)
		} else {
			printJava(javaF)
		}
	case "fig4", "fig5a":
		memF, javaF := core.Fig4(opts)
		if id == "fig4" {
			printMem(memF)
		} else {
			printJava(javaF)
		}
	case "fig3b":
		printJava(core.Fig3b(opts))
	case "fig3c":
		printJava(core.Fig3c(opts))
	case "fig5b":
		printJava(core.Fig5b(opts))
	case "fig5c":
		printJava(core.Fig5c(opts))
	case "fig6":
		printPower(core.Fig6(opts))
	case "fig7":
		printSweep(core.Fig7(opts))
	case "fig8":
		printSweep(core.Fig8(opts))
	case "check":
		out, ok := core.RunClaims(opts)
		fmt.Print(out)
		if !ok {
			return fmt.Errorf("some claims failed")
		}
	case "all":
		for _, sub := range []string{"table1", "table2", "table3", "table4",
			"fig2", "fig3a", "fig3b", "fig3c", "fig4", "fig5a", "fig5b", "fig5c",
			"fig6", "fig7", "fig8"} {
			if err := run(sub, opts); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("unknown experiment %q (see -h)", id)
	}
	if !asCSV {
		fmt.Printf("[%s done in %v]\n\n", id, time.Since(start).Round(time.Millisecond))
	}
	return nil
}
