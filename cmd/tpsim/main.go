// Command tpsim reruns the experiments of "Increasing the Transparent Page
// Sharing in Java" (ISPASS 2013) on the simulated stack and prints
// paper-style reports.
//
// Usage:
//
//	tpsim [-scale N] [-seed S] [-quick] [-jobs N] <experiment> [...]
//
// Experiments: table1 table2 table3 table4 fig2 fig3a fig3b fig3c fig4
// fig5a fig5b fig5c fig6 fig7 fig8 thp-tradeoff dirtylog jitshare ksmshard
// chaos datacenter, or "all" (which runs everything except dirtylog,
// jitshare, ksmshard, chaos and datacenter). fig2/fig3a share one run, as do
// fig4/fig5a; requesting either id prints that part. The -chaos flag appends
// the chaos sweep; -chaos-seed fixes its (and the datacenter sweep's) fault
// schedule; -incremental turns on dirty-ring incremental KSM rescans;
// -jitshare attaches the ShareJIT shared code archive; -ksm-shards
// partitions the KSM scanner across a worker pool (outcomes byte-identical
// at every count); -datacenter appends the multi-host placement ×
// live-migration sweep sized by -hosts and -net-gbps.
//
// Independent cluster runs (sweep points, error-bar repetitions, the
// experiments of "all") fan out across -jobs workers. Results are collected
// in submission order, so stdout is byte-identical at every -jobs width;
// progress and timing go to stderr.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/thp"
)

func main() {
	scale := flag.Int("scale", 0, "memory scale divisor (0 = default 16; smaller = slower, more faithful)")
	seed := flag.Uint64("seed", 0, "randomization seed")
	quick := flag.Bool("quick", false, "shorter steady state and sweeps")
	csv := flag.Bool("csv", false, "emit CSV instead of rendered reports")
	jobs := flag.Int("jobs", 0, "parallel cluster runs (0 = GOMAXPROCS, 1 = fully sequential)")
	timeline := flag.Bool("timeline", false, "append an ASCII timeline of sampled metrics after each experiment")
	metricsCSV := flag.Bool("metrics-csv", false, "append the sampled metrics series as CSV after each experiment")
	thpFlag := flag.String("thp", "never", "transparent huge page policy: never|madvise|always|fhpm")
	thpKSMSplit := flag.Bool("thp-ksm-split", false, "let KSM split huge pages over verified duplicate content")
	thpMaxPtesNone := flag.Int("thp-max-ptes-none", 0, "khugepaged max_ptes_none collapse budget (0 = default 64)")
	tlbEntries := flag.Int("tlb-entries", 0, "modeled TLB size for the reach estimate (0 = default 1024)")
	chaos := flag.Bool("chaos", false, "run the fault-injection chaos sweep (guest kills, demand spikes, KSM stalls)")
	chaosSeed := flag.Uint64("chaos-seed", 0, "fault schedule seed for -chaos and -datacenter (fixed seed = byte-identical output)")
	incremental := flag.Bool("incremental", false, "enable dirty-ring incremental KSM rescans on every cluster")
	jitShare := flag.Bool("jitshare", false, "attach the ShareJIT-style shared code archive to every JVM")
	ksmShards := flag.Int("ksm-shards", 0, "KSM scanner shard count (0/1 = single-threaded; outcomes identical at every count)")
	dcFlag := flag.Bool("datacenter", false, "run the multi-host placement × live-migration sweep")
	hosts := flag.Int("hosts", 0, "host count for -datacenter (0 = 3)")
	netGbps := flag.Float64("net-gbps", 0, "migration link rate in Gb/s for -datacenter (0 = 10)")
	flag.Usage = usage
	flag.Parse()
	ids := flag.Args()
	if *chaos {
		ids = append(ids, "chaos")
	}
	if *dcFlag {
		ids = append(ids, "datacenter")
	}
	if len(ids) == 0 {
		usage()
		os.Exit(2)
	}
	thpPolicy, err := thp.ParsePolicy(*thpFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tpsim: %v\n", err)
		os.Exit(2)
	}
	opts := core.Options{
		Scale:           *scale,
		Seed:            core.SeedFromUint64(*seed),
		Quick:           *quick,
		Jobs:            *jobs,
		Progress:        printProgress,
		THPPolicy:       thpPolicy,
		THPKSMSplit:     *thpKSMSplit,
		THPMaxPtesNone:  *thpMaxPtesNone,
		TLBEntries:      *tlbEntries,
		ChaosSeed:       *chaosSeed,
		IncrementalScan: *incremental,
		JITShare:        *jitShare,
		KSMShards:       *ksmShards,
		DCHosts:         *hosts,
		NetGbps:         *netGbps,
	}
	asCSV = *csv
	showTimeline = *timeline
	showMetricsCSV = *metricsCSV
	for _, id := range ids {
		if err := run(id, opts); err != nil {
			fmt.Fprintf(os.Stderr, "tpsim: %v\n", err)
			os.Exit(1)
		}
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `tpsim — rerun the ISPASS 2013 TPS-in-Java experiments

usage: tpsim [-scale N] [-seed S] [-quick] [-jobs N] [-timeline] [-metrics-csv]
             [-thp never|madvise|always|fhpm] [-thp-ksm-split]
             [-thp-max-ptes-none N] [-tlb-entries N] [-incremental]
             [-jitshare] [-ksm-shards N] [-chaos] [-chaos-seed S] [-datacenter]
             [-hosts N] [-net-gbps G] <experiment>...

experiments:
  table1..table4   the paper's configuration tables
  fig2, fig3a      baseline 4x DayTrader breakdown (one run, two views)
  fig3b            DayTrader / SPECjEnterprise / TPC-W baseline
  fig3c            3x Tuscany bigbank baseline
  fig4, fig5a      the same with the shared class cache copied to all VMs
  fig5b, fig5c     mixed and Tuscany breakdowns with caches
  fig6             PowerVM: totals before/after sharing, +/- preloading
  fig7             DayTrader throughput vs 1..9 guest VMs
  fig8             SPECjEnterprise score vs 5..8 guest VMs
  thp-tradeoff     THP policy sweep: huge-page coverage vs KSM sharing
  dirtylog         converged KSM rescan cost: linear vs dirty-ring incremental
  jitshare         code-area sharing: private JIT output vs ShareJIT PIC archive
  ksmshard         sharded KSM scanning: identical outcomes at 1/2/4 shards
  chaos            fault-injection sweep: kills/restarts, demand spikes, stalls
  datacenter       multi-host sweep: placement × migration protocol under faults
  check            evaluate every paper claim on quick runs (self-test)
  all              everything above except dirtylog, jitshare, ksmshard, chaos,
                   datacenter

-thp applies a huge-page policy to the paper experiments themselves
(thp-tradeoff sweeps its own policies and ignores the flag). The fhpm policy
splits and re-promotes huge pages per subpage: KSM carves only verified
duplicate subpages and khugepaged demotes cold zero subpages, so the rest of
the block keeps its TLB reach. -thp-max-ptes-none bounds how many absent
pages a collapse (or fhpm re-absorption) may zero-fill; -tlb-entries sizes
the analyzer's modeled TLB for the reach estimate.
-incremental likewise applies dirty-ring incremental KSM rescans to the paper
experiments (dirtylog sweeps both modes itself and ignores the flag).
-jitshare attaches the ShareJIT-style shared code archive to every JVM of the
paper experiments, making tier-1 JIT code position-independent and
cross-process shareable (jitshare sweeps both modes itself and ignores the
flag).
-ksm-shards partitions the KSM scanner's merge state by checksum bucket and
scans batches on a worker pool. Figures are byte-identical at every count —
sharding changes scan-pass wall time only (ksmshard sweeps its own shard
axis and ignores the flag; BENCH_ksmshard.json has the wall-time scaling).
-chaos appends the chaos experiment to the requested list (it is not part
of "all"); -chaos-seed drives its deterministic fault schedule.
-datacenter appends the multi-host sweep: guests placed round-robin vs by
content-fingerprint similarity, live-migrated with a naive byte-copy vs the
content-addressed descriptor protocol, under host kills and drains. -hosts
sizes the cluster and -net-gbps the migration link; -chaos-seed drives its
fault schedule too.
`)
}

// asCSV selects CSV output (set by -csv).
var asCSV bool

// showTimeline / showMetricsCSV append telemetry views after each
// experiment's figure output (set by -timeline / -metrics-csv).
var (
	showTimeline   bool
	showMetricsCSV bool
)

// printProgress reports fanned-out job completions on stderr.
func printProgress(ev core.JobEvent) {
	if ev.Done {
		fmt.Fprintf(os.Stderr, "[%d/%d] %s done in %v\n",
			ev.Index+1, ev.Total, ev.Label, ev.Elapsed.Round(time.Millisecond))
	}
}

func memText(f core.MemFigure) string {
	if asCSV {
		return core.MemFigureTable(f).CSV()
	}
	return core.RenderMemFigure(f) + "\n"
}

func javaText(f core.JavaFigure) string {
	if asCSV {
		return core.JavaFigureTable(f).CSV()
	}
	return core.RenderJavaFigure(f) + "\n"
}

func sweepText(f core.SweepFigure) string {
	if asCSV {
		return core.SweepFigureTable(f).CSV()
	}
	return core.RenderSweepFigure(f) + "\n"
}

func thpText(f core.THPFigure) string {
	if asCSV {
		return core.THPFigureTable(f).CSV()
	}
	return core.RenderTHPFigure(f) + "\n"
}

func chaosText(f core.ChaosFigure) string {
	if asCSV {
		return core.ChaosFigureTable(f).CSV()
	}
	return core.RenderChaosFigure(f) + "\n"
}

func datacenterText(f core.DatacenterFigure) string {
	if asCSV {
		return core.DatacenterFigureTable(f).CSV()
	}
	return core.RenderDatacenterFigure(f) + "\n"
}

func dirtyLogText(f core.DirtyLogFigure) string {
	if asCSV {
		return core.DirtyLogFigureTable(f).CSV()
	}
	return core.RenderDirtyLogFigure(f) + "\n"
}

func jitShareText(f core.JITShareFigure) string {
	if asCSV {
		return core.JITShareFigureTable(f).CSV()
	}
	return core.RenderJITShareFigure(f) + "\n"
}

func ksmShardText(f core.KSMShardFigure) string {
	if asCSV {
		return core.KSMShardFigureTable(f).CSV()
	}
	return core.RenderKSMShardFigure(f) + "\n"
}

func powerText(f core.PowerFigure) string {
	if asCSV {
		return core.PowerFigureTable(f).CSV()
	}
	return core.RenderPowerFigure(f) + "\n"
}

func tableText(t interface {
	String() string
	CSV() string
}) string {
	if asCSV {
		return t.CSV()
	}
	return t.String() + "\n"
}

// allIDs lists every experiment "all" runs, in print order.
var allIDs = []string{"table1", "table2", "table3", "table4",
	"fig2", "fig3a", "fig3b", "fig3c", "fig4", "fig5a", "fig5b", "fig5c",
	"fig6", "fig7", "fig8", "thp-tradeoff"}

// render produces the stdout text for one experiment id: the figure itself
// plus, when -timeline or -metrics-csv is set, the telemetry of every
// cluster the experiment ran. Each call gets its own collector, so in "all"
// mode the series ride along inside the experiment's output string and the
// submission-order collection keeps stdout unchanged at any -jobs width.
func render(id string, opts core.Options) (string, error) {
	if (showTimeline || showMetricsCSV) && id != "check" {
		// "check" fans out claims that share one Options value, so per-claim
		// collection order would not be deterministic; the self-test output
		// stays figure-only.
		opts.Telemetry = core.NewTelemetry()
	}
	out, err := renderFigure(id, opts)
	if err != nil || opts.Telemetry == nil {
		return out, err
	}
	if showTimeline {
		out += opts.Telemetry.RenderTimelines()
	}
	if showMetricsCSV {
		out += opts.Telemetry.CSV()
	}
	return out, nil
}

// renderFigure produces the figure text for one experiment id.
func renderFigure(id string, opts core.Options) (string, error) {
	switch id {
	case "table1":
		return tableText(core.Table1()), nil
	case "table2":
		return tableText(core.Table2()), nil
	case "table3":
		return tableText(core.Table3()), nil
	case "table4":
		return tableText(core.Table4()), nil
	case "fig2", "fig3a":
		memF, javaF := core.Fig2(opts)
		if id == "fig2" {
			return memText(memF), nil
		}
		return javaText(javaF), nil
	case "fig4", "fig5a":
		memF, javaF := core.Fig4(opts)
		if id == "fig4" {
			return memText(memF), nil
		}
		return javaText(javaF), nil
	case "fig3b":
		return javaText(core.Fig3b(opts)), nil
	case "fig3c":
		return javaText(core.Fig3c(opts)), nil
	case "fig5b":
		return javaText(core.Fig5b(opts)), nil
	case "fig5c":
		return javaText(core.Fig5c(opts)), nil
	case "fig6":
		return powerText(core.Fig6(opts)), nil
	case "fig7":
		return sweepText(core.Fig7(opts)), nil
	case "fig8":
		return sweepText(core.Fig8(opts)), nil
	case "thp-tradeoff":
		return thpText(core.THPTradeoff(opts)), nil
	case "dirtylog":
		return dirtyLogText(core.DirtyLogSweep(opts)), nil
	case "jitshare":
		return jitShareText(core.JITShareSweep(opts)), nil
	case "ksmshard":
		return ksmShardText(core.KSMShardSweep(opts)), nil
	case "chaos":
		return chaosText(core.Chaos(opts)), nil
	case "datacenter":
		return datacenterText(core.Datacenter(opts)), nil
	case "check":
		out, ok := core.RunClaims(opts)
		if !ok {
			return out, fmt.Errorf("some claims failed")
		}
		return out, nil
	default:
		return "", fmt.Errorf("unknown experiment %q (see -h)", id)
	}
}

func run(id string, opts core.Options) error {
	start := time.Now()
	if id == "all" {
		// The experiments are independent; fan them out and print in order.
		// Each inner sweep fans out its own cluster runs on the same width.
		type result struct {
			out string
			err error
		}
		runner := core.NewRunner(opts.Jobs)
		if opts.Progress != nil {
			runner.OnProgress(opts.Progress)
		}
		jobs := make([]core.Job[result], len(allIDs))
		for i, sub := range allIDs {
			sub := sub
			jobs[i] = core.Job[result]{Label: sub, Run: func() result {
				out, err := render(sub, opts)
				return result{out: out, err: err}
			}}
		}
		for i, r := range core.RunAll(runner, jobs) {
			if r.err != nil {
				return r.err
			}
			fmt.Print(r.out)
			if !asCSV {
				fmt.Fprintf(os.Stderr, "[%s done]\n", allIDs[i])
			}
		}
		fmt.Fprintf(os.Stderr, "[all done in %v]\n", time.Since(start).Round(time.Millisecond))
		return nil
	}
	out, err := render(id, opts)
	if err != nil {
		if out != "" {
			fmt.Print(out)
		}
		return err
	}
	fmt.Print(out)
	if !asCSV {
		fmt.Fprintf(os.Stderr, "[%s done in %v]\n", id, time.Since(start).Round(time.Millisecond))
	}
	return nil
}
