// Command cdstool creates, inspects and compares shared class cache images
// — the artifact §4.C copies into every guest VM's base image.
//
// Usage:
//
//	cdstool -workload daytrader [-scale N] [-capacity MB] create   # cold run, print summary
//	cdstool -workload daytrader dump                               # list entries
//	cdstool -workload daytrader diff                               # two cold runs, byte-compare
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"

	"repro/internal/classlib"
	"repro/internal/jvm"
	"repro/internal/report"
	"repro/internal/workload"
)

func main() {
	spec := flag.String("workload", "daytrader", "daytrader, specje, tpcw, tuscany")
	scale := flag.Int("scale", 16, "memory scale divisor")
	capacity := flag.Int64("capacity", 0, "override cache capacity in MB (0 = Table III value)")
	flag.Parse()

	var w workload.Spec
	switch *spec {
	case "daytrader":
		w = workload.DayTrader()
	case "specje":
		w = workload.SPECjEnterprise()
	case "tpcw":
		w = workload.TPCW()
	case "tuscany":
		w = workload.Tuscany()
	default:
		fmt.Fprintf(os.Stderr, "cdstool: unknown workload %q\n", *spec)
		os.Exit(2)
	}
	if *capacity > 0 {
		w.CacheBytes = *capacity << 20
	}
	corpus := classlib.NewCorpus(jvm.RuntimeVersion, *scale)

	cmd := "create"
	if flag.NArg() > 0 {
		cmd = flag.Arg(0)
	}
	switch cmd {
	case "create":
		img := workload.BuildCache(corpus, w, *scale)
		fmt.Printf("cache %q (version %s)\n", img.Name, img.Version)
		fmt.Printf("  capacity:   %s MB (paper-scale %s MB)\n", report.MB1(img.Capacity), report.MB(img.Capacity*int64(*scale)))
		fmt.Printf("  populated:  %s MB in %d classes\n", report.MB1(img.UsedBytes()), img.ClassCount())
		fmt.Printf("  overflowed: %d classes\n", len(img.Overflowed))
		// The paper: ~90 % middleware classes, ~10 % Java system classes.
		sys := 0
		for _, e := range img.Entries() {
			if cl, ok := corpus.Class(e.Name); ok && cl.Group == classlib.GroupJDK {
				sys++
			}
		}
		fmt.Printf("  system-class fraction: %.1f%% (paper: ≈10%%)\n", 100*float64(sys)/float64(img.ClassCount()))
	case "dump":
		img := workload.BuildCache(corpus, w, *scale)
		t := &report.Table{Headers: []string{"#", "Offset", "Size", "Class"}}
		for i, e := range img.Entries() {
			if i >= 40 && i < img.ClassCount()-5 {
				if i == 40 {
					t.AddRow("...", "", "", fmt.Sprintf("(%d more)", img.ClassCount()-45))
				}
				continue
			}
			t.AddRow(i, e.Offset, e.Size, e.Name)
		}
		fmt.Println(t)
	case "diff":
		a := workload.BuildCache(corpus, w, *scale).FileBytes(corpus)
		b := workload.BuildCache(corpus, w, *scale).FileBytes(corpus)
		if bytes.Equal(a, b) {
			fmt.Println("two independent cold runs produced byte-identical cache files")
			fmt.Println("(this determinism is what makes copying one file to all VMs equivalent")
			fmt.Println(" to each VM populating its own — and what lets KSM merge the pages)")
		} else {
			fmt.Println("MISMATCH: cold runs diverged — layout determinism is broken")
			os.Exit(1)
		}
	default:
		fmt.Fprintf(os.Stderr, "cdstool: unknown command %q\n", cmd)
		os.Exit(2)
	}
}
