// ShareJIT benchmarks: the code-archive work is judged on the code-area
// sharing ratio — what fraction of CatJITCode bytes KSM deduplicates on a
// multi-JVM cluster, measured after warm-up and again after steady state so
// the re-JIT decay is visible. BENCH_jitshare.json records the off/pic pair.
package tpsim

import (
	"testing"

	"repro/internal/core"
	"repro/internal/jvm"
	"repro/internal/workload"
)

// codeSharingPct is the cluster-wide CatJITCode shared/mapped ratio in
// percent, via the standard read-only analysis walk.
func codeSharingPct(c *core.Cluster) float64 {
	var mapped, shared int64
	for _, jb := range c.Analyze().JavaBreakdowns() {
		cu := jb.ByCat[jvm.CatJITCode]
		mapped += cu.MappedBytes
		shared += cu.SharedBytes
	}
	if mapped == 0 {
		return 0
	}
	return 100 * float64(shared) / float64(mapped)
}

// benchmarkCodeSharing builds the Tuscany multi-JVM cluster (two Java
// processes per guest multiply the identical code mappings) with or without
// the shared code archive and reports the warm and end sharing ratios.
func benchmarkCodeSharing(b *testing.B, share bool) {
	var warm, end, saving float64
	for i := 0; i < b.N; i++ {
		c := core.BuildCluster(core.ClusterConfig{
			Scale: benchScale, Specs: []workload.Spec{workload.Tuscany()},
			NumVMs: 3, JVMsPerGuest: 2, SharedClasses: true, SteadyRounds: 15,
			JITShare: share,
		})
		c.RunWarmup()
		b.StopTimer()
		warm += codeSharingPct(c)
		b.StartTimer()
		c.RunSteady()
		b.StopTimer()
		end += codeSharingPct(c)
		saving += float64(c.Scanner.Stats().SavedBytes>>10) / 1024 * float64(c.Cfg.Scale)
		b.StartTimer()
	}
	n := float64(b.N)
	b.ReportMetric(warm/n, "ratio-warm-%")
	b.ReportMetric(end/n, "ratio-end-%")
	b.ReportMetric(saving/n, "ksm-saving-MB")
}

// BenchmarkCodeSharing is the BENCH_jitshare.json pair: "off" is the seed
// behaviour (the paper's finding that JIT output never shares), "pic" is
// the ShareJIT archive with position-independent bodies.
func BenchmarkCodeSharing(b *testing.B) {
	b.Run("off", func(b *testing.B) { benchmarkCodeSharing(b, false) })
	b.Run("pic", func(b *testing.B) { benchmarkCodeSharing(b, true) })
}
