package tpsim

import (
	"io"

	"repro/internal/core"
	"repro/internal/dump"
	"repro/internal/placement"
	"repro/internal/trace"
)

// System dumps (§2.B): capture a cluster's full translation state into a
// serializable snapshot and analyze it offline, like the paper's
// crash/virsh-dump workflow.

// Dump is a frozen, serializable snapshot of a cluster's memory state.
type Dump = dump.Dump

// CaptureDump freezes the cluster (all three translation layers of every
// guest plus frame checksums).
func CaptureDump(c *Cluster) *Dump {
	return dump.Capture(c.Host, c.Kernels)
}

// ReadDump loads a serialized dump.
func ReadDump(r io.Reader) (*Dump, error) { return dump.Read(r) }

// AnalyzeDump runs the owner-oriented attribution offline; results are
// identical to Cluster.Analyze on the live state.
func AnalyzeDump(d *Dump) *dump.Analysis { return dump.Analyze(d) }

// VM placement (Memory Buddies baseline, §6 related work).

// PlacementRequest is one VM to place across hosts.
type PlacementRequest = placement.Request

// FingerprintWorkload runs a workload solo and fingerprints its memory
// content for similarity-based placement.
func FingerprintWorkload(spec WorkloadSpec, shared bool, scale int, seed Seed) placement.Fingerprint {
	return core.FingerprintSpec(spec, shared, scale, seed)
}

// PlaceRoundRobin spreads n requests over hosts without content knowledge.
var PlaceRoundRobin = placement.RoundRobin

// PlaceBySimilarity packs requests with the largest fingerprint overlap
// onto the same hosts.
var PlaceBySimilarity = placement.BySimilarity

// EvaluatePlacement measures a placement end to end (one simulated host per
// bin, KSM running).
var EvaluatePlacement = core.EvaluatePlacement

// Experiment timeline (ClusterConfig.EnableTrace).

// TraceLog is the recorded event timeline of a cluster run.
type TraceLog = trace.Log

// TraceEvent is one timeline entry.
type TraceEvent = trace.Event
