// Content-store benchmarks: the page-store refactor is judged on two
// axes — the wall-clock cost of a full KSM scan pass over a large cluster
// (checksums and comparisons should hit the per-content caches, not re-hash
// 4 KiB per frame per pass) and the simulator's own live heap for a built
// cluster (content descriptors and interned blobs should replace the
// per-frame byte arrays). BENCH_content.json records the before/after pair.
package tpsim

import (
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/workload"
)

// buildLargeCluster is the 4-guest DayTrader scenario both content
// benchmarks share: the Table-1 shape at bench scale, one guest wider than
// the paper's trio so cross-VM sharing structure is non-trivial.
func buildLargeCluster() *core.Cluster {
	return core.BuildCluster(core.ClusterConfig{
		Scale: benchScale, Specs: []workload.Spec{workload.DayTrader()},
		NumVMs: 4, SharedClasses: true, SteadyRounds: 10,
	})
}

// BenchmarkScanPassLargeCluster measures one full cold KSM pass over a
// fully populated but unmerged 4-guest cluster — the volatility-gate pass
// that checksums every resident page. This is the content-heavy phase:
// steady-state rescans were already cheap under the old per-frame checksum
// cache, but a cold pass hashes every page, so it is where once-per-content
// checksums (and the streamed seeded checksum that never touches page
// bytes) show up.
func BenchmarkScanPassLargeCluster(b *testing.B) {
	var c *core.Cluster
	var pages int
	build := func() {
		c = core.BuildCluster(core.ClusterConfig{
			Scale: benchScale, Specs: []workload.Spec{workload.DayTrader()},
			NumVMs: 4, SharedClasses: true, SteadyRounds: 10,
			DisableKSM: true,
		})
		c.Run()
		pages = 0
		for _, vm := range c.Host.VMs() {
			pages += vm.GuestPages()
		}
	}
	build()
	const passes = 1
	b.SetBytes(passes * int64(pages) * int64(c.Host.PageSize()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Scanner.ScanChunk(passes * pages)
		b.StopTimer()
		build() // a scan merges pages; every iteration needs a cold cluster
		b.StartTimer()
	}
}

// BenchmarkClusterBuildHeapFootprint reports the simulator's live Go heap
// attributable to one built-and-run 4-guest cluster: heap in use after a GC
// with the cluster still reachable, minus the pre-build floor.
func BenchmarkClusterBuildHeapFootprint(b *testing.B) {
	var ms runtime.MemStats
	for i := 0; i < b.N; i++ {
		runtime.GC()
		runtime.ReadMemStats(&ms)
		before := ms.HeapAlloc
		c := buildLargeCluster()
		c.Run()
		runtime.GC()
		runtime.ReadMemStats(&ms)
		b.ReportMetric(float64(ms.HeapAlloc-before), "live-heap-bytes")
		runtime.KeepAlive(c)
	}
}
