// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation, plus the DESIGN.md ablations and micro-benchmarks of the
// substrates. Benchmarks run the experiments at a reduced scale so that
// `go test -bench=.` completes in minutes; cmd/tpsim runs them at the
// default scale. Each experiment benchmark reports its headline quantity as
// a custom metric so the regenerated "row" is visible in the bench output.
package tpsim

import (
	"testing"

	"repro/internal/classlib"
	"repro/internal/core"
	"repro/internal/guestos"
	"repro/internal/hypervisor"
	"repro/internal/jvm"
	"repro/internal/ksm"
	"repro/internal/mem"
	"repro/internal/memanalysis"
	"repro/internal/powervm"
	"repro/internal/simclock"
	"repro/internal/workload"
)

// benchScale keeps full-cluster benchmarks fast.
const benchScale = 48

func benchOpts() core.Options { return core.Options{Scale: benchScale, Quick: true} }

// --- Tables -----------------------------------------------------------------

// BenchmarkTable1Configs regenerates Tables I-IV.
func BenchmarkTable1Configs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, t := range []interface{ String() string }{
			core.Table1(), core.Table2(), core.Table3(), core.Table4(),
		} {
			if len(t.String()) == 0 {
				b.Fatal("empty table")
			}
		}
	}
}

// --- Figures ----------------------------------------------------------------

// BenchmarkFig2 regenerates the baseline per-VM breakdown (Fig. 2) and
// reports the cluster total and TPS savings in paper-scale MB.
func BenchmarkFig2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		memF, _ := core.Fig2(benchOpts())
		b.ReportMetric(memF.TotalMB, "totalMB")
		b.ReportMetric(memF.TotalSavingsMB, "savedMB")
	}
}

// BenchmarkFig3a reports the baseline class-metadata sharing fraction
// (paper: ≈0).
func BenchmarkFig3a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, javaF := core.Fig2(benchOpts())
		b.ReportMetric(classMetaSharedPct(javaF), "classmeta-shared-%")
	}
}

// BenchmarkFig3b regenerates the mixed-workload baseline breakdown.
func BenchmarkFig3b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := core.Fig3b(benchOpts())
		b.ReportMetric(classMetaSharedPct(f), "classmeta-shared-%")
	}
}

// BenchmarkFig3c regenerates the Tuscany baseline breakdown.
func BenchmarkFig3c(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := core.Fig3c(benchOpts())
		b.ReportMetric(classMetaSharedPct(f), "classmeta-shared-%")
	}
}

// BenchmarkFig4 regenerates the preloaded per-VM breakdown (Fig. 4);
// paper: total drops from 3 648 to 3 314 MB.
func BenchmarkFig4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		memF, _ := core.Fig4(benchOpts())
		b.ReportMetric(memF.TotalMB, "totalMB")
		b.ReportMetric(memF.TotalSavingsMB, "savedMB")
	}
}

// BenchmarkFig5a reports the preloaded class-metadata sharing fraction
// (paper: 89.6 % in the three non-primary JVMs).
func BenchmarkFig5a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, javaF := core.Fig4(benchOpts())
		b.ReportMetric(classMetaSharedPct(javaF), "classmeta-shared-%")
	}
}

// BenchmarkFig5b regenerates the mixed-workload preloaded breakdown.
func BenchmarkFig5b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := core.Fig5b(benchOpts())
		b.ReportMetric(classMetaSharedPct(f), "classmeta-shared-%")
	}
}

// BenchmarkFig5c regenerates the Tuscany preloaded breakdown.
func BenchmarkFig5c(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := core.Fig5c(benchOpts())
		b.ReportMetric(classMetaSharedPct(f), "classmeta-shared-%")
	}
}

// BenchmarkFig6 regenerates the PowerVM comparison; paper: savings grow
// from 243.4 MB to 424.4 MB (Δ 181 MB).
func BenchmarkFig6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := core.Fig6(benchOpts())
		b.ReportMetric(f.NoPreload.SavingMB(), "saved-noPreload-MB")
		b.ReportMetric(f.Preload.SavingMB(), "saved-preload-MB")
		b.ReportMetric(f.DeltaMB(), "deltaMB")
	}
}

// BenchmarkFig7 regenerates the DayTrader VM-count sweep; paper: cliff at
// 8 VMs (17.2 req/s default vs 148.1 with the cache).
func BenchmarkFig7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := core.Fig7(benchOpts())
		last := f.Points[len(f.Points)-1]
		b.ReportMetric(last.Default.Mean, "default-last-req/s")
		b.ReportMetric(last.Preloaded.Mean, "ours-last-req/s")
	}
}

// BenchmarkFig8 regenerates the SPECjEnterprise sweep; paper: default drops
// to 15 EjOPS at 7 VMs (SLA violated), ours stays at 24.
func BenchmarkFig8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := core.Fig8(benchOpts())
		last := f.Points[len(f.Points)-1]
		b.ReportMetric(last.Default.Mean, "default-last-EjOPS")
		b.ReportMetric(last.Preloaded.Mean, "ours-last-EjOPS")
	}
}

// classMetaSharedPct averages the class-metadata shared fraction across the
// non-primary (sharing) JVMs: the bars with nonzero sharing.
func classMetaSharedPct(f core.JavaFigure) float64 {
	var sum float64
	n := 0
	for _, bar := range f.Bars {
		cm := bar.Cat(jvm.CatClassMeta)
		if cm.MappedMB == 0 {
			continue
		}
		frac := cm.SharedMB / cm.MappedMB
		sum += frac
		n++
	}
	if n == 0 {
		return 0
	}
	return 100 * sum / float64(n)
}

// --- Ablations (DESIGN.md §5) ------------------------------------------------

// BenchmarkAblationCacheLayout contrasts one copied cache file against each
// VM populating its own: the sharing collapses without the copied file,
// which is the paper's central insight.
func BenchmarkAblationCacheLayout(b *testing.B) {
	run := func(perVM bool) float64 {
		c := core.BuildCluster(core.ClusterConfig{
			Scale:            benchScale,
			Specs:            []workload.Spec{workload.DayTrader()},
			NumVMs:           3,
			SharedClasses:    true,
			PerVMCacheLayout: perVM,
			SteadyRounds:     15,
		})
		c.Run()
		a := c.Analyze()
		var shared, mapped int64
		for _, jb := range a.JavaBreakdowns() {
			cm := jb.ByCat[jvm.CatClassMeta]
			shared += cm.SharedBytes
			mapped += cm.MappedBytes
		}
		return 100 * float64(shared) / float64(mapped)
	}
	for i := 0; i < b.N; i++ {
		b.ReportMetric(run(false), "copied-file-shared-%")
		b.ReportMetric(run(true), "per-vm-layout-shared-%")
	}
}

// BenchmarkAblationAccounting contrasts the paper's owner-oriented
// accounting with distribution-oriented PSS for the same Java processes.
func BenchmarkAblationAccounting(b *testing.B) {
	c := core.BuildCluster(core.ClusterConfig{
		Scale: benchScale, Specs: []workload.Spec{workload.DayTrader()},
		NumVMs: 3, SharedClasses: true, SteadyRounds: 15,
	})
	c.Run()
	a := c.Analyze()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var owner, pss float64
		for _, w := range c.Workers {
			owner += float64(a.OwnerOrientedBytes(w.JVM.Process()))
			pss += a.PSS(w.JVM.Process())
		}
		b.ReportMetric(owner*float64(benchScale)/(1<<20), "owner-MB")
		b.ReportMetric(pss*float64(benchScale)/(1<<20), "pss-MB")
	}
}

// BenchmarkAblationChecksumGate shows the volatility gate preventing wasted
// merges: without it, volatile pages merge and immediately COW-break.
func BenchmarkAblationChecksumGate(b *testing.B) {
	run := func(gate bool) (merges, breaks uint64) {
		clock := simclock.New()
		host := hypervisor.NewHost(hypervisor.Config{Name: "abl", RAMBytes: 4096 * 4096}, clock)
		cfg := ksm.DefaultConfig()
		cfg.ChecksumGate = gate
		k := ksm.New(host, cfg)
		var vms []*hypervisor.VMProcess
		for v := 0; v < 2; v++ {
			vms = append(vms, host.NewVM(hypervisor.VMConfig{
				Name: "vm", GuestMemBytes: 256 * 4096, Seed: mem.Seed(v + 1),
			}))
		}
		k.RegisterAll()
		for round := 0; round < 20; round++ {
			for _, vm := range vms {
				for p := uint64(0); p < 64; p++ {
					vm.FillGuestPage(p, mem.Seed(round)) // volatile, identical
				}
			}
			k.ScanChunk(512)
		}
		s := k.Stats()
		return s.StableMerges + s.UnstableMerges, s.COWBreaks
	}
	for i := 0; i < b.N; i++ {
		m1, br1 := run(true)
		m2, br2 := run(false)
		b.ReportMetric(float64(m1), "gated-merges")
		b.ReportMetric(float64(br1), "gated-breaks")
		b.ReportMetric(float64(m2), "ungated-merges")
		b.ReportMetric(float64(br2), "ungated-breaks")
	}
}

// BenchmarkAblationScanRate reproduces §2.C's CPU-cost trade-off: 10 000
// pages per wake-up costs ≈25 % of a CPU, 1 000 costs ≈2 %.
func BenchmarkAblationScanRate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, rate := range []int{1000, 10000} {
			clock := simclock.New()
			host := hypervisor.NewHost(hypervisor.Config{Name: "abl", RAMBytes: 1 << 26}, clock)
			host.NewVM(hypervisor.VMConfig{Name: "vm", GuestMemBytes: 1 << 24, Seed: 1})
			cfg := ksm.DefaultConfig()
			cfg.PagesToScan = rate
			k := ksm.New(host, cfg)
			k.RegisterAll()
			k.Start()
			clock.RunFor(10 * simclock.Second)
			k.Stop()
			if rate == 1000 {
				b.ReportMetric(k.Stats().CPUPercent(), "cpu%-at-1000")
			} else {
				b.ReportMetric(k.Stats().CPUPercent(), "cpu%-at-10000")
			}
		}
	}
}

// BenchmarkAblationGCPolicy confirms the paper's §5.C observation that the
// technique's effectiveness is not limited to one GC policy: class-metadata
// sharing holds under both optthruput and gencon.
func BenchmarkAblationGCPolicy(b *testing.B) {
	run := func(spec workload.Spec) float64 {
		c := core.BuildCluster(core.ClusterConfig{
			Scale: benchScale, Specs: []workload.Spec{spec},
			NumVMs: 3, SharedClasses: true, SteadyRounds: 15,
		})
		c.Run()
		a := c.Analyze()
		var shared, mapped int64
		for _, jb := range a.JavaBreakdowns() {
			cm := jb.ByCat[jvm.CatClassMeta]
			shared += cm.SharedBytes
			mapped += cm.MappedBytes
		}
		return 100 * float64(shared) / float64(mapped)
	}
	for i := 0; i < b.N; i++ {
		b.ReportMetric(run(workload.DayTrader()), "optthruput-shared-%")
		b.ReportMetric(run(workload.SPECjEnterprise()), "gencon-shared-%")
	}
}

// BenchmarkAblationNIORealWorld de-identifies the benchmark wire traffic
// per VM, confirming the paper's warning that the NIO-buffer sharing would
// not repeat with real-world workloads.
func BenchmarkAblationNIORealWorld(b *testing.B) {
	run := func(salt bool) float64 {
		c := core.BuildCluster(core.ClusterConfig{
			Scale: benchScale, Specs: []workload.Spec{workload.DayTrader()},
			NumVMs: 3, PerVMNIOSalt: salt, SteadyRounds: 15,
		})
		c.Run()
		a := c.Analyze()
		var shared int64
		for _, jb := range a.JavaBreakdowns() {
			shared += jb.ByCat[jvm.CatJVMWork].SharedBytes
		}
		return float64(shared*benchScale) / (1 << 20)
	}
	for i := 0; i < b.N; i++ {
		b.ReportMetric(run(false), "benchmark-traffic-sharedMB")
		b.ReportMetric(run(true), "realworld-traffic-sharedMB")
	}
}

// --- Parallel runner ----------------------------------------------------------

// benchSweep is the Fig. 7-shaped workload for the runner benchmarks: a
// 4-point VM-count sweep with two configurations per point (8 independent
// cluster runs). The pair below measures the same sweep sequentially and on
// a 4-worker pool; on a ≥4-core machine the parallel run should finish in
// less than half the sequential wall-clock time.
func benchSweep(b *testing.B, jobs int) {
	o := benchOpts()
	o.Jobs = jobs
	for i := 0; i < b.N; i++ {
		f := core.Fig7(o)
		if len(f.Points) == 0 {
			b.Fatal("empty sweep")
		}
	}
}

// BenchmarkSweepSequential runs the quick Fig. 7 sweep with -jobs 1
// (today's strictly sequential behaviour).
func BenchmarkSweepSequential(b *testing.B) { benchSweep(b, 1) }

// BenchmarkSweepParallel4 runs the identical sweep on a 4-worker pool. The
// output is byte-identical (see core.TestSweepDeterministicAcrossJobWidths);
// only the wall clock differs.
func BenchmarkSweepParallel4(b *testing.B) { benchSweep(b, 4) }

// --- Telemetry ----------------------------------------------------------------

// benchSamplingCluster runs the DayTrader pair scenario with or without the
// metrics registry attached; the Off/On pair below quantifies the sampling
// overhead (the subsystem's budget is "negligible when off, cheap when on").
func benchSamplingCluster(b *testing.B, enabled bool) {
	for i := 0; i < b.N; i++ {
		c := core.BuildCluster(core.ClusterConfig{
			Scale: benchScale, Specs: []workload.Spec{workload.DayTrader()},
			NumVMs: 2, SteadyRounds: 15, EnableMetrics: enabled,
		})
		c.Run()
		if enabled && c.Metrics.Ticks() == 0 {
			b.Fatal("no samples taken")
		}
	}
}

// BenchmarkSamplingOverheadOff is the metrics-disabled baseline.
func BenchmarkSamplingOverheadOff(b *testing.B) { benchSamplingCluster(b, false) }

// BenchmarkSamplingOverheadOn runs the same cluster with the registry
// sampling every gauge at the default 500 ms cadence.
func BenchmarkSamplingOverheadOn(b *testing.B) { benchSamplingCluster(b, true) }

// --- Micro-benchmarks ---------------------------------------------------------

// BenchmarkKSMScanPage measures the scanner's per-page cost over a warm
// (checksum-cached) region.
func BenchmarkKSMScanPage(b *testing.B) {
	clock := simclock.New()
	host := hypervisor.NewHost(hypervisor.Config{Name: "m", RAMBytes: 1 << 28}, clock)
	vm := host.NewVM(hypervisor.VMConfig{Name: "vm", GuestMemBytes: 1 << 26, Seed: 1})
	for p := uint64(0); p < 1<<26/4096; p++ {
		vm.FillGuestPage(p, mem.Seed(p))
	}
	k := ksm.New(host, ksm.DefaultConfig())
	k.RegisterAll()
	k.ScanChunk(1 << 26 / 4096) // warm pass
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.ScanChunk(1024)
	}
	b.SetBytes(1024 * 4096)
}

// BenchmarkHeapAllocGC measures object allocation with GC cycles included.
func BenchmarkHeapAllocGC(b *testing.B) {
	clock := simclock.New()
	host := hypervisor.NewHost(hypervisor.Config{Name: "m", RAMBytes: 1 << 28}, clock)
	vmp := host.NewVM(hypervisor.VMConfig{Name: "vm", GuestMemBytes: 1 << 27, Seed: 1})
	k := bootBenchGuest(vmp)
	j := jvm.Launch(k, "java", classlib.NewCorpus(jvm.RuntimeVersion, benchScale),
		jvm.Options{GCPolicy: jvm.OptThruput, HeapBytes: 16 << 20, Threads: 2}, jvm.DefaultSizes(benchScale))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j.Heap().Alloc(2048, mem.Seed(i), i%16 == 0)
	}
	b.SetBytes(2048)
}

// BenchmarkClassLoadPrivate measures class loading into private segments.
func BenchmarkClassLoadPrivate(b *testing.B) {
	corpus := classlib.NewCorpus(jvm.RuntimeVersion, 1)
	classes := corpus.Group(classlib.GroupWASCore)
	clock := simclock.New()
	host := hypervisor.NewHost(hypervisor.Config{Name: "m", RAMBytes: 1 << 30}, clock)
	vmp := host.NewVM(hypervisor.VMConfig{Name: "vm", GuestMemBytes: 1 << 29, Seed: 1})
	k := bootBenchGuest(vmp)
	j := jvm.Launch(k, "java", corpus,
		jvm.Options{GCPolicy: jvm.OptThruput, HeapBytes: 8 << 20, Threads: 2}, jvm.DefaultSizes(16))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j.LoadGroups(true, classlib.GroupWASCore)
		if i == 0 {
			b.SetBytes(int64(j.LoadStats().ROMBytesPrivate + j.LoadStats().RAMBytes))
		}
	}
	_ = classes
}

// BenchmarkCacheBuild measures the cold-run population of a full WAS cache.
func BenchmarkCacheBuild(b *testing.B) {
	corpus := classlib.NewCorpus(jvm.RuntimeVersion, 16)
	spec := workload.DayTrader()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		img := workload.BuildCache(corpus, spec, 16)
		data := img.FileBytes(corpus)
		b.SetBytes(int64(len(data)))
	}
}

// BenchmarkAnalyzer measures the full three-layer walk of the paper's
// measurement methodology on a 3-guest cluster.
func BenchmarkAnalyzer(b *testing.B) {
	c := core.BuildCluster(core.ClusterConfig{
		Scale: benchScale, Specs: []workload.Spec{workload.DayTrader()},
		NumVMs: 3, SharedClasses: true, SteadyRounds: 10,
	})
	c.Run()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := memanalysis.Analyze(c.Host, c.Kernels)
		if a.TotalGuestBytes() == 0 {
			b.Fatal("empty analysis")
		}
	}
}

// bootBenchGuest boots a minimal guest kernel for micro-benchmarks.
func bootBenchGuest(vmp *hypervisor.VMProcess) *guestos.Kernel {
	return guestos.Boot(vmp, guestos.KernelConfig{Version: "bench", TextBytes: 1 << 20})
}

// --- Extension ----------------------------------------------------------------

// BenchmarkExtensionSharedAOT evaluates the extension beyond the paper's
// measured setup: storing AOT-compiled method code in the shared cache (as
// production J9 caches do). Hot methods execute shareable cache pages
// instead of private JIT output, shrinking the unshareable JIT-code area.
func BenchmarkExtensionSharedAOT(b *testing.B) {
	run := func(aot bool) (jitMB, javaSharedMB float64) {
		c := core.BuildCluster(core.ClusterConfig{
			Scale: benchScale, Specs: []workload.Spec{workload.DayTrader()},
			NumVMs: 3, SharedClasses: true, SharedAOT: aot, SteadyRounds: 15,
		})
		c.Run()
		a := c.Analyze()
		for _, jb := range a.JavaBreakdowns() {
			jitMB += float64(jb.ByCat[jvm.CatJITCode].MappedBytes*benchScale) / (1 << 20)
			for _, cu := range jb.ByCat {
				javaSharedMB += float64(cu.SharedBytes*benchScale) / (1 << 20)
			}
		}
		return jitMB / 3, javaSharedMB
	}
	for i := 0; i < b.N; i++ {
		j1, s1 := run(false)
		j2, s2 := run(true)
		b.ReportMetric(j1, "jitcodeMB-classesOnly")
		b.ReportMetric(j2, "jitcodeMB-withAOT")
		b.ReportMetric(s1, "javaSharedMB-classesOnly")
		b.ReportMetric(s2, "javaSharedMB-withAOT")
	}
}

// BenchmarkAblationPageSize64K contrasts 4 KiB base pages with POWER's
// 64 KiB pages on the Fig. 6 scenario shape. Coarser pages risk losing
// sharing (one divergent byte unshares 16× more memory), but when the
// shared content is file-backed and identically aligned — the shared class
// cache, base-image binaries, kernel text — the loss is minimal, which is
// consistent with AIX running 64 KiB pages on the paper's POWER guests
// without hurting its sharing numbers. Both measurements are reported.
func BenchmarkAblationPageSize64K(b *testing.B) {
	run := func(pageSize int) float64 {
		clock := simclock.New()
		machine := powervm.New(powervm.Config{Name: "abl", RAMBytes: 1 << 30, PageSize: pageSize}, clock)
		corpus := classlib.NewCorpus(jvm.RuntimeVersion, benchScale)
		spec := workload.Tuscany()
		img := workload.BuildCache(corpus, spec, benchScale)
		var instances []*workload.Instance
		for i := 0; i < 3; i++ {
			lp := machine.NewLPAR(powervm.LPARConfig{
				Name: "aix", GuestMemBytes: spec.GuestMemBytes / benchScale, Seed: mem.Seed(i + 1),
			})
			k := guestos.Boot(lp, guestos.KernelConfig{
				Version: "AIX", TextBytes: (24 << 20) / benchScale, DataBytes: (48 << 20) / benchScale,
			})
			k.FS().Install(&guestos.File{Path: "/cache", Data: img.FileBytes(corpus)})
			instances = append(instances, workload.Deploy(k, corpus, spec, workload.DeployConfig{
				Scale: benchScale, SharedClasses: true, CacheImage: img, CachePath: "/cache",
			}))
		}
		before := machine.PhysicalInUse()
		for r := 0; r < 5; r++ {
			for _, in := range instances {
				in.RunSteadyState(4)
			}
			machine.SharePass()
		}
		return float64((before-machine.PhysicalInUse())*benchScale) / (1 << 20)
	}
	for i := 0; i < b.N; i++ {
		b.ReportMetric(run(4096), "savedMB-4K-pages")
		b.ReportMetric(run(64<<10), "savedMB-64K-pages")
	}
}

// BenchmarkAblationKSMHashOnly runs the unsound hash-only merge mode: pages
// merge on checksum equality without byte verification. The HashRejects
// metric counts candidates where verification would have refused a merge —
// the risk the sound mode eliminates by construction.
func BenchmarkAblationKSMHashOnly(b *testing.B) {
	run := func(hashOnly bool) (merges, rejects uint64) {
		clock := simclock.New()
		host := hypervisor.NewHost(hypervisor.Config{Name: "abl", RAMBytes: 1 << 26}, clock)
		cfg := ksm.DefaultConfig()
		cfg.HashOnly = hashOnly
		k := ksm.New(host, cfg)
		for v := 0; v < 2; v++ {
			vm := host.NewVM(hypervisor.VMConfig{Name: "vm", GuestMemBytes: 512 * 4096, Seed: mem.Seed(v + 1)})
			for p := uint64(0); p < 256; p++ {
				vm.FillGuestPage(p, mem.Seed(p%64))
			}
		}
		k.RegisterAll()
		k.ScanChunk(1024 * 4)
		s := k.Stats()
		return s.StableMerges + s.UnstableMerges, s.HashRejects
	}
	for i := 0; i < b.N; i++ {
		m1, r1 := run(false)
		m2, r2 := run(true)
		b.ReportMetric(float64(m1), "verified-merges")
		b.ReportMetric(float64(r1), "verification-rejects")
		b.ReportMetric(float64(m2), "hashonly-merges")
		b.ReportMetric(float64(r2), "hashonly-rejects")
	}
}
