package powervm

import (
	"testing"
	"testing/quick"

	"repro/internal/guestos"
	"repro/internal/mem"
	"repro/internal/simclock"
)

const pg = mem.DefaultPageSize

func newMachine(t *testing.T, ramPages int) *Machine {
	t.Helper()
	return New(Config{Name: "PS701", RAMBytes: int64(ramPages) * pg}, simclock.New())
}

func TestLPARDemandPaging(t *testing.T) {
	m := newMachine(t, 128)
	lp := m.NewLPAR(LPARConfig{Name: "aix1", GuestMemBytes: 32 * pg, Seed: 1})
	if m.PhysicalInUse() != 0 {
		t.Fatal("eager allocation")
	}
	lp.FillGuestPage(3, 42)
	if m.PhysicalInUse() != pg {
		t.Fatalf("in use = %d", m.PhysicalInUse())
	}
	want := mem.FillBytes(pg, 42)
	got := lp.ReadGuestPage(3)
	for i := range want {
		if got[i] != want[i] {
			t.Fatal("content mismatch")
		}
	}
}

func TestSharePassMergesIdenticalPages(t *testing.T) {
	m := newMachine(t, 256)
	lp1 := m.NewLPAR(LPARConfig{Name: "aix1", GuestMemBytes: 32 * pg, Seed: 1})
	lp2 := m.NewLPAR(LPARConfig{Name: "aix2", GuestMemBytes: 32 * pg, Seed: 2})
	for i := uint64(0); i < 8; i++ {
		lp1.FillGuestPage(i, mem.Seed(100+i))
		lp2.FillGuestPage(i, mem.Seed(100+i))
	}
	before := m.PhysicalInUse()
	m.SharePass() // records checksums (volatility gate)
	m.SharePass() // merges
	after := m.PhysicalInUse()
	if want := before - 8*pg; after != want {
		t.Fatalf("after sharing = %d, want %d", after, want)
	}
	if m.Stats().PagesMerged != 8 {
		t.Fatalf("merged = %d", m.Stats().PagesMerged)
	}
	if m.Stats().SharedFrames != 8 {
		t.Fatalf("shared frames = %d", m.Stats().SharedFrames)
	}
}

func TestSharePassThreeWay(t *testing.T) {
	m := newMachine(t, 256)
	var lps []*LPAR
	for i := 0; i < 3; i++ {
		lps = append(lps, m.NewLPAR(LPARConfig{Name: "aix", GuestMemBytes: 16 * pg, Seed: mem.Seed(i + 1)}))
	}
	for _, lp := range lps {
		lp.FillGuestPage(0, 7)
	}
	m.SharePass()
	m.SharePass()
	// 3 copies collapse to 1: two pages saved.
	if m.PhysicalInUse() != pg {
		t.Fatalf("in use = %d, want one page", m.PhysicalInUse())
	}
}

func TestCOWBreakAfterSharing(t *testing.T) {
	m := newMachine(t, 256)
	lp1 := m.NewLPAR(LPARConfig{Name: "a", GuestMemBytes: 16 * pg, Seed: 1})
	lp2 := m.NewLPAR(LPARConfig{Name: "b", GuestMemBytes: 16 * pg, Seed: 2})
	lp1.FillGuestPage(0, 7)
	lp2.FillGuestPage(0, 7)
	m.SharePass()
	m.SharePass()
	lp2.WriteGuestPage(0, 0, []byte{9})
	if m.Stats().COWBreaks != 1 {
		t.Fatalf("COW breaks = %d", m.Stats().COWBreaks)
	}
	b1 := lp1.ReadGuestPage(0)
	b2 := lp2.ReadGuestPage(0)
	if b1[0] == b2[0] {
		t.Fatal("write leaked through sharing")
	}
}

func TestDedicatedLPARNeverShares(t *testing.T) {
	m := newMachine(t, 256)
	lp1 := m.NewLPAR(LPARConfig{Name: "a", GuestMemBytes: 16 * pg, Seed: 1})
	lp2 := m.NewLPAR(LPARConfig{Name: "b", GuestMemBytes: 16 * pg, Dedicated: true, Seed: 2})
	lp1.FillGuestPage(0, 7)
	lp2.FillGuestPage(0, 7)
	m.SharePass()
	m.SharePass()
	if m.Stats().PagesMerged != 0 {
		t.Fatal("dedicated LPAR pages were merged")
	}
	if m.PhysicalInUse() != 2*pg {
		t.Fatalf("in use = %d", m.PhysicalInUse())
	}
}

func TestGuestOSBootsOnLPAR(t *testing.T) {
	m := newMachine(t, 1024)
	lp := m.NewLPAR(LPARConfig{Name: "aix1", GuestMemBytes: 256 * pg, Seed: 1})
	k := guestos.Boot(lp, guestos.KernelConfig{Version: "AIX-6.1-TL6", TextBytes: 8 * pg, DataBytes: 4 * pg})
	p := k.Spawn("java", true)
	v := p.MapAnon(8, "heap", "h")
	p.TouchAll(v, true)
	if k.UsedGuestPages() == 0 {
		t.Fatal("guest OS did not boot on the LPAR")
	}
	// Identical kernels on two LPARs share after a pass.
	lp2 := m.NewLPAR(LPARConfig{Name: "aix2", GuestMemBytes: 256 * pg, Seed: 2})
	guestos.Boot(lp2, guestos.KernelConfig{Version: "AIX-6.1-TL6", TextBytes: 8 * pg, DataBytes: 4 * pg})
	m.SharePass()
	m.SharePass()
	if m.Stats().PagesMerged < 8 {
		t.Fatalf("kernel text not shared across LPARs: merged %d", m.Stats().PagesMerged)
	}
}

func TestReleaseGuestPage(t *testing.T) {
	m := newMachine(t, 128)
	lp := m.NewLPAR(LPARConfig{Name: "a", GuestMemBytes: 16 * pg, Seed: 1})
	lp.FillGuestPage(0, 5)
	lp.ReleaseGuestPage(0)
	if m.PhysicalInUse() != 0 {
		t.Fatal("release did not free")
	}
}

func TestSharePassIdempotent(t *testing.T) {
	m := newMachine(t, 256)
	lp1 := m.NewLPAR(LPARConfig{Name: "a", GuestMemBytes: 16 * pg, Seed: 1})
	lp2 := m.NewLPAR(LPARConfig{Name: "b", GuestMemBytes: 16 * pg, Seed: 2})
	for i := uint64(0); i < 4; i++ {
		lp1.FillGuestPage(i, mem.Seed(i))
		lp2.FillGuestPage(i, mem.Seed(i))
	}
	m.SharePass()
	m.SharePass()
	merged := m.Stats().PagesMerged
	m.SharePass()
	if m.Stats().PagesMerged != merged {
		t.Fatalf("extra pass re-merged: %d -> %d", merged, m.Stats().PagesMerged)
	}
}

func TestVolatilityGateSkipsChangingPages(t *testing.T) {
	m := newMachine(t, 256)
	lp1 := m.NewLPAR(LPARConfig{Name: "a", GuestMemBytes: 16 * pg, Seed: 1})
	lp2 := m.NewLPAR(LPARConfig{Name: "b", GuestMemBytes: 16 * pg, Seed: 2})
	for pass := 0; pass < 4; pass++ {
		lp1.FillGuestPage(0, mem.Seed(pass))
		lp2.FillGuestPage(0, mem.Seed(pass))
		m.SharePass()
	}
	if m.Stats().PagesMerged != 0 {
		t.Fatal("volatile pages were merged")
	}
	if m.Stats().ChecksumSkips == 0 {
		t.Fatal("gate never fired")
	}
}

// Property: share passes conserve frame accounting (in use + free == total)
// and never lose page content.
func TestPropertySharePassConservation(t *testing.T) {
	f := func(ops []uint8) bool {
		m := New(Config{Name: "p", RAMBytes: 1024 * pg}, simclock.New())
		lp1 := m.NewLPAR(LPARConfig{Name: "a", GuestMemBytes: 32 * pg, Seed: 1})
		lp2 := m.NewLPAR(LPARConfig{Name: "b", GuestMemBytes: 32 * pg, Seed: 2})
		lps := []*LPAR{lp1, lp2}
		content := map[[2]int]mem.Seed{}
		for i, op := range ops {
			lp := lps[int(op)%2]
			gpfn := uint64(op>>1) % 16
			switch (int(op) + i) % 3 {
			case 0:
				// Convergent content.
				s := mem.Seed(1000 + gpfn)
				lp.FillGuestPage(gpfn, s)
				content[[2]int{int(op) % 2, int(gpfn)}] = s
			case 1:
				// Divergent content.
				s := mem.Combine(mem.Seed(op), mem.Seed(i))
				lp.FillGuestPage(gpfn, s)
				content[[2]int{int(op) % 2, int(gpfn)}] = s
			case 2:
				m.SharePass()
			}
		}
		m.SharePass()
		m.SharePass()
		pm := m.Phys()
		if pm.FramesInUse()+pm.FreeFrames() != pm.TotalFrames() {
			return false
		}
		// Every page still reads back its last written content.
		for key, seed := range content {
			got := lps[key[0]].ReadGuestPage(uint64(key[1]))
			want := mem.FillBytes(pg, seed)
			for i := range want {
				if got[i] != want[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
