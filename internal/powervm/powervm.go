// Package powervm models a system-VM hypervisor in the style of PowerVM
// with Active Memory Sharing (paper §5.B and Fig. 1(a)): the hypervisor sits
// directly on the hardware and translates guest physical to host physical
// with a single table per LPAR — there is no VM process layer, so the
// three-layer walk of the KVM tool does not apply. Matching the paper,
// monitoring is totals-only: the authors note their tool "cannot obtain a
// breakdown of the physical memory usage at the same level of detail in AIX
// as in Linux", and Fig. 6 compares total physical usage before and after
// the hypervisor finishes sharing pages.
package powervm

import (
	"fmt"

	"repro/internal/guestos"
	"repro/internal/mem"
	"repro/internal/simclock"
)

// Config describes the POWER machine (Table I: BladeCenter PS701, 128 GB).
type Config struct {
	Name     string
	RAMBytes int64
	PageSize int
}

// Machine is the physical POWER host.
type Machine struct {
	cfg   Config
	clock *simclock.Clock
	phys  *mem.PhysMem
	lpars []*LPAR

	// checksums is the scanner's volatility gate: a page merges only after
	// two consecutive passes observe the same content, like KSM's checksum
	// check. Keyed by (LPAR id, guest page).
	checksums map[lparPage]uint64

	stats Stats
}

// lparPage identifies one guest page of one partition.
type lparPage struct {
	lpar int
	vpn  mem.VPN
}

// Stats counts hypervisor sharing activity.
type Stats struct {
	PassesRun     uint64
	PagesMerged   uint64
	COWBreaks     uint64
	ChecksumSkips uint64
	SharedFrames  int
}

// New boots the POWER machine.
func New(cfg Config, clock *simclock.Clock) *Machine {
	if cfg.PageSize == 0 {
		cfg.PageSize = mem.DefaultPageSize
	}
	return &Machine{
		cfg:       cfg,
		clock:     clock,
		phys:      mem.NewPhysMem(cfg.RAMBytes, cfg.PageSize),
		checksums: make(map[lparPage]uint64),
	}
}

// Phys exposes the physical memory pool.
func (m *Machine) Phys() *mem.PhysMem { return m.phys }

// LPARs lists the partitions in creation order.
func (m *Machine) LPARs() []*LPAR { return m.lpars }

// Stats returns hypervisor counters.
func (m *Machine) Stats() Stats { return m.stats }

// PhysicalInUse reports total host physical memory in use — the quantity
// PowerVM's monitoring feature reports and Fig. 6 plots.
func (m *Machine) PhysicalInUse() int64 { return m.phys.BytesInUse() }

// LPARConfig describes one logical partition.
type LPARConfig struct {
	Name string
	// GuestMemBytes is the partition's memory (Table II: 3.5 GB).
	GuestMemBytes int64
	// Dedicated opts the LPAR out of Active Memory Sharing: its pages are
	// never merged (PowerVM shares identical pages "unless the guest VMs
	// are configured to allocate dedicated physical memory").
	Dedicated bool
	Seed      mem.Seed
}

// LPAR is a partition: guest physical pages map straight to host frames.
// It implements guestos.Machine, so the same AIX-like guest OS and JVM run
// on it unchanged.
type LPAR struct {
	machine *Machine
	id      int
	cfg     LPARConfig

	guestPages int
	pt         *mem.PageTable // gpfn -> host frame (single translation step)
}

// NewLPAR creates a partition.
func (m *Machine) NewLPAR(cfg LPARConfig) *LPAR {
	if cfg.GuestMemBytes < int64(m.cfg.PageSize) {
		panic(fmt.Sprintf("powervm: LPAR memory %d below page size", cfg.GuestMemBytes))
	}
	lp := &LPAR{
		machine:    m,
		id:         len(m.lpars) + 1,
		cfg:        cfg,
		guestPages: int(cfg.GuestMemBytes / int64(m.cfg.PageSize)),
		pt:         mem.NewPageTable(),
	}
	m.lpars = append(m.lpars, lp)
	return lp
}

// guestos.Machine implementation.

// Name reports the partition label.
func (lp *LPAR) Name() string { return lp.cfg.Name }

// Seed reports the partition's randomization seed.
func (lp *LPAR) Seed() mem.Seed { return lp.cfg.Seed }

// PageSize reports the page size in bytes.
func (lp *LPAR) PageSize() int { return lp.machine.cfg.PageSize }

// GuestPages reports the partition memory size in pages.
func (lp *LPAR) GuestPages() int { return lp.guestPages }

// ID reports the 1-based partition index.
func (lp *LPAR) ID() int { return lp.id }

func (lp *LPAR) checkGPFN(gpfn uint64) {
	if gpfn >= uint64(lp.guestPages) {
		panic(fmt.Sprintf("powervm: gpfn %d outside LPAR memory", gpfn))
	}
}

// ensure demand-pages a partition page, breaking COW on writes.
func (lp *LPAR) ensure(gpfn uint64, write bool) mem.FrameID {
	lp.checkGPFN(gpfn)
	vpn := mem.VPN(gpfn)
	pte, ok := lp.pt.Lookup(vpn)
	if !ok {
		f, err := lp.machine.phys.Alloc()
		if err != nil {
			panic("powervm: machine out of physical memory (the paper's 128 GB host never pages)")
		}
		lp.pt.Set(vpn, mem.PTE{Frame: f, Writable: true})
		return f
	}
	if write && pte.COW {
		old := pte.Frame
		f, err := lp.machine.phys.Alloc()
		if err != nil {
			panic("powervm: machine out of physical memory during COW break")
		}
		lp.machine.phys.CopyFrame(f, old)
		lp.machine.phys.DecRef(old)
		lp.pt.Set(vpn, mem.PTE{Frame: f, Writable: true})
		lp.machine.stats.COWBreaks++
		return f
	}
	return pte.Frame
}

// TouchGuestPage simulates an access.
func (lp *LPAR) TouchGuestPage(gpfn uint64, write bool) { lp.ensure(gpfn, write) }

// ReadGuestPage returns the page's bytes.
func (lp *LPAR) ReadGuestPage(gpfn uint64) []byte {
	return lp.machine.phys.Bytes(lp.ensure(gpfn, false))
}

// WriteGuestPage writes into the page.
func (lp *LPAR) WriteGuestPage(gpfn uint64, off int, data []byte) {
	lp.machine.phys.Write(lp.ensure(gpfn, true), off, data)
}

// FillGuestPage overwrites the page with seed-derived content.
func (lp *LPAR) FillGuestPage(gpfn uint64, seed mem.Seed) {
	lp.machine.phys.FillFrame(lp.ensure(gpfn, true), seed)
}

// ZeroGuestPage clears the page.
func (lp *LPAR) ZeroGuestPage(gpfn uint64) {
	lp.machine.phys.ZeroFrame(lp.ensure(gpfn, true))
}

// ReleaseGuestPage returns the page to the hypervisor.
func (lp *LPAR) ReleaseGuestPage(gpfn uint64) {
	lp.checkGPFN(gpfn)
	if pte, ok := lp.pt.Delete(mem.VPN(gpfn)); ok {
		lp.machine.phys.DecRef(pte.Frame)
	}
}

// SharePass runs one full Active-Memory-Sharing deduplication pass over all
// non-dedicated LPARs: identical resident pages collapse onto one
// copy-on-write frame. PowerVM's scanner converges in the background; the
// paper measures "after finishing page sharing", which a few passes model.
func (m *Machine) SharePass() {
	m.stats.PassesRun++
	byContent := make(map[uint64][]mem.FrameID) // checksum -> canonical frames
	for _, lp := range m.lpars {
		if lp.cfg.Dedicated {
			continue
		}
		lp.pt.RangeSorted(func(vpn mem.VPN, pte mem.PTE) bool {
			f := pte.Frame
			sum := m.phys.Checksum(f)
			if m.phys.IsKSM(f) {
				// Already a shared frame: make it findable for others.
				byContent[sum] = appendIfMissing(byContent[sum], f)
				return true
			}
			// Volatility gate: only pages whose content survived a full
			// pass unchanged are merge candidates.
			key := lparPage{lpar: lp.id, vpn: vpn}
			last, seen := m.checksums[key]
			m.checksums[key] = sum
			if !seen || last != sum {
				m.stats.ChecksumSkips++
				return true
			}
			for _, cand := range byContent[sum] {
				if cand != f && m.phys.Equal(cand, f) {
					m.phys.IncRef(cand)
					m.phys.DecRef(f)
					lp.pt.Set(vpn, mem.PTE{Frame: cand, Writable: pte.Writable, COW: true})
					if !m.phys.IsKSM(cand) {
						// First merge: write-protect the canonical holder too.
						m.phys.SetKSM(cand, true)
						m.protectHolders(cand)
					}
					m.stats.PagesMerged++
					return true
				}
			}
			byContent[sum] = append(byContent[sum], f)
			return true
		})
	}
	m.stats.SharedFrames = m.countShared()
}

// protectHolders write-protects every existing mapping of a frame that just
// became shared.
func (m *Machine) protectHolders(f mem.FrameID) {
	for _, lp := range m.lpars {
		lp.pt.Range(func(vpn mem.VPN, pte mem.PTE) bool {
			if pte.Frame == f && !pte.COW {
				pte.COW = true
				lp.pt.Set(vpn, pte)
			}
			return true
		})
	}
}

func (m *Machine) countShared() int {
	n := 0
	seen := map[mem.FrameID]bool{}
	for _, lp := range m.lpars {
		lp.pt.Range(func(_ mem.VPN, pte mem.PTE) bool {
			if m.phys.IsKSM(pte.Frame) && !seen[pte.Frame] {
				seen[pte.Frame] = true
				n++
			}
			return true
		})
	}
	return n
}

func appendIfMissing(s []mem.FrameID, f mem.FrameID) []mem.FrameID {
	for _, x := range s {
		if x == f {
			return s
		}
	}
	return append(s, f)
}

// Interface conformance check.
var _ guestos.Machine = (*LPAR)(nil)
