package metrics

import "repro/internal/simclock"

// Sample is one (virtual time, value) telemetry point.
type Sample struct {
	At simclock.Time
	V  float64
}

// Series is a fixed-capacity ring buffer of samples for one metric. The
// storage is bounded at construction: once full, the oldest sample is
// overwritten and the dropped count grows, so a long-running experiment can
// never make the telemetry layer allocate without bound.
type Series struct {
	name    string
	data    []Sample // ring storage; grows up to capacity, then wraps
	max     int
	head    int // index of the oldest sample once the ring is full
	dropped int
}

func newSeries(name string, capacity int) *Series {
	return &Series{name: name, max: capacity}
}

// Name reports the metric name the series was registered under.
func (s *Series) Name() string { return s.name }

// Len reports how many samples are currently retained.
func (s *Series) Len() int { return len(s.data) }

// Dropped reports how many old samples were evicted by the ring.
func (s *Series) Dropped() int { return s.dropped }

// append records a sample, evicting the oldest when the ring is full.
func (s *Series) append(at simclock.Time, v float64) {
	if len(s.data) < s.max {
		s.data = append(s.data, Sample{At: at, V: v})
		return
	}
	s.data[s.head] = Sample{At: at, V: v}
	s.head = (s.head + 1) % len(s.data)
	s.dropped++
}

// At returns the i-th retained sample in chronological order (0 = oldest).
func (s *Series) At(i int) Sample {
	if i < 0 || i >= len(s.data) {
		panic("metrics: series index out of range")
	}
	return s.data[(s.head+i)%len(s.data)]
}

// Last returns the most recent sample; ok is false for an empty series.
func (s *Series) Last() (Sample, bool) {
	if len(s.data) == 0 {
		return Sample{}, false
	}
	return s.At(len(s.data) - 1), true
}

// Samples returns a chronological copy of the retained samples.
func (s *Series) Samples() []Sample {
	out := make([]Sample, len(s.data))
	for i := range out {
		out[i] = s.At(i)
	}
	return out
}

// Values returns just the sample values, chronologically.
func (s *Series) Values() []float64 {
	out := make([]float64, len(s.data))
	for i := range out {
		out[i] = s.At(i).V
	}
	return out
}

// Min and Max report the retained value range (0 for an empty series).
func (s *Series) Min() float64 {
	var m float64
	for i := 0; i < len(s.data); i++ {
		if v := s.At(i).V; i == 0 || v < m {
			m = v
		}
	}
	return m
}

// Max reports the largest retained value (0 for an empty series).
func (s *Series) Max() float64 {
	var m float64
	for i := 0; i < len(s.data); i++ {
		if v := s.At(i).V; i == 0 || v > m {
			m = v
		}
	}
	return m
}
