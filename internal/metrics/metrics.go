// Package metrics is the simulator's time-series telemetry subsystem: a
// registry of named counters and gauges sampled on a fixed virtual-time
// cadence into bounded ring-buffer series.
//
// The paper's §2.C methodology depends on *when* measurements happen — KSM
// scans at 10 000 pages/100 ms until sharing converges and the breakdowns
// are captured only afterwards — so the registry turns the previously
// opaque interval between boot and Analyze() into inspectable series:
// merged pages per pass, frames in use, heap occupancy, swap traffic.
// The convergence detector (convergence.go) runs on top of these series.
//
// Design constraints, in order:
//
//   - deterministic: sampling is driven by the simclock event queue, probes
//     are read-only, and series order is fixed by name, so a run with
//     telemetry enabled is bit-identical to one without;
//   - allocation-bounded: every series is a fixed-capacity ring
//     (oldest samples are dropped, with a retained drop count);
//   - zero overhead when disabled: a nil *Registry is inert — every method
//     is a no-op and counters handed out by a nil registry discard Add.
//
// The registry itself is single-threaded like the rest of a cluster
// (one clock, one goroutine); concurrent *cluster runs* each own a private
// registry, and cross-run collection is synchronized by core.Telemetry.
package metrics

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/simclock"
)

// DefaultInterval is the virtual time between samples when Config leaves it
// zero: 500 ms spans five KSM wake-ups per sample at the paper's 100 ms
// sleep interval.
const DefaultInterval = 500 * simclock.Millisecond

// DefaultCapacity is the per-series ring capacity when Config leaves it
// zero: at the default cadence it retains a bit over half an hour of
// virtual time, which covers every experiment in the paper.
const DefaultCapacity = 4096

// Config tunes a registry.
type Config struct {
	// Interval is the virtual time between samples (0 = DefaultInterval).
	Interval simclock.Time
	// Capacity is the fixed ring capacity per series (0 = DefaultCapacity).
	Capacity int
}

func (c Config) withDefaults() Config {
	if c.Interval <= 0 {
		c.Interval = DefaultInterval
	}
	if c.Capacity <= 0 {
		c.Capacity = DefaultCapacity
	}
	return c
}

// Counter is a monotonically accumulating metric. Counters handed out by a
// nil registry are nil and ignore Add/Inc, so instrumented code needs no
// "is telemetry on" branches.
type Counter struct {
	v float64
}

// Add accumulates d. A nil counter is a no-op.
func (c *Counter) Add(d float64) {
	if c == nil {
		return
	}
	c.v += d
}

// Inc accumulates 1. A nil counter is a no-op.
func (c *Counter) Inc() { c.Add(1) }

// Value reports the accumulated total (0 for a nil counter).
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	return c.v
}

// probe is one registered metric: a read-only sampling function plus the
// series its samples land in.
type probe struct {
	name   string
	fn     func() float64
	series *Series
}

// Registry samples registered metrics on a virtual-time cadence. The zero
// of the type is not used; a nil *Registry is the disabled state.
type Registry struct {
	clock   *simclock.Clock
	cfg     Config
	probes  []*probe // sorted by name; registration keeps the order
	running bool
	ticks   int
}

// New creates a registry bound to a clock. Sampling does not start until
// Start is called.
func New(clock *simclock.Clock, cfg Config) *Registry {
	if clock == nil {
		panic("metrics: nil clock")
	}
	return &Registry{clock: clock, cfg: cfg.withDefaults()}
}

// register adds a probe, keeping probes sorted by name so sample order,
// CSV columns and exposition output are deterministic regardless of
// instrumentation order.
func (r *Registry) register(name string, fn func() float64) {
	if name == "" || fn == nil {
		panic("metrics: empty metric name or nil probe")
	}
	i := sort.Search(len(r.probes), func(i int) bool { return r.probes[i].name >= name })
	if i < len(r.probes) && r.probes[i].name == name {
		panic(fmt.Sprintf("metrics: duplicate metric %q", name))
	}
	p := &probe{name: name, fn: fn, series: newSeries(name, r.cfg.Capacity)}
	r.probes = append(r.probes, nil)
	copy(r.probes[i+1:], r.probes[i:])
	r.probes[i] = p
}

// Counter registers a named counter and returns it. On a nil registry it
// returns a nil (inert) counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	c := &Counter{}
	r.register(name, c.Value)
	return c
}

// Gauge registers a pull-style metric: fn is invoked at every sample tick
// and must be read-only and deterministic. A nil registry is a no-op.
func (r *Registry) Gauge(name string, fn func() float64) {
	if r == nil {
		return
	}
	r.register(name, fn)
}

// Interval reports the sampling cadence.
func (r *Registry) Interval() simclock.Time {
	if r == nil {
		return 0
	}
	return r.cfg.Interval
}

// Ticks reports how many sample ticks have fired.
func (r *Registry) Ticks() int {
	if r == nil {
		return 0
	}
	return r.ticks
}

// Start takes an immediate baseline sample and schedules the periodic
// sampler on the clock. A nil registry or a running one is a no-op.
func (r *Registry) Start() {
	if r == nil || r.running {
		return
	}
	r.running = true
	r.Sample()
	r.clock.Every(r.cfg.Interval, func(now simclock.Time) bool {
		if !r.running {
			return false
		}
		r.Sample()
		return true
	})
}

// Stop halts the periodic sampler after the current tick.
func (r *Registry) Stop() {
	if r == nil {
		return
	}
	r.running = false
}

// Sample takes one sample of every registered metric at the current virtual
// time. It may also be called directly for custom cadences.
func (r *Registry) Sample() {
	if r == nil {
		return
	}
	now := r.clock.Now()
	for _, p := range r.probes {
		p.series.append(now, p.fn())
	}
	r.ticks++
}

// Get returns the series registered under name, or nil.
func (r *Registry) Get(name string) *Series {
	if r == nil {
		return nil
	}
	i := sort.Search(len(r.probes), func(i int) bool { return r.probes[i].name >= name })
	if i < len(r.probes) && r.probes[i].name == name {
		return r.probes[i].series
	}
	return nil
}

// All returns every series in name order.
func (r *Registry) All() []*Series {
	if r == nil {
		return nil
	}
	out := make([]*Series, len(r.probes))
	for i, p := range r.probes {
		out[i] = p.series
	}
	return out
}

// CSV renders every series as one wide table: a time_s column followed by
// one column per metric in name order. Rows are the union of sample
// timestamps; a metric registered mid-run leaves its early cells empty.
func (r *Registry) CSV() string {
	if r == nil {
		return ""
	}
	var b strings.Builder
	b.WriteString("time_s")
	for _, p := range r.probes {
		b.WriteString(",")
		b.WriteString(p.name)
	}
	b.WriteString("\n")

	// Collect the sorted union of timestamps, then one row per instant.
	seen := make(map[simclock.Time]bool)
	var times []simclock.Time
	for _, p := range r.probes {
		for i := 0; i < p.series.Len(); i++ {
			at := p.series.At(i).At
			if !seen[at] {
				seen[at] = true
				times = append(times, at)
			}
		}
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	// Per-series cursors: timestamps are non-decreasing within a series, so
	// one forward walk per series covers all rows.
	cursors := make([]int, len(r.probes))
	for _, at := range times {
		fmt.Fprintf(&b, "%.3f", at.Seconds())
		for pi, p := range r.probes {
			b.WriteString(",")
			for cursors[pi] < p.series.Len() && p.series.At(cursors[pi]).At < at {
				cursors[pi]++
			}
			if cursors[pi] < p.series.Len() && p.series.At(cursors[pi]).At == at {
				fmt.Fprintf(&b, "%g", p.series.At(cursors[pi]).V)
				cursors[pi]++
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

// PrometheusText renders the latest value of every metric in the Prometheus
// text exposition format (for scripting against a run's end state). Metric
// names are prefixed with "tpsim_" and sanitized to the exposition charset.
func (r *Registry) PrometheusText() string {
	if r == nil {
		return ""
	}
	var b strings.Builder
	for _, p := range r.probes {
		last, ok := p.series.Last()
		if !ok {
			continue
		}
		name := "tpsim_" + sanitizeMetricName(p.name)
		fmt.Fprintf(&b, "# TYPE %s gauge\n%s %g\n", name, name, last.V)
	}
	return b.String()
}

// sanitizeMetricName maps a series name onto [a-zA-Z0-9_].
func sanitizeMetricName(s string) string {
	var b strings.Builder
	for _, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_':
			b.WriteRune(c)
		default:
			b.WriteRune('_')
		}
	}
	return b.String()
}
