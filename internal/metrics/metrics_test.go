package metrics

import (
	"strings"
	"testing"

	"repro/internal/simclock"
)

func TestSeriesRingBounded(t *testing.T) {
	s := newSeries("x", 4)
	for i := 0; i < 10; i++ {
		s.append(simclock.Time(i), float64(i))
	}
	if s.Len() != 4 {
		t.Fatalf("len = %d, want 4", s.Len())
	}
	if s.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", s.Dropped())
	}
	for i := 0; i < 4; i++ {
		want := float64(6 + i)
		if got := s.At(i).V; got != want {
			t.Fatalf("At(%d) = %g, want %g", i, got, want)
		}
	}
	if last, ok := s.Last(); !ok || last.V != 9 {
		t.Fatalf("Last = %v %v", last, ok)
	}
	if s.Min() != 6 || s.Max() != 9 {
		t.Fatalf("min/max = %g/%g", s.Min(), s.Max())
	}
	if vs := s.Values(); len(vs) != 4 || vs[0] != 6 || vs[3] != 9 {
		t.Fatalf("values = %v", vs)
	}
}

func TestNilRegistryInert(t *testing.T) {
	var r *Registry
	c := r.Counter("anything")
	c.Add(5) // must not panic
	c.Inc()
	r.Gauge("g", func() float64 { return 1 })
	r.Start()
	r.Sample()
	r.Stop()
	if c.Value() != 0 || r.Get("g") != nil || r.All() != nil ||
		r.CSV() != "" || r.PrometheusText() != "" || r.Ticks() != 0 {
		t.Fatal("nil registry not inert")
	}
}

func TestRegistrySamplesOnCadence(t *testing.T) {
	clock := simclock.New()
	r := New(clock, Config{Interval: simclock.Second, Capacity: 64})
	n := 0.0
	r.Gauge("ticker", func() float64 { n++; return n })
	cnt := r.Counter("events")
	r.Start()
	cnt.Add(3)
	clock.RunFor(5 * simclock.Second)
	s := r.Get("ticker")
	// One baseline sample at Start plus five periodic samples.
	if s.Len() != 6 {
		t.Fatalf("samples = %d, want 6", s.Len())
	}
	if s.At(0).At != 0 || s.At(5).At != 5*simclock.Second {
		t.Fatalf("sample times: %v .. %v", s.At(0).At, s.At(5).At)
	}
	ev := r.Get("events")
	if ev.At(0).V != 0 || ev.At(1).V != 3 {
		t.Fatalf("counter series: baseline %g then %g", ev.At(0).V, ev.At(1).V)
	}
	r.Stop()
	clock.RunFor(5 * simclock.Second)
	if s.Len() != 6 { // the pending tick sees the stop and takes no sample
		t.Fatalf("samples after stop = %d, want 6", s.Len())
	}
}

func TestRegistryDeterministicOrder(t *testing.T) {
	clock := simclock.New()
	r := New(clock, Config{})
	r.Gauge("zebra", func() float64 { return 1 })
	r.Gauge("alpha", func() float64 { return 2 })
	r.Counter("mid.counter")
	names := []string{}
	for _, s := range r.All() {
		names = append(names, s.Name())
	}
	if strings.Join(names, " ") != "alpha mid.counter zebra" {
		t.Fatalf("series order = %v", names)
	}
}

func TestDuplicateNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on duplicate metric")
		}
	}()
	r := New(simclock.New(), Config{})
	r.Gauge("dup", func() float64 { return 0 })
	r.Counter("dup")
}

func TestCSVWideFormat(t *testing.T) {
	clock := simclock.New()
	r := New(clock, Config{Interval: simclock.Second})
	r.Gauge("b.second", func() float64 { return 2 })
	r.Gauge("a.first", func() float64 { return float64(clock.Now() / simclock.Second) })
	r.Start()
	clock.RunFor(2 * simclock.Second)
	got := r.CSV()
	want := "time_s,a.first,b.second\n" +
		"0.000,0,2\n" +
		"1.000,1,2\n" +
		"2.000,2,2\n"
	if got != want {
		t.Fatalf("CSV:\n%s\nwant:\n%s", got, want)
	}
}

func TestCSVLateRegisteredSeries(t *testing.T) {
	clock := simclock.New()
	r := New(clock, Config{Interval: simclock.Second})
	r.Gauge("early", func() float64 { return 1 })
	r.Start()
	clock.RunFor(simclock.Second)
	r.Gauge("late", func() float64 { return 9 })
	clock.RunFor(simclock.Second)
	got := r.CSV()
	want := "time_s,early,late\n" +
		"0.000,1,\n" +
		"1.000,1,\n" +
		"2.000,1,9\n"
	if got != want {
		t.Fatalf("CSV:\n%s\nwant:\n%s", got, want)
	}
}

func TestPrometheusText(t *testing.T) {
	clock := simclock.New()
	r := New(clock, Config{})
	r.Gauge("ksm.pages-merged", func() float64 { return 42 })
	r.Start()
	got := r.PrometheusText()
	want := "# TYPE tpsim_ksm_pages_merged gauge\ntpsim_ksm_pages_merged 42\n"
	if got != want {
		t.Fatalf("exposition:\n%s\nwant:\n%s", got, want)
	}
}

func TestSamplingIsAllocationBounded(t *testing.T) {
	clock := simclock.New()
	r := New(clock, Config{Interval: simclock.Millisecond, Capacity: 8})
	r.Gauge("g", func() float64 { return 1 })
	r.Start()
	clock.RunFor(simclock.Second) // 1000 ticks into a ring of 8
	s := r.Get("g")
	if s.Len() != 8 {
		t.Fatalf("len = %d, want 8", s.Len())
	}
	if s.Dropped() != 1000+1-8 {
		t.Fatalf("dropped = %d, want %d", s.Dropped(), 1000+1-8)
	}
	// The retained window is the most recent one.
	if first := s.At(0).At; first != simclock.Time(993)*simclock.Millisecond {
		t.Fatalf("oldest retained at %v", first)
	}
}
