package metrics

import "repro/internal/simclock"

// ConvergenceConfig tunes the steady-state detector. The detector declares
// a series converged at the first sample window over which the value stays
// inside a relative tolerance band — for KSM's cumulative merged-pages
// counter that is exactly "the merge rate has flattened", the condition the
// paper waits for (§2.C) before taking its breakdowns.
type ConvergenceConfig struct {
	// Window is the number of consecutive samples that must stay inside the
	// band (0 = DefaultWindow). At the default 500 ms cadence the default
	// window spans 8 s of virtual time — long enough to bridge the idle gap
	// between KSM wake-ups and between sequential guest boots.
	Window int
	// Tolerance is the relative band width (0 = DefaultTolerance): a window
	// is flat when max-min <= Tolerance * max(|max|, 1).
	Tolerance float64
}

// Detector defaults.
const (
	DefaultWindow    = 16
	DefaultTolerance = 0.02
)

func (cc ConvergenceConfig) withDefaults() ConvergenceConfig {
	if cc.Window <= 0 {
		cc.Window = DefaultWindow
	}
	if cc.Tolerance <= 0 {
		cc.Tolerance = DefaultTolerance
	}
	return cc
}

// flat reports whether samples [i, i+Window) of s stay inside the band.
func (cc ConvergenceConfig) flat(s *Series, i int) bool {
	lo := s.At(i).V
	hi := lo
	for j := i + 1; j < i+cc.Window; j++ {
		v := s.At(j).V
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	scale := hi
	if scale < 0 {
		scale = -scale
	}
	if scale < 1 {
		scale = 1
	}
	return hi-lo <= cc.Tolerance*scale
}

// Steady reports whether the trailing Window samples of the series are
// flat — the online form of the detector, cheap enough to evaluate after
// every clock step while waiting for convergence.
func (cc ConvergenceConfig) Steady(s *Series) bool {
	cc = cc.withDefaults()
	if s == nil || s.Len() < cc.Window {
		return false
	}
	return cc.flat(s, s.Len()-cc.Window)
}

// ConvergedAt scans the whole retained series for the earliest flat window
// and returns the virtual time of that window's first sample — the moment
// an online detector would have fired. ok is false when the series never
// flattens (or is shorter than the window).
func (cc ConvergenceConfig) ConvergedAt(s *Series) (simclock.Time, bool) {
	cc = cc.withDefaults()
	if s == nil || s.Len() < cc.Window {
		return 0, false
	}
	for i := 0; i+cc.Window <= s.Len(); i++ {
		if cc.flat(s, i) {
			return s.At(i).At, true
		}
	}
	return 0, false
}
