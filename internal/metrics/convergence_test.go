package metrics

import (
	"testing"

	"repro/internal/simclock"
)

// rampSeries builds a cumulative counter shape: a fast ramp for rampN
// samples, then a plateau (with optional per-sample trickle) for flatN.
func rampSeries(rampN, flatN int, rampStep, trickle float64) *Series {
	s := newSeries("ramp", rampN+flatN)
	v := 0.0
	at := simclock.Time(0)
	for i := 0; i < rampN; i++ {
		v += rampStep
		s.append(at, v)
		at += simclock.Second
	}
	for i := 0; i < flatN; i++ {
		v += trickle
		s.append(at, v)
		at += simclock.Second
	}
	return s
}

func TestConvergedAtFindsPlateauStart(t *testing.T) {
	cc := ConvergenceConfig{Window: 8, Tolerance: 0.02}
	s := rampSeries(20, 30, 100, 0)
	at, ok := cc.ConvergedAt(s)
	if !ok {
		t.Fatal("no convergence on ramp+plateau")
	}
	// The first flat window starts at the last ramp sample (the window
	// [19, 27) spans the final ramp value and seven identical samples —
	// max-min = 0 there is not right: sample 19 is the last increment, so
	// the earliest fully flat window starts at index 19 only if samples
	// 19..26 are within band. Sample 19 is the ramp top (2000), samples
	// 20.. are also 2000: flat from index 19.
	if want := simclock.Time(19) * simclock.Second; at != want {
		t.Fatalf("converged at %v, want %v", at, want)
	}
}

func TestConvergedAtToleratesTrickle(t *testing.T) {
	cc := ConvergenceConfig{Window: 8, Tolerance: 0.02}
	// Plateau grows by 1/sample against a 2000 total: 7 per window is well
	// inside the 2% band (40).
	s := rampSeries(20, 30, 100, 1)
	if _, ok := cc.ConvergedAt(s); !ok {
		t.Fatal("trickle within tolerance should converge")
	}
}

func TestConvergedAtRejectsOngoingRamp(t *testing.T) {
	cc := ConvergenceConfig{Window: 8, Tolerance: 0.02}
	s := rampSeries(40, 0, 100, 0)
	if _, ok := cc.ConvergedAt(s); ok {
		t.Fatal("pure ramp must not converge")
	}
	short := rampSeries(3, 0, 1, 0)
	if _, ok := cc.ConvergedAt(short); ok {
		t.Fatal("series shorter than the window must not converge")
	}
}

func TestSteadyTrailingWindow(t *testing.T) {
	cc := ConvergenceConfig{Window: 8, Tolerance: 0.02}
	growing := rampSeries(30, 0, 100, 0)
	if cc.Steady(growing) {
		t.Fatal("growing series reported steady")
	}
	settled := rampSeries(20, 10, 100, 0)
	if !cc.Steady(settled) {
		t.Fatal("settled series not reported steady")
	}
	if cc.Steady(nil) {
		t.Fatal("nil series reported steady")
	}
}

func TestDetectorDefaults(t *testing.T) {
	cc := ConvergenceConfig{}.withDefaults()
	if cc.Window != DefaultWindow || cc.Tolerance != DefaultTolerance {
		t.Fatalf("defaults = %+v", cc)
	}
	// The zero config works directly through the public entry points.
	s := rampSeries(20, DefaultWindow+4, 100, 0)
	if _, ok := (ConvergenceConfig{}).ConvergedAt(s); !ok {
		t.Fatal("zero-config detector failed on plateau")
	}
}

func TestDetectorNearZeroSeries(t *testing.T) {
	// A series hovering at tiny absolute values uses the max(|max|,1)
	// floor, so noise around zero converges instead of dividing by ~0.
	s := newSeries("z", 32)
	for i := 0; i < 32; i++ {
		v := 0.0
		if i%2 == 0 {
			v = 0.01
		}
		s.append(simclock.Time(i), v)
	}
	if _, ok := (ConvergenceConfig{Window: 8, Tolerance: 0.02}).ConvergedAt(s); !ok {
		t.Fatal("near-zero noise should be inside the absolute floor band")
	}
}
