// Package faults injects guest-lifecycle and memory-pressure faults into a
// running cluster on the simulated clock: guest kills with delayed restarts,
// host memory-demand spikes that degrade through balloon → swap → huge-page
// split and end in an OOM kill, and KSM daemon stalls. The schedule is
// derived entirely from a seed, so a chaos run is as reproducible as a
// fault-free one — the property every figure in this repository is built on.
//
// The injector knows nothing about hypervisors or scanners; it drives a
// Target. That keeps the package dependency-free (clock and metrics only)
// and lets tests script a fake cluster.
package faults

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/simclock"
)

// Config describes one fault schedule. Every interval is a mean: actual gaps
// are drawn uniformly from [0.5×, 1.5×] of it. A zero interval disables that
// fault class.
type Config struct {
	// Seed derives the entire schedule and all victim choices.
	Seed uint64
	// Horizon bounds event generation (0 = 10 virtual minutes). Events past
	// the end of the run simply never fire.
	Horizon simclock.Time

	// KillEvery is the mean gap between guest kills. A kill picks a uniform
	// victim among currently-alive guests, and is skipped (counted, not
	// retried) when at most one guest is alive — a host that kills its last
	// guest has no experiment left to run.
	KillEvery simclock.Time
	// RestartDelay is how long a killed guest stays down (0 = 3 s).
	RestartDelay simclock.Time

	// SpikeEvery is the mean gap between memory-demand spikes.
	SpikeEvery simclock.Time
	// SpikePages is the spike size in frames.
	SpikePages int
	// SpikeHold is how long a spike pins its frames (0 = 2 s).
	SpikeHold simclock.Time

	// StallEvery is the mean gap between KSM daemon stalls.
	StallEvery simclock.Time
	// StallFor is each stall's length (0 = 1 s).
	StallFor simclock.Time

	// HostKillEvery is the mean gap between host failures (a whole machine
	// drops, taking every resident guest with it). Fires only against
	// targets implementing HostTarget; skipped (counted) when at most one
	// host is alive.
	HostKillEvery simclock.Time
	// HostRestartDelay is how long a failed host stays down (0 = 10 s).
	HostRestartDelay simclock.Time

	// HostDrainEvery is the mean gap between host drain requests
	// (maintenance: the scheduler must evacuate the host via migration).
	HostDrainEvery simclock.Time
	// HostDrainFor is how long a drained host stays out (0 = 20 s).
	HostDrainFor simclock.Time
}

func (cfg Config) withDefaults() Config {
	if cfg.Horizon == 0 {
		cfg.Horizon = 10 * simclock.Minute
	}
	if cfg.RestartDelay == 0 {
		cfg.RestartDelay = 3 * simclock.Second
	}
	if cfg.SpikeHold == 0 {
		cfg.SpikeHold = 2 * simclock.Second
	}
	if cfg.StallFor == 0 {
		cfg.StallFor = simclock.Second
	}
	if cfg.HostRestartDelay == 0 {
		cfg.HostRestartDelay = 10 * simclock.Second
	}
	if cfg.HostDrainFor == 0 {
		cfg.HostDrainFor = 20 * simclock.Second
	}
	return cfg
}

// SpikeOutcome reports how one memory-demand spike was served, in the
// degradation order the target applied: balloon reclaim first, then frame
// claims backed by swap-out and huge-page splits, then OOM kills for the
// remainder.
type SpikeOutcome struct {
	// BalloonPages were recovered by asking guests to shrink their caches.
	BalloonPages int
	// ClaimedPages were taken from the pool (evicting/splitting as needed).
	ClaimedPages int
	// OOMKills counts guests killed because the pool could not cover the
	// spike even after eviction.
	OOMKills int
}

// Target is the cluster surface the injector drives.
type Target interface {
	// Guests reports the number of guest slots (dead or alive).
	Guests() int
	// Alive reports whether the slot's guest is currently running.
	Alive(slot int) bool
	// Kill tears the slot's guest down.
	Kill(slot int)
	// Restart reboots a killed slot.
	Restart(slot int)
	// DemandSpike applies host memory pressure of the given size.
	DemandSpike(pages int) SpikeOutcome
	// ReleaseSpike releases all pressure previously applied by DemandSpike.
	ReleaseSpike()
	// StallScanner suspends the KSM daemon for d.
	StallScanner(d simclock.Time)
}

// HostTarget is the optional host-level surface of a multi-host target.
// Single-host targets simply don't implement it and host fault classes
// never fire against them.
type HostTarget interface {
	// Hosts reports the number of host slots (dead or alive).
	Hosts() int
	// HostAlive reports whether the slot's host is currently up.
	HostAlive(h int) bool
	// KillHost fails the host outright: every resident guest dies with it.
	KillHost(h int)
	// RestartHost brings a failed host back, empty.
	RestartHost(h int)
	// DrainHost marks the host for evacuation; the scheduler must migrate
	// its guests away.
	DrainHost(h int)
	// UndrainHost returns a drained host to service.
	UndrainHost(h int)
}

// Stats counts injected events.
type Stats struct {
	Kills         uint64
	KillsSkipped  uint64 // kill events with at most one guest alive
	Restarts      uint64
	Spikes        uint64
	SpikeReleases uint64
	Stalls        uint64
	OOMKills      uint64
	BalloonPages  uint64 // pages recovered via balloon across all spikes
	ClaimedPages  uint64 // frames claimed from the pool across all spikes

	HostKills         uint64
	HostKillsSkipped  uint64 // host-kill events with at most one host alive
	HostRestarts      uint64
	HostDrains        uint64
	HostDrainsSkipped uint64 // drain events with no drainable host
}

// Injector schedules and fires one fault schedule against one target.
type Injector struct {
	clock  *simclock.Clock
	cfg    Config
	target Target
	hosts  HostTarget // nil unless the target implements HostTarget
	rng    splitmix
	stats  Stats

	// draining tracks hosts this injector has drained and not yet
	// undrained, so a drain event never picks an already-draining victim.
	draining map[int]bool

	started bool
}

// New creates an injector. Call Start to generate and schedule the events.
// Host-level fault classes activate only when the target also implements
// HostTarget.
func New(clock *simclock.Clock, cfg Config, target Target) *Injector {
	hosts, _ := target.(HostTarget)
	return &Injector{
		clock:    clock,
		cfg:      cfg.withDefaults(),
		target:   target,
		hosts:    hosts,
		rng:      splitmix{state: cfg.Seed},
		draining: make(map[int]bool),
	}
}

// Stats returns a snapshot of event counters.
func (in *Injector) Stats() Stats { return in.stats }

// Start generates the full schedule from the seed and registers every event
// on the clock at absolute times relative to now. Victim selection happens
// at fire time (it depends on who is alive), but draws from the same
// deterministic stream, so a fixed seed yields a fixed fault history.
func (in *Injector) Start() {
	if in.started {
		panic("faults: Start called twice")
	}
	in.started = true
	in.schedule(in.cfg.KillEvery, in.fireKill)
	in.schedule(in.cfg.SpikeEvery, in.fireSpike)
	in.schedule(in.cfg.StallEvery, in.fireStall)
	if in.hosts != nil {
		in.schedule(in.cfg.HostKillEvery, in.fireHostKill)
		in.schedule(in.cfg.HostDrainEvery, in.fireHostDrain)
	}
}

// schedule lays out one fault class's arrivals across the horizon.
func (in *Injector) schedule(every simclock.Time, fire func(now simclock.Time)) {
	if every <= 0 {
		return
	}
	for t := in.gap(every); t < in.cfg.Horizon; t += in.gap(every) {
		in.clock.Schedule(t, fire)
	}
}

// gap draws one inter-arrival time uniformly from [every/2, 3*every/2).
func (in *Injector) gap(every simclock.Time) simclock.Time {
	return every/2 + simclock.Time(in.rng.next()%uint64(every))
}

func (in *Injector) fireKill(now simclock.Time) {
	var alive []int
	for slot := 0; slot < in.target.Guests(); slot++ {
		if in.target.Alive(slot) {
			alive = append(alive, slot)
		}
	}
	if len(alive) <= 1 {
		in.stats.KillsSkipped++
		return
	}
	victim := alive[in.rng.next()%uint64(len(alive))]
	in.target.Kill(victim)
	in.stats.Kills++
	in.clock.Schedule(in.cfg.RestartDelay, func(simclock.Time) {
		if in.target.Alive(victim) {
			return // already rebooted by someone else
		}
		in.target.Restart(victim)
		in.stats.Restarts++
	})
}

func (in *Injector) fireSpike(now simclock.Time) {
	if in.cfg.SpikePages <= 0 {
		return
	}
	out := in.target.DemandSpike(in.cfg.SpikePages)
	in.stats.Spikes++
	in.stats.OOMKills += uint64(out.OOMKills)
	in.stats.BalloonPages += uint64(out.BalloonPages)
	in.stats.ClaimedPages += uint64(out.ClaimedPages)
	in.clock.Schedule(in.cfg.SpikeHold, func(simclock.Time) {
		in.target.ReleaseSpike()
		in.stats.SpikeReleases++
	})
}

func (in *Injector) fireStall(now simclock.Time) {
	in.target.StallScanner(in.cfg.StallFor)
	in.stats.Stalls++
}

// aliveHosts lists up host slots, optionally excluding ones this injector
// is already draining.
func (in *Injector) aliveHosts(skipDraining bool) []int {
	var alive []int
	for h := 0; h < in.hosts.Hosts(); h++ {
		if !in.hosts.HostAlive(h) {
			continue
		}
		if skipDraining && in.draining[h] {
			continue
		}
		alive = append(alive, h)
	}
	return alive
}

func (in *Injector) fireHostKill(now simclock.Time) {
	alive := in.aliveHosts(false)
	if len(alive) <= 1 {
		in.stats.HostKillsSkipped++
		return
	}
	victim := alive[in.rng.next()%uint64(len(alive))]
	in.hosts.KillHost(victim)
	in.stats.HostKills++
	in.clock.Schedule(in.cfg.HostRestartDelay, func(simclock.Time) {
		if in.hosts.HostAlive(victim) {
			return
		}
		in.hosts.RestartHost(victim)
		in.stats.HostRestarts++
	})
}

func (in *Injector) fireHostDrain(now simclock.Time) {
	// Never drain the last un-drained host: evacuation needs a target.
	candidates := in.aliveHosts(true)
	if len(candidates) <= 1 {
		in.stats.HostDrainsSkipped++
		return
	}
	victim := candidates[in.rng.next()%uint64(len(candidates))]
	in.draining[victim] = true
	in.hosts.DrainHost(victim)
	in.stats.HostDrains++
	in.clock.Schedule(in.cfg.HostDrainFor, func(simclock.Time) {
		delete(in.draining, victim)
		// The host may have died (and even come back) mid-drain; undrain
		// is idempotent on the target side.
		in.hosts.UndrainHost(victim)
	})
}

// Instrument registers per-event counters as gauges on the registry (the
// metrics convention for monotone simulator counters). Nil-safe.
func (in *Injector) Instrument(r *metrics.Registry) {
	if r == nil {
		return
	}
	r.Gauge("faults.kills", func() float64 { return float64(in.stats.Kills) })
	r.Gauge("faults.kills_skipped", func() float64 { return float64(in.stats.KillsSkipped) })
	r.Gauge("faults.restarts", func() float64 { return float64(in.stats.Restarts) })
	r.Gauge("faults.spikes", func() float64 { return float64(in.stats.Spikes) })
	r.Gauge("faults.stalls", func() float64 { return float64(in.stats.Stalls) })
	r.Gauge("faults.oom_kills", func() float64 { return float64(in.stats.OOMKills) })
	r.Gauge("faults.balloon_pages", func() float64 { return float64(in.stats.BalloonPages) })
	r.Gauge("faults.claimed_pages", func() float64 { return float64(in.stats.ClaimedPages) })
	r.Gauge("faults.host_kills", func() float64 { return float64(in.stats.HostKills) })
	r.Gauge("faults.host_restarts", func() float64 { return float64(in.stats.HostRestarts) })
	r.Gauge("faults.host_drains", func() float64 { return float64(in.stats.HostDrains) })
}

// splitmix is a splitmix64 stream: tiny, seedable, and — unlike the global
// math/rand — owned by one injector, so concurrent chaos cells under -jobs
// cannot perturb each other's draws.
type splitmix struct{ state uint64 }

func (s *splitmix) next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// String renders the stats for debug logs.
func (s Stats) String() string {
	return fmt.Sprintf("kills=%d (skipped %d) restarts=%d spikes=%d (oom %d) stalls=%d",
		s.Kills, s.KillsSkipped, s.Restarts, s.Spikes, s.OOMKills, s.Stalls)
}
