package faults

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/metrics"
	"repro/internal/simclock"
)

// fakeTarget scripts a cluster: a fixed number of slots with an alive bit,
// recording every call in order so two runs can be compared event for event.
type fakeTarget struct {
	alive []bool
	log   []string
	// spike is the outcome returned by every DemandSpike.
	spike SpikeOutcome
}

func newFakeTarget(n int) *fakeTarget {
	ft := &fakeTarget{alive: make([]bool, n)}
	for i := range ft.alive {
		ft.alive[i] = true
	}
	return ft
}

func (ft *fakeTarget) Guests() int         { return len(ft.alive) }
func (ft *fakeTarget) Alive(slot int) bool { return ft.alive[slot] }
func (ft *fakeTarget) Kill(slot int) {
	ft.alive[slot] = false
	ft.log = append(ft.log, fmt.Sprintf("kill %d", slot))
}
func (ft *fakeTarget) Restart(slot int) {
	ft.alive[slot] = true
	ft.log = append(ft.log, fmt.Sprintf("restart %d", slot))
}
func (ft *fakeTarget) ReleaseSpike() { ft.log = append(ft.log, "release") }
func (ft *fakeTarget) StallScanner(d simclock.Time) {
	ft.log = append(ft.log, fmt.Sprintf("stall %d", d))
}
func (ft *fakeTarget) DemandSpike(pages int) SpikeOutcome {
	ft.log = append(ft.log, fmt.Sprintf("spike %d", pages))
	return ft.spike
}

func chaosRun(seed uint64, guests int) (*fakeTarget, Stats) {
	clock := simclock.New()
	ft := newFakeTarget(guests)
	inj := New(clock, Config{
		Seed:       seed,
		Horizon:    time(60),
		KillEvery:  time(5),
		SpikeEvery: time(7),
		SpikePages: 100,
		StallEvery: time(11),
	}, ft)
	inj.Start()
	clock.RunFor(time(90)) // past the horizon: drain everything, restarts included
	return ft, inj.Stats()
}

func time(sec int) simclock.Time { return simclock.Time(sec) * simclock.Second }

func TestSameSeedSameFaultHistory(t *testing.T) {
	ft1, st1 := chaosRun(42, 4)
	ft2, st2 := chaosRun(42, 4)
	if !reflect.DeepEqual(ft1.log, ft2.log) {
		t.Fatalf("same seed, different histories:\n%v\n%v", ft1.log, ft2.log)
	}
	if st1 != st2 {
		t.Fatalf("same seed, different stats: %v vs %v", st1, st2)
	}
	if st1.Kills == 0 || st1.Spikes == 0 || st1.Stalls == 0 {
		t.Fatalf("schedule too sparse to test anything: %v", st1)
	}
}

func TestDifferentSeedsDiverge(t *testing.T) {
	ft1, _ := chaosRun(1, 4)
	ft2, _ := chaosRun(2, 4)
	if reflect.DeepEqual(ft1.log, ft2.log) {
		t.Fatal("different seeds produced identical fault histories")
	}
}

func TestStatsMatchHistory(t *testing.T) {
	ft, st := chaosRun(7, 3)
	count := func(prefix string) uint64 {
		var n uint64
		for _, e := range ft.log {
			if len(e) >= len(prefix) && e[:len(prefix)] == prefix {
				n++
			}
		}
		return n
	}
	if got := count("kill "); got != st.Kills {
		t.Fatalf("log has %d kills, stats say %d", got, st.Kills)
	}
	if got := count("restart "); got != st.Restarts {
		t.Fatalf("log has %d restarts, stats say %d", got, st.Restarts)
	}
	if got := count("spike "); got != st.Spikes {
		t.Fatalf("log has %d spikes, stats say %d", got, st.Spikes)
	}
	if got := count("release"); got != st.SpikeReleases {
		t.Fatalf("log has %d releases, stats say %d", got, st.SpikeReleases)
	}
	if got := count("stall "); got != st.Stalls {
		t.Fatalf("log has %d stalls, stats say %d", got, st.Stalls)
	}
}

func TestEveryKillIsRestarted(t *testing.T) {
	// The run extends well past horizon+RestartDelay, so every kill must have
	// been matched by a restart and all guests end up alive.
	ft, st := chaosRun(42, 4)
	if st.Restarts != st.Kills {
		t.Fatalf("%d kills but %d restarts", st.Kills, st.Restarts)
	}
	for slot, a := range ft.alive {
		if !a {
			t.Fatalf("slot %d left dead after the run", slot)
		}
	}
}

func TestKillSkippedWithOneGuest(t *testing.T) {
	clock := simclock.New()
	ft := newFakeTarget(1)
	inj := New(clock, Config{Seed: 3, Horizon: time(60), KillEvery: time(5)}, ft)
	inj.Start()
	clock.RunFor(time(90))
	st := inj.Stats()
	if st.Kills != 0 {
		t.Fatalf("killed the last guest %d times", st.Kills)
	}
	if st.KillsSkipped == 0 {
		t.Fatal("no kill events were even attempted")
	}
	if !ft.alive[0] {
		t.Fatal("sole guest is dead")
	}
}

func TestSpikeOutcomeAccumulates(t *testing.T) {
	clock := simclock.New()
	ft := newFakeTarget(2)
	ft.spike = SpikeOutcome{BalloonPages: 10, ClaimedPages: 90, OOMKills: 1}
	inj := New(clock, Config{Seed: 5, Horizon: time(60), SpikeEvery: time(6), SpikePages: 100}, ft)
	inj.Start()
	clock.RunFor(time(90))
	st := inj.Stats()
	if st.Spikes == 0 {
		t.Fatal("no spikes fired")
	}
	if st.BalloonPages != 10*st.Spikes || st.ClaimedPages != 90*st.Spikes || st.OOMKills != st.Spikes {
		t.Fatalf("outcome accumulation wrong: %+v", st)
	}
	if st.SpikeReleases != st.Spikes {
		t.Fatalf("%d spikes but %d releases", st.Spikes, st.SpikeReleases)
	}
}

func TestZeroIntervalsDisableFaultClasses(t *testing.T) {
	clock := simclock.New()
	ft := newFakeTarget(4)
	inj := New(clock, Config{Seed: 9, Horizon: time(60)}, ft)
	inj.Start()
	clock.RunFor(time(90))
	if len(ft.log) != 0 {
		t.Fatalf("events fired with all intervals zero: %v", ft.log)
	}
}

func TestStartTwicePanics(t *testing.T) {
	inj := New(simclock.New(), Config{Seed: 1}, newFakeTarget(2))
	inj.Start()
	defer func() {
		if recover() == nil {
			t.Fatal("second Start did not panic")
		}
	}()
	inj.Start()
}

func TestInstrumentExportsGauges(t *testing.T) {
	clock := simclock.New()
	ft := newFakeTarget(3)
	inj := New(clock, Config{Seed: 11, Horizon: time(60), KillEvery: time(5)}, ft)
	r := metrics.New(clock, metrics.Config{})
	inj.Instrument(r)
	inj.Instrument(nil) // nil-safe
	inj.Start()
	clock.RunFor(time(90))
	r.Sample()
	s := r.Get("faults.kills")
	if s == nil {
		t.Fatal("faults.kills gauge not registered")
	}
	last, ok := s.Last()
	if !ok || uint64(last.V) != inj.Stats().Kills {
		t.Fatalf("gauge %v != stats %d", last.V, inj.Stats().Kills)
	}
}
