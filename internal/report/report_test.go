package report

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestTableAlignment(t *testing.T) {
	tab := &Table{Title: "T", Headers: []string{"a", "bbbb"}}
	tab.AddRow("xxxxx", 1)
	tab.AddRow("y", 2.5)
	out := tab.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, sep, 2 rows
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if len(lines[1]) != len(lines[2]) {
		t.Fatalf("separator misaligned:\n%s", out)
	}
	if !strings.Contains(out, "2.5") {
		t.Fatal("float formatting lost")
	}
}

func TestCSVEscaping(t *testing.T) {
	tab := &Table{Headers: []string{"a", "b"}}
	tab.AddRow(`has,comma`, `has"quote`)
	csv := tab.CSV()
	if !strings.Contains(csv, `"has,comma"`) {
		t.Fatalf("comma not quoted: %s", csv)
	}
	if !strings.Contains(csv, `"has""quote"`) {
		t.Fatalf("quote not doubled: %s", csv)
	}
}

func TestMBFormat(t *testing.T) {
	if MB(10<<20) != "10" {
		t.Fatalf("MB = %s", MB(10<<20))
	}
	if MB1(1<<19) != "0.5" {
		t.Fatalf("MB1 = %s", MB1(1<<19))
	}
}

func TestHBarBounds(t *testing.T) {
	if got := HBar(5, 10, 10); got != "#####....." {
		t.Fatalf("HBar = %q", got)
	}
	if got := HBar(20, 10, 10); got != "##########" {
		t.Fatalf("overflow clamp: %q", got)
	}
	if got := HBar(-1, 10, 10); got != ".........." {
		t.Fatalf("negative clamp: %q", got)
	}
	if HBar(1, 0, 10) != "" {
		t.Fatal("zero max should render empty")
	}
}

func TestPropertyHBarWidthConstant(t *testing.T) {
	f := func(v, m uint16) bool {
		if m == 0 {
			return true
		}
		return len(HBar(float64(v), float64(m), 20)) == 20
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStackedBar(t *testing.T) {
	out := StackedBar("JVM1", []Segment{{"code", 10}, {"heap", 30}}, 80, 40)
	if !strings.Contains(out, "total=40.0") {
		t.Fatalf("total missing: %s", out)
	}
	if !strings.Contains(out, "code=10.0") || !strings.Contains(out, "heap=30.0") {
		t.Fatalf("legend missing: %s", out)
	}
	if !strings.Contains(out, "|") {
		t.Fatal("bar missing")
	}
}

func TestSeriesTable(t *testing.T) {
	out := SeriesTable("Fig 7", "VMs", []string{"1", "2"}, []Series{
		{Name: "Default", Values: []float64{10, 20}},
		{Name: "Ours", Values: []float64{12, 25}},
	}, "req/s")
	if !strings.Contains(out, "Fig 7") || !strings.Contains(out, "Default") {
		t.Fatalf("missing pieces:\n%s", out)
	}
	if !strings.Contains(out, "25.0") {
		t.Fatalf("missing value:\n%s", out)
	}
}

func TestSpark(t *testing.T) {
	if got := Spark(nil, 10); got != "" {
		t.Fatalf("empty input: %q", got)
	}
	if got := Spark([]float64{1, 2, 3}, 0); got != "" {
		t.Fatalf("zero width: %q", got)
	}
	// Flat series renders as the lowest glyph.
	if got := Spark([]float64{5, 5, 5, 5}, 4); got != "____" {
		t.Fatalf("flat: %q", got)
	}
	// A ramp must be monotonically non-decreasing in glyph intensity and
	// span the full ramp.
	ramp := make([]float64, 48)
	for i := range ramp {
		ramp[i] = float64(i)
	}
	got := Spark(ramp, 12)
	if len(got) != 12 || got[0] != '_' || got[len(got)-1] != '@' {
		t.Fatalf("ramp: %q", got)
	}
	prev := -1
	for _, ch := range []byte(got) {
		lvl := strings.IndexByte(sparkGlyphs, ch)
		if lvl < 0 || lvl < prev {
			t.Fatalf("ramp not monotone: %q", got)
		}
		prev = lvl
	}
	// Fewer values than columns: width clamps to the value count.
	if got := Spark([]float64{0, 1}, 10); got != "_@" {
		t.Fatalf("clamp: %q", got)
	}
	// Buckets keep peaks: a single spike must survive downsampling.
	spike := make([]float64, 40)
	spike[17] = 9
	if !strings.Contains(Spark(spike, 8), "@") {
		t.Fatalf("spike lost: %q", Spark(spike, 8))
	}
}
