// Package report renders experiment results as aligned ASCII tables, bar
// charts and CSV — the textual equivalents of the paper's figures that
// cmd/tpsim and the benchmark harness print.
package report

import (
	"fmt"
	"strings"
)

// Table is a titled grid of cells.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row of cells (stringifying each).
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.1f", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title + "\n")
	}
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(pad(c, widths[i]))
		}
		b.WriteString("\n")
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (quotes around cells
// containing commas).
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString(",")
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			b.WriteString(c)
		}
		b.WriteString("\n")
	}
	writeRow(t.Headers)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// MB formats bytes as whole megabytes.
func MB(bytes int64) string {
	return fmt.Sprintf("%.0f", float64(bytes)/(1<<20))
}

// MB1 formats bytes as megabytes with one decimal.
func MB1(bytes int64) string {
	return fmt.Sprintf("%.1f", float64(bytes)/(1<<20))
}

// HBar renders value/max as a fixed-width horizontal bar.
func HBar(value, max float64, width int) string {
	if max <= 0 || width <= 0 {
		return ""
	}
	n := int(value/max*float64(width) + 0.5)
	if n < 0 {
		n = 0
	}
	if n > width {
		n = width
	}
	return strings.Repeat("#", n) + strings.Repeat(".", width-n)
}

// Segment is one labelled portion of a stacked bar.
type Segment struct {
	Label string
	Value float64
}

// StackedBar renders a labelled stacked bar: each segment gets a character
// proportional to its share, with a legend of exact values.
func StackedBar(name string, segments []Segment, max float64, width int) string {
	var total float64
	for _, s := range segments {
		total += s.Value
	}
	var bar strings.Builder
	used := 0
	glyphs := "#@%*+=o^"
	for i, s := range segments {
		n := 0
		if max > 0 {
			n = int(s.Value/max*float64(width) + 0.5)
		}
		if used+n > width {
			n = width - used
		}
		bar.WriteString(strings.Repeat(string(glyphs[i%len(glyphs)]), n))
		used += n
	}
	if used < width {
		bar.WriteString(strings.Repeat(".", width-used))
	}
	parts := make([]string, 0, len(segments))
	for i, s := range segments {
		parts = append(parts, fmt.Sprintf("%c %s=%.1f", glyphs[i%len(glyphs)], s.Label, s.Value))
	}
	return fmt.Sprintf("%-10s |%s| total=%.1f  (%s)", name, bar.String(), total, strings.Join(parts, ", "))
}

// sparkGlyphs is the intensity ramp of Spark, lowest to highest. Plain
// ASCII so the timelines survive any terminal or log pipeline.
const sparkGlyphs = "_.:-=+*#@"

// Spark renders the values as a fixed-width ASCII sparkline: the range
// [min, max] maps onto the glyph ramp, and when there are more values than
// columns each column shows the maximum of its bucket (peaks matter more
// than troughs in a telemetry timeline). A flat series renders as the
// lowest glyph.
func Spark(values []float64, width int) string {
	if len(values) == 0 || width <= 0 {
		return ""
	}
	if width > len(values) {
		width = len(values)
	}
	lo, hi := values[0], values[0]
	for _, v := range values {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	var b strings.Builder
	for col := 0; col < width; col++ {
		start := col * len(values) / width
		end := (col + 1) * len(values) / width
		if end <= start {
			end = start + 1
		}
		bucket := values[start]
		for _, v := range values[start+1 : end] {
			if v > bucket {
				bucket = v
			}
		}
		g := 0
		if hi > lo {
			g = int((bucket - lo) / (hi - lo) * float64(len(sparkGlyphs)-1))
		}
		b.WriteByte(sparkGlyphs[g])
	}
	return b.String()
}

// Series is one line of an X/Y chart (Fig. 7 / Fig. 8).
type Series struct {
	Name   string
	Values []float64
}

// SeriesTable renders several series against shared X labels, with bars
// scaled to the global maximum.
func SeriesTable(title, xName string, xs []string, series []Series, unit string) string {
	var max float64
	for _, s := range series {
		for _, v := range s.Values {
			if v > max {
				max = v
			}
		}
	}
	t := &Table{Title: title}
	t.Headers = []string{xName}
	for _, s := range series {
		t.Headers = append(t.Headers, s.Name+" ("+unit+")", "")
	}
	for i, x := range xs {
		row := []string{x}
		for _, s := range series {
			v := 0.0
			if i < len(s.Values) {
				v = s.Values[i]
			}
			row = append(row, fmt.Sprintf("%.1f", v), HBar(v, max, 24))
		}
		t.Rows = append(t.Rows, row)
	}
	return t.String()
}
