// Package trace records a timeline of experiment events against the
// virtual clock: guest boots, deployment phases, scanner progress,
// measurement windows. The timeline is what the paper's lab notebook
// would hold — when each VM started, when KSM converged, when the
// measurement was taken — and makes simulated runs debuggable.
package trace

import (
	"fmt"
	"strings"

	"repro/internal/simclock"
)

// Kind classifies an event.
type Kind string

// Event kinds emitted by the experiment driver.
const (
	KindBoot    Kind = "boot"
	KindDeploy  Kind = "deploy"
	KindPhase   Kind = "phase"
	KindScanner Kind = "scanner"
	KindMeasure Kind = "measure"
	KindBalloon Kind = "balloon"
)

// Event is one timeline entry.
type Event struct {
	At      simclock.Time
	Kind    Kind
	Subject string // VM name, scanner, ...
	Message string
}

// Log is a bounded event recorder. When the capacity is exceeded the oldest
// events are dropped (the count of drops is retained). Storage is a ring:
// once full, head marks the oldest slot and Emit overwrites it, so eviction
// is O(1) instead of shifting the whole buffer per event.
type Log struct {
	clock   *simclock.Clock
	max     int
	events  []Event
	head    int
	dropped int
}

// New creates a log bound to a clock. capacity <= 0 selects a default.
func New(clock *simclock.Clock, capacity int) *Log {
	if capacity <= 0 {
		capacity = 4096
	}
	return &Log{clock: clock, max: capacity}
}

// Emit records an event at the current virtual time. A nil log is a no-op,
// so call sites don't need guards.
func (l *Log) Emit(kind Kind, subject, format string, args ...interface{}) {
	if l == nil {
		return
	}
	e := Event{
		At:      l.clock.Now(),
		Kind:    kind,
		Subject: subject,
		Message: fmt.Sprintf(format, args...),
	}
	if len(l.events) < l.max {
		l.events = append(l.events, e)
		return
	}
	l.events[l.head] = e
	l.head = (l.head + 1) % len(l.events)
	l.dropped++
}

// Events returns the recorded timeline in order (oldest first).
func (l *Log) Events() []Event {
	if l == nil || len(l.events) == 0 {
		return nil
	}
	if l.head == 0 {
		return l.events
	}
	out := make([]Event, 0, len(l.events))
	out = append(out, l.events[l.head:]...)
	return append(out, l.events[:l.head]...)
}

// Dropped reports how many events were evicted.
func (l *Log) Dropped() int {
	if l == nil {
		return 0
	}
	return l.dropped
}

// String renders the timeline.
func (l *Log) String() string {
	if l == nil {
		return ""
	}
	var b strings.Builder
	if l.dropped > 0 {
		fmt.Fprintf(&b, "(%d earlier events dropped)\n", l.dropped)
	}
	for _, e := range l.Events() {
		fmt.Fprintf(&b, "%12s  %-8s %-10s %s\n", e.At, e.Kind, e.Subject, e.Message)
	}
	return b.String()
}

// Filter returns the events of one kind.
func (l *Log) Filter(kind Kind) []Event {
	var out []Event
	for _, e := range l.Events() {
		if e.Kind == kind {
			out = append(out, e)
		}
	}
	return out
}
