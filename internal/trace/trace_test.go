package trace

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/simclock"
)

func TestEmitAndRender(t *testing.T) {
	clock := simclock.New()
	l := New(clock, 16)
	l.Emit(KindBoot, "VM 1", "booted with %d MB", 1024)
	clock.RunFor(5 * simclock.Second)
	l.Emit(KindScanner, "ksm", "pass complete")
	ev := l.Events()
	if len(ev) != 2 {
		t.Fatalf("events = %d", len(ev))
	}
	if ev[0].At != 0 || ev[1].At != 5*simclock.Second {
		t.Fatalf("timestamps wrong: %v %v", ev[0].At, ev[1].At)
	}
	out := l.String()
	if !strings.Contains(out, "booted with 1024 MB") || !strings.Contains(out, "ksm") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestBoundedWithDrops(t *testing.T) {
	l := New(simclock.New(), 4)
	for i := 0; i < 10; i++ {
		l.Emit(KindPhase, "x", "event %d", i)
	}
	if len(l.Events()) != 4 {
		t.Fatalf("kept %d, want 4", len(l.Events()))
	}
	if l.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", l.Dropped())
	}
	if l.Events()[0].Message != "event 6" {
		t.Fatalf("oldest kept = %q", l.Events()[0].Message)
	}
	if !strings.Contains(l.String(), "6 earlier events dropped") {
		t.Fatal("drop notice missing")
	}
}

func TestRingOrderAcrossWraps(t *testing.T) {
	// The ring wraps several times over; Events must stay chronological with
	// the oldest retained event first, at every fill level.
	for n := 1; n <= 13; n++ {
		l := New(simclock.New(), 5)
		for i := 0; i < n; i++ {
			l.Emit(KindPhase, "x", "event %d", i)
		}
		ev := l.Events()
		want := n
		if want > 5 {
			want = 5
		}
		if len(ev) != want {
			t.Fatalf("n=%d: kept %d, want %d", n, len(ev), want)
		}
		for j, e := range ev {
			if wantMsg := fmt.Sprintf("event %d", n-want+j); e.Message != wantMsg {
				t.Fatalf("n=%d: ev[%d] = %q, want %q", n, j, e.Message, wantMsg)
			}
		}
	}
}

func TestNilLogSafe(t *testing.T) {
	var l *Log
	l.Emit(KindBoot, "x", "ignored")
	if l.Events() != nil || l.Dropped() != 0 || l.String() != "" {
		t.Fatal("nil log not inert")
	}
}

func TestFilter(t *testing.T) {
	l := New(simclock.New(), 16)
	l.Emit(KindBoot, "a", "1")
	l.Emit(KindScanner, "b", "2")
	l.Emit(KindBoot, "c", "3")
	if got := len(l.Filter(KindBoot)); got != 2 {
		t.Fatalf("filter = %d", got)
	}
	if len(l.Filter(KindMeasure)) != 0 {
		t.Fatal("phantom events")
	}
}
