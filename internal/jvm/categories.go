// Package jvm simulates a production Java VM's memory behaviour at page
// granularity: class loading with a ROMClass/RAMClass split and optional
// shared-class-cache attach, a garbage-collected object heap under two GC
// policies, a JIT compiler with profile-dependent code and transient
// scratch memory, malloc arenas, NIO buffers and thread stacks.
//
// Every byte the JVM writes is deterministic in the logical identity of the
// data plus, where the real artifact embeds addresses or profile data, the
// process's randomization seed. That is what makes page sharing across VMs
// succeed or fail for exactly the reasons §3-4 of the paper describes.
package jvm

// Memory categories from Table IV of the paper. Every VMA a JVM creates is
// tagged with one of these so the analyzer can reproduce the detailed
// breakdowns of Fig. 3 and Fig. 5.
const (
	CatCode      = "Code"
	CatClassMeta = "Class metadata"
	CatJITCode   = "JIT-compiled code"
	CatJITWork   = "JIT work area"
	CatHeap      = "Java heap"
	CatJVMWork   = "JVM work area"
	CatStack     = "Stack"

	// CatJITData is the ShareJIT extension's per-process profile/data stubs
	// (invocation counters, receiver-type caches, branch profiles). It is
	// not one of the paper's Table IV categories — the measured JVM mixed
	// this state into the code cache — so it only appears in figures when
	// the jitshare mode is on; keeping it out of Categories() keeps every
	// flag-off figure byte-identical.
	CatJITData = "JIT data stubs"
)

// Categories lists the Table IV categories in the paper's presentation
// order.
func Categories() []string {
	return []string{CatCode, CatClassMeta, CatJITCode, CatJITWork, CatHeap, CatJVMWork, CatStack}
}
