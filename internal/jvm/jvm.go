package jvm

import (
	"fmt"

	"repro/internal/cds"
	"repro/internal/classlib"
	"repro/internal/guestos"
	"repro/internal/jitshare"
	"repro/internal/mem"
)

// Options configures one JVM instance, mirroring the command-line surface
// the paper exercises (-Xmx/-Xms, -Xgcpolicy, -Xshareclasses, thread pool
// size).
type Options struct {
	// GCPolicy selects the collector.
	GCPolicy GCPolicy
	// HeapBytes is the flat heap size for OptThruput (max = min, as the
	// paper configures).
	HeapBytes int64
	// NurseryBytes/TenuredBytes size the GenCon generations (Fig. 8:
	// 530 MB nursery + 200 MB tenured).
	NurseryBytes int64
	TenuredBytes int64
	// SharedClasses enables -Xshareclasses with a persistent
	// (memory-mapped file) cache.
	SharedClasses bool
	// SharedAOT additionally serves hot-method code from the cache's AOT
	// section (J9 stores AOT code in the shared cache; an extension over
	// the paper's measured configuration). Requires SharedClasses and a
	// cache populated with PopulateAOT.
	SharedAOT bool
	// CacheImage is the populated cache directory; CachePath is the guest
	// file holding its bytes. Both must be set when SharedClasses is on.
	CacheImage *cds.Image
	CachePath  string
	// JITShare attaches a shared code archive (ShareJIT mode): tier-1
	// compiled code becomes position-independent bodies at the archive's
	// canonical page-aligned offsets — identical across processes, so KSM
	// merges it — with per-process profile stubs split into CatJITData.
	// Requires JITArchive. Off (the default) keeps the paper's measured
	// behaviour: all JIT output private and unshareable.
	JITShare   bool
	JITArchive *jitshare.Archive
	// Threads is the worker thread count (stacks scale with it).
	Threads int
}

// Sizes fixes the native-memory footprint of the runtime, already divided
// by the experiment's memory scale. DefaultSizes provides paper-calibrated
// values.
type Sizes struct {
	// Code area (file-backed, identical across VMs with the same image).
	JVMBinaryBytes      int64
	JVMLibsBytes        int64
	SystemLibsBytes     int64
	MiddlewareLibsBytes int64
	// LibDataBytes is the writable data of shared libraries (Table IV puts
	// it in the code area; it is per-process after relocation).
	LibDataBytes int64

	StackBytesPerThread int64

	// MallocStartupBytes is the native memory the runtime and class
	// libraries allocate during startup (parsed configuration, JNI
	// structures, zip caches) — per-process content, unshareable.
	MallocStartupBytes int64

	MetaSegBytes    int64
	MallocSegBytes  int64
	JITCodeSegBytes int64
	// JITScratchBytes bounds the JIT compiler's recycled scratch pool.
	JITScratchBytes  int64
	BulkReserveBytes int64
	NIOPoolBytes     int64
}

// DefaultSizes returns the paper-calibrated sizing divided by scale.
func DefaultSizes(scale int) Sizes {
	if scale < 1 {
		panic(fmt.Sprintf("jvm: scale %d", scale))
	}
	div := func(v int64) int64 {
		v /= int64(scale)
		if v < 4096 {
			v = 4096
		}
		return v
	}
	return Sizes{
		// Footprint quantities scale with the experiment.
		JVMBinaryBytes:      div(2 << 20),
		JVMLibsBytes:        div(20 << 20),
		SystemLibsBytes:     div(8 << 20),
		MiddlewareLibsBytes: div(12 << 20),
		LibDataBytes:        div(4 << 20),
		StackBytesPerThread: div(512 << 10),
		MallocStartupBytes:  div(56 << 20),
		BulkReserveBytes:    div(4 << 20),
		NIOPoolBytes:        div(5 << 20),
		JITScratchBytes:     div(24 << 20),
		// Allocator segment granularity is structural and does NOT scale:
		// shrinking segments to page size would page-align every class and
		// spuriously make private class metadata shareable.
		MetaSegBytes:    256 << 10,
		MallocSegBytes:  1 << 20,
		JITCodeSegBytes: 2 << 20,
	}
}

// JVM is one simulated Java VM process.
type JVM struct {
	proc   *guestos.Process
	opts   Options
	sizes  Sizes
	corpus *classlib.Corpus

	romSpace *arena // private ROMClass segments (no cache, or cache misses)
	ramSpace *arena // RAMClass segments (always private)
	cacheVMA *guestos.VMA

	heap *Heap
	jit  *JIT
	work *WorkArea

	stacks []*guestos.VMA

	metaCursor     uint64
	codeCursor     uint64
	cacheUsedPages int

	loaded     map[string]bool
	loadedList []*classlib.Class

	stats LoadStats
}

// LoadStats counts class-loading outcomes.
type LoadStats struct {
	ClassesLoaded   int
	ClassesUnloaded int
	ROMFromCache    int
	ROMPrivate      int
	ROMBytesPrivate int64
	RAMBytes        int64
	// AOTMethodsUsed counts hot methods served from the cache's AOT
	// section instead of being JIT-compiled.
	AOTMethodsUsed int
}

// RuntimeVersion labels the JVM build; identical versions produce identical
// code-area files across VMs.
const RuntimeVersion = "J9-Java6-SR9"

// Launch starts a JVM in the guest: spawns the process, maps the runtime's
// executables and libraries, creates the heap and native areas, and — when
// SharedClasses is on — attaches the shared class cache file.
func Launch(k *guestos.Kernel, name string, corpus *classlib.Corpus, opts Options, sizes Sizes) *JVM {
	proc := k.Spawn(name, true)
	j := &JVM{
		proc:   proc,
		opts:   opts,
		sizes:  sizes,
		corpus: corpus,
		loaded: make(map[string]bool),
	}

	j.mapCodeArea(k)

	j.romSpace = newArena(proc, CatClassMeta, "romclass-segments", sizes.MetaSegBytes)
	j.ramSpace = newArena(proc, CatClassMeta, "ramclass-segments", sizes.MetaSegBytes)

	if opts.SharedClasses {
		if opts.CacheImage == nil || opts.CachePath == "" {
			panic("jvm: SharedClasses requires CacheImage and CachePath")
		}
		// A real JVM refuses a cache built by a different JVM level.
		if err := opts.CacheImage.Validate(RuntimeVersion, 0); err != nil {
			panic(err)
		}
		f := k.FS().MustLookup(opts.CachePath)
		j.cacheVMA = proc.MapFile(f, 0, 0, CatClassMeta, "shared-class-cache")
		ps := int64(k.PageSize())
		j.cacheUsedPages = int((opts.CacheImage.UsedBytes() + ps - 1) / ps)
		proc.Touch(j.cacheVMA.Start, false) // cache header is read at attach
	}

	var share *jitshare.Archive
	if opts.JITShare {
		if opts.JITArchive == nil {
			panic("jvm: JITShare requires JITArchive")
		}
		if err := opts.JITArchive.Validate(RuntimeVersion); err != nil {
			panic(err)
		}
		share = opts.JITArchive
	}
	j.heap = newHeap(proc, opts.GCPolicy, opts.HeapBytes, opts.NurseryBytes, opts.TenuredBytes)
	j.jit = newJIT(proc, sizes.JITCodeSegBytes, sizes.JITScratchBytes, share)
	j.work = newWorkArea(proc, sizes.MallocSegBytes)
	j.work.BulkReserve(sizes.BulkReserveBytes)
	j.work.SetupNIO(sizes.NIOPoolBytes)
	j.work.MallocStartup(sizes.MallocStartupBytes)

	threads := opts.Threads
	if threads <= 0 {
		threads = 8
	}
	j.mapStacks(threads)
	return j
}

// mapCodeArea maps the JVM binary and libraries from base-image files and
// creates their per-process writable data segments.
func (j *JVM) mapCodeArea(k *guestos.Kernel) {
	fs := k.FS()
	ps := int64(k.PageSize())
	files := []struct {
		path  string
		bytes int64
	}{
		{"/opt/ibm/java/bin/java", j.sizes.JVMBinaryBytes},
		{"/opt/ibm/java/lib/libj9vm.so", j.sizes.JVMLibsBytes},
		{"/lib64/libc-system.so", j.sizes.SystemLibsBytes},
		{"/opt/WAS/lib/native/middleware.so", j.sizes.MiddlewareLibsBytes},
	}
	for _, spec := range files {
		if spec.bytes < ps {
			spec.bytes = ps
		}
		f, ok := fs.Lookup(spec.path)
		if !ok {
			f = fs.InstallGenerated(spec.path, RuntimeVersion, spec.bytes)
		}
		v := j.proc.MapFile(f, 0, 0, CatCode, spec.path)
		// Only the executed portion of the binaries is resident; cold code
		// is never faulted in.
		hot := v.Pages() * 7 / 10
		if hot < 1 {
			hot = 1
		}
		for i := 0; i < hot; i++ {
			j.proc.Touch(v.Start+mem.VPN(i), false)
		}
	}
	// Writable data segments of the libraries: per-process content after
	// relocation, counted in the code area per Table IV.
	if pages := int(j.sizes.LibDataBytes / ps); pages > 0 {
		v := j.proc.MapAnon(pages, CatCode, "lib-data-segments")
		for vpn := v.Start; vpn < v.End; vpn++ {
			j.proc.FillPage(vpn, mem.Combine(mem.HashString("libdata"), j.proc.Seed(), mem.Seed(vpn)))
		}
	}
}

// mapStacks creates per-thread stacks, the lower part live with
// per-process frame data.
func (j *JVM) mapStacks(threads int) {
	ps := int64(j.proc.Kernel().PageSize())
	pages := int(j.sizes.StackBytesPerThread / ps)
	if pages < 1 {
		pages = 1
	}
	for t := 0; t < threads; t++ {
		v := j.proc.MapAnon(pages, CatStack, fmt.Sprintf("thread-%d-stack", t))
		j.stacks = append(j.stacks, v)
		live := pages * 6 / 10
		for i := 0; i < live; i++ {
			vpn := v.Start + mem.VPN(i)
			j.proc.FillPage(vpn, mem.Combine(mem.HashString("stack"), j.proc.Seed(), mem.Seed(t), mem.Seed(i)))
		}
	}
}

// TouchMetadata keeps the class metadata working set hot: executing
// bytecode reads ROMClasses (from the shared cache when attached, private
// segments otherwise) and vtables in RAMClasses. Reads fault pages resident
// without dirtying them, so shared cache pages remain shared. Only the
// populated portion of each region is touched.
func (j *JVM) TouchMetadata(step, pages int) {
	regions := append(j.romSpace.usedRanges(), j.ramSpace.usedRanges()...)
	if j.cacheVMA != nil && j.cacheUsedPages > 0 {
		regions = append(regions, touchRange{v: j.cacheVMA, pages: j.cacheUsedPages})
	}
	j.touchRegions(regions, &j.metaCursor, pages)
}

// TouchJITCode keeps the compiled-code working set hot (executing it).
// With a shared code archive attached, executing an archive page also bumps
// the owning method's invocation counter in its private stub — the sampling
// that eventually triggers the tier-2 re-JIT and decays the sharing.
func (j *JVM) TouchJITCode(step, pages int) {
	if !j.jit.Shared() {
		j.touchRegions(j.jit.code.usedRanges(), &j.codeCursor, pages)
		return
	}
	// The same cursor walk as touchRegions, over a snapshot of the regions
	// (an upgrade mid-loop grows the code arena; the new segments join the
	// rotation on the next call).
	regions := j.jit.touchRanges()
	var total int
	for _, r := range regions {
		total += r.pages
	}
	if total == 0 {
		return
	}
	for i := 0; i < pages; i++ {
		j.codeCursor++
		idx := int(j.codeCursor % uint64(total))
		for _, r := range regions {
			if idx < r.pages {
				j.proc.Touch(r.v.Start+mem.VPN(idx), false)
				if r.v == j.jit.shareVMA {
					j.jit.noteExecution(idx)
				}
				break
			}
			idx -= r.pages
		}
	}
}

// touchRegions read-touches pages cycling across a region list.
func (j *JVM) touchRegions(regions []touchRange, cursor *uint64, pages int) {
	if len(regions) == 0 {
		return
	}
	var total int
	for _, r := range regions {
		total += r.pages
	}
	if total == 0 {
		return
	}
	for i := 0; i < pages; i++ {
		*cursor++
		idx := int(*cursor % uint64(total))
		for _, r := range regions {
			if idx < r.pages {
				j.proc.Touch(r.v.Start+mem.VPN(idx), false)
				break
			}
			idx -= r.pages
		}
	}
}

// StackChurn rewrites one thread's live stack area (deep call activity),
// keeping stack pages volatile.
func (j *JVM) StackChurn(step int) {
	if len(j.stacks) == 0 {
		return
	}
	v := j.stacks[step%len(j.stacks)]
	live := v.Pages() * 6 / 10
	for i := 0; i < live; i++ {
		vpn := v.Start + mem.VPN(i)
		j.proc.FillPage(vpn, mem.Combine(mem.HashString("stack"), j.proc.Seed(), mem.Seed(step), mem.Seed(i)))
	}
}

// Accessors.

// Process returns the underlying guest process.
func (j *JVM) Process() *guestos.Process { return j.proc }

// Heap returns the object heap.
func (j *JVM) Heap() *Heap { return j.heap }

// JIT returns the compiler model.
func (j *JVM) JIT() *JIT { return j.jit }

// Work returns the native work area.
func (j *JVM) Work() *WorkArea { return j.work }

// Options returns the launch options.
func (j *JVM) Options() Options { return j.opts }

// LoadStats returns class-loading counters.
func (j *JVM) LoadStats() LoadStats { return j.stats }

// LoadedClasses lists loaded classes in this process's load order.
func (j *JVM) LoadedClasses() []*classlib.Class { return j.loadedList }

// LoadGroups loads the classes of the given groups. cacheAware marks
// whether these classes' loaders can use the shared cache: the paper notes
// the EJB application loaders in the measured J9 could not, so their
// classes stay private even with -Xshareclasses.
//
// The canonical group order is perturbed with the process's seed: class
// loading is driven by program execution (lazy initialization, thread
// interleaving), so the order — and therefore the private metadata layout —
// varies between processes. This is the §3.2 mechanism that defeats TPS
// without preloading.
func (j *JVM) LoadGroups(cacheAware bool, groups ...classlib.Group) {
	order := classlib.ShuffleWindows(j.corpus.Stack(groups...), j.proc.Seed(), loadOrderWindow)
	for _, cl := range order {
		j.loadClass(cl, cacheAware)
	}
}

// loadClass loads one class: the read-only ROM part from the shared cache
// when possible, otherwise into private segments; the writable RAM part
// always privately with per-process content.
func (j *JVM) loadClass(cl *classlib.Class, cacheAware bool) {
	if j.loaded[cl.Name] {
		return
	}
	j.loaded[cl.Name] = true
	j.loadedList = append(j.loadedList, cl)
	j.stats.ClassesLoaded++

	fromCache := false
	if cacheAware && j.opts.SharedClasses {
		if e, ok := j.opts.CacheImage.Lookup(cl.Name); ok {
			// Touch the cache pages this class spans: reading the ROMClass
			// faults the identical file-backed pages into every VM.
			first, last := e.PagesSpanned(j.proc.Kernel().PageSize())
			for p := first; p <= last; p++ {
				j.proc.Touch(j.cacheVMA.Start+mem.VPN(p), false)
			}
			j.stats.ROMFromCache++
			fromCache = true
		}
	}
	if !fromCache {
		// Private ROMClass: the bytes are position-independent and identical
		// in every VM — but their page alignment depends on everything
		// loaded before them, which the order perturbation scrambles.
		j.romSpace.allocFill(cl.ROMSize, cl.Seed)
		j.stats.ROMPrivate++
		j.stats.ROMBytesPrivate += int64(cl.ROMSize)
	}
	// RAMClass: vtables, static slots, resolution caches — full of
	// pointers, so per-process content.
	j.ramSpace.allocFill(cl.RAMSize, mem.Combine(mem.HashString("ramclass"), cl.Seed, j.proc.Seed()))
	j.stats.RAMBytes += int64(cl.RAMSize)
}

// UnloadClass discards a loaded class, as when its class loader dies
// (redeployed web application). Per §4.B of the paper:
//
//   - the writable RAMClass is freed (its bytes stay as garbage in the
//     metadata segments until the space is reused);
//   - a private ROMClass likewise becomes dead space;
//   - a ROMClass in the shared cache is NOT removed: the cache region stays
//     mapped, and if its pages were TPS-shared they remain shared — "the
//     preloaded read-only part of an unloaded class will stay in memory as
//     a part of the shared class cache even after it is unloaded".
//
// It reports whether the class was loaded.
func (j *JVM) UnloadClass(name string) bool {
	if !j.loaded[name] {
		return false
	}
	delete(j.loaded, name)
	for i, cl := range j.loadedList {
		if cl.Name == name {
			j.loadedList = append(j.loadedList[:i], j.loadedList[i+1:]...)
			break
		}
	}
	j.stats.ClassesLoaded--
	j.stats.ClassesUnloaded++
	return true
}

// JITWarm compiles the hottest methods of the loaded classes: hotPermille
// per-mille of all methods, chosen deterministically per class. The paper's
// steady-state WAS processes sit near 2 % of methods compiled.
func (j *JVM) JITWarm(hotPermille int) {
	for _, cl := range j.loadedList {
		n := classlib.HotMethods(cl, hotPermille)
		for m := 0; m < n; m++ {
			if j.opts.SharedAOT && j.opts.SharedClasses {
				if e, ok := j.opts.CacheImage.AOTLookup(cl.Name, m); ok {
					// Executing cached AOT code faults its (identical,
					// shareable) cache pages instead of generating private
					// code. The hottest fifth still gets a profile-driven
					// recompilation, as the real JIT upgrades AOT bodies.
					first, last := e.PagesSpanned(j.proc.Kernel().PageSize())
					for pg := first; pg <= last; pg++ {
						j.proc.Touch(j.cacheVMA.Start+mem.VPN(pg), false)
					}
					j.stats.AOTMethodsUsed++
					// One in five AOT bodies is still upgraded by a
					// profile-driven recompilation (selected by a stable
					// per-method hash, since most classes expose m=0 only).
					if uint64(mem.Mix(mem.Combine(cl.Seed, mem.Seed(m))))%5 != 0 {
						continue
					}
					// The upgrade compiles against the accumulated profile;
					// in ShareJIT mode that specialization invalidates the
					// method's canonical archive slot.
					j.jit.RecompileProfiled(cl.Seed, m)
					continue
				}
			}
			j.jit.CompileMethod(cl.Seed, m)
		}
	}
	j.jit.FinishBurst()
}

// loadOrderWindow is the reordering window of lazy class loading.
const loadOrderWindow = 48
