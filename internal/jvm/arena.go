package jvm

import (
	"fmt"
	"sync"

	"repro/internal/guestos"
	"repro/internal/mem"
)

// Addr is a guest-virtual byte address inside the JVM process.
type Addr int64

// arena is a segment-based bump allocator, the shape of J9's memory
// segments and glibc's malloc arenas: memory is requested from the OS in
// multi-page segments and carved out by bumping a cursor. Because many
// small allocations share a page, a page's final content depends on the
// exact allocation order — the layout nondeterminism at the heart of the
// paper's §3.2 analysis.
type arena struct {
	proc     *guestos.Process
	category string
	label    string
	segBytes int64
	pageSize int

	segs   []*guestos.VMA
	cur    *guestos.VMA
	curOff int64
	// reusable holds recycled segments (still mapped, contents stale) that
	// alloc consumes before mapping fresh ones.
	reusable []*guestos.VMA

	allocated  int64 // bytes handed out
	segCount   int
	allocCount int
}

const arenaAlign = 16

func newArena(proc *guestos.Process, category, label string, segBytes int64) *arena {
	if segBytes <= 0 {
		panic(fmt.Sprintf("jvm: arena segment %d", segBytes))
	}
	return &arena{
		proc:     proc,
		category: category,
		label:    label,
		segBytes: segBytes,
		pageSize: proc.Kernel().PageSize(),
	}
}

// alloc reserves size bytes and returns their starting address. Allocations
// larger than a segment get a dedicated mapping, as mmap-threshold malloc
// and J9 large segments do.
func (a *arena) alloc(size int) Addr {
	if size <= 0 {
		panic(fmt.Sprintf("jvm: arena alloc %d", size))
	}
	size = (size + arenaAlign - 1) &^ (arenaAlign - 1)
	a.allocCount++
	a.allocated += int64(size)
	if int64(size) > a.segBytes {
		pages := (size + a.pageSize - 1) / a.pageSize
		v := a.proc.MapAnon(pages, a.category, a.label+"-large")
		a.segs = append(a.segs, v)
		a.segCount++
		return Addr(int64(v.Start) * int64(a.pageSize))
	}
	if a.cur == nil || a.curOff+int64(size) > int64(a.cur.Pages())*int64(a.pageSize) {
		if n := len(a.reusable); n > 0 && int64(a.reusable[0].Pages())*int64(a.pageSize) >= int64(size) {
			a.cur = a.reusable[0]
			a.reusable = a.reusable[1:]
		} else {
			pages := int(a.segBytes) / a.pageSize
			a.cur = a.proc.MapAnon(pages, a.category, a.label)
			a.segs = append(a.segs, a.cur)
			a.segCount++
		}
		a.curOff = 0
	}
	addr := Addr(int64(a.cur.Start)*int64(a.pageSize) + a.curOff)
	a.curOff += int64(size)
	return addr
}

// touchRange is a segment together with its populated page count, for the
// hot-path read loops: touching beyond the populated prefix would fault in
// zero pages that were never allocated.
type touchRange struct {
	v     *guestos.VMA
	pages int
}

// usedRanges lists every segment with its populated page count.
func (a *arena) usedRanges() []touchRange {
	out := make([]touchRange, 0, len(a.segs))
	for _, v := range a.segs {
		pages := v.Pages()
		if v == a.cur {
			pages = int((a.curOff + int64(a.pageSize) - 1) / int64(a.pageSize))
		}
		if pages > 0 {
			out = append(out, touchRange{v: v, pages: pages})
		}
	}
	return out
}

// write stores bytes at an absolute address, spanning pages as needed.
func (a *arena) write(addr Addr, data []byte) {
	writeBytes(a.proc, a.pageSize, addr, data)
}

// fill writes size deterministic bytes derived from seed at addr.
func (a *arena) fill(addr Addr, size int, seed mem.Seed) {
	fillBytes(a.proc, a.pageSize, addr, size, seed)
}

// allocFill is the common alloc-then-initialize step.
func (a *arena) allocFill(size int, seed mem.Seed) Addr {
	addr := a.alloc(size)
	a.fill(addr, size, seed)
	return addr
}

// releaseAll unmaps every segment (JIT scratch teardown).
func (a *arena) releaseAll() {
	for _, v := range a.segs {
		a.proc.Unmap(v)
	}
	a.segs = nil
	a.reusable = nil
	a.cur = nil
	a.curOff = 0
}

// recycle makes every segment reusable without touching its contents:
// free() does not zero, so recycled work-area pages keep stale per-process
// bytes and stay resident — accounted but unshareable, as the paper finds
// for the JIT work area.
func (a *arena) recycle() {
	a.cur = nil
	a.curOff = 0
	a.reusable = append(a.reusable[:0], a.segs...)
}

// writeBytes performs a page-spanning write at a byte address.
func writeBytes(proc *guestos.Process, pageSize int, addr Addr, data []byte) {
	off := int64(addr)
	for len(data) > 0 {
		vpn := mem.VPN(off / int64(pageSize))
		po := int(off % int64(pageSize))
		n := pageSize - po
		if n > len(data) {
			n = len(data)
		}
		proc.WritePage(vpn, po, data[:n])
		off += int64(n)
		data = data[n:]
	}
}

// fillPool recycles fill buffers; content generation is the hottest path in
// the simulator and per-call allocation would dominate run time.
var fillPool = sync.Pool{New: func() interface{} { b := make([]byte, 64<<10); return &b }}

// fillBytes writes size seed-derived bytes at a byte address.
func fillBytes(proc *guestos.Process, pageSize int, addr Addr, size int, seed mem.Seed) {
	bp := fillPool.Get().(*[]byte)
	buf := *bp
	if cap(buf) < size {
		buf = make([]byte, size)
		*bp = buf
	}
	buf = buf[:size]
	mem.Fill(buf, seed)
	writeBytes(proc, pageSize, addr, buf)
	fillPool.Put(bp)
}
