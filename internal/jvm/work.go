package jvm

import (
	"repro/internal/guestos"
	"repro/internal/mem"
)

// WorkArea models the "JVM work area" of Table IV: native allocations made
// by the JVM and the class libraries. Three populations matter for the
// paper's sharing analysis (§3.1 attributes ~9.2 % sharing in this area to
// them):
//
//   - malloc arena blocks with per-process content — unshareable;
//   - bulk-reserved internal tables that are resident but still zero —
//     shareable until used;
//   - NIO socket buffers, whose contents are the benchmark's wire data and
//     therefore identical across VMs running the same benchmark — the
//     paper notes about half the sharing in this area came from these, and
//     warns real-world workloads would not repeat it.
type WorkArea struct {
	proc   *guestos.Process
	malloc *arena

	bulk       []*guestos.VMA
	nio        *guestos.VMA
	nioOff     int64
	nioBytes   int64
	nioWrapped bool

	nativeCursor uint64

	pageSize int
	stats    WorkStats
}

// WorkStats counts native-memory activity.
type WorkStats struct {
	MallocBytes uint64
	MallocCalls uint64
	BulkPages   int
	NIOWrites   uint64
}

func newWorkArea(proc *guestos.Process, mallocSeg int64) *WorkArea {
	return &WorkArea{
		proc:     proc,
		malloc:   newArena(proc, CatJVMWork, "malloc-arena", mallocSeg),
		pageSize: proc.Kernel().PageSize(),
	}
}

// Stats returns a snapshot of counters.
func (w *WorkArea) Stats() WorkStats { return w.stats }

// Malloc performs one native allocation with per-process content (pointers,
// handles, parsed state — never identical across processes).
func (w *WorkArea) Malloc(size int) Addr {
	addr := w.malloc.alloc(size)
	w.malloc.fill(addr, size, mem.Combine(w.proc.Seed(), mem.Seed(addr)))
	w.stats.MallocBytes += uint64(size)
	w.stats.MallocCalls++
	return addr
}

// MallocStartup performs the runtime's startup native allocations in
// realistic chunk sizes until total bytes are handed out.
func (w *WorkArea) MallocStartup(total int64) {
	r := mem.Combine(w.proc.Seed(), mem.HashString("malloc-startup"))
	var done int64
	for done < total {
		r = mem.Mix(r)
		size := 2048 + int(uint64(r)%uint64(56<<10))
		w.Malloc(size)
		done += int64(size)
	}
}

// TouchNative keeps the malloc'd native state hot: each request reads and
// partially rewrites the runtime's internal tables (string interning,
// monitor tables, zip caches), cycling through every segment. The rewrite
// keeps the content per-process and volatile — unshareable, but resident.
func (w *WorkArea) TouchNative(step int, bytes int) {
	ranges := w.malloc.usedRanges()
	if len(ranges) == 0 || bytes <= 0 {
		return
	}
	total := 0
	for _, r := range ranges {
		total += r.pages
	}
	if total == 0 {
		return
	}
	pages := (bytes + w.pageSize - 1) / w.pageSize
	for i := 0; i < pages; i++ {
		w.nativeCursor++
		idx := int(w.nativeCursor % uint64(total))
		for _, r := range ranges {
			if idx >= r.pages {
				idx -= r.pages
				continue
			}
			vpn := r.v.Start + mem.VPN(idx)
			if i == 0 {
				// One dirty page per touch burst.
				w.proc.FillPage(vpn, mem.Combine(w.proc.Seed(), mem.HashString("native-dirty"), mem.Seed(step)))
			} else {
				w.proc.Touch(vpn, false)
			}
			break
		}
	}
}

// BulkReserve maps and touches bytes of internal tables that are allocated
// eagerly but not yet filled: resident zero pages, shareable until used.
func (w *WorkArea) BulkReserve(bytes int64) {
	if bytes <= 0 {
		return
	}
	pages := int(bytes / int64(w.pageSize))
	if pages == 0 {
		pages = 1
	}
	v := w.proc.MapAnon(pages, CatJVMWork, "bulk-reserved")
	w.proc.TouchAll(v, true)
	w.bulk = append(w.bulk, v)
	w.stats.BulkPages += pages
}

// SetupNIO maps the page-aligned buffer pool of the NIO socket library.
// The usable size is rounded down to whole pages — the mapping and the
// write cursor must agree, or the last partial page would overrun the VMA.
func (w *WorkArea) SetupNIO(bytes int64) {
	if bytes <= 0 {
		return
	}
	pages := int(bytes / int64(w.pageSize))
	if pages < 1 {
		pages = 1
	}
	w.nio = w.proc.MapAnon(pages, CatJVMWork, "nio-buffers")
	w.nioBytes = int64(pages) * int64(w.pageSize)
}

// NIOTransfer fills the next buffer slot with wire data identified by
// (workload, step). Two VMs running the same benchmark at the same step
// transfer the same bytes, so their buffer pages converge; distinct
// workloads (or a perVMSalt, modelling real-world traffic) never converge.
//
// The pool fills linearly once; afterwards only a hot quarter is recycled
// (steady state reuses a few direct buffers), so the remainder holds the
// initialization-phase payloads and quiesces — the stable, benchmark-
// identical pages behind the paper's observation that NIO buffers were
// about half of the "JVM and JIT work" sharing.
func (w *WorkArea) NIOTransfer(workload string, step int, size int, perVMSalt mem.Seed) {
	if w.nio == nil {
		panic("jvm: NIOTransfer before SetupNIO")
	}
	if int64(size) > w.nioBytes {
		size = int(w.nioBytes)
	}
	limit := w.nioBytes
	if w.nioWrapped {
		limit = w.nioBytes / 4
		if int64(size) > limit {
			size = int(limit)
		}
	}
	if w.nioOff+int64(size) > limit {
		w.nioOff = 0
		w.nioWrapped = true
	}
	base := Addr(int64(w.nio.Start)*int64(w.pageSize) + w.nioOff)
	seed := mem.Combine(mem.HashString("nio-wire"), mem.HashString(workload), mem.Seed(step), perVMSalt)
	fillBytes(w.proc, w.pageSize, base, size, seed)
	w.nioOff += int64(size)
	w.stats.NIOWrites++
}
