package jvm

import (
	"testing"

	"repro/internal/cds"
	"repro/internal/classlib"
	"repro/internal/guestos"
	"repro/internal/hypervisor"
	"repro/internal/mem"
	"repro/internal/simclock"
)

const (
	pg    = mem.DefaultPageSize
	scale = 64
)

func corpus() *classlib.Corpus { return classlib.NewCorpus(RuntimeVersion, scale) }

func bootGuest(t *testing.T, seed mem.Seed) *guestos.Kernel {
	if t != nil {
		t.Helper()
	}
	clock := simclock.New()
	host := hypervisor.NewHost(hypervisor.Config{Name: "t", RAMBytes: 64 << 20}, clock)
	vm := host.NewVM(hypervisor.VMConfig{Name: "vm", GuestMemBytes: 48 << 20, Seed: seed})
	return guestos.Boot(vm, guestos.KernelConfig{Version: "2.6.18", TextBytes: 1 << 20})
}

func basicOpts() Options {
	return Options{GCPolicy: OptThruput, HeapBytes: 8 << 20, Threads: 4}
}

func launch(t *testing.T, k *guestos.Kernel, opts Options) *JVM {
	return Launch(k, "java-was", corpus(), opts, DefaultSizes(scale))
}

func TestLaunchCreatesRegions(t *testing.T) {
	k := bootGuest(t, 1)
	j := launch(t, k, basicOpts())
	cats := map[string]bool{}
	for _, v := range j.Process().VMAs() {
		cats[v.Category] = true
	}
	for _, want := range []string{CatCode, CatHeap, CatJVMWork, CatStack} {
		if !cats[want] {
			t.Fatalf("no VMA with category %q after launch", want)
		}
	}
	if j.Process().ResidentPages() == 0 {
		t.Fatal("nothing resident after launch")
	}
}

func TestCodeAreaIdenticalAcrossVMs(t *testing.T) {
	k1 := bootGuest(t, 1)
	k2 := bootGuest(t, 2)
	j1 := launch(t, k1, basicOpts())
	j2 := launch(t, k2, basicOpts())
	var v1, v2 *guestos.VMA
	for _, v := range j1.Process().VMAs() {
		if v.Label == "/opt/ibm/java/lib/libj9vm.so" {
			v1 = v
		}
	}
	for _, v := range j2.Process().VMAs() {
		if v.Label == "/opt/ibm/java/lib/libj9vm.so" {
			v2 = v
		}
	}
	if v1 == nil || v2 == nil {
		t.Fatal("libj9vm mapping missing")
	}
	b1 := j1.Process().ReadPage(v1.Start + 3)
	b2 := j2.Process().ReadPage(v2.Start + 3)
	for i := range b1 {
		if b1[i] != b2[i] {
			t.Fatal("JVM library content differs across VMs with same version")
		}
	}
}

func TestLoadGroupsWithoutCachePrivate(t *testing.T) {
	k := bootGuest(t, 1)
	j := launch(t, k, basicOpts())
	j.LoadGroups(true, classlib.GroupJDK, classlib.GroupDerby)
	s := j.LoadStats()
	want := len(corpus().Stack(classlib.GroupJDK, classlib.GroupDerby))
	if s.ClassesLoaded != want {
		t.Fatalf("loaded %d, want %d", s.ClassesLoaded, want)
	}
	if s.ROMFromCache != 0 || s.ROMPrivate != want {
		t.Fatalf("cache split wrong: %+v", s)
	}
	if s.ROMBytesPrivate == 0 || s.RAMBytes == 0 {
		t.Fatalf("no metadata bytes recorded: %+v", s)
	}
}

func TestLoadOrderPerturbedPerProcess(t *testing.T) {
	k1 := bootGuest(t, 1)
	k2 := bootGuest(t, 2)
	j1 := launch(t, k1, basicOpts())
	j2 := launch(t, k2, basicOpts())
	j1.LoadGroups(true, classlib.GroupDerby)
	j2.LoadGroups(true, classlib.GroupDerby)
	l1, l2 := j1.LoadedClasses(), j2.LoadedClasses()
	if len(l1) != len(l2) {
		t.Fatal("different class sets loaded")
	}
	same := true
	for i := range l1 {
		if l1[i].Name != l2[i].Name {
			same = false
			break
		}
	}
	if same {
		t.Fatal("load order identical across processes; perturbation missing")
	}
	// Same set regardless of order.
	set1 := map[string]bool{}
	for _, cl := range l1 {
		set1[cl.Name] = true
	}
	for _, cl := range l2 {
		if !set1[cl.Name] {
			t.Fatalf("class %s loaded in one process only", cl.Name)
		}
	}
}

func withCache(t *testing.T, k *guestos.Kernel, c *classlib.Corpus, groups ...classlib.Group) Options {
	if t != nil {
		t.Helper()
	}
	img := cds.Build("was", RuntimeVersion, 16<<20, c.Stack(groups...))
	k.FS().Install(&guestos.File{Path: "/opt/shared/classcache", Data: img.FileBytes(c)})
	opts := basicOpts()
	opts.SharedClasses = true
	opts.CacheImage = img
	opts.CachePath = "/opt/shared/classcache"
	return opts
}

func TestLoadGroupsWithCache(t *testing.T) {
	k := bootGuest(t, 1)
	c := corpus()
	opts := withCache(t, k, c, classlib.GroupDerby)
	j := Launch(k, "java", c, opts, DefaultSizes(scale))
	j.LoadGroups(true, classlib.GroupDerby)
	s := j.LoadStats()
	if s.ROMPrivate != 0 {
		t.Fatalf("cache-aware load left %d private ROMs", s.ROMPrivate)
	}
	if s.ROMFromCache != len(c.Group(classlib.GroupDerby)) {
		t.Fatalf("ROMFromCache = %d", s.ROMFromCache)
	}
	if s.RAMBytes == 0 {
		t.Fatal("RAM classes must stay private even with the cache")
	}
}

func TestEJBLoadersBypassCache(t *testing.T) {
	k := bootGuest(t, 1)
	c := corpus()
	opts := withCache(t, k, c, classlib.GroupDerby, classlib.GroupDayTraderEJB)
	j := Launch(k, "java", c, opts, DefaultSizes(scale))
	j.LoadGroups(false, classlib.GroupDayTraderEJB) // EJB loaders are not cache-aware
	s := j.LoadStats()
	if s.ROMFromCache != 0 {
		t.Fatal("EJB classes must not come from the cache")
	}
	if s.ROMPrivate == 0 {
		t.Fatal("EJB classes not loaded privately")
	}
}

func TestCachePagesIdenticalAcrossVMs(t *testing.T) {
	c := corpus()
	img := cds.Build("was", RuntimeVersion, 16<<20, c.Stack(classlib.GroupDerby))
	fileBytes := img.FileBytes(c)

	readCachePage := func(seed mem.Seed) []byte {
		k := bootGuest(nil, seed)
		k.FS().Install(&guestos.File{Path: "/cache", Data: fileBytes})
		opts := basicOpts()
		opts.SharedClasses = true
		opts.CacheImage = img
		opts.CachePath = "/cache"
		j := Launch(k, "java", c, opts, DefaultSizes(scale))
		j.LoadGroups(true, classlib.GroupDerby)
		return append([]byte(nil), j.Process().ReadPage(j.cacheVMA.Start+5)...)
	}
	p1 := readCachePage(1)
	p2 := readCachePage(2)
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatal("shared cache pages differ across VMs")
		}
	}
}

func TestJITWarmGeneratesPerProcessCode(t *testing.T) {
	k1 := bootGuest(t, 1)
	k2 := bootGuest(t, 2)
	j1 := launch(t, k1, basicOpts())
	j2 := launch(t, k2, basicOpts())
	for _, j := range []*JVM{j1, j2} {
		j.LoadGroups(true, classlib.GroupDerby)
		j.JITWarm(20)
	}
	if j1.JIT().Stats().MethodsCompiled == 0 {
		t.Fatal("nothing compiled")
	}
	if j1.JIT().Stats().MethodsCompiled != j2.JIT().Stats().MethodsCompiled {
		t.Fatal("hot-method selection not deterministic")
	}
	// Code pages must differ (profile-dependent content).
	var v1, v2 *guestos.VMA
	for _, v := range j1.Process().VMAs() {
		if v.Category == CatJITCode {
			v1 = v
			break
		}
	}
	for _, v := range j2.Process().VMAs() {
		if v.Category == CatJITCode {
			v2 = v
			break
		}
	}
	b1 := j1.Process().ReadPage(v1.Start)
	b2 := j2.Process().ReadPage(v2.Start)
	same := true
	for i := range b1 {
		if b1[i] != b2[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("JIT code identical across processes")
	}
}

func TestJITScratchRecycledStaleAndBounded(t *testing.T) {
	k := bootGuest(t, 1)
	j := launch(t, k, basicOpts())
	j.LoadGroups(true, classlib.GroupDerby, classlib.GroupOSGi)
	j.JITWarm(20)
	// The scratch pool is bounded by the configured cap plus one segment,
	// and its recycled pages keep stale (nonzero) compiler state.
	var pages int
	stale := false
	for _, v := range j.Process().VMAs() {
		if v.Category != CatJITWork {
			continue
		}
		for vpn := v.Start; vpn < v.End; vpn++ {
			if _, ok := j.Process().PageTable().Lookup(vpn); !ok {
				continue
			}
			pages++
			b := j.Process().ReadPage(vpn)
			for _, c := range b {
				if c != 0 {
					stale = true
					break
				}
			}
		}
	}
	capPages := int(DefaultSizes(scale).JITScratchBytes/4096) + 64<<10/4096 + 8
	if pages > capPages {
		t.Fatalf("scratch resident %d pages exceeds cap %d", pages, capPages)
	}
	if !stale {
		t.Fatal("recycled scratch pages are all zero; free() must not zero")
	}
}

func TestHeapAllocAndCompaction(t *testing.T) {
	k := bootGuest(t, 1)
	j := launch(t, k, basicOpts())
	h := j.Heap()
	var keep *Object
	for i := 0; i < 4000; i++ {
		long := i%10 == 0
		o := h.Alloc(2048, mem.Seed(i), long)
		if i == 0 {
			keep = o
		}
	}
	if h.Stats().MajorGCs == 0 {
		t.Fatal("no GC under allocation pressure")
	}
	if keep.Addr() >= h.spaceBase()+Addr(h.allocOff) {
		t.Fatal("survivor not compacted below the allocation pointer")
	}
}

func TestHeapHeaderMutation(t *testing.T) {
	k := bootGuest(t, 1)
	j := launch(t, k, basicOpts())
	h := j.Heap()
	o := h.Alloc(4096, 42, true)
	vpn := mem.VPN(int64(o.Addr()) / pg)
	before := append([]byte(nil), j.Process().ReadPage(vpn)...)
	h.Mutate(o)
	after := j.Process().ReadPage(vpn)
	changed := false
	for i := range before {
		if before[i] != after[i] {
			changed = true
			break
		}
	}
	if !changed {
		t.Fatal("header mutation left the page untouched")
	}
	if h.Stats().HeaderWrites != 1 {
		t.Fatalf("HeaderWrites = %d", h.Stats().HeaderWrites)
	}
}

func TestHeapOOM(t *testing.T) {
	k := bootGuest(t, 1)
	opts := basicOpts()
	opts.HeapBytes = 1 << 20
	j := launch(t, k, opts)
	defer func() {
		if recover() == nil {
			t.Fatal("no OOM when live set exceeds the heap")
		}
	}()
	for i := 0; ; i++ {
		j.Heap().Alloc(4096, mem.Seed(i), true) // everything long-lived
	}
}

func TestGenConPromotion(t *testing.T) {
	k := bootGuest(t, 1)
	opts := Options{GCPolicy: GenCon, NurseryBytes: 4 << 20, TenuredBytes: 2 << 20, Threads: 2}
	j := launch(t, k, opts)
	h := j.Heap()
	var longs []*Object
	for i := 0; i < 3000; i++ {
		long := i%20 == 0
		o := h.Alloc(2048, mem.Seed(i), long)
		if long {
			longs = append(longs, o)
		}
		// Release old session objects so tenured space turns over.
		if len(longs) > 200 {
			h.Release(longs[0])
			longs = longs[1:]
		}
	}
	s := h.Stats()
	if s.MinorGCs == 0 {
		t.Fatal("no minor GCs")
	}
	if s.PromotedBytes == 0 {
		t.Fatal("nothing promoted to tenured")
	}
}

func TestNIOTransferIdenticalAcrossVMs(t *testing.T) {
	k1 := bootGuest(t, 1)
	k2 := bootGuest(t, 2)
	j1 := launch(t, k1, basicOpts())
	j2 := launch(t, k2, basicOpts())
	for _, j := range []*JVM{j1, j2} {
		for step := 0; step < 10; step++ {
			j.Work().NIOTransfer("daytrader", step, 32<<10, 0)
		}
	}
	b1 := j1.Process().ReadPage(j1.work.nio.Start)
	b2 := j2.Process().ReadPage(j2.work.nio.Start)
	for i := range b1 {
		if b1[i] != b2[i] {
			t.Fatal("NIO buffers differ across VMs for the same benchmark stream")
		}
	}
	// With a per-VM salt (real-world traffic) they must differ.
	j1.Work().NIOTransfer("daytrader", 99, 32<<10, 1)
	j2.Work().NIOTransfer("daytrader", 99, 32<<10, 2)
}

func TestMallocPerProcessContent(t *testing.T) {
	k1 := bootGuest(t, 1)
	k2 := bootGuest(t, 2)
	j1 := launch(t, k1, basicOpts())
	j2 := launch(t, k2, basicOpts())
	a1 := j1.Work().Malloc(8192)
	a2 := j2.Work().Malloc(8192)
	b1 := j1.Process().ReadPage(mem.VPN(int64(a1) / pg))
	b2 := j2.Process().ReadPage(mem.VPN(int64(a2) / pg))
	same := true
	for i := range b1 {
		if b1[i] != b2[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("malloc content identical across processes")
	}
}

func TestBulkReserveZeroPages(t *testing.T) {
	k := bootGuest(t, 1)
	j := launch(t, k, basicOpts())
	found := false
	for _, v := range j.Process().VMAs() {
		if v.Label != "bulk-reserved" {
			continue
		}
		found = true
		b := j.Process().ReadPage(v.Start)
		for _, c := range b {
			if c != 0 {
				t.Fatal("bulk-reserved page not zero")
			}
		}
	}
	if !found {
		t.Fatal("no bulk-reserved VMA")
	}
}

func TestPerturbPreservesSet(t *testing.T) {
	c := corpus()
	in := c.Stack(classlib.GroupJDK)
	out := classlib.ShuffleWindows(in, 12345, loadOrderWindow)
	if len(out) != len(in) {
		t.Fatal("perturb changed length")
	}
	seen := map[string]int{}
	for _, cl := range in {
		seen[cl.Name]++
	}
	for _, cl := range out {
		seen[cl.Name]--
	}
	for name, n := range seen {
		if n != 0 {
			t.Fatalf("perturb corrupted multiset at %s", name)
		}
	}
	// Deterministic for the same seed.
	out2 := classlib.ShuffleWindows(in, 12345, loadOrderWindow)
	for i := range out {
		if out[i] != out2[i] {
			t.Fatal("perturb not deterministic")
		}
	}
}

func TestLaunchRejectsStaleCache(t *testing.T) {
	k := bootGuest(t, 1)
	c := corpus()
	img := cds.Build("was", "some-other-jvm-level", 8<<20, c.Stack(classlib.GroupDerby))
	k.FS().Install(&guestos.File{Path: "/cache", Data: img.FileBytes(c)})
	opts := basicOpts()
	opts.SharedClasses = true
	opts.CacheImage = img
	opts.CachePath = "/cache"
	defer func() {
		if recover() == nil {
			t.Fatal("stale cache accepted at attach")
		}
	}()
	Launch(k, "java", c, opts, DefaultSizes(scale))
}

func TestUnloadClassSemantics(t *testing.T) {
	k := bootGuest(t, 1)
	c := corpus()
	opts := withCache(t, k, c, classlib.GroupDerby)
	j := Launch(k, "java", c, opts, DefaultSizes(scale))
	j.LoadGroups(true, classlib.GroupDerby)
	name := c.Group(classlib.GroupDerby)[0].Name
	residentBefore := j.Process().ResidentPages()
	if !j.UnloadClass(name) {
		t.Fatal("unload of loaded class failed")
	}
	if j.UnloadClass(name) {
		t.Fatal("double unload succeeded")
	}
	s := j.LoadStats()
	if s.ClassesUnloaded != 1 {
		t.Fatalf("ClassesUnloaded = %d", s.ClassesUnloaded)
	}
	// §4.B: the cache region stays mapped — unloading releases no pages.
	if got := j.Process().ResidentPages(); got != residentBefore {
		t.Fatalf("resident changed on unload: %d -> %d", residentBefore, got)
	}
	// Reloading is served from the cache again.
	before := j.LoadStats().ROMFromCache
	j.LoadGroups(true, classlib.GroupDerby)
	if j.LoadStats().ROMFromCache != before+1 {
		t.Fatal("reload did not hit the cache")
	}
}

func TestSharedAOTServesHotMethods(t *testing.T) {
	c := corpus()
	img := cds.Build("was", RuntimeVersion, 16<<20, c.Stack(classlib.GroupDerby))
	img.PopulateAOT(c.Stack(classlib.GroupDerby), 100)
	fileBytes := img.FileBytes(c)

	launchOne := func(seed mem.Seed, aot bool) *JVM {
		k := bootGuest(nil, seed)
		k.FS().Install(&guestos.File{Path: "/cache", Data: fileBytes})
		opts := basicOpts()
		opts.SharedClasses = true
		opts.SharedAOT = aot
		opts.CacheImage = img
		opts.CachePath = "/cache"
		j := Launch(k, "java", c, opts, DefaultSizes(scale))
		j.LoadGroups(true, classlib.GroupDerby)
		j.JITWarm(100)
		return j
	}

	withAOT := launchOne(1, true)
	without := launchOne(2, false)
	if withAOT.LoadStats().AOTMethodsUsed == 0 {
		t.Fatal("no AOT methods used")
	}
	if without.LoadStats().AOTMethodsUsed != 0 {
		t.Fatal("AOT used without the option")
	}
	// The AOT JVM compiles far fewer methods privately.
	cw, co := withAOT.JIT().Stats().MethodsCompiled, without.JIT().Stats().MethodsCompiled
	if cw >= co/2 {
		t.Fatalf("AOT JVM compiled %d methods, plain JVM %d", cw, co)
	}
}

func TestNIOTransferNeverOverrunsPool(t *testing.T) {
	// Regression: a pool size that is not page-aligned must not let the
	// write cursor run past the mapped VMA (caught by BenchmarkFig8 at
	// scale 48, where 5 MB/48 is a fractional page count).
	k := bootGuest(t, 1)
	j := launch(t, k, basicOpts())
	j.Work().SetupNIO(106666) // deliberately unaligned
	for step := 0; step < 500; step++ {
		j.Work().NIOTransfer("dt", step, 39321, 0) // unaligned transfer size
	}
}
