package jvm

import (
	"sort"
	"testing"

	"repro/internal/mem"
)

// liveExtents collects [addr, addr+size) for every long-lived object.
func liveExtents(h *Heap) [][2]Addr {
	var out [][2]Addr
	for _, o := range h.live {
		out = append(out, [2]Addr{o.addr, o.addr + Addr(o.Size)})
	}
	for _, o := range h.old {
		if o.LongLived {
			out = append(out, [2]Addr{o.addr, o.addr + Addr(o.Size)})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}

func checkNoOverlap(t *testing.T, h *Heap) {
	t.Helper()
	ext := liveExtents(h)
	for i := 1; i < len(ext); i++ {
		if ext[i][0] < ext[i-1][1] {
			t.Fatalf("objects overlap: [%#x,%#x) and [%#x,%#x)",
				ext[i-1][0], ext[i-1][1], ext[i][0], ext[i][1])
		}
	}
}

func TestOptThruputObjectsNeverOverlap(t *testing.T) {
	k := bootGuest(t, 1)
	j := launch(t, k, basicOpts())
	h := j.Heap()
	var live []*Object
	rng := mem.Seed(3)
	for i := 0; i < 6000; i++ {
		rng = mem.Mix(rng)
		size := 64 + int(uint64(rng)%6000)
		long := uint64(rng)%7 == 0
		o := h.Alloc(size, rng, long)
		if long {
			live = append(live, o)
		}
		if len(live) > 120 {
			h.Release(live[0])
			live = live[1:]
		}
		if i%500 == 0 {
			checkNoOverlap(t, h)
		}
	}
	checkNoOverlap(t, h)
	if h.Stats().MajorGCs == 0 {
		t.Fatal("no GC exercised")
	}
}

func TestGenConObjectsNeverOverlap(t *testing.T) {
	k := bootGuest(t, 1)
	opts := Options{GCPolicy: GenCon, NurseryBytes: 4 << 20, TenuredBytes: 512 << 10, Threads: 2}
	j := launch(t, k, opts)
	h := j.Heap()
	var live []*Object
	rng := mem.Seed(9)
	for i := 0; i < 6000; i++ {
		rng = mem.Mix(rng)
		size := 64 + int(uint64(rng)%4000)
		long := uint64(rng)%9 == 0
		o := h.Alloc(size, rng, long)
		if long {
			live = append(live, o)
		}
		if len(live) > 150 {
			h.Release(live[0])
			live = live[1:]
		}
		if i%500 == 0 {
			checkNoOverlap(t, h)
		}
	}
	checkNoOverlap(t, h)
	s := h.Stats()
	if s.MinorGCs == 0 || s.MajorGCs == 0 {
		t.Fatalf("both GC kinds must run: %+v", s)
	}
}

func TestHeapResidencyBoundedByHighWater(t *testing.T) {
	k := bootGuest(t, 1)
	j := launch(t, k, basicOpts())
	h := j.Heap()
	for i := 0; i < 3000; i++ {
		h.Alloc(2048, mem.Seed(i), i%12 == 0)
	}
	// Resident heap pages never exceed high water + the zero-ahead window.
	resident := 0
	for vpn := h.space.Start; vpn < h.space.End; vpn++ {
		if _, ok := j.Process().PageTable().Lookup(vpn); ok {
			resident++
		}
	}
	limitPages := int((h.highWater+zeroAheadBytes)/int64(h.pageSize)) + 2
	if resident > limitPages {
		t.Fatalf("resident %d pages exceeds high-water bound %d", resident, limitPages)
	}
}

func TestMoveChangesPageContent(t *testing.T) {
	// The §3.2 mechanism: a moved object's bytes change because its address
	// is part of its content (headers, embedded references).
	k := bootGuest(t, 1)
	j := launch(t, k, basicOpts())
	h := j.Heap()
	o := h.Alloc(4096, 42, true)
	before := append([]byte(nil), j.Process().ReadPage(mem.VPN(int64(o.Addr())/pg))...)
	// Force a compaction that slides the object (allocate a short-lived
	// object before it so its slot shifts... it is already at the bottom;
	// instead release and re-allocate below).
	h.Alloc(8192, 43, true) // second survivor
	h.Release(o)
	h.Collect() // o is gone; survivor 2 slides to the bottom
	after := j.Process().ReadPage(mem.VPN(int64(o.Addr()) / pg))
	same := true
	for i := range before {
		if before[i] != after[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("page content unchanged although objects moved over it")
	}
}
