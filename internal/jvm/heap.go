package jvm

import (
	"fmt"

	"repro/internal/guestos"
	"repro/internal/mem"
)

// GCPolicy selects the collector, matching the two J9 policies the paper
// runs: optthruput (flat heap, parallel mark-sweep-compact) and gencon
// (generational: copying nursery + tenured space).
type GCPolicy uint8

const (
	// OptThruput is the flat-heap throughput collector (paper §2-5 default).
	OptThruput GCPolicy = iota
	// GenCon is the generational collector the paper uses for
	// SPECjEnterprise 2010 (§5.C: 530 MB nursery + 200 MB tenured).
	GenCon
)

func (p GCPolicy) String() string {
	if p == GenCon {
		return "gencon"
	}
	return "optthruput"
}

// objHeaderBytes is the object header size: class pointer + lock/hash word,
// as on a 64-bit JVM.
const objHeaderBytes = 24

// zeroAheadBytes is how much freed space the collector zero-fills ahead of
// the allocation point. The sweep publishes zeroed pages just ahead of
// allocation rather than bulk-zeroing all free space; the zeroed window is
// overwritten within moments — which is why the paper finds the heap's
// zero-page sharing at only 0.7 % and notes those pages are "soon modified
// and divided".
const zeroAheadBytes = 256 << 10

// Object is a Java object (or array). Its page bytes are derived from its
// logical identity plus its current address and header state, so moving it
// or locking it changes page content — the two effects §3.2 identifies as
// killing heap sharing.
type Object struct {
	Size    int
	Logical mem.Seed
	// LongLived objects survive collections until released (session state,
	// caches); everything else dies young.
	LongLived bool

	addr      Addr
	headerGen uint32
}

// Addr reports the object's current guest-virtual address.
func (o *Object) Addr() Addr { return o.addr }

// HeapStats counts collector activity.
type HeapStats struct {
	Allocations    uint64
	BytesAllocated int64
	MinorGCs       uint64
	MajorGCs       uint64
	PromotedBytes  int64
	HeaderWrites   uint64
}

// Heap is the garbage-collected object heap of one JVM.
type Heap struct {
	proc     *guestos.Process
	policy   GCPolicy
	pageSize int

	// OptThruput: one space. GenCon: space is the nursery and tenured is
	// the old generation.
	space      *guestos.VMA
	spaceBytes int64
	allocOff   int64
	highWater  int64

	tenured      *guestos.VMA
	tenuredBytes int64
	tenuredOff   int64

	// triggerFrac is the fill fraction that triggers a collection; the
	// untouched tail above the high-water mark is what keeps heap
	// residency below -Xmx, as observed in Fig. 3(a).
	triggerFrac float64

	live    []*Object // long-lived survivors in the (nursery) space
	old     []*Object // objects in tenured space (GenCon only)
	oldDead int       // released tenured objects awaiting a major GC

	stats HeapStats
}

// newHeap carves the heap out of the process's address space.
func newHeap(proc *guestos.Process, policy GCPolicy, heapBytes, nurseryBytes, tenuredBytes int64) *Heap {
	ps := proc.Kernel().PageSize()
	h := &Heap{proc: proc, policy: policy, pageSize: ps, triggerFrac: 0.75}
	switch policy {
	case OptThruput:
		if heapBytes <= 0 {
			panic("jvm: OptThruput heap needs HeapBytes")
		}
		h.spaceBytes = heapBytes
		h.space = proc.MapAnon(int(heapBytes/int64(ps)), CatHeap, "java-heap")
	case GenCon:
		if nurseryBytes <= 0 || tenuredBytes <= 0 {
			panic("jvm: GenCon heap needs NurseryBytes and TenuredBytes")
		}
		h.spaceBytes = nurseryBytes
		h.space = proc.MapAnon(int(nurseryBytes/int64(ps)), CatHeap, "nursery")
		h.tenuredBytes = tenuredBytes
		h.tenured = proc.MapAnon(int(tenuredBytes/int64(ps)), CatHeap, "tenured")
	}
	return h
}

// Stats returns a snapshot of collector counters.
func (h *Heap) Stats() HeapStats { return h.stats }

// Policy reports the configured collector.
func (h *Heap) Policy() GCPolicy { return h.policy }

// LiveObjects reports the long-lived population (nursery survivors plus
// tenured objects).
func (h *Heap) LiveObjects() int { return len(h.live) + len(h.old) - h.oldDead }

// UsedBytes reports the bytes currently occupied below the allocation
// points: the (nursery) space fill plus, under gencon, the tenured fill.
// The telemetry layer samples it as the heap-occupancy gauge.
func (h *Heap) UsedBytes() int64 { return h.allocOff + h.tenuredOff }

// CapacityBytes reports the total heap capacity across spaces.
func (h *Heap) CapacityBytes() int64 { return h.spaceBytes + h.tenuredBytes }

// spaceBase returns the byte address of the (nursery) space.
func (h *Heap) spaceBase() Addr { return Addr(int64(h.space.Start) * int64(h.pageSize)) }

func (h *Heap) tenuredBase() Addr { return Addr(int64(h.tenured.Start) * int64(h.pageSize)) }

// Alloc creates an object of size bytes with the given logical identity.
// Filling the heap past the trigger fraction runs a collection first.
func (h *Heap) Alloc(size int, logical mem.Seed, longLived bool) *Object {
	if size <= 0 {
		panic(fmt.Sprintf("jvm: heap alloc %d", size))
	}
	size = (size + arenaAlign - 1) &^ (arenaAlign - 1)
	if h.allocOff+int64(size) > int64(h.triggerFrac*float64(h.spaceBytes)) {
		h.Collect()
	}
	if h.allocOff+int64(size) > h.spaceBytes {
		panic(fmt.Sprintf("jvm: heap OOM: live %d bytes + %d requested exceeds %d",
			h.allocOff, size, h.spaceBytes))
	}
	o := &Object{Size: size, Logical: logical, LongLived: longLived}
	o.addr = h.spaceBase() + Addr(h.allocOff)
	h.allocOff += int64(size)
	if h.allocOff > h.highWater {
		h.highWater = h.allocOff
	}
	h.writeObject(o)
	if longLived {
		h.live = append(h.live, o)
	}
	h.stats.Allocations++
	h.stats.BytesAllocated += int64(size)
	return o
}

// writeObject materializes the object's bytes at its current address:
// a header that depends on address and lock/hash state, and a body that
// depends on logical content and address (references embed addresses).
func (h *Heap) writeObject(o *Object) {
	hdrSeed := mem.Combine(mem.HashString("hdr"), o.Logical, mem.Seed(o.addr), mem.Seed(o.headerGen))
	n := objHeaderBytes
	if n > o.Size {
		n = o.Size
	}
	fillBytes(h.proc, h.pageSize, o.addr, n, hdrSeed)
	if o.Size > n {
		bodySeed := mem.Combine(mem.HashString("body"), o.Logical, mem.Seed(o.addr))
		fillBytes(h.proc, h.pageSize, o.addr+Addr(n), o.Size-n, bodySeed)
	}
}

// Mutate performs a header-only operation on the object (acquiring its
// monitor, computing its identity hash): the paper's first reason even
// read-only objects defeat sharing.
func (h *Heap) Mutate(o *Object) {
	o.headerGen++
	hdrSeed := mem.Combine(mem.HashString("hdr"), o.Logical, mem.Seed(o.addr), mem.Seed(o.headerGen))
	n := objHeaderBytes
	if n > o.Size {
		n = o.Size
	}
	fillBytes(h.proc, h.pageSize, o.addr, n, hdrSeed)
	h.stats.HeaderWrites++
}

// Release marks a long-lived object dead; the space is reclaimed by the
// next collection that covers it.
func (h *Heap) Release(o *Object) {
	if !o.LongLived {
		return
	}
	o.LongLived = false
	for i, p := range h.live {
		if p == o {
			h.live = append(h.live[:i], h.live[i+1:]...)
			return
		}
	}
	// Not in the nursery survivor list: it was promoted.
	h.oldDead++
}

// Collect runs one collection appropriate to the policy.
func (h *Heap) Collect() {
	switch h.policy {
	case OptThruput:
		h.compactSpace()
		h.stats.MajorGCs++
	case GenCon:
		h.minorGC()
	}
}

// compactSpace is the mark-sweep-compact cycle of optthruput: survivors
// slide to the bottom of the space (moving ⇒ new addresses ⇒ new page
// bytes) and a window of freed space ahead of the new allocation point is
// zero-filled — the short-lived zero pages behind the paper's 0.7 % heap
// sharing. The rest of the freed region keeps its stale object bytes until
// allocation reaches it.
func (h *Heap) compactSpace() {
	var newOff int64
	for _, o := range h.live {
		o.addr = h.spaceBase() + Addr(newOff)
		newOff += int64(o.Size)
	}
	for _, o := range h.live {
		h.writeObject(o)
	}
	end := newOff + zeroAheadBytes
	if end > h.highWater {
		end = h.highWater
	}
	h.zeroSpaceRange(newOff, end)
	h.allocOff = newOff
}

// minorGC is the gencon nursery collection: long-lived young objects are
// promoted into tenured space and the nursery is wiped to zeros.
func (h *Heap) minorGC() {
	for _, o := range h.live {
		if h.tenuredOff+int64(o.Size) > h.tenuredBytes {
			h.majorGC()
			if h.tenuredOff+int64(o.Size) > h.tenuredBytes {
				panic("jvm: tenured space OOM")
			}
		}
		o.addr = h.tenuredBase() + Addr(h.tenuredOff)
		h.tenuredOff += int64(o.Size)
		h.writeObject(o)
		h.old = append(h.old, o)
		h.stats.PromotedBytes += int64(o.Size)
	}
	h.live = h.live[:0]
	end := int64(zeroAheadBytes)
	if end > h.highWater {
		end = h.highWater
	}
	h.zeroSpaceRange(0, end)
	h.allocOff = 0
	h.stats.MinorGCs++
}

// majorGC compacts the tenured space, dropping released objects.
func (h *Heap) majorGC() {
	var keep []*Object
	var newOff int64
	for _, o := range h.old {
		if !o.LongLived {
			continue
		}
		o.addr = h.tenuredBase() + Addr(newOff)
		newOff += int64(o.Size)
		keep = append(keep, o)
	}
	for _, o := range keep {
		h.writeObject(o)
	}
	end := newOff + zeroAheadBytes
	if end > h.tenuredOff {
		end = h.tenuredOff
	}
	h.zeroTenuredRange(newOff, end)
	h.old = keep
	h.oldDead = 0
	h.tenuredOff = newOff
	h.stats.MajorGCs++
}

// zeroSpaceRange zero-fills [from, to) bytes of the (nursery) space.
func (h *Heap) zeroSpaceRange(from, to int64) {
	h.zeroRange(h.space, from, to)
}

func (h *Heap) zeroTenuredRange(from, to int64) {
	h.zeroRange(h.tenured, from, to)
}

// zeroRange clears the pages fully contained in [from, to). Edge pages
// shared with live data keep their bytes (a real sweep zeroes free chunks
// at byte granularity; at page granularity the partially-live edge pages
// simply stay dirty, which only makes them non-shareable — the safe
// direction for the fidelity of the sharing results).
func (h *Heap) zeroRange(v *guestos.VMA, from, to int64) {
	ps := int64(h.pageSize)
	firstFull := (from + ps - 1) / ps
	endFull := to / ps
	for p := firstFull; p < endFull; p++ {
		h.proc.ZeroPage(v.Start + mem.VPN(p))
	}
}
