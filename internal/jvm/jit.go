package jvm

import (
	"encoding/binary"

	"repro/internal/guestos"
	"repro/internal/jitshare"
	"repro/internal/mem"
)

// JIT models the just-in-time compiler's memory behaviour (§3-4 of the
// paper):
//
//   - Compiled code goes into a code cache whose bytes depend on runtime
//     profile data, so they differ between processes even for the same
//     method — which is why the paper classifies JIT-compiled code as
//     unshareable.
//   - Compilation uses scratch segments that are written intensely during a
//     compile and recycled afterwards; the recycled pages stay resident
//     holding stale per-process compiler state, so the JIT work area is
//     both short-lived and unshareable (paper §4.A).
//
// With a shared code archive attached (ShareJIT mode, internal/jitshare)
// the first compilation of a method instead emits a position-independent
// body into the archive's canonical page-aligned slot — byte-identical
// across processes, so KSM merges it — while the profile state that made
// the private code unshareable moves into small per-process stubs
// (CatJITData). A later profile-driven recompilation rewrites the canonical
// slot with specialized per-process code, COW-breaking the merged pages:
// sharing decays as the workload warms.
type JIT struct {
	proc       *guestos.Process
	code       *arena
	scratch    *arena
	scratchCap int64
	pageSize   int

	// profileSeed randomizes generated code per process: it stands in for
	// the invocation counts, receiver types and branch profiles the real
	// JIT bakes into its output.
	profileSeed mem.Seed

	// share is the attached shared code archive (nil = the paper's measured
	// behaviour: all code private).
	share    *jitshare.Archive
	shareVMA *guestos.VMA
	// stubs holds the per-process profile/data stubs in ShareJIT mode.
	stubs      *arena
	methods    map[jitKey]*methodState
	methodList []*methodState

	stats JITStats
}

type jitKey struct {
	class mem.Seed
	m     int
}

// methodState tracks one compiled method in ShareJIT mode.
type methodState struct {
	class mem.Seed
	m     int
	entry jitshare.Entry
	// archived marks a method whose tier-1 body lives in the canonical
	// archive slot (false = archive overflow, body is private).
	archived bool
	tier     int
	stubAddr Addr
	// touches counts executions (archive page touches); crossing threshold
	// triggers the profile-driven tier-2 recompilation.
	touches   int
	threshold int
}

// JITStats counts compiler activity.
type JITStats struct {
	MethodsCompiled int
	CodeBytes       int64
	ScratchPeak     int64
	// ArchivedMethods counts tier-1 bodies emitted into the shared archive;
	// OverflowMethods counts hot methods that missed the archive and
	// compiled privately. Both stay zero without an archive.
	ArchivedMethods int
	OverflowMethods int
	// StubBytes is the private profile/data stub footprint.
	StubBytes int64
	// ReJITs counts profile-driven tier-2 recompilations; each one that hits
	// an archived method rewrites its canonical slot in place, adding the
	// slot's span to CanonicalPagesInvalidated (pages whose cross-process
	// sharing is permanently lost).
	ReJITs                    int
	CanonicalPagesInvalidated int
}

// scratchSegBytes is the JIT scratch segment granularity (structural, does
// not scale).
const scratchSegBytes = 64 << 10

// Re-JIT thresholds: a method is recompiled at tier 2 after its archive
// pages have been executed (touched) this many times. The per-method spread
// staggers the upgrades so sharing decays gradually instead of cliffing.
const (
	reJITTouchBase   = 8
	reJITTouchSpread = 64
)

func newJIT(proc *guestos.Process, codeSeg, scratchCap int64, share *jitshare.Archive) *JIT {
	if scratchCap < scratchSegBytes {
		scratchCap = scratchSegBytes
	}
	j := &JIT{
		proc:        proc,
		code:        newArena(proc, CatJITCode, "jit-code-cache", codeSeg),
		scratch:     newArena(proc, CatJITWork, "jit-scratch", scratchSegBytes),
		scratchCap:  scratchCap,
		pageSize:    proc.Kernel().PageSize(),
		profileSeed: mem.Combine(mem.HashString("jit-profile"), proc.Seed()),
	}
	if share != nil {
		j.share = share
		j.shareVMA = proc.MapAnon(share.UsedPages(), CatJITCode, "jitshare-archive")
		j.stubs = newArena(proc, CatJITData, "jit-profile-stubs", scratchSegBytes)
		j.methods = make(map[jitKey]*methodState)
	}
	return j
}

// Stats returns a snapshot of compiler counters.
func (j *JIT) Stats() JITStats { return j.stats }

// Shared reports whether a shared code archive is attached.
func (j *JIT) Shared() bool { return j.share != nil }

// Archive returns the attached shared code archive (nil when off).
func (j *JIT) Archive() *jitshare.Archive { return j.share }

// ShareArea describes this process's archive mapping for the jitshare
// sharing census; ok is false when no archive is attached.
func (j *JIT) ShareArea() (jitshare.Area, bool) {
	if j.shareVMA == nil {
		return jitshare.Area{}, false
	}
	return jitshare.Area{Proc: j.proc, Start: j.shareVMA.Start, Pages: j.share.UsedPages()}, true
}

// CompileMethod generates native code for method index m of a class. The
// code size scales with a per-method deterministic factor; without an
// archive the content mixes the class identity with the per-process
// profile. With an archive attached the first compilation emits the
// position-independent body into the canonical slot and the profile state
// into a private stub; compiling the same method again models the
// profile-driven tier-2 upgrade, which invalidates the canonical slot.
func (j *JIT) CompileMethod(classSeed mem.Seed, m int) {
	if j.share != nil {
		if ms, ok := j.methods[jitKey{classSeed, m}]; ok {
			j.upgrade(ms)
			return
		}
	}
	size := jitshare.BodySize(classSeed, m)
	j.scratchBurst(size)
	if j.share != nil {
		j.compileShared(classSeed, m, size)
		return
	}
	j.code.allocFill(size, mem.Combine(classSeed, mem.Seed(m), j.profileSeed))
	j.stats.MethodsCompiled++
	j.stats.CodeBytes += int64(size)
}

// scratchBurst charges the compiler's working set for one compilation,
// written with per-process intermediate data. The scratch pool is bounded:
// when it fills, freed segments are recycled (still resident) — the paper's
// "short-lived work area" behaviour.
func (j *JIT) scratchBurst(size int) {
	scratchSize := size * 4
	if j.scratch.allocated+int64(scratchSize) > j.scratchCap {
		j.FinishBurst()
	}
	sa := j.scratch.alloc(scratchSize)
	j.scratch.fill(sa, scratchSize, mem.Combine(j.profileSeed, mem.Seed(sa)))
	if j.scratch.allocated > j.stats.ScratchPeak {
		j.stats.ScratchPeak = j.scratch.allocated
	}
}

// compileShared emits a method's tier-1 body in ShareJIT mode: the
// position-independent code at its canonical slot (or privately on archive
// overflow) and the profile stub in the private data arena.
func (j *JIT) compileShared(classSeed mem.Seed, m int, size int) {
	ms := &methodState{class: classSeed, m: m, tier: 1}
	if e, ok := j.share.Lookup(classSeed, m); ok {
		ms.entry = e
		ms.archived = true
		// The body's bytes derive only from (archive version, class,
		// method): identical in every process, at the same page-aligned
		// offset — KSM merge fodder.
		fillBytes(j.proc, j.pageSize, j.slotAddr(e),
			e.Size, jitshare.BodySeed(j.share.Version, classSeed, m))
		j.stats.ArchivedMethods++
	} else {
		// Overflow: the archive filled, so this method compiles exactly as
		// the paper measured — private, profile-mixed, unshareable.
		j.code.allocFill(size, mem.Combine(classSeed, mem.Seed(m), j.profileSeed))
		j.stats.OverflowMethods++
	}
	// The profile/data stub: counters, receiver-type caches, branch
	// profiles. Content is per-process by nature, but the footprint is a
	// fraction of the body's — that asymmetry is ShareJIT's whole win.
	stubSize := stubBytes(classSeed, m)
	ms.stubAddr = j.stubs.allocFill(stubSize, mem.Combine(j.profileSeed, classSeed, mem.Seed(m)))
	ms.threshold = reJITTouchBase +
		int(uint64(mem.Mix(mem.Combine(classSeed, mem.Seed(m), mem.HashString("rejit-threshold"))))%reJITTouchSpread)
	j.methods[jitKey{classSeed, m}] = ms
	j.methodList = append(j.methodList, ms)
	j.stats.MethodsCompiled++
	j.stats.CodeBytes += int64(size)
	j.stats.StubBytes += int64(stubSize)
}

// stubBytes sizes a method's profile stub: roughly 1/16th of the body,
// deterministic per method.
func stubBytes(classSeed mem.Seed, m int) int {
	r := mem.Mix(mem.Combine(mem.HashString("jit-stub"), classSeed, mem.Seed(m)))
	return 128 + int(uint64(r)%768)
}

// slotAddr converts an archive entry's canonical page offset into this
// process's virtual address.
func (j *JIT) slotAddr(e jitshare.Entry) Addr {
	return Addr((int64(j.shareVMA.Start) + int64(e.PageOff)) * int64(j.pageSize))
}

// upgrade recompiles a method at tier 2 against its accumulated profile.
// The optimized body embeds profile data and devirtualized call targets, so
// it is per-process: for an archived method the canonical slot is rewritten
// in place — the write COW-breaks any KSM-merged page and the slot never
// re-merges — and the larger specialized body lands in the private code
// cache, growing it.
func (j *JIT) upgrade(ms *methodState) {
	if ms.tier >= 2 {
		return
	}
	size := jitshare.BodySize(ms.class, ms.m)
	size += size / 2 // tier-2 inlining grows the body
	j.scratchBurst(size)
	if ms.archived {
		fillBytes(j.proc, j.pageSize, j.slotAddr(ms.entry), ms.entry.Size,
			mem.Combine(jitshare.BodySeed(j.share.Version, ms.class, ms.m),
				j.profileSeed, mem.HashString("rejit")))
		j.stats.CanonicalPagesInvalidated += ms.entry.Pages
	}
	j.code.allocFill(size, mem.Combine(ms.class, mem.Seed(ms.m), j.profileSeed, mem.HashString("tier2")))
	ms.tier = 2
	j.stats.ReJITs++
	j.stats.CodeBytes += int64(size)
}

// RecompileProfiled is the profile-driven recompilation entry point (the
// AOT-upgrade path): without an archive it behaves exactly like
// CompileMethod; with one it ensures the method exists and upgrades it to
// tier 2, invalidating its canonical slot.
func (j *JIT) RecompileProfiled(classSeed mem.Seed, m int) {
	if j.share == nil {
		j.CompileMethod(classSeed, m)
		return
	}
	ms, ok := j.methods[jitKey{classSeed, m}]
	if !ok {
		j.CompileMethod(classSeed, m)
		ms = j.methods[jitKey{classSeed, m}]
	}
	j.upgrade(ms)
}

// touchRanges lists the code regions an executing thread cycles through:
// the archive's populated prefix (when attached) followed by the private
// code cache segments.
func (j *JIT) touchRanges() []touchRange {
	if j.shareVMA == nil {
		return j.code.usedRanges()
	}
	out := make([]touchRange, 0, 4)
	out = append(out, touchRange{v: j.shareVMA, pages: j.share.UsedPages()})
	return append(out, j.code.usedRanges()...)
}

// noteExecution records that one archive page was executed: the owning
// method's invocation counter in its private stub is bumped (a write — stub
// pages churn, which is why they are CatJITData, not shareable code), and
// crossing the method's sampling threshold triggers the tier-2 re-JIT.
func (j *JIT) noteExecution(archivePage int) {
	e, ok := j.share.EntryAt(archivePage)
	if !ok {
		return
	}
	ms, ok := j.methods[jitKey{e.Class, e.Method}]
	if !ok {
		return // not compiled in this process (yet)
	}
	ms.touches++
	var ctr [8]byte
	binary.LittleEndian.PutUint64(ctr[:], uint64(ms.touches))
	writeBytes(j.proc, j.pageSize, ms.stubAddr, ctr[:])
	if ms.tier == 1 && ms.touches >= ms.threshold {
		j.upgrade(ms)
	}
}

// FinishBurst recycles the scratch segments after a compilation burst: the
// pages stay resident with stale compiler state (freeing does not zero),
// which is why the paper finds the JIT work area unshareable.
func (j *JIT) FinishBurst() {
	j.scratch.recycle()
	j.scratch.allocated = 0
}
