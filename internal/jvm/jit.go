package jvm

import (
	"repro/internal/guestos"
	"repro/internal/mem"
)

// JIT models the just-in-time compiler's memory behaviour (§3-4 of the
// paper):
//
//   - Compiled code goes into a code cache whose bytes depend on runtime
//     profile data, so they differ between processes even for the same
//     method — which is why the paper classifies JIT-compiled code as
//     unshareable.
//   - Compilation uses scratch segments that are written intensely during a
//     compile and recycled afterwards; the recycled pages stay resident
//     holding stale per-process compiler state, so the JIT work area is
//     both short-lived and unshareable (paper §4.A).
type JIT struct {
	proc       *guestos.Process
	code       *arena
	scratch    *arena
	scratchCap int64

	// profileSeed randomizes generated code per process: it stands in for
	// the invocation counts, receiver types and branch profiles the real
	// JIT bakes into its output.
	profileSeed mem.Seed

	stats JITStats
}

// JITStats counts compiler activity.
type JITStats struct {
	MethodsCompiled int
	CodeBytes       int64
	ScratchPeak     int64
}

// scratchSegBytes is the JIT scratch segment granularity (structural, does
// not scale).
const scratchSegBytes = 64 << 10

func newJIT(proc *guestos.Process, codeSeg, scratchCap int64) *JIT {
	if scratchCap < scratchSegBytes {
		scratchCap = scratchSegBytes
	}
	return &JIT{
		proc:        proc,
		code:        newArena(proc, CatJITCode, "jit-code-cache", codeSeg),
		scratch:     newArena(proc, CatJITWork, "jit-scratch", scratchSegBytes),
		scratchCap:  scratchCap,
		profileSeed: mem.Combine(mem.HashString("jit-profile"), proc.Seed()),
	}
}

// Stats returns a snapshot of compiler counters.
func (j *JIT) Stats() JITStats { return j.stats }

// CompileMethod generates native code for method index m of a class. The
// code size scales with a per-method deterministic factor; the content mixes
// the class identity with the per-process profile.
func (j *JIT) CompileMethod(classSeed mem.Seed, m int) {
	r := mem.Mix(mem.Combine(classSeed, mem.Seed(m)))
	size := 2048 + int(uint64(r)%12288) // 2-14 KiB of generated code
	// Scratch burst: the compiler's working set during this compilation,
	// written with per-process intermediate data. The scratch pool is
	// bounded: when it fills, freed segments are recycled (zeroed, still
	// resident) — the paper's "short-lived work area" behaviour.
	scratchSize := size * 4
	if j.scratch.allocated+int64(scratchSize) > j.scratchCap {
		j.FinishBurst()
	}
	sa := j.scratch.alloc(scratchSize)
	j.scratch.fill(sa, scratchSize, mem.Combine(j.profileSeed, mem.Seed(sa)))
	if j.scratch.allocated > j.stats.ScratchPeak {
		j.stats.ScratchPeak = j.scratch.allocated
	}

	j.code.allocFill(size, mem.Combine(classSeed, mem.Seed(m), j.profileSeed))
	j.stats.MethodsCompiled++
	j.stats.CodeBytes += int64(size)
}

// FinishBurst recycles the scratch segments after a compilation burst: the
// pages stay resident with stale compiler state (freeing does not zero),
// which is why the paper finds the JIT work area unshareable.
func (j *JIT) FinishBurst() {
	j.scratch.recycle()
	j.scratch.allocated = 0
}
