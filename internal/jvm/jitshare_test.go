package jvm

import (
	"bytes"
	"testing"

	"repro/internal/classlib"
	"repro/internal/guestos"
	"repro/internal/hypervisor"
	"repro/internal/jitshare"
	"repro/internal/ksm"
	"repro/internal/mem"
	"repro/internal/simclock"
)

func testArchive() *jitshare.Archive {
	return jitshare.Build("t-code", RuntimeVersion, 8<<20, pg,
		corpus().Stack(classlib.GroupJDK, classlib.GroupDerby), 20)
}

func shareOpts(a *jitshare.Archive) Options {
	o := basicOpts()
	o.JITShare = true
	o.JITArchive = a
	return o
}

func warmShared(j *JVM) {
	j.LoadGroups(true, classlib.GroupJDK, classlib.GroupDerby)
	j.JITWarm(20)
	j.JIT().FinishBurst()
}

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s did not panic", what)
		}
	}()
	fn()
}

func TestJITShareLaunchValidatesArchive(t *testing.T) {
	opts := basicOpts()
	opts.JITShare = true
	mustPanic(t, "JITShare without an archive", func() {
		launch(t, bootGuest(t, 1), opts)
	})
	opts.JITArchive = jitshare.Build("t-code", "J9-other", 8<<20, pg,
		corpus().Stack(classlib.GroupJDK), 20)
	mustPanic(t, "archive from another compiler level", func() {
		launch(t, bootGuest(t, 1), opts)
	})
}

// TestPICBodiesIdenticalAcrossProcesses is the tentpole property: two JVMs in
// different guests, booted from different seeds, emit byte-identical archive
// pages for every method they both compile — while their profile stubs stay
// per-process.
func TestPICBodiesIdenticalAcrossProcesses(t *testing.T) {
	a := testArchive()
	j1 := launch(t, bootGuest(t, 1), shareOpts(a))
	j2 := launch(t, bootGuest(t, 2), shareOpts(a))
	warmShared(j1)
	warmShared(j2)

	st := j1.JIT().Stats()
	if st.ArchivedMethods == 0 {
		t.Fatal("warm-up archived no methods")
	}
	if st2 := j2.JIT().Stats(); st2.ArchivedMethods != st.ArchivedMethods {
		t.Fatalf("processes archived %d vs %d methods from the same workload",
			st.ArchivedMethods, st2.ArchivedMethods)
	}

	compared := 0
	for _, e := range a.Entries() {
		ms1, ok1 := j1.jit.methods[jitKey{e.Class, e.Method}]
		ms2, ok2 := j2.jit.methods[jitKey{e.Class, e.Method}]
		if !ok1 || !ok2 || !ms1.archived || !ms2.archived {
			continue
		}
		for p := 0; p < e.Pages; p++ {
			b1 := j1.Process().ReadPage(j1.jit.shareVMA.Start + mem.VPN(e.PageOff+p))
			b2 := j2.Process().ReadPage(j2.jit.shareVMA.Start + mem.VPN(e.PageOff+p))
			if !bytes.Equal(b1, b2) {
				t.Fatalf("archive page %d differs across processes (class %v method %d)",
					e.PageOff+p, e.Class, e.Method)
			}
		}
		compared++
	}
	if compared == 0 {
		t.Fatal("no archived method compiled in both processes")
	}

	// The profile stubs carry per-process state and must NOT be identical.
	s1 := j1.Process().ReadPage(j1.jit.stubs.segs[0].Start)
	s2 := j2.Process().ReadPage(j2.jit.stubs.segs[0].Start)
	if bytes.Equal(s1, s2) {
		t.Fatal("profile stub pages identical across differently-seeded processes")
	}
	// And they live in their own category so the analysis can split them out.
	found := false
	for _, v := range j1.Process().VMAs() {
		if v.Category == CatJITData {
			found = true
		}
	}
	if !found {
		t.Fatalf("no %q VMA after shared warm-up", CatJITData)
	}
}

// TestReJITInvalidatesCanonicalSlot: the tier-2 upgrade rewrites the
// method's canonical pages with profile-specialized bytes, grows the private
// code cache, and counts the invalidated span — and it happens once.
func TestReJITInvalidatesCanonicalSlot(t *testing.T) {
	a := testArchive()
	j := launch(t, bootGuest(t, 1), shareOpts(a))
	warmShared(j)

	var ms *methodState
	for _, m := range j.jit.methodList {
		if m.archived && m.tier == 1 {
			ms = m
			break
		}
	}
	if ms == nil {
		t.Fatal("no archived tier-1 method after warm-up")
	}
	vpn := j.jit.shareVMA.Start + mem.VPN(ms.entry.PageOff)
	before := append([]byte(nil), j.Process().ReadPage(vpn)...)
	st0 := j.JIT().Stats()
	codeBytes0 := st0.CodeBytes

	j.JIT().RecompileProfiled(ms.class, ms.m)

	st1 := j.JIT().Stats()
	if bytes.Equal(before, j.Process().ReadPage(vpn)) {
		t.Fatal("re-JIT left the canonical page untouched")
	}
	if st1.ReJITs != st0.ReJITs+1 {
		t.Fatalf("ReJITs %d, want %d", st1.ReJITs, st0.ReJITs+1)
	}
	if got := st1.CanonicalPagesInvalidated - st0.CanonicalPagesInvalidated; got != ms.entry.Pages {
		t.Fatalf("invalidated %d pages, slot spans %d", got, ms.entry.Pages)
	}
	if st1.CodeBytes <= codeBytes0 {
		t.Fatal("tier-2 body did not grow the private code cache")
	}

	// The upgrade is terminal: compiling the method again is a no-op.
	j.JIT().CompileMethod(ms.class, ms.m)
	j.JIT().RecompileProfiled(ms.class, ms.m)
	if st2 := j.JIT().Stats(); st2.ReJITs != st1.ReJITs ||
		st2.CanonicalPagesInvalidated != st1.CanonicalPagesInvalidated {
		t.Fatalf("tier-2 method upgraded again: %+v vs %+v", st2, st1)
	}
}

// TestRecompileProfiledMatchesCompileWhenOff pins the flag-off contract: the
// AOT-upgrade path calling RecompileProfiled must behave byte-for-byte like
// the old direct CompileMethod call.
func TestRecompileProfiledMatchesCompileWhenOff(t *testing.T) {
	j1 := launch(t, bootGuest(t, 1), basicOpts())
	j2 := launch(t, bootGuest(t, 1), basicOpts())
	cl := corpus().Stack(classlib.GroupJDK)[0]
	j1.JIT().CompileMethod(cl.Seed, 0)
	j2.JIT().RecompileProfiled(cl.Seed, 0)
	if s1, s2 := j1.JIT().Stats(), j2.JIT().Stats(); s1 != s2 {
		t.Fatalf("stats diverge without an archive: %+v vs %+v", s1, s2)
	}
	b1 := j1.Process().ReadPage(j1.jit.code.segs[0].Start)
	b2 := j2.Process().ReadPage(j2.jit.code.segs[0].Start)
	if !bytes.Equal(b1, b2) {
		t.Fatal("RecompileProfiled produced different code than CompileMethod")
	}
}

// TestScratchPoolBoundedAndRecycled: the compiler work area never exceeds
// its configured cap, FinishBurst keeps the recycled pages resident, and the
// recycled segments are reused instead of growing the pool.
func TestScratchPoolBoundedAndRecycled(t *testing.T) {
	k := bootGuest(t, 1)
	sizes := DefaultSizes(scale)
	sizes.JITScratchBytes = 128 << 10
	j := Launch(k, "java-was", corpus(), basicOpts(), sizes)
	classes := corpus().Stack(classlib.GroupJDK)
	if len(classes) > 40 {
		classes = classes[:40]
	}
	for _, cl := range classes {
		j.JIT().CompileMethod(cl.Seed, 0)
		if got := j.jit.scratch.allocated; got > sizes.JITScratchBytes {
			t.Fatalf("scratch pool at %d bytes, cap %d", got, sizes.JITScratchBytes)
		}
	}
	if st := j.JIT().Stats(); st.ScratchPeak > sizes.JITScratchBytes {
		t.Fatalf("scratch peak %d exceeds cap %d", st.ScratchPeak, sizes.JITScratchBytes)
	}

	resident := j.Process().ResidentPages()
	segs := j.jit.scratch.segCount
	j.JIT().FinishBurst()
	if got := j.Process().ResidentPages(); got != resident {
		t.Fatalf("FinishBurst changed residency %d -> %d; recycling must not release pages",
			resident, got)
	}
	for _, cl := range classes {
		j.JIT().CompileMethod(cl.Seed, 1)
	}
	if got := j.jit.scratch.segCount; got != segs {
		t.Fatalf("scratch pool grew from %d to %d segments after recycling", segs, got)
	}
}

// TestTouchJITCodeWrapsGrownArena: execution sampling triggers re-JITs, the
// tier-2 bodies grow the code arena, and the touch cursor keeps cycling over
// archive + grown segments without faulting past a populated prefix.
func TestTouchJITCodeWrapsGrownArena(t *testing.T) {
	a := testArchive()
	j := launch(t, bootGuest(t, 1), shareOpts(a))
	warmShared(j)
	segs0 := j.jit.code.segCount

	for step := 0; step < 200 && j.JIT().Stats().ReJITs == 0; step++ {
		j.TouchJITCode(step, 1000)
	}
	if j.JIT().Stats().ReJITs == 0 {
		t.Fatal("execution sampling never triggered a re-JIT")
	}
	if j.jit.code.segCount < segs0 {
		t.Fatalf("code arena shrank: %d -> %d segments", segs0, j.jit.code.segCount)
	}

	regions := j.jit.touchRanges()
	total := 0
	for _, r := range regions {
		total += r.pages
	}
	j.TouchJITCode(999, 2*total) // two full wraps over the grown rotation
	for _, r := range regions {
		for p := 0; p < r.pages; p++ {
			if _, ok := j.Process().PageTable().Lookup(r.v.Start + mem.VPN(p)); !ok {
				t.Fatalf("page %d of %s not resident after a full touch cycle", p, r.v.Label)
			}
		}
	}
}

// TestReJITCOWBreaksMergedArchivePage is the end-to-end KSM story: two
// guests attach the archive, the scanner merges the canonical pages, then a
// profile-driven recompilation writes one merged slot — the write must
// COW-break the stable frame (counted by the scanner) and leave the host's
// frame accounting clean.
func TestReJITCOWBreaksMergedArchivePage(t *testing.T) {
	clock := simclock.New()
	host := hypervisor.NewHost(hypervisor.Config{Name: "t", RAMBytes: 256 << 20}, clock)
	a := testArchive()
	var jvms []*JVM
	for i := 0; i < 2; i++ {
		vm := host.NewVM(hypervisor.VMConfig{
			Name: "vm", GuestMemBytes: 64 << 20, Seed: mem.Seed(i + 1),
		})
		k := guestos.Boot(vm, guestos.KernelConfig{Version: "2.6.18", TextBytes: 1 << 20})
		j := Launch(k, "java-was", corpus(), shareOpts(a), DefaultSizes(scale))
		warmShared(j)
		jvms = append(jvms, j)
	}

	scanner := ksm.New(host, ksm.DefaultConfig())
	scanner.RegisterAll()
	pagesPerPass := 0
	for _, j := range jvms {
		vm := j.Process().Kernel().VM().(*hypervisor.VMProcess)
		pagesPerPass += vm.GuestPages()
	}
	scanner.ScanChunk(pagesPerPass*3 + 1)

	var areas []jitshare.Area
	for _, j := range jvms {
		area, ok := j.JIT().ShareArea()
		if !ok {
			t.Fatal("shared JVM reports no archive area")
		}
		areas = append(areas, area)
	}
	census := jitshare.Census(host, areas)
	if census.Merged == 0 {
		t.Fatalf("no archive page merged after 3 passes: %+v", census)
	}

	// Find an archived tier-1 method in JVM 1 whose first canonical page the
	// scanner actually merged.
	j := jvms[0]
	vm := j.Process().Kernel().VM().(*hypervisor.VMProcess)
	var ms *methodState
	for _, m := range j.jit.methodList {
		if !m.archived || m.tier != 1 {
			continue
		}
		pte, ok := j.Process().PageTable().Lookup(j.jit.shareVMA.Start + mem.VPN(m.entry.PageOff))
		if !ok || pte.Swapped {
			continue
		}
		f, ok := vm.ResolveResident(vm.GPFNToHostVPN(uint64(pte.Frame)))
		if ok && host.Phys().IsKSM(f) {
			ms = m
			break
		}
	}
	if ms == nil {
		t.Fatal("no merged archived method to recompile")
	}

	breaks0 := scanner.Stats().COWBreaks
	j.JIT().RecompileProfiled(ms.class, ms.m)
	if got := scanner.Stats().COWBreaks; got <= breaks0 {
		t.Fatalf("re-JIT write on a merged page recorded no COW break (%d -> %d)", breaks0, got)
	}
	scanner.ScanChunk(pagesPerPass + 1) // let the scanner prune the dead slot
	if err := host.CheckLeaks(scanner.StableFrames()); err != nil {
		t.Fatalf("frame accounting after re-JIT COW break: %v", err)
	}
}
