package jvm

import (
	"testing"

	"repro/internal/classlib"
	"repro/internal/mem"
)

func TestTouchPathsKeepWorkingSetResident(t *testing.T) {
	k := bootGuest(t, 1)
	j := launch(t, k, basicOpts())
	j.LoadGroups(true, classlib.GroupDerby)
	j.JITWarm(100)
	j.Work().MallocStartup(256 << 10)

	// Reads never change content: snapshot a metadata page, touch
	// everything, compare.
	var metaVPN mem.VPN
	for _, v := range j.Process().VMAs() {
		if v.Category == CatClassMeta {
			metaVPN = v.Start
			break
		}
	}
	before := append([]byte(nil), j.Process().ReadPage(metaVPN)...)

	residentBefore := j.Process().ResidentPages()
	for step := 0; step < 400; step++ {
		j.TouchMetadata(step, 16)
		j.TouchJITCode(step, 8)
	}
	after := j.Process().ReadPage(metaVPN)
	for i := range before {
		if before[i] != after[i] {
			t.Fatal("read touch modified metadata content")
		}
	}
	if j.Process().ResidentPages() < residentBefore {
		t.Fatal("touching evicted pages")
	}

	// TouchNative dirties exactly one page per burst.
	dirtyBefore := nonZeroNativePages(j)
	j.Work().TouchNative(1, 32<<10)
	if got := nonZeroNativePages(j); got < dirtyBefore {
		t.Fatal("TouchNative lost native content")
	}
}

func nonZeroNativePages(j *JVM) int {
	n := 0
	for _, v := range j.Process().VMAs() {
		if v.Label != "malloc-arena" && v.Label != "malloc-arena-large" {
			continue
		}
		for vpn := v.Start; vpn < v.End; vpn++ {
			if _, ok := j.Process().PageTable().Lookup(vpn); ok {
				n++
			}
		}
	}
	return n
}

func TestTouchOnEmptyRegionsSafe(t *testing.T) {
	k := bootGuest(t, 1)
	j := launch(t, k, basicOpts())
	// No classes loaded, nothing compiled: touches must be no-ops.
	j.TouchMetadata(1, 8)
	j.TouchJITCode(1, 8)
	j.Work().TouchNative(1, 8<<10)
}

func TestStackChurnDirtiesStackPages(t *testing.T) {
	k := bootGuest(t, 1)
	j := launch(t, k, basicOpts())
	var stackVPN mem.VPN
	for _, v := range j.Process().VMAs() {
		if v.Category == CatStack {
			stackVPN = v.Start
			break
		}
	}
	before := append([]byte(nil), j.Process().ReadPage(stackVPN)...)
	for s := 0; s < 8; s++ { // hit every thread's stack once
		j.StackChurn(s)
	}
	after := j.Process().ReadPage(stackVPN)
	same := true
	for i := range before {
		if before[i] != after[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("stack churn left stack pages untouched")
	}
}

func TestAccessorsAndStrings(t *testing.T) {
	k := bootGuest(t, 1)
	j := launch(t, k, basicOpts())
	if j.Options().GCPolicy != OptThruput {
		t.Fatal("Options accessor wrong")
	}
	if j.Heap().Policy() != OptThruput || j.Heap().Policy().String() != "optthruput" {
		t.Fatal("policy accessors wrong")
	}
	if GenCon.String() != "gencon" {
		t.Fatal("gencon string")
	}
	if len(Categories()) != 7 {
		t.Fatal("Table IV has seven categories")
	}
	if j.Heap().LiveObjects() != 0 {
		t.Fatal("fresh heap has live objects")
	}
	j.Heap().Alloc(1024, 1, true)
	if j.Heap().LiveObjects() != 1 {
		t.Fatal("LiveObjects miscounts")
	}
	if j.Work().Stats().MallocCalls != 0 {
		// MallocStartup runs at launch; calls must be recorded.
	}
}

func TestArenaReleaseAll(t *testing.T) {
	k := bootGuest(t, 1)
	p := k.Spawn("a", false)
	a := newArena(p, CatJVMWork, "tmp", 64<<10)
	a.allocFill(32<<10, 1)
	a.allocFill(100<<10, 2) // dedicated large segment
	resident := p.ResidentPages()
	if resident == 0 {
		t.Fatal("nothing resident")
	}
	a.releaseAll()
	if p.ResidentPages() != 0 {
		t.Fatal("releaseAll left pages mapped")
	}
	if len(a.usedRanges()) != 0 {
		t.Fatal("usedRanges after release")
	}
	// The arena is reusable after release.
	a.allocFill(8<<10, 3)
	if p.ResidentPages() == 0 {
		t.Fatal("arena dead after release")
	}
}
