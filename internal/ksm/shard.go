// Sharded scanning: the merge pipeline partitioned by checksum bucket.
//
// Config.Shards > 1 splits the scanner's mutable merge state — the stable
// treap and the unstable index — into disjoint shards routed by
// checksum % shards. Because a candidate can only ever interact with content
// of its own checksum (a stable hit or an unstable partner is byte-identical,
// hence checksum-identical), every lookup, insert and removal a candidate
// performs lands in one shard, and workers pinned to distinct shards never
// contend.
//
// A scan chunk is processed in batches through four phases:
//
//  1. collect (serial): the linear cursor walk or the incremental queue pop
//     gathers candidate (vm, vpn) pairs in scan order — the same order the
//     unsharded scanner visits them.
//  2. classify (parallel, striped by index): each candidate resolves its PTE
//     and computes its content checksum through a read-only mem.ROView;
//     terminal verdicts (not resident, already shared, huge-skip) and the
//     volatility gate are decided here. No pool, page-table or scanner state
//     is written.
//  3. merge (parallel, one worker per shard with work): each worker runs the
//     stable-lookup / unstable-partner pipeline for its shard's candidates in
//     batch order, eagerly mutating only shard-owned structures. Global
//     effects (refcounts, remaps, write-protects, KSM flags, stats, gate
//     writes) are recorded on the candidate. Two worker-local overlays —
//     pendKSM (frames promoted earlier in this batch) and pendRemap (pages
//     remapped earlier in this batch) — reproduce exactly the mid-batch state
//     the serial scanner would observe; they suffice because every such
//     interaction is same-checksum and therefore same-shard.
//  4. commit (serial, batch order): verdicts are applied in candidate order,
//     so the page-table, refcount and statistics mutation stream is
//     byte-for-byte the one the serial scanner emits. Frame allocation and
//     free order — which every figure depends on — is therefore independent
//     of both the shard count and the worker interleaving.
//
// The huge-splitting policies (Config.SplitHugePages and
// Config.PartialSplitHuge) rewrite PTE ranges that can cross checksum shards
// mid-scan, so batches run through the serial path whenever either is
// enabled — still routed through the sharded structures, with identical
// outcomes. DESIGN.md §5f covers the invariants in detail.
package ksm

import (
	"sync"

	"repro/internal/hypervisor"
	"repro/internal/mem"
)

// minParallelBatch is the smallest batch fanned out to shard workers; below
// it goroutine dispatch costs more than the scan work. A package variable so
// tests can force the pool on small fixtures.
var minParallelBatch = 256

// scanShard owns one checksum-bucket partition of the merge state.
type scanShard struct {
	stable    *stableTreap
	unstable  map[uint64][]unstableEntry
	unstableN int
	// scanned counts candidates routed into this shard's merge pipeline
	// (volatility gate and beyond) — per-shard telemetry, identical whether
	// the batch ran parallel or serial.
	scanned uint64

	// view is the worker's read-only content accessor; pendKSM and pendRemap
	// are the per-batch overlays described in the package comment.
	view      *mem.ROView
	pendKSM   map[mem.FrameID]struct{}
	pendRemap map[pageKey]mem.FrameID
}

func newScanShard(pm *mem.PhysMem, idx int) *scanShard {
	return &scanShard{
		stable:   newStableTreap(pm, idx),
		unstable: make(map[uint64][]unstableEntry),
		view:     pm.NewROView(),
	}
}

// shardOf routes a content checksum to its owning shard.
func (k *KSM) shardOf(sum uint64) *scanShard {
	return k.shards[int(sum%uint64(len(k.shards)))]
}

// unstableTotal sums unstable entries across shards (telemetry, compaction
// trigger).
func (k *KSM) unstableTotal() int {
	t := 0
	for _, s := range k.shards {
		t += s.unstableN
	}
	return t
}

// stableSize sums stable-tree nodes across shards.
func (k *KSM) stableSize() int {
	t := 0
	for _, s := range k.shards {
		t += s.stable.size
	}
	return t
}

// stableFramesOrdered returns every stable frame in global content-key order
// — the order the single treap of an unsharded scanner yields — by k-way
// merging the per-shard trees' ordered walks. Prune and unmerge iterate it
// so the frame-free order (which feeds allocation order, which feeds every
// figure) is independent of the shard count. Equal content cannot appear in
// two shards (same bytes ⇒ same checksum ⇒ same shard), so the merge never
// ties.
func (k *KSM) stableFramesOrdered() []mem.FrameID {
	if len(k.shards) == 1 {
		return k.shards[0].stable.frames()
	}
	pm := k.host.Phys()
	var lists [][]mem.FrameID
	total := 0
	for _, s := range k.shards {
		if fr := s.stable.frames(); len(fr) > 0 {
			lists = append(lists, fr)
			total += len(fr)
		}
	}
	out := make([]mem.FrameID, 0, total)
	for len(lists) > 0 {
		best := 0
		for i := 1; i < len(lists); i++ {
			if pm.Compare(lists[i][0], lists[best][0]) < 0 {
				best = i
			}
		}
		out = append(out, lists[best][0])
		if lists[best] = lists[best][1:]; len(lists[best]) == 0 {
			lists = append(lists[:best], lists[best+1:]...)
		}
	}
	return out
}

// removeStable drops a frame from its owning shard's tree. Stable content is
// write-protected, so its checksum still matches the routing key it was
// inserted under.
func (k *KSM) removeStable(f mem.FrameID) bool {
	return k.shardOf(k.host.Phys().Checksum(f)).stable.remove(f)
}

// scanVerdict is a candidate's outcome, decided in classify or merge and
// applied in commit.
type scanVerdict uint8

const (
	vPending scanVerdict = iota // awaiting the merge pipeline
	vNotResident
	vAlreadyShared
	vHugeSkip
	vGateSkip
	vStableMerge
	vUnstableMerge
	vRecorded
)

// candidate is one page moving through the batch pipeline.
type candidate struct {
	vm  *hypervisor.VMProcess
	vpn mem.VPN

	// Filled by classify.
	frame     mem.FrameID
	sum       uint64
	shard     int32 // -1 until routed (terminal verdicts stay unrouted)
	verdict   scanVerdict
	gateWrite bool

	// Filled by the merge worker.
	partner     pageKey     // vUnstableMerge: the promoted entry's page
	target      mem.FrameID // merge target frame
	hashRejects uint32      // bucket entries rejected by byte verification
	hugeSkips   uint32      // bucket entries forgone because the partner went huge
}

// processBatch runs one batch of candidates through the merge pipeline. The
// candidates must be distinct pages in scan order, collected while no guest
// ran (the simulator is event-driven, so page contents are frozen between
// scanner wake-ups). incremental selects the incremental-mode bookkeeping
// (IncrementalScanned, gate-skip deferrals); linear callers pass false even
// for the pass-straddling page scanned right after a mode switch, matching
// the serial scanner.
func (k *KSM) processBatch(cands []candidate, incremental bool) {
	if len(cands) == 0 {
		return
	}
	if len(k.shards) > 1 && !k.hugeSplitting() && len(cands) >= minParallelBatch {
		k.classifyCandidates(cands)
		k.runShardWorkers(cands)
		k.commitBatch(cands, incremental)
		return
	}
	// Serial path: single shard, tiny batch, or a huge-splitting policy
	// (whole or partial — either rewrites PTE ranges that cross shards
	// mid-batch). Same routed structures, same outcomes.
	for i := range cands {
		c := &cands[i]
		gateSkipped := k.scanPage(c.vm, c.vpn)
		k.stats.PagesScanned++
		if incremental {
			k.stats.IncrementalScanned++
			if gateSkipped {
				k.deferVolatile(pageKey{vm: c.vm, vpn: c.vpn})
			}
		}
	}
}

// classifyCandidates is the parallel prepare phase: PTE resolution, terminal
// verdicts, checksum, shard routing and the volatility-gate decision, striped
// across the worker views by candidate index. Strictly read-only on pool,
// page-table and scanner state; each goroutine writes only its own slice of
// candidates.
func (k *KSM) classifyCandidates(cands []candidate) {
	nw := len(k.shards)
	chunk := (len(cands) + nw - 1) / nw
	var wg sync.WaitGroup
	for w := 0; w < nw; w++ {
		lo := w * chunk
		if lo >= len(cands) {
			break
		}
		hi := lo + chunk
		if hi > len(cands) {
			hi = len(cands)
		}
		wg.Add(1)
		go func(part []candidate, view *mem.ROView) {
			defer wg.Done()
			for i := range part {
				k.classifyOne(&part[i], view)
			}
		}(cands[lo:hi], k.shards[w].view)
	}
	wg.Wait()
}

func (k *KSM) classifyOne(c *candidate, view *mem.ROView) {
	pte, ok := c.vm.ResidentPTE(c.vpn)
	if !ok {
		c.verdict = vNotResident
		return
	}
	c.frame = pte.Frame
	if k.host.Phys().IsKSM(c.frame) {
		c.verdict = vAlreadyShared
		return
	}
	if pte.Huge {
		// The parallel path never runs under the split policy, so a huge
		// mapping is always skipped outright.
		c.verdict = vHugeSkip
		return
	}
	c.sum = view.Checksum(c.frame)
	c.shard = int32(c.sum % uint64(len(k.shards)))
	if k.cfg.ChecksumGate {
		key := pageKey{vm: c.vm, vpn: c.vpn}
		last, seen := k.checksums[key]
		c.gateWrite = true
		if !seen || last != c.sum {
			c.verdict = vGateSkip
			return
		}
	}
	c.verdict = vPending
}

// runShardWorkers fans the routed candidates out to one worker per shard
// with work. Gate-skipped candidates are routed too: a frame promoted
// earlier in the batch must flip them to already-shared exactly as the
// serial scanner's IsKSM check (which precedes the gate) would have.
func (k *KSM) runShardWorkers(cands []candidate) {
	if k.shardIdx == nil {
		k.shardIdx = make([][]int32, len(k.shards))
	}
	for i := range k.shardIdx {
		k.shardIdx[i] = k.shardIdx[i][:0]
	}
	for i := range cands {
		if c := &cands[i]; c.verdict == vPending || c.verdict == vGateSkip {
			k.shardIdx[c.shard] = append(k.shardIdx[c.shard], int32(i))
		}
	}
	busy := 0
	last := 0
	for si, idxs := range k.shardIdx {
		if len(idxs) > 0 {
			busy++
			last = si
		}
	}
	if busy == 0 {
		return
	}
	if busy == 1 {
		k.runShardWorker(k.shards[last], cands, k.shardIdx[last])
		return
	}
	var wg sync.WaitGroup
	for si, idxs := range k.shardIdx {
		if len(idxs) == 0 {
			continue
		}
		wg.Add(1)
		go func(s *scanShard, idxs []int32) {
			defer wg.Done()
			k.runShardWorker(s, cands, idxs)
		}(k.shards[si], idxs)
	}
	wg.Wait()
}

func (k *KSM) runShardWorker(s *scanShard, cands []candidate, idxs []int32) {
	if s.pendKSM == nil {
		s.pendKSM = make(map[mem.FrameID]struct{})
		s.pendRemap = make(map[pageKey]mem.FrameID)
	} else {
		clear(s.pendKSM)
		clear(s.pendRemap)
	}
	s.view.ResetFills()
	cmp := s.view.Compare
	pm := k.host.Phys()
	for _, i := range idxs {
		k.mergeCandidate(s, &cands[i], cmp, pm)
	}
}

// mergeCandidate runs phase 3 for one candidate: the exact scanPage pipeline
// against shard-owned structures plus the batch overlays, with all global
// effects deferred to the candidate record.
func (k *KSM) mergeCandidate(s *scanShard, c *candidate, cmp func(a, b mem.FrameID) int, pm *mem.PhysMem) {
	key := pageKey{vm: c.vm, vpn: c.vpn}
	if _, pend := s.pendKSM[c.frame]; pend {
		// An earlier candidate in this batch promoted this very frame (two
		// pages COW-sharing it): the serial scanner's IsKSM check fires
		// before the gate, so the gate write is cancelled too.
		c.verdict = vAlreadyShared
		c.gateWrite = false
		return
	}
	if c.verdict == vGateSkip {
		return // gate decided in classify; only the pendKSM override above could trump it
	}

	// Stable tree first.
	if stableFrame, hit := s.stable.lookupWith(c.frame, cmp); hit {
		c.verdict = vStableMerge
		c.target = stableFrame
		s.pendRemap[key] = stableFrame
		return
	}

	// Unstable index.
	bucket := s.unstable[c.sum]
	selfSeen := false
	for bi := range bucket {
		ent := bucket[bi]
		if ent.key == key {
			selfSeen = true
			continue
		}
		var otherFrame mem.FrameID
		var otherHuge bool
		if nf, remapped := s.pendRemap[ent.key]; remapped {
			// The partner page was remapped earlier in this batch; the
			// serial scanner would resolve it to its new stable frame and
			// skip it at the IsKSM test below.
			otherFrame = nf
		} else {
			otherPTE, ok := ent.key.vm.ResidentPTE(ent.key.vpn)
			if !ok {
				continue
			}
			otherFrame = otherPTE.Frame
			otherHuge = otherPTE.Huge
		}
		if _, pend := s.pendKSM[otherFrame]; pend || pm.IsKSM(otherFrame) {
			continue
		}
		if s.view.Checksum(otherFrame) != ent.checksum {
			continue
		}
		if !k.cfg.HashOnly && !s.view.Equal(c.frame, otherFrame) {
			c.hashRejects++
			continue
		}
		if otherHuge {
			// Sharded batches never run under the split policy, so the
			// verified duplicate is forgone (THP wins), as in scanPage.
			c.hugeSkips++
			continue
		}
		// Promote: shard-owned structures mutate eagerly; the frame-flag,
		// write-protect, refcount and remap effects commit serially.
		s.stable.insertWith(otherFrame, cmp)
		s.pendKSM[otherFrame] = struct{}{}
		s.pendRemap[key] = otherFrame
		c.verdict = vUnstableMerge
		c.partner = ent.key
		c.target = otherFrame
		bucket = append(bucket[:bi], bucket[bi+1:]...)
		s.unstable[c.sum] = bucket
		s.unstableN--
		return
	}
	if !selfSeen {
		s.unstable[c.sum] = append(bucket, unstableEntry{key: key, checksum: c.sum})
		s.unstableN++
	}
	c.verdict = vRecorded
}

// commitBatch applies the batch in candidate (scan) order: exactly the
// mutation stream the serial scanner would have produced. Regenerated seeded
// reads are materialized first (their frames are all still live here;
// applying verdicts can free frames), restoring the pool's compute-once
// caches for later batches.
func (k *KSM) commitBatch(cands []candidate, incremental bool) {
	pm := k.host.Phys()
	for _, s := range k.shards {
		for _, f := range s.view.Fills() {
			pm.Materialize(f)
		}
		s.view.ResetFills()
	}
	for i := range cands {
		c := &cands[i]
		if c.shard >= 0 && c.verdict != vAlreadyShared {
			// The serial scanner's already-shared check fires before the
			// checksum, so a frame promoted mid-batch (pendKSM override)
			// never counts as routed work there; match it.
			k.shards[c.shard].scanned++
		}
		if c.gateWrite {
			k.checksums[pageKey{vm: c.vm, vpn: c.vpn}] = c.sum
		}
		switch c.verdict {
		case vNotResident:
			k.stats.NotResident++
		case vAlreadyShared:
			k.stats.AlreadyShared++
		case vHugeSkip:
			k.stats.HugeSkips++
		case vGateSkip:
			pm.AdoptChecksum(c.frame, c.sum)
			k.stats.ChecksumSkips++
			if incremental {
				k.deferVolatile(pageKey{vm: c.vm, vpn: c.vpn})
			}
		case vStableMerge:
			pm.AdoptChecksum(c.frame, c.sum)
			pm.IncRef(c.target)
			c.vm.RemapShared(c.vpn, c.target)
			k.stats.StableMerges++
		case vUnstableMerge:
			pm.AdoptChecksum(c.frame, c.sum)
			k.stats.HashRejects += uint64(c.hashRejects)
			k.stats.HugeSkips += uint64(c.hugeSkips)
			// Same op order as scanPage: flag, protect, tree ref, map ref,
			// remap — DecRef order inside RemapShared feeds the free stack.
			pm.SetKSM(c.target, true)
			c.partner.vm.WriteProtect(c.partner.vpn)
			pm.IncRef(c.target)
			pm.IncRef(c.target)
			c.vm.RemapShared(c.vpn, c.target)
			k.stats.UnstableMerges++
		case vRecorded:
			pm.AdoptChecksum(c.frame, c.sum)
			k.stats.HashRejects += uint64(c.hashRejects)
			k.stats.HugeSkips += uint64(c.hugeSkips)
		}
		k.stats.PagesScanned++
		if incremental {
			k.stats.IncrementalScanned++
		}
	}
}
