package ksm

import (
	"reflect"
	"testing"

	"repro/internal/mem"
)

// forceParallel drops the batch-size threshold so every batch — even the
// one-page pass-straddler — runs through classify, the shard workers and the
// serial commit. Restored on cleanup.
func forceParallel(t *testing.T) {
	t.Helper()
	old := minParallelBatch
	minParallelBatch = 1
	t.Cleanup(func() { minParallelBatch = old })
}

// shardOutcome is everything a figure can observe from a scanner run: the
// statistics word for word, the stable tree in content order, the physical
// frame behind every guest page, and the pool occupancy before and after an
// unmerge (the latter exercises the ordered free path). Byte-identity of this
// struct across shard counts is the tentpole contract.
type shardOutcome struct {
	stats        Stats
	stable       []mem.FrameID
	frames       [][]int64
	inUse        int
	routed       uint64
	afterUnmerge int
}

func captureOutcome(f *fixture) shardOutcome {
	o := shardOutcome{
		stats:  f.k.Stats(),
		stable: f.k.StableFrames(),
		inUse:  f.host.Phys().FramesInUse(),
	}
	for _, vm := range f.vms {
		row := make([]int64, vm.GuestPages())
		for i := range row {
			row[i] = -1
			if fr, ok := vm.ResolveResident(vm.MemslotBase() + mem.VPN(i)); ok {
				row[i] = int64(fr)
			}
		}
		o.frames = append(o.frames, row)
	}
	for _, n := range f.k.ShardPagesScanned() {
		o.routed += n
	}
	f.k.Unmerge()
	o.afterUnmerge = f.host.Phys().FramesInUse()
	return o
}

// TestShardedLinearMatchesUnsharded is the tentpole equivalence test: the same
// scripted workload — cross-VM duplicates, intra-VM duplicates, uniques,
// post-convergence churn that COW-breaks merged pages, and a mid-run
// unregister — must leave identical stats, an identical stable tree, and the
// same frame behind every page at shard counts 1, 2 and 4. The threshold is
// forced down so the 2- and 4-shard runs really take the parallel pipeline.
func TestShardedLinearMatchesUnsharded(t *testing.T) {
	forceParallel(t)
	run := func(shards int) shardOutcome {
		cfg := DefaultConfig()
		cfg.Shards = shards
		f := newFixture(t, 2048, 3, 24, cfg)
		for vi, vm := range f.vms {
			for i := uint64(0); i < 8; i++ {
				vm.FillGuestPage(i, mem.Seed(100+i)) // duplicated across all VMs
			}
			vm.FillGuestPage(8, mem.Seed(50)) // duplicated within and across VMs
			vm.FillGuestPage(9, mem.Seed(50))
			for i := uint64(10); i < 20; i++ {
				vm.FillGuestPage(i, mem.Seed(uint64(vi+1)*1000+i)) // unique
			}
		}
		f.scanPasses(3)
		// Churn: break two shared pages with a fresh duplicate pair, and point
		// a unique page at already-stable content.
		f.vms[0].FillGuestPage(2, mem.Seed(9001))
		f.vms[1].FillGuestPage(2, mem.Seed(9001))
		f.vms[2].FillGuestPage(15, mem.Seed(103))
		f.scanPasses(3)
		f.k.Unregister(f.vms[1])
		f.scanPasses(2)
		return captureOutcome(f)
	}
	base := run(1)
	if base.stats.StableMerges == 0 || base.stats.UnstableMerges == 0 || base.stats.COWBreaks == 0 {
		t.Fatalf("scenario too tame to prove anything: %+v", base.stats)
	}
	for _, n := range []int{2, 4} {
		if got := run(n); !reflect.DeepEqual(got, base) {
			t.Fatalf("shards=%d diverged from unsharded:\nbase %+v\ngot  %+v", n, base, got)
		}
	}
}

// TestShardedIncrementalMatchesUnsharded: the same contract over the
// dirty-ring path — the retained unstable index, gate-skip deferrals and
// event-gated prunes all live behind the sharded structures too.
func TestShardedIncrementalMatchesUnsharded(t *testing.T) {
	forceParallel(t)
	run := func(shards int) shardOutcome {
		cfg := incrementalConfig()
		cfg.Shards = shards
		f := newDirtyFixture(t, 2048, 3, 32, 0, cfg)
		for _, vm := range f.vms {
			for i := uint64(0); i < 8; i++ {
				vm.FillGuestPage(i, mem.Seed(500+i))
			}
		}
		f.k.ScanChunk(96)
		f.k.ScanChunk(96)
		if !f.k.incremental {
			t.Fatal("not incremental after two passes")
		}
		// Post-convergence churn: break shared pages, seed a new duplicate
		// pair, and rewrite a private page; then several rounds so the
		// two-sighting gate resolves everything.
		f.vms[0].FillGuestPage(2, mem.Seed(9001))
		f.vms[1].FillGuestPage(20, mem.Seed(8000))
		f.vms[2].FillGuestPage(20, mem.Seed(8000))
		f.vms[2].FillGuestPage(25, mem.Seed(8500))
		for i := 0; i < 4; i++ {
			f.k.ScanChunk(96)
		}
		return captureOutcome(f)
	}
	base := run(1)
	if base.stats.IncrementalScanned == 0 {
		t.Fatal("scenario never used the incremental queue")
	}
	for _, n := range []int{2, 4} {
		if got := run(n); !reflect.DeepEqual(got, base) {
			t.Fatalf("shards=%d diverged from unsharded:\nbase %+v\ngot  %+v", n, base, got)
		}
	}
}

// TestShardedLargeBatchMatchesSerial runs pass-sized batches above the real
// dispatch threshold (no override), so the production worker pool actually
// fans out — and, under the CI -race run of this package, its synchronization
// is exercised at full batch width.
func TestShardedLargeBatchMatchesSerial(t *testing.T) {
	run := func(shards int) Stats {
		cfg := DefaultConfig()
		cfg.Shards = shards
		f := newFixture(t, 4096, 4, 128, cfg)
		for vi, vm := range f.vms {
			for i := uint64(0); i < 64; i++ {
				vm.FillGuestPage(i, mem.Seed(100+i))
			}
			for i := uint64(64); i < 96; i++ {
				vm.FillGuestPage(i, mem.Seed(uint64(vi+1)*10000+i))
			}
		}
		f.scanPasses(3)
		f.vms[0].FillGuestPage(5, mem.Seed(31337))
		f.vms[3].FillGuestPage(70, mem.Seed(107))
		f.scanPasses(2)
		return f.k.Stats()
	}
	base := run(1)
	for _, n := range []int{2, 4} {
		if got := run(n); got != base {
			t.Fatalf("shards=%d stats diverged:\nbase %+v\ngot  %+v", n, base, got)
		}
	}
}

// TestShardRoutingSpreadsWork: the checksum partition must actually spread
// routed candidates over the shards rather than collapsing onto one, and the
// per-shard counts must sum to the total routed work.
func TestShardRoutingSpreadsWork(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Shards = 4
	f := newFixture(t, 1024, 2, 32, cfg)
	for i := uint64(0); i < 32; i++ {
		f.vms[0].FillGuestPage(i, mem.Seed(3000+i))
		f.vms[1].FillGuestPage(i, mem.Seed(3000+i))
	}
	f.scanPasses(3)
	counts := f.k.ShardPagesScanned()
	if len(counts) != 4 {
		t.Fatalf("ShardPagesScanned returned %d shards, want 4", len(counts))
	}
	var total uint64
	busy := 0
	for _, n := range counts {
		total += n
		if n > 0 {
			busy++
		}
	}
	if busy < 2 {
		t.Fatalf("checksum routing collapsed onto %d shard(s): %v", busy, counts)
	}
	// Every scanned page here is resident and never already-shared at
	// checksum time in pass 1-2; compare against the routed subset.
	s := f.k.Stats()
	if want := s.PagesScanned - s.AlreadyShared - s.NotResident; total != want {
		t.Fatalf("per-shard counts sum to %d, want %d (%v)", total, want, counts)
	}
}

// TestHugeScanIgnoresPromotedUnstablePartner is the scanHugePage staleness
// regression (satellite): an unstable-index entry whose page has since been
// promoted to a KSM frame is dead — scanPage skips it with an explicit IsKSM
// test, but the huge-candidate path only compared checksums, so the stale
// entry (checksum still matching, content write-protected and shared) could
// vouch for a "duplicate found" verdict and split a huge mapping that the
// stable-tree lookup had already declined to split.
func TestHugeScanIgnoresPromotedUnstablePartner(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SplitHugePages = true
	cfg.ChecksumGate = false // let the first sighting reach the merge pipeline
	f := newFixture(t, 8*hp, 2, 2*hp, cfg)
	base, huge := f.vms[0], f.vms[1]
	huge.FillGuestPage(0, mem.Seed(4000))
	for i := uint64(1); i < hp; i++ {
		huge.FillGuestPage(i, mem.Seed(5000+i))
	}
	if got := huge.CollapseHuge(huge.MemslotBase(), 0); got.String() != "ok" {
		t.Fatalf("setup collapse: %v", got)
	}
	base.FillGuestPage(0, mem.Seed(4000))

	// Fabricate the stale state the retained index of incremental mode can
	// reach: base's page 0 sits in the unstable index, but its frame has been
	// promoted to a KSM page without the entry being removed. The recorded
	// checksum still matches the (write-protected) content.
	pm := f.host.Phys()
	vpn := base.MemslotBase()
	frame, ok := base.ResolveResident(vpn)
	if !ok {
		t.Fatal("setup: base page not resident")
	}
	sum := pm.Checksum(frame)
	sh := f.k.shardOf(sum)
	sh.unstable[sum] = append(sh.unstable[sum], unstableEntry{key: pageKey{vm: base, vpn: vpn}, checksum: sum})
	sh.unstableN++
	pm.SetKSM(frame, true)
	base.WriteProtect(vpn)

	// Scan up to and including the huge run's head subpage, whose content
	// matches the stale entry byte for byte. A KSM partner must not justify a
	// split: the stable tree (empty here) is the only authority on stable
	// content.
	f.k.ScanChunk(2*hp + 1)
	s := f.k.Stats()
	if s.HugeSplits != 0 {
		t.Fatalf("stale KSM-frame partner split the huge mapping (%d splits)", s.HugeSplits)
	}
	if huge.HugeMappings() != 1 {
		t.Fatal("huge mapping dissolved")
	}
}

// TestIncrementalRoundResnapshotsPassBaseline is the per-pass gauge regression
// (satellite): endPass never runs again once the scanner goes incremental, so
// unless every round re-snapshots passStart, the ksm.pass.* gauges silently
// turn into cumulative-since-switch counters.
func TestIncrementalRoundResnapshotsPassBaseline(t *testing.T) {
	f := newDirtyFixture(t, 512, 2, 32, 0, incrementalConfig())
	f.k.ScanChunk(64)
	f.k.ScanChunk(64)
	if !f.k.incremental {
		t.Fatal("not incremental after two passes")
	}
	// Round 1: one dirtied page (gate first sighting, deferred).
	f.vms[0].FillGuestPage(3, mem.Seed(9001))
	before := f.k.stats.PagesScanned
	f.k.ScanChunk(64)
	if f.k.passStart.PagesScanned != before {
		t.Fatalf("round 1 baseline = %d, want the round-start snapshot %d",
			f.k.passStart.PagesScanned, before)
	}
	if got := f.k.stats.PagesScanned - f.k.passStart.PagesScanned; got != 1 {
		t.Fatalf("round 1 per-pass delta = %d, want 1", got)
	}
	// Round 2: the deferred revisit. The baseline must advance again — under
	// the bug it stayed frozen at the mode-switch snapshot forever.
	before = f.k.stats.PagesScanned
	f.k.ScanChunk(64)
	if f.k.passStart.PagesScanned != before {
		t.Fatalf("round 2 baseline = %d, want %d (stale pass snapshot?)",
			f.k.passStart.PagesScanned, before)
	}
	// Idle round: baseline advances to the current counters, delta zero.
	before = f.k.stats.PagesScanned
	f.k.ScanChunk(64)
	if f.k.passStart.PagesScanned != before || f.k.stats.PagesScanned != before {
		t.Fatalf("idle round: baseline %d, scanned %d, want both %d",
			f.k.passStart.PagesScanned, f.k.stats.PagesScanned, before)
	}
}

// TestUnregisterOnlyVMMidPassEndsPass is the empty-scan-list half of the
// pass-boundary regression (satellite): unregistering the only VM mid-pass
// wraps the cursor past a list with zero survivors — all of which were,
// vacuously, scanned — and the old `len(regions) > 0` guard swallowed exactly
// this endPass, leaking the unstable index and the FullScans/streak count.
func TestUnregisterOnlyVMMidPassEndsPass(t *testing.T) {
	f := newFixture(t, 256, 1, 16, DefaultConfig())
	for i := uint64(0); i < 16; i++ {
		f.vms[0].FillGuestPage(i, mem.Seed(40+i))
	}
	f.k.ScanChunk(16) // exactly pass 1: volatility-gate first sightings
	f.k.ScanChunk(8)  // mid-pass 2: 8 second sightings land in the index
	if f.k.unstableTotal() != 8 {
		t.Fatalf("unstable entries mid-pass = %d, want 8", f.k.unstableTotal())
	}
	f.k.Unregister(f.vms[0])
	s := f.k.Stats()
	if s.FullScans != 2 {
		t.Fatalf("FullScans = %d after last-region unregister, want 2", s.FullScans)
	}
	if f.k.unstableTotal() != 0 {
		t.Fatalf("unstable index survived the vacuous pass boundary: %d entries",
			f.k.unstableTotal())
	}
	// The emptied scanner must idle cleanly.
	f.k.ScanChunk(64)
	if got := f.k.Stats(); got.PagesScanned != s.PagesScanned || got.FullScans != 2 {
		t.Fatalf("empty scanner did work: %+v", got)
	}
}

// TestDrainedIncrementalQueueReleasesBacking (satellite): consuming the round
// via incQueue[1:] pins every drained range — head included — in the backing
// array; a fully drained queue must drop to nil so a converged idle phase
// holds no round-sized allocation.
func TestDrainedIncrementalQueueReleasesBacking(t *testing.T) {
	f := newDirtyFixture(t, 512, 2, 32, 0, incrementalConfig())
	f.k.ScanChunk(64)
	f.k.ScanChunk(64)
	if !f.k.incremental {
		t.Fatal("not incremental after two passes")
	}
	for i := uint64(0); i < 6; i++ {
		f.vms[0].FillGuestPage(i, mem.Seed(7000+i))
	}
	f.k.ScanChunk(64) // drains the whole round
	if f.k.incQueue != nil {
		t.Fatalf("drained queue retains backing array (cap %d)", cap(f.k.incQueue))
	}
	// A partially drained round must keep its remainder.
	for i := uint64(0); i < 6; i++ {
		f.vms[0].FillGuestPage(i, mem.Seed(8000+i))
	}
	f.k.ScanChunk(3)
	if len(f.k.incQueue) == 0 {
		t.Fatal("partially drained round lost its remaining work")
	}
	f.k.ScanChunk(64)
	if f.k.incQueue != nil {
		t.Fatal("queue backing array retained after the round finished")
	}
}

// TestDirtyRingDepthGaugeAllocFree (satellite): the ring-depth gauge walks the
// maintained unique-VM list — correct against a manual sum, tracking
// Unregister, and allocation-free per sample (the old version rebuilt a dedup
// map over the region list on every metrics tick).
func TestDirtyRingDepthGaugeAllocFree(t *testing.T) {
	f := newDirtyFixture(t, 512, 3, 16, 0, incrementalConfig())
	f.vms[0].FillGuestPage(1, mem.Seed(7))
	f.vms[0].FillGuestPage(2, mem.Seed(8))
	f.vms[1].FillGuestPage(3, mem.Seed(9))
	want := 0
	for _, vm := range f.vms {
		want += vm.DirtyLogDepth()
	}
	if want == 0 {
		t.Fatal("fixture produced no ring depth")
	}
	if got := f.k.DirtyRingDepth(); got != want {
		t.Fatalf("DirtyRingDepth = %d, want %d", got, want)
	}
	if avg := testing.AllocsPerRun(100, func() { _ = f.k.DirtyRingDepth() }); avg != 0 {
		t.Fatalf("DirtyRingDepth allocates %.1f objects per sample, want 0", avg)
	}
	f.k.Unregister(f.vms[0])
	want = f.vms[1].DirtyLogDepth() + f.vms[2].DirtyLogDepth()
	if got := f.k.DirtyRingDepth(); got != want {
		t.Fatalf("DirtyRingDepth after unregister = %d, want %d", got, want)
	}
}
