package ksm

import (
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/mem"
)

// Property: under any interleaving of inserts and removes, the stable treap
// stays sorted by content, reports exact membership, and matches a
// reference set.
func TestPropertyTreapMatchesReferenceSet(t *testing.T) {
	f := func(ops []uint16) bool {
		pm := mem.NewPhysMem(512*pg, pg)
		tr := newStableTreap(pm, 0)
		ref := map[mem.FrameID]bool{}
		var frames []mem.FrameID
		for _, op := range ops {
			if op%3 != 0 || len(frames) == 0 {
				// Insert a frame with unique content.
				id, err := pm.Alloc()
				if err != nil {
					break
				}
				pm.FillFrame(id, mem.Combine(mem.Seed(op), mem.Seed(len(frames))))
				if _, dup := tr.lookup(id); dup {
					pm.DecRef(id)
					continue
				}
				tr.insert(id)
				ref[id] = true
				frames = append(frames, id)
			} else {
				// Remove a pseudo-random member.
				idx := int(op) % len(frames)
				id := frames[idx]
				if ref[id] {
					if !tr.remove(id) {
						return false
					}
					delete(ref, id)
				}
			}
		}
		// Size and membership agree with the reference.
		walk := tr.frames()
		if len(walk) != len(ref) {
			return false
		}
		for _, id := range walk {
			if !ref[id] {
				return false
			}
		}
		// Walk order is content order.
		if !sort.SliceIsSorted(walk, func(i, j int) bool { return pm.Compare(walk[i], walk[j]) < 0 }) {
			return false
		}
		// Lookup finds exactly the members.
		for id := range ref {
			if got, ok := tr.lookup(id); !ok || got != id {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
