// Package ksm implements the Kernel Samepage Merging scanner (Arcangeli,
// Eidus, Wright — Linux Symposium 2009), the Transparent Page Sharing
// mechanism KVM uses and the paper tunes in §2.C.
//
// The scanner walks the mergeable regions that VM processes register
// (all guest RAM, as QEMU madvises), pages_to_scan pages per wake-up with a
// sleep interval in between. For each resident candidate page it:
//
//  1. applies the volatility gate: a page whose checksum changed since the
//     last visit is skipped (it would only be merged to be COW-broken again);
//  2. searches the stable tree of already-shared pages for byte-identical
//     content and, on a hit, remaps the candidate to the stable frame
//     copy-on-write;
//  3. otherwise searches the unstable index of candidate pages seen earlier
//     in this pass; a byte-identical partner promotes the pair to a new
//     stable page;
//  4. otherwise records the page in the unstable index.
//
// The unstable index is cleared at the end of every full pass, as in Linux.
//
// Cost model: all content operations go through mem's content-addressed
// store, so the per-page work above is cheap in the common case —
// pm.Checksum is a cache lookup (computed once per distinct content, not
// per frame per pass), the stable tree's Compare short-circuits to 0 on
// matching content descriptors, and pm.Equal verifies bytes only when two
// distinct descriptors' checksums collide.
//
// Deviation from Linux noted in DESIGN.md: Linux keeps the unstable
// candidates in a red-black tree whose keys may drift (the tree is tolerated
// to be inconsistent and rebuilt each pass); we keep them in a
// checksum-indexed table with memcmp verification, which has the same merge
// outcomes without modelling tolerated inconsistency. The stable tree is a
// real ordered tree (treap) because stable pages are write-protected and
// their keys cannot drift.
package ksm

import (
	"fmt"

	"repro/internal/hypervisor"
	"repro/internal/mem"
	"repro/internal/metrics"
	"repro/internal/simclock"
)

// Config holds the scanner's tuning parameters, mirroring
// /sys/kernel/mm/ksm/{pages_to_scan,sleep_millisecs}.
type Config struct {
	// PagesToScan is the number of pages examined per wake-up.
	// The paper uses 10 000 during warm-up and 1 000 in steady state.
	PagesToScan int
	// SleepMillis is the sleep between wake-ups (paper: 100 ms).
	SleepMillis int
	// ChecksumGate enables the volatility filter (Linux behaviour). The
	// ablation benchmarks turn it off to show wasted merges on volatile
	// pages.
	ChecksumGate bool
	// HashOnly, when set, merges on checksum equality without verifying
	// bytes. This is the unsound ablation mode: it counts how many merges
	// would have been wrong (none with 64-bit FNV over 4 KiB in practice,
	// but the comparator records verification rejections).
	HashOnly bool
	// ScanCostNanos is the CPU cost charged per scanned page, used only for
	// the duty-cycle estimate. 2 500 ns reproduces the paper's ≈25 % CPU at
	// 10 000 pages/100 ms and ≈2 % at 1 000 pages/100 ms.
	ScanCostNanos int
	// SplitHugePages lets the scanner split a transparent huge mapping back
	// into base pages when it sees that a subpage duplicates known content
	// (a stable page or an unstable candidate), recovering sharing at the
	// cost of TLB reach. Off, huge-mapped pages are skipped entirely — the
	// default Linux behaviour, where THP hides duplicates from KSM.
	SplitHugePages bool
}

// DefaultConfig matches the paper's steady-state setting.
func DefaultConfig() Config {
	return Config{
		PagesToScan:   1000,
		SleepMillis:   100,
		ChecksumGate:  true,
		ScanCostNanos: 2500,
	}
}

// Stats aggregates scanner counters. PagesShared/PagesSharing/SavedBytes
// follow the sysfs names: shared counts stable frames, sharing counts
// mappings of stable frames, and saved is the difference in bytes.
type Stats struct {
	PagesShared  int
	PagesSharing int
	SavedBytes   int64

	FullScans      uint64
	PagesScanned   uint64
	StableMerges   uint64
	UnstableMerges uint64
	ChecksumSkips  uint64
	AlreadyShared  uint64
	NotResident    uint64
	COWBreaks      uint64
	StalePruned    uint64
	Stalls         uint64 // injected daemon stalls (fault injection)
	HashRejects    uint64 // hash matched but bytes differed (verification)
	HugeSkips      uint64 // candidates skipped because a huge mapping covers them
	HugeSplits     uint64 // huge mappings split by KSM to recover sharing
	CPUBusy        simclock.Time
	CPUWall        simclock.Time
}

// CPUPercent reports the scanner's duty cycle since Start.
func (s Stats) CPUPercent() float64 {
	if s.CPUWall == 0 {
		return 0
	}
	return 100 * float64(s.CPUBusy) / float64(s.CPUWall)
}

type pageKey struct {
	vm  *hypervisor.VMProcess
	vpn mem.VPN
}

type unstableEntry struct {
	key      pageKey
	checksum uint64
}

// KSM is the scanner instance for one host.
type KSM struct {
	host *hypervisor.Host
	cfg  Config

	regions []hypervisor.MergeableRegion
	// regSet mirrors regions for O(1) duplicate detection in Register
	// (regions itself stays a slice: scan order is part of determinism).
	regSet    map[hypervisor.MergeableRegion]struct{}
	regionIdx int
	cursor    mem.VPN

	stable    *stableTreap
	unstable  map[uint64][]unstableEntry
	unstableN int // entries across all unstable buckets (telemetry gauge)
	// checksums remembers the last-seen checksum per page for the
	// volatility gate.
	checksums map[pageKey]uint64

	running bool
	started simclock.Time
	// everStarted distinguishes "started at clock epoch" from "never
	// started": Stats must not report wall time for a scanner that never ran.
	everStarted bool
	// stalledUntil makes wake-ups no-ops until the given time (fault
	// injection: ksmd descheduled by a hostile co-runner). Wall time keeps
	// accruing, so a stall shows up as a duty-cycle dip, not a gap.
	stalledUntil simclock.Time
	stats        Stats
	// passStart snapshots the counters at the start of the current pass, so
	// telemetry can expose per-pass activity alongside the cumulative run.
	passStart Stats
}

// New creates a scanner for the host and registers the COW-break hook so
// sharing statistics stay exact. Call Register for each VM (or RegisterAll),
// then Start.
func New(host *hypervisor.Host, cfg Config) *KSM {
	if cfg.PagesToScan <= 0 {
		panic(fmt.Sprintf("ksm: PagesToScan = %d", cfg.PagesToScan))
	}
	if cfg.SleepMillis <= 0 {
		panic(fmt.Sprintf("ksm: SleepMillis = %d", cfg.SleepMillis))
	}
	k := &KSM{
		host:      host,
		cfg:       cfg,
		regSet:    make(map[hypervisor.MergeableRegion]struct{}),
		stable:    newStableTreap(host.Phys()),
		unstable:  make(map[uint64][]unstableEntry),
		checksums: make(map[pageKey]uint64),
	}
	host.OnCOWBreak = k.onCOWBreak
	return k
}

// Config returns the current tuning parameters.
func (k *KSM) Config() Config { return k.cfg }

// SetPagesToScan retunes the scan rate at runtime (the paper switches from
// 10 000 to 1 000 after warm-up).
func (k *KSM) SetPagesToScan(n int) {
	if n <= 0 {
		panic(fmt.Sprintf("ksm: SetPagesToScan(%d)", n))
	}
	k.cfg.PagesToScan = n
}

// Register adds a VM's mergeable regions to the scan list. Regions that are
// already registered are skipped, so Register followed by RegisterAll cannot
// double-scan a VM.
func (k *KSM) Register(vm *hypervisor.VMProcess) {
	for _, reg := range vm.MergeableRegions() {
		if _, dup := k.regSet[reg]; dup {
			continue
		}
		k.regSet[reg] = struct{}{}
		k.regions = append(k.regions, reg)
	}
}

// Unregister drops a VM's regions from the scan list — what Linux does when
// a process with madvised VMAs exits — and purges the VM's volatility-gate
// and unstable-index entries so no stale pointers to the dead process
// survive. The pass cursor is repaired in place: removing a region before
// the current one shifts the index down, removing the current one restarts
// at the region that slides into its slot, and a wrap past the shrunken list
// does NOT count as a completed pass (no endPass side effects fire). Stable
// pages the VM mapped are left to refcounting: KillVM drops the mappings and
// the end-of-pass prune collects nodes nobody maps anymore.
func (k *KSM) Unregister(vm *hypervisor.VMProcess) {
	kept := k.regions[:0]
	newIdx := k.regionIdx
	for i, reg := range k.regions {
		if reg.VM == vm {
			delete(k.regSet, reg)
			if i < k.regionIdx {
				newIdx--
			} else if i == k.regionIdx {
				k.cursor = 0
			}
			continue
		}
		kept = append(kept, reg)
	}
	k.regions = kept
	k.regionIdx = newIdx
	if k.regionIdx >= len(k.regions) {
		k.regionIdx = 0
		k.cursor = 0
	}
	for key := range k.checksums {
		if key.vm == vm {
			delete(k.checksums, key)
		}
	}
	for sum, bucket := range k.unstable {
		keptEnts := bucket[:0]
		for _, ent := range bucket {
			if ent.key.vm == vm {
				k.unstableN--
				continue
			}
			keptEnts = append(keptEnts, ent)
		}
		if len(keptEnts) == 0 {
			delete(k.unstable, sum)
		} else {
			k.unstable[sum] = keptEnts
		}
	}
}

// RegisterAll registers every VM currently on the host.
func (k *KSM) RegisterAll() {
	for _, vm := range k.host.VMs() {
		k.Register(vm)
	}
}

// Start schedules the scan loop on the host clock. The scanner keeps
// rescheduling itself until Stop is called.
func (k *KSM) Start() {
	if k.running {
		return
	}
	k.running = true
	k.started = k.host.Clock().Now()
	k.everStarted = true
	k.host.Clock().Every(simclock.Time(k.cfg.SleepMillis)*simclock.Millisecond, func(now simclock.Time) bool {
		if !k.running {
			return false
		}
		if now < k.stalledUntil {
			return true
		}
		k.ScanChunk(k.cfg.PagesToScan)
		return true
	})
}

// Stall suspends scanning for d of virtual time: wake-ups fire but do no
// work until the deadline passes. Overlapping stalls extend, not stack.
func (k *KSM) Stall(d simclock.Time) {
	if until := k.host.Clock().Now() + d; until > k.stalledUntil {
		k.stalledUntil = until
	}
	k.stats.Stalls++
}

// Stop halts the scan loop after the current wake-up.
func (k *KSM) Stop() { k.running = false }

// Stats returns a snapshot of counters with the sharing totals recomputed
// from the stable tree.
func (k *KSM) Stats() Stats {
	s := k.stats
	s.PagesShared = 0
	s.PagesSharing = 0
	pm := k.host.Phys()
	k.stable.walk(func(f mem.FrameID) {
		mappers := pm.RefCount(f) - 1 // one reference belongs to the tree
		if mappers <= 0 {
			return
		}
		s.PagesShared++
		s.PagesSharing += mappers
	})
	s.SavedBytes = int64(s.PagesSharing-s.PagesShared) * int64(k.host.PageSize())
	// A scanner that never started has no wall time; without this guard
	// CPUPercent would report a bogus duty cycle measured from clock epoch.
	if k.everStarted {
		s.CPUWall = k.host.Clock().Now() - k.started
	}
	return s
}

// ScanChunk examines up to n pages, advancing the circular cursor over all
// registered regions. A full pass over every region ends the current
// unstable generation and prunes dead stable nodes. Empty regions
// (Start == End) are skipped: clamping the cursor into one would otherwise
// scan reg.End itself, a page KSM was never madvised about.
func (k *KSM) ScanChunk(n int) {
	if !k.anyScannable() {
		return
	}
	if k.regionIdx >= len(k.regions) {
		k.regionIdx = 0
		k.cursor = 0
	}
	for i := 0; i < n; i++ {
		for k.regions[k.regionIdx].Start >= k.regions[k.regionIdx].End {
			k.advanceRegion()
		}
		reg := k.regions[k.regionIdx]
		if k.cursor < reg.Start {
			k.cursor = reg.Start
		}
		vpn := k.cursor
		k.cursor++
		if k.cursor >= reg.End {
			k.advanceRegion()
		}
		k.scanPage(reg.VM, vpn)
		k.stats.PagesScanned++
	}
	k.stats.CPUBusy += simclock.Time(int64(n) * int64(k.cfg.ScanCostNanos) / 1000)
}

// anyScannable reports whether at least one registered region has pages.
func (k *KSM) anyScannable() bool {
	for _, reg := range k.regions {
		if reg.Start < reg.End {
			return true
		}
	}
	return false
}

// advanceRegion moves the cursor to the next region, ending the pass when it
// wraps around the scan list.
func (k *KSM) advanceRegion() {
	k.regionIdx++
	k.cursor = 0
	if k.regionIdx >= len(k.regions) {
		k.regionIdx = 0
		k.endPass()
	}
}

// endPass finishes a full scan of all regions: the unstable index is
// dropped (as in Linux), stable nodes whose last mapper went away are
// pruned, and so are volatility-gate entries for pages that are no longer
// scan candidates — swapped out, unmapped, or merged into a stable page.
// Without that prune the checksum map grows with every page the scanner has
// ever visited instead of staying proportional to the resident set.
func (k *KSM) endPass() {
	k.stats.FullScans++
	k.unstable = make(map[uint64][]unstableEntry)
	k.unstableN = 0
	pm := k.host.Phys()
	for _, f := range k.stable.frames() {
		if pm.RefCount(f) == 1 { // only the tree holds it
			k.stable.remove(f)
			pm.SetKSM(f, false)
			pm.DecRef(f)
			k.stats.StalePruned++
		}
	}
	for key := range k.checksums {
		frame, resident := key.vm.ResolveResident(key.vpn)
		if !resident || pm.IsKSM(frame) {
			delete(k.checksums, key)
		}
	}
	k.passStart = k.stats
}

// scanPage runs the merge pipeline on one candidate page.
func (k *KSM) scanPage(vm *hypervisor.VMProcess, vpn mem.VPN) {
	pm := k.host.Phys()
	pte, ok := vm.ResidentPTE(vpn)
	if !ok {
		k.stats.NotResident++
		return
	}
	frame := pte.Frame
	if pm.IsKSM(frame) {
		k.stats.AlreadyShared++
		return
	}
	if pte.Huge {
		k.scanHugePage(vm, vpn, frame)
		return
	}

	key := pageKey{vm: vm, vpn: vpn}
	sum := pm.Checksum(frame)
	if k.cfg.ChecksumGate {
		last, seen := k.checksums[key]
		k.checksums[key] = sum
		if !seen || last != sum {
			k.stats.ChecksumSkips++
			return
		}
	}

	// Stable tree first.
	if stableFrame, hit := k.stable.lookup(frame); hit {
		pm.IncRef(stableFrame)
		vm.RemapShared(vpn, stableFrame)
		k.stats.StableMerges++
		return
	}

	// Unstable index.
	bucket := k.unstable[sum]
	for bi, ent := range bucket {
		if ent.key == key {
			continue
		}
		otherPTE, ok := ent.key.vm.ResidentPTE(ent.key.vpn)
		if !ok {
			continue
		}
		otherFrame := otherPTE.Frame
		if pm.IsKSM(otherFrame) || pm.Checksum(otherFrame) != ent.checksum {
			// Stale: page went away, was merged via another path, or was
			// rewritten since we recorded it.
			continue
		}
		if !k.cfg.HashOnly && !pm.Equal(frame, otherFrame) {
			k.stats.HashRejects++
			continue
		}
		if otherPTE.Huge {
			// The partner was collapsed into a huge mapping after we
			// recorded it. Under the split policy the verified duplicate
			// justifies dissolving the huge page; otherwise THP wins and
			// the merge is forgone.
			if !k.cfg.SplitHugePages {
				k.stats.HugeSkips++
				continue
			}
			ent.key.vm.SplitHuge(mem.HugeAlign(ent.key.vpn))
			k.stats.HugeSplits++
		}
		// Promote the partner to a stable page and remap the candidate.
		pm.SetKSM(otherFrame, true)
		ent.key.vm.WriteProtect(ent.key.vpn)
		pm.IncRef(otherFrame) // tree reference
		k.stable.insert(otherFrame)

		pm.IncRef(otherFrame)
		vm.RemapShared(vpn, otherFrame)
		k.stats.UnstableMerges++

		// Drop the promoted entry from the bucket.
		bucket = append(bucket[:bi], bucket[bi+1:]...)
		k.unstable[sum] = bucket
		k.unstableN--
		return
	}
	k.unstable[sum] = append(bucket, unstableEntry{key: key, checksum: sum})
	k.unstableN++
}

// scanHugePage handles a candidate covered by a transparent huge mapping.
// Without the split policy the page is simply skipped (THP hides it from
// merging). With it, the scanner checks whether the subpage's content
// duplicates a stable page or a still-valid unstable candidate; a verified
// duplicate splits the huge mapping and the page re-enters the normal merge
// pipeline immediately.
func (k *KSM) scanHugePage(vm *hypervisor.VMProcess, vpn mem.VPN, frame mem.FrameID) {
	if !k.cfg.SplitHugePages {
		k.stats.HugeSkips++
		return
	}
	pm := k.host.Phys()
	sum := pm.Checksum(frame)
	if k.cfg.ChecksumGate {
		// Same volatility gate as base pages: splitting a huge page for a
		// still-changing subpage would only trade TLB reach for a merge that
		// breaks right back.
		key := pageKey{vm: vm, vpn: vpn}
		last, seen := k.checksums[key]
		k.checksums[key] = sum
		if !seen || last != sum {
			k.stats.ChecksumSkips++
			return
		}
	}
	key := pageKey{vm: vm, vpn: vpn}
	dup := false
	if _, hit := k.stable.lookup(frame); hit {
		dup = true
	} else {
		for _, ent := range k.unstable[sum] {
			if ent.key == key {
				continue
			}
			otherFrame, ok := ent.key.vm.ResolveResident(ent.key.vpn)
			if !ok || pm.Checksum(otherFrame) != ent.checksum {
				continue
			}
			if k.cfg.HashOnly || pm.Equal(frame, otherFrame) {
				dup = true
				break
			}
		}
	}
	if !dup {
		// No known duplicate yet — record the page as an unstable candidate
		// anyway. Duplicates that are huge-mapped in *every* VM could never
		// find each other otherwise; when a later scan matches this entry,
		// both sides are split and merged (the partner-huge path in
		// scanPage).
		k.unstable[sum] = append(k.unstable[sum], unstableEntry{key: key, checksum: sum})
		k.unstableN++
		return
	}
	vm.SplitHuge(mem.HugeAlign(vpn))
	k.stats.HugeSplits++
	// The mapping is base-grained now; rescan so the duplicate merges in
	// this same visit (the gate entry written above lets it through).
	k.scanPage(vm, vpn)
}

// Instrument registers the scanner's telemetry gauges on the registry.
// Cumulative counters come straight from the stats block; "ksm.pass.*"
// gauges report activity within the current pass (counter minus the
// end-of-last-pass snapshot), so a timeline shows per-pass effort even
// after the cumulative totals dwarf it. The sharing totals need a stable
// treap walk, so they share one Stats snapshot per sample timestamp.
// A nil registry is a no-op, matching the rest of the metrics API.
func (k *KSM) Instrument(r *metrics.Registry) {
	if r == nil {
		return
	}
	var (
		snapAt    simclock.Time = -1
		snapStats Stats
	)
	snapshot := func() Stats {
		if now := k.host.Clock().Now(); now != snapAt {
			snapAt = now
			snapStats = k.Stats()
		}
		return snapStats
	}
	r.Gauge("ksm.pages_scanned", func() float64 { return float64(k.stats.PagesScanned) })
	r.Gauge("ksm.pages_merged", func() float64 {
		return float64(k.stats.StableMerges + k.stats.UnstableMerges)
	})
	r.Gauge("ksm.pages_unmerged", func() float64 { return float64(k.stats.COWBreaks) })
	r.Gauge("ksm.pages_volatile", func() float64 { return float64(k.stats.ChecksumSkips) })
	r.Gauge("ksm.full_scans", func() float64 { return float64(k.stats.FullScans) })
	r.Gauge("ksm.stable_tree_size", func() float64 { return float64(k.stable.size) })
	r.Gauge("ksm.unstable_entries", func() float64 { return float64(k.unstableN) })
	r.Gauge("ksm.pages_shared", func() float64 { return float64(snapshot().PagesShared) })
	r.Gauge("ksm.pages_sharing", func() float64 { return float64(snapshot().PagesSharing) })
	r.Gauge("ksm.saved_bytes", func() float64 { return float64(snapshot().SavedBytes) })
	r.Gauge("ksm.pass.pages_scanned", func() float64 {
		return float64(k.stats.PagesScanned - k.passStart.PagesScanned)
	})
	r.Gauge("ksm.pass.pages_merged", func() float64 {
		return float64(k.stats.StableMerges + k.stats.UnstableMerges -
			k.passStart.StableMerges - k.passStart.UnstableMerges)
	})
	r.Gauge("ksm.pass.pages_volatile", func() float64 {
		return float64(k.stats.ChecksumSkips - k.passStart.ChecksumSkips)
	})
	r.Gauge("ksm.huge_skips", func() float64 { return float64(k.stats.HugeSkips) })
	r.Gauge("ksm.huge_splits", func() float64 { return float64(k.stats.HugeSplits) })
	r.Gauge("ksm.pass.sharing_lost_pages", func() float64 {
		return float64(k.stats.HugeSkips - k.passStart.HugeSkips)
	})
}

// onCOWBreak keeps break statistics; frame lifecycle is handled by refcounts
// and the end-of-pass prune.
func (k *KSM) onCOWBreak(_ *hypervisor.VMProcess, _ mem.VPN, old mem.FrameID) {
	if k.host.Phys().IsKSM(old) {
		k.stats.COWBreaks++
	}
}

// StableFrames exposes the stable tree contents (for the analyzer and
// tests).
func (k *KSM) StableFrames() []mem.FrameID { return k.stable.frames() }

// Unmerge undoes all sharing, like writing 2 to /sys/kernel/mm/ksm/run:
// every mapping of a stable page gets its own private copy again, and the
// stable tree is pruned. Memory usage jumps back to the unshared level.
func (k *KSM) Unmerge() {
	pm := k.host.Phys()
	for _, reg := range k.regions {
		for vpn := reg.Start; vpn < reg.End; vpn++ {
			f, ok := reg.VM.ResolveResident(vpn)
			if !ok || !pm.IsKSM(f) {
				continue
			}
			// A write access breaks the COW sharing; the touch path copies
			// the stable content into a private frame.
			reg.VM.TouchGuestPage(uint64(vpn-reg.Start), true)
		}
	}
	// All stable frames are now referenced only by the tree.
	for _, f := range k.stable.frames() {
		k.stable.remove(f)
		pm.SetKSM(f, false)
		pm.DecRef(f)
		k.stats.StalePruned++
	}
	k.unstable = make(map[uint64][]unstableEntry)
	k.unstableN = 0
	k.checksums = make(map[pageKey]uint64)
}
