// Package ksm implements the Kernel Samepage Merging scanner (Arcangeli,
// Eidus, Wright — Linux Symposium 2009), the Transparent Page Sharing
// mechanism KVM uses and the paper tunes in §2.C.
//
// The scanner walks the mergeable regions that VM processes register
// (all guest RAM, as QEMU madvises), pages_to_scan pages per wake-up with a
// sleep interval in between. For each resident candidate page it:
//
//  1. applies the volatility gate: a page whose checksum changed since the
//     last visit is skipped (it would only be merged to be COW-broken again);
//  2. searches the stable tree of already-shared pages for byte-identical
//     content and, on a hit, remaps the candidate to the stable frame
//     copy-on-write;
//  3. otherwise searches the unstable index of candidate pages seen earlier
//     in this pass; a byte-identical partner promotes the pair to a new
//     stable page;
//  4. otherwise records the page in the unstable index.
//
// The unstable index is cleared at the end of every full pass, as in Linux.
//
// Incremental mode (Config.IncrementalScan, requiring the host's dirty-page
// log): once two consecutive full passes complete — so every long-lived page
// has had the two same-checksum sightings the volatility gate demands — the
// scanner stops cycling over all registered pages and instead drains each
// VM's PML-style dirty ring once per wake-up, revisiting only pages whose
// content may have changed. The unstable index is retained across rounds as
// the partner directory (a newly-dirtied page must still be able to find the
// clean page it now duplicates); gate-skipped pages are queued for the next
// round so a page that settles down still merges. An overflowed ring forces
// a conservative full rescan of that VM, as does registering a new VM
// mid-flight. Converged rescan cost is therefore proportional to churn, not
// to cluster size.
//
// Cost model: all content operations go through mem's content-addressed
// store, so the per-page work above is cheap in the common case —
// pm.Checksum is a cache lookup (computed once per distinct content, not
// per frame per pass), the stable tree's Compare short-circuits to 0 on
// matching content descriptors, and pm.Equal verifies bytes only when two
// distinct descriptors' checksums collide.
//
// Deviation from Linux noted in DESIGN.md: Linux keeps the unstable
// candidates in a red-black tree whose keys may drift (the tree is tolerated
// to be inconsistent and rebuilt each pass); we keep them in a
// checksum-indexed table with memcmp verification, which has the same merge
// outcomes without modelling tolerated inconsistency. The stable tree is a
// real ordered tree (treap) because stable pages are write-protected and
// their keys cannot drift.
package ksm

import (
	"fmt"
	"sort"

	"repro/internal/hypervisor"
	"repro/internal/mem"
	"repro/internal/metrics"
	"repro/internal/simclock"
)

// Config holds the scanner's tuning parameters, mirroring
// /sys/kernel/mm/ksm/{pages_to_scan,sleep_millisecs}.
type Config struct {
	// PagesToScan is the number of pages examined per wake-up.
	// The paper uses 10 000 during warm-up and 1 000 in steady state.
	PagesToScan int
	// SleepMillis is the sleep between wake-ups (paper: 100 ms).
	SleepMillis int
	// ChecksumGate enables the volatility filter (Linux behaviour). The
	// ablation benchmarks turn it off to show wasted merges on volatile
	// pages.
	ChecksumGate bool
	// HashOnly, when set, merges on checksum equality without verifying
	// bytes. This is the unsound ablation mode: it counts how many merges
	// would have been wrong (none with 64-bit FNV over 4 KiB in practice,
	// but the comparator records verification rejections).
	HashOnly bool
	// ScanCostNanos is the CPU cost charged per scanned page, used only for
	// the duty-cycle estimate. 2 500 ns reproduces the paper's ≈25 % CPU at
	// 10 000 pages/100 ms and ≈2 % at 1 000 pages/100 ms.
	ScanCostNanos int
	// SplitHugePages lets the scanner split a transparent huge mapping back
	// into base pages when it sees that a subpage duplicates known content
	// (a stable page or an unstable candidate), recovering sharing at the
	// cost of TLB reach. Off, huge-mapped pages are skipped entirely — the
	// default Linux behaviour, where THP hides duplicates from KSM.
	SplitHugePages bool
	// PartialSplitHuge is the FHPM refinement of SplitHugePages: instead of
	// dissolving the whole huge mapping, the scanner carves out only the
	// duplicate-bearing subpage (hypervisor.VMProcess.SplitHugeSubpages)
	// and leaves the remainder huge — the same sharing recovered at a
	// fraction of the TLB-reach cost. Takes precedence over SplitHugePages
	// when both are set. The head subpage (offset 0) anchors the huge entry
	// and cannot be carved; its duplicates are skipped.
	PartialSplitHuge bool
	// IncrementalScan switches the scanner to dirty-ring driven rescans
	// after two consecutive completed full passes (see the package comment).
	// It requires the host to be configured with hypervisor.Config.DirtyLog;
	// without the rings the scanner stays linear forever. Off (the default),
	// behaviour is byte-identical to the linear scanner.
	IncrementalScan bool
	// Shards splits the merge state — the stable tree and the unstable index
	// — into this many partitions routed by checksum % Shards, scanned by a
	// bounded worker pool (one worker per shard with work; see shard.go).
	// 0 or 1 keeps the single-threaded scanner. Merge outcomes, statistics
	// and frame allocation order are byte-identical at every shard count;
	// only wall-clock scan time changes. DESIGN.md §5f has the invariants.
	Shards int
}

// fullPassesBeforeIncremental is how many consecutive completed full passes
// an IncrementalScan scanner needs before switching to dirty-ring rescans:
// two, so every stable-content page has had the two same-checksum sightings
// the volatility gate requires and sits either merged or in the retained
// unstable index. Registering a new VM resets the streak.
const fullPassesBeforeIncremental = 2

// DefaultConfig matches the paper's steady-state setting.
func DefaultConfig() Config {
	return Config{
		PagesToScan:   1000,
		SleepMillis:   100,
		ChecksumGate:  true,
		ScanCostNanos: 2500,
	}
}

// Stats aggregates scanner counters. PagesShared/PagesSharing/SavedBytes
// follow the sysfs names: shared counts stable frames, sharing counts
// mappings of stable frames, and saved is the difference in bytes.
type Stats struct {
	PagesShared  int
	PagesSharing int
	SavedBytes   int64

	FullScans      uint64
	PagesScanned   uint64
	StableMerges   uint64
	UnstableMerges uint64
	ChecksumSkips  uint64
	AlreadyShared  uint64
	NotResident    uint64
	COWBreaks      uint64
	StalePruned    uint64
	Stalls         uint64 // injected daemon stalls (fault injection)
	HashRejects    uint64 // hash matched but bytes differed (verification)
	HugeSkips      uint64 // candidates skipped because a huge mapping covers them
	HugeSplits     uint64 // huge mappings split whole by KSM to recover sharing
	// HugePartialSplits counts subpages carved out of huge mappings under
	// PartialSplitHuge (each event is one subpage, not one block).
	HugePartialSplits uint64

	IncrementalRounds  uint64 // dirty-ring drain rounds that produced rescan work
	IncrementalScanned uint64 // pages scanned from the incremental queue
	DirtyDrained       uint64 // pages drained from the per-VM dirty rings
	RingOverflows      uint64 // drain cycles that hit the ring capacity (forced full rescans)

	CPUBusy simclock.Time
	// CPUWall is wall time since Start minus elapsed injected-stall time:
	// a stalled daemon is descheduled, so stalls must not dilute the duty
	// cycle it reports for the time it actually had the CPU.
	CPUWall simclock.Time
	// StalledTime is the elapsed portion of injected Stall windows.
	StalledTime simclock.Time
}

// CPUPercent reports the scanner's duty cycle since Start.
func (s Stats) CPUPercent() float64 {
	if s.CPUWall == 0 {
		return 0
	}
	return 100 * float64(s.CPUBusy) / float64(s.CPUWall)
}

type pageKey struct {
	vm  *hypervisor.VMProcess
	vpn mem.VPN
}

type unstableEntry struct {
	key      pageKey
	checksum uint64
}

// incRange is one incremental-round work item: rescan pages [start, end) of
// one VM. Single dirtied pages are one-page ranges; adjacent pages coalesce.
type incRange struct {
	vm         *hypervisor.VMProcess
	start, end mem.VPN
}

// KSM is the scanner instance for one host.
type KSM struct {
	host *hypervisor.Host
	cfg  Config

	regions []hypervisor.MergeableRegion
	// regSet mirrors regions for O(1) duplicate detection in Register
	// (regions itself stays a slice: scan order is part of determinism).
	regSet    map[hypervisor.MergeableRegion]struct{}
	regionIdx int
	cursor    mem.VPN
	// scannable counts regions with Start < End, maintained on Register and
	// Unregister (regions never resize in place), so ScanChunk's can-work
	// guard is O(1) instead of an O(regions) walk per wake-up.
	scannable int
	// registeredPages is the page total across regions; the retained
	// unstable index of incremental mode is compacted when it outgrows it.
	registeredPages int

	// incremental is true once the scanner has switched to dirty-ring
	// rescans; fullStreak counts consecutive completed full passes toward
	// the switch.
	incremental bool
	fullStreak  int
	// incQueue is the current round's rescan work, in region order with
	// ascending coalesced page ranges per VM.
	incQueue []incRange
	// incPending holds gate-skipped (volatile at last sight) pages for the
	// next round: a page dirtied once must be revisited to earn its second
	// sighting even though nothing dirties it again. incPendingSet dedups.
	incPending    []pageKey
	incPendingSet map[pageKey]struct{}
	// needFull marks VMs registered while incremental whose rings cannot
	// vouch for history: their whole region is rescanned next round.
	needFull map[*hypervisor.VMProcess]bool
	// stableDirty is set when a stable page may have lost its last mapper
	// (COW break on a KSM frame, unregister); incremental rounds run the
	// stale-stable prune only then, keeping idle rounds O(churn).
	stableDirty bool
	// ringVM is the VM whose dirty ring the linear cursor reset most
	// recently; nil between passes so every pass resets each ring once.
	ringVM *hypervisor.VMProcess

	// shards holds the checksum-partitioned merge state (stable treaps,
	// unstable indexes) — one entry when unsharded. See shard.go.
	shards []*scanShard
	// checksums remembers the last-seen checksum per page for the
	// volatility gate.
	checksums map[pageKey]uint64

	// vms lists the VMs with at least one registered region, in first-
	// registration order; vmRegs counts each VM's live regions so Unregister
	// knows when to drop one. The dirty-ring-depth gauge walks vms directly
	// instead of allocating a per-sample dedup map over regions.
	vms    []*hypervisor.VMProcess
	vmRegs map[*hypervisor.VMProcess]int

	// candBuf, wrapCand and shardIdx are reusable scratch for the batch
	// pipeline (shard.go); each batch is fully consumed before the next
	// collection reuses them.
	candBuf  []candidate
	wrapCand candidate
	shardIdx [][]int32

	running bool
	started simclock.Time
	// everStarted distinguishes "started at clock epoch" from "never
	// started": Stats must not report wall time for a scanner that never ran.
	everStarted bool
	// stalledUntil makes wake-ups no-ops until the given time (fault
	// injection: ksmd descheduled by a hostile co-runner). stallSched
	// accumulates the scheduled stall windows (overlaps extend, never
	// double-count) so Stats can subtract elapsed stall time from CPUWall.
	stalledUntil simclock.Time
	stallSched   simclock.Time
	stats        Stats
	// passStart snapshots the counters at the start of the current pass, so
	// telemetry can expose per-pass activity alongside the cumulative run.
	passStart Stats
}

// New creates a scanner for the host and registers the COW-break hook so
// sharing statistics stay exact. Call Register for each VM (or RegisterAll),
// then Start.
func New(host *hypervisor.Host, cfg Config) *KSM {
	if cfg.PagesToScan <= 0 {
		panic(fmt.Sprintf("ksm: PagesToScan = %d", cfg.PagesToScan))
	}
	if cfg.SleepMillis <= 0 {
		panic(fmt.Sprintf("ksm: SleepMillis = %d", cfg.SleepMillis))
	}
	shardN := cfg.Shards
	if shardN <= 0 {
		shardN = 1
	}
	k := &KSM{
		host:      host,
		cfg:       cfg,
		regSet:    make(map[hypervisor.MergeableRegion]struct{}),
		shards:    make([]*scanShard, shardN),
		checksums: make(map[pageKey]uint64),
		needFull:  make(map[*hypervisor.VMProcess]bool),
		vmRegs:    make(map[*hypervisor.VMProcess]int),
	}
	for i := range k.shards {
		k.shards[i] = newScanShard(host.Phys(), i)
	}
	host.OnCOWBreak = k.onCOWBreak
	return k
}

// Config returns the current tuning parameters.
func (k *KSM) Config() Config { return k.cfg }

// SetPagesToScan retunes the scan rate at runtime (the paper switches from
// 10 000 to 1 000 after warm-up).
func (k *KSM) SetPagesToScan(n int) {
	if n <= 0 {
		panic(fmt.Sprintf("ksm: SetPagesToScan(%d)", n))
	}
	k.cfg.PagesToScan = n
}

// Register adds a VM's mergeable regions to the scan list. Regions that are
// already registered are skipped, so Register followed by RegisterAll cannot
// double-scan a VM. Registering fresh pages resets the full-pass streak (a
// pass in flight no longer covers everything twice); a scanner already in
// incremental mode instead schedules a conservative full rescan of the VM,
// since its ring cannot vouch for writes that predate it.
func (k *KSM) Register(vm *hypervisor.VMProcess) {
	added := false
	for _, reg := range vm.MergeableRegions() {
		if _, dup := k.regSet[reg]; dup {
			continue
		}
		k.regSet[reg] = struct{}{}
		k.regions = append(k.regions, reg)
		k.registeredPages += int(reg.End - reg.Start)
		if reg.Start < reg.End {
			k.scannable++
		}
		if k.vmRegs[reg.VM]++; k.vmRegs[reg.VM] == 1 {
			k.vms = append(k.vms, reg.VM)
		}
		added = true
	}
	if !added {
		return
	}
	if k.incremental {
		k.needFull[vm] = true
	} else {
		k.fullStreak = 0
	}
}

// Unregister drops a VM's regions from the scan list — what Linux does when
// a process with madvised VMAs exits — and purges the VM's volatility-gate,
// unstable-index and incremental-queue entries so no stale pointers to the
// dead process survive. The pass cursor is repaired in place: removing a
// region before the current one shifts the index down, removing the current
// one restarts at the region that slides into its slot. When the repair
// wraps past the shrunken list the pass IS complete — every surviving region
// was already scanned this pass — so endPass fires with its usual
// side effects (unstable-index drop, stale-stable and checksum pruning,
// FullScans accounting); earlier versions skipped it, silently stretching
// the pass and its generation bookkeeping across the wrap. Stable pages the
// VM mapped are left to refcounting: KillVM drops the mappings and the
// stale-stable prune collects nodes nobody maps anymore.
func (k *KSM) Unregister(vm *hypervisor.VMProcess) {
	kept := k.regions[:0]
	newIdx := k.regionIdx
	removed := false
	for i, reg := range k.regions {
		if reg.VM == vm {
			delete(k.regSet, reg)
			k.registeredPages -= int(reg.End - reg.Start)
			if reg.Start < reg.End {
				k.scannable--
			}
			if k.vmRegs[vm]--; k.vmRegs[vm] == 0 {
				delete(k.vmRegs, vm)
				for vi, v := range k.vms {
					if v == vm {
						k.vms = append(k.vms[:vi], k.vms[vi+1:]...)
						break
					}
				}
			}
			if i < k.regionIdx {
				newIdx--
			} else if i == k.regionIdx {
				k.cursor = 0
			}
			removed = true
			continue
		}
		kept = append(kept, reg)
	}
	k.regions = kept
	k.regionIdx = newIdx
	wrapped := false
	if k.regionIdx >= len(k.regions) {
		k.regionIdx = 0
		k.cursor = 0
		wrapped = true
	}
	if !removed {
		return
	}
	for key := range k.checksums {
		if key.vm == vm {
			delete(k.checksums, key)
		}
	}
	for _, s := range k.shards {
		for sum, bucket := range s.unstable {
			keptEnts := bucket[:0]
			for _, ent := range bucket {
				if ent.key.vm == vm {
					s.unstableN--
					continue
				}
				keptEnts = append(keptEnts, ent)
			}
			if len(keptEnts) == 0 {
				delete(s.unstable, sum)
			} else {
				s.unstable[sum] = keptEnts
			}
		}
	}
	delete(k.needFull, vm)
	if k.ringVM == vm {
		k.ringVM = nil
	}
	if len(k.incQueue) > 0 {
		keptQ := k.incQueue[:0]
		for _, r := range k.incQueue {
			if r.vm != vm {
				keptQ = append(keptQ, r)
			}
		}
		k.incQueue = keptQ
	}
	if len(k.incPending) > 0 {
		keptP := k.incPending[:0]
		for _, key := range k.incPending {
			if key.vm != vm {
				keptP = append(keptP, key)
			} else {
				delete(k.incPendingSet, key)
			}
		}
		k.incPending = keptP
	}
	// The VM's stable pages lose their mappers when KillVM runs; let the
	// next incremental round prune the tree (full passes always do).
	k.stableDirty = true
	if wrapped && !k.incremental {
		// The cursor was inside (or past) the removed trailing region, so
		// every surviving region has been fully scanned this pass: the pass
		// boundary that the wrap used to swallow. That holds for an emptied
		// scan list too — vacuously, all zero survivors were scanned — and
		// skipping endPass there (as an earlier version did) lost the
		// FullScans/streak accounting and the unstable-index drop exactly
		// when the last VM went away.
		k.endPass()
	}
}

// RegisterAll registers every VM currently on the host.
func (k *KSM) RegisterAll() {
	for _, vm := range k.host.VMs() {
		k.Register(vm)
	}
}

// Start schedules the scan loop on the host clock. The scanner keeps
// rescheduling itself until Stop is called.
func (k *KSM) Start() {
	if k.running {
		return
	}
	k.running = true
	k.started = k.host.Clock().Now()
	k.everStarted = true
	k.host.Clock().Every(simclock.Time(k.cfg.SleepMillis)*simclock.Millisecond, func(now simclock.Time) bool {
		if !k.running {
			return false
		}
		if now < k.stalledUntil {
			return true
		}
		k.ScanChunk(k.cfg.PagesToScan)
		return true
	})
}

// Stall suspends scanning for d of virtual time: wake-ups fire but do no
// work until the deadline passes. Overlapping stalls extend, not stack, and
// stallSched books only the extension so the scheduled stall time is never
// double-counted.
func (k *KSM) Stall(d simclock.Time) {
	now := k.host.Clock().Now()
	if until := now + d; until > k.stalledUntil {
		start := now
		if k.stalledUntil > start {
			start = k.stalledUntil
		}
		k.stallSched += until - start
		k.stalledUntil = until
	}
	k.stats.Stalls++
}

// Stop halts the scan loop after the current wake-up.
func (k *KSM) Stop() { k.running = false }

// Stats returns a snapshot of counters with the sharing totals recomputed
// from the stable tree.
func (k *KSM) Stats() Stats {
	s := k.stats
	s.PagesShared = 0
	s.PagesSharing = 0
	pm := k.host.Phys()
	for _, sh := range k.shards {
		sh.stable.walk(func(f mem.FrameID) {
			mappers := pm.RefCount(f) - 1 // one reference belongs to the tree
			if mappers <= 0 {
				return
			}
			s.PagesShared++
			s.PagesSharing += mappers
		})
	}
	s.SavedBytes = int64(s.PagesSharing-s.PagesShared) * int64(k.host.PageSize())
	// Elapsed stall time is the scheduled total minus whatever part of the
	// current window is still in the future.
	now := k.host.Clock().Now()
	stalled := k.stallSched
	if pending := k.stalledUntil - now; pending > 0 {
		stalled -= pending
	}
	s.StalledTime = stalled
	// A scanner that never started has no wall time; without this guard
	// CPUPercent would report a bogus duty cycle measured from clock epoch.
	if k.everStarted {
		s.CPUWall = now - k.started - stalled
		if s.CPUWall < 0 {
			s.CPUWall = 0
		}
	}
	return s
}

// ScanChunk examines up to n pages. In linear mode it advances the circular
// cursor over all registered regions; a full pass over every region ends the
// current unstable generation and prunes dead stable nodes. Empty regions
// (Start == End) are skipped: clamping the cursor into one would otherwise
// scan reg.End itself, a page KSM was never madvised about. In incremental
// mode the budget is spent on the dirty-ring rescan queue instead.
func (k *KSM) ScanChunk(n int) {
	if k.incremental {
		k.scanIncremental(n)
		return
	}
	k.scanLinear(n)
}

// scanLinear spends a wake-up's budget on the circular cursor. Pages are
// collected into batches and run through the (possibly sharded) merge
// pipeline; batches break at pass boundaries so endPass bookkeeping — the
// unstable-index drop, the prunes, the pass snapshot — lands between the
// scans exactly where the page-at-a-time scanner put it. One quirk is
// preserved deliberately: a pass boundary fires *before* the page whose
// consumption wrapped the cursor is scanned, so that page is processed after
// endPass, in linear semantics, even when endPass just switched the scanner
// to incremental mode (the remaining budget then belongs to the incremental
// queue starting next wake-up; unreachable with IncrementalScan off, so
// off-mode CPU accounting is unchanged).
func (k *KSM) scanLinear(n int) {
	if k.scannable == 0 {
		return
	}
	if k.regionIdx >= len(k.regions) {
		// Unreachable: Unregister repairs the cursor in place (and ends the
		// pass on a wrap). Kept as defense in depth.
		k.regionIdx = 0
		k.cursor = 0
	}
	scanned := 0
	// forceOne: an endPass fired out of the empty-region skip walk, before
	// its iteration's page was found; that page still scans before any mode
	// switch is honored, as in the page-at-a-time loop.
	forceOne := false
	for scanned < n {
		if k.incremental && !forceOne {
			break
		}
		budget := n - scanned
		if forceOne {
			budget = 1
			forceOne = false
		}
		cands, wrap, passEnd, resync := k.collectLinear(budget)
		k.processBatch(cands, false)
		scanned += len(cands)
		if passEnd {
			k.endPass()
			if wrap == nil && !resync {
				forceOne = true
			}
		}
		if wrap != nil {
			one := k.candBuf[:0]
			one = append(one, *wrap)
			k.processBatch(one, false)
			scanned++
		}
		if resync {
			// Every region was empty: the maintained count was stale
			// (possible only when the scan list is rewritten directly,
			// bypassing Register/Unregister). Resync happened in collect;
			// stop without charging, as the page-at-a-time loop did.
			return
		}
	}
	k.stats.CPUBusy += simclock.Time(int64(scanned) * int64(k.cfg.ScanCostNanos) / 1000)
}

// collectLinear consumes up to budget pages from the linear cursor in scan
// order, performing the walk's side effects (region advance, dirty-ring
// resets) as it goes. It stops early at a pass boundary: passEnd reports
// that endPass is due, and wrap — when non-nil — is the page consumed in the
// boundary iteration, to be scanned by the caller after endPass runs. A
// boundary hit inside the empty-region skip walk returns passEnd with a nil
// wrap (no page was consumed yet). resync reports the all-empty defense
// path; the scannable count has been zeroed.
func (k *KSM) collectLinear(budget int) (cands []candidate, wrap *candidate, passEnd, resync bool) {
	k.candBuf = k.candBuf[:0]
	for len(k.candBuf) < budget {
		skips := 0
		for k.regions[k.regionIdx].Start >= k.regions[k.regionIdx].End {
			skips++
			if skips >= len(k.regions) {
				k.scannable = 0
				return k.candBuf, nil, false, true
			}
			if k.advanceRegion() {
				return k.candBuf, nil, true, false
			}
		}
		reg := k.regions[k.regionIdx]
		if reg.VM != k.ringVM {
			// The linear cursor is entering this VM: everything its ring
			// holds is about to be visited anyway, so restart the cycle. At
			// the switch to incremental mode each ring then holds exactly
			// the writes since the full scan last reached the VM.
			k.ringVM = reg.VM
			dropped, overflowed := reg.VM.ResetDirtyLog()
			k.observeDrain(reg.VM, dropped, overflowed)
		}
		if k.cursor < reg.Start {
			k.cursor = reg.Start
		}
		vpn := k.cursor
		k.cursor++
		if k.cursor >= reg.End {
			if k.advanceRegion() {
				k.wrapCand = candidate{vm: reg.VM, vpn: vpn, shard: -1}
				return k.candBuf, &k.wrapCand, true, false
			}
		}
		k.candBuf = append(k.candBuf, candidate{vm: reg.VM, vpn: vpn, shard: -1})
	}
	return k.candBuf, nil, false, false
}

// scanIncremental spends one wake-up's budget on the rescan queue. A new
// round — dirty-ring drains plus the previous round's gate-skipped pages —
// is built only when the queue is empty, so a page deferred by the gate is
// never revisited within the same wake-up (the two sightings stay separated
// by at least a sleep interval, as in linear mode). CPU is charged for pages
// actually scanned: a converged cluster with empty rings costs nothing.
func (k *KSM) scanIncremental(n int) {
	if len(k.incQueue) == 0 {
		k.buildRound()
	}
	cands := k.candBuf[:0]
	for len(cands) < n && len(k.incQueue) > 0 {
		r := &k.incQueue[0]
		cands = append(cands, candidate{vm: r.vm, vpn: r.start, shard: -1})
		r.start++
		if r.start >= r.end {
			k.incQueue = k.incQueue[1:]
		}
	}
	if len(k.incQueue) == 0 {
		// Drop the drained round's backing array: the [1:] reslicing above
		// pins every consumed range (head included) until the array is
		// released, so a round that merely shrank the slice would hold the
		// whole round's memory across the converged idle phase.
		k.incQueue = nil
	}
	k.candBuf = cands
	if len(cands) == 0 {
		return
	}
	k.processBatch(cands, true)
	k.stats.CPUBusy += simclock.Time(int64(len(cands)) * int64(k.cfg.ScanCostNanos) / 1000)
}

// buildRound assembles the next incremental work queue: each VM's dirty ring
// is drained once (an overflowed or unvouched-for ring conservatively queues
// the VM's whole region), merged with the pages the volatility gate deferred
// last round. Housekeeping that a full pass used to do is event-gated here —
// the stale-stable prune runs only when sharing may have been lost, and the
// retained unstable index is compacted only when it outgrows the registered
// page count — so an idle round's cost is proportional to churn.
func (k *KSM) buildRound() {
	// Re-snapshot the per-pass baseline each round. endPass never runs again
	// once the scanner goes incremental, so without this the ksm.pass.*
	// gauges silently became cumulative-since-switch; a round is the
	// incremental analogue of a pass.
	k.passStart = k.stats
	if k.stableDirty {
		k.pruneStaleStable()
		k.stableDirty = false
	}
	if k.unstableTotal() > k.registeredPages {
		k.compactUnstable()
	}
	pending := k.incPending
	k.incPending = nil
	k.incPendingSet = nil
	pendByVM := make(map[*hypervisor.VMProcess][]mem.VPN, len(pending))
	for _, key := range pending {
		pendByVM[key.vm] = append(pendByVM[key.vm], key.vpn)
	}

	drained := make(map[*hypervisor.VMProcess][]mem.VPN, len(k.regions))
	full := make(map[*hypervisor.VMProcess]bool, len(k.regions))
	for _, reg := range k.regions {
		if _, done := full[reg.VM]; done {
			continue
		}
		pages, overflowed := reg.VM.DrainDirtyLog()
		k.observeDrain(reg.VM, len(pages), overflowed)
		if k.needFull[reg.VM] {
			overflowed = true
			delete(k.needFull, reg.VM)
		}
		drained[reg.VM] = pages
		full[reg.VM] = overflowed
	}
	for _, reg := range k.regions {
		if full[reg.VM] {
			if reg.Start < reg.End {
				k.incQueue = append(k.incQueue, incRange{vm: reg.VM, start: reg.Start, end: reg.End})
			}
			continue
		}
		k.queuePages(reg, drained[reg.VM], pendByVM[reg.VM])
	}
	if len(k.incQueue) > 0 {
		k.stats.IncrementalRounds++
	}
}

// queuePages sorts, dedups and coalesces the region's dirty plus deferred
// pages into ascending ranges on the rescan queue.
func (k *KSM) queuePages(reg hypervisor.MergeableRegion, lists ...[]mem.VPN) {
	var all []mem.VPN
	for _, list := range lists {
		for _, v := range list {
			if v >= reg.Start && v < reg.End {
				all = append(all, v)
			}
		}
	}
	if len(all) == 0 {
		return
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	start, prev := all[0], all[0]
	for _, v := range all[1:] {
		if v == prev || v == prev+1 {
			prev = v
			continue
		}
		k.incQueue = append(k.incQueue, incRange{vm: reg.VM, start: start, end: prev + 1})
		start, prev = v, v
	}
	k.incQueue = append(k.incQueue, incRange{vm: reg.VM, start: start, end: prev + 1})
}

// deferVolatile queues a gate-skipped page for the next round's revisit.
func (k *KSM) deferVolatile(key pageKey) {
	if k.incPendingSet == nil {
		k.incPendingSet = make(map[pageKey]struct{})
	}
	if _, dup := k.incPendingSet[key]; dup {
		return
	}
	k.incPendingSet[key] = struct{}{}
	k.incPending = append(k.incPending, key)
}

// observeDrain books one ring drain/reset: drain statistics, the overflow
// counter, and the VM's working-set estimate (an overflowed log is
// incomplete, so the conservative signal is the VM's full registered size).
func (k *KSM) observeDrain(vm *hypervisor.VMProcess, pages int, overflowed bool) {
	if !k.host.DirtyLogEnabled() {
		return
	}
	k.stats.DirtyDrained += uint64(pages)
	if overflowed {
		k.stats.RingOverflows++
		pages = 0
		for _, reg := range k.regions {
			if reg.VM == vm {
				pages += int(reg.End - reg.Start)
			}
		}
	}
	vm.ObserveDirtyDrain(pages)
}

// advanceRegion moves the cursor to the next region, reporting a wrap of the
// scan list — a completed pass. The caller runs endPass once any candidates
// collected before the boundary have been scanned.
func (k *KSM) advanceRegion() bool {
	k.regionIdx++
	k.cursor = 0
	if k.regionIdx >= len(k.regions) {
		k.regionIdx = 0
		return true
	}
	return false
}

// endPass finishes a full scan of all regions: stable nodes whose last
// mapper went away are pruned, and so are volatility-gate entries for pages
// that are no longer scan candidates — swapped out, unmapped, or merged into
// a stable page. Without that prune the checksum map grows with every page
// the scanner has ever visited instead of staying proportional to the
// resident set. The unstable index is dropped (as in Linux) — except when
// this pass completes the streak that switches the scanner to incremental
// mode, where the index survives as the partner directory for dirtied pages.
func (k *KSM) endPass() {
	k.stats.FullScans++
	k.fullStreak++
	k.ringVM = nil
	switching := k.cfg.IncrementalScan && k.host.DirtyLogEnabled() &&
		k.fullStreak >= fullPassesBeforeIncremental
	if switching {
		k.incremental = true
	} else {
		for _, s := range k.shards {
			s.unstable = make(map[uint64][]unstableEntry)
			s.unstableN = 0
		}
	}
	k.pruneStaleStable()
	pm := k.host.Phys()
	for key := range k.checksums {
		frame, resident := key.vm.ResolveResident(key.vpn)
		if !resident || pm.IsKSM(frame) {
			delete(k.checksums, key)
		}
	}
	k.stableDirty = false
	k.passStart = k.stats
}

// pruneStaleStable drops stable nodes nobody maps anymore (only the tree's
// own reference is left). Full passes run it unconditionally; incremental
// rounds only when stableDirty says sharing may have been lost. Frames are
// freed in global content-key order — the frame-free order feeds the
// allocator's free stack, so it must not depend on the shard count — but only
// the frames actually freed need that order, so the stale candidates are
// collected first (per-shard in-order walks) and only they are merged into
// content order. A pass with nothing to prune therefore costs one refcount
// check per stable node regardless of the shard count, instead of the
// O(nodes × shards) cross-shard merge an ordered full iteration would pay.
func (k *KSM) pruneStaleStable() {
	pm := k.host.Phys()
	var stale []mem.FrameID
	for _, s := range k.shards {
		s.stable.walk(func(f mem.FrameID) {
			if pm.RefCount(f) == 1 { // only the tree holds it
				stale = append(stale, f)
			}
		})
	}
	if len(stale) == 0 {
		return
	}
	if len(k.shards) > 1 {
		// Per-shard walks are each in content order already; a single-shard
		// walk needs no sort at all (matching the seed scanner's cost). Equal
		// content cannot appear twice in the trees, so the order is total.
		sort.Slice(stale, func(i, j int) bool { return pm.Compare(stale[i], stale[j]) < 0 })
	}
	for _, f := range stale {
		k.removeStable(f)
		pm.SetKSM(f, false)
		pm.DecRef(f)
		k.stats.StalePruned++
	}
}

// compactUnstable drops unstable entries that can no longer merge — the page
// went away, was merged elsewhere, or was rewritten since it was recorded.
// The retained index of incremental mode has no end-of-pass drop, so this
// bounds it by the registered page count instead.
func (k *KSM) compactUnstable() {
	pm := k.host.Phys()
	for _, s := range k.shards {
		for sum, bucket := range s.unstable {
			kept := bucket[:0]
			for _, ent := range bucket {
				pte, ok := ent.key.vm.ResidentPTE(ent.key.vpn)
				if !ok || pm.IsKSM(pte.Frame) || pm.Checksum(pte.Frame) != ent.checksum {
					s.unstableN--
					continue
				}
				kept = append(kept, ent)
			}
			if len(kept) == 0 {
				delete(s.unstable, sum)
			} else {
				s.unstable[sum] = kept
			}
		}
	}
}

// scanPage runs the merge pipeline on one candidate page. It reports whether
// the volatility gate skipped the page (it was seen changing), which
// incremental mode uses to schedule the revisit that a linear pass would get
// for free; callers in linear mode ignore the result.
func (k *KSM) scanPage(vm *hypervisor.VMProcess, vpn mem.VPN) bool {
	pm := k.host.Phys()
	pte, ok := vm.ResidentPTE(vpn)
	if !ok {
		k.stats.NotResident++
		return false
	}
	frame := pte.Frame
	if pm.IsKSM(frame) {
		k.stats.AlreadyShared++
		return false
	}
	if pte.Huge {
		return k.scanHugePage(vm, vpn, frame)
	}

	key := pageKey{vm: vm, vpn: vpn}
	sum := pm.Checksum(frame)
	sh := k.shardOf(sum)
	sh.scanned++
	if k.cfg.ChecksumGate {
		last, seen := k.checksums[key]
		k.checksums[key] = sum
		if !seen || last != sum {
			k.stats.ChecksumSkips++
			return true
		}
	}

	// Stable tree first. Byte-identical content has an identical checksum,
	// so any stable frame matching this page lives in this shard's tree.
	if stableFrame, hit := sh.stable.lookup(frame); hit {
		pm.IncRef(stableFrame)
		vm.RemapShared(vpn, stableFrame)
		k.stats.StableMerges++
		return false
	}

	// Unstable index.
	bucket := sh.unstable[sum]
	selfSeen := false
	for bi, ent := range bucket {
		if ent.key == key {
			// The retained index of incremental mode can already hold this
			// page from an earlier round (a linear pass drops the index
			// before a page is ever revisited, so this never fires there).
			selfSeen = true
			continue
		}
		otherPTE, ok := ent.key.vm.ResidentPTE(ent.key.vpn)
		if !ok {
			continue
		}
		otherFrame := otherPTE.Frame
		if pm.IsKSM(otherFrame) || pm.Checksum(otherFrame) != ent.checksum {
			// Stale: page went away, was merged via another path, or was
			// rewritten since we recorded it.
			continue
		}
		if !k.cfg.HashOnly && !pm.Equal(frame, otherFrame) {
			k.stats.HashRejects++
			continue
		}
		if otherPTE.Huge {
			// The partner was collapsed into a huge mapping after we
			// recorded it. Under the split policies the verified duplicate
			// justifies recovering the subpage — carving just it out
			// (PartialSplitHuge) or dissolving the whole huge page
			// (SplitHugePages); otherwise THP wins and the merge is
			// forgone.
			if !k.splitHugeFor(ent.key.vm, ent.key.vpn) {
				continue
			}
		}
		// Promote the partner to a stable page and remap the candidate.
		pm.SetKSM(otherFrame, true)
		ent.key.vm.WriteProtect(ent.key.vpn)
		pm.IncRef(otherFrame) // tree reference
		sh.stable.insert(otherFrame)

		pm.IncRef(otherFrame)
		vm.RemapShared(vpn, otherFrame)
		k.stats.UnstableMerges++

		// Drop the promoted entry from the bucket.
		bucket = append(bucket[:bi], bucket[bi+1:]...)
		sh.unstable[sum] = bucket
		sh.unstableN--
		return false
	}
	if !selfSeen {
		sh.unstable[sum] = append(bucket, unstableEntry{key: key, checksum: sum})
		sh.unstableN++
	}
	return false
}

// hugeSplitting reports whether the scanner is allowed to break huge
// mappings at all (either split policy).
func (k *KSM) hugeSplitting() bool {
	return k.cfg.SplitHugePages || k.cfg.PartialSplitHuge
}

// splitHugeFor recovers the verified-duplicate subpage at vpn from the huge
// mapping covering it, honoring the configured split policy: a partial
// carve of just that subpage, or a whole-block split. Reports false when
// the policy leaves the mapping intact (splitting off, or a partial split
// aimed at the uncarvable head subpage) — the caller forgoes the merge.
func (k *KSM) splitHugeFor(vm *hypervisor.VMProcess, vpn mem.VPN) bool {
	head := mem.HugeAlign(vpn)
	if k.cfg.PartialSplitHuge {
		if vpn == head {
			k.stats.HugeSkips++
			return false
		}
		vm.SplitHugeSubpages(head, []mem.VPN{vpn})
		k.stats.HugePartialSplits++
		return true
	}
	if !k.cfg.SplitHugePages {
		k.stats.HugeSkips++
		return false
	}
	vm.SplitHuge(head)
	k.stats.HugeSplits++
	return true
}

// scanHugePage handles a candidate covered by a transparent huge mapping.
// Without a split policy the page is simply skipped (THP hides it from
// merging). With one, the scanner checks whether the subpage's content
// duplicates a stable page or a still-valid unstable candidate; a verified
// duplicate splits the subpage (or the whole mapping, depending on policy)
// and re-enters the normal merge pipeline immediately. Like scanPage it
// reports a volatility-gate skip.
func (k *KSM) scanHugePage(vm *hypervisor.VMProcess, vpn mem.VPN, frame mem.FrameID) bool {
	if !k.hugeSplitting() {
		k.stats.HugeSkips++
		return false
	}
	pm := k.host.Phys()
	sum := pm.Checksum(frame)
	sh := k.shardOf(sum)
	sh.scanned++
	if k.cfg.ChecksumGate {
		// Same volatility gate as base pages: splitting a huge page for a
		// still-changing subpage would only trade TLB reach for a merge that
		// breaks right back.
		key := pageKey{vm: vm, vpn: vpn}
		last, seen := k.checksums[key]
		k.checksums[key] = sum
		if !seen || last != sum {
			k.stats.ChecksumSkips++
			return true
		}
	}
	key := pageKey{vm: vm, vpn: vpn}
	dup := false
	selfSeen := false
	if _, hit := sh.stable.lookup(frame); hit {
		dup = true
	} else {
		for _, ent := range sh.unstable[sum] {
			if ent.key == key {
				// Retained-index revisit, as in scanPage.
				selfSeen = true
				continue
			}
			otherFrame, ok := ent.key.vm.ResolveResident(ent.key.vpn)
			if !ok || pm.IsKSM(otherFrame) || pm.Checksum(otherFrame) != ent.checksum {
				// Stale, exactly as in scanPage — and the IsKSM test matters
				// just as much here: a partner already promoted to the stable
				// tree can still checksum-match through its old index entry,
				// and without the test it validated a dup verdict (splitting
				// a huge page) that the stable lookup above had already
				// rejected on content.
				continue
			}
			if k.cfg.HashOnly || pm.Equal(frame, otherFrame) {
				dup = true
				break
			}
		}
	}
	if !dup {
		// No known duplicate yet — record the page as an unstable candidate
		// anyway. Duplicates that are huge-mapped in *every* VM could never
		// find each other otherwise; when a later scan matches this entry,
		// both sides are split and merged (the partner-huge path in
		// scanPage).
		if !selfSeen {
			sh.unstable[sum] = append(sh.unstable[sum], unstableEntry{key: key, checksum: sum})
			sh.unstableN++
		}
		return false
	}
	if !k.splitHugeFor(vm, vpn) {
		// Partial policy, uncarvable head subpage: the merge is forgone.
		return false
	}
	// The page is base-grained now; rescan so the duplicate merges in
	// this same visit (the gate entry written above lets it through).
	return k.scanPage(vm, vpn)
}

// Instrument registers the scanner's telemetry gauges on the registry.
// Cumulative counters come straight from the stats block; "ksm.pass.*"
// gauges report activity within the current pass (counter minus the
// end-of-last-pass snapshot), so a timeline shows per-pass effort even
// after the cumulative totals dwarf it. The sharing totals need a stable
// treap walk, so they share one Stats snapshot per sample timestamp.
// A nil registry is a no-op, matching the rest of the metrics API.
func (k *KSM) Instrument(r *metrics.Registry) {
	if r == nil {
		return
	}
	var (
		snapAt    simclock.Time = -1
		snapStats Stats
	)
	snapshot := func() Stats {
		if now := k.host.Clock().Now(); now != snapAt {
			snapAt = now
			snapStats = k.Stats()
		}
		return snapStats
	}
	r.Gauge("ksm.pages_scanned", func() float64 { return float64(k.stats.PagesScanned) })
	r.Gauge("ksm.pages_merged", func() float64 {
		return float64(k.stats.StableMerges + k.stats.UnstableMerges)
	})
	r.Gauge("ksm.pages_unmerged", func() float64 { return float64(k.stats.COWBreaks) })
	r.Gauge("ksm.pages_volatile", func() float64 { return float64(k.stats.ChecksumSkips) })
	r.Gauge("ksm.full_scans", func() float64 { return float64(k.stats.FullScans) })
	r.Gauge("ksm.stable_tree_size", func() float64 { return float64(k.stableSize()) })
	r.Gauge("ksm.unstable_entries", func() float64 { return float64(k.unstableTotal()) })
	r.Gauge("ksm.pages_shared", func() float64 { return float64(snapshot().PagesShared) })
	r.Gauge("ksm.pages_sharing", func() float64 { return float64(snapshot().PagesSharing) })
	r.Gauge("ksm.saved_bytes", func() float64 { return float64(snapshot().SavedBytes) })
	r.Gauge("ksm.pass.pages_scanned", func() float64 {
		return float64(k.stats.PagesScanned - k.passStart.PagesScanned)
	})
	r.Gauge("ksm.pass.pages_merged", func() float64 {
		return float64(k.stats.StableMerges + k.stats.UnstableMerges -
			k.passStart.StableMerges - k.passStart.UnstableMerges)
	})
	r.Gauge("ksm.pass.pages_volatile", func() float64 {
		return float64(k.stats.ChecksumSkips - k.passStart.ChecksumSkips)
	})
	r.Gauge("ksm.huge_skips", func() float64 { return float64(k.stats.HugeSkips) })
	r.Gauge("ksm.huge_splits", func() float64 { return float64(k.stats.HugeSplits) })
	r.Gauge("ksm.huge_partial_splits", func() float64 { return float64(k.stats.HugePartialSplits) })
	r.Gauge("ksm.pass.sharing_lost_pages", func() float64 {
		return float64(k.stats.HugeSkips - k.passStart.HugeSkips)
	})
	r.Gauge("ksm.dirty_ring_depth", func() float64 { return float64(k.DirtyRingDepth()) })
	if len(k.shards) > 1 {
		for i, s := range k.shards {
			s := s
			r.Gauge(fmt.Sprintf("ksm.shard%d.pages_scanned", i), func() float64 { return float64(s.scanned) })
			r.Gauge(fmt.Sprintf("ksm.shard%d.stable_tree_size", i), func() float64 { return float64(s.stable.size) })
			r.Gauge(fmt.Sprintf("ksm.shard%d.unstable_entries", i), func() float64 { return float64(s.unstableN) })
		}
	}
	r.Gauge("ksm.dirty_ring_overflows", func() float64 { return float64(k.stats.RingOverflows) })
	r.Gauge("ksm.dirty_drained", func() float64 { return float64(k.stats.DirtyDrained) })
	r.Gauge("ksm.pages_scanned_incremental", func() float64 {
		return float64(k.stats.IncrementalScanned)
	})
	r.Gauge("ksm.pages_scanned_full", func() float64 {
		return float64(k.stats.PagesScanned - k.stats.IncrementalScanned)
	})
	r.Gauge("ksm.incremental_rounds", func() float64 { return float64(k.stats.IncrementalRounds) })
}

// onCOWBreak keeps break statistics; frame lifecycle is handled by refcounts
// and the stale-stable prune (end of pass, or the next incremental round —
// a break on a KSM frame may have orphaned it, so the round must look).
func (k *KSM) onCOWBreak(_ *hypervisor.VMProcess, _ mem.VPN, old mem.FrameID) {
	if k.host.Phys().IsKSM(old) {
		k.stats.COWBreaks++
		k.stableDirty = true
	}
}

// DirtyRingDepth sums the registered VMs' dirty-ring depths. It walks the
// maintained unique-VM list, so a metrics sample allocates nothing (an
// earlier version rebuilt a per-VM dedup map over the region list on every
// sample).
func (k *KSM) DirtyRingDepth() int {
	depth := 0
	for _, vm := range k.vms {
		depth += vm.DirtyLogDepth()
	}
	return depth
}

// ShardPagesScanned reports each shard's routed-candidate count — pages
// whose checksum reached the merge pipeline — in shard order. The split is
// deterministic at every batch size and worker interleaving (routing is a
// pure function of content).
func (k *KSM) ShardPagesScanned() []uint64 {
	out := make([]uint64, len(k.shards))
	for i, s := range k.shards {
		out[i] = s.scanned
	}
	return out
}

// StableFrames exposes the stable tree contents in global content-key order
// (for the analyzer and tests).
func (k *KSM) StableFrames() []mem.FrameID { return k.stableFramesOrdered() }

// Unmerge undoes all sharing, like writing 2 to /sys/kernel/mm/ksm/run:
// every mapping of a stable page gets its own private copy again, and the
// stable tree is pruned. Memory usage jumps back to the unshared level.
func (k *KSM) Unmerge() {
	pm := k.host.Phys()
	for _, reg := range k.regions {
		for vpn := reg.Start; vpn < reg.End; vpn++ {
			f, ok := reg.VM.ResolveResident(vpn)
			if !ok || !pm.IsKSM(f) {
				continue
			}
			// A write access breaks the COW sharing; the touch path copies
			// the stable content into a private frame.
			reg.VM.TouchGuestPage(uint64(vpn-reg.Start), true)
		}
	}
	// All stable frames are now referenced only by the trees. Free them in
	// content-key order, as the prune does, so the free stack is the same at
	// every shard count.
	for _, f := range k.stableFramesOrdered() {
		k.removeStable(f)
		pm.SetKSM(f, false)
		pm.DecRef(f)
		k.stats.StalePruned++
	}
	for _, s := range k.shards {
		s.unstable = make(map[uint64][]unstableEntry)
		s.unstableN = 0
	}
	k.checksums = make(map[pageKey]uint64)
	// Unmerging invalidates everything incremental mode assumed converged:
	// fall back to linear scanning and earn the switch again.
	k.incremental = false
	k.fullStreak = 0
	k.incQueue = nil
	k.incPending = nil
	k.incPendingSet = nil
	k.needFull = make(map[*hypervisor.VMProcess]bool)
	k.ringVM = nil
	k.stableDirty = false
}
