package ksm

import (
	"testing"

	"repro/internal/hypervisor"
	"repro/internal/mem"
	"repro/internal/simclock"
)

func TestRegisterManyVMsNoDuplicates(t *testing.T) {
	// Registration must stay set-backed: the old linear duplicate scan made
	// this quadratic in the region count and a few hundred guests crawled.
	f := newFixture(t, 4096, 300, 2, DefaultConfig())
	// Re-registering everything must be a no-op...
	f.k.RegisterAll()
	for _, vm := range f.vms {
		f.k.Register(vm)
	}
	// ...which a single full pass proves: if any region were listed twice,
	// the fixture's pages-per-pass budget would cover only half a real pass.
	f.scanPasses(1)
	if got := f.k.Stats().FullScans; got != 1 {
		t.Fatalf("FullScans = %d after one pass budget, want 1 (duplicate regions?)", got)
	}
}

func TestUnregisterStopsScanningVM(t *testing.T) {
	f := newFixture(t, 512, 3, 16, DefaultConfig())
	f.scanPasses(1)
	before := f.k.Stats().PagesScanned
	f.k.Unregister(f.vms[2])
	f.k.ScanChunk(2*16 + 1) // two remaining VMs' pages = one full pass
	st := f.k.Stats()
	if st.FullScans != 2 {
		t.Fatalf("FullScans = %d, want 2 (pass length did not shrink)", st.FullScans)
	}
	if scanned := st.PagesScanned - before; scanned > 2*16+1 {
		t.Fatalf("scanned %d pages after unregister, want <= %d", scanned, 2*16+1)
	}
}

func TestUnregisterMidPassKeepsCursorSane(t *testing.T) {
	f := newFixture(t, 512, 3, 16, DefaultConfig())
	for i := uint64(0); i < 8; i++ {
		f.vms[0].FillGuestPage(i, mem.Seed(1000+i))
		f.vms[1].FillGuestPage(i, mem.Seed(1000+i))
		f.vms[2].FillGuestPage(i, mem.Seed(1000+i))
	}
	// Park the cursor inside the second VM's region, then drop that VM both
	// ways: once as the current region, once as an earlier one.
	f.k.ScanChunk(16 + 4)
	f.k.Unregister(f.vms[1])
	f.host.KillVM(f.vms[1])
	f.k.ScanChunk(4) // cursor now past vms[1]'s old slot
	f.k.Unregister(f.vms[0])
	f.host.KillVM(f.vms[0])
	f.vms = f.vms[2:]
	f.scanPasses(4)
	st := f.k.Stats()
	if st.FullScans == 0 {
		t.Fatal("scanner never completed a pass after mid-pass unregisters")
	}
	// Only vms[2] is left: nothing to share with, so the prune must have
	// collected every stable page and the host must balance exactly.
	if st.PagesShared != 0 {
		t.Fatalf("PagesShared = %d with a single VM left", st.PagesShared)
	}
	if err := f.host.CheckLeaks(f.k.StableFrames()); err != nil {
		t.Fatalf("leak check after unregister+kill: %v", err)
	}
	f.checkInvariants(t)
}

func TestUnregisterUnknownVMIsNoOp(t *testing.T) {
	f := newFixture(t, 512, 2, 16, DefaultConfig())
	other := f.host.NewVM(hypervisor.VMConfig{Name: "never-registered", GuestMemBytes: 16 * pg, Seed: 9})
	f.k.Unregister(other) // must not disturb the scan list
	f.scanPasses(1)
	if got := f.k.Stats().FullScans; got != 1 {
		t.Fatalf("FullScans = %d, want 1", got)
	}
}

func TestCPUWallZeroBeforeStart(t *testing.T) {
	f := newFixture(t, 512, 2, 16, DefaultConfig())
	// Scan synchronously without ever starting the daemon, with the clock
	// parked past zero: a never-started scanner has no wall time.
	f.clock.RunFor(5 * simclock.Second)
	f.scanPasses(2)
	st := f.k.Stats()
	if st.CPUWall != 0 {
		t.Fatalf("CPUWall = %v for a never-started scanner, want 0", st.CPUWall)
	}
	if st.CPUPercent() != 0 {
		t.Fatalf("CPUPercent = %v for a never-started scanner, want 0", st.CPUPercent())
	}
	f.k.Start()
	f.clock.RunFor(3 * simclock.Second)
	if st := f.k.Stats(); st.CPUWall != 3*simclock.Second {
		t.Fatalf("CPUWall = %v after 3s running, want 3s", st.CPUWall)
	}
}

func TestStallSuspendsScanning(t *testing.T) {
	f := newFixture(t, 512, 2, 16, DefaultConfig())
	f.k.Start()
	f.k.Stall(10 * simclock.Second)
	f.clock.RunFor(5 * simclock.Second)
	st := f.k.Stats()
	if st.PagesScanned != 0 {
		t.Fatalf("scanned %d pages while stalled", st.PagesScanned)
	}
	if st.Stalls != 1 {
		t.Fatalf("Stalls = %d, want 1", st.Stalls)
	}
	// Overlapping stalls extend rather than stack: 5s in, another 2s stall
	// ends before the first one's deadline and must not shorten it.
	f.k.Stall(2 * simclock.Second)
	f.clock.RunFor(4 * simclock.Second)
	if st := f.k.Stats(); st.PagesScanned != 0 {
		t.Fatalf("scanned %d pages inside the extended stall window", st.PagesScanned)
	}
	f.clock.RunFor(5 * simclock.Second)
	if st := f.k.Stats(); st.PagesScanned == 0 {
		t.Fatal("scanner never resumed after the stall expired")
	}
}
