package ksm

import (
	"bytes"
	"testing"

	"repro/internal/mem"
)

const hp = mem.HugePages

// hugeFixture builds two VMs whose first aligned run holds identical
// content, collapsed into a huge mapping on each side.
func hugeFixture(t *testing.T, cfg Config) *fixture {
	t.Helper()
	f := newFixture(t, 6*hp, 2, 2*hp, cfg)
	for _, vm := range f.vms {
		for i := uint64(0); i < hp; i++ {
			vm.FillGuestPage(i, mem.Seed(4000+i))
		}
		if got := vm.CollapseHuge(vm.MemslotBase(), 0); got.String() != "ok" {
			t.Fatalf("setup collapse: %v", got)
		}
	}
	return f
}

func TestKSMSkipsHugePagesByDefault(t *testing.T) {
	f := hugeFixture(t, DefaultConfig())
	f.scanPasses(4)
	s := f.k.Stats()
	if s.PagesShared != 0 || s.PagesSharing != 0 {
		t.Fatalf("KSM merged inside huge mappings: shared=%d sharing=%d", s.PagesShared, s.PagesSharing)
	}
	if s.HugeSkips == 0 {
		t.Fatal("no huge skips counted")
	}
	if s.HugeSplits != 0 {
		t.Fatalf("splits in skip mode: %d", s.HugeSplits)
	}
	for _, vm := range f.vms {
		if vm.HugeMappings() != 1 {
			t.Fatal("huge mapping broken in skip mode")
		}
	}
}

func TestKSMSplitModeRecoversSharing(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SplitHugePages = true
	f := hugeFixture(t, cfg)
	f.scanPasses(5)
	s := f.k.Stats()
	if s.HugeSplits == 0 {
		t.Fatal("split mode never split")
	}
	if s.PagesShared != hp || s.PagesSharing != 2*hp {
		t.Fatalf("sharing after splits: shared=%d sharing=%d, want %d/%d",
			s.PagesShared, s.PagesSharing, hp, 2*hp)
	}
	for _, vm := range f.vms {
		if vm.HugeMappings() != 0 {
			t.Fatal("huge mapping survived split mode over duplicates")
		}
	}
	// Merged content intact on both sides.
	for _, vm := range f.vms {
		for _, i := range []uint64{0, 17, hp - 1} {
			want := mem.FillBytes(pg, mem.Seed(4000+i))
			if !bytes.Equal(vm.ReadGuestPage(i), want) {
				t.Fatalf("content of page %d lost across split+merge", i)
			}
		}
	}
}

func TestKSMSplitModeLeavesUniqueHugePagesAlone(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SplitHugePages = true
	// Two VMs with *different* content in their collapsed runs: nothing to
	// merge, so nothing may be split.
	f := newFixture(t, 6*hp, 2, 2*hp, cfg)
	for vi, vm := range f.vms {
		for i := uint64(0); i < hp; i++ {
			vm.FillGuestPage(i, mem.Combine(mem.Seed(vi+1), mem.Seed(i)))
		}
		if got := vm.CollapseHuge(vm.MemslotBase(), 0); got.String() != "ok" {
			t.Fatalf("setup collapse: %v", got)
		}
	}
	f.scanPasses(5)
	s := f.k.Stats()
	if s.HugeSplits != 0 {
		t.Fatalf("split %d unique huge pages", s.HugeSplits)
	}
	for _, vm := range f.vms {
		if vm.HugeMappings() != 1 {
			t.Fatal("unique huge mapping lost")
		}
	}
}

func TestKSMSplitsHugeSideToMergeWithBasePages(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SplitHugePages = true
	f := newFixture(t, 6*hp, 2, 2*hp, cfg)
	// Same content in both VMs, but only VM 2's run is collapsed.
	for _, vm := range f.vms {
		for i := uint64(0); i < hp; i++ {
			vm.FillGuestPage(i, mem.Seed(4000+i))
		}
	}
	if got := f.vms[1].CollapseHuge(f.vms[1].MemslotBase(), 0); got.String() != "ok" {
		t.Fatalf("setup collapse: %v", got)
	}
	f.scanPasses(5)
	s := f.k.Stats()
	if s.HugeSplits == 0 {
		t.Fatal("huge side never split to meet its base-page duplicate")
	}
	if s.PagesShared != hp || s.PagesSharing != 2*hp {
		t.Fatalf("sharing: shared=%d sharing=%d, want %d/%d",
			s.PagesShared, s.PagesSharing, hp, 2*hp)
	}
}
