package ksm

import "repro/internal/mem"

// stableTreap is an ordered tree over KSM stable frames keyed by
// lexicographic page content. Stable frames are write-protected, so — unlike
// the unstable index — their keys can never drift and the tree stays
// consistent. A treap keeps the structure balanced in expectation with
// deterministic pseudo-random priorities, so runs remain reproducible.
type stableTreap struct {
	pm    *mem.PhysMem
	root  *treapNode
	size  int
	prSrc mem.Seed
}

type treapNode struct {
	frame       mem.FrameID
	prio        uint64
	left, right *treapNode
}

// newStableTreap creates a shard's tree. Shard 0 keeps the historical
// priority seed so a single-shard scanner's tree is bit-for-bit the one the
// unsharded scanner built; higher shards salt it so their priority streams
// are independent.
func newStableTreap(pm *mem.PhysMem, shard int) *stableTreap {
	seed := mem.HashString("ksm-stable-treap")
	if shard > 0 {
		seed = mem.Combine(seed, mem.Seed(shard))
	}
	return &stableTreap{pm: pm, prSrc: seed}
}

func (t *stableTreap) nextPrio() uint64 {
	t.prSrc = mem.Mix(t.prSrc)
	return uint64(t.prSrc)
}

// lookup finds a stable frame with content byte-identical to probe.
func (t *stableTreap) lookup(probe mem.FrameID) (mem.FrameID, bool) {
	return t.lookupWith(probe, t.pm.Compare)
}

// lookupWith is lookup with a caller-supplied comparator: shard workers pass
// an mem.ROView comparator so concurrent lookups never touch pool state.
func (t *stableTreap) lookupWith(probe mem.FrameID, cmp func(a, b mem.FrameID) int) (mem.FrameID, bool) {
	n := t.root
	for n != nil {
		switch c := cmp(probe, n.frame); {
		case c == 0:
			return n.frame, true
		case c < 0:
			n = n.left
		default:
			n = n.right
		}
	}
	return mem.NilFrame, false
}

// insert adds a stable frame. Content must not already be present; the
// caller looks up first.
func (t *stableTreap) insert(frame mem.FrameID) {
	t.insertWith(frame, t.pm.Compare)
}

// insertWith is insert with a caller-supplied comparator (see lookupWith).
func (t *stableTreap) insertWith(frame mem.FrameID, cmp func(a, b mem.FrameID) int) {
	t.root = t.insertAt(t.root, &treapNode{frame: frame, prio: t.nextPrio()}, cmp)
	t.size++
}

func (t *stableTreap) insertAt(n, nn *treapNode, cmp func(a, b mem.FrameID) int) *treapNode {
	if n == nil {
		return nn
	}
	if cmp(nn.frame, n.frame) < 0 {
		n.left = t.insertAt(n.left, nn, cmp)
		if n.left.prio > n.prio {
			n = rotateRight(n)
		}
	} else {
		n.right = t.insertAt(n.right, nn, cmp)
		if n.right.prio > n.prio {
			n = rotateLeft(n)
		}
	}
	return n
}

// remove deletes the node holding exactly this frame id.
func (t *stableTreap) remove(frame mem.FrameID) bool {
	removed := false
	t.root = t.removeAt(t.root, frame, &removed)
	if removed {
		t.size--
	}
	return removed
}

func (t *stableTreap) removeAt(n *treapNode, frame mem.FrameID, removed *bool) *treapNode {
	if n == nil {
		return nil
	}
	c := t.pm.Compare(frame, n.frame)
	switch {
	case c == 0 && n.frame == frame:
		*removed = true
		return mergeDown(n)
	case c == 0:
		// Identical content in a different frame should not exist in the
		// stable tree, but be defensive: check both subtrees.
		n.left = t.removeAt(n.left, frame, removed)
		if !*removed {
			n.right = t.removeAt(n.right, frame, removed)
		}
	case c < 0:
		n.left = t.removeAt(n.left, frame, removed)
	default:
		n.right = t.removeAt(n.right, frame, removed)
	}
	return n
}

// mergeDown removes the root of a subtree by rotating it to a leaf.
func mergeDown(n *treapNode) *treapNode {
	for {
		switch {
		case n.left == nil && n.right == nil:
			return nil
		case n.left == nil:
			return n.right
		case n.right == nil:
			return n.left
		case n.left.prio > n.right.prio:
			n = rotateRight(n)
			n.right = mergeDown(n.right)
			return n
		default:
			n = rotateLeft(n)
			n.left = mergeDown(n.left)
			return n
		}
	}
}

func rotateRight(n *treapNode) *treapNode {
	l := n.left
	n.left = l.right
	l.right = n
	return l
}

func rotateLeft(n *treapNode) *treapNode {
	r := n.right
	n.right = r.left
	r.left = n
	return r
}

// walk visits every stable frame in key order.
func (t *stableTreap) walk(fn func(frame mem.FrameID)) {
	var rec func(n *treapNode)
	rec = func(n *treapNode) {
		if n == nil {
			return
		}
		rec(n.left)
		fn(n.frame)
		rec(n.right)
	}
	rec(t.root)
}

// frames returns all stable frames in key order.
func (t *stableTreap) frames() []mem.FrameID {
	out := make([]mem.FrameID, 0, t.size)
	t.walk(func(f mem.FrameID) { out = append(out, f) })
	return out
}
