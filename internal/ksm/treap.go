package ksm

import "repro/internal/mem"

// stableTreap is an ordered tree over KSM stable frames keyed by
// lexicographic page content. Stable frames are write-protected, so — unlike
// the unstable index — their keys can never drift and the tree stays
// consistent. A treap keeps the structure balanced in expectation with
// deterministic pseudo-random priorities, so runs remain reproducible.
type stableTreap struct {
	pm    *mem.PhysMem
	root  *treapNode
	size  int
	prSrc mem.Seed
}

type treapNode struct {
	frame       mem.FrameID
	prio        uint64
	left, right *treapNode
}

func newStableTreap(pm *mem.PhysMem) *stableTreap {
	return &stableTreap{pm: pm, prSrc: mem.HashString("ksm-stable-treap")}
}

func (t *stableTreap) nextPrio() uint64 {
	t.prSrc = mem.Mix(t.prSrc)
	return uint64(t.prSrc)
}

// lookup finds a stable frame with content byte-identical to probe.
func (t *stableTreap) lookup(probe mem.FrameID) (mem.FrameID, bool) {
	n := t.root
	for n != nil {
		switch c := t.pm.Compare(probe, n.frame); {
		case c == 0:
			return n.frame, true
		case c < 0:
			n = n.left
		default:
			n = n.right
		}
	}
	return mem.NilFrame, false
}

// insert adds a stable frame. Content must not already be present; the
// caller looks up first.
func (t *stableTreap) insert(frame mem.FrameID) {
	t.root = t.insertAt(t.root, &treapNode{frame: frame, prio: t.nextPrio()})
	t.size++
}

func (t *stableTreap) insertAt(n, nn *treapNode) *treapNode {
	if n == nil {
		return nn
	}
	if t.pm.Compare(nn.frame, n.frame) < 0 {
		n.left = t.insertAt(n.left, nn)
		if n.left.prio > n.prio {
			n = rotateRight(n)
		}
	} else {
		n.right = t.insertAt(n.right, nn)
		if n.right.prio > n.prio {
			n = rotateLeft(n)
		}
	}
	return n
}

// remove deletes the node holding exactly this frame id.
func (t *stableTreap) remove(frame mem.FrameID) bool {
	removed := false
	t.root = t.removeAt(t.root, frame, &removed)
	if removed {
		t.size--
	}
	return removed
}

func (t *stableTreap) removeAt(n *treapNode, frame mem.FrameID, removed *bool) *treapNode {
	if n == nil {
		return nil
	}
	c := t.pm.Compare(frame, n.frame)
	switch {
	case c == 0 && n.frame == frame:
		*removed = true
		return mergeDown(n)
	case c == 0:
		// Identical content in a different frame should not exist in the
		// stable tree, but be defensive: check both subtrees.
		n.left = t.removeAt(n.left, frame, removed)
		if !*removed {
			n.right = t.removeAt(n.right, frame, removed)
		}
	case c < 0:
		n.left = t.removeAt(n.left, frame, removed)
	default:
		n.right = t.removeAt(n.right, frame, removed)
	}
	return n
}

// mergeDown removes the root of a subtree by rotating it to a leaf.
func mergeDown(n *treapNode) *treapNode {
	for {
		switch {
		case n.left == nil && n.right == nil:
			return nil
		case n.left == nil:
			return n.right
		case n.right == nil:
			return n.left
		case n.left.prio > n.right.prio:
			n = rotateRight(n)
			n.right = mergeDown(n.right)
			return n
		default:
			n = rotateLeft(n)
			n.left = mergeDown(n.left)
			return n
		}
	}
}

func rotateRight(n *treapNode) *treapNode {
	l := n.left
	n.left = l.right
	l.right = n
	return l
}

func rotateLeft(n *treapNode) *treapNode {
	r := n.right
	n.right = r.left
	r.left = n
	return r
}

// walk visits every stable frame in key order.
func (t *stableTreap) walk(fn func(frame mem.FrameID)) {
	var rec func(n *treapNode)
	rec = func(n *treapNode) {
		if n == nil {
			return
		}
		rec(n.left)
		fn(n.frame)
		rec(n.right)
	}
	rec(t.root)
}

// frames returns all stable frames in key order.
func (t *stableTreap) frames() []mem.FrameID {
	out := make([]mem.FrameID, 0, t.size)
	t.walk(func(f mem.FrameID) { out = append(out, f) })
	return out
}
