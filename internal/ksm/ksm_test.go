package ksm

import (
	"testing"
	"testing/quick"

	"repro/internal/hypervisor"
	"repro/internal/mem"
	"repro/internal/simclock"
)

const pg = mem.DefaultPageSize

type fixture struct {
	clock *simclock.Clock
	host  *hypervisor.Host
	vms   []*hypervisor.VMProcess
	k     *KSM
}

func newFixture(t *testing.T, ramPages, nVMs, guestPages int, cfg Config) *fixture {
	t.Helper()
	clock := simclock.New()
	host := hypervisor.NewHost(hypervisor.Config{Name: "t", RAMBytes: int64(ramPages) * pg}, clock)
	f := &fixture{clock: clock, host: host}
	for i := 0; i < nVMs; i++ {
		f.vms = append(f.vms, host.NewVM(hypervisor.VMConfig{
			Name:          "vm",
			GuestMemBytes: int64(guestPages) * pg,
			Seed:          mem.Seed(i + 1),
		}))
	}
	f.k = New(host, cfg)
	f.k.RegisterAll()
	return f
}

// scanPasses runs enough chunks for at least n full passes.
func (f *fixture) scanPasses(n int) {
	pagesPerPass := 0
	for _, vm := range f.vms {
		pagesPerPass += vm.GuestPages()
	}
	f.k.ScanChunk(pagesPerPass*n + 1)
}

func TestIdenticalPagesMergeAcrossVMs(t *testing.T) {
	f := newFixture(t, 256, 2, 16, DefaultConfig())
	for i := uint64(0); i < 8; i++ {
		f.vms[0].FillGuestPage(i, mem.Seed(1000+i))
		f.vms[1].FillGuestPage(i, mem.Seed(1000+i))
	}
	f.scanPasses(3) // gate needs 2 visits; merges on the 3rd
	s := f.k.Stats()
	if s.PagesShared != 8 {
		t.Fatalf("PagesShared = %d, want 8", s.PagesShared)
	}
	if s.PagesSharing != 16 {
		t.Fatalf("PagesSharing = %d, want 16", s.PagesSharing)
	}
	if want := int64(8) * pg; s.SavedBytes != want {
		t.Fatalf("SavedBytes = %d, want %d", s.SavedBytes, want)
	}
}

func TestDifferentContentNeverMerges(t *testing.T) {
	f := newFixture(t, 256, 2, 16, DefaultConfig())
	for i := uint64(0); i < 8; i++ {
		f.vms[0].FillGuestPage(i, mem.Seed(1+i))
		f.vms[1].FillGuestPage(i, mem.Seed(100+i))
	}
	f.scanPasses(4)
	if s := f.k.Stats(); s.PagesShared != 0 || s.SavedBytes != 0 {
		t.Fatalf("unexpected sharing: %+v", s)
	}
}

func TestZeroPagesMergeTogether(t *testing.T) {
	f := newFixture(t, 256, 3, 16, DefaultConfig())
	for _, vm := range f.vms {
		for i := uint64(0); i < 4; i++ {
			vm.TouchGuestPage(i, true) // demand-zero
		}
	}
	f.scanPasses(3)
	s := f.k.Stats()
	if s.PagesShared != 1 {
		t.Fatalf("PagesShared = %d, want 1 (one zero stable page)", s.PagesShared)
	}
	if s.PagesSharing != 12 {
		t.Fatalf("PagesSharing = %d, want 12", s.PagesSharing)
	}
}

func TestChecksumGateSkipsVolatilePages(t *testing.T) {
	f := newFixture(t, 256, 2, 8, DefaultConfig())
	// Rewrite the pages between every pass: they never stabilize.
	for pass := 0; pass < 5; pass++ {
		for i := uint64(0); i < 4; i++ {
			f.vms[0].FillGuestPage(i, mem.Seed(uint64(pass)*10+i))
			f.vms[1].FillGuestPage(i, mem.Seed(uint64(pass)*10+i))
		}
		f.scanPasses(1)
	}
	s := f.k.Stats()
	if s.PagesShared != 0 {
		t.Fatalf("volatile pages merged: %+v", s)
	}
	if s.ChecksumSkips == 0 {
		t.Fatal("checksum gate never fired")
	}
}

func TestNoGateMergesVolatilePagesThenBreaks(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ChecksumGate = false
	f := newFixture(t, 256, 2, 8, cfg)
	f.vms[0].FillGuestPage(0, 7)
	f.vms[1].FillGuestPage(0, 7)
	f.scanPasses(2)
	if f.k.Stats().PagesShared != 1 {
		t.Fatalf("merge without gate failed: %+v", f.k.Stats())
	}
	// A write breaks the sharing.
	f.vms[1].WriteGuestPage(0, 0, []byte{9})
	s := f.k.Stats()
	if s.COWBreaks != 1 {
		t.Fatalf("COWBreaks = %d, want 1", s.COWBreaks)
	}
	if s.PagesSharing != 1 {
		t.Fatalf("PagesSharing after break = %d, want 1", s.PagesSharing)
	}
}

func TestRemergeAfterCOWBreak(t *testing.T) {
	f := newFixture(t, 256, 2, 8, DefaultConfig())
	f.vms[0].FillGuestPage(0, 7)
	f.vms[1].FillGuestPage(0, 7)
	f.scanPasses(3)
	if f.k.Stats().PagesSharing != 2 {
		t.Fatalf("initial merge failed: %+v", f.k.Stats())
	}
	f.vms[1].WriteGuestPage(0, 0, []byte{9}) // diverge
	f.vms[1].FillGuestPage(0, 7)             // converge again
	f.scanPasses(3)
	s := f.k.Stats()
	if s.PagesSharing != 2 {
		t.Fatalf("re-merge failed: %+v", s)
	}
	if s.StableMerges == 0 {
		t.Fatal("re-merge should hit the stable tree")
	}
}

func TestStablePagePrunedWhenLastMapperLeaves(t *testing.T) {
	f := newFixture(t, 256, 2, 8, DefaultConfig())
	f.vms[0].FillGuestPage(0, 7)
	f.vms[1].FillGuestPage(0, 7)
	f.scanPasses(3)
	if len(f.k.StableFrames()) != 1 {
		t.Fatalf("stable frames = %d, want 1", len(f.k.StableFrames()))
	}
	f.vms[0].ReleaseGuestPage(0)
	f.vms[1].ReleaseGuestPage(0)
	f.scanPasses(1)
	if got := len(f.k.StableFrames()); got != 0 {
		t.Fatalf("stable frames after release = %d, want 0", got)
	}
	if f.k.Stats().StalePruned == 0 {
		t.Fatal("prune counter did not advance")
	}
}

func TestMergedPageContentPreserved(t *testing.T) {
	f := newFixture(t, 256, 2, 8, DefaultConfig())
	f.vms[0].FillGuestPage(3, 77)
	f.vms[1].FillGuestPage(3, 77)
	f.scanPasses(3)
	want := mem.FillBytes(pg, 77)
	for _, vm := range f.vms {
		got := vm.ReadGuestPage(3)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("content diverged after merge at byte %d", i)
			}
		}
	}
}

func TestScanScheduledOnClock(t *testing.T) {
	f := newFixture(t, 256, 2, 16, DefaultConfig())
	for i := uint64(0); i < 8; i++ {
		f.vms[0].FillGuestPage(i, mem.Seed(1000+i))
		f.vms[1].FillGuestPage(i, mem.Seed(1000+i))
	}
	f.k.Start()
	f.clock.RunFor(2 * simclock.Second) // 20 wakeups × 1000 pages ≫ 3 passes
	f.k.Stop()
	f.clock.RunFor(200 * simclock.Millisecond) // let the loop observe Stop
	s := f.k.Stats()
	if s.PagesShared != 8 {
		t.Fatalf("scheduled scan: PagesShared = %d, want 8", s.PagesShared)
	}
	if s.CPUPercent() <= 0 || s.CPUPercent() > 50 {
		t.Fatalf("CPUPercent = %f out of range", s.CPUPercent())
	}
}

func TestCPUDutyCycleMatchesPaper(t *testing.T) {
	// 10 000 pages per 100 ms at 2.5 µs/page ≈ 25 % CPU; 1 000 ≈ 2.5 %.
	cfg := DefaultConfig()
	cfg.PagesToScan = 10000
	f := newFixture(t, 64, 1, 16, cfg)
	f.k.Start()
	f.clock.RunFor(10 * simclock.Second)
	f.k.Stop()
	got := f.k.Stats().CPUPercent()
	if got < 20 || got > 30 {
		t.Fatalf("warm-up duty cycle = %.1f%%, want ≈25%%", got)
	}
}

func TestSetPagesToScan(t *testing.T) {
	f := newFixture(t, 64, 1, 16, DefaultConfig())
	f.k.SetPagesToScan(10)
	if f.k.Config().PagesToScan != 10 {
		t.Fatal("SetPagesToScan did not apply")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("SetPagesToScan(0) did not panic")
		}
	}()
	f.k.SetPagesToScan(0)
}

func TestStableTreapOrderAndRemoval(t *testing.T) {
	pm := mem.NewPhysMem(64*pg, pg)
	tr := newStableTreap(pm, 0)
	var frames []mem.FrameID
	for i := 0; i < 20; i++ {
		id, _ := pm.Alloc()
		pm.FillFrame(id, mem.Seed(i))
		tr.insert(id)
		frames = append(frames, id)
	}
	got := tr.frames()
	if len(got) != 20 {
		t.Fatalf("treap size = %d, want 20", len(got))
	}
	for i := 1; i < len(got); i++ {
		if pm.Compare(got[i-1], got[i]) >= 0 {
			t.Fatal("treap walk not in content order")
		}
	}
	for _, fr := range frames {
		if sf, ok := tr.lookup(fr); !ok || sf != fr {
			t.Fatalf("lookup(%d) failed", fr)
		}
	}
	for _, fr := range frames {
		if !tr.remove(fr) {
			t.Fatalf("remove(%d) failed", fr)
		}
	}
	if len(tr.frames()) != 0 {
		t.Fatal("treap not empty after removals")
	}
}

// Property: after scanning, for every group of pages that share a seed, the
// saved bytes equal (mappers-1) pages per group, and all content survives.
func TestPropertyMergeSavingsExact(t *testing.T) {
	f := func(groupSizes []uint8) bool {
		nGroups := len(groupSizes)
		if nGroups == 0 {
			return true
		}
		if nGroups > 6 {
			groupSizes = groupSizes[:6]
			nGroups = 6
		}
		clock := simclock.New()
		host := hypervisor.NewHost(hypervisor.Config{Name: "p", RAMBytes: 2048 * pg}, clock)
		vm := host.NewVM(hypervisor.VMConfig{Name: "vm", GuestMemBytes: 256 * pg, Seed: 5})
		k := New(host, DefaultConfig())
		k.RegisterAll()

		gpfn := uint64(0)
		wantSavedPages := 0
		for g, szRaw := range groupSizes {
			sz := int(szRaw%5) + 1
			for i := 0; i < sz; i++ {
				vm.FillGuestPage(gpfn, mem.Seed(9000+g))
				gpfn++
			}
			if sz > 1 {
				wantSavedPages += sz - 1
			}
		}
		k.ScanChunk(256 * 4)
		s := k.Stats()
		return s.SavedBytes == int64(wantSavedPages)*pg
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestUnmergeRestoresPrivateCopies(t *testing.T) {
	f := newFixture(t, 512, 3, 16, DefaultConfig())
	for i := uint64(0); i < 8; i++ {
		for _, vm := range f.vms {
			vm.FillGuestPage(i, mem.Seed(500+i))
		}
	}
	f.scanPasses(3)
	if f.k.Stats().PagesShared != 8 {
		t.Fatalf("setup: shared = %d", f.k.Stats().PagesShared)
	}
	framesBefore := f.host.Phys().FramesInUse()
	f.k.Unmerge()
	s := f.k.Stats()
	if s.PagesShared != 0 || s.PagesSharing != 0 {
		t.Fatalf("sharing survives unmerge: %+v", s)
	}
	// 3 VMs × 8 pages need 24 private frames where 8 stable ones sufficed.
	framesAfter := f.host.Phys().FramesInUse()
	if framesBefore != 8 || framesAfter != 24 {
		t.Fatalf("frames %d -> %d, want 8 -> 24", framesBefore, framesAfter)
	}
	// Content preserved in every private copy.
	want := mem.FillBytes(pg, 503)
	for _, vm := range f.vms {
		got := vm.ReadGuestPage(3)
		for i := range want {
			if got[i] != want[i] {
				t.Fatal("content corrupted by unmerge")
			}
		}
	}
	// Re-scanning merges everything again.
	f.scanPasses(3)
	if f.k.Stats().PagesShared != 8 {
		t.Fatalf("re-merge failed: %+v", f.k.Stats())
	}
}

func TestEmptyRegionNeverScanned(t *testing.T) {
	// Regression: with an empty registered region (Start == End) the cursor
	// used to clamp to Start and scan reg.End itself — a page KSM was never
	// madvised about. An empty-only scan list must scan nothing.
	f := newFixture(t, 256, 1, 16, DefaultConfig())
	f.k.regions = f.k.regions[:0]
	base := f.vms[0].MergeableRegions()[0]
	f.k.regions = append(f.k.regions, hypervisor.MergeableRegion{VM: f.vms[0], Start: base.Start, End: base.Start})
	f.k.ScanChunk(64)
	s := f.k.Stats()
	if s.PagesScanned != 0 || s.NotResident != 0 {
		t.Fatalf("empty region was scanned: %+v", s)
	}
}

func TestEmptyRegionSkippedBetweenRegions(t *testing.T) {
	// An empty region between two populated ones is stepped over without
	// scanning out-of-range pages, and passes still complete.
	f := newFixture(t, 256, 2, 8, DefaultConfig())
	base := f.vms[0].MergeableRegions()[0]
	empty := hypervisor.MergeableRegion{VM: f.vms[0], Start: base.End, End: base.End}
	f.k.regions = []hypervisor.MergeableRegion{
		f.vms[0].MergeableRegions()[0], empty, f.vms[1].MergeableRegions()[0],
	}
	f.vms[0].FillGuestPage(0, 7)
	f.vms[1].FillGuestPage(0, 7)
	f.scanPasses(3)
	s := f.k.Stats()
	if s.PagesShared != 1 {
		t.Fatalf("merge across empty region failed: %+v", s)
	}
	// Each pass covers exactly the 16 real pages; the empty region adds
	// none, so scanning 49 pages completes 3 full passes.
	if s.FullScans != 3 {
		t.Fatalf("FullScans = %d, want 3", s.FullScans)
	}
}

func TestRegisterIsIdempotent(t *testing.T) {
	// Register followed by RegisterAll (or a repeated Register) must not
	// double-scan a VM.
	f := newFixture(t, 256, 2, 8, DefaultConfig())
	f.k.Register(f.vms[0])
	f.k.RegisterAll()
	if got := len(f.k.regions); got != 2 {
		t.Fatalf("regions = %d, want 2 (one per VM)", got)
	}
	f.vms[0].FillGuestPage(0, 7)
	f.vms[1].FillGuestPage(0, 7)
	// One pass is 16 pages; a duplicated region would stretch it to 24.
	f.k.ScanChunk(16)
	if s := f.k.Stats(); s.FullScans != 1 {
		t.Fatalf("FullScans = %d after one nominal pass, want 1", s.FullScans)
	}
}

func TestChecksumMapPrunedOnSwapChurn(t *testing.T) {
	// The volatility-gate map must stay proportional to the resident set,
	// not grow with every page the scanner ever visited. Churn pages through
	// swap by touching a guest twice the host's size.
	clock := simclock.New()
	// 64 host frames; the guest demands 128 pages, so earlier pages are
	// evicted to swap as later ones fault in.
	host := hypervisor.NewHost(hypervisor.Config{Name: "t", RAMBytes: 64 * pg, SwapBytes: 512 * pg}, clock)
	vm := host.NewVM(hypervisor.VMConfig{Name: "vm", GuestMemBytes: 128 * pg, Seed: 1})
	k := New(host, DefaultConfig())
	k.RegisterAll()
	for round := 0; round < 4; round++ {
		for p := uint64(0); p < 128; p++ {
			vm.FillGuestPage(p, mem.Seed(1000+p))
		}
		k.ScanChunk(128) // one full pass
	}
	resident := 0
	for _, reg := range k.regions {
		for vpn := reg.Start; vpn < reg.End; vpn++ {
			if _, ok := vm.ResolveResident(vpn); ok {
				resident++
			}
		}
	}
	if got := len(k.checksums); got > resident {
		t.Fatalf("checksum map holds %d entries for %d resident pages", got, resident)
	}
	// Unmapping everything and finishing a pass empties the map.
	for p := uint64(0); p < 128; p++ {
		vm.ReleaseGuestPage(p)
	}
	k.ScanChunk(128)
	if got := len(k.checksums); got != 0 {
		t.Fatalf("checksum map holds %d entries after all pages released", got)
	}
}

func TestChecksumEntriesForMergedPagesPruned(t *testing.T) {
	f := newFixture(t, 256, 2, 8, DefaultConfig())
	for i := uint64(0); i < 4; i++ {
		f.vms[0].FillGuestPage(i, mem.Seed(50+i))
		f.vms[1].FillGuestPage(i, mem.Seed(50+i))
	}
	f.scanPasses(4)
	if f.k.Stats().PagesShared != 4 {
		t.Fatalf("setup: %+v", f.k.Stats())
	}
	// All eight mapped pages point at stable frames now; their gate entries
	// are dead weight and must have been pruned at the end of the pass.
	for key := range f.k.checksums {
		frame, ok := key.vm.ResolveResident(key.vpn)
		if ok && f.host.Phys().IsKSM(frame) {
			t.Fatalf("gate entry survives for merged page %v", key.vpn)
		}
	}
}

func TestHashOnlyModeMerges(t *testing.T) {
	cfg := DefaultConfig()
	cfg.HashOnly = true
	f := newFixture(t, 256, 2, 8, cfg)
	f.vms[0].FillGuestPage(0, 7)
	f.vms[1].FillGuestPage(0, 7)
	f.scanPasses(3)
	s := f.k.Stats()
	if s.PagesShared != 1 {
		t.Fatalf("hash-only merge failed: %+v", s)
	}
	// With 64-bit content checksums over deterministic streams, no
	// verification rejections occur — but the counter exists to expose the
	// risk the unsound mode takes.
	if s.HashRejects != 0 {
		t.Fatalf("unexpected hash rejects: %d", s.HashRejects)
	}
}
