package ksm

import (
	"testing"

	"repro/internal/hypervisor"
	"repro/internal/mem"
	"repro/internal/simclock"
)

// newDirtyFixture builds a fixture whose host carries per-VM dirty rings
// (ringPages 0 = default capacity).
func newDirtyFixture(t *testing.T, ramPages, nVMs, guestPages, ringPages int, cfg Config) *fixture {
	t.Helper()
	clock := simclock.New()
	host := hypervisor.NewHost(hypervisor.Config{
		Name:           "t",
		RAMBytes:       int64(ramPages) * pg,
		DirtyLog:       true,
		DirtyRingPages: ringPages,
	}, clock)
	f := &fixture{clock: clock, host: host}
	for i := 0; i < nVMs; i++ {
		f.vms = append(f.vms, host.NewVM(hypervisor.VMConfig{
			Name:          "vm",
			GuestMemBytes: int64(guestPages) * pg,
			Seed:          mem.Seed(i + 1),
		}))
	}
	f.k = New(host, cfg)
	f.k.RegisterAll()
	return f
}

func incrementalConfig() Config {
	cfg := DefaultConfig()
	cfg.IncrementalScan = true
	return cfg
}

// TestIncrementalSwitchAfterTwoPasses: the scanner stays linear for the
// first two completed passes, then flips to dirty-ring rescans.
func TestIncrementalSwitchAfterTwoPasses(t *testing.T) {
	f := newDirtyFixture(t, 512, 2, 32, 0, incrementalConfig())
	f.k.ScanChunk(64)
	if f.k.incremental {
		t.Fatal("switched to incremental after one pass")
	}
	f.k.ScanChunk(64)
	if !f.k.incremental {
		t.Fatal("not incremental after two completed passes")
	}
	if f.k.stats.FullScans != 2 {
		t.Fatalf("FullScans = %d, want 2", f.k.stats.FullScans)
	}
}

// TestIncrementalScansOnlyDirtiedPages is the tentpole contract: once
// converged, an idle cluster costs nothing to rescan and a dirtied page
// costs exactly its revisits, not a pass over all registered pages.
func TestIncrementalScansOnlyDirtiedPages(t *testing.T) {
	f := newDirtyFixture(t, 1024, 2, 64, 0, incrementalConfig())
	for i := uint64(0); i < 8; i++ {
		f.vms[0].FillGuestPage(i, mem.Seed(1000+i))
		f.vms[1].FillGuestPage(i, mem.Seed(1000+i))
	}
	f.k.ScanChunk(128) // pass 1: first sightings
	f.k.ScanChunk(128) // pass 2: merges happen, mode switches
	if !f.k.incremental {
		t.Fatal("not incremental after two passes")
	}
	if s := f.k.Stats(); s.PagesShared != 8 {
		t.Fatalf("PagesShared = %d before churn, want 8", s.PagesShared)
	}

	// Idle round: nothing dirtied since the rings were reset, so the chunk
	// must scan nothing and charge nothing.
	before := f.k.Stats()
	f.k.ScanChunk(128)
	after := f.k.Stats()
	if after.PagesScanned != before.PagesScanned {
		t.Fatalf("idle incremental round scanned %d pages",
			after.PagesScanned-before.PagesScanned)
	}
	if after.CPUBusy != before.CPUBusy {
		t.Fatal("idle incremental round charged CPU")
	}

	// Dirty 4 private pages; the next round must rescan exactly those
	// (volatility-gate first sighting), and the round after revisits the
	// deferred 4 — never the other 120 registered pages. DirtyDrained is
	// compared as a delta: the full passes' ring resets count as drains too.
	for i := uint64(40); i < 44; i++ {
		f.vms[0].FillGuestPage(i, mem.Seed(7000+i))
	}
	before = f.k.Stats()
	f.k.ScanChunk(128)
	mid := f.k.Stats()
	if got := mid.PagesScanned - before.PagesScanned; got != 4 {
		t.Fatalf("dirty round scanned %d pages, want 4", got)
	}
	f.k.ScanChunk(128)
	after = f.k.Stats()
	if got := after.PagesScanned - mid.PagesScanned; got != 4 {
		t.Fatalf("revisit round scanned %d pages, want 4", got)
	}
	if got := after.DirtyDrained - before.DirtyDrained; got != 4 {
		t.Fatalf("DirtyDrained delta = %d, want 4", got)
	}
	if after.RingOverflows != 0 {
		t.Fatalf("RingOverflows = %d, want 0", after.RingOverflows)
	}
	if after.IncrementalScanned != 8 {
		t.Fatalf("IncrementalScanned = %d, want 8", after.IncrementalScanned)
	}
}

// TestIncrementalMatchesFullSharing: the same workload converges to the same
// sharing whether scanned linearly or via dirty rings — churn after
// convergence included.
func TestIncrementalMatchesFullSharing(t *testing.T) {
	run := func(cfg Config, dirtyLog bool) Stats {
		var f *fixture
		if dirtyLog {
			f = newDirtyFixture(t, 1024, 3, 32, 0, cfg)
		} else {
			f = newFixture(t, 1024, 3, 32, cfg)
		}
		for i := uint64(0); i < 8; i++ {
			for _, vm := range f.vms {
				vm.FillGuestPage(i, mem.Seed(500+i))
			}
		}
		f.scanPasses(3)
		// Churn after convergence: break two shared pages in VM0 and create
		// a fresh duplicate pair on a previously private page. Drive the
		// post-churn scanning as separate wake-ups: one ScanChunk is one
		// linear pass here (96 pages) and exactly one incremental round.
		f.vms[0].FillGuestPage(2, mem.Seed(9001))
		f.vms[0].FillGuestPage(3, mem.Seed(9002))
		f.vms[1].FillGuestPage(20, mem.Seed(8000))
		f.vms[2].FillGuestPage(20, mem.Seed(8000))
		for i := 0; i < 4; i++ {
			f.k.ScanChunk(96)
		}
		return f.k.Stats()
	}
	full := run(DefaultConfig(), false)
	inc := run(incrementalConfig(), true)
	if full.PagesShared != inc.PagesShared || full.PagesSharing != inc.PagesSharing {
		t.Fatalf("sharing diverged: full %d/%d, incremental %d/%d",
			full.PagesShared, full.PagesSharing, inc.PagesShared, inc.PagesSharing)
	}
	if inc.IncrementalScanned == 0 {
		t.Fatal("incremental run never used the dirty-ring queue")
	}
}

// TestRingOverflowForcesFullRescan (satellite): dirtying more pages than the
// ring holds must not lose sharing — the overflow forces a conservative
// whole-VM rescan, so even the pages that fell out of the ring merge.
func TestRingOverflowForcesFullRescan(t *testing.T) {
	f := newDirtyFixture(t, 1024, 2, 64, 8, incrementalConfig())
	f.k.ScanChunk(128)
	f.k.ScanChunk(128)
	if !f.k.incremental {
		t.Fatal("not incremental after two passes")
	}
	// Dirty 16 pages (ring holds 8): pages 8..15 fall out of the log, and
	// exactly those duplicate VM1's content, so only a conservative full
	// rescan can find the merges.
	for i := uint64(0); i < 16; i++ {
		seed := mem.Seed(3000 + i)
		if i < 8 {
			seed = mem.Seed(4000 + i) // unique: stays unmerged
		} else {
			f.vms[1].FillGuestPage(i, mem.Seed(3000+i))
		}
		f.vms[0].FillGuestPage(i, seed)
	}
	// VM1's writes also dirtied its ring; both sides need the two-sighting
	// gate, so give the scanner several rounds.
	for i := 0; i < 4; i++ {
		f.k.ScanChunk(256)
	}
	s := f.k.Stats()
	if s.RingOverflows == 0 {
		t.Fatal("16 dirty pages in an 8-entry ring never overflowed")
	}
	if s.PagesShared != 8 {
		t.Fatalf("PagesShared = %d after overflow rescan, want 8", s.PagesShared)
	}
	if s.PagesSharing != 16 {
		t.Fatalf("PagesSharing = %d, want 16", s.PagesSharing)
	}
}

// TestRegisterDuringIncrementalForcesFullRescan: a VM that boots after the
// switch has no ring history, so its first round covers its whole region and
// its duplicates still merge against the retained unstable index.
func TestRegisterDuringIncrementalForcesFullRescan(t *testing.T) {
	f := newDirtyFixture(t, 1024, 2, 32, 0, incrementalConfig())
	for i := uint64(0); i < 8; i++ {
		f.vms[0].FillGuestPage(i, mem.Seed(600+i))
	}
	f.k.ScanChunk(64)
	f.k.ScanChunk(64)
	if !f.k.incremental {
		t.Fatal("not incremental after two passes")
	}
	vm3 := f.host.NewVM(hypervisor.VMConfig{
		Name:          "late",
		GuestMemBytes: 32 * pg,
		Seed:          mem.Seed(99),
	})
	for i := uint64(0); i < 8; i++ {
		vm3.FillGuestPage(i, mem.Seed(600+i))
	}
	f.k.Register(vm3)
	if !f.k.needFull[vm3] {
		t.Fatal("late VM not marked for a conservative full rescan")
	}
	for i := 0; i < 3; i++ {
		f.k.ScanChunk(128)
	}
	if s := f.k.Stats(); s.PagesShared != 8 {
		t.Fatalf("PagesShared = %d after late registration, want 8", s.PagesShared)
	}
}

// TestUnregisterLastRegionMidPassEndsPass is the pass-boundary regression
// (satellite): killing the guest the cursor is currently inside, when it owns
// the last region, used to wrap the cursor without ending the pass —
// skipping the unstable-index drop, the stale prunes and the FullScans
// count. The wrap IS the pass boundary: every surviving region was scanned.
func TestUnregisterLastRegionMidPassEndsPass(t *testing.T) {
	f := newFixture(t, 512, 2, 16, DefaultConfig())
	// Distinct resident content everywhere, so second-sighting pages land in
	// the unstable index without merging.
	for i := uint64(0); i < 16; i++ {
		f.vms[0].FillGuestPage(i, mem.Seed(10+i))
		f.vms[1].FillGuestPage(i, mem.Seed(200+i))
	}
	f.k.ScanChunk(32) // pass 1: volatility-gate first sightings
	f.k.ScanChunk(20) // pass 2: VM0's 16 pages plus 4 of VM1
	if f.k.regionIdx != 1 {
		t.Fatalf("cursor in region %d, want 1", f.k.regionIdx)
	}
	if f.k.unstableTotal() == 0 {
		t.Fatal("no unstable entries mid-pass; scan did nothing")
	}
	f.k.Unregister(f.vms[1])
	s := f.k.Stats()
	if s.FullScans != 2 {
		t.Fatalf("FullScans = %d after wrap-completing unregister, want 2", s.FullScans)
	}
	if f.k.unstableTotal() != 0 || len(f.k.shards[0].unstable) != 0 {
		t.Fatalf("unstable index survived the pass boundary: %d entries", f.k.unstableTotal())
	}
	// The next chunk starts a fresh pass over the surviving VM and must
	// complete it normally.
	f.k.ScanChunk(16)
	if s := f.k.Stats(); s.FullScans != 3 {
		t.Fatalf("FullScans = %d after one more pass, want 3", s.FullScans)
	}
}

// TestUnregisterBeforeCursorDoesNotEndPass: the complementary case — removing
// an already-scanned region while the cursor sits in a later one shifts the
// index down without faking a pass boundary.
func TestUnregisterBeforeCursorDoesNotEndPass(t *testing.T) {
	f := newFixture(t, 512, 3, 16, DefaultConfig())
	f.k.ScanChunk(36) // regions 0 and 1 done, cursor 4 pages into region 2
	if f.k.regionIdx != 2 {
		t.Fatalf("cursor in region %d, want 2", f.k.regionIdx)
	}
	f.k.Unregister(f.vms[0])
	if s := f.k.Stats(); s.FullScans != 0 {
		t.Fatalf("FullScans = %d, want 0 (pass not complete)", s.FullScans)
	}
	if f.k.regionIdx != 1 {
		t.Fatalf("regionIdx = %d after removal before cursor, want 1", f.k.regionIdx)
	}
}

// TestStallExcludedFromCPUWall (satellite): injected stalls deschedule the
// daemon, so the duty cycle must divide by the time it actually had the CPU.
func TestStallExcludedFromCPUWall(t *testing.T) {
	f := newFixture(t, 256, 1, 16, DefaultConfig())
	f.k.Start()
	f.clock.RunFor(1 * simclock.Second)
	f.k.Stall(2 * simclock.Second)
	f.k.Stall(1 * simclock.Second) // overlap: extends nothing, books nothing
	f.clock.RunFor(1 * simclock.Second)
	// Mid-stall: one of the two stalled seconds has elapsed.
	s := f.k.Stats()
	if want := 1 * simclock.Second; s.StalledTime != want {
		t.Fatalf("StalledTime mid-stall = %v, want %v", s.StalledTime, want)
	}
	if want := 1 * simclock.Second; s.CPUWall != want {
		t.Fatalf("CPUWall mid-stall = %v, want %v", s.CPUWall, want)
	}
	f.clock.RunFor(3 * simclock.Second)
	s = f.k.Stats()
	if want := 2 * simclock.Second; s.StalledTime != want {
		t.Fatalf("StalledTime = %v, want %v", s.StalledTime, want)
	}
	// 5 s on the clock, 2 s stalled: 3 s of schedulable wall time.
	if want := 3 * simclock.Second; s.CPUWall != want {
		t.Fatalf("CPUWall = %v, want %v", s.CPUWall, want)
	}
	if s.Stalls != 2 {
		t.Fatalf("Stalls = %d, want 2", s.Stalls)
	}
}

// TestScannableCountMaintained (satellite): the O(1) can-work guard must
// track Register/Unregister exactly.
func TestScannableCountMaintained(t *testing.T) {
	f := newFixture(t, 512, 3, 16, DefaultConfig())
	count := func() int {
		n := 0
		for _, reg := range f.k.regions {
			if reg.Start < reg.End {
				n++
			}
		}
		return n
	}
	if f.k.scannable != count() || f.k.scannable != 3 {
		t.Fatalf("scannable = %d, regions say %d", f.k.scannable, count())
	}
	f.k.Unregister(f.vms[1])
	if f.k.scannable != count() || f.k.scannable != 2 {
		t.Fatalf("scannable = %d after unregister, regions say %d", f.k.scannable, count())
	}
	f.k.Register(f.vms[1])
	if f.k.scannable != count() || f.k.scannable != 3 {
		t.Fatalf("scannable = %d after re-register, regions say %d", f.k.scannable, count())
	}
	f.k.Unregister(f.vms[0])
	f.k.Unregister(f.vms[1])
	f.k.Unregister(f.vms[2])
	if f.k.scannable != 0 {
		t.Fatalf("scannable = %d with no regions, want 0", f.k.scannable)
	}
	// Guard path: a chunk with nothing scannable must scan nothing.
	before := f.k.Stats().PagesScanned
	f.k.ScanChunk(64)
	if got := f.k.Stats().PagesScanned - before; got != 0 {
		t.Fatalf("empty scanner scanned %d pages", got)
	}
}

// TestWorkingSetEstimateFromDrains: ring drains feed the per-VM working-set
// EWMA that the balloon manager and the OOM policy consume.
func TestWorkingSetEstimateFromDrains(t *testing.T) {
	f := newDirtyFixture(t, 1024, 2, 64, 0, incrementalConfig())
	if _, ok := f.vms[0].WorkingSetPages(); ok {
		t.Fatal("working-set estimate exists before any drain")
	}
	f.k.ScanChunk(128)
	f.k.ScanChunk(128)
	// Rings were reset as the linear cursor entered each VM, so estimates
	// exist already; dirty a known count and drain via one round.
	for i := uint64(0); i < 10; i++ {
		f.vms[0].FillGuestPage(i, mem.Seed(100+i))
	}
	f.k.ScanChunk(128)
	ws, ok := f.vms[0].WorkingSetPages()
	if !ok {
		t.Fatal("no working-set estimate after drains")
	}
	if ws <= 0 || ws > 64 {
		t.Fatalf("working-set estimate %d out of range (0, 64]", ws)
	}
	// An idle VM's estimate decays toward zero as empty drains accumulate.
	for i := 0; i < 8; i++ {
		f.k.ScanChunk(128)
	}
	cold, ok := f.vms[0].WorkingSetPages()
	if !ok || cold >= ws {
		t.Fatalf("estimate did not decay: %d -> %d", ws, cold)
	}
}

// TestIncrementalOffIsByteIdentical pins the compatibility contract: with
// IncrementalScan off, a cluster with dirty logging off behaves exactly as
// the seed scanner — same stats word for word over a churny schedule.
func TestIncrementalOffIsByteIdentical(t *testing.T) {
	run := func() Stats {
		f := newFixture(t, 1024, 3, 32, DefaultConfig())
		for i := uint64(0); i < 12; i++ {
			for vi, vm := range f.vms {
				vm.FillGuestPage(i, mem.Seed(uint64(vi%2)*1000+i))
			}
		}
		f.scanPasses(2)
		f.vms[0].FillGuestPage(3, mem.Seed(77))
		f.scanPasses(2)
		f.k.Unregister(f.vms[2])
		f.scanPasses(2)
		return f.k.Stats()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("linear scanner not deterministic:\n%+v\n%+v", a, b)
	}
}
