package ksm

import (
	"testing"

	"repro/internal/mem"
)

// Cross-cutting invariants of the sharing machinery, checked after randomized
// workloads of fills, merges and COW breaks.

// checkInvariants asserts the structural invariants that must hold at any
// quiescent point:
//  1. every stable-tree frame is flagged KSM and alive;
//  2. every PTE pointing at a stable frame is write-protected (COW);
//  3. frame reference counts equal 1 (tree) + number of mapping PTEs;
//  4. no two stable frames have identical content.
func (f *fixture) checkInvariants(t *testing.T) {
	t.Helper()
	pm := f.host.Phys()
	stable := f.k.StableFrames()

	mappers := map[mem.FrameID]int{}
	for _, vm := range f.vms {
		vm.HostPageTable().Range(func(vpn mem.VPN, pte mem.PTE) bool {
			if pte.Swapped {
				return true
			}
			if pm.IsKSM(pte.Frame) {
				if !pte.COW {
					t.Errorf("PTE %#x maps stable frame %d without COW", vpn, pte.Frame)
				}
				mappers[pte.Frame]++
			}
			return true
		})
	}
	for i, fr := range stable {
		if !pm.IsKSM(fr) {
			t.Errorf("stable frame %d not flagged KSM", fr)
		}
		if got, want := pm.RefCount(fr), mappers[fr]+1; got != want {
			t.Errorf("stable frame %d refcount %d, want %d (tree + %d mappers)", fr, got, want, mappers[fr])
		}
		for _, other := range stable[i+1:] {
			if pm.Equal(fr, other) {
				t.Errorf("stable frames %d and %d have identical content", fr, other)
			}
		}
	}
}

func TestInvariantsAfterRandomizedChurn(t *testing.T) {
	f := newFixture(t, 1024, 3, 64, DefaultConfig())
	rng := mem.Seed(7)
	for round := 0; round < 12; round++ {
		for vi, vm := range f.vms {
			for p := 0; p < 24; p++ {
				rng = mem.Mix(rng)
				gpfn := uint64(rng) % 64
				switch uint64(rng) % 5 {
				case 0, 1:
					// Convergent content (same across VMs).
					vm.FillGuestPage(gpfn, mem.Seed(1000+gpfn%10))
				case 2:
					// Divergent content.
					vm.FillGuestPage(gpfn, mem.Combine(mem.Seed(vi), rng))
				case 3:
					vm.ZeroGuestPage(gpfn)
				case 4:
					vm.WriteGuestPage(gpfn, int(uint64(rng)%4000), []byte{byte(rng)})
				}
			}
		}
		f.scanPasses(1)
		f.checkInvariants(t)
		if t.Failed() {
			t.Fatalf("invariants broken at round %d", round)
		}
	}
	// Frame accounting closes: every allocated frame is reachable from a
	// PTE or the stable tree.
	pm := f.host.Phys()
	if pm.FramesInUse()+pm.FreeFrames() != pm.TotalFrames() {
		t.Fatal("frame pool accounting broken")
	}
}

func TestSavedBytesNeverNegative(t *testing.T) {
	f := newFixture(t, 512, 2, 32, DefaultConfig())
	for i := uint64(0); i < 16; i++ {
		f.vms[0].FillGuestPage(i, mem.Seed(i%4))
		f.vms[1].FillGuestPage(i, mem.Seed(i%4))
	}
	f.scanPasses(3)
	s := f.k.Stats()
	if s.SavedBytes < 0 {
		t.Fatalf("negative savings: %+v", s)
	}
	if s.PagesSharing < s.PagesShared {
		t.Fatalf("sharing %d < shared %d", s.PagesSharing, s.PagesShared)
	}
}

// recountStats rebuilds PagesShared/PagesSharing/SavedBytes from first
// principles: walk every VM page table, count mappings of KSM-flagged frames,
// and derive the totals — no scanner state consulted beyond the stable list.
func (f *fixture) recountStats() (shared, sharing int, saved int64) {
	pm := f.host.Phys()
	mappers := map[mem.FrameID]int{}
	for _, vm := range f.host.VMs() {
		vm.HostPageTable().Range(func(_ mem.VPN, pte mem.PTE) bool {
			if !pte.Swapped && !pte.Huge && pm.IsKSM(pte.Frame) {
				mappers[pte.Frame]++
			}
			return true
		})
	}
	for _, fr := range f.k.StableFrames() {
		if n := mappers[fr]; n > 0 {
			shared++
			sharing += n
		}
	}
	saved = int64(sharing-shared) * pg
	return shared, sharing, saved
}

func TestStatsMatchBruteForceRecount(t *testing.T) {
	// Stats() derives the sysfs totals from stable-tree refcounts; this
	// cross-checks them against a full page-table recount after merge churn,
	// COW breaks, guest kills and scanner unregisters.
	f := newFixture(t, 2048, 4, 48, DefaultConfig())
	rng := mem.Seed(11)
	check := func(stage string) {
		t.Helper()
		st := f.k.Stats()
		shared, sharing, saved := f.recountStats()
		if st.PagesShared != shared || st.PagesSharing != sharing || st.SavedBytes != saved {
			t.Fatalf("%s: Stats (shared %d sharing %d saved %d) != recount (shared %d sharing %d saved %d)",
				stage, st.PagesShared, st.PagesSharing, st.SavedBytes, shared, sharing, saved)
		}
	}
	for round := 0; round < 6; round++ {
		for vi, vm := range f.vms {
			for p := 0; p < 16; p++ {
				rng = mem.Mix(rng)
				gpfn := uint64(rng) % 48
				switch uint64(rng) % 4 {
				case 0, 1:
					vm.FillGuestPage(gpfn, mem.Seed(500+gpfn%8))
				case 2:
					vm.FillGuestPage(gpfn, mem.Combine(mem.Seed(vi), rng))
				case 3:
					vm.WriteGuestPage(gpfn, int(uint64(rng)%4000), []byte{byte(rng)})
				}
			}
		}
		f.scanPasses(1)
		check("churn")
	}
	// Kill one guest mid-flight: its mappings drop, the recount and the
	// refcount-derived totals must agree immediately and after the prune.
	f.k.Unregister(f.vms[3])
	f.host.KillVM(f.vms[3])
	f.vms = f.vms[:3]
	check("after kill")
	f.scanPasses(2)
	check("after prune")
	if err := f.host.CheckLeaks(f.k.StableFrames()); err != nil {
		t.Fatalf("leak check: %v", err)
	}
}
