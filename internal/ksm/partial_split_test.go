package ksm

import (
	"bytes"
	"testing"

	"repro/internal/mem"
)

func TestPartialSplitCarvesOnlyDuplicateSubpages(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PartialSplitHuge = true
	f := hugeFixture(t, cfg)
	f.scanPasses(5)
	s := f.k.Stats()
	if s.HugeSplits != 0 {
		t.Fatalf("partial mode dissolved %d whole blocks", s.HugeSplits)
	}
	if s.HugePartialSplits == 0 {
		t.Fatal("partial mode never carved")
	}
	// Every duplicate subpage except the uncarvable heads merges: the head
	// subpage of each run is skipped, the rest carve out and share.
	if s.PagesShared != hp-1 || s.PagesSharing != 2*(hp-1) {
		t.Fatalf("sharing: shared=%d sharing=%d, want %d/%d",
			s.PagesShared, s.PagesSharing, hp-1, 2*(hp-1))
	}
	if s.HugeSkips == 0 {
		t.Fatal("head subpages not counted as skips")
	}
	for _, vm := range f.vms {
		if vm.HugeMappings() != 1 {
			t.Fatal("huge mapping lost in partial mode")
		}
		if got := vm.HostPageTable().CarvedCount(vm.MemslotBase()); got != hp-1 {
			t.Fatalf("carved %d subpages, want %d", got, hp-1)
		}
		// Merged content intact, carved and head subpages alike.
		for _, i := range []uint64{0, 17, hp - 1} {
			want := mem.FillBytes(pg, mem.Seed(4000+i))
			if !bytes.Equal(vm.ReadGuestPage(i), want) {
				t.Fatalf("content of page %d lost across carve+merge", i)
			}
		}
	}
	if err := f.host.CheckLeaks(f.k.StableFrames()); err != nil {
		t.Fatalf("leaks after partial-split merging: %v", err)
	}
}

func TestPartialSplitTakesPrecedenceOverWholeSplit(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SplitHugePages = true
	cfg.PartialSplitHuge = true
	f := hugeFixture(t, cfg)
	f.scanPasses(5)
	s := f.k.Stats()
	if s.HugeSplits != 0 {
		t.Fatalf("whole splits ran despite partial mode: %d", s.HugeSplits)
	}
	if s.HugePartialSplits == 0 {
		t.Fatal("partial mode never carved")
	}
	for _, vm := range f.vms {
		if vm.HugeMappings() != 1 {
			t.Fatal("huge mapping lost")
		}
	}
}

func TestPartialSplitLeavesUniqueHugePagesAlone(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PartialSplitHuge = true
	f := newFixture(t, 6*hp, 2, 2*hp, cfg)
	for vi, vm := range f.vms {
		for i := uint64(0); i < hp; i++ {
			vm.FillGuestPage(i, mem.Combine(mem.Seed(vi+1), mem.Seed(i)))
		}
		if got := vm.CollapseHuge(vm.MemslotBase(), 0); got.String() != "ok" {
			t.Fatalf("setup collapse: %v", got)
		}
	}
	f.scanPasses(5)
	s := f.k.Stats()
	if s.HugePartialSplits != 0 {
		t.Fatalf("carved %d subpages of unique runs", s.HugePartialSplits)
	}
	for _, vm := range f.vms {
		if vm.HugeMappings() != 1 || vm.HostPageTable().CarvedCount(vm.MemslotBase()) != 0 {
			t.Fatal("unique huge mapping disturbed")
		}
	}
}

func TestPartialSplitCarvesHugeSideToMeetBasePages(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PartialSplitHuge = true
	f := newFixture(t, 6*hp, 2, 2*hp, cfg)
	// Same content in both VMs, but only VM 2's run is collapsed: the
	// partner-huge path must carve VM 2's subpages one at a time.
	for _, vm := range f.vms {
		for i := uint64(0); i < hp; i++ {
			vm.FillGuestPage(i, mem.Seed(4000+i))
		}
	}
	if got := f.vms[1].CollapseHuge(f.vms[1].MemslotBase(), 0); got.String() != "ok" {
		t.Fatalf("setup collapse: %v", got)
	}
	f.scanPasses(5)
	s := f.k.Stats()
	if s.HugeSplits != 0 {
		t.Fatal("whole split ran in partial mode")
	}
	if s.HugePartialSplits == 0 {
		t.Fatal("huge side never carved to meet its base-page duplicate")
	}
	if f.vms[1].HugeMappings() != 1 {
		t.Fatal("huge mapping lost")
	}
	if s.PagesShared != hp-1 || s.PagesSharing != 2*(hp-1) {
		t.Fatalf("sharing: shared=%d sharing=%d, want %d/%d",
			s.PagesShared, s.PagesSharing, hp-1, 2*(hp-1))
	}
}

func TestPartialSplitIdenticalAcrossShardCounts(t *testing.T) {
	run := func(shards int) Stats {
		cfg := DefaultConfig()
		cfg.PartialSplitHuge = true
		cfg.Shards = shards
		f := hugeFixture(t, cfg)
		f.scanPasses(5)
		return f.k.Stats()
	}
	base := run(0)
	for _, shards := range []int{2, 4} {
		if got := run(shards); got != base {
			t.Fatalf("stats differ at %d shards:\n  base: %+v\n  got:  %+v", shards, base, got)
		}
	}
}
