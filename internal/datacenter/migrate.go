package datacenter

import (
	"fmt"

	"repro/internal/hypervisor"
	"repro/internal/mem"
)

// migrate live-migrates a guest to the host at dstIdx with iterative
// pre-copy driven by the source VM's dirty ring:
//
//  1. create the destination VM process (a fresh memslot on the target
//     host; it joins the destination's KSM scan list only at cutover);
//  2. send every mapped guest page, then repeatedly re-send only the pages
//     the guest re-dirtied while the previous round was on the wire;
//  3. when the dirty set shrinks to StopCopyPages — or MaxPrecopyRounds is
//     exhausted — pause the guest, send the final set, and cut over. The
//     downtime is exactly that final transfer's wire time.
//
// Pages travel as content descriptors (mem.ExportedPage): zero and
// generator-seeded pages are 16-byte descriptors in every mode, and under
// MigrationContent a blob whose checksum the destination's content store
// already holds is deduplicated on arrival (mem.ImportDup) and costs no
// literal bytes. MigrationNaive installs identically but charges the wire
// for descriptor + full page every time, so the two modes end in the same
// memory state and differ only in bytes-on-wire and therefore time.
//
// Every Clock.RunFor while a burst is in flight can fire traffic (the guest
// keeps dirtying pages — that is what pre-copy iterates against) and fault
// events (a host can die mid-flight). After each burst the engine
// re-validates source, destination and guest; any casualty aborts the
// migration, tears down the half-built destination VM, and resumes the
// source if it was already paused.
// Migrate triggers one deliberate live migration of guest g to the host at
// dstIdx, outside the scheduler's own rebalancing. It reports whether the
// guest cut over (false = aborted and unwound).
func (dc *Datacenter) Migrate(g *Guest, dstIdx int) bool { return dc.migrate(g, dstIdx) }

func (dc *Datacenter) migrate(g *Guest, dstIdx int) bool {
	cfg := dc.Cfg
	src := dc.hosts[g.host]
	dst := dc.hosts[dstIdx]
	srcVM := g.vm
	scale := int64(cfg.Scale)

	dstVM := dst.Host.NewVM(hypervisor.VMConfig{
		Name:          srcVM.Name(),
		GuestMemBytes: g.Spec.GuestMemBytes / scale,
		OverheadBytes: guestOverheadBytes / scale,
		Seed:          srcVM.Seed(),
	})

	srcVM.ResetDirtyLog()
	pending := srcVM.MappedGuestPages()
	rounds := 0
	for {
		rounds++
		last := len(pending) <= cfg.StopCopyPages || rounds >= cfg.MaxPrecopyRounds
		if last {
			srcVM.Pause()
		}

		var descBytes, pageBytes int64
		for _, gpfn := range pending {
			e, ok := srcVM.ExportGuestPage(gpfn)
			if !ok {
				continue // unmapped since the set was built
			}
			cls := dstVM.InstallGuestPage(gpfn, e)
			switch cls {
			case mem.ImportZero:
				dc.stats.ImportZero++
			case mem.ImportSeed:
				dc.stats.ImportSeed++
			case mem.ImportDup:
				dc.stats.ImportDup++
			case mem.ImportCopy:
				dc.stats.ImportCopy++
			}
			descBytes += DescriptorBytes
			if cfg.Migration == MigrationNaive || cls == mem.ImportCopy {
				pageBytes += int64(dst.Host.PageSize())
			}
			dc.stats.PagesSent++
		}
		dc.Net.Record(descBytes, pageBytes)
		t := dc.Net.TransferTime(descBytes + pageBytes)
		dc.Clock.RunFor(t)

		// The burst's flight time may have killed the source host, the
		// destination host, or the guest itself.
		if !src.alive || !dst.alive || !g.alive || !srcVM.Alive() || !dstVM.Alive() {
			dc.abortMigration(g, src, dst, srcVM, dstVM)
			return false
		}

		if last {
			dc.stats.DowntimeTotal += t
			if t > dc.stats.DowntimeMax {
				dc.stats.DowntimeMax = t
			}
			dc.cutover(g, src, dst, srcVM, dstVM)
			dc.stats.Migrations++
			dc.stats.PrecopyRounds += rounds
			g.Migrations++
			src.MigrationsOut++
			dst.MigrationsIn++
			return true
		}

		dirty, overflow := srcVM.DrainDirtyLog()
		if overflow {
			// The ring lost entries; conservatively resend everything.
			pending = srcVM.MappedGuestPages()
			continue
		}
		pending = pending[:0]
		base := srcVM.MemslotBase()
		for _, vpn := range dirty {
			pending = append(pending, uint64(vpn-base))
		}
		sortGPFNs(pending)
	}
}

// abortMigration unwinds a failed migration: the half-populated destination
// VM is destroyed (if its host still exists) and the source resumes serving
// (if it still exists and was already paused).
func (dc *Datacenter) abortMigration(g *Guest, src, dst *HostNode, srcVM, dstVM *hypervisor.VMProcess) {
	dc.stats.MigrationsAborted++
	if dst.alive && dstVM.Alive() {
		dst.Host.KillVM(dstVM)
		dc.checkLeaks(dst)
	}
	if src.alive && g.alive && srcVM.Alive() && srcVM.Paused() {
		srcVM.Resume()
	}
}

// cutover switches the guest from the source VM to the fully-populated
// destination VM. Teardown on the source follows the leak-safe order
// (balloon forgets the kernel first, then scanner and THP unhook, then the
// hypervisor reclaims), the guest kernel re-targets the new machine, and
// the destination registers with its host's daemons. Both hosts must pass
// the leak invariant afterwards.
func (dc *Datacenter) cutover(g *Guest, src, dst *HostNode, srcVM, dstVM *hypervisor.VMProcess) {
	if got, want := dstVM.GuestPages(), srcVM.GuestPages(); got != want {
		panic(fmt.Sprintf("datacenter: cutover size mismatch: %d != %d", got, want))
	}
	src.Balloon.DropGuest(g.kernel)
	src.Scanner.Unregister(srcVM)
	src.THP.Unregister(srcVM)
	src.Host.KillVM(srcVM)
	src.removeGuest(g)

	g.kernel.Migrate(dstVM)
	g.vm = dstVM
	g.host = dst.Index
	dst.guests = append(dst.guests, g)
	dstVM.ResetDirtyLog()
	dst.Scanner.Register(dstVM)
	dst.THP.Register(dstVM, true)
	dst.Balloon.AddGuest(g.kernel)

	dc.checkLeaks(src)
	dc.checkLeaks(dst)
}
