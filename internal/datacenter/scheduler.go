package datacenter

import (
	"math"

	"repro/internal/faults"
	"repro/internal/placement"
	"repro/internal/simclock"
)

// load is the diurnal traffic curve: a compressed day of DayLength virtual
// time over which demand swings sinusoidally between 25 % (trough) and
// 100 % (peak) of RequestsPerTick — the million-user day-night cycle every
// consumer-facing datacenter schedules around.
func (dc *Datacenter) load(now simclock.Time) float64 {
	day := float64(dc.Cfg.DayLength)
	phase := 2 * math.Pi * float64(now) / day
	return 0.25 + 0.75*(0.5-0.5*math.Cos(phase))
}

// trafficTick serves one batch of requests on every running guest. Guests
// that are dead — or paused for a migration's stop-and-copy — block their
// batch instead; the blocked count is the run's user-visible unavailability.
func (dc *Datacenter) trafficTick(now simclock.Time) {
	n := int(math.Round(float64(dc.Cfg.RequestsPerTick) * dc.load(now)))
	if n < 1 {
		n = 1
	}
	for _, g := range dc.guests {
		if !g.alive || g.vm.Paused() {
			g.Blocked += int64(n)
			dc.stats.RequestsBlocked += int64(n)
			continue
		}
		for _, w := range g.workers {
			w.RunSteadyState(n)
		}
		g.Served += int64(n)
		dc.stats.RequestsServed += int64(n)
	}
}

// Run drives the datacenter for Cfg.Horizon: traffic on its tick, the
// scheduler on its tick, the fault injector (if configured) on its own
// seeded schedule, and a final leak check over every surviving host.
func (dc *Datacenter) Run() {
	cfg := dc.Cfg
	dc.end = dc.Clock.Now() + cfg.Horizon
	if cfg.Faults != (faults.Config{}) {
		dc.injector = faults.New(dc.Clock, cfg.Faults, dc)
		dc.injector.Instrument(dc.Metrics)
		dc.injector.Start()
	}
	end := dc.end
	dc.Clock.Every(cfg.TrafficTick, func(now simclock.Time) bool {
		if now > end {
			return false
		}
		dc.trafficTick(now)
		return true
	})
	for dc.Clock.Now() < end {
		next := dc.Clock.Now() + cfg.SchedTick
		if next > end {
			next = end
		}
		dc.Clock.RunUntil(next)
		dc.schedulerTick(dc.Clock.Now())
	}
	dc.ReleaseSpike()
	for _, h := range dc.hosts {
		dc.checkLeaks(h)
	}
}

// InjectorStats returns the fault injector's event counts (zero value when
// no faults were configured).
func (dc *Datacenter) InjectorStats() faults.Stats {
	if dc.injector == nil {
		return faults.Stats{}
	}
	return dc.injector.Stats()
}

// schedulerTick is one pass of the placement/rebalancing loop:
//
//  1. drain every running guest's dirty ring, feeding the working-set EWMA
//     that cold-guest decisions (balloon, migration victims) use;
//  2. reboot guests orphaned by host failures once RestartDelay has passed;
//  3. evacuate draining hosts via live migration;
//  4. relieve memory pressure by migrating the coldest guest off any host
//     below the free watermark;
//  5. let each host's balloon manager inflate or deflate.
func (dc *Datacenter) schedulerTick(now simclock.Time) {
	cfg := dc.Cfg

	for _, g := range dc.guests {
		if g.alive && !g.vm.Paused() {
			vpns, _ := g.vm.DrainDirtyLog()
			g.vm.ObserveDirtyDrain(len(vpns))
		}
	}

	for _, g := range dc.guests {
		if !g.alive && now-g.diedAt >= cfg.RestartDelay {
			dc.restartGuest(g)
		}
	}

	if cfg.Migration != MigrationOff {
		for _, h := range dc.hosts {
			if !h.alive || !h.draining || len(h.guests) == 0 {
				continue
			}
			moved := 0
			// h.guests shrinks as migrations complete; always evacuate the
			// current head.
			for moved < cfg.MigrateMaxPerTick && len(h.guests) > 0 {
				g := h.guests[0]
				dst := dc.pickMigrationTarget(g, h.Index)
				if dst < 0 || !dc.migrate(g, dst) {
					break
				}
				moved++
			}
		}

		for _, h := range dc.hosts {
			if !h.alive || h.draining || len(h.guests) < 2 {
				continue
			}
			if h.Host.FreeBytes() >= cfg.FreeWatermarkBytes {
				continue
			}
			g := coldestGuest(h)
			if g == nil {
				continue
			}
			if dst := dc.pickMigrationTarget(g, h.Index); dst >= 0 {
				dc.migrate(g, dst)
			}
		}
	}

	for _, h := range dc.hosts {
		if h.alive {
			h.Balloon.Balance()
			h.Balloon.Deflate()
		}
	}
}

// coldestGuest picks the resident guest with the smallest working-set
// estimate; guests without an estimate are treated as hot. Ties keep
// arrival order. Returns nil when every guest is estimate-less.
func coldestGuest(h *HostNode) *Guest {
	var best *Guest
	bestWS := int(^uint(0) >> 1)
	for _, g := range h.guests {
		if ws, ok := g.vm.WorkingSetPages(); ok && ws < bestWS {
			best, bestWS = g, ws
		}
	}
	return best
}

// pickMigrationTarget chooses where to move a guest: among alive,
// non-draining hosts with a free seat (excluding the source), the
// similarity policy scores each candidate by the fingerprint overlap with
// its resident guests — colocating mergeable content, exactly as at initial
// placement — and other policies take the most free memory. Ties fall to
// free memory and then the lowest index. Returns -1 when no host can take
// the guest.
func (dc *Datacenter) pickMigrationTarget(g *Guest, srcIdx int) int {
	best := -1
	bestScore := -1
	var bestFree int64
	for _, h := range dc.hosts {
		if !h.alive || h.draining || h.Index == srcIdx || len(h.guests) >= dc.Cfg.GuestsPerHost {
			continue
		}
		score := 0
		if dc.Cfg.Placement == PlaceBySimilarity && g.fp != nil {
			for _, r := range h.guests {
				score += placement.Intersect(g.fp, r.fp)
			}
		}
		free := h.Host.FreeBytes()
		if best < 0 || score > bestScore || (score == bestScore && free > bestFree) {
			best, bestScore, bestFree = h.Index, score, free
		}
	}
	return best
}
