package datacenter

import "repro/internal/simclock"

// Wire-format constants. A page descriptor carries a kind tag, a content
// checksum, and the guest frame number — 16 bytes on the wire. Naive
// migration moves the same header plus the full page for every page;
// content-addressed migration moves the header always and the page bytes
// only when the destination has never seen the content.
const (
	// DescriptorBytes is the per-page wire header (kind + checksum + gpfn).
	DescriptorBytes = 16
)

// Network is the simulated migration fabric: a shared full-duplex link
// model with fixed bandwidth and per-transfer latency. Transfers are
// serialized by the callers (one migration at a time per engine), so the
// model needs no queueing — TransferTime answers how long a burst of
// bytes occupies the wire.
type Network struct {
	bitsPerMicro int64 // link rate in bits per simulated microsecond
	latency      simclock.Time

	stats NetworkStats
}

// NetworkStats aggregates wire traffic.
type NetworkStats struct {
	Transfers int64 // bursts sent (pre-copy rounds + final stop-and-copy)
	DescBytes int64 // descriptor header bytes
	PageBytes int64 // literal page-content bytes
}

// TotalBytes is all bytes that crossed the wire.
func (s NetworkStats) TotalBytes() int64 { return s.DescBytes + s.PageBytes }

// NewNetwork builds a link of the given rate. gbps ≤ 0 defaults to
// 10 Gb/s; latency ≤ 0 defaults to 50 µs.
func NewNetwork(gbps float64, latency simclock.Time) *Network {
	if gbps <= 0 {
		gbps = 10
	}
	if latency <= 0 {
		latency = 50 * simclock.Microsecond
	}
	// 1 Gb/s = 1000 bits per microsecond. Truncating to integer keeps all
	// subsequent arithmetic exact, which the cross--jobs determinism
	// criterion depends on.
	bpm := int64(gbps * 1000)
	if bpm < 1 {
		bpm = 1
	}
	return &Network{bitsPerMicro: bpm, latency: latency}
}

// TransferTime reports how long a burst of bytes occupies the wire:
// latency plus the serialization delay, rounded up to the clock's
// microsecond tick.
func (n *Network) TransferTime(bytes int64) simclock.Time {
	bits := bytes * 8
	ser := (bits + n.bitsPerMicro - 1) / n.bitsPerMicro
	return n.latency + simclock.Time(ser)*simclock.Microsecond
}

// Record accounts one burst's traffic.
func (n *Network) Record(descBytes, pageBytes int64) {
	n.stats.Transfers++
	n.stats.DescBytes += descBytes
	n.stats.PageBytes += pageBytes
}

// Stats returns a snapshot of the traffic counters.
func (n *Network) Stats() NetworkStats { return n.stats }
