package datacenter

import (
	"testing"

	"repro/internal/faults"
	"repro/internal/simclock"
	"repro/internal/workload"
)

// testScale keeps the simulated machines small enough for fast tests.
const testScale = 48

func testConfig() Config {
	return Config{
		Scale:         testScale,
		Hosts:         2,
		Guests:        2,
		Specs:         []workload.Spec{workload.DayTrader()},
		SharedClasses: true,
		Migration:     MigrationContent,
		BaseSeed:      7,
	}
}

// TestMigrationMovesGuestIntact live-migrates a quiesced guest and checks
// the destination holds byte-identical guest memory, both hosts pass the
// leak invariant, and the engine converged in two rounds (full copy + empty
// stop-and-copy).
func TestMigrationMovesGuestIntact(t *testing.T) {
	dc := New(testConfig())
	g := dc.guests[0]
	src := g.host
	dst := 1 - src

	before := make(map[uint64]uint64)
	for _, gpfn := range g.vm.MappedGuestPages() {
		if e, ok := g.vm.ExportGuestPage(gpfn); ok {
			before[gpfn] = e.Sum
		}
	}
	if len(before) == 0 {
		t.Fatal("guest has no mapped pages")
	}

	if !dc.migrate(g, dst) {
		t.Fatal("migration failed")
	}
	st := dc.Stats()
	if st.Migrations != 1 || st.MigrationsAborted != 0 {
		t.Fatalf("stats = %+v, want 1 completed migration", st)
	}
	if g.host != dst || !g.alive {
		t.Fatalf("guest on host %d alive=%v, want host %d alive", g.host, g.alive, dst)
	}
	if g.kernel.VM() != g.vm {
		t.Fatal("guest kernel not re-targeted to the destination VM")
	}
	// A quiesced guest dirties nothing between rounds: round 1 sends all,
	// round 2 sends the empty dirty set during the pause.
	if st.PrecopyRounds != 2 {
		t.Errorf("PrecopyRounds = %d, want 2", st.PrecopyRounds)
	}
	if st.DowntimeMax <= 0 {
		t.Error("no downtime recorded")
	}
	if st.LeakFailures != 0 {
		t.Fatalf("leak failures: %v", dc.LeakError())
	}

	for gpfn, want := range before {
		e, ok := g.vm.ExportGuestPage(gpfn)
		if !ok {
			t.Fatalf("gpfn %d unmapped on destination", gpfn)
		}
		if e.Sum != want {
			t.Fatalf("gpfn %d checksum changed across migration", gpfn)
		}
	}
	// The workload must still run on the destination.
	for _, w := range g.workers {
		w.RunSteadyState(4)
	}
	if err := dc.hosts[dst].Host.CheckLeaks(dc.hosts[dst].Scanner.StableFrames()); err != nil {
		t.Fatalf("destination leaks after post-migration traffic: %v", err)
	}
}

// TestContentMigrationBeatsNaive is the wire-protocol acceptance criterion:
// on a seed-heavy workload, content-addressed pre-copy must move at least 5×
// fewer bytes than the naive byte-copy baseline. Tuscany with the shared
// class cache and AOT code is the seed-heavy case: most of its footprint is
// generator-seeded kernel/daemon memory (16-byte descriptors on the wire)
// and cache file pages the destination's sibling guests already hold
// (deduplicated on arrival); only genuinely private JVM state — heap
// objects, RAMClass, session buffers — still travels as literal bytes.
func TestContentMigrationBeatsNaive(t *testing.T) {
	bytesFor := func(mode MigrationMode) int64 {
		cfg := testConfig()
		cfg.Specs = []workload.Spec{workload.Tuscany()}
		cfg.SharedAOT = true
		cfg.Guests = 4
		cfg.Migration = mode
		dc := New(cfg)
		g := dc.guests[0]
		if !dc.migrate(g, 1-g.host) {
			t.Fatalf("%v migration failed", mode)
		}
		return dc.Net.Stats().TotalBytes()
	}
	naive := bytesFor(MigrationNaive)
	content := bytesFor(MigrationContent)
	if content <= 0 || naive <= 0 {
		t.Fatalf("no traffic recorded: naive=%d content=%d", naive, content)
	}
	if naive < 5*content {
		t.Fatalf("content mode moved %d bytes vs naive %d — less than 5× saving", content, naive)
	}
}

// TestKillSourceHostMidPrecopy fails the source host while the first
// pre-copy burst is on the wire (satellite: the abort path must leave no
// residue). The guest dies with its host, the half-built destination VM is
// torn down leak-free, and the scheduler later reboots the guest on the
// surviving host.
func TestKillSourceHostMidPrecopy(t *testing.T) {
	dc := New(testConfig())
	g := dc.guests[0]
	src := g.host
	dst := 1 - src

	// The first burst's flight time is at least the 50 µs link latency, so
	// an event 10 µs in lands mid-transfer.
	dc.Clock.Schedule(10*simclock.Microsecond, func(simclock.Time) {
		dc.KillHost(src)
	})
	if dc.migrate(g, dst) {
		t.Fatal("migration reported success with a dead source")
	}
	st := dc.Stats()
	if st.MigrationsAborted != 1 || st.Migrations != 0 {
		t.Fatalf("stats = %+v, want 1 aborted migration", st)
	}
	if g.alive {
		t.Fatal("guest survived its host's death")
	}
	// The destination keeps its own resident guest; only the half-built
	// migration target (which shares the migrating guest's name) must be
	// gone.
	for _, vm := range dc.hosts[dst].Host.VMs() {
		if vm.Alive() && vm.Name() == "guest-1" {
			t.Fatalf("destination VM %s not torn down after abort", vm.Name())
		}
	}
	if err := dc.hosts[dst].Host.CheckLeaks(dc.hosts[dst].Scanner.StableFrames()); err != nil {
		t.Fatalf("destination leaks after abort: %v", err)
	}

	// The scheduler reboots the orphan once RestartDelay passes.
	dc.Clock.RunFor(dc.Cfg.RestartDelay)
	dc.schedulerTick(dc.Clock.Now())
	if !g.alive || g.host != dst {
		t.Fatalf("guest alive=%v host=%d, want rebooted on host %d", g.alive, g.host, dst)
	}
	if st := dc.Stats(); st.LeakFailures != 0 {
		t.Fatalf("leak failures: %v", dc.LeakError())
	}
}

// TestKillDestHostDuringStopAndCopy fails the destination while the final
// (stop-and-copy) burst is in flight: the source guest must resume serving
// and stay leak-free.
func TestKillDestHostDuringStopAndCopy(t *testing.T) {
	cfg := testConfig()
	// One round means the engine pauses the guest immediately: the kill
	// lands during the downtime window.
	cfg.MaxPrecopyRounds = 1
	dc := New(cfg)
	g := dc.guests[0]
	src := g.host
	dst := 1 - src

	dc.Clock.Schedule(10*simclock.Microsecond, func(simclock.Time) {
		dc.KillHost(dst)
	})
	if dc.migrate(g, dst) {
		t.Fatal("migration reported success with a dead destination")
	}
	if !g.alive || g.host != src {
		t.Fatalf("guest alive=%v host=%d, want still on source %d", g.alive, g.host, src)
	}
	if g.vm.Paused() {
		t.Fatal("source VM left paused after abort")
	}
	for _, w := range g.workers {
		w.RunSteadyState(4)
	}
	if err := dc.hosts[src].Host.CheckLeaks(dc.hosts[src].Scanner.StableFrames()); err != nil {
		t.Fatalf("source leaks after abort: %v", err)
	}
}

// TestDrainEvacuatesViaMigration runs the full loop: a drained host's
// guests move off it through the scheduler, leak-free.
func TestDrainEvacuatesViaMigration(t *testing.T) {
	cfg := testConfig()
	cfg.Hosts = 2
	cfg.Guests = 2
	cfg.Horizon = 20 * simclock.Second
	dc := New(cfg)

	occupied := -1
	for i, h := range dc.hosts {
		if len(h.guests) > 0 {
			occupied = i
			break
		}
	}
	dc.DrainHost(occupied)
	dc.Run()

	st := dc.Stats()
	if st.Migrations == 0 {
		t.Fatal("drain produced no migrations")
	}
	if len(dc.hosts[occupied].guests) != 0 {
		t.Fatalf("drained host still has %d guests", len(dc.hosts[occupied].guests))
	}
	if st.LeakFailures != 0 {
		t.Fatalf("leak failures: %v", dc.LeakError())
	}
	if st.RequestsServed == 0 {
		t.Fatal("no traffic served")
	}
}

// TestDatacenterDeterminism runs the same faulted configuration twice and
// requires identical stats, wire traffic and cluster-wide sharing.
func TestDatacenterDeterminism(t *testing.T) {
	run := func(enableMetrics bool) (Stats, NetworkStats, faults.Stats, int64) {
		cfg := testConfig()
		cfg.Hosts = 3
		cfg.Guests = 3
		cfg.Horizon = 30 * simclock.Second
		cfg.EnableMetrics = enableMetrics
		cfg.Faults = faults.Config{
			Seed:           99,
			Horizon:        30 * simclock.Second,
			KillEvery:      11 * simclock.Second,
			HostKillEvery:  13 * simclock.Second,
			HostDrainEvery: 9 * simclock.Second,
			StallEvery:     7 * simclock.Second,
		}
		dc := New(cfg)
		dc.Run()
		if enableMetrics {
			if dc.Metrics == nil || dc.Metrics.Ticks() == 0 {
				t.Fatal("metrics enabled but never sampled")
			}
		}
		return dc.Stats(), dc.Net.Stats(), dc.InjectorStats(), dc.ClusterSavedBytes()
	}
	s1, n1, f1, saved1 := run(false)
	// The second run samples metrics throughout: identical figures prove
	// both determinism and that sampling is read-only.
	s2, n2, f2, saved2 := run(true)
	if s1 != s2 {
		t.Errorf("stats diverged:\n%+v\n%+v", s1, s2)
	}
	if n1 != n2 {
		t.Errorf("network stats diverged:\n%+v\n%+v", n1, n2)
	}
	if f1 != f2 {
		t.Errorf("fault stats diverged:\n%+v\n%+v", f1, f2)
	}
	if saved1 != saved2 {
		t.Errorf("cluster savings diverged: %d vs %d", saved1, saved2)
	}
	if s1.LeakFailures != 0 {
		t.Errorf("leak failures under faults: %d", s1.LeakFailures)
	}
}
