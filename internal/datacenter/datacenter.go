// Package datacenter models a multi-host cluster built from the simulator's
// single-host pieces: every host is a full hypervisor + KSM + THP + balloon
// stack on one shared virtual clock, a scheduler places and rebalances
// guests under a diurnal traffic curve, and a live-migration engine moves
// guests between hosts with iterative pre-copy.
//
// The migration wire protocol is the paper's transparent-page-sharing idea
// turned inside out: instead of merging identical pages after the fact, the
// engine transfers content *descriptors* (zero / generator-seed / blob
// checksum, 16 bytes each — mem.ExportedPage). A page whose content the
// destination host has already seen costs only its descriptor; literal page
// bytes cross the wire only when the content is genuinely new there. On the
// seed-heavy guests this repository models (identical kernels, identical
// class caches), that cuts migration traffic by well over the 5× the
// datacenter sweep asserts.
package datacenter

import (
	"fmt"
	"sort"

	"repro/internal/balloon"
	"repro/internal/cds"
	"repro/internal/classlib"
	"repro/internal/faults"
	"repro/internal/guestos"
	"repro/internal/hypervisor"
	"repro/internal/jvm"
	"repro/internal/ksm"
	"repro/internal/mem"
	"repro/internal/metrics"
	"repro/internal/placement"
	"repro/internal/simclock"
	"repro/internal/thp"
	"repro/internal/workload"
)

// Platform constants, duplicated from internal/core (which imports this
// package, so the dependency cannot point the other way): the Table I
// BladeCenter LS21 host and the calibrated guest kernel sizing.
const (
	hostRAMBytes           = int64(6) << 30
	hostKernelReserveBytes = int64(1280) << 20
	guestKernelVersion     = "2.6.18-194.3.1.el5debug"
	guestOverheadBytes     = int64(24) << 20
	kernelTextBytes        = int64(16) << 20
	kernelDataBytes        = int64(30) << 20
	kernelSlabBytes        = int64(50) << 20
	cachePath              = "/opt/middleware/javasharedresources/classCache"
)

// MigrationMode selects the live-migration wire protocol.
type MigrationMode int

const (
	// MigrationOff disables migration: drains expire unserved and dead
	// guests restart from scratch on another host.
	MigrationOff MigrationMode = iota
	// MigrationNaive transfers every page as descriptor + full literal
	// bytes — the classic pre-copy byte-copy baseline.
	MigrationNaive
	// MigrationContent transfers descriptors always and literal bytes only
	// for content the destination has never seen (mem.ImportCopy).
	MigrationContent
)

func (m MigrationMode) String() string {
	switch m {
	case MigrationOff:
		return "off"
	case MigrationNaive:
		return "naive"
	case MigrationContent:
		return "content"
	}
	return fmt.Sprintf("MigrationMode(%d)", int(m))
}

// PlacementPolicy selects the initial guest placement.
type PlacementPolicy int

const (
	// PlaceRoundRobin spreads guests without looking at content.
	PlaceRoundRobin PlacementPolicy = iota
	// PlaceBySimilarity fingerprints each workload solo and packs guests
	// with overlapping memory content onto the same hosts (Memory Buddies),
	// so KSM has identical pages to merge. Migration targets are scored the
	// same way.
	PlaceBySimilarity
)

func (p PlacementPolicy) String() string {
	if p == PlaceBySimilarity {
		return "similarity"
	}
	return "roundrobin"
}

// Config describes one datacenter run.
type Config struct {
	// Scale divides all byte quantities, as in core.ClusterConfig (0 = 16).
	Scale int
	// Hosts is the number of physical hosts (0 = 3).
	Hosts int
	// GuestsPerHost caps how many guests the scheduler packs per host
	// (0 = 4).
	GuestsPerHost int
	// Guests is the number of guest slots (0 = 2×Hosts). Each slot runs
	// Specs[slot%len(Specs)].
	Guests int
	// Specs lists the workloads (required).
	Specs []workload.Spec
	// SharedClasses enables the paper's §4 class cache on every guest.
	SharedClasses bool
	// SharedAOT additionally populates and serves hot-method code from the
	// cache's AOT section (requires SharedClasses). Because AOT code pages
	// are cache file pages, they are byte-identical across guests of one
	// workload — which also makes them free on the migration wire once the
	// destination holds a sibling guest.
	SharedAOT bool
	// Placement is the initial packing policy.
	Placement PlacementPolicy
	// Migration selects the wire protocol (MigrationOff disables moves).
	Migration MigrationMode
	// THPPolicy enables per-host huge-page collapse daemons (zero = off).
	THPPolicy thp.Policy

	// NetGbps is the migration link rate (0 = 10 Gb/s); NetLatency the
	// per-burst latency (0 = 50 µs).
	NetGbps    float64
	NetLatency simclock.Time

	// BaseSeed perturbs every per-guest seed.
	BaseSeed mem.Seed

	// EnableMetrics attaches a metrics registry at Datacenter.Metrics,
	// sampling migration, wire and fault series on the shared clock.
	EnableMetrics bool

	// TrafficTick is the request-batch cadence (0 = 500 ms). Every tick each
	// running guest serves RequestsPerTick requests scaled by the diurnal
	// load curve; DayLength is one full day of that curve (0 = 1 min of
	// virtual time — a compressed million-user day: load swings between 25 %
	// in the trough and 100 % at the peak).
	TrafficTick     simclock.Time
	DayLength       simclock.Time
	RequestsPerTick int

	// SchedTick is the scheduler cadence (0 = 1 s): ring drains, restarts,
	// evacuations, pressure rebalancing, ballooning.
	SchedTick simclock.Time
	// Horizon is how long Run drives the cluster (0 = 2 min).
	Horizon simclock.Time

	// MaxPrecopyRounds caps pre-copy iterations before stop-and-copy
	// (0 = 6); StopCopyPages is the dirty-set size at which the engine
	// stops copying live and pauses the guest (0 = 32).
	MaxPrecopyRounds int
	StopCopyPages    int
	// MigrateMaxPerTick caps evacuation migrations per scheduler tick
	// (0 = 2).
	MigrateMaxPerTick int

	// RestartDelay is how long a guest orphaned by a host failure stays
	// down before the scheduler reboots it elsewhere (0 = 3 s).
	RestartDelay simclock.Time
	// FreeWatermarkBytes triggers pressure rebalancing when a host's free
	// memory falls below it (0 = 512 pages).
	FreeWatermarkBytes int64

	// Faults, when non-zero, runs a fault injector against the datacenter
	// (guest kills, host kills, host drains, scanner stalls) on the shared
	// clock. The zero value injects nothing.
	Faults faults.Config
}

func (cfg Config) withDefaults() Config {
	if cfg.Scale == 0 {
		cfg.Scale = 16
	}
	if cfg.Hosts == 0 {
		cfg.Hosts = 3
	}
	if cfg.GuestsPerHost == 0 {
		cfg.GuestsPerHost = 4
	}
	if cfg.Guests == 0 {
		cfg.Guests = 2 * cfg.Hosts
	}
	if cfg.TrafficTick == 0 {
		cfg.TrafficTick = 500 * simclock.Millisecond
	}
	if cfg.DayLength == 0 {
		cfg.DayLength = simclock.Minute
	}
	if cfg.RequestsPerTick == 0 {
		cfg.RequestsPerTick = 4
	}
	if cfg.SchedTick == 0 {
		cfg.SchedTick = simclock.Second
	}
	if cfg.Horizon == 0 {
		cfg.Horizon = 2 * simclock.Minute
	}
	if cfg.MaxPrecopyRounds == 0 {
		cfg.MaxPrecopyRounds = 6
	}
	if cfg.StopCopyPages == 0 {
		cfg.StopCopyPages = 32
	}
	if cfg.MigrateMaxPerTick == 0 {
		cfg.MigrateMaxPerTick = 2
	}
	if cfg.RestartDelay == 0 {
		cfg.RestartDelay = 3 * simclock.Second
	}
	if cfg.FreeWatermarkBytes == 0 {
		cfg.FreeWatermarkBytes = 512 * int64(mem.DefaultPageSize)
	}
	return cfg
}

// HostNode is one physical machine: the single-host stack the rest of the
// repository builds, plus scheduler state.
type HostNode struct {
	Index   int
	Host    *hypervisor.Host
	Scanner *ksm.KSM
	// THP is nil unless Config.THPPolicy enables it (the thp API is
	// nil-safe).
	THP     *thp.Daemon
	Balloon *balloon.Manager

	alive    bool
	draining bool
	guests   []*Guest // resident guests in arrival order

	MigrationsIn  int
	MigrationsOut int
}

// Alive reports whether the host is up.
func (h *HostNode) Alive() bool { return h.alive }

// Draining reports whether the host is marked for evacuation.
func (h *HostNode) Draining() bool { return h.draining }

// Guests returns the resident guests in arrival order.
func (h *HostNode) Guests() []*Guest { return h.guests }

func (h *HostNode) removeGuest(g *Guest) {
	for i, r := range h.guests {
		if r == g {
			h.guests = append(h.guests[:i], h.guests[i+1:]...)
			return
		}
	}
}

// Guest is one guest slot: a workload identity that survives restarts and
// migrations while the VM process backing it changes.
type Guest struct {
	ID   int
	Spec workload.Spec

	gen     int
	host    int // host index, -1 while dead
	vm      *hypervisor.VMProcess
	kernel  *guestos.Kernel
	workers []*workload.Instance
	alive   bool
	diedAt  simclock.Time
	// fp is the slot's content fingerprint in sorted form (similarity
	// placement only; nil under round-robin).
	fp placement.SortedFP

	Migrations int
	Served     int64
	Blocked    int64
}

// Alive reports whether the guest is currently running.
func (g *Guest) Alive() bool { return g.alive }

// HostIndex reports the guest's current host (-1 while dead).
func (g *Guest) HostIndex() int { return g.host }

// VM returns the VM process currently backing the guest (nil or stale while
// dead).
func (g *Guest) VM() *hypervisor.VMProcess { return g.vm }

// Kernel returns the guest kernel (nil while dead).
func (g *Guest) Kernel() *guestos.Kernel { return g.kernel }

// Stats aggregates datacenter-level events.
type Stats struct {
	Migrations        int
	MigrationsAborted int
	PrecopyRounds     int   // across completed migrations
	PagesSent         int64 // page transfers, all rounds, completed or not

	// Import classification of every transferred page (content and naive
	// modes install identically; only the wire accounting differs).
	ImportZero int64
	ImportSeed int64
	ImportDup  int64
	ImportCopy int64

	// DowntimeTotal/DowntimeMax is the stop-and-copy pause across completed
	// migrations: the final dirty set's transfer time.
	DowntimeTotal simclock.Time
	DowntimeMax   simclock.Time

	GuestRestarts int // scheduler reboots of dead guests

	LeakChecks   int
	LeakFailures int

	RequestsServed  int64
	RequestsBlocked int64
}

// Datacenter is a running multi-host cluster.
type Datacenter struct {
	Cfg   Config
	Clock *simclock.Clock
	Net   *Network
	// Metrics samples cluster-level series (migrations, wire bytes, alive
	// guests, fault counters) on the shared clock when Config.EnableMetrics
	// is set; nil otherwise. Sampling is read-only, so figures are
	// unchanged by it.
	Metrics *metrics.Registry

	corpus *classlib.Corpus
	images map[string]*cds.Image

	hosts  []*HostNode
	guests []*Guest

	injector *faults.Injector

	stats       Stats
	firstLeak   error
	provisioned bool
	end         simclock.Time
	spiked      []int // host indices holding claimed spike frames
}

// HostNodes returns the host nodes (dead hosts are replaced in place on
// restart).
func (dc *Datacenter) HostNodes() []*HostNode { return dc.hosts }

// GuestSlots returns the guest slots.
func (dc *Datacenter) GuestSlots() []*Guest { return dc.guests }

// Stats returns the event counters.
func (dc *Datacenter) Stats() Stats { return dc.stats }

// LeakError returns the first leak-invariant failure, if any.
func (dc *Datacenter) LeakError() error { return dc.firstLeak }

// ClusterSavedBytes sums KSM savings across the alive hosts.
func (dc *Datacenter) ClusterSavedBytes() int64 {
	var total int64
	for _, h := range dc.hosts {
		if h.alive {
			total += h.Scanner.Stats().SavedBytes
		}
	}
	return total
}

// New assembles the hosts, fingerprints and places the guests, boots them,
// and runs the provisioning warm-up. The datacenter is then ready for Run.
func New(cfg Config) *Datacenter {
	cfg = cfg.withDefaults()
	if len(cfg.Specs) == 0 {
		panic("datacenter: no workload specs")
	}
	if cfg.Guests > cfg.Hosts*cfg.GuestsPerHost {
		panic(fmt.Sprintf("datacenter: %d guests exceed %d hosts × %d seats",
			cfg.Guests, cfg.Hosts, cfg.GuestsPerHost))
	}
	dc := &Datacenter{
		Cfg:    cfg,
		Clock:  simclock.New(),
		Net:    NewNetwork(cfg.NetGbps, cfg.NetLatency),
		corpus: classlib.NewCorpus(jvm.RuntimeVersion, cfg.Scale),
		images: make(map[string]*cds.Image),
	}
	if cfg.EnableMetrics {
		dc.Metrics = metrics.New(dc.Clock, metrics.Config{})
		dc.instrument()
		// Started before the first host boots so the series cover the
		// provisioning ramp, not just the scheduled run.
		dc.Metrics.Start()
	}
	for i := 0; i < cfg.Hosts; i++ {
		dc.hosts = append(dc.hosts, dc.newHostNode(i))
	}

	reqs := make([]placement.Request, cfg.Guests)
	for i := range reqs {
		reqs[i].Spec = cfg.Specs[i%len(cfg.Specs)]
	}
	var sortedFPs map[string]placement.SortedFP
	var pl placement.Placement
	if cfg.Placement == PlaceBySimilarity {
		// One solo fingerprint run per distinct workload, on throwaway
		// clocks so the shared timeline is untouched.
		fps := make(map[string]placement.Fingerprint)
		sortedFPs = make(map[string]placement.SortedFP)
		for _, spec := range cfg.Specs {
			if _, ok := fps[spec.Name]; ok {
				continue
			}
			fp := dc.fingerprintSpec(spec)
			fps[spec.Name] = fp
			sortedFPs[spec.Name] = fp.Sorted()
		}
		for i := range reqs {
			reqs[i].Fingerprint = fps[reqs[i].Spec.Name]
		}
		pl = placement.BySimilarity(reqs, cfg.Hosts, cfg.GuestsPerHost)
	} else {
		pl = placement.RoundRobin(cfg.Guests, cfg.Hosts)
	}

	assigned := make([]int, cfg.Guests)
	for h, bin := range pl {
		for _, i := range bin {
			assigned[i] = h
		}
	}
	for i := 0; i < cfg.Guests; i++ {
		g := &Guest{ID: i, Spec: reqs[i].Spec, host: -1}
		if sortedFPs != nil {
			g.fp = sortedFPs[g.Spec.Name]
		}
		dc.guests = append(dc.guests, g)
		h := dc.hosts[assigned[i]]
		dc.bootGuestOn(h, g)
		// Sequential provisioning: let the host's scanner absorb this boot
		// before the next guest arrives, as in core.BuildCluster.
		dc.Clock.RunFor(simclock.Time(dc.hostGuestPages(h)/10000+1) * 100 * simclock.Millisecond)
	}

	// Warm-up traffic in slices, interleaved with fast scanning, then drop
	// every scanner to the steady rate.
	const slices = 2
	for s := 0; s < slices; s++ {
		for _, g := range dc.guests {
			for _, w := range g.workers {
				n := w.WarmupTarget() / slices
				if n < 1 {
					n = 1
				}
				w.RunSteadyState(n)
			}
		}
		dc.Clock.RunFor(simclock.Time(dc.totalGuestPages()/10000+1) * 100 * simclock.Millisecond)
	}
	for _, h := range dc.hosts {
		h.Scanner.SetPagesToScan(1000)
	}
	dc.provisioned = true
	return dc
}

// newHostNode builds one host stack. Hosts created after provisioning
// (failure restarts) start at the steady scan rate directly.
func (dc *Datacenter) newHostNode(idx int) *HostNode {
	cfg := dc.Cfg
	scale := int64(cfg.Scale)
	host := hypervisor.NewHost(hypervisor.Config{
		// Distinct names seed distinct host-kernel reserve content.
		Name:               fmt.Sprintf("host-%d", idx),
		RAMBytes:           hostRAMBytes / scale,
		KernelReserveBytes: hostKernelReserveBytes / scale,
		DirtyLog:           true,
	}, dc.Clock)
	kcfg := ksm.DefaultConfig()
	kcfg.PagesToScan = 10000
	if dc.provisioned {
		kcfg.PagesToScan = 1000
	}
	sc := ksm.New(host, kcfg)
	sc.Start()
	h := &HostNode{
		Index:   idx,
		Host:    host,
		Scanner: sc,
		Balloon: balloon.NewManager(host, nil, balloon.Config{}),
		alive:   true,
	}
	if cfg.THPPolicy != thp.PolicyNever {
		tcfg := thp.DefaultConfig()
		tcfg.Policy = cfg.THPPolicy
		h.THP = thp.New(host, tcfg)
		h.THP.Start()
	}
	return h
}

// bootGuestOn (re)boots a guest slot on the given host, mirroring
// core.bootGuest: fresh VM process, guest kernel, daemons, workload, then
// scanner/THP/balloon registration.
func (dc *Datacenter) bootGuestOn(h *HostNode, g *Guest) {
	cfg := dc.Cfg
	scale := int64(cfg.Scale)
	seed := mem.Combine(cfg.BaseSeed, mem.HashString("guest"), mem.Seed(g.ID+1))
	if g.gen > 0 {
		seed = mem.Combine(seed, mem.HashString("restart"), mem.Seed(g.gen))
	}
	vmp := h.Host.NewVM(hypervisor.VMConfig{
		Name:          fmt.Sprintf("guest-%d", g.ID+1),
		GuestMemBytes: g.Spec.GuestMemBytes / scale,
		OverheadBytes: guestOverheadBytes / scale,
		Seed:          seed,
	})
	k := guestos.Boot(vmp, guestos.KernelConfig{
		Version:   guestKernelVersion,
		TextBytes: kernelTextBytes / scale,
		DataBytes: kernelDataBytes / scale,
		SlabBytes: kernelSlabBytes / scale,
	})
	dc.spawnDaemons(k)
	dcfg := workload.DeployConfig{Scale: cfg.Scale, DeferWarmup: true}
	if cfg.SharedClasses {
		img := dc.cacheImage(g.Spec)
		k.FS().Install(&guestos.File{Path: cachePath, Data: img.FileBytes(dc.corpus)})
		dcfg.SharedClasses = true
		dcfg.CacheImage = img
		dcfg.CachePath = cachePath
		dcfg.SharedAOT = cfg.SharedAOT
	}
	w := workload.Deploy(k, dc.corpus, g.Spec, dcfg)

	g.vm = vmp
	g.kernel = k
	g.workers = []*workload.Instance{w}
	g.alive = true
	g.host = h.Index
	h.guests = append(h.guests, g)
	h.Scanner.Register(vmp)
	h.THP.Register(vmp, true)
	h.Balloon.AddGuest(k)
}

// instrument registers datacenter-level gauges on the metrics registry.
// All probes are read-only views of simulation state, which is what keeps
// a metrics-on run bit-identical to a metrics-off run.
func (dc *Datacenter) instrument() {
	r := dc.Metrics
	r.Gauge("datacenter.migrations", func() float64 { return float64(dc.stats.Migrations) })
	r.Gauge("datacenter.migrations_aborted", func() float64 { return float64(dc.stats.MigrationsAborted) })
	r.Gauge("datacenter.pages_sent", func() float64 { return float64(dc.stats.PagesSent) })
	r.Gauge("datacenter.wire_bytes", func() float64 { return float64(dc.Net.Stats().TotalBytes()) })
	r.Gauge("datacenter.requests_served", func() float64 { return float64(dc.stats.RequestsServed) })
	r.Gauge("datacenter.requests_blocked", func() float64 { return float64(dc.stats.RequestsBlocked) })
	r.Gauge("datacenter.guests_alive", func() float64 {
		alive := 0
		for _, g := range dc.guests {
			if g.alive {
				alive++
			}
		}
		return float64(alive)
	})
	r.Gauge("datacenter.hosts_alive", func() float64 {
		alive := 0
		for _, h := range dc.hosts {
			if h.alive {
				alive++
			}
		}
		return float64(alive)
	})
	r.Gauge("datacenter.cluster_saved_bytes", func() float64 {
		return float64(dc.ClusterSavedBytes())
	})
}

// cacheImage returns the cold-run class cache for a workload, built once
// per cache name and installed into every guest — §4.B's "copy the file to
// all of the VMs".
func (dc *Datacenter) cacheImage(spec workload.Spec) *cds.Image {
	if img, ok := dc.images[spec.CacheName]; ok {
		return img
	}
	var img *cds.Image
	if dc.Cfg.SharedAOT {
		img = workload.BuildCacheAOT(dc.corpus, spec, dc.Cfg.Scale, 20)
	} else {
		img = workload.BuildCache(dc.corpus, spec, dc.Cfg.Scale)
	}
	dc.images[spec.CacheName] = img
	return img
}

// spawnDaemons creates the guest's small native processes, as in
// core.spawnDaemons.
func (dc *Datacenter) spawnDaemons(k *guestos.Kernel) {
	scale := int64(dc.Cfg.Scale)
	ps := int64(k.PageSize())
	for _, name := range []string{"init", "sshd", "syslogd"} {
		binPath := "/sbin/" + name
		f, ok := k.FS().Lookup(binPath)
		if !ok {
			size := (3 << 20) / scale
			if size < ps {
				size = ps
			}
			f = k.FS().InstallGenerated(binPath, "rhel5.5", size)
		}
		p := k.Spawn(name, false)
		v := p.MapFile(f, 0, 0, "daemon-code", binPath)
		p.TouchAll(v, false)
		anonPages := int(((2 << 20) / scale) / ps)
		if anonPages < 1 {
			anonPages = 1
		}
		av := p.MapAnon(anonPages, "daemon-anon", name+"-heap")
		for vpn := av.Start; vpn < av.End; vpn++ {
			p.FillPage(vpn, mem.Combine(p.Seed(), mem.Seed(vpn)))
		}
	}
}

// fingerprintSpec runs one VM of the workload solo on a throwaway host and
// clock (no KSM) and fingerprints its resident guest memory — the Memory
// Buddies content summary the similarity placer and the migration target
// scorer use.
func (dc *Datacenter) fingerprintSpec(spec workload.Spec) placement.Fingerprint {
	cfg := dc.Cfg
	scale := int64(cfg.Scale)
	clock := simclock.New()
	host := hypervisor.NewHost(hypervisor.Config{
		Name:               "fingerprint",
		RAMBytes:           hostRAMBytes / scale,
		KernelReserveBytes: hostKernelReserveBytes / scale,
	}, clock)
	seed := mem.Combine(cfg.BaseSeed, mem.HashString("fingerprint"), mem.HashString(spec.Name))
	vmp := host.NewVM(hypervisor.VMConfig{
		Name:          "fp " + spec.Name,
		GuestMemBytes: spec.GuestMemBytes / scale,
		OverheadBytes: guestOverheadBytes / scale,
		Seed:          seed,
	})
	k := guestos.Boot(vmp, guestos.KernelConfig{
		Version:   guestKernelVersion,
		TextBytes: kernelTextBytes / scale,
		DataBytes: kernelDataBytes / scale,
		SlabBytes: kernelSlabBytes / scale,
	})
	dc.spawnDaemons(k)
	dcfg := workload.DeployConfig{Scale: cfg.Scale, DeferWarmup: true}
	if cfg.SharedClasses {
		img := dc.cacheImage(spec)
		k.FS().Install(&guestos.File{Path: cachePath, Data: img.FileBytes(dc.corpus)})
		dcfg.SharedClasses = true
		dcfg.CacheImage = img
		dcfg.CachePath = cachePath
		dcfg.SharedAOT = cfg.SharedAOT
	}
	w := workload.Deploy(k, dc.corpus, spec, dcfg)
	w.RunSteadyState(w.WarmupTarget())
	clock.RunFor(simclock.Second)

	fp := make(placement.Fingerprint)
	pm := host.Phys()
	for _, reg := range vmp.MergeableRegions() {
		for vpn := reg.Start; vpn < reg.End; vpn++ {
			if f, ok := vmp.ResolveResident(vpn); ok {
				fp[pm.Checksum(f)] = struct{}{}
			}
		}
	}
	return fp
}

// hostGuestPages sums the guest pages resident on one host.
func (dc *Datacenter) hostGuestPages(h *HostNode) int {
	total := 0
	for _, vm := range h.Host.VMs() {
		if vm.Alive() {
			total += vm.GuestPages()
		}
	}
	return total
}

// totalGuestPages sums guest pages across alive hosts.
func (dc *Datacenter) totalGuestPages() int {
	total := 0
	for _, h := range dc.hosts {
		if h.alive {
			total += dc.hostGuestPages(h)
		}
	}
	return total
}

// checkLeaks runs the host's leak invariant with its scanner's stable tree
// as external references, recording rather than failing.
func (dc *Datacenter) checkLeaks(h *HostNode) {
	if !h.alive {
		return
	}
	dc.stats.LeakChecks++
	if err := h.Host.CheckLeaks(h.Scanner.StableFrames()); err != nil {
		dc.stats.LeakFailures++
		if dc.firstLeak == nil {
			dc.firstLeak = fmt.Errorf("host %d: %w", h.Index, err)
		}
	}
}

// killGuest tears down a running guest in leak-safe order: the balloon
// manager forgets the kernel BEFORE its pages vanish, then the scanner and
// THP daemon drop the VM's regions, then the hypervisor reclaims every
// frame and swap slot.
func (dc *Datacenter) killGuest(g *Guest) {
	if !g.alive {
		return
	}
	h := dc.hosts[g.host]
	h.Balloon.DropGuest(g.kernel)
	h.Scanner.Unregister(g.vm)
	h.THP.Unregister(g.vm)
	h.Host.KillVM(g.vm)
	h.removeGuest(g)
	g.alive = false
	g.host = -1
	g.kernel = nil
	g.workers = nil
	g.diedAt = dc.Clock.Now()
	dc.checkLeaks(h)
}

// restartGuest reboots a dead guest on the most suitable alive host. It
// reports false when no host has a free seat.
func (dc *Datacenter) restartGuest(g *Guest) bool {
	h := dc.pickBootHost()
	if h == nil {
		return false
	}
	g.gen++
	dc.bootGuestOn(h, g)
	dc.stats.GuestRestarts++
	return true
}

// pickBootHost chooses the alive, non-draining host with a free seat and
// the most free memory (ties to the lowest index).
func (dc *Datacenter) pickBootHost() *HostNode {
	var best *HostNode
	var bestFree int64
	for _, h := range dc.hosts {
		if !h.alive || h.draining || len(h.guests) >= dc.Cfg.GuestsPerHost {
			continue
		}
		free := h.Host.FreeBytes()
		if best == nil || free > bestFree {
			best, bestFree = h, free
		}
	}
	return best
}

// --- faults.Target ---

// Guests reports the number of guest slots.
func (dc *Datacenter) Guests() int { return len(dc.guests) }

// Alive reports whether a slot's guest is running.
func (dc *Datacenter) Alive(slot int) bool { return dc.guests[slot].alive }

// Kill tears down a slot's guest.
func (dc *Datacenter) Kill(slot int) { dc.killGuest(dc.guests[slot]) }

// Restart reboots a killed slot wherever the scheduler would place it.
func (dc *Datacenter) Restart(slot int) {
	g := dc.guests[slot]
	if g.alive {
		return
	}
	dc.restartGuest(g)
}

// DemandSpike applies memory pressure to the most loaded (least free) alive
// host: balloon reclaim first, then frame claims backed by eviction.
func (dc *Datacenter) DemandSpike(pages int) faults.SpikeOutcome {
	var victim *HostNode
	var victimFree int64
	for _, h := range dc.hosts {
		if !h.alive {
			continue
		}
		free := h.Host.FreeBytes()
		if victim == nil || free < victimFree {
			victim, victimFree = h, free
		}
	}
	var out faults.SpikeOutcome
	if victim == nil {
		return out
	}
	out.BalloonPages = victim.Balloon.ReclaimPages(pages)
	out.ClaimedPages = victim.Host.ClaimFrames(pages)
	dc.spiked = append(dc.spiked, victim.Index)
	return out
}

// ReleaseSpike returns all claimed spike frames on the hosts that hold
// them.
func (dc *Datacenter) ReleaseSpike() {
	for _, idx := range dc.spiked {
		h := dc.hosts[idx]
		if h.alive {
			h.Host.ReleaseClaimed()
		}
	}
	dc.spiked = dc.spiked[:0]
}

// StallScanner suspends every alive host's KSM daemon for d.
func (dc *Datacenter) StallScanner(d simclock.Time) {
	for _, h := range dc.hosts {
		if h.alive {
			h.Scanner.Stall(d)
		}
	}
}

// --- faults.HostTarget ---

// Hosts reports the number of host slots.
func (dc *Datacenter) Hosts() int { return len(dc.hosts) }

// HostAlive reports whether a host is up.
func (dc *Datacenter) HostAlive(h int) bool { return dc.hosts[h].alive }

// KillHost fails a host outright: the machine loses power, every resident
// guest dies with it, and the host object — frames, swap, scanner state —
// is discarded wholesale. Nothing is torn down gracefully; that is the
// point of the fault.
func (dc *Datacenter) KillHost(idx int) {
	h := dc.hosts[idx]
	if !h.alive {
		return
	}
	// Stop the daemons' clock tickers so they never scan the discarded
	// state again.
	h.Scanner.Stop()
	h.THP.Stop()
	now := dc.Clock.Now()
	for _, g := range h.guests {
		g.alive = false
		g.host = -1
		g.kernel = nil
		g.workers = nil
		g.diedAt = now
	}
	h.guests = nil
	h.alive = false
	h.draining = false
}

// RestartHost brings a failed host back: fresh machine, same name, empty.
func (dc *Datacenter) RestartHost(idx int) {
	if dc.hosts[idx].alive {
		return
	}
	dc.hosts[idx] = dc.newHostNode(idx)
}

// DrainHost marks a host for evacuation; the scheduler migrates its guests
// away (when migration is enabled).
func (dc *Datacenter) DrainHost(idx int) {
	if dc.hosts[idx].alive {
		dc.hosts[idx].draining = true
	}
}

// UndrainHost returns a drained host to service.
func (dc *Datacenter) UndrainHost(idx int) { dc.hosts[idx].draining = false }

// sortGPFNs sorts a dirty-page set ascending for a deterministic send
// order.
func sortGPFNs(gpfns []uint64) {
	sort.Slice(gpfns, func(i, j int) bool { return gpfns[i] < gpfns[j] })
}
