// Package cds implements the class sharing mechanism of §4 of the paper:
// J9 "shared classes" / HotSpot Class Data Sharing. A cache image holds the
// read-only part of each class (the ROMClass: bytecode, constant pool,
// string literals) packed at fixed offsets behind a header. The image is
// persisted as a file; the paper's technique copies that one file into every
// guest VM so all JVMs map byte-identical, identically-laid-out pages, which
// KSM can then merge across VMs.
//
// The writable runtime part of a class (method tables, resolution state)
// stays in each JVM's private memory — the cache only captures what is
// position-independent and read-only, as J9's ROMClass design does.
package cds

import (
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/classlib"
	"repro/internal/mem"
)

// entryAlign aligns ROMClass blobs inside the image. J9 aligns shared cache
// items; 64 bytes keeps entries from straddling cache lines without padding
// the image excessively.
const entryAlign = 64

// headerBytes reserves space at the front of the image for the cache
// directory metadata (one page keeps the first ROMClass page-aligned).
const headerBytes = 4096

// Entry records where one class's read-only bytes live in the image.
type Entry struct {
	Name   string
	Offset int64
	Size   int
}

// Image is a populated shared class cache.
type Image struct {
	// Name is the cache name (-Xshareclasses:name=...). WAS uses one
	// predefined name so all WAS processes attach to the same cache.
	Name string
	// Version ties the cache to a JVM/corpus version; a mismatch would make
	// a real JVM discard the cache.
	Version string
	// Capacity is the configured cache size in bytes (Table III:
	// 120 MB for the WAS workloads, 25 MB for Tuscany).
	Capacity int64

	entries []Entry
	index   map[string]int
	used    int64

	// aotEntries holds ahead-of-time compiled method code (the J9 cache
	// stores AOT code alongside ROMClasses; an extension over the paper's
	// measured configuration, which shared class metadata only).
	aotEntries []Entry
	aotIndex   map[string]int

	// Overflowed lists classes that did not fit once the cache filled.
	Overflowed []string
}

// Build populates a cache image from a cold run that loads classes in the
// given order (the paper: "run the middleware installed in the base image
// once"). Classes that exceed the remaining capacity overflow and stay
// unshared, as in a real undersized cache.
func Build(name, version string, capacity int64, loadOrder []*classlib.Class) *Image {
	if capacity <= headerBytes {
		panic(fmt.Sprintf("cds: capacity %d smaller than header", capacity))
	}
	img := &Image{
		Name:     name,
		Version:  version,
		Capacity: capacity,
		index:    make(map[string]int),
		used:     headerBytes,
	}
	for _, cl := range loadOrder {
		if _, dup := img.index[cl.Name]; dup {
			continue
		}
		sz := int64((cl.ROMSize + entryAlign - 1) / entryAlign * entryAlign)
		if img.used+sz > capacity {
			img.Overflowed = append(img.Overflowed, cl.Name)
			continue
		}
		img.index[cl.Name] = len(img.entries)
		img.entries = append(img.entries, Entry{Name: cl.Name, Offset: img.used, Size: cl.ROMSize})
		img.used += sz
	}
	return img
}

// aotMethodSize derives the deterministic AOT blob size for a method:
// baseline-compiled code is position-independent and smaller than the
// profile-optimized JIT output.
func aotMethodSize(cl *classlib.Class, m int) int {
	r := mem.Mix(mem.Combine(cl.Seed, mem.Seed(m)))
	return 1024 + int(uint64(r)%6144)
}

// AOTSeed derives the content seed of an AOT blob: class and method only —
// no process or profile input, which is what makes the code identical (and
// therefore shareable) across every JVM attaching the cache.
func AOTSeed(cl *classlib.Class, m int) mem.Seed {
	return mem.Combine(mem.HashString("aot-code"), cl.Seed, mem.Seed(m))
}

// PopulateAOT appends ahead-of-time code for the hot methods of the given
// classes (the same hot set the JIT would compile at hotPermille). Blobs
// that no longer fit overflow silently, like class entries.
func (img *Image) PopulateAOT(classes []*classlib.Class, hotPermille int) {
	if img.aotIndex == nil {
		img.aotIndex = make(map[string]int)
	}
	for _, cl := range classes {
		if _, cached := img.index[cl.Name]; !cached {
			continue // AOT code is only stored for cached classes
		}
		for m := 0; m < classlib.HotMethods(cl, hotPermille); m++ {
			key := aotKey(cl.Name, m)
			if _, dup := img.aotIndex[key]; dup {
				continue
			}
			size := aotMethodSize(cl, m)
			sz := int64((size + entryAlign - 1) / entryAlign * entryAlign)
			if img.used+sz > img.Capacity {
				continue
			}
			img.aotIndex[key] = len(img.aotEntries)
			img.aotEntries = append(img.aotEntries, Entry{Name: key, Offset: img.used, Size: size})
			img.used += sz
		}
	}
}

func aotKey(className string, m int) string {
	return fmt.Sprintf("%s#%d", className, m)
}

// AOTLookup finds the cached AOT code for a method.
func (img *Image) AOTLookup(className string, m int) (Entry, bool) {
	i, ok := img.aotIndex[aotKey(className, m)]
	if !ok {
		return Entry{}, false
	}
	return img.aotEntries[i], true
}

// AOTCount reports how many AOT method bodies the cache holds.
func (img *Image) AOTCount() int { return len(img.aotEntries) }

// Lookup finds a class's entry in the cache.
func (img *Image) Lookup(name string) (Entry, bool) {
	i, ok := img.index[name]
	if !ok {
		return Entry{}, false
	}
	return img.entries[i], true
}

// Entries returns all entries in layout order.
func (img *Image) Entries() []Entry { return img.entries }

// UsedBytes reports the populated prefix of the cache.
func (img *Image) UsedBytes() int64 { return img.used }

// ClassCount reports how many classes the cache holds.
func (img *Image) ClassCount() int { return len(img.entries) }

// FileBytes serializes the image: a directory header followed by each
// class's read-only bytes at its recorded offset. The bytes depend only on
// the corpus content and the load order of the populating run, so the same
// cold run always produces a byte-identical file — the property that makes
// copying the file to every VM yield identical pages.
//
// The returned slice is the full capacity; the unpopulated tail is zero.
func (img *Image) FileBytes(corpus *classlib.Corpus) []byte {
	data := make([]byte, img.Capacity)
	img.writeHeader(data[:headerBytes])
	for _, e := range img.entries {
		cl, ok := corpus.Class(e.Name)
		if !ok {
			panic(fmt.Sprintf("cds: class %q not in corpus", e.Name))
		}
		mem.Fill(data[e.Offset:e.Offset+int64(e.Size)], cl.Seed)
	}
	for _, e := range img.aotEntries {
		name, m := splitAOTKey(e.Name)
		cl, ok := corpus.Class(name)
		if !ok {
			panic(fmt.Sprintf("cds: AOT class %q not in corpus", name))
		}
		mem.Fill(data[e.Offset:e.Offset+int64(e.Size)], AOTSeed(cl, m))
	}
	return data
}

// writeHeader encodes a deterministic directory digest. A real cache stores
// a hash table of names; a digest of the sorted (name, offset) pairs is
// enough for the simulation and keeps the header identical for identical
// populations.
func (img *Image) writeHeader(dst []byte) {
	copy(dst, "J9SCv1\x00\x00")
	binary.LittleEndian.PutUint64(dst[8:], uint64(len(img.entries)))
	binary.LittleEndian.PutUint64(dst[16:], uint64(img.used))
	names := make([]string, 0, len(img.entries))
	for _, e := range img.entries {
		names = append(names, fmt.Sprintf("%s@%d+%d", e.Name, e.Offset, e.Size))
	}
	sort.Strings(names)
	var digest mem.Seed = mem.HashString(img.Name + img.Version)
	for _, n := range names {
		digest = mem.Combine(digest, mem.HashString(n))
	}
	binary.LittleEndian.PutUint64(dst[24:], uint64(digest))
	mem.Fill(dst[32:], digest) // fill the rest of the header page deterministically
}

// Validate checks an image against the runtime that wants to attach it: a
// real JVM refuses a cache created by a different JVM level or sized
// differently than configured (it would silently rebuild it; we surface the
// mismatch so experiments fail loudly instead of measuring the wrong
// setup). It returns nil when the cache is attachable.
func (img *Image) Validate(runtimeVersion string, wantCapacity int64) error {
	if img.Version != runtimeVersion {
		return fmt.Errorf("cds: cache %q built for %q, runtime is %q", img.Name, img.Version, runtimeVersion)
	}
	if wantCapacity > 0 && img.Capacity != wantCapacity {
		return fmt.Errorf("cds: cache %q capacity %d, configured %d", img.Name, img.Capacity, wantCapacity)
	}
	if img.used > img.Capacity {
		return fmt.Errorf("cds: cache %q corrupt: used %d exceeds capacity %d", img.Name, img.used, img.Capacity)
	}
	return nil
}

// VerifyFile checks that file bytes look like a serialized image of this
// cache: magic, entry count and population watermark must match the
// directory. It guards the "copy the file to all of the VMs" step against
// shipping the wrong artifact.
func (img *Image) VerifyFile(data []byte) error {
	if int64(len(data)) != img.Capacity {
		return fmt.Errorf("cds: file is %d bytes, cache capacity %d", len(data), img.Capacity)
	}
	if string(data[:6]) != "J9SCv1" {
		return fmt.Errorf("cds: bad magic %q", data[:6])
	}
	if n := binary.LittleEndian.Uint64(data[8:]); n != uint64(len(img.entries)) {
		return fmt.Errorf("cds: file has %d entries, directory has %d", n, len(img.entries))
	}
	if u := binary.LittleEndian.Uint64(data[16:]); u != uint64(img.used) {
		return fmt.Errorf("cds: file watermark %d, directory %d", u, img.used)
	}
	return nil
}

// splitAOTKey parses "class#m".
func splitAOTKey(key string) (string, int) {
	for i := len(key) - 1; i >= 0; i-- {
		if key[i] == '#' {
			m := 0
			for _, c := range key[i+1:] {
				m = m*10 + int(c-'0')
			}
			return key[:i], m
		}
	}
	panic(fmt.Sprintf("cds: bad AOT key %q", key))
}

// PagesSpanned reports which page indexes of the image a given entry
// touches; the JVM faults exactly these when the class is used.
func (e Entry) PagesSpanned(pageSize int) (first, last int) {
	first = int(e.Offset / int64(pageSize))
	last = int((e.Offset + int64(e.Size) - 1) / int64(pageSize))
	return first, last
}
