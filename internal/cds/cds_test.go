package cds

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/classlib"
	"repro/internal/mem"
)

func testCorpus() *classlib.Corpus {
	return classlib.NewCorpus("J9-SR9", 64)
}

func TestBuildAndLookup(t *testing.T) {
	c := testCorpus()
	order := c.Stack(classlib.GroupJDK, classlib.GroupDerby)
	img := Build("was", "J9-SR9", 64<<20, order)
	if img.ClassCount() != len(order) {
		t.Fatalf("count = %d, want %d", img.ClassCount(), len(order))
	}
	e, ok := img.Lookup(order[0].Name)
	if !ok || e.Offset < headerBytes || e.Size != order[0].ROMSize {
		t.Fatalf("entry = %+v ok=%v", e, ok)
	}
	if _, ok := img.Lookup("no.such.Class"); ok {
		t.Fatal("phantom lookup")
	}
}

func TestEntriesNonOverlappingAndOrdered(t *testing.T) {
	c := testCorpus()
	img := Build("was", "v", 64<<20, c.Stack(classlib.GroupJDK, classlib.GroupOSGi))
	prevEnd := int64(headerBytes)
	for _, e := range img.Entries() {
		if e.Offset < prevEnd {
			t.Fatalf("entry %s overlaps previous (off %d < %d)", e.Name, e.Offset, prevEnd)
		}
		if e.Offset%entryAlign != 0 {
			t.Fatalf("entry %s misaligned at %d", e.Name, e.Offset)
		}
		prevEnd = e.Offset + int64(e.Size)
	}
}

func TestCapacityOverflow(t *testing.T) {
	c := testCorpus()
	order := c.Stack(classlib.GroupJDK)
	// Capacity for roughly half the classes.
	var half int64
	for _, cl := range order[:len(order)/2] {
		half += int64(cl.ROMSize) + entryAlign
	}
	img := Build("small", "v", headerBytes+half, order)
	if len(img.Overflowed) == 0 {
		t.Fatal("no overflow with undersized cache")
	}
	if img.UsedBytes() > img.Capacity {
		t.Fatal("used exceeds capacity")
	}
	// Overflowed classes are not in the index.
	if _, ok := img.Lookup(img.Overflowed[0]); ok {
		t.Fatal("overflowed class present in index")
	}
}

func TestDuplicateLoadsStoredOnce(t *testing.T) {
	c := testCorpus()
	order := c.Stack(classlib.GroupDerby)
	doubled := append(append([]*classlib.Class(nil), order...), order...)
	img := Build("was", "v", 64<<20, doubled)
	if img.ClassCount() != len(order) {
		t.Fatalf("count = %d, want %d (dedup)", img.ClassCount(), len(order))
	}
}

func TestFileBytesDeterministic(t *testing.T) {
	c := testCorpus()
	order := c.Stack(classlib.GroupDerby, classlib.GroupOSGi)
	img1 := Build("was", "v", 32<<20, order)
	img2 := Build("was", "v", 32<<20, order)
	b1 := img1.FileBytes(c)
	b2 := img2.FileBytes(c)
	if !bytes.Equal(b1, b2) {
		t.Fatal("identical cold runs produced different cache files")
	}
}

func TestFileBytesOrderSensitive(t *testing.T) {
	// A different load order produces a different layout — this is exactly
	// why all VMs must share ONE populated file rather than each populating
	// its own.
	c := testCorpus()
	order := c.Stack(classlib.GroupDerby)
	rev := make([]*classlib.Class, len(order))
	for i, cl := range order {
		rev[len(order)-1-i] = cl
	}
	a := Build("was", "v", 32<<20, order).FileBytes(c)
	b := Build("was", "v", 32<<20, rev).FileBytes(c)
	if bytes.Equal(a, b) {
		t.Fatal("layout insensitive to load order")
	}
}

func TestFileBytesMatchClassContent(t *testing.T) {
	c := testCorpus()
	order := c.Stack(classlib.GroupDerby)
	img := Build("was", "v", 32<<20, order)
	data := img.FileBytes(c)
	cl := order[3]
	e, _ := img.Lookup(cl.Name)
	want := mem.FillBytes(cl.ROMSize, cl.Seed)
	if !bytes.Equal(data[e.Offset:e.Offset+int64(e.Size)], want) {
		t.Fatal("image bytes differ from class ROM content")
	}
}

func TestPagesSpanned(t *testing.T) {
	e := Entry{Offset: 4096, Size: 4096}
	if f, l := e.PagesSpanned(4096); f != 1 || l != 1 {
		t.Fatalf("exact page: %d..%d", f, l)
	}
	e = Entry{Offset: 4000, Size: 200}
	if f, l := e.PagesSpanned(4096); f != 0 || l != 1 {
		t.Fatalf("straddling: %d..%d", f, l)
	}
}

func TestPropertyEntriesWithinCapacity(t *testing.T) {
	c := testCorpus()
	all := c.Stack(classlib.GroupJDK, classlib.GroupWASCore)
	f := func(capRaw uint32) bool {
		capacity := int64(capRaw%((16<<20)-headerBytes)) + headerBytes + 1
		img := Build("p", "v", capacity, all)
		for _, e := range img.Entries() {
			if e.Offset+int64(e.Size) > capacity {
				return false
			}
		}
		return img.ClassCount()+len(img.Overflowed) == len(all)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestValidate(t *testing.T) {
	c := testCorpus()
	img := Build("was", "J9-SR9", 16<<20, c.Stack(classlib.GroupDerby))
	if err := img.Validate("J9-SR9", 16<<20); err != nil {
		t.Fatalf("valid cache rejected: %v", err)
	}
	if err := img.Validate("J9-SR10", 16<<20); err == nil {
		t.Fatal("version mismatch accepted")
	}
	if err := img.Validate("J9-SR9", 8<<20); err == nil {
		t.Fatal("capacity mismatch accepted")
	}
	if err := img.Validate("J9-SR9", 0); err != nil {
		t.Fatalf("capacity wildcard rejected: %v", err)
	}
}

func TestVerifyFile(t *testing.T) {
	c := testCorpus()
	img := Build("was", "v", 16<<20, c.Stack(classlib.GroupDerby))
	data := img.FileBytes(c)
	if err := img.VerifyFile(data); err != nil {
		t.Fatalf("own file rejected: %v", err)
	}
	if err := img.VerifyFile(data[:len(data)-1]); err == nil {
		t.Fatal("truncated file accepted")
	}
	bad := append([]byte(nil), data...)
	bad[0] = 'X'
	if err := img.VerifyFile(bad); err == nil {
		t.Fatal("bad magic accepted")
	}
	other := Build("was", "v", 16<<20, c.Stack(classlib.GroupOSGi))
	if err := other.VerifyFile(data); err == nil {
		t.Fatal("foreign file accepted")
	}
}

func TestPopulateAOT(t *testing.T) {
	c := testCorpus()
	classes := c.Group(classlib.GroupDerby)
	img := Build("was", "v", 16<<20, classes)
	usedBefore := img.UsedBytes()
	img.PopulateAOT(classes, 100)
	if img.AOTCount() == 0 {
		t.Fatal("no AOT entries")
	}
	if img.UsedBytes() <= usedBefore {
		t.Fatal("AOT population did not grow the cache")
	}
	if img.UsedBytes() > img.Capacity {
		t.Fatal("AOT overflowed capacity")
	}
	// Lookups resolve for the hot set, miss for cold methods.
	found := 0
	for _, cl := range classes {
		for m := 0; m < classlib.HotMethods(cl, 100); m++ {
			if _, ok := img.AOTLookup(cl.Name, m); ok {
				found++
			}
		}
	}
	if found != img.AOTCount() {
		t.Fatalf("lookup found %d, cache holds %d", found, img.AOTCount())
	}
	if _, ok := img.AOTLookup(classes[0].Name, 9999); ok {
		t.Fatal("phantom AOT method")
	}
}

func TestAOTFileBytesDeterministicAndDistinct(t *testing.T) {
	c := testCorpus()
	classes := c.Group(classlib.GroupDerby)
	mk := func() []byte {
		img := Build("was", "v", 16<<20, classes)
		img.PopulateAOT(classes, 100)
		return img.FileBytes(c)
	}
	a, b := mk(), mk()
	if !bytes.Equal(a, b) {
		t.Fatal("AOT cache files not deterministic")
	}
	// AOT content actually lands in the file (differs from a no-AOT build).
	plain := Build("was", "v", 16<<20, classes).FileBytes(c)
	if bytes.Equal(a, plain) {
		t.Fatal("AOT section left no trace in the file")
	}
}

func TestAOTOnlyForCachedClasses(t *testing.T) {
	c := testCorpus()
	derby := c.Group(classlib.GroupDerby)
	osgi := c.Group(classlib.GroupOSGi)
	img := Build("was", "v", 16<<20, derby) // OSGi not in the cache
	img.PopulateAOT(osgi, 100)
	if img.AOTCount() != 0 {
		t.Fatal("AOT stored for classes outside the cache")
	}
}

// Property: PagesSpanned covers exactly the pages the entry's byte range
// overlaps.
func TestPropertyPagesSpanned(t *testing.T) {
	f := func(offRaw uint32, sizeRaw uint16) bool {
		e := Entry{Offset: int64(offRaw % (1 << 24)), Size: int(sizeRaw%32768) + 1}
		first, last := e.PagesSpanned(4096)
		if first > last {
			return false
		}
		startOK := int64(first)*4096 <= e.Offset && e.Offset < int64(first+1)*4096
		endByte := e.Offset + int64(e.Size) - 1
		endOK := int64(last)*4096 <= endByte && endByte < int64(last+1)*4096
		return startOK && endOK
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
