package simclock

import (
	"testing"
	"testing/quick"
	"time"
)

func TestNewClockStartsAtZero(t *testing.T) {
	c := New()
	if c.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", c.Now())
	}
	if c.Pending() != 0 {
		t.Fatalf("Pending() = %d, want 0", c.Pending())
	}
}

func TestScheduleOrdering(t *testing.T) {
	c := New()
	var got []int
	c.Schedule(30, func(Time) { got = append(got, 3) })
	c.Schedule(10, func(Time) { got = append(got, 1) })
	c.Schedule(20, func(Time) { got = append(got, 2) })
	c.Drain(100)
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if c.Now() != 30 {
		t.Fatalf("Now() = %v, want 30", c.Now())
	}
}

func TestFIFOAtSameDeadline(t *testing.T) {
	c := New()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		c.Schedule(5, func(Time) { got = append(got, i) })
	}
	c.Drain(100)
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("same-deadline events out of FIFO order: %v", got)
		}
	}
}

func TestNegativeDelayClampedToNow(t *testing.T) {
	c := New()
	c.Schedule(100, func(Time) {})
	c.Step()
	fired := false
	c.Schedule(-50, func(now Time) {
		fired = true
		if now != 100 {
			t.Errorf("clamped event fired at %v, want 100", now)
		}
	})
	c.Step()
	if !fired {
		t.Fatal("clamped event never fired")
	}
}

func TestAtInPastClamped(t *testing.T) {
	c := New()
	c.Schedule(100, func(Time) {})
	c.Step()
	c.At(10, func(now Time) {
		if now != 100 {
			t.Errorf("past event fired at %v, want clamped to 100", now)
		}
	})
	c.Step()
}

func TestRunUntilStopsAtDeadline(t *testing.T) {
	c := New()
	var fired []Time
	for _, at := range []Time{10, 20, 30, 40} {
		at := at
		c.At(at, func(now Time) { fired = append(fired, now) })
	}
	c.RunUntil(25)
	if len(fired) != 2 {
		t.Fatalf("fired %d events, want 2", len(fired))
	}
	if c.Now() != 25 {
		t.Fatalf("Now() = %v, want 25", c.Now())
	}
	// Events at exactly the deadline fire.
	c.RunUntil(30)
	if len(fired) != 3 {
		t.Fatalf("fired %d events, want 3", len(fired))
	}
}

func TestRunForAdvancesRelative(t *testing.T) {
	c := New()
	c.RunFor(10 * Second)
	if c.Now() != 10*Second {
		t.Fatalf("Now() = %v, want 10s", c.Now())
	}
	c.RunFor(5 * Second)
	if c.Now() != 15*Second {
		t.Fatalf("Now() = %v, want 15s", c.Now())
	}
}

func TestEveryTicksUntilFalse(t *testing.T) {
	c := New()
	n := 0
	c.Every(100, func(Time) bool {
		n++
		return n < 5
	})
	c.Drain(100)
	if n != 5 {
		t.Fatalf("ticker fired %d times, want 5", n)
	}
	if c.Now() != 500 {
		t.Fatalf("Now() = %v, want 500", c.Now())
	}
}

func TestEveryZeroPeriodPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Every(0) did not panic")
		}
	}()
	New().Every(0, func(Time) bool { return true })
}

func TestNilEventPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("At with nil fn did not panic")
		}
	}()
	New().At(10, nil)
}

func TestDrainRunawayPanics(t *testing.T) {
	c := New()
	c.Every(1, func(Time) bool { return true })
	defer func() {
		if recover() == nil {
			t.Fatal("Drain did not panic on runaway ticker")
		}
	}()
	c.Drain(1000)
}

func TestDurationRoundTrip(t *testing.T) {
	d := 250 * time.Millisecond
	if got := FromDuration(d).Duration(); got != d {
		t.Fatalf("round-trip = %v, want %v", got, d)
	}
	if Second.Seconds() != 1.0 {
		t.Fatalf("Second.Seconds() = %v, want 1", Second.Seconds())
	}
}

func TestFiredCounter(t *testing.T) {
	c := New()
	for i := 0; i < 7; i++ {
		c.Schedule(Time(i), func(Time) {})
	}
	c.Drain(100)
	if c.Fired() != 7 {
		t.Fatalf("Fired() = %d, want 7", c.Fired())
	}
}

// Property: for any set of delays, events fire in non-decreasing time order
// and the clock ends at the maximum deadline.
func TestPropertyEventsFireInOrder(t *testing.T) {
	f := func(delays []uint16) bool {
		if len(delays) == 0 {
			return true
		}
		c := New()
		var fired []Time
		var max Time
		for _, d := range delays {
			at := Time(d)
			if at > max {
				max = at
			}
			c.At(at, func(now Time) { fired = append(fired, now) })
		}
		c.Drain(uint64(len(delays) + 1))
		if len(fired) != len(delays) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return c.Now() == max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: scheduling from inside an event keeps ordering consistent.
func TestPropertyNestedScheduling(t *testing.T) {
	f := func(seed uint8) bool {
		c := New()
		var fired []Time
		c.Schedule(Time(seed)+1, func(now Time) {
			c.Schedule(Time(seed%7)+1, func(n2 Time) { fired = append(fired, n2) })
			fired = append(fired, now)
		})
		c.Drain(10)
		return len(fired) == 2 && fired[1] >= fired[0]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
