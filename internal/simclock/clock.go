// Package simclock provides a deterministic discrete-event virtual clock.
//
// All time in the simulator is virtual: components schedule callbacks at
// absolute or relative virtual times and the experiment driver advances the
// clock by draining the event queue. Nothing in the simulator ever sleeps on
// the wall clock, which keeps every experiment fully deterministic and makes
// a 90-minute benchmark run complete in milliseconds of real time.
package simclock

import (
	"container/heap"
	"fmt"
	"time"
)

// Time is a virtual timestamp in microseconds since the start of the
// simulation. Microsecond resolution is fine-grained enough to model KSM
// wake-ups (100 ms), request latencies (ms) and page-fault penalties (µs).
type Time int64

// Common durations expressed in virtual microseconds.
const (
	Microsecond Time = 1
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
	Minute      Time = 60 * Second
)

// FromDuration converts a time.Duration into a virtual Time offset.
func FromDuration(d time.Duration) Time { return Time(d / time.Microsecond) }

// Duration converts a virtual Time span back into a time.Duration.
func (t Time) Duration() time.Duration { return time.Duration(t) * time.Microsecond }

// Seconds reports the timestamp as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

func (t Time) String() string {
	return t.Duration().String()
}

// Event is a scheduled callback. Events with equal deadlines fire in the
// order they were scheduled (FIFO), which the sequence number guarantees.
type event struct {
	at  Time
	seq uint64
	fn  func(now Time)
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Clock is a deterministic discrete-event scheduler. It is not safe for
// concurrent use; the simulator is single-threaded by design so that runs
// are reproducible bit-for-bit.
type Clock struct {
	now    Time
	seq    uint64
	events eventHeap
	fired  uint64
}

// New returns a clock positioned at time zero with an empty event queue.
func New() *Clock {
	return &Clock{}
}

// Now reports the current virtual time.
func (c *Clock) Now() Time { return c.now }

// Fired reports how many events have been dispatched so far. Useful for
// tests and for sanity-checking that a scenario actually ran.
func (c *Clock) Fired() uint64 { return c.fired }

// Pending reports the number of events waiting in the queue.
func (c *Clock) Pending() int { return len(c.events) }

// Schedule registers fn to run after delay. A negative delay is treated as
// zero (the event fires on the next Step at the current time).
func (c *Clock) Schedule(delay Time, fn func(now Time)) {
	if delay < 0 {
		delay = 0
	}
	c.At(c.now+delay, fn)
}

// At registers fn to run at the absolute virtual time at. Times in the past
// are clamped to the present.
func (c *Clock) At(at Time, fn func(now Time)) {
	if fn == nil {
		panic("simclock: nil event function")
	}
	if at < c.now {
		at = c.now
	}
	c.seq++
	heap.Push(&c.events, &event{at: at, seq: c.seq, fn: fn})
}

// Every registers fn to run periodically with the given period, starting one
// period from now, until fn returns false. A non-positive period panics: a
// zero-period ticker would wedge the simulation at a single instant.
func (c *Clock) Every(period Time, fn func(now Time) bool) {
	if period <= 0 {
		panic(fmt.Sprintf("simclock: non-positive ticker period %d", period))
	}
	var tick func(now Time)
	tick = func(now Time) {
		if fn(now) {
			c.Schedule(period, tick)
		}
	}
	c.Schedule(period, tick)
}

// Step dispatches the earliest pending event, advancing the clock to its
// deadline. It reports false when the queue is empty.
func (c *Clock) Step() bool {
	if len(c.events) == 0 {
		return false
	}
	e := heap.Pop(&c.events).(*event)
	c.now = e.at
	c.fired++
	e.fn(c.now)
	return true
}

// RunUntil dispatches events in order until the queue is exhausted or the
// next event lies strictly beyond deadline; the clock is then advanced to
// the deadline. Events scheduled exactly at the deadline do fire.
func (c *Clock) RunUntil(deadline Time) {
	for len(c.events) > 0 && c.events[0].at <= deadline {
		c.Step()
	}
	if c.now < deadline {
		c.now = deadline
	}
}

// RunFor advances the clock by span, dispatching everything due in between.
func (c *Clock) RunFor(span Time) {
	c.RunUntil(c.now + span)
}

// Drain dispatches every pending event. It guards against runaway
// self-rescheduling by capping the number of dispatched events; exceeding
// the cap panics, since an unbounded queue means a ticker never terminated.
func (c *Clock) Drain(maxEvents uint64) {
	start := c.fired
	for c.Step() {
		if c.fired-start > maxEvents {
			panic(fmt.Sprintf("simclock: Drain dispatched more than %d events; runaway ticker?", maxEvents))
		}
	}
}
