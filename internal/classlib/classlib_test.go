package classlib

import (
	"testing"
	"testing/quick"

	"repro/internal/mem"
)

func TestCorpusDeterministic(t *testing.T) {
	a := NewCorpus("J9-SR9", 16)
	b := NewCorpus("J9-SR9", 16)
	for _, g := range AllGroups() {
		ca, cb := a.Group(g), b.Group(g)
		if len(ca) != len(cb) {
			t.Fatalf("group %s: %d vs %d classes", g, len(ca), len(cb))
		}
		for i := range ca {
			if ca[i].Name != cb[i].Name || ca[i].Seed != cb[i].Seed || ca[i].ROMSize != cb[i].ROMSize {
				t.Fatalf("group %s class %d differs between identical corpora", g, i)
			}
		}
	}
}

func TestDifferentVersionsDiffer(t *testing.T) {
	a := NewCorpus("v1", 16)
	b := NewCorpus("v2", 16)
	ca, cb := a.Group(GroupJDK)[0], b.Group(GroupJDK)[0]
	if ca.Seed == cb.Seed {
		t.Fatal("different corpus versions share content seeds")
	}
}

func TestScaleDividesCounts(t *testing.T) {
	full := NewCorpus("v", 1)
	scaled := NewCorpus("v", 16)
	nFull := len(full.Group(GroupWASCore))
	nScaled := len(scaled.Group(GroupWASCore))
	if nScaled < nFull/20 || nScaled > nFull/10 {
		t.Fatalf("scaled count %d not ≈ %d/16", nScaled, nFull)
	}
}

func TestTinyGroupsNonDegenerate(t *testing.T) {
	c := NewCorpus("v", 1000)
	for _, g := range AllGroups() {
		if len(c.Group(g)) < 8 {
			t.Fatalf("group %s degenerate at extreme scale", g)
		}
	}
}

func TestWASStackSizeNearCacheCapacity(t *testing.T) {
	// At full scale the WAS middleware + JDK stack should come out near the
	// 120 MB shared class cache of Table III (±25 %).
	c := NewCorpus("v", 1)
	total := c.StackROMBytes(GroupJDK, GroupOSGi, GroupWASCore, GroupDerby)
	lo, hi := int64(90)<<20, int64(150)<<20
	if total < lo || total > hi {
		t.Fatalf("WAS stack ROM = %d MB, want ≈120 MB", total>>20)
	}
}

func TestTuscanyStackNearSmallCache(t *testing.T) {
	// Tuscany's cache in Table III is 25 MB; its stack (without the full
	// JDK, which the bigbank demo barely touches) should be of that order.
	c := NewCorpus("v", 1)
	total := c.StackROMBytes(GroupTuscany, GroupBigBank)
	lo, hi := int64(12)<<20, int64(35)<<20
	if total < lo || total > hi {
		t.Fatalf("Tuscany stack ROM = %d MB, want ≈18-25 MB", total>>20)
	}
}

func TestMiddlewareDominatesAppClasses(t *testing.T) {
	// ~90 % middleware, ~10 % app — the ratio behind the paper's claim that
	// a base-image cache captures most of the benefit.
	c := NewCorpus("v", 1)
	mw := len(c.Stack(GroupOSGi, GroupWASCore, GroupDerby))
	app := len(c.Stack(GroupDayTrader, GroupDayTraderEJB))
	frac := float64(mw) / float64(mw+app)
	if frac < 0.9 {
		t.Fatalf("middleware fraction = %.2f, want ≥ 0.9", frac)
	}
}

func TestClassSizesSmallerThanPage(t *testing.T) {
	// Most classes must be well under a page: the paper's argument for why
	// uncontrolled layout destroys sharing depends on it.
	c := NewCorpus("v", 16)
	small := 0
	all := 0
	for _, g := range AllGroups() {
		for _, cl := range c.Group(g) {
			all++
			if cl.ROMSize < 4096 {
				small++
			}
		}
	}
	if frac := float64(small) / float64(all); frac < 0.40 {
		t.Fatalf("only %.0f%% of classes smaller than a page", frac*100)
	}
}

func TestLookupAndStack(t *testing.T) {
	c := NewCorpus("v", 16)
	g := c.Group(GroupDerby)
	cl, ok := c.Class(g[0].Name)
	if !ok || cl != g[0] {
		t.Fatal("Class lookup failed")
	}
	if _, ok := c.Class("no.such.Class"); ok {
		t.Fatal("phantom class found")
	}
	stack := c.Stack(GroupJDK, GroupDerby)
	if len(stack) != len(c.Group(GroupJDK))+len(c.Group(GroupDerby)) {
		t.Fatal("Stack concatenation wrong")
	}
}

func TestPropertySizesPositiveAndBounded(t *testing.T) {
	c := NewCorpus("v", 8)
	f := func(gi, ci uint8) bool {
		gs := AllGroups()
		g := gs[int(gi)%len(gs)]
		list := c.Group(g)
		cl := list[int(ci)%len(list)]
		return cl.ROMSize >= 1024 && cl.ROMSize <= 36*1024 &&
			cl.RAMSize >= 512 && cl.RAMSize <= 3*1024 &&
			cl.Methods >= 4 && cl.Methods <= 40
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyUniqueNames(t *testing.T) {
	c := NewCorpus("v", 16)
	seen := map[string]bool{}
	for _, g := range AllGroups() {
		for _, cl := range c.Group(g) {
			if seen[cl.Name] {
				t.Fatalf("duplicate class name %s", cl.Name)
			}
			seen[cl.Name] = true
		}
	}
}

// Property: ShuffleWindows is a permutation that never moves a class out of
// its window and is deterministic in the seed.
func TestPropertyShuffleWindows(t *testing.T) {
	c := NewCorpus("v", 16)
	in := c.Stack(GroupJDK)
	f := func(seedRaw uint64, windowRaw uint8) bool {
		window := int(windowRaw%63) + 2
		seed := mem.Seed(seedRaw)
		out := ShuffleWindows(in, seed, window)
		if len(out) != len(in) {
			return false
		}
		// Deterministic.
		out2 := ShuffleWindows(in, seed, window)
		for i := range out {
			if out[i] != out2[i] {
				return false
			}
		}
		// Window-local permutation: the multiset within each window is
		// preserved.
		for base := 0; base < len(in); base += window {
			end := base + window
			if end > len(in) {
				end = len(in)
			}
			seen := map[*Class]int{}
			for i := base; i < end; i++ {
				seen[in[i]]++
				seen[out[i]]--
			}
			for _, n := range seen {
				if n != 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: HotMethods is deterministic and bounded by the method count.
func TestPropertyHotMethodsBounded(t *testing.T) {
	c := NewCorpus("v", 16)
	classes := c.Stack(GroupWASCore)
	f := func(permilleRaw uint16, idx uint16) bool {
		permille := int(permilleRaw % 1001)
		cl := classes[int(idx)%len(classes)]
		n := HotMethods(cl, permille)
		if n != HotMethods(cl, permille) {
			return false
		}
		return n >= 0 && n <= cl.Methods
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
