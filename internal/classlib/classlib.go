// Package classlib generates the synthetic class corpus the workloads load.
//
// The paper's workloads load 10⁴-order class sets dominated by middleware:
// around 90 % of the classes preloaded into the shared cache belong to
// WebSphere (including the OSGi framework and the Derby database) and only
// about 10 % are Java system classes (java.*, javax.*, sun.*,
// org.apache.harmony.*). The corpus reproduces those proportions with
// deterministic per-class sizes and content seeds, so a class has identical
// read-only bytes in every VM that ships the same corpus version — exactly
// the property class-file bytes have in identical base images.
//
// Class *counts* scale with the experiment's memory scale (sizes stay
// realistic relative to the 4 KiB page, which matters: the paper notes data
// structures much smaller than a page cannot share by accident).
package classlib

import (
	"fmt"
	"sort"

	"repro/internal/mem"
)

// Group identifies a component of the class corpus.
type Group string

// Corpus groups. The paper's workloads compose these: a WAS-based app loads
// JDK + OSGi + WASCore + Derby + its own application group; Tuscany loads
// JDK + Tuscany + BigBank.
const (
	GroupJDK Group = "jdk"
	// GroupJDKCore is the subset of the JDK a small standalone server
	// actually touches (the Tuscany bigbank demo does not drag in the full
	// class library the way WAS does).
	GroupJDKCore   Group = "jdk-core"
	GroupOSGi      Group = "osgi"
	GroupWASCore   Group = "wascore"
	GroupDerby     Group = "derby"
	GroupDayTrader Group = "daytrader"
	// GroupDayTraderEJB holds the EJB application classes, which the paper
	// notes are NOT preloadable: the EJB class loaders are not shared-cache
	// aware in the measured J9 implementation.
	GroupDayTraderEJB Group = "daytrader-ejb"
	GroupSPECjE       Group = "specje"
	GroupSPECjEEJB    Group = "specje-ejb"
	GroupTPCW         Group = "tpcw"
	GroupTuscany      Group = "tuscany"
	GroupBigBank      Group = "bigbank"
)

// groupSpec declares a group's unscaled class count and its package prefix.
type groupSpec struct {
	prefix string
	count  int
}

// Unscaled counts sized so the WAS stack's read-only class bytes land near
// the paper's 120 MB shared-cache capacity and Tuscany's near 25 MB
// (see Table III).
var groupSpecs = map[Group]groupSpec{
	GroupJDK:          {prefix: "java.harmony", count: 3600},
	GroupJDKCore:      {prefix: "java.harmony.core", count: 1250},
	GroupOSGi:         {prefix: "org.eclipse.osgi", count: 1100},
	GroupWASCore:      {prefix: "com.ibm.ws", count: 13000},
	GroupDerby:        {prefix: "org.apache.derby", count: 1400},
	GroupDayTrader:    {prefix: "org.apache.geronimo.daytrader", count: 420},
	GroupDayTraderEJB: {prefix: "org.apache.geronimo.daytrader.ejb", count: 130},
	GroupSPECjE:       {prefix: "org.spec.jent", count: 640},
	GroupSPECjEEJB:    {prefix: "org.spec.jent.ejb", count: 160},
	GroupTPCW:         {prefix: "edu.wisc.tpcw", count: 340},
	GroupTuscany:      {prefix: "org.apache.tuscany", count: 2600},
	GroupBigBank:      {prefix: "bigbank.demo", count: 150},
}

// Class describes one Java class.
type Class struct {
	Name  string
	Group Group
	// ROMSize is the read-only part: bytecode, constant pool, string
	// literals — what J9 stores in a ROMClass and CDS can share.
	ROMSize int
	// RAMSize is the writable runtime part: method tables, static fields,
	// resolution state — created privately in every JVM.
	RAMSize int
	// Methods is the method count; the JIT picks hot methods from it.
	Methods int
	// Seed generates the class's read-only bytes; it depends only on the
	// class name and corpus version, never on a process or VM.
	Seed mem.Seed
}

// Corpus is a versioned, scaled set of classes.
type Corpus struct {
	Version string
	Scale   int

	classes map[string]*Class
	groups  map[Group][]*Class
}

// NewCorpus builds the corpus for a content version at a given memory
// scale (class counts divide by scale; scale 1 is the paper's full size).
func NewCorpus(version string, scale int) *Corpus {
	if scale < 1 {
		panic(fmt.Sprintf("classlib: scale %d", scale))
	}
	c := &Corpus{
		Version: version,
		Scale:   scale,
		classes: make(map[string]*Class),
		groups:  make(map[Group][]*Class),
	}
	for _, g := range AllGroups() {
		spec := groupSpecs[g]
		n := spec.count / scale
		if n < 8 {
			n = 8 // keep tiny groups non-degenerate at extreme scales
		}
		list := make([]*Class, 0, n)
		for i := 0; i < n; i++ {
			cl := synthesizeClass(version, g, spec.prefix, i)
			c.classes[cl.Name] = cl
			list = append(list, cl)
		}
		c.groups[g] = list
	}
	return c
}

// AllGroups lists every group in canonical order.
func AllGroups() []Group {
	gs := make([]Group, 0, len(groupSpecs))
	for g := range groupSpecs {
		gs = append(gs, g)
	}
	sort.Slice(gs, func(i, j int) bool { return gs[i] < gs[j] })
	return gs
}

// synthesizeClass derives a class's name, sizes and seed deterministically.
func synthesizeClass(version string, g Group, prefix string, i int) *Class {
	name := fmt.Sprintf("%s.pkg%02d.C%04d", prefix, i%13, i)
	seed := mem.Combine(mem.HashString(version), mem.HashString(name))
	r := mem.Mix(seed)
	// ROM sizes: 1-7 KiB base with a heavy tail (every 16th class is a
	// large generated or framework class). Mean lands near 6 KiB, so the
	// WAS stack's ROM total approximates the 120 MB cache of Table III,
	// while most classes stay well under a page.
	rom := 1024 + int(uint64(r)%6144)
	if i%16 == 0 {
		rom += 28 * 1024
	}
	r = mem.Mix(r)
	// RAMClass (vtables, static slots) is a small writable companion of the
	// ROMClass; the paper's 89.6 % class-metadata elimination implies the
	// writable share of the category is ≈10 %.
	ram := 512 + int(uint64(r)%512)
	r = mem.Mix(r)
	methods := 4 + int(uint64(r)%36)
	return &Class{
		Name:    name,
		Group:   g,
		ROMSize: rom,
		RAMSize: ram,
		Methods: methods,
		Seed:    seed,
	}
}

// Class finds a class by name.
func (c *Corpus) Class(name string) (*Class, bool) {
	cl, ok := c.classes[name]
	return cl, ok
}

// Group returns a group's classes in canonical (load) order.
func (c *Corpus) Group(g Group) []*Class {
	list, ok := c.groups[g]
	if !ok {
		panic(fmt.Sprintf("classlib: unknown group %q", g))
	}
	return list
}

// GroupROMBytes totals the read-only bytes of a group.
func (c *Corpus) GroupROMBytes(g Group) int64 {
	var total int64
	for _, cl := range c.Group(g) {
		total += int64(cl.ROMSize)
	}
	return total
}

// Stack returns the concatenated classes of several groups in canonical
// order — the class set a workload loads.
func (c *Corpus) Stack(groups ...Group) []*Class {
	var out []*Class
	for _, g := range groups {
		out = append(out, c.Group(g)...)
	}
	return out
}

// StackROMBytes totals read-only bytes across groups.
func (c *Corpus) StackROMBytes(groups ...Group) int64 {
	var total int64
	for _, g := range groups {
		total += c.GroupROMBytes(g)
	}
	return total
}

// ShuffleWindows applies seeded Fisher-Yates shuffles within fixed windows
// of the class stream, modelling how lazy, thread-interleaved loading
// locally reorders classes without globally rearranging components. The
// JVM uses it to perturb per-process load order; the ablation benchmarks
// use it to build per-VM cache layouts.
func ShuffleWindows(classes []*Class, seed mem.Seed, window int) []*Class {
	if window <= 1 {
		window = 48
	}
	out := append([]*Class(nil), classes...)
	for base := 0; base < len(out); base += window {
		end := base + window
		if end > len(out) {
			end = len(out)
		}
		r := mem.Combine(seed, mem.Seed(base))
		for i := end - 1; i > base; i-- {
			r = mem.Mix(r)
			k := base + int(uint64(r)%uint64(i-base+1))
			out[i], out[k] = out[k], out[i]
		}
	}
	return out
}

// HotMethods reports how many of a class's methods are hot at the given
// per-mille threshold. The JIT compiles these; an AOT-populated shared
// cache stores ahead-of-time code for exactly the same set, so a JVM
// attaching the cache finds code for every method it would have compiled.
func HotMethods(cl *Class, hotPermille int) int {
	n := cl.Methods * hotPermille / 1000
	r := mem.Mix(cl.Seed)
	if cl.Methods*hotPermille%1000 > int(uint64(r)%1000) {
		n++
	}
	return n
}
