package jitshare

import (
	"testing"

	"repro/internal/classlib"
	"repro/internal/mem"
)

const (
	pg      = mem.DefaultPageSize
	version = "J9-test"
)

func testClasses() []*classlib.Class {
	return classlib.NewCorpus(version, 64).Stack(classlib.GroupJDK, classlib.GroupDerby)
}

func build(capacity int64) *Archive {
	return Build("t-code", version, capacity, pg, testClasses(), 20)
}

func TestBuildDeterministicAndPageAligned(t *testing.T) {
	a := build(8 << 20)
	b := build(8 << 20)
	if a.MethodCount() == 0 {
		t.Fatal("archive holds no methods")
	}
	if a.MethodCount() != b.MethodCount() || a.UsedPages() != b.UsedPages() {
		t.Fatalf("two builds disagree: %d/%d methods, %d/%d pages",
			a.MethodCount(), b.MethodCount(), a.UsedPages(), b.UsedPages())
	}
	next := headerPages // first body page-aligned right after the header
	for i, e := range a.Entries() {
		if e != b.Entries()[i] {
			t.Fatalf("entry %d differs between identical builds: %+v vs %+v", i, e, b.Entries()[i])
		}
		if e.PageOff != next {
			t.Fatalf("entry %d at page %d, want %d (layout must be dense and ordered)", i, e.PageOff, next)
		}
		if want := (e.Size + pg - 1) / pg; e.Pages != want {
			t.Fatalf("entry %d spans %d pages for %d bytes, want %d", i, e.Pages, e.Size, want)
		}
		if e.Size != BodySize(e.Class, e.Method) {
			t.Fatalf("entry %d size %d != BodySize %d", i, e.Size, BodySize(e.Class, e.Method))
		}
		next += e.Pages
	}
	if a.UsedPages() != next {
		t.Fatalf("UsedPages %d, layout ends at %d", a.UsedPages(), next)
	}
}

func TestLookupAndEntryAt(t *testing.T) {
	a := build(8 << 20)
	for _, e := range a.Entries() {
		got, ok := a.Lookup(e.Class, e.Method)
		if !ok || got != e {
			t.Fatalf("Lookup(%v, %d) = %+v, %v; want %+v", e.Class, e.Method, got, ok, e)
		}
		for p := e.PageOff; p < e.PageOff+e.Pages; p++ {
			got, ok := a.EntryAt(p)
			if !ok || got != e {
				t.Fatalf("EntryAt(%d) = %+v, %v; want %+v", p, got, ok, e)
			}
		}
	}
	if _, ok := a.EntryAt(0); ok {
		t.Fatal("EntryAt resolved the header page to a method")
	}
	if _, ok := a.EntryAt(a.UsedPages()); ok {
		t.Fatal("EntryAt resolved a page past the populated prefix")
	}
	if _, ok := a.Lookup(mem.Seed(0xdead), 0); ok {
		t.Fatal("Lookup found a class that was never laid out")
	}
}

func TestTinyCapacityOverflows(t *testing.T) {
	a := build(16 * pg)
	if a.Overflowed() == 0 {
		t.Fatal("16-page archive fit every hot method")
	}
	if a.UsedBytes() > a.CapacityBytes {
		t.Fatalf("layout %d bytes exceeds capacity %d", a.UsedBytes(), a.CapacityBytes)
	}
	if err := a.Validate(version); err != nil {
		t.Fatalf("overflowed archive failed validation: %v", err)
	}
	full := build(8 << 20)
	if a.MethodCount()+a.Overflowed() != full.MethodCount()+full.Overflowed() {
		t.Fatalf("hot-method universe changed with capacity: %d+%d vs %d+%d",
			a.MethodCount(), a.Overflowed(), full.MethodCount(), full.Overflowed())
	}
}

func TestValidateRejectsVersionMismatch(t *testing.T) {
	a := build(8 << 20)
	if err := a.Validate(version); err != nil {
		t.Fatalf("matching version rejected: %v", err)
	}
	if err := a.Validate("J9-other"); err == nil {
		t.Fatal("archive from a different compiler level accepted")
	}
}

func TestBodySeedIsProcessFree(t *testing.T) {
	cl := testClasses()[0]
	s := BodySeed(version, cl.Seed, 0)
	if s != BodySeed(version, cl.Seed, 0) {
		t.Fatal("BodySeed not deterministic")
	}
	if s == BodySeed(version, cl.Seed, 1) {
		t.Fatal("BodySeed ignores the method index")
	}
	if s == BodySeed("J9-other", cl.Seed, 0) {
		t.Fatal("BodySeed ignores the archive version")
	}
}
