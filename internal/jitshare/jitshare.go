// Package jitshare implements ShareJIT-style cross-process sharing of
// JIT-compiled code (PAPERS.md: arxiv 1810.09555), the fix for the paper's
// core negative result that JIT output never TPS-shares.
//
// The idea mirrors the shared class cache (internal/cds): compiled methods
// are split into a position-independent body — content derived only from
// the class, the method index and the archive version, so it is
// byte-identical in every JVM of every guest — and a small per-process
// profile/data stub (invocation counters, receiver-type caches, branch
// profiles) that stays private. The bodies live at canonical, page-aligned,
// version-keyed offsets in a shared code archive whose layout is fixed by
// the corpus's canonical class order, never by any process's load order; a
// page of the archive therefore holds the same bytes at the same offset in
// every process, and KSM merges it across guests exactly as it merges
// ROMClass cache pages.
//
// Sharing is not free forever: when the JIT re-compiles a method at a
// higher optimization tier it specializes the code against the process's
// profile, so the canonical slot is rewritten in place with per-process
// bytes. That write COW-breaks the merged page and the slot never
// re-merges — the realistic decay of code sharing under warming that the
// jitshare sweep measures.
package jitshare

import (
	"fmt"
	"sort"

	"repro/internal/classlib"
	"repro/internal/mem"
)

// headerPages reserves the front of the archive for the method directory,
// keeping the first body page-aligned (like the cds image header).
const headerPages = 1

// Entry records where one method's position-independent body lives in the
// archive.
type Entry struct {
	Class  mem.Seed // class identity seed (classlib.Class.Seed)
	Method int      // method index within the class
	// PageOff is the first archive page of the body. Bodies are page-aligned
	// so that a re-JIT invalidating one method never dirties a neighbour's
	// pages — the property that makes decay per-method, not per-segment.
	PageOff int
	// Pages is the page span of the body.
	Pages int
	// Size is the body's byte length (the last page's tail stays zero).
	Size int
}

// Archive is the canonical layout of a shared code archive: which method
// body lives at which page-aligned offset. Like a cds.Image it is built
// once per workload from the corpus's canonical class order and handed to
// every JVM, so all processes agree on the layout without coordination.
type Archive struct {
	// Name labels the archive (one per workload cache name).
	Name string
	// Version ties the archive to a JVM build; a real runtime would discard
	// an archive produced by a different compiler level.
	Version string
	// CapacityBytes bounds the archive; hot methods that no longer fit
	// overflow into each process's private code cache.
	CapacityBytes int64
	// PageSize is the layout granularity.
	PageSize int

	entries    []Entry
	index      map[entryKey]int
	usedPages  int
	overflowed int
}

type entryKey struct {
	class  mem.Seed
	method int
}

// BodySize reports the generated-code size of a method. This is the exact
// formula the private JIT code cache uses, so enabling the archive changes
// where code lands, never how much is generated.
func BodySize(classSeed mem.Seed, m int) int {
	r := mem.Mix(mem.Combine(classSeed, mem.Seed(m)))
	return 2048 + int(uint64(r)%12288) // 2-14 KiB of generated code
}

// BodySeed derives the content of a position-independent body. Only the
// archive version, the class and the method index contribute — no process
// seed, no profile — which is what makes the bytes identical (and therefore
// mergeable) across every JVM attaching the archive.
func BodySeed(version string, classSeed mem.Seed, m int) mem.Seed {
	return mem.Combine(mem.HashString("jitshare-pic"), mem.HashString(version), classSeed, mem.Seed(m))
}

// Build lays out an archive for the hot methods of the given classes. The
// class list must be the corpus's canonical order (never a process's
// shuffled load order): the layout is part of the archive's identity, and
// any two processes that disagree on it would write different pages.
// Methods that exceed the capacity overflow and compile privately.
func Build(name, version string, capacityBytes int64, pageSize int, classes []*classlib.Class, hotPermille int) *Archive {
	if pageSize <= 0 {
		panic(fmt.Sprintf("jitshare: page size %d", pageSize))
	}
	capacityPages := int(capacityBytes / int64(pageSize))
	if capacityPages <= headerPages {
		panic(fmt.Sprintf("jitshare: capacity %d smaller than header", capacityBytes))
	}
	a := &Archive{
		Name:          name,
		Version:       version,
		CapacityBytes: capacityBytes,
		PageSize:      pageSize,
		index:         make(map[entryKey]int),
		usedPages:     headerPages,
	}
	for _, cl := range classes {
		for m := 0; m < classlib.HotMethods(cl, hotPermille); m++ {
			k := entryKey{cl.Seed, m}
			if _, dup := a.index[k]; dup {
				continue
			}
			size := BodySize(cl.Seed, m)
			pages := (size + pageSize - 1) / pageSize
			if a.usedPages+pages > capacityPages {
				a.overflowed++
				continue
			}
			a.index[k] = len(a.entries)
			a.entries = append(a.entries, Entry{
				Class: cl.Seed, Method: m,
				PageOff: a.usedPages, Pages: pages, Size: size,
			})
			a.usedPages += pages
		}
	}
	return a
}

// Lookup finds a method's canonical slot.
func (a *Archive) Lookup(classSeed mem.Seed, m int) (Entry, bool) {
	i, ok := a.index[entryKey{classSeed, m}]
	if !ok {
		return Entry{}, false
	}
	return a.entries[i], true
}

// EntryAt finds the entry whose body covers the given archive page (the
// header and any alignment gap answer false).
func (a *Archive) EntryAt(page int) (Entry, bool) {
	i := sort.Search(len(a.entries), func(i int) bool {
		return a.entries[i].PageOff+a.entries[i].Pages > page
	})
	if i == len(a.entries) || page < a.entries[i].PageOff {
		return Entry{}, false
	}
	return a.entries[i], true
}

// Entries returns the layout in page order.
func (a *Archive) Entries() []Entry { return a.entries }

// MethodCount reports how many method bodies the archive holds.
func (a *Archive) MethodCount() int { return len(a.entries) }

// Overflowed reports how many hot methods did not fit.
func (a *Archive) Overflowed() int { return a.overflowed }

// UsedPages reports the populated prefix (header included) in pages.
func (a *Archive) UsedPages() int { return a.usedPages }

// UsedBytes reports the populated prefix in bytes.
func (a *Archive) UsedBytes() int64 { return int64(a.usedPages) * int64(a.PageSize) }

// Validate checks the archive against the attaching runtime's version, as a
// real JVM refuses a code archive from a different compiler level.
func (a *Archive) Validate(runtimeVersion string) error {
	if a.Version != runtimeVersion {
		return fmt.Errorf("jitshare: archive %q built for %q, runtime is %q", a.Name, a.Version, runtimeVersion)
	}
	if int64(a.usedPages)*int64(a.PageSize) > a.CapacityBytes {
		return fmt.Errorf("jitshare: archive %q corrupt: %d pages exceed capacity %d",
			a.Name, a.usedPages, a.CapacityBytes)
	}
	return nil
}
