package jitshare

import (
	"repro/internal/guestos"
	"repro/internal/hypervisor"
	"repro/internal/mem"
)

// Area is one process's mapping of the shared code archive: the VMA start
// and the populated page count to examine.
type Area struct {
	Proc  *guestos.Process
	Start mem.VPN
	Pages int
}

// Counts classifies the code-archive pages of a set of processes by sharing
// outcome. Shareable counts resident archive pages (every one of them holds
// canonical or re-JIT-invalidated code and is a merge candidate by
// construction); Merged counts those currently backed by a KSM stable
// frame; Private is the remainder — pages not yet merged, COW-broken by a
// re-JIT, or holding content unique to this process.
type Counts struct {
	Shareable int
	Merged    int
	Private   int
}

// Census performs the read-only sharing walk over the given archive areas,
// resolving guest virtual → guest physical → host frame exactly as the
// memanalysis methodology does. It never faults pages in, so it is safe to
// call from metrics gauges without perturbing the run.
func Census(host *hypervisor.Host, areas []Area) Counts {
	var c Counts
	pm := host.Phys()
	for _, a := range areas {
		if a.Proc == nil || a.Pages <= 0 {
			continue
		}
		vm, ok := a.Proc.Kernel().VM().(*hypervisor.VMProcess)
		if !ok {
			continue
		}
		pt := a.Proc.PageTable()
		for i := 0; i < a.Pages; i++ {
			pte, ok := pt.Lookup(a.Start + mem.VPN(i))
			if !ok || pte.Swapped {
				continue
			}
			f, ok := vm.ResolveResident(vm.GPFNToHostVPN(uint64(pte.Frame)))
			if !ok {
				continue
			}
			c.Shareable++
			if pm.IsKSM(f) {
				c.Merged++
			} else {
				c.Private++
			}
		}
	}
	return c
}
