package balloon

import (
	"testing"

	"repro/internal/guestos"
	"repro/internal/hypervisor"
	"repro/internal/mem"
	"repro/internal/simclock"
)

const pg = mem.DefaultPageSize

func build(t *testing.T, hostPages, guestPages, cachePages int) (*hypervisor.Host, []*guestos.Kernel) {
	t.Helper()
	h := hypervisor.NewHost(hypervisor.Config{Name: "t", RAMBytes: int64(hostPages) * pg}, simclock.New())
	var ks []*guestos.Kernel
	for i := 0; i < 2; i++ {
		vm := h.NewVM(hypervisor.VMConfig{Name: "vm", GuestMemBytes: int64(guestPages) * pg, Seed: mem.Seed(i + 1)})
		k := guestos.Boot(vm, guestos.KernelConfig{Version: "v"})
		k.FS().InstallGenerated("/data", "1", int64(cachePages)*pg)
		k.ReadFileAll("/data")
		ks = append(ks, k)
	}
	return h, ks
}

func TestNoInflationWhenMemoryAmple(t *testing.T) {
	h, ks := build(t, 1024, 128, 16)
	m := NewManager(h, ks, Config{LowWatermarkBytes: 4 * pg, TargetFreeBytes: 8 * pg})
	if got := m.Balance(); got != 0 {
		t.Fatalf("reclaimed %d with ample memory", got)
	}
	if m.Stats().Inflations != 0 {
		t.Fatal("inflation counted without pressure")
	}
}

func TestInflationShrinksPageCacheUnderPressure(t *testing.T) {
	// Host with 100 pages; two guests each caching 32 file pages → ~64 used.
	h, ks := build(t, 100, 64, 32)
	free := h.FreeBytes()
	m := NewManager(h, ks, Config{LowWatermarkBytes: free + 8*pg, TargetFreeBytes: free + 24*pg})
	got := m.Balance()
	if got == 0 {
		t.Fatal("no reclamation under pressure")
	}
	if h.FreeBytes() <= free {
		t.Fatal("host free memory did not grow")
	}
	for _, k := range ks {
		if k.Stats().PageCacheDrops == 0 {
			t.Fatal("guest page cache untouched")
		}
	}
	if m.Stats().PagesReclaimed != got {
		t.Fatal("stats inconsistent")
	}
}

func TestInflationBoundedByReclaimable(t *testing.T) {
	h, ks := build(t, 100, 64, 8)
	free := h.FreeBytes()
	m := NewManager(h, ks, Config{LowWatermarkBytes: free + 512*pg, TargetFreeBytes: free + 1024*pg})
	got := m.Balance()
	if got > 16 {
		t.Fatalf("reclaimed %d pages, more than the caches hold", got)
	}
}

func TestDefaultsApplied(t *testing.T) {
	h, ks := build(t, 1024, 64, 8)
	m := NewManager(h, ks, Config{})
	if m.cfg.LowWatermarkBytes <= 0 || m.cfg.TargetFreeBytes < m.cfg.LowWatermarkBytes {
		t.Fatalf("defaults not applied: %+v", m.cfg)
	}
}
