package balloon

import (
	"testing"

	"repro/internal/guestos"
	"repro/internal/hypervisor"
	"repro/internal/mem"
	"repro/internal/simclock"
)

const pg = mem.DefaultPageSize

func build(t *testing.T, hostPages, guestPages, cachePages int) (*hypervisor.Host, []*guestos.Kernel) {
	t.Helper()
	h := hypervisor.NewHost(hypervisor.Config{Name: "t", RAMBytes: int64(hostPages) * pg}, simclock.New())
	var ks []*guestos.Kernel
	for i := 0; i < 2; i++ {
		vm := h.NewVM(hypervisor.VMConfig{Name: "vm", GuestMemBytes: int64(guestPages) * pg, Seed: mem.Seed(i + 1)})
		k := guestos.Boot(vm, guestos.KernelConfig{Version: "v"})
		k.FS().InstallGenerated("/data", "1", int64(cachePages)*pg)
		k.ReadFileAll("/data")
		ks = append(ks, k)
	}
	return h, ks
}

func TestNoInflationWhenMemoryAmple(t *testing.T) {
	h, ks := build(t, 1024, 128, 16)
	m := NewManager(h, ks, Config{LowWatermarkBytes: 4 * pg, TargetFreeBytes: 8 * pg})
	if got := m.Balance(); got != 0 {
		t.Fatalf("reclaimed %d with ample memory", got)
	}
	if m.Stats().Inflations != 0 {
		t.Fatal("inflation counted without pressure")
	}
}

func TestInflationShrinksPageCacheUnderPressure(t *testing.T) {
	// Host with 100 pages; two guests each caching 32 file pages → ~64 used.
	h, ks := build(t, 100, 64, 32)
	free := h.FreeBytes()
	m := NewManager(h, ks, Config{LowWatermarkBytes: free + 8*pg, TargetFreeBytes: free + 24*pg})
	got := m.Balance()
	if got == 0 {
		t.Fatal("no reclamation under pressure")
	}
	if h.FreeBytes() <= free {
		t.Fatal("host free memory did not grow")
	}
	for _, k := range ks {
		if k.Stats().PageCacheDrops == 0 {
			t.Fatal("guest page cache untouched")
		}
	}
	if m.Stats().PagesReclaimed != got {
		t.Fatal("stats inconsistent")
	}
}

func TestInflationBoundedByReclaimable(t *testing.T) {
	h, ks := build(t, 100, 64, 8)
	free := h.FreeBytes()
	m := NewManager(h, ks, Config{LowWatermarkBytes: free + 512*pg, TargetFreeBytes: free + 1024*pg})
	got := m.Balance()
	if got > 16 {
		t.Fatalf("reclaimed %d pages, more than the caches hold", got)
	}
}

func TestDefaultsApplied(t *testing.T) {
	h, ks := build(t, 1024, 64, 8)
	m := NewManager(h, ks, Config{})
	if m.cfg.LowWatermarkBytes <= 0 || m.cfg.TargetFreeBytes < m.cfg.LowWatermarkBytes {
		t.Fatalf("defaults not applied: %+v", m.cfg)
	}
}

// The paper's point about ballooning: under pressure the guest gives up
// page cache (cheap, refetchable) so the hypervisor never has to swap
// (expensive, opaque). Same demand, with and without a balloon manager.
func TestInflationAvoidsHypervisorSwap(t *testing.T) {
	demand := func(t *testing.T, withBalloon bool) uint64 {
		t.Helper()
		h, ks := build(t, 160, 64, 48)
		free := h.FreeBytes()
		if withBalloon {
			m := NewManager(h, ks, Config{LowWatermarkBytes: free + pg, TargetFreeBytes: free + 48*pg})
			if m.Balance() == 0 {
				t.Fatal("balloon reclaimed nothing")
			}
		}
		// A third tenant arrives needing more than the host has free; without
		// the balloon the hypervisor must swap someone out to fit it.
		vm := h.NewVM(hypervisor.VMConfig{Name: "late", GuestMemBytes: 128 * pg, Seed: 99})
		need := uint64(free/pg) + 16
		for i := uint64(0); i < need; i++ {
			vm.FillGuestPage(i, mem.Seed(1000+i))
		}
		return h.Stats().SwapOuts
	}
	if got := demand(t, false); got == 0 {
		t.Fatal("control run never swapped; demand too small to test the interaction")
	}
	if got := demand(t, true); got != 0 {
		t.Fatalf("hypervisor swapped %d pages despite balloon inflation", got)
	}
}

func TestDeflateRestoresAccounting(t *testing.T) {
	h, ks := build(t, 100, 64, 32)
	free := h.FreeBytes()
	m := NewManager(h, ks, Config{LowWatermarkBytes: free + 8*pg, TargetFreeBytes: free + 24*pg})
	got := m.Balance()
	if got == 0 || m.BalloonedPages() != got {
		t.Fatalf("ledger %d after reclaiming %d", m.BalloonedPages(), got)
	}
	back := m.Deflate()
	if back != got {
		t.Fatalf("deflate returned %d of %d ballooned pages", back, got)
	}
	if m.BalloonedPages() != 0 {
		t.Fatalf("ledger %d after deflate", m.BalloonedPages())
	}
	s := m.Stats()
	if s.Deflations != 1 || s.PagesRestored != got || s.PagesReclaimed != got {
		t.Fatalf("stats inconsistent after deflate: %+v", s)
	}
	if m.Deflate() != 0 {
		t.Fatal("second deflate returned pages from an empty balloon")
	}
}

func TestDeflateRefusedUnderPressure(t *testing.T) {
	h, ks := build(t, 100, 64, 32)
	free := h.FreeBytes()
	// Target far beyond what the caches can yield: inflation runs dry with
	// the host still below target, so the balloon must stay inflated.
	m := NewManager(h, ks, Config{LowWatermarkBytes: free + 8*pg, TargetFreeBytes: free + 1024*pg})
	got := m.Balance()
	if got == 0 {
		t.Fatal("no reclamation under pressure")
	}
	if m.Deflate() != 0 {
		t.Fatal("deflated while host free memory is still below target")
	}
	if m.BalloonedPages() != got {
		t.Fatal("ledger changed by refused deflate")
	}
}

func TestReclaimPagesIgnoresWatermarks(t *testing.T) {
	h, ks := build(t, 1024, 128, 32)
	m := NewManager(h, ks, Config{LowWatermarkBytes: 4 * pg, TargetFreeBytes: 8 * pg})
	free := h.FreeBytes()
	got := m.ReclaimPages(20)
	if got == 0 {
		t.Fatal("targeted reclaim recovered nothing despite cached file pages")
	}
	if got > 20 {
		t.Fatalf("reclaimed %d pages, asked for 20", got)
	}
	if h.FreeBytes() <= free {
		t.Fatal("host free memory did not grow")
	}
	if m.BalloonedPages() != got {
		t.Fatalf("ledger %d != reclaimed %d", m.BalloonedPages(), got)
	}
	if m.ReclaimPages(0) != 0 {
		t.Fatal("zero-page request reclaimed something")
	}
}

func TestDropGuestForgetsLedger(t *testing.T) {
	h, ks := build(t, 1024, 128, 32)
	m := NewManager(h, ks, Config{})
	got := m.ReclaimPages(40)
	if got == 0 {
		t.Fatal("no reclamation to set the ledger up")
	}
	dropped := m.DropGuest(ks[0])
	if dropped == 0 {
		t.Fatal("dropped guest's ledger was empty")
	}
	if m.BalloonedPages() != got-dropped {
		t.Fatalf("ledger %d after drop, want %d", m.BalloonedPages(), got-dropped)
	}
	if m.DropGuest(ks[0]) != 0 {
		t.Fatal("double drop found a ledger")
	}
	// A rebooted guest comes back with an empty balloon and is reclaimable.
	m.AddGuest(ks[0])
	if m.BalloonedPages() != got-dropped {
		t.Fatal("AddGuest changed the ledger")
	}
	if m.ReclaimPages(10) == 0 {
		t.Fatal("re-added guest not reclaimable")
	}
}

func TestManagerCopiesKernelList(t *testing.T) {
	// The caller's slice may be mutated in place (guest kills compact it);
	// the manager must hold its own copy or its index-parallel ledger skews.
	h, ks := build(t, 1024, 128, 32)
	m := NewManager(h, ks, Config{})
	if m.ReclaimPages(40) == 0 {
		t.Fatal("no reclamation to set the ledger up")
	}
	victim := ks[0]
	ks = append(ks[:0], ks[1:]...) // caller compacts its own list
	_ = ks
	if m.DropGuest(victim) == 0 {
		t.Fatal("manager lost track of the dropped guest after caller mutation")
	}
}
