package balloon

import (
	"testing"

	"repro/internal/guestos"
	"repro/internal/hypervisor"
	"repro/internal/mem"
	"repro/internal/simclock"
)

// buildDirty is build with hypervisor dirty logging on, which switches the
// balloon manager to coldest-first reclaim.
func buildDirty(t *testing.T, hostPages, guestPages, cachePages int) (*hypervisor.Host, []*guestos.Kernel) {
	t.Helper()
	h := hypervisor.NewHost(hypervisor.Config{
		Name:     "t",
		RAMBytes: int64(hostPages) * pg,
		DirtyLog: true,
	}, simclock.New())
	var ks []*guestos.Kernel
	for i := 0; i < 2; i++ {
		vm := h.NewVM(hypervisor.VMConfig{Name: "vm", GuestMemBytes: int64(guestPages) * pg, Seed: mem.Seed(i + 1)})
		k := guestos.Boot(vm, guestos.KernelConfig{Version: "v"})
		k.FS().InstallGenerated("/data", "1", int64(cachePages)*pg)
		k.ReadFileAll("/data")
		ks = append(ks, k)
	}
	return h, ks
}

// setWorkingSet seeds a kernel's VM with a dirty-drain observation so its
// working-set estimate reads as the given page count.
func setWorkingSet(t *testing.T, k *guestos.Kernel, pages int) {
	t.Helper()
	vm, ok := k.VM().(*hypervisor.VMProcess)
	if !ok {
		t.Fatalf("kernel VM is %T, want *hypervisor.VMProcess", k.VM())
	}
	vm.ObserveDirtyDrain(pages)
}

func TestReclaimPagesDrainsColdestFirst(t *testing.T) {
	h, ks := buildDirty(t, 1024, 128, 32)
	setWorkingSet(t, ks[0], 500) // hot
	setWorkingSet(t, ks[1], 4)   // cold
	m := NewManager(h, ks, Config{LowWatermarkBytes: 4 * pg, TargetFreeBytes: 8 * pg})
	got := m.ReclaimPages(20)
	if got != 20 {
		t.Fatalf("reclaimed %d of 20 with 32 cached pages per guest", got)
	}
	if drops := ks[0].Stats().PageCacheDrops; drops != 0 {
		t.Fatalf("hot guest lost %d cache pages while the cold guest could cover the request", drops)
	}
	if drops := ks[1].Stats().PageCacheDrops; drops == 0 {
		t.Fatal("cold guest's page cache untouched")
	}
}

func TestReclaimSpillsToHotterGuestWhenColdRunsDry(t *testing.T) {
	h, ks := buildDirty(t, 1024, 128, 32)
	setWorkingSet(t, ks[0], 500)
	setWorkingSet(t, ks[1], 4)
	m := NewManager(h, ks, Config{LowWatermarkBytes: 4 * pg, TargetFreeBytes: 8 * pg})
	got := m.ReclaimPages(48) // more than one guest's 32-page cache
	if got != 48 {
		t.Fatalf("reclaimed %d of 48 with 64 cached pages total", got)
	}
	if drops := ks[0].Stats().PageCacheDrops; drops == 0 {
		t.Fatal("hot guest untouched although the cold guest ran dry")
	}
	if drops := ks[1].Stats().PageCacheDrops; drops < 32 {
		t.Fatalf("cold guest gave up %d pages, want its whole 32-page cache first", drops)
	}
}

func TestUnknownWorkingSetTreatedAsHot(t *testing.T) {
	h, ks := buildDirty(t, 1024, 128, 32)
	// ks[0] has no estimate yet (no drain observed); ks[1] looks busy but
	// still colder than "unknown".
	setWorkingSet(t, ks[1], 500)
	m := NewManager(h, ks, Config{LowWatermarkBytes: 4 * pg, TargetFreeBytes: 8 * pg})
	if got := m.ReclaimPages(20); got != 20 {
		t.Fatalf("reclaimed %d of 20", got)
	}
	if drops := ks[0].Stats().PageCacheDrops; drops != 0 {
		t.Fatal("guest without an estimate was reclaimed before a measured one")
	}
	if drops := ks[1].Stats().PageCacheDrops; drops == 0 {
		t.Fatal("measured guest untouched")
	}
}

func TestBalanceUsesColdestFirstUnderDirtyLog(t *testing.T) {
	h, ks := buildDirty(t, 100, 64, 32)
	setWorkingSet(t, ks[0], 500)
	setWorkingSet(t, ks[1], 4)
	free := h.FreeBytes()
	// A target the cold guest's cache can satisfy alone.
	m := NewManager(h, ks, Config{LowWatermarkBytes: free + 8*pg, TargetFreeBytes: free + 16*pg})
	if got := m.Balance(); got == 0 {
		t.Fatal("no reclamation under pressure")
	}
	if drops := ks[0].Stats().PageCacheDrops; drops != 0 {
		t.Fatalf("hot guest lost %d cache pages on a shortfall the cold guest covers", drops)
	}
	if drops := ks[1].Stats().PageCacheDrops; drops == 0 {
		t.Fatal("cold guest's page cache untouched")
	}
}
