// Package balloon implements the ballooning baseline (Waldspurger, OSDI
// '02) the paper's related-work section contrasts with TPS: a manager that
// responds to host memory pressure by asking guests to give memory back.
// The guest kernel satisfies the request the cheap way first — shrinking
// its page cache — exactly the behaviour the paper cites as ballooning's
// advantage ("it can reduce memory by shrinking its disk cache rather than
// by paging-out pages").
//
// The paper also notes KVM ships no balloon resource manager, so a separate
// manager must decide target sizes; this package is that manager, with the
// simple proportional heuristic the paper alludes to.
package balloon

import (
	"sort"

	"repro/internal/guestos"
	"repro/internal/hypervisor"
)

// Config tunes the manager.
type Config struct {
	// LowWatermarkBytes triggers inflation when host free memory drops
	// below it.
	LowWatermarkBytes int64
	// TargetFreeBytes is how much free memory inflation tries to recover.
	TargetFreeBytes int64
}

// Manager balances guest balloons against host pressure.
type Manager struct {
	host    *hypervisor.Host
	cfg     Config
	kernels []*guestos.Kernel

	// ballooned is how many pages each guest's balloon currently holds
	// (index-parallel to kernels); the sum is the manager's ledger of memory
	// taken from guests and not yet given back.
	ballooned []int

	stats Stats
}

// Stats counts balloon activity.
type Stats struct {
	Inflations     uint64
	Deflations     uint64
	PagesReclaimed int
	PagesRestored  int
}

// NewManager creates a manager over the given guests.
func NewManager(host *hypervisor.Host, kernels []*guestos.Kernel, cfg Config) *Manager {
	if cfg.LowWatermarkBytes <= 0 {
		cfg.LowWatermarkBytes = int64(host.PageSize()) * 256
	}
	if cfg.TargetFreeBytes < cfg.LowWatermarkBytes {
		cfg.TargetFreeBytes = cfg.LowWatermarkBytes * 2
	}
	// Copy the guest list: the manager's membership changes independently of
	// the caller's slice (DropGuest/AddGuest), so sharing a backing array
	// would corrupt both.
	ks := append([]*guestos.Kernel(nil), kernels...)
	return &Manager{host: host, cfg: cfg, kernels: ks, ballooned: make([]int, len(ks))}
}

// Stats returns manager counters.
func (m *Manager) Stats() Stats { return m.stats }

// BalloonedPages reports how many pages the balloons currently hold across
// all guests (inflations minus deflations).
func (m *Manager) BalloonedPages() int {
	total := 0
	for _, n := range m.ballooned {
		total += n
	}
	return total
}

// Balance checks host pressure and, if free memory is below the low
// watermark, inflates guest balloons until the target is met or the guests
// have nothing cheap left to give. Without working-set estimates every guest
// gives proportionally; with the host's dirty log on, cold guests give
// first. It returns the number of pages recovered.
func (m *Manager) Balance() int {
	free := m.host.FreeBytes()
	if free >= m.cfg.LowWatermarkBytes || len(m.kernels) == 0 {
		return 0
	}
	m.stats.Inflations++
	needPages := int((m.cfg.TargetFreeBytes - free) / int64(m.host.PageSize()))
	total := 0
	if m.host.DirtyLogEnabled() {
		total = m.reclaimColdestFirst(needPages)
	} else {
		perGuest := needPages/len(m.kernels) + 1
		for i, k := range m.kernels {
			got := k.ReclaimPages(perGuest)
			m.ballooned[i] += got
			total += got
		}
	}
	m.stats.PagesReclaimed += total
	return total
}

// ReclaimPages asks the guests for up to n pages right now, regardless of
// watermarks — the targeted inflation a memory-demand spike needs before the
// host falls back to swapping. Without working-set estimates the request is
// spread evenly; with the host's dirty log on, cold guests are squeezed
// first. It returns the pages actually recovered (guests may have nothing
// cheap left to give).
func (m *Manager) ReclaimPages(n int) int {
	if n <= 0 || len(m.kernels) == 0 {
		return 0
	}
	m.stats.Inflations++
	total := 0
	if m.host.DirtyLogEnabled() {
		total = m.reclaimColdestFirst(n)
	} else {
		perGuest := n/len(m.kernels) + 1
		for i, k := range m.kernels {
			if total >= n {
				break
			}
			want := perGuest
			if want > n-total {
				want = n - total
			}
			got := k.ReclaimPages(want)
			m.ballooned[i] += got
			total += got
		}
	}
	m.stats.PagesReclaimed += total
	return total
}

// reclaimColdestFirst squeezes guests in ascending working-set order — the
// dirty-log drain estimate the KSM scanner maintains — so the page cache a
// hot guest is actively using is the last thing sacrificed. Guests without
// an estimate (no drain observed yet) are treated as hot; ties and unknowns
// keep manager order, so the pass is deterministic.
func (m *Manager) reclaimColdestFirst(n int) int {
	type ranked struct {
		idx int
		ws  int
	}
	order := make([]ranked, 0, len(m.kernels))
	for i, k := range m.kernels {
		ws := int(^uint(0) >> 1) // unknown: hottest possible
		if vm, ok := k.VM().(*hypervisor.VMProcess); ok {
			if est, valid := vm.WorkingSetPages(); valid {
				ws = est
			}
		}
		order = append(order, ranked{idx: i, ws: ws})
	}
	sort.SliceStable(order, func(a, b int) bool { return order[a].ws < order[b].ws })
	total := 0
	for _, r := range order {
		if total >= n {
			break
		}
		got := m.kernels[r.idx].ReclaimPages(n - total)
		m.ballooned[r.idx] += got
		total += got
	}
	return total
}

// DropGuest removes a dead guest from the manager. Its balloon ledger is
// simply forgotten — the reclaimed pages died with the process, there is
// nothing to give back — and the forgotten page count is returned.
func (m *Manager) DropGuest(k *guestos.Kernel) int {
	for i, kk := range m.kernels {
		if kk == k {
			n := m.ballooned[i]
			m.kernels = append(m.kernels[:i], m.kernels[i+1:]...)
			m.ballooned = append(m.ballooned[:i], m.ballooned[i+1:]...)
			return n
		}
	}
	return 0
}

// AddGuest starts managing a (re)booted guest with an empty balloon.
func (m *Manager) AddGuest(k *guestos.Kernel) {
	m.kernels = append(m.kernels, k)
	m.ballooned = append(m.ballooned, 0)
}

// Deflate releases the balloons once host pressure has eased (free memory at
// or above the inflation target): the ledger returns to the guests, which
// regrow their page cache on demand — dropped cache contents re-fault from
// backing files, so only the accounting needs restoring. It returns the
// number of pages given back; zero while the host is still under pressure.
func (m *Manager) Deflate() int {
	if m.host.FreeBytes() < m.cfg.TargetFreeBytes {
		return 0
	}
	total := 0
	for i, n := range m.ballooned {
		if n > 0 {
			total += n
			m.ballooned[i] = 0
		}
	}
	if total == 0 {
		return 0
	}
	m.stats.Deflations++
	m.stats.PagesRestored += total
	return total
}
