// Package balloon implements the ballooning baseline (Waldspurger, OSDI
// '02) the paper's related-work section contrasts with TPS: a manager that
// responds to host memory pressure by asking guests to give memory back.
// The guest kernel satisfies the request the cheap way first — shrinking
// its page cache — exactly the behaviour the paper cites as ballooning's
// advantage ("it can reduce memory by shrinking its disk cache rather than
// by paging-out pages").
//
// The paper also notes KVM ships no balloon resource manager, so a separate
// manager must decide target sizes; this package is that manager, with the
// simple proportional heuristic the paper alludes to.
package balloon

import (
	"repro/internal/guestos"
	"repro/internal/hypervisor"
)

// Config tunes the manager.
type Config struct {
	// LowWatermarkBytes triggers inflation when host free memory drops
	// below it.
	LowWatermarkBytes int64
	// TargetFreeBytes is how much free memory inflation tries to recover.
	TargetFreeBytes int64
}

// Manager balances guest balloons against host pressure.
type Manager struct {
	host    *hypervisor.Host
	cfg     Config
	kernels []*guestos.Kernel

	stats Stats
}

// Stats counts balloon activity.
type Stats struct {
	Inflations     uint64
	PagesReclaimed int
}

// NewManager creates a manager over the given guests.
func NewManager(host *hypervisor.Host, kernels []*guestos.Kernel, cfg Config) *Manager {
	if cfg.LowWatermarkBytes <= 0 {
		cfg.LowWatermarkBytes = int64(host.PageSize()) * 256
	}
	if cfg.TargetFreeBytes < cfg.LowWatermarkBytes {
		cfg.TargetFreeBytes = cfg.LowWatermarkBytes * 2
	}
	return &Manager{host: host, cfg: cfg, kernels: kernels}
}

// Stats returns manager counters.
func (m *Manager) Stats() Stats { return m.stats }

// Balance checks host pressure and, if free memory is below the low
// watermark, inflates every guest's balloon proportionally until the target
// is met or the guests have nothing cheap left to give. It returns the
// number of pages recovered.
func (m *Manager) Balance() int {
	free := m.host.FreeBytes()
	if free >= m.cfg.LowWatermarkBytes || len(m.kernels) == 0 {
		return 0
	}
	m.stats.Inflations++
	needPages := int((m.cfg.TargetFreeBytes - free) / int64(m.host.PageSize()))
	perGuest := needPages/len(m.kernels) + 1
	total := 0
	for _, k := range m.kernels {
		total += k.ReclaimPages(perGuest)
	}
	m.stats.PagesReclaimed += total
	return total
}
