package core

import (
	"fmt"
	"strings"

	"repro/internal/jvm"
)

// Claim is one falsifiable statement from the paper that the simulation
// must reproduce. The self-check (cmd/tpsim check) evaluates every claim on
// fresh quick runs and reports pass/fail — a downstream user's one-command
// verification that the reproduction behaves on their machine.
type Claim struct {
	ID        string
	Statement string
	// Check runs the experiment(s) and returns a measured summary plus
	// whether the claim held.
	Check func(o Options) (string, bool)
}

// Claims returns the full claim suite in paper order.
func Claims() []Claim {
	return []Claim{
		{
			ID:        "java-dominates",
			Statement: "Java processes are the largest memory consumers in each guest VM (§2.D)",
			Check: func(o Options) (string, bool) {
				memF, _ := Fig2(o)
				for _, v := range memF.VMs {
					if v.JavaMB < v.KernelMB || v.JavaMB < v.OtherMB {
						return fmt.Sprintf("VM %s: java %.0f MB not dominant", v.Name, v.JavaMB), false
					}
				}
				return fmt.Sprintf("java %.0f-%.0f MB per guest", memF.VMs[0].JavaMB, memF.VMs[len(memF.VMs)-1].JavaMB), true
			},
		},
		{
			ID:        "kernel-half-shared",
			Statement: "About half the guest kernel area is shared across VMs (§2.D)",
			Check: func(o Options) (string, bool) {
				memF, _ := Fig2(o)
				owner, other := memF.VMs[0].KernelMB, memF.VMs[1].KernelMB
				frac := (owner - other) / owner
				return fmt.Sprintf("kernel %.0f MB owner vs %.0f MB non-primary (%.0f%% shared)", owner, other, frac*100),
					frac > 0.3 && frac < 0.8
			},
		},
		{
			ID:        "baseline-classmeta-unshared",
			Statement: "Without preloading, class metadata is essentially unshared (§3.A)",
			Check: func(o Options) (string, bool) {
				_, javaF := Fig2(o)
				worst := 0.0
				for _, b := range javaF.Bars {
					cm := b.Cat(jvm.CatClassMeta)
					if f := cm.SharedMB / cm.MappedMB; f > worst {
						worst = f
					}
				}
				return fmt.Sprintf("worst-case %.1f%% shared", worst*100), worst < 0.15
			},
		},
		{
			ID:        "baseline-heap-unshared",
			Statement: "The Java heap shares almost nothing (paper: 0.7%, zero pages only) (§3.A)",
			Check: func(o Options) (string, bool) {
				_, javaF := Fig2(o)
				worst := 0.0
				for _, b := range javaF.Bars {
					hp := b.Cat(jvm.CatHeap)
					if f := hp.SharedMB / hp.MappedMB; f > worst {
						worst = f
					}
				}
				return fmt.Sprintf("worst-case %.1f%% shared", worst*100), worst < 0.1
			},
		},
		{
			ID:        "code-area-shared",
			Statement: "The code area is the one JVM area TPS shares without help (§3.B)",
			Check: func(o Options) (string, bool) {
				_, javaF := Fig2(o)
				n := 0
				for _, b := range javaF.Bars {
					c := b.Cat(jvm.CatCode)
					if c.SharedMB > 0.5*c.MappedMB {
						n++
					}
				}
				return fmt.Sprintf("%d of %d JVMs share most of their code area", n, len(javaF.Bars)),
					n == len(javaF.Bars)-1 // the owner pays
			},
		},
		{
			ID:        "preload-classmeta-shared",
			Statement: "Preloading via the copied cache eliminates most class metadata in non-primary JVMs (paper: 89.6%) (§5.A)",
			Check: func(o Options) (string, bool) {
				_, javaF := Fig4(o)
				high, total := 0, 0
				var best float64
				for _, b := range javaF.Bars {
					cm := b.Cat(jvm.CatClassMeta)
					f := cm.SharedMB / cm.MappedMB
					total++
					if f > 0.7 {
						high++
					}
					if f > best {
						best = f
					}
				}
				return fmt.Sprintf("%d of %d JVMs above 70%% (best %.1f%%)", high, total, best*100),
					high == total-1
			},
		},
		{
			ID:        "preload-reduces-total",
			Statement: "Preloading reduces the cluster's total physical memory (paper: 3648→3314 MB) (§5.A)",
			Check: func(o Options) (string, bool) {
				m2, _ := Fig2(o)
				m4, _ := Fig4(o)
				return fmt.Sprintf("%.0f → %.0f MB (Δ %.0f)", m2.TotalMB, m4.TotalMB, m4.TotalMB-m2.TotalMB),
					m4.TotalMB < m2.TotalMB-150
			},
		},
		{
			ID:        "powervm-transfer",
			Statement: "The technique transfers to a system-VM hypervisor (PowerVM) (§5.B)",
			Check: func(o Options) (string, bool) {
				f := Fig6(o)
				return fmt.Sprintf("savings %.0f → %.0f MB with preloading", f.NoPreload.SavingMB(), f.Preload.SavingMB()),
					f.Preload.SavingMB() > f.NoPreload.SavingMB()+50
			},
		},
		{
			ID:        "extra-vm",
			Statement: "Preloading lets one extra DayTrader guest run with acceptable performance (§5.C)",
			Check: func(o Options) (string, bool) {
				o.Quick = true
				fig := Fig7(o)
				var at8 SweepPoint
				found := false
				for _, p := range fig.Points {
					if p.NumVMs == 8 {
						at8, found = p, true
					}
				}
				if !found {
					return "no 8-VM point", false
				}
				return fmt.Sprintf("8 VMs: default %.1f vs ours %.1f req/s", at8.Default.Mean, at8.Preloaded.Mean),
					at8.Preloaded.Mean > 3*at8.Default.Mean
			},
		},
	}
}

// RunClaims evaluates every claim and renders a report; ok is true only if
// all claims held. Each claim runs its experiments on fresh clusters, so the
// checks fan out across the runner's pool; the report keeps paper order.
func RunClaims(o Options) (string, bool) {
	type verdict struct {
		detail string
		ok     bool
	}
	claims := Claims()
	jobs := make([]Job[verdict], len(claims))
	for i, c := range claims {
		c := c
		jobs[i] = Job[verdict]{Label: "claim " + c.ID, Run: func() verdict {
			detail, ok := c.Check(o)
			return verdict{detail: detail, ok: ok}
		}}
	}
	results := RunAll(o.runner(), jobs)
	var b strings.Builder
	allOK := true
	for i, c := range claims {
		status := "PASS"
		if !results[i].ok {
			status = "FAIL"
			allOK = false
		}
		fmt.Fprintf(&b, "[%s] %-28s %s\n%*s measured: %s\n", status, c.ID, c.Statement, 6, "", results[i].detail)
	}
	return b.String(), allOK
}
