package core

import (
	"testing"

	"repro/internal/placement"
	"repro/internal/workload"
)

// End-to-end Memory Buddies tests: these need simulated clusters, so they
// live in core with FingerprintSpec/EvaluatePlacement rather than in the
// pure placement package.

const placementScale = 64

func TestFingerprintsDistinguishWorkloads(t *testing.T) {
	dt1 := FingerprintSpec(workload.DayTrader(), false, placementScale, 1)
	dt2 := FingerprintSpec(workload.DayTrader(), false, placementScale, 2)
	tus := FingerprintSpec(workload.Tuscany(), false, placementScale, 3)
	if len(dt1) == 0 || len(tus) == 0 {
		t.Fatal("empty fingerprints")
	}
	sameSim := placement.Similarity(dt1, dt2)
	crossSim := placement.Similarity(dt1, tus)
	if sameSim <= crossSim {
		t.Fatalf("same-workload similarity %d not above cross-workload %d", sameSim, crossSim)
	}
}

func TestBySimilarityGroupsSameWorkload(t *testing.T) {
	// Two DayTrader and two Tuscany VMs, interleaved; similarity packing
	// must put like with like.
	specs := []workload.Spec{workload.DayTrader(), workload.Tuscany(), workload.DayTrader(), workload.Tuscany()}
	reqs := make([]placement.Request, len(specs))
	for i, s := range specs {
		reqs[i] = placement.Request{Spec: s, Fingerprint: FingerprintSpec(s, false, placementScale, 0)}
	}
	pl := placement.BySimilarity(reqs, 2, 2)
	for _, bin := range pl {
		if len(bin) != 2 {
			t.Fatalf("uneven packing: %+v", pl)
		}
		if reqs[bin[0]].Spec.Name != reqs[bin[1]].Spec.Name {
			t.Fatalf("similarity packing mixed workloads: %+v", pl)
		}
	}
}

func TestSmartPlacementSavesMore(t *testing.T) {
	// The Memory Buddies claim: colocating similar VMs increases TPS
	// savings versus content-blind round-robin. The requests arrive grouped
	// (two DayTrader then two Tuscany), so round-robin splits each pair
	// across hosts while similarity packing reunites them.
	specs := []workload.Spec{workload.DayTrader(), workload.DayTrader(), workload.Tuscany(), workload.Tuscany()}
	reqs := make([]placement.Request, len(specs))
	for i, s := range specs {
		reqs[i] = placement.Request{Spec: s, Fingerprint: FingerprintSpec(s, false, placementScale, 0)}
	}
	rr := EvaluatePlacement(reqs, placement.RoundRobin(len(reqs), 2), false, placementScale, 0)
	smart := EvaluatePlacement(reqs, placement.BySimilarity(reqs, 2, 2), false, placementScale, 0)
	if smart.TotalSavedMB <= rr.TotalSavedMB {
		t.Fatalf("smart placement saved %.0f MB, round-robin %.0f MB",
			smart.TotalSavedMB, rr.TotalSavedMB)
	}
	if smart.TotalUsedMB >= rr.TotalUsedMB {
		t.Fatalf("smart placement used %.0f MB, round-robin %.0f MB",
			smart.TotalUsedMB, rr.TotalUsedMB)
	}
	if smart.String() == "" {
		t.Fatal("empty render")
	}
}
