package core

import "testing"

// TestKSMShardSweepQualitativeAndDeterministic runs the ksmshard sweep once
// sequentially and once on four workers: the figure must be byte-identical at
// any -jobs width, and the rows must show the tentpole claim — every outcome
// column is identical down the shard axis (sharding buys wall time, never
// different merges) while the per-shard split proves the checksum partition
// actually spreads the work.
func TestKSMShardSweepQualitativeAndDeterministic(t *testing.T) {
	seq := KSMShardSweep(Options{Scale: testScale, Quick: true, Jobs: 1})
	par := KSMShardSweep(Options{Scale: testScale, Quick: true, Jobs: 4})
	if RenderKSMShardFigure(seq) != RenderKSMShardFigure(par) {
		t.Fatal("ksmshard differs between -jobs 1 and -jobs 4")
	}
	if KSMShardFigureTable(seq).CSV() != KSMShardFigureTable(par).CSV() {
		t.Fatal("ksmshard CSV differs between -jobs 1 and -jobs 4")
	}

	byWorkload := map[string][]KSMShardRow{}
	for _, r := range seq.Rows {
		byWorkload[r.Workload] = append(byWorkload[r.Workload], r)
	}
	for workload, rows := range byWorkload {
		if len(rows) != 3 {
			t.Fatalf("%s: want shard counts 1/2/4, got %d rows", workload, len(rows))
		}
		base := rows[0]
		if base.Shards != 1 {
			t.Fatalf("%s: first row is shards=%d, want the unsharded baseline", workload, base.Shards)
		}
		// A sweep that shares nothing would pass the equality checks vacuously.
		if base.SharingMB <= 0 || base.Merges == 0 || base.FullScans == 0 {
			t.Fatalf("%s: baseline did no work: %+v", workload, base)
		}
		routed := func(r KSMShardRow) uint64 {
			var sum uint64
			for _, c := range r.ShardPagesScanned {
				sum += c
			}
			return sum
		}
		for _, r := range rows {
			// Outcomes may never depend on the shard count.
			if r.SharingMB != base.SharingMB || r.Merges != base.Merges ||
				r.PagesScanned != base.PagesScanned || r.FullScans != base.FullScans ||
				r.ScanCPUPct != base.ScanCPUPct {
				t.Fatalf("%s: shards=%d outcome diverges from unsharded:\n  base %+v\n  got  %+v",
					workload, r.Shards, base, r)
			}
			if len(r.ShardPagesScanned) != r.Shards {
				t.Fatalf("%s: shards=%d reports %d per-shard counters",
					workload, r.Shards, len(r.ShardPagesScanned))
			}
			// The split re-partitions the same routed work, it never changes it.
			if routed(r) != routed(base) {
				t.Fatalf("%s: shards=%d routed %d candidates, unsharded routed %d",
					workload, r.Shards, routed(r), routed(base))
			}
			if r.Shards > 1 {
				busy := 0
				for _, c := range r.ShardPagesScanned {
					if c > 0 {
						busy++
					}
				}
				if busy < 2 {
					t.Fatalf("%s: shards=%d but only %d shard(s) saw work: %v",
						workload, r.Shards, busy, r.ShardPagesScanned)
				}
			}
		}
	}
}
