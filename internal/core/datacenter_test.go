package core

import (
	"strings"
	"testing"

	"repro/internal/datacenter"
	"repro/internal/workload"
)

// datacenterTestOptions shrinks the sweep for test time: small horizon,
// fixed fault seed.
func datacenterTestOptions(jobs int) Options {
	return Options{Scale: 48, Quick: true, Jobs: jobs, ChaosSeed: 4242}
}

// TestDatacenterFigureDeterministicAcrossJobs renders the sweep at three
// worker-pool widths and requires byte-identical output — the per-host
// figures may not depend on scheduling.
func TestDatacenterFigureDeterministicAcrossJobs(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-cell sweep")
	}
	base := RenderDatacenterFigure(Datacenter(datacenterTestOptions(1)))
	for _, jobs := range []int{2, 8} {
		got := RenderDatacenterFigure(Datacenter(datacenterTestOptions(jobs)))
		if got != base {
			t.Fatalf("output diverged between -jobs 1 and -jobs %d:\n%s\n----\n%s", jobs, base, got)
		}
	}
	if !strings.Contains(base, "similarity") || !strings.Contains(base, "content") {
		t.Fatalf("sweep missing expected rows:\n%s", base)
	}
}

// TestDatacenterSweepInvariants checks the sweep's acceptance criteria on
// one run: migrations happen when enabled, no leak check ever fails, and
// the content protocol moves at least 5× fewer bytes than naive byte-copy
// on the seed-heavy workload.
func TestDatacenterSweepInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-cell sweep")
	}
	fig := Datacenter(datacenterTestOptions(0))
	if len(fig.Rows) != 6 {
		t.Fatalf("want 6 cells, got %d", len(fig.Rows))
	}
	moved := false
	for _, r := range fig.Rows {
		if r.LeakFailures != 0 {
			t.Errorf("%s/%s: %d leak failures", r.Placement, r.Migration, r.LeakFailures)
		}
		if r.LeakChecks == 0 {
			t.Errorf("%s/%s: leak invariant never ran", r.Placement, r.Migration)
		}
		if r.Served == 0 {
			t.Errorf("%s/%s: no traffic served", r.Placement, r.Migration)
		}
		if r.Migration == "off" && r.Migrations != 0 {
			t.Errorf("%s/off migrated %d times", r.Placement, r.Migrations)
		}
		if r.Migration != "off" && r.Migrations > 0 {
			moved = true
		}
	}
	if !moved {
		t.Fatal("no cell with migration enabled actually migrated")
	}
}

// TestDatacenterContentBeatsNaive is the wire-bill acceptance criterion at
// the core layer: one deliberate migration of a Tuscany guest between twin
// hosts, measured in both protocols.
func TestDatacenterContentBeatsNaive(t *testing.T) {
	bytesFor := func(m datacenter.MigrationMode) int64 {
		dc := datacenter.New(datacenter.Config{
			Scale:         48,
			Hosts:         2,
			Guests:        4,
			Specs:         []workload.Spec{workload.Tuscany()},
			SharedClasses: true,
			SharedAOT:     true,
			Migration:     m,
			BaseSeed:      7,
		})
		g := dc.GuestSlots()[0]
		if !dc.Migrate(g, 1-g.HostIndex()) {
			t.Fatalf("%v migration failed", m)
		}
		if st := dc.Stats(); st.LeakFailures != 0 {
			t.Fatalf("%v: leak failures: %v", m, dc.LeakError())
		}
		return dc.Net.Stats().TotalBytes()
	}
	naive := bytesFor(datacenter.MigrationNaive)
	content := bytesFor(datacenter.MigrationContent)
	if content <= 0 || naive <= 0 {
		t.Fatalf("no traffic recorded: naive=%d content=%d", naive, content)
	}
	if naive < 5*content {
		t.Fatalf("content mode moved %d bytes vs naive %d — less than 5× saving", content, naive)
	}
}
