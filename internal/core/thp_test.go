package core

import (
	"testing"

	"repro/internal/thp"
	"repro/internal/workload"
)

// TestTHPTradeoffQualitativeAndDeterministic runs the tradeoff sweep once
// sequentially and once on four workers: the figure must be byte-identical
// at any -jobs width, and the rows must show the paper-extension tradeoff —
// `always` buys TLB reach by forgoing KSM sharing, `ksm-split` buys the
// sharing back.
func TestTHPTradeoffQualitativeAndDeterministic(t *testing.T) {
	seq := THPTradeoff(Options{Scale: testScale, Quick: true, Jobs: 1})
	par := THPTradeoff(Options{Scale: testScale, Quick: true, Jobs: 4})
	if RenderTHPFigure(seq) != RenderTHPFigure(par) {
		t.Fatal("thp-tradeoff differs between -jobs 1 and -jobs 4")
	}
	if THPFigureTable(seq).CSV() != THPFigureTable(par).CSV() {
		t.Fatal("thp-tradeoff CSV differs between -jobs 1 and -jobs 4")
	}

	row := func(guests int, policy string) THPRow {
		for _, r := range seq.Rows {
			if r.Guests == guests && r.Policy == policy {
				return r
			}
		}
		t.Fatalf("no row for %d guests, policy %s", guests, policy)
		return THPRow{}
	}
	for _, guests := range []int{2, 4} {
		never := row(guests, "never")
		always := row(guests, "always")
		split := row(guests, "ksm-split")
		if never.HugeMB != 0 || never.Collapses != 0 || never.HugeCoveragePct != 0 {
			t.Fatalf("never row has huge pages: %+v", never)
		}
		if always.HugeMB <= never.HugeMB || always.HugeCoveragePct <= 0 {
			t.Fatalf("always gained no huge coverage: %+v", always)
		}
		if always.TLBReachMB <= never.TLBReachMB {
			t.Fatalf("always did not raise TLB reach: %.1f vs %.1f",
				always.TLBReachMB, never.TLBReachMB)
		}
		if always.SharingPages >= never.SharingPages {
			t.Fatalf("always did not lose KSM sharing: %d vs %d",
				always.SharingPages, never.SharingPages)
		}
		if always.KSMSkips == 0 {
			t.Fatal("always row counted no KSM huge skips")
		}
		if min := int(0.8 * float64(never.SharingPages)); split.SharingPages < min {
			t.Fatalf("ksm-split recovered %d sharing pages, want >= %d (80%% of never's %d)",
				split.SharingPages, min, never.SharingPages)
		}
		if split.Splits == 0 {
			t.Fatal("ksm-split row shows no splits")
		}

		// fhpm must land on the Pareto frontier: it matches ksm-split's
		// sharing (carving the same duplicates, minus only the uncarvable
		// head subpages) while keeping the rest of each block huge, so its
		// TLB reach must be strictly higher; and unlike plain always it
		// actually shares pages.
		fhpm := row(guests, "fhpm")
		if fhpm.PartialSplits == 0 {
			t.Fatal("fhpm row shows no partial splits")
		}
		if fhpm.Splits != 0 {
			t.Fatalf("fhpm dissolved %d whole blocks", fhpm.Splits)
		}
		if min := 0.95 * split.SharingMB; fhpm.SharingMB < min {
			t.Fatalf("fhpm sharing %.1f MB below 95%% of ksm-split's %.1f MB",
				fhpm.SharingMB, split.SharingMB)
		}
		if fhpm.TLBReachMB <= split.TLBReachMB {
			t.Fatalf("fhpm TLB reach %.1f MB not above ksm-split's %.1f MB at matched sharing",
				fhpm.TLBReachMB, split.TLBReachMB)
		}
		if fhpm.SharingPages <= always.SharingPages {
			t.Fatalf("fhpm shares %d pages, no more than plain always' %d",
				fhpm.SharingPages, always.SharingPages)
		}
		if fhpm.HugeMB <= never.HugeMB {
			t.Fatalf("fhpm kept no huge coverage: %+v", fhpm)
		}
	}
}

// TestFiguresIdenticalAcrossJobWidthsWithFHPMOff is the compatibility half of
// the FHPM contract: with the flag off (default Options), the paper figures
// must stay byte-identical at every -jobs width — the carve machinery may not
// perturb the default pipeline.
func TestFiguresIdenticalAcrossJobWidthsWithFHPMOff(t *testing.T) {
	var outs []string
	for _, jobs := range []int{1, 2, 8} {
		m, j := Fig2(Options{Scale: testScale, Quick: true, Jobs: jobs})
		outs = append(outs, RenderMemFigure(m)+MemFigureTable(m).CSV()+
			RenderJavaFigure(j)+JavaFigureTable(j).CSV())
	}
	for i, out := range outs[1:] {
		if out != outs[0] {
			t.Fatalf("Fig2 differs between -jobs 1 and -jobs %d", []int{2, 8}[i])
		}
	}
}

// TestTHPOffLeavesClusterUntouched is the compatibility contract: the default
// policy builds no daemon, allocates no huge frames, and the existing
// scenarios behave exactly as before the subsystem existed.
func TestTHPOffLeavesClusterUntouched(t *testing.T) {
	c := BuildCluster(ClusterConfig{
		Scale:        testScale,
		Specs:        []workload.Spec{workload.DayTrader()},
		NumVMs:       2,
		SteadyRounds: 5,
	})
	c.Run()
	if c.THP != nil {
		t.Fatal("daemon built under the default policy")
	}
	if c.Host.Phys().HugeFrames() != 0 || c.Host.Stats().Collapses != 0 {
		t.Fatal("huge frames allocated with THP off")
	}
}

// TestTHPPolicyAppliesToPaperExperiments checks the -thp flag path: Fig2
// under `always` must run with a live daemon and end with huge coverage,
// while staying deterministic for a fixed seed.
func TestTHPPolicyAppliesToPaperExperiments(t *testing.T) {
	o := Options{Scale: testScale, Quick: true, THPPolicy: thp.PolicyAlways}
	memA, _ := Fig2(o)
	memB, _ := Fig2(o)
	if RenderMemFigure(memA) != RenderMemFigure(memB) {
		t.Fatal("Fig2 under THP always is not deterministic")
	}
	off, _ := Fig2(Options{Scale: testScale, Quick: true})
	if RenderMemFigure(off) == RenderMemFigure(memA) {
		t.Fatal("THP always left Fig2 untouched; flag not threaded")
	}
}
