package core

import (
	"testing"

	"repro/internal/thp"
	"repro/internal/workload"
)

// TestTHPTradeoffQualitativeAndDeterministic runs the tradeoff sweep once
// sequentially and once on four workers: the figure must be byte-identical
// at any -jobs width, and the rows must show the paper-extension tradeoff —
// `always` buys TLB reach by forgoing KSM sharing, `ksm-split` buys the
// sharing back.
func TestTHPTradeoffQualitativeAndDeterministic(t *testing.T) {
	seq := THPTradeoff(Options{Scale: testScale, Quick: true, Jobs: 1})
	par := THPTradeoff(Options{Scale: testScale, Quick: true, Jobs: 4})
	if RenderTHPFigure(seq) != RenderTHPFigure(par) {
		t.Fatal("thp-tradeoff differs between -jobs 1 and -jobs 4")
	}
	if THPFigureTable(seq).CSV() != THPFigureTable(par).CSV() {
		t.Fatal("thp-tradeoff CSV differs between -jobs 1 and -jobs 4")
	}

	row := func(guests int, policy string) THPRow {
		for _, r := range seq.Rows {
			if r.Guests == guests && r.Policy == policy {
				return r
			}
		}
		t.Fatalf("no row for %d guests, policy %s", guests, policy)
		return THPRow{}
	}
	for _, guests := range []int{2, 4} {
		never := row(guests, "never")
		always := row(guests, "always")
		split := row(guests, "ksm-split")
		if never.HugeMB != 0 || never.Collapses != 0 || never.HugeCoveragePct != 0 {
			t.Fatalf("never row has huge pages: %+v", never)
		}
		if always.HugeMB <= never.HugeMB || always.HugeCoveragePct <= 0 {
			t.Fatalf("always gained no huge coverage: %+v", always)
		}
		if always.TLBReachMB <= never.TLBReachMB {
			t.Fatalf("always did not raise TLB reach: %.1f vs %.1f",
				always.TLBReachMB, never.TLBReachMB)
		}
		if always.SharingPages >= never.SharingPages {
			t.Fatalf("always did not lose KSM sharing: %d vs %d",
				always.SharingPages, never.SharingPages)
		}
		if always.KSMSkips == 0 {
			t.Fatal("always row counted no KSM huge skips")
		}
		if min := int(0.8 * float64(never.SharingPages)); split.SharingPages < min {
			t.Fatalf("ksm-split recovered %d sharing pages, want >= %d (80%% of never's %d)",
				split.SharingPages, min, never.SharingPages)
		}
		if split.Splits == 0 {
			t.Fatal("ksm-split row shows no splits")
		}
	}
}

// TestTHPOffLeavesClusterUntouched is the compatibility contract: the default
// policy builds no daemon, allocates no huge frames, and the existing
// scenarios behave exactly as before the subsystem existed.
func TestTHPOffLeavesClusterUntouched(t *testing.T) {
	c := BuildCluster(ClusterConfig{
		Scale:        testScale,
		Specs:        []workload.Spec{workload.DayTrader()},
		NumVMs:       2,
		SteadyRounds: 5,
	})
	c.Run()
	if c.THP != nil {
		t.Fatal("daemon built under the default policy")
	}
	if c.Host.Phys().HugeFrames() != 0 || c.Host.Stats().Collapses != 0 {
		t.Fatal("huge frames allocated with THP off")
	}
}

// TestTHPPolicyAppliesToPaperExperiments checks the -thp flag path: Fig2
// under `always` must run with a live daemon and end with huge coverage,
// while staying deterministic for a fixed seed.
func TestTHPPolicyAppliesToPaperExperiments(t *testing.T) {
	o := Options{Scale: testScale, Quick: true, THPPolicy: thp.PolicyAlways}
	memA, _ := Fig2(o)
	memB, _ := Fig2(o)
	if RenderMemFigure(memA) != RenderMemFigure(memB) {
		t.Fatal("Fig2 under THP always is not deterministic")
	}
	off, _ := Fig2(Options{Scale: testScale, Quick: true})
	if RenderMemFigure(off) == RenderMemFigure(memA) {
		t.Fatal("THP always left Fig2 untouched; flag not threaded")
	}
}
