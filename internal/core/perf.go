package core

import (
	"fmt"
	"sort"

	"repro/internal/hypervisor"
	"repro/internal/mem"
	"repro/internal/trace"
	"repro/internal/workload"
)

// The throughput model for Fig. 7 / Fig. 8. The simulation produces real
// paging behaviour (which pages are resident, which fault back in from swap
// during request processing); the model turns the measured major-fault rate
// into request latency through a shared swap disk:
//
//	service    L0 = threads / baseRate        (latency when memory is ample)
//	faults     f  = majorFaults/request (request working sets are sized in
//	           paper units, so per-request fault counts are scale-invariant)
//	disk       one swap device, service time DiskServiceSec, M/M/1-style
//	           congestion: faultLatency = s / (1 - ρ), ρ = aggregate
//	           fault arrival × s
//	latency    L = L0 + f × faultLatency
//	throughput per VM = threads / L
//
// The fixed point of this system collapses exactly when resident demand
// exceeds host RAM enough that request working sets start faulting — the
// paper's cliff between 7 and 8 guest VMs (Fig. 7) and 6 and 7 (Fig. 8).
const (
	// DiskServiceSec is the swap device service time per page (a 2009-era
	// SATA disk seek).
	DiskServiceSec = 0.008
	// SLALatencyFactor flags a response-time SLA violation when latency
	// exceeds this multiple of the unloaded latency (Fig. 8's dashed
	// annotation).
	SLALatencyFactor = 1.35
)

// VMPerf is one guest's steady-state performance.
type VMPerf struct {
	VMName        string
	Workload      string
	Throughput    float64 // requests/sec (EjOPS for SPECjEnterprise)
	LatencySec    float64
	FaultsPerReq  float64 // paper-scale faults per request
	SLAViolated   bool
	BaseRate      float64
	ClientThreads int
}

// MeasurePerf runs a measurement window of the given number of rounds and
// returns each VM's modelled throughput. It must be called after Run (the
// system should be in steady state).
func (c *Cluster) MeasurePerf(rounds int) []VMPerf {
	cfg := c.Cfg
	before := make([]uint64, len(c.Workers))
	for i, w := range c.Workers {
		before[i] = majorFaultsOf(w)
	}
	for r := 0; r < rounds; r++ {
		for _, w := range c.Workers {
			w.RunSteadyState(cfg.IterationsPerRound)
		}
		c.Clock.RunFor(cfg.RoundDuration)
	}
	requests := float64(rounds * cfg.IterationsPerRound)

	perVM := make([]VMPerf, len(c.Workers))
	for i, w := range c.Workers {
		delta := majorFaultsOf(w) - before[i]
		perVM[i] = VMPerf{
			VMName:        w.Kernel().VM().Name(),
			Workload:      w.Spec.Name,
			FaultsPerReq:  float64(delta) / requests,
			BaseRate:      w.Spec.BaseRequestsPerSec,
			ClientThreads: w.Spec.ClientThreads,
		}
	}
	solveThroughput(perVM)
	for _, v := range perVM {
		c.Trace.Emit(trace.KindMeasure, v.VMName, "%s: %.1f req/s, %.2f faults/req, SLA violated: %v",
			v.Workload, v.Throughput, v.FaultsPerReq, v.SLAViolated)
	}
	return perVM
}

// majorFaultsOf reads the hypervisor-level major-fault counter of the VM an
// instance runs in.
func majorFaultsOf(w *workload.Instance) uint64 {
	vm, ok := w.Kernel().VM().(*hypervisor.VMProcess)
	if !ok {
		panic("core: perf measurement requires a KVM (process-VM) guest")
	}
	return vm.Stats().MajorFaults
}

// solveThroughput finds the fixed point of the shared-disk congestion model
// by bisection on the disk utilization ρ. Given ρ, every VM's throughput is
// determined; the aggregate fault arrival rate λ(ρ) is decreasing in ρ, so
// g(ρ) = λ(ρ)·s − ρ has a unique root.
func solveThroughput(vms []VMPerf) {
	lambdaAt := func(rho float64) float64 {
		faultLatency := DiskServiceSec / (1 - rho)
		var lambda float64
		for _, v := range vms {
			l0 := float64(v.ClientThreads) / v.BaseRate
			lat := l0 + v.FaultsPerReq*faultLatency
			lambda += float64(v.ClientThreads) / lat * v.FaultsPerReq
		}
		return lambda
	}
	lo, hi := 0.0, 0.999
	if lambdaAt(lo)*DiskServiceSec <= lo {
		hi = lo // no congestion at all
	}
	for iter := 0; iter < 60 && hi-lo > 1e-9; iter++ {
		mid := (lo + hi) / 2
		if lambdaAt(mid)*DiskServiceSec > mid {
			lo = mid
		} else {
			hi = mid
		}
	}
	rho := hi
	faultLatency := DiskServiceSec / (1 - rho)
	for i := range vms {
		l0 := float64(vms[i].ClientThreads) / vms[i].BaseRate
		lat := l0 + vms[i].FaultsPerReq*faultLatency
		vms[i].LatencySec = lat
		vms[i].Throughput = float64(vms[i].ClientThreads) / lat
		vms[i].SLAViolated = lat > SLALatencyFactor*l0
	}
}

// Aggregate sums per-VM throughput (the Fig. 7 y-axis).
func Aggregate(vms []VMPerf) float64 {
	var t float64
	for _, v := range vms {
		t += v.Throughput
	}
	return t
}

// MeanScore averages per-VM throughput (the Fig. 8 y-axis: EjOPS at a fixed
// injection rate, which does not grow with the VM count).
func MeanScore(vms []VMPerf) float64 {
	if len(vms) == 0 {
		return 0
	}
	return Aggregate(vms) / float64(len(vms))
}

// AnySLAViolated reports whether any guest missed the response-time SLA.
func AnySLAViolated(vms []VMPerf) bool {
	for _, v := range vms {
		if v.SLAViolated {
			return true
		}
	}
	return false
}

// SweepPoint is one x-position of Fig. 7 / Fig. 8: min/mean/max over the
// repetitions for both configurations.
type SweepPoint struct {
	NumVMs               int
	Default              Stat
	Preloaded            Stat
	DefaultSLAViolated   bool
	PreloadedSLAViolated bool
}

// Stat summarizes repetitions (the paper's error bars are min and max of
// three executions).
type Stat struct {
	Min, Mean, Max float64
}

func statOf(samples []float64) Stat {
	if len(samples) == 0 {
		return Stat{}
	}
	s := Stat{Min: samples[0], Max: samples[0]}
	var sum float64
	for _, v := range samples {
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
		sum += v
	}
	s.Mean = sum / float64(len(samples))
	return s
}

// SweepFigure is a Fig. 7 / Fig. 8 result.
type SweepFigure struct {
	ID     string
	Title  string
	Unit   string
	Points []SweepPoint
}

// sweepSample is one fanned-out cluster run of a sweep: a single
// (VM count, configuration, repetition) cell.
type sweepSample struct {
	value    float64
	violated bool
}

// sweep runs the VM-count sweep for one workload and aggregation mode.
// Every (count, configuration, repetition) cell is an independent cluster
// run whose seed depends only on the repetition, so the cells fan out across
// the runner's pool; the reduction below walks them in submission order and
// the figure is identical at every pool width.
func sweep(o Options, id, title, unit string, spec workload.Spec, counts []int, reps int, aggregate bool) SweepFigure {
	fig := SweepFigure{ID: id, Title: title, Unit: unit}
	var jobs []Job[sweepSample]
	for _, n := range counts {
		for _, shared := range []bool{false, true} {
			for rep := 0; rep < reps; rep++ {
				n, shared, rep := n, shared, rep
				seq := len(jobs)
				label := fmt.Sprintf("%s n=%d shared=%v rep=%d", id, n, shared, rep+1)
				jobs = append(jobs, Job[sweepSample]{
					Label: label,
					Run: func() sweepSample {
						cfg := ClusterConfig{
							Scale:         o.scale(),
							Specs:         []workload.Spec{spec},
							NumVMs:        n,
							SharedClasses: shared,
							BaseSeed:      mem.Combine(o.Seed, mem.Seed(rep+1)),
							// The measurement must span at least one full GC
							// cycle per VM: the collector's whole-heap touch
							// is what exposes over-commitment as faults.
							SteadyRounds:       8,
							IterationsPerRound: 25,
							EnableMetrics:      o.Telemetry != nil,
							THPPolicy:          o.THPPolicy,
							THPKSMSplit:        o.THPKSMSplit,
							IncrementalScan:    o.IncrementalScan,
							KSMShards:          o.KSMShards,
						}
						c := BuildCluster(cfg)
						o.Telemetry.CollectAt(seq, label, c.Metrics)
						c.Run()
						perf := c.MeasurePerf(20)
						s := sweepSample{violated: AnySLAViolated(perf)}
						if aggregate {
							s.value = Aggregate(perf)
						} else {
							s.value = MeanScore(perf)
						}
						return s
					},
				})
			}
		}
	}
	results := RunAll(o.runner(), jobs)

	i := 0
	for _, n := range counts {
		pt := SweepPoint{NumVMs: n}
		for _, shared := range []bool{false, true} {
			var samples []float64
			viol := false
			for rep := 0; rep < reps; rep++ {
				samples = append(samples, results[i].value)
				viol = viol || results[i].violated
				i++
			}
			if shared {
				pt.Preloaded = statOf(samples)
				pt.PreloadedSLAViolated = viol
			} else {
				pt.Default = statOf(samples)
				pt.DefaultSLAViolated = viol
			}
		}
		fig.Points = append(fig.Points, pt)
	}
	sort.Slice(fig.Points, func(i, j int) bool { return fig.Points[i].NumVMs < fig.Points[j].NumVMs })
	return fig
}

// Fig7 sweeps DayTrader from 1 to 9 guest VMs (Quick: fewer points, one
// repetition) and reports aggregate requests/sec for the default and
// preloaded configurations.
func Fig7(o Options) SweepFigure {
	counts := []int{1, 2, 3, 4, 5, 6, 7, 8, 9}
	reps := 3
	if o.Quick {
		counts = []int{2, 7, 8, 9}
		reps = 1
	}
	return sweep(o, "fig7", "DayTrader throughput vs number of guest VMs", "req/s",
		workload.DayTrader(), counts, reps, true)
}

// Fig8 sweeps SPECjEnterprise 2010 from 5 to 8 guest VMs at injection rate
// 15 with the gencon policy and reports the per-VM EjOPS score.
func Fig8(o Options) SweepFigure {
	counts := []int{5, 6, 7, 8}
	reps := 3
	if o.Quick {
		counts = []int{6, 7}
		reps = 1
	}
	return sweep(o, "fig8", "SPECjEnterprise 2010 score vs number of guest VMs (IR=15)", "EjOPS",
		workload.SPECjEnterprise(), counts, reps, false)
}
