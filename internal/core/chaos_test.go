package core

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/workload"
)

// TestChaosDeterministicAcrossJobs is the acceptance bar for the chaos
// sweep: for a fixed -chaos-seed, the rendered figure and the CSV must be
// byte-identical whether the cells run sequentially or on four workers.
func TestChaosDeterministicAcrossJobs(t *testing.T) {
	seq := Chaos(Options{Scale: testScale, Quick: true, Jobs: 1, ChaosSeed: 7})
	par := Chaos(Options{Scale: testScale, Quick: true, Jobs: 4, ChaosSeed: 7})
	if RenderChaosFigure(seq) != RenderChaosFigure(par) {
		t.Fatal("chaos figure differs between -jobs 1 and -jobs 4")
	}
	if ChaosFigureTable(seq).CSV() != ChaosFigureTable(par).CSV() {
		t.Fatal("chaos CSV differs between -jobs 1 and -jobs 4")
	}
}

// TestChaosInjectsAndNeverLeaks asserts the sweep actually exercises the
// lifecycle paths (kills, spikes, stalls all fire somewhere) and that every
// leak check over every cell passed.
func TestChaosInjectsAndNeverLeaks(t *testing.T) {
	fig := Chaos(Options{Scale: testScale, Quick: true, ChaosSeed: 7})
	if len(fig.Rows) == 0 {
		t.Fatal("empty sweep")
	}
	var kills, spikes, stalls, checks uint64
	for _, r := range fig.Rows {
		kills += r.Kills
		spikes += r.Spikes
		stalls += r.Stalls
		checks += uint64(r.LeakChecks)
		if r.LeakFailures != 0 {
			t.Fatalf("row n=%d profile=%s: %d leak failures", r.Guests, r.Profile, r.LeakFailures)
		}
		if r.LeakChecks == 0 {
			t.Fatalf("row n=%d profile=%s ran no leak checks", r.Guests, r.Profile)
		}
		if r.FinalAlive == 0 {
			t.Fatalf("row n=%d profile=%s ended with no guests", r.Guests, r.Profile)
		}
		if r.Kills != 0 && r.SharingMB <= 0 {
			t.Fatalf("row n=%d profile=%s: churn erased all sharing (%f MB)", r.Guests, r.Profile, r.SharingMB)
		}
	}
	if kills == 0 || spikes == 0 || stalls == 0 {
		t.Fatalf("fault classes missing from the sweep: kills=%d spikes=%d stalls=%d", kills, spikes, stalls)
	}
}

// TestChaosSeedChangesHistory: different seeds must produce different fault
// histories (the schedule is seed-driven, not time-driven).
func TestChaosSeedChangesHistory(t *testing.T) {
	a := Chaos(Options{Scale: testScale, Quick: true, ChaosSeed: 1})
	b := Chaos(Options{Scale: testScale, Quick: true, ChaosSeed: 2})
	if ChaosFigureTable(a).CSV() == ChaosFigureTable(b).CSV() {
		t.Fatal("seeds 1 and 2 produced identical chaos sweeps")
	}
}

// TestClusterKillRestartRoundTrip drives the guest lifecycle directly
// through the Cluster surface: kill a slot, verify the books, restart it,
// verify again, and make sure the analysis pipeline still works.
func TestClusterKillRestartRoundTrip(t *testing.T) {
	c := BuildCluster(ClusterConfig{
		Scale:        testScale,
		Specs:        []workload.Spec{workload.DayTrader()},
		NumVMs:       3,
		SteadyRounds: 5,
	})
	c.Run()
	if err := c.CheckLeaks(); err != nil {
		t.Fatalf("leaks before any kill: %v", err)
	}
	kernels, workers := len(c.Kernels), len(c.Workers)

	if k := c.KillGuest(1); k == nil {
		t.Fatal("KillGuest returned no kernel")
	}
	if c.GuestAlive(1) || len(c.Kernels) != kernels-1 {
		t.Fatal("kill did not detach the guest")
	}
	if len(c.Workers) >= workers {
		t.Fatal("kill left the dead guest's workers in the run list")
	}
	if err := c.CheckLeaks(); err != nil {
		t.Fatalf("leaks after kill: %v", err)
	}

	if k := c.RestartGuest(1); k == nil {
		t.Fatal("RestartGuest returned no kernel")
	}
	if !c.GuestAlive(1) || len(c.Kernels) != kernels || len(c.Workers) != workers {
		t.Fatal("restart did not restore the guest")
	}
	if err := c.CheckLeaks(); err != nil {
		t.Fatalf("leaks after restart: %v", err)
	}
	// The rebooted guest is live: run more rounds and analyze.
	c.RunSteady()
	if a := c.Analyze(); len(a.VMBreakdowns()) != 3 {
		t.Fatalf("analysis sees %d VMs after restart, want 3", len(a.VMBreakdowns()))
	}
	if err := c.CheckLeaks(); err != nil {
		t.Fatalf("leaks after post-restart rounds: %v", err)
	}
}

// TestClusterRestartIsDeterministic: restarting the same slot at the same
// generation yields the same VM seed, so chaos cells replay exactly.
func TestClusterRestartIsDeterministic(t *testing.T) {
	boot := func() mem.Seed {
		c := BuildCluster(ClusterConfig{
			Scale: testScale, Specs: []workload.Spec{workload.DayTrader()},
			NumVMs: 2, SteadyRounds: 2,
		})
		c.Run()
		c.KillGuest(0)
		c.RestartGuest(0)
		return c.GuestVM(0).Seed()
	}
	if a, b := boot(), boot(); a != b {
		t.Fatalf("restart seeds diverged: %d vs %d", a, b)
	}
}
