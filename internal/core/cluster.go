// Package core orchestrates the paper's experiments: it assembles a KVM-like
// host with guest VMs built from a common base image, deploys the Table III
// workloads, runs the KSM scanner with the paper's §2.C tuning (10 000
// pages per 100 ms while warming up, 1 000 afterwards), drives steady-state
// load, and measures — reproducing every figure and table of the evaluation.
package core

import (
	"fmt"

	"repro/internal/cds"
	"repro/internal/classlib"
	"repro/internal/guestos"
	"repro/internal/hypervisor"
	"repro/internal/jitshare"
	"repro/internal/jvm"
	"repro/internal/ksm"
	"repro/internal/mem"
	"repro/internal/memanalysis"
	"repro/internal/metrics"
	"repro/internal/simclock"
	"repro/internal/thp"
	"repro/internal/trace"
	"repro/internal/workload"
)

// DefaultScale is the memory scale of the experiments: guest and host sizes
// divide by it, class counts divide by it, and all reported numbers are
// multiplied back into paper units. See DESIGN.md ("Scale factor").
const DefaultScale = 16

// Intel-platform constants from Tables I and II.
const (
	// HostRAMBytes is the BladeCenter LS21's 6 GB.
	HostRAMBytes = int64(6) << 30
	// HostKernelReserveBytes approximates everything on the host that is
	// not guest memory: the host kernel (a *debug* build in Table I, which
	// is memory-hungry), QEMU/KVM per-process overhead beyond the modelled
	// device state, page tables, and KSM metadata. Calibrated so that the
	// Fig. 7 cliff falls between 7 and 8 DayTrader guests, as measured.
	HostKernelReserveBytes = int64(1280) << 20
	// GuestKernelVersion labels the RHEL 5.5 guest kernel build.
	GuestKernelVersion = "2.6.18-194.3.1.el5debug"
)

// GuestKernelSizing is the unscaled guest kernel memory (calibrated so the
// Fig. 2 guest-kernel bars land near the paper's 219 MB with ≈50 % shared).
type GuestKernelSizing struct {
	TextBytes int64
	DataBytes int64
	SlabBytes int64
}

// DefaultGuestKernel returns the calibrated guest kernel sizing.
func DefaultGuestKernel() GuestKernelSizing {
	return GuestKernelSizing{
		TextBytes: 16 << 20,
		DataBytes: 30 << 20,
		SlabBytes: 50 << 20,
	}
}

// ClusterConfig describes one KVM experiment run.
type ClusterConfig struct {
	// Scale divides all byte quantities and class counts (0 = DefaultScale).
	Scale int
	// HostRAMBytes is unscaled host memory (0 = the Table I 6 GB).
	HostRAMBytes int64
	// Specs lists the workload per VM; a single entry is replicated across
	// NumVMs guests.
	Specs  []workload.Spec
	NumVMs int
	// JVMsPerGuest runs several WAS processes inside each guest (default 1).
	// All JVMs in a guest attach the same local cache file, so their
	// ROMClass pages are shared *within* the guest through the page cache —
	// the original purpose of the class-sharing feature (§4.B) — while KSM
	// additionally shares them *across* guests.
	JVMsPerGuest int
	// SharedClasses enables the paper's §4 technique on every guest.
	SharedClasses bool
	// PerVMNIOSalt de-identifies wire traffic per VM (real-world traffic
	// instead of identical benchmark drivers).
	PerVMNIOSalt bool
	// DisableKSM leaves the scanner off: the memory state stays unmerged
	// (used by the related-work baselines to analyze the raw state).
	DisableKSM bool
	// THPPolicy enables the transparent-huge-page collapse daemon
	// (thp.PolicyNever, the zero value, keeps it off and all existing
	// figures byte-identical). Under madvise or always, khugepaged-style
	// collapse competes with KSM for dense guest-RAM runs.
	THPPolicy thp.Policy
	// THPKSMSplit lets KSM split huge mappings back to base pages when it
	// verifies duplicate content — the sharing-recovery side of the
	// THP-vs-KSM tradeoff. Ignored under thp.PolicyFHPM, which carries its
	// own per-subpage splitting (ksm.Config.PartialSplitHuge).
	THPKSMSplit bool
	// THPMaxPtesNone overrides khugepaged's max_ptes_none collapse budget
	// (0 = the thp package default). Under FHPM it also bounds how many
	// absent carved subpages a re-absorption may zero-fill.
	THPMaxPtesNone int
	// TLBEntries overrides the modeled TLB size used by the analyzer's
	// TLB-reach estimate (0 = memanalysis.TLBEntries).
	TLBEntries int
	// IncrementalScan turns on the host's PML-style dirty-page rings and
	// switches the KSM scanner to dirty-ring driven incremental rescans once
	// warm-up converges. The working-set estimates the drains produce also
	// steer the balloon manager and the OOM killer toward cold guests. Off
	// (the default) keeps every figure byte-identical.
	IncrementalScan bool
	// KSMShards partitions the scanner's merge state by checksum bucket and
	// scans batches on a worker pool (ksm.Config.Shards). Results are
	// byte-identical at every shard count — only scan-pass wall time changes
	// — so 0/1 (single-threaded) and N>1 produce the same figures.
	KSMShards int
	// SharedAOT additionally populates and uses the cache's AOT section
	// (extension; implies SharedClasses behaviour for code).
	SharedAOT bool
	// JITShare attaches a ShareJIT-style shared code archive to every JVM
	// (internal/jitshare): tier-1 JIT output becomes position-independent
	// bodies at canonical page-aligned offsets, identical across guests, so
	// KSM merges the code area the paper found unshareable; per-process
	// profile stubs split into their own category, and tier-2 re-JITs
	// invalidate canonical slots so the sharing decays under warming. Off
	// (the default) keeps every figure byte-identical.
	JITShare bool
	// PerVMCacheLayout is the §5 ablation of the paper's key insight: each
	// guest populates its OWN cache in its own load order instead of
	// receiving one copied file. The caches hold identical classes with
	// different layouts, so cross-VM page identity — and the class-metadata
	// sharing — collapses.
	PerVMCacheLayout bool
	// BaseSeed perturbs every per-VM and per-process seed; experiments with
	// error bars run several base seeds.
	BaseSeed mem.Seed
	// GuestKernel overrides the kernel sizing (zero value = default).
	GuestKernel GuestKernelSizing

	// WarmupPasses is the number of full KSM passes at the fast scan rate
	// (the paper's first ≈3 minutes at 10 000 pages per wake-up).
	WarmupPasses int
	// SteadyRounds is the number of steady-state rounds; each round runs
	// IterationsPerRound requests on every instance and advances the clock
	// by RoundDuration while KSM scans at 1 000 pages per wake-up.
	SteadyRounds       int
	IterationsPerRound int
	// RoundDuration is the virtual time per steady round (0 = 1 s).
	RoundDuration simclock.Time
	// EnableTrace records a timeline of experiment events (Cluster.Trace).
	EnableTrace bool

	// EnableMetrics attaches a telemetry registry (Cluster.Metrics) sampling
	// KSM, physical-memory, JVM and swap gauges on a virtual-time cadence.
	// Every probe is read-only, so results are identical with it on or off.
	EnableMetrics bool
	// MetricsInterval is the sampling cadence (0 = metrics.DefaultInterval).
	MetricsInterval simclock.Time
	// MetricsCapacity bounds each series ring (0 = metrics.DefaultCapacity).
	MetricsCapacity int
	// AdaptiveWarmup replaces the fixed warm-up duration with the
	// convergence detector: after the warm-up traffic, the scanner keeps
	// running at the fast rate only until the merged-pages series flattens
	// (capped at twice the fixed duration). Implies EnableMetrics.
	AdaptiveWarmup bool
}

// withDefaults fills zero fields.
func (cfg ClusterConfig) withDefaults() ClusterConfig {
	if cfg.Scale == 0 {
		cfg.Scale = DefaultScale
	}
	if cfg.HostRAMBytes == 0 {
		cfg.HostRAMBytes = HostRAMBytes
	}
	if cfg.NumVMs == 0 {
		cfg.NumVMs = len(cfg.Specs)
	}
	if cfg.JVMsPerGuest == 0 {
		cfg.JVMsPerGuest = 1
	}
	if cfg.GuestKernel == (GuestKernelSizing{}) {
		cfg.GuestKernel = DefaultGuestKernel()
	}
	if cfg.WarmupPasses == 0 {
		cfg.WarmupPasses = 4
	}
	if cfg.SteadyRounds == 0 {
		cfg.SteadyRounds = 60
	}
	if cfg.IterationsPerRound == 0 {
		cfg.IterationsPerRound = 6
	}
	if cfg.RoundDuration == 0 {
		cfg.RoundDuration = simclock.Second
	}
	if cfg.AdaptiveWarmup {
		cfg.EnableMetrics = true
	}
	return cfg
}

// CachePath is where the pre-populated shared class cache file lives in
// every guest image built with the technique enabled.
const CachePath = "/opt/middleware/javasharedresources/classCache"

// Cluster is a running experiment.
type Cluster struct {
	Cfg     ClusterConfig
	Clock   *simclock.Clock
	Host    *hypervisor.Host
	Corpus  *classlib.Corpus
	Kernels []*guestos.Kernel
	Workers []*workload.Instance
	Scanner *ksm.KSM
	// THP is the huge-page collapse daemon (nil unless THPPolicy is madvise
	// or always; the thp API is nil-safe).
	THP *thp.Daemon
	// Trace is the experiment timeline (nil unless EnableTrace).
	Trace *trace.Log
	// Metrics is the telemetry registry (nil unless EnableMetrics). All the
	// metrics API is nil-safe, so callers never branch on it.
	Metrics *metrics.Registry

	images      map[string]*cds.Image
	jitArchives map[string]*jitshare.Archive
	warmupEnded simclock.Time

	// guests tracks per-slot lifecycle state for the chaos experiments. With
	// fault injection unused the slots are write-only bookkeeping and the
	// cluster behaves exactly as before.
	guests []*guestSlot
}

// guestSlot is one guest position in the cluster: the workload it runs and,
// while alive, the VM process, kernel and worker instances backing it.
type guestSlot struct {
	spec    workload.Spec
	gen     int // restart generation (0 = original boot)
	alive   bool
	vm      *hypervisor.VMProcess
	kernel  *guestos.Kernel
	workers []*workload.Instance
}

// BuildCluster assembles the host, guests and workloads but does not run
// the scanner or steady state yet.
func BuildCluster(cfg ClusterConfig) *Cluster {
	cfg = cfg.withDefaults()
	if len(cfg.Specs) == 0 {
		panic("core: no workload specs")
	}
	clock := simclock.New()
	host := hypervisor.NewHost(hypervisor.Config{
		Name:               "BladeCenter-LS21",
		RAMBytes:           cfg.HostRAMBytes / int64(cfg.Scale),
		KernelReserveBytes: HostKernelReserveBytes / int64(cfg.Scale),
		// FHPM needs the dirty rings too: its demote/promote decisions run on
		// the per-subpage heat the ring drains feed.
		DirtyLog: cfg.IncrementalScan || cfg.THPPolicy == thp.PolicyFHPM,
	}, clock)
	c := &Cluster{
		Cfg:         cfg,
		Clock:       clock,
		Host:        host,
		Corpus:      classlib.NewCorpus(jvm.RuntimeVersion, cfg.Scale),
		images:      make(map[string]*cds.Image),
		jitArchives: make(map[string]*jitshare.Archive),
	}
	if cfg.EnableTrace {
		c.Trace = trace.New(clock, 0)
	}
	// The scanner runs from the start at the paper's warm-up rate (10 000
	// pages per 100 ms wake-up): guests deploy while KSM merges, exactly as
	// in §2.C where KSM is enabled during WAS startup.
	kcfg := ksm.DefaultConfig()
	kcfg.PagesToScan = 10000
	kcfg.SplitHugePages = cfg.THPKSMSplit
	// Under FHPM, KSM carves just the duplicate-bearing subpage instead of
	// dissolving the whole block (takes precedence over SplitHugePages).
	kcfg.PartialSplitHuge = cfg.THPPolicy == thp.PolicyFHPM
	kcfg.IncrementalScan = cfg.IncrementalScan
	kcfg.Shards = cfg.KSMShards
	c.Scanner = ksm.New(host, kcfg)
	if !cfg.DisableKSM {
		c.Scanner.Start()
	}
	if cfg.THPPolicy != thp.PolicyNever {
		tcfg := thp.DefaultConfig()
		tcfg.Policy = cfg.THPPolicy
		if cfg.THPMaxPtesNone > 0 {
			tcfg.MaxPtesNone = cfg.THPMaxPtesNone
		}
		c.THP = thp.New(host, tcfg)
		c.THP.Start()
	}
	if cfg.EnableMetrics {
		c.Metrics = metrics.New(clock, metrics.Config{
			Interval: cfg.MetricsInterval,
			Capacity: cfg.MetricsCapacity,
		})
		c.instrument()
		// Started before the first guest boots so the series cover the
		// provisioning ramp, not just warm-up and steady state.
		c.Metrics.Start()
	}
	for i := 0; i < cfg.NumVMs; i++ {
		spec := cfg.Specs[i%len(cfg.Specs)]
		c.addGuest(i, spec)
		c.Scanner.Register(c.Host.VMs()[i])
		// QEMU madvises all guest RAM as MADV_HUGEPAGE, so under the madvise
		// policy guest memory is still an explicit collapse candidate.
		c.THP.Register(c.Host.VMs()[i], true)
		c.Trace.Emit(trace.KindDeploy, fmt.Sprintf("VM %d", i+1),
			"deployed %s (shared classes: %v); host free %d MB",
			spec.Name, cfg.SharedClasses, host.FreeBytes()>>20)
		// Let the scanner absorb this guest's startup before the next one
		// boots (sequential provisioning).
		clock.RunFor(simclock.Time(c.totalGuestPages()/10000+1) * 100 * simclock.Millisecond)
	}
	return c
}

// addGuest boots one guest from the base image and deploys its workload.
func (c *Cluster) addGuest(i int, spec workload.Spec) {
	slot := &guestSlot{spec: spec}
	c.guests = append(c.guests, slot)
	c.bootGuest(i, slot)
}

// bootGuest (re)boots a guest slot: a fresh VM process, guest kernel and
// worker set. Generation 0 is the original provisioning path; restarts
// derive a fresh layout seed from the generation, exactly as a rebooted
// machine re-randomizes.
func (c *Cluster) bootGuest(i int, slot *guestSlot) {
	cfg := c.Cfg
	spec := slot.spec
	vmSeed := mem.Combine(cfg.BaseSeed, mem.HashString("vm"), mem.Seed(i+1))
	if slot.gen > 0 {
		vmSeed = mem.Combine(vmSeed, mem.HashString("restart"), mem.Seed(slot.gen))
	}
	var vmp *hypervisor.VMProcess
	if slot.gen > 0 {
		vmp = c.Host.RestartVM(slot.vm, vmSeed)
	} else {
		vmp = c.Host.NewVM(hypervisor.VMConfig{
			Name:          fmt.Sprintf("VM %d", i+1),
			GuestMemBytes: spec.GuestMemBytes / int64(cfg.Scale),
			OverheadBytes: (24 << 20) / int64(cfg.Scale),
			Seed:          vmSeed,
		})
	}
	k := guestos.Boot(vmp, guestos.KernelConfig{
		Version:   GuestKernelVersion,
		TextBytes: cfg.GuestKernel.TextBytes / int64(cfg.Scale),
		DataBytes: cfg.GuestKernel.DataBytes / int64(cfg.Scale),
		SlabBytes: cfg.GuestKernel.SlabBytes / int64(cfg.Scale),
	})
	c.spawnDaemons(k)

	dcfg := workload.DeployConfig{Scale: cfg.Scale, DeferWarmup: true}
	if cfg.SharedClasses {
		img := c.cacheImage(spec)
		if cfg.PerVMCacheLayout {
			// Ablation: this guest ran its own cold population instead of
			// receiving the base image's file.
			order := classlib.ShuffleWindows(c.Corpus.Stack(spec.CacheAwareGroups...), vmSeed, 48)
			img = cds.Build(spec.CacheName, c.Corpus.Version, spec.CacheBytes/int64(cfg.Scale), order)
		}
		k.FS().Install(&guestos.File{Path: CachePath, Data: img.FileBytes(c.Corpus)})
		dcfg.SharedClasses = true
		dcfg.SharedAOT = cfg.SharedAOT
		dcfg.CacheImage = img
		dcfg.CachePath = CachePath
	}
	if cfg.JITShare {
		dcfg.JITShare = true
		dcfg.JITArchive = c.jitArchive(spec)
	}
	if cfg.PerVMNIOSalt {
		dcfg.PerVMNIOSalt = mem.Combine(vmSeed, mem.HashString("nio-salt"))
	}
	c.Kernels = append(c.Kernels, k)
	slot.vm = vmp
	slot.kernel = k
	slot.workers = slot.workers[:0]
	slot.alive = true
	for n := 0; n < cfg.JVMsPerGuest; n++ {
		w := workload.Deploy(k, c.Corpus, spec, dcfg)
		c.Workers = append(c.Workers, w)
		slot.workers = append(slot.workers, w)
	}
}

// GuestSlots reports the number of guest positions (alive or dead).
func (c *Cluster) GuestSlots() int { return len(c.guests) }

// GuestAlive reports whether slot i's guest is currently running.
func (c *Cluster) GuestAlive(i int) bool { return c.guests[i].alive }

// GuestVM returns slot i's VM process (the dead one after a kill, until the
// slot restarts).
func (c *Cluster) GuestVM(i int) *hypervisor.VMProcess { return c.guests[i].vm }

// GuestKernel returns slot i's guest kernel, or nil if the slot is dead.
// Callers that must detach a guest from host-side daemons (balloon managers)
// before tearing its pages down fetch the kernel through this while the
// guest is still alive.
func (c *Cluster) GuestKernel(i int) *guestos.Kernel { return c.guests[i].kernel }

// KillGuest tears down slot i's guest end to end: the scanner and THP daemon
// drop its regions, the hypervisor reclaims every frame and swap slot, and
// the kernel and workers leave the cluster's index-parallel lists (keeping
// Kernels aligned with Host.VMs for the analyzer). It returns the killed
// guest's kernel so callers can detach it elsewhere (balloon managers), or
// nil if the slot was already dead.
func (c *Cluster) KillGuest(i int) *guestos.Kernel {
	slot := c.guests[i]
	if !slot.alive {
		return nil
	}
	c.Scanner.Unregister(slot.vm)
	c.THP.Unregister(slot.vm)
	c.Host.KillVM(slot.vm)
	for ki, k := range c.Kernels {
		if k == slot.kernel {
			c.Kernels = append(c.Kernels[:ki], c.Kernels[ki+1:]...)
			break
		}
	}
	kept := c.Workers[:0]
	for _, w := range c.Workers {
		dead := false
		for _, sw := range slot.workers {
			if w == sw {
				dead = true
				break
			}
		}
		if !dead {
			kept = append(kept, w)
		}
	}
	c.Workers = kept
	killed := slot.kernel
	slot.alive = false
	slot.kernel = nil
	slot.workers = nil
	c.Trace.Emit(trace.KindDeploy, fmt.Sprintf("VM %d", i+1), "killed; host free %d MB",
		c.Host.FreeBytes()>>20)
	return killed
}

// RestartGuest reboots a killed slot: a fresh VM process with a fresh layout
// seed, a cold guest kernel, and newly deployed workers, registered with the
// scanner and THP daemon like any provisioned guest. It returns the new
// kernel, or nil if the slot is still alive.
func (c *Cluster) RestartGuest(i int) *guestos.Kernel {
	slot := c.guests[i]
	if slot.alive {
		return nil
	}
	slot.gen++
	c.bootGuest(i, slot)
	c.Scanner.Register(slot.vm)
	c.THP.Register(slot.vm, true)
	c.Trace.Emit(trace.KindDeploy, fmt.Sprintf("VM %d", i+1),
		"restarted (gen %d); host free %d MB", slot.gen, c.Host.FreeBytes()>>20)
	return slot.kernel
}

// CheckLeaks runs the hypervisor's leak invariant with the scanner's stable
// tree accounted as external references. Nil means every frame refcount and
// swap slot is exactly explained by live state.
func (c *Cluster) CheckLeaks() error {
	return c.Host.CheckLeaks(c.Scanner.StableFrames())
}

// cacheImage returns the cold-run cache for a workload, built once per
// cache name and reused for every guest — the "copy the file to all of the
// VMs" step of §4.B.
func (c *Cluster) cacheImage(spec workload.Spec) *cds.Image {
	if img, ok := c.images[spec.CacheName]; ok {
		return img
	}
	var img *cds.Image
	if c.Cfg.SharedAOT {
		img = workload.BuildCacheAOT(c.Corpus, spec, c.Cfg.Scale, 20)
	} else {
		img = workload.BuildCache(c.Corpus, spec, c.Cfg.Scale)
	}
	c.images[spec.CacheName] = img
	return img
}

// jitArchive returns the shared code archive for a workload, laid out once
// per cache name and handed to every JVM — the canonical layout is the
// coordination point that makes their PIC pages byte-identical.
func (c *Cluster) jitArchive(spec workload.Spec) *jitshare.Archive {
	name := spec.CacheName + "-code"
	if a, ok := c.jitArchives[name]; ok {
		return a
	}
	a := workload.BuildJITArchive(c.Corpus, spec, c.Cfg.Scale, c.Host.PageSize())
	c.jitArchives[name] = a
	return a
}

// JITShareCensus runs the jitshare sharing census over every live worker's
// archive mapping (zero counts when the mode is off).
func (c *Cluster) JITShareCensus() jitshare.Counts {
	var areas []jitshare.Area
	for _, w := range c.Workers {
		if a, ok := w.JVM.JIT().ShareArea(); ok {
			areas = append(areas, a)
		}
	}
	return jitshare.Census(c.Host, areas)
}

// spawnDaemons creates the guest's small native processes ("other user
// processes" in Fig. 2): identical binaries from the base image plus small
// per-process anonymous state.
func (c *Cluster) spawnDaemons(k *guestos.Kernel) {
	ps := int64(k.PageSize())
	for _, name := range []string{"init", "sshd", "syslogd"} {
		binPath := "/sbin/" + name
		f, ok := k.FS().Lookup(binPath)
		if !ok {
			size := (3 << 20) / int64(c.Cfg.Scale)
			if size < ps {
				size = ps
			}
			f = k.FS().InstallGenerated(binPath, "rhel5.5", size)
		}
		p := k.Spawn(name, false)
		v := p.MapFile(f, 0, 0, "daemon-code", binPath)
		p.TouchAll(v, false)
		anonPages := int(((2 << 20) / int64(c.Cfg.Scale)) / ps)
		if anonPages < 1 {
			anonPages = 1
		}
		av := p.MapAnon(anonPages, "daemon-anon", name+"-heap")
		for vpn := av.Start; vpn < av.End; vpn++ {
			p.FillPage(vpn, mem.Combine(p.Seed(), mem.Seed(vpn)))
		}
	}
}

// totalGuestPages sums every guest's memory for pass sizing.
func (c *Cluster) totalGuestPages() int {
	total := 0
	for _, vm := range c.Host.VMs() {
		total += vm.GuestPages()
	}
	return total
}

// instrument registers the cluster's gauges on the metrics registry. All
// probes are read-only views of simulation state; none may mutate it, which
// is what keeps a metrics-on run bit-identical to a metrics-off run.
func (c *Cluster) instrument() {
	r := c.Metrics
	pm := c.Host.Phys()
	r.Gauge("mem.frames_in_use", func() float64 { return float64(pm.FramesInUse()) })
	r.Gauge("mem.frames_free", func() float64 { return float64(pm.FreeFrames()) })
	r.Gauge("mem.frames_ksm", func() float64 { return float64(pm.KSMFrames()) })
	r.Gauge("mem.frames_zero", func() float64 { return float64(pm.ZeroFrames()) })
	r.Gauge("host.free_bytes", func() float64 { return float64(c.Host.FreeBytes()) })
	r.Gauge("host.swap_used_bytes", func() float64 { return float64(c.Host.SwapUsedBytes()) })
	r.Gauge("host.major_faults", func() float64 { return float64(c.Host.Stats().MajorFaults) })
	r.Gauge("host.swap_outs", func() float64 { return float64(c.Host.Stats().SwapOuts) })
	r.Gauge("host.cow_breaks", func() float64 { return float64(c.Host.Stats().COWBreaks) })
	r.Gauge("mem.frames_huge", func() float64 { return float64(pm.HugeFrames()) })
	c.Scanner.Instrument(r)
	c.THP.Instrument(r)
	// JVM gauges aggregate over c.Workers through the closure, so instances
	// deployed after Start are picked up by the next sample automatically.
	r.Gauge("jvm.heap_used_bytes", func() float64 {
		var total int64
		for _, w := range c.Workers {
			total += w.JVM.Heap().UsedBytes()
		}
		return float64(total)
	})
	r.Gauge("jvm.heap_capacity_bytes", func() float64 {
		var total int64
		for _, w := range c.Workers {
			total += w.JVM.Heap().CapacityBytes()
		}
		return float64(total)
	})
	r.Gauge("jvm.minor_gcs", func() float64 {
		var total uint64
		for _, w := range c.Workers {
			total += w.JVM.Heap().Stats().MinorGCs
		}
		return float64(total)
	})
	r.Gauge("jvm.major_gcs", func() float64 {
		var total uint64
		for _, w := range c.Workers {
			total += w.JVM.Heap().Stats().MajorGCs
		}
		return float64(total)
	})
	r.Gauge("jvm.classes_loaded", func() float64 {
		total := 0
		for _, w := range c.Workers {
			total += w.JVM.LoadStats().ClassesLoaded
		}
		return float64(total)
	})
	r.Gauge("jvm.live_objects", func() float64 {
		total := 0
		for _, w := range c.Workers {
			total += w.JVM.Heap().LiveObjects()
		}
		return float64(total)
	})
	if c.Cfg.JITShare {
		// Code-area sharing gauges: archive pages that are merge candidates,
		// those KSM actually merged, and those whose sharing was permanently
		// lost to a re-JIT's COW break. The census is a read-only page walk,
		// cached per sample instant since the gauges share it.
		var censusAt simclock.Time = -1
		var censusVal jitshare.Counts
		census := func() jitshare.Counts {
			if now := c.Clock.Now(); now != censusAt {
				censusVal = c.JITShareCensus()
				censusAt = now
			}
			return censusVal
		}
		r.Gauge("jitshare.code_pages_shareable", func() float64 { return float64(census().Shareable) })
		r.Gauge("jitshare.code_pages_merged", func() float64 { return float64(census().Merged) })
		r.Gauge("jitshare.code_pages_cow_broken", func() float64 {
			total := 0
			for _, w := range c.Workers {
				total += w.JVM.JIT().Stats().CanonicalPagesInvalidated
			}
			return float64(total)
		})
		r.Gauge("jitshare.rejits", func() float64 {
			total := 0
			for _, w := range c.Workers {
				total += w.JVM.JIT().Stats().ReJITs
			}
			return float64(total)
		})
	}
}

// WaitConverged drives the clock forward, one sample interval at a time,
// until the cumulative merged-pages series flattens per cc or maxWait
// virtual time elapses. It returns the retrospective convergence point (the
// start of the earliest flat window over the whole series) and whether one
// was found. Requires EnableMetrics.
func (c *Cluster) WaitConverged(cc metrics.ConvergenceConfig, maxWait simclock.Time) (simclock.Time, bool) {
	if c.Metrics == nil {
		panic("core: WaitConverged requires ClusterConfig.EnableMetrics")
	}
	s := c.Metrics.Get("ksm.pages_merged")
	deadline := c.Clock.Now() + maxWait
	for !cc.Steady(s) && c.Clock.Now() < deadline {
		c.Clock.RunFor(c.Metrics.Interval())
	}
	return cc.ConvergedAt(s)
}

// WarmupEnded reports the virtual time at which RunWarmup returned (zero
// before warm-up completes).
func (c *Cluster) WarmupEnded() simclock.Time { return c.warmupEnded }

// RunWarmup runs the paper's warm-up phase: scenario initialization traffic
// on every guest, interleaved with KSM at the fast 10 000 pages/100 ms
// setting, until the configured number of full passes completes; then the
// scanner drops to the steady 1 000 pages per wake-up.
func (c *Cluster) RunWarmup() {
	c.Trace.Emit(trace.KindPhase, "cluster", "warm-up begins (scanner at 10000 pages/100ms)")
	wakeupsPerPass := c.totalGuestPages()/10000 + 1
	slices := c.Cfg.WarmupPasses * 2
	fixedSlice := simclock.Time(wakeupsPerPass*c.Cfg.WarmupPasses/slices+1) * 100 * simclock.Millisecond
	for s := 0; s < slices; s++ {
		for _, w := range c.Workers {
			n := w.WarmupTarget() / slices
			if n < 1 {
				n = 1
			}
			w.RunSteadyState(n)
		}
		if c.Cfg.AdaptiveWarmup {
			// Just long enough for the scanner to absorb the traffic slice;
			// the convergence detector supplies the rest of the duration.
			c.Clock.RunFor(100 * simclock.Millisecond)
		} else {
			c.Clock.RunFor(fixedSlice)
		}
	}
	if c.Cfg.AdaptiveWarmup {
		// Keep fast-scanning until the merged-pages series flattens, capped
		// at twice the fixed warm-up so a non-converging run still ends.
		maxWait := 2 * fixedSlice * simclock.Time(slices)
		if at, ok := c.WaitConverged(metrics.ConvergenceConfig{}, maxWait); ok {
			c.Trace.Emit(trace.KindScanner, "ksm",
				"merged-pages series converged at %.1fs", at.Seconds())
		} else {
			c.Trace.Emit(trace.KindScanner, "ksm",
				"merged-pages series did not converge within %.1fs cap", maxWait.Seconds())
		}
	}
	c.Scanner.SetPagesToScan(1000)
	c.warmupEnded = c.Clock.Now()
	st := c.Scanner.Stats()
	c.Trace.Emit(trace.KindScanner, "ksm",
		"warm-up done: %d full scans, %d MB saved, CPU %.1f%%; dropping to 1000 pages/100ms",
		st.FullScans, st.SavedBytes>>20, st.CPUPercent())
}

// RunSteady drives the measurement phase: each round every instance serves
// IterationsPerRound requests and the clock advances by RoundDuration while
// KSM scans at the steady 1 000 pages per wake-up.
func (c *Cluster) RunSteady() {
	c.Trace.Emit(trace.KindPhase, "cluster", "steady state: %d rounds × %d requests/VM",
		c.Cfg.SteadyRounds, c.Cfg.IterationsPerRound)
	for round := 0; round < c.Cfg.SteadyRounds; round++ {
		for _, w := range c.Workers {
			w.RunSteadyState(c.Cfg.IterationsPerRound)
		}
		c.Clock.RunFor(c.Cfg.RoundDuration)
	}
	st := c.Scanner.Stats()
	c.Trace.Emit(trace.KindScanner, "ksm", "steady done: sharing %d pages -> %d mappings, %d MB saved",
		st.PagesShared, st.PagesSharing, st.SavedBytes>>20)
}

// Run executes warm-up plus steady state (the standard measurement flow).
func (c *Cluster) Run() {
	c.RunWarmup()
	c.RunSteady()
}

// Analyze freezes the current memory state through the §2 methodology.
func (c *Cluster) Analyze() *memanalysis.Analysis {
	return memanalysis.Analyze(c.Host, c.Kernels,
		memanalysis.WithTLBEntries(c.Cfg.TLBEntries))
}

// ScaleBytes converts simulated bytes back into paper units.
func (c *Cluster) ScaleBytes(b int64) int64 {
	return b * int64(c.Cfg.withDefaults().Scale)
}
