package core

import (
	"fmt"

	"repro/internal/classlib"
	"repro/internal/guestos"
	"repro/internal/jvm"
	"repro/internal/mem"
	"repro/internal/powervm"
	"repro/internal/simclock"
	"repro/internal/workload"
)

// POWER-platform constants from Tables I and II.
const (
	// PowerRAMBytes is the BladeCenter PS701's 128 GB.
	PowerRAMBytes = int64(128) << 30
	// AIXKernelVersion labels the AIX 6.1 TL6 guest build.
	AIXKernelVersion = "AIX-6.1-TL6"
)

// PowerPair is one pair of Fig. 6 bars: total physical usage just after
// starting WAS (before the hypervisor finishes sharing) and after.
type PowerPair struct {
	BeforeMB float64
	AfterMB  float64
}

// SavingMB is the memory recovered by page sharing.
func (p PowerPair) SavingMB() float64 { return p.BeforeMB - p.AfterMB }

// PowerFigure is the Fig. 6 result.
type PowerFigure struct {
	ID        string
	Title     string
	NoPreload PowerPair
	Preload   PowerPair
}

// DeltaMB is the additional saving from preloading classes (the paper
// measures 181.0 MB).
func (f PowerFigure) DeltaMB() float64 {
	return f.Preload.SavingMB() - f.NoPreload.SavingMB()
}

// Fig6 runs the PowerVM experiment: three 3.5 GB AIX partitions each
// running WAS + DayTrader (25 client threads, 1 GB heap), measured before
// and after the hypervisor's page sharing, without and with the preloaded
// shared class cache. The two configurations build independent machines, so
// they fan out across the runner's pool.
func Fig6(o Options) PowerFigure {
	fig := PowerFigure{ID: "fig6", Title: "PowerVM: physical memory of three guest VMs, before/after sharing"}
	pairs := RunAll(o.runner(), []Job[PowerPair]{
		{Label: "fig6 preload=false", Run: func() PowerPair { return powerRun(o, false) }},
		{Label: "fig6 preload=true", Run: func() PowerPair { return powerRun(o, true) }},
	})
	fig.NoPreload, fig.Preload = pairs[0], pairs[1]
	return fig
}

// powerRun executes one Fig. 6 configuration and returns its bar pair.
func powerRun(o Options, preload bool) PowerPair {
	scale := o.scale()
	clock := simclock.New()
	machine := powervm.New(powervm.Config{
		Name:     "BladeCenter-PS701",
		RAMBytes: PowerRAMBytes / int64(scale),
	}, clock)
	corpus := classlib.NewCorpus(jvm.RuntimeVersion, scale)
	spec := workload.DayTraderPOWER()

	var img = workload.BuildCache(corpus, spec, scale)
	var instances []*workload.Instance
	for i := 0; i < 3; i++ {
		lp := machine.NewLPAR(powervm.LPARConfig{
			Name:          fmt.Sprintf("LPAR %d", i+1),
			GuestMemBytes: spec.GuestMemBytes / int64(scale),
			Seed:          mem.Combine(o.Seed, mem.HashString("lpar"), mem.Seed(i+1)),
		})
		k := guestos.Boot(lp, guestos.KernelConfig{
			Version:   AIXKernelVersion,
			TextBytes: (24 << 20) / int64(scale),
			DataBytes: (48 << 20) / int64(scale),
			SlabBytes: (72 << 20) / int64(scale),
		})
		dcfg := workload.DeployConfig{Scale: scale}
		if preload {
			k.FS().Install(&guestos.File{Path: CachePath, Data: img.FileBytes(corpus)})
			dcfg.SharedClasses = true
			dcfg.CacheImage = img
			dcfg.CachePath = CachePath
		}
		instances = append(instances, workload.Deploy(k, corpus, spec, dcfg))
	}

	before := machine.PhysicalInUse()
	// The hypervisor scanner converges while the system serves load: the
	// volatility gate needs consecutive quiet observations of each page.
	rounds := 6
	if o.Quick {
		rounds = 4
	}
	for r := 0; r < rounds; r++ {
		for _, in := range instances {
			in.RunSteadyState(4)
		}
		machine.SharePass()
	}
	after := machine.PhysicalInUse()

	toMB := func(b int64) float64 { return float64(b) * float64(scale) / (1 << 20) }
	return PowerPair{BeforeMB: toMB(before), AfterMB: toMB(after)}
}
