package core

import (
	"os"

	"strings"
	"testing"

	"repro/internal/jvm"
	"repro/internal/workload"
)

// testScale keeps the integration tests fast; the real experiments run at
// DefaultScale.
const testScale = 48

func TestClusterConfigDefaults(t *testing.T) {
	cfg := ClusterConfig{Specs: []workload.Spec{workload.DayTrader()}}.withDefaults()
	if cfg.Scale != DefaultScale || cfg.NumVMs != 1 || cfg.WarmupPasses == 0 || cfg.SteadyRounds == 0 {
		t.Fatalf("defaults not applied: %+v", cfg)
	}
	if cfg.HostRAMBytes != HostRAMBytes {
		t.Fatal("host RAM default wrong")
	}
}

func TestTablesRender(t *testing.T) {
	for _, tc := range []struct {
		name string
		out  string
		want []string
	}{
		{"t1", Table1().String(), []string{"BladeCenter LS21", "6 GB", "KVM", "PowerVM 2.1"}},
		{"t2", Table2().String(), []string{"1.00 GB", "3.5 GB", "1,000 pages", "AIX 6.1"}},
		{"t3", Table3().String(), []string{"12 client threads", "Injection rate of 15", "530 MB", "120 MB", "25 MB"}},
		{"t4", Table4().String(), []string{"Java heap", "JIT-compiled code", "ROMClass"}},
	} {
		for _, w := range tc.want {
			if !strings.Contains(tc.out, w) {
				t.Fatalf("%s: missing %q in:\n%s", tc.name, w, tc.out)
			}
		}
	}
}

// fig2Result caches the expensive baseline run shared by several tests.
var fig2Mem, fig4Mem MemFigure
var fig2Java, fig4Java JavaFigure
var figsOnce bool

func runFigs(t *testing.T) {
	t.Helper()
	if figsOnce {
		return
	}
	fig2Mem, fig2Java = Fig2(Options{Scale: testScale, Quick: true})
	fig4Mem, fig4Java = Fig4(Options{Scale: testScale, Quick: true})
	figsOnce = true
}

func TestFig2BaselineShape(t *testing.T) {
	runFigs(t)
	if len(fig2Mem.VMs) != 4 {
		t.Fatalf("VM rows = %d", len(fig2Mem.VMs))
	}
	for _, v := range fig2Mem.VMs {
		if v.JavaMB < v.OtherMB || v.JavaMB < v.KernelMB {
			t.Fatalf("Java not the largest consumer in %s: %+v", v.Name, v)
		}
	}
	// Kernel sharing: VM 1 owns the shared kernel pages, so its kernel bar
	// is much larger than the others (paper: 219 MB vs ~106 MB).
	if !(fig2Mem.VMs[0].KernelMB > 1.5*fig2Mem.VMs[1].KernelMB) {
		t.Fatalf("kernel owner asymmetry missing: %v vs %v", fig2Mem.VMs[0].KernelMB, fig2Mem.VMs[1].KernelMB)
	}
	// Baseline class metadata essentially unshared.
	for _, b := range fig2Java.Bars {
		cm := b.Cat(jvm.CatClassMeta)
		if cm.MappedMB == 0 {
			t.Fatalf("no class metadata in %s", b.Label)
		}
		if frac := cm.SharedMB / cm.MappedMB; frac > 0.15 {
			t.Fatalf("baseline class metadata %.0f%% shared in %s", frac*100, b.Label)
		}
		// JIT-compiled code unshared (profile-dependent content).
		jc := b.Cat(jvm.CatJITCode)
		if jc.MappedMB > 0 && jc.SharedMB/jc.MappedMB > 0.1 {
			t.Fatalf("JIT code shared in %s", b.Label)
		}
		// Java heap nearly unshared (paper: 0.7 %).
		hp := b.Cat(jvm.CatHeap)
		if hp.SharedMB/hp.MappedMB > 0.1 {
			t.Fatalf("heap %.1f%% shared in %s", 100*hp.SharedMB/hp.MappedMB, b.Label)
		}
	}
	// Code area is mostly shared for the three non-owner JVMs.
	sharedCode := 0
	for _, b := range fig2Java.Bars {
		c := b.Cat(jvm.CatCode)
		if c.SharedMB > 0.5*c.MappedMB {
			sharedCode++
		}
	}
	if sharedCode != 3 {
		t.Fatalf("code area shared in %d JVMs, want 3 (owner pays)", sharedCode)
	}
}

func TestFig4PreloadShape(t *testing.T) {
	runFigs(t)
	// The headline: class metadata mostly eliminated by TPS in the three
	// non-primary JVMs (paper: 89.6 %).
	high := 0
	for _, b := range fig4Java.Bars {
		cm := b.Cat(jvm.CatClassMeta)
		if cm.SharedMB/cm.MappedMB > 0.7 {
			high++
		}
	}
	if high != 3 {
		t.Fatalf("class metadata mostly shared in %d JVMs, want 3", high)
	}
	// Savings grow by roughly the cache content shared into the three
	// non-primary JVMs (paper: 20 → 120 MB per non-primary process).
	delta := fig4Mem.TotalSavingsMB - fig2Mem.TotalSavingsMB
	if delta < 150 {
		t.Fatalf("preload savings delta %.0f MB too small (baseline %.0f, preload %.0f)",
			delta, fig2Mem.TotalSavingsMB, fig4Mem.TotalSavingsMB)
	}
	// Total guest memory shrinks (paper: 3648 → 3314 MB).
	if fig4Mem.TotalMB >= fig2Mem.TotalMB {
		t.Fatalf("preload total %.0f ≥ baseline %.0f", fig4Mem.TotalMB, fig2Mem.TotalMB)
	}
}

func TestFig3cTuscanyShape(t *testing.T) {
	fig := Fig3c(Options{Scale: testScale, Quick: true})
	if len(fig.Bars) != 3 {
		t.Fatalf("bars = %d", len(fig.Bars))
	}
	for _, b := range fig.Bars {
		// Tuscany is an order of magnitude smaller than WAS (Fig. 3(c)'s
		// axis tops at 160 MB versus 800 MB).
		if b.TotalMapped() > 350 {
			t.Fatalf("Tuscany JVM %s too large: %.0f MB", b.Label, b.TotalMapped())
		}
		cm := b.Cat(jvm.CatClassMeta)
		if cm.SharedMB/cm.MappedMB > 0.15 {
			t.Fatal("baseline Tuscany class metadata shared")
		}
	}
}

func TestFig5cTuscanyPreload(t *testing.T) {
	fig := Fig5c(Options{Scale: testScale, Quick: true})
	high := 0
	for _, b := range fig.Bars {
		cm := b.Cat(jvm.CatClassMeta)
		if cm.SharedMB/cm.MappedMB > 0.5 {
			high++
		}
	}
	if high != 2 {
		t.Fatalf("class metadata mostly shared in %d of 3 Tuscany JVMs, want 2", high)
	}
}

func TestFig6PowerDelta(t *testing.T) {
	fig := Fig6(Options{Scale: testScale, Quick: true})
	if fig.NoPreload.SavingMB() <= 0 {
		t.Fatalf("no sharing without preload: %+v", fig.NoPreload)
	}
	if fig.Preload.SavingMB() <= fig.NoPreload.SavingMB() {
		t.Fatalf("preloading did not increase PowerVM sharing: %+v vs %+v", fig.Preload, fig.NoPreload)
	}
	// The delta should be of the order of two extra copies of the used
	// cache (paper: 181 MB for a 100 MB cache across 3 LPARs).
	if fig.DeltaMB() < 50 {
		t.Fatalf("delta too small: %.1f MB", fig.DeltaMB())
	}
}

func TestSolverMonotonicInFaults(t *testing.T) {
	mk := func(f float64) []VMPerf {
		vms := make([]VMPerf, 4)
		for i := range vms {
			vms[i] = VMPerf{FaultsPerReq: f, BaseRate: 19, ClientThreads: 12}
		}
		return vms
	}
	prev := 1e18
	for _, f := range []float64{0, 0.5, 2, 8, 32, 128} {
		vms := mk(f)
		solveThroughput(vms)
		agg := Aggregate(vms)
		if agg > prev+1e-9 {
			t.Fatalf("throughput not monotone: f=%v agg=%v prev=%v", f, agg, prev)
		}
		prev = agg
	}
	// Zero faults → unloaded rate.
	vms := mk(0)
	solveThroughput(vms)
	if a := Aggregate(vms); a < 75.9 || a > 76.1 {
		t.Fatalf("unloaded aggregate = %v, want 76", a)
	}
	// SLA flag fires under heavy faulting.
	vms = mk(64)
	solveThroughput(vms)
	if !AnySLAViolated(vms) {
		t.Fatal("SLA not violated under heavy faulting")
	}
}

func TestRenderersProduceOutput(t *testing.T) {
	runFigs(t)
	if out := RenderMemFigure(fig2Mem); !strings.Contains(out, "FIG2") || !strings.Contains(out, "Total physical memory") {
		t.Fatalf("mem render:\n%s", out)
	}
	if out := RenderJavaFigure(fig2Java); !strings.Contains(out, "Class metadata") {
		t.Fatalf("java render:\n%s", out)
	}
	sf := SweepFigure{ID: "fig7", Title: "t", Unit: "req/s", Points: []SweepPoint{{NumVMs: 1, Default: Stat{1, 2, 3}, Preloaded: Stat{2, 3, 4}}}}
	if out := RenderSweepFigure(sf); !strings.Contains(out, "FIG7") {
		t.Fatalf("sweep render:\n%s", out)
	}
	pf := PowerFigure{ID: "fig6", Title: "t", NoPreload: PowerPair{100, 80}, Preload: PowerPair{100, 60}}
	if out := RenderPowerFigure(pf); !strings.Contains(out, "181.0") {
		t.Fatalf("power render:\n%s", out)
	}
}

func TestScaleBytesRoundTrip(t *testing.T) {
	c := &Cluster{Cfg: ClusterConfig{Scale: 16, Specs: []workload.Spec{workload.DayTrader()}}}
	if c.ScaleBytes(1<<20) != 16<<20 {
		t.Fatal("ScaleBytes wrong")
	}
}

func TestMultipleJVMsPerGuestShareCacheIntraGuest(t *testing.T) {
	// §4.B's original use of shared classes: several WAS processes in ONE
	// guest attach the same cache file and share its pages through the
	// guest page cache, without any hypervisor involvement. The
	// owner-oriented analyzer shows the second JVM's cache-backed class
	// metadata as shared even before KSM does anything across guests.
	spec := workload.Tuscany() // small heap: two fit in one guest
	c := BuildCluster(ClusterConfig{
		Scale:         testScale,
		Specs:         []workload.Spec{spec},
		NumVMs:        1,
		JVMsPerGuest:  2,
		SharedClasses: true,
		DisableKSM:    true, // isolate the intra-guest effect
		SteadyRounds:  5,
	})
	c.Run()
	a := c.Analyze()
	jbs := a.JavaBreakdowns()
	if len(jbs) != 2 {
		t.Fatalf("java processes = %d, want 2", len(jbs))
	}
	// Exactly one of the two pays for the cache pages; the other maps them
	// for free.
	shared0 := jbs[0].ByCat[jvm.CatClassMeta].SharedBytes
	shared1 := jbs[1].ByCat[jvm.CatClassMeta].SharedBytes
	lo, hi := shared0, shared1
	if lo > hi {
		lo, hi = hi, lo
	}
	if hi == 0 {
		t.Fatal("no intra-guest cache sharing between co-resident JVMs")
	}
	if lo >= hi {
		t.Fatal("both JVMs marked shared; owner rule broken")
	}
	// The shared portion is most of the cache-aware metadata.
	mapped := jbs[0].ByCat[jvm.CatClassMeta].MappedBytes
	if float64(hi) < 0.5*float64(mapped) {
		t.Fatalf("intra-guest sharing %d too small vs mapped %d", hi, mapped)
	}
}

func TestTraceTimelineRecorded(t *testing.T) {
	c := BuildCluster(ClusterConfig{
		Scale:        testScale,
		Specs:        []workload.Spec{workload.Tuscany()},
		NumVMs:       2,
		EnableTrace:  true,
		SteadyRounds: 5,
	})
	c.Run()
	c.MeasurePerf(2)
	if c.Trace == nil {
		t.Fatal("trace not enabled")
	}
	ev := c.Trace.Events()
	if len(ev) < 6 {
		t.Fatalf("too few events: %d", len(ev))
	}
	kinds := map[string]bool{}
	for _, e := range ev {
		kinds[string(e.Kind)] = true
	}
	for _, want := range []string{"deploy", "phase", "scanner", "measure"} {
		if !kinds[want] {
			t.Fatalf("missing %q events in %v", want, kinds)
		}
	}
	// Timestamps are monotone.
	for i := 1; i < len(ev); i++ {
		if ev[i].At < ev[i-1].At {
			t.Fatal("timeline not monotone")
		}
	}
}

// TestFullScaleFig2 runs the Fig. 2 scenario at MemScale=1 — four real
// 1 GB guests with full-size page bytes. It needs several GB of RAM and
// minutes of CPU, so it only runs when explicitly requested:
//
//	TPSIM_FULLSCALE=1 go test ./internal/core -run TestFullScaleFig2 -timeout 60m
func TestFullScaleFig2(t *testing.T) {
	if os.Getenv("TPSIM_FULLSCALE") == "" {
		t.Skip("set TPSIM_FULLSCALE=1 to run the MemScale=1 experiment")
	}
	memF, javaF := Fig2(Options{Scale: 1, Quick: true})
	if memF.TotalMB < 3000 || memF.TotalMB > 4100 {
		t.Fatalf("full-scale total %.0f MB out of range", memF.TotalMB)
	}
	for _, b := range javaF.Bars {
		cm := b.Cat(jvm.CatClassMeta)
		if cm.SharedMB/cm.MappedMB > 0.15 {
			t.Fatalf("full-scale baseline class metadata shared: %+v", cm)
		}
	}
}

func TestCSVTables(t *testing.T) {
	mf := MemFigure{ID: "fig2", VMs: []VMRow{{Name: "VM 1", JavaMB: 700, KernelMB: 200, SavingsMB: 20}}, TotalMB: 920}
	csv := MemFigureTable(mf).CSV()
	if !strings.Contains(csv, "vm,java_mb") || !strings.Contains(csv, "VM 1,700.0") {
		t.Fatalf("mem csv:\n%s", csv)
	}
	jf := JavaFigure{ID: "fig3a", Bars: []JavaBar{{Label: "JVM1", PID: 7, Cats: []CatRow{{Name: "Java heap", MappedMB: 400, SharedMB: 2}}}}}
	csv = JavaFigureTable(jf).CSV()
	if !strings.Contains(csv, "JVM1,7,Java heap,400.0,2.0") {
		t.Fatalf("java csv:\n%s", csv)
	}
	sf := SweepFigure{ID: "fig7", Points: []SweepPoint{{NumVMs: 8, Default: Stat{7, 7.7, 8}, Preloaded: Stat{150, 152, 153}, DefaultSLAViolated: true}}}
	csv = SweepFigureTable(sf).CSV()
	if !strings.Contains(csv, "8,7.0,7.7,8.0,true,150.0,152.0,153.0,false") {
		t.Fatalf("sweep csv:\n%s", csv)
	}
	pf := PowerFigure{ID: "fig6", NoPreload: PowerPair{100, 80}, Preload: PowerPair{100, 60}}
	csv = PowerFigureTable(pf).CSV()
	if !strings.Contains(csv, "preloaded,100.0,60.0,40.0") {
		t.Fatalf("power csv:\n%s", csv)
	}
}

func TestClaimsWellFormed(t *testing.T) {
	seen := map[string]bool{}
	for _, c := range Claims() {
		if c.ID == "" || c.Statement == "" || c.Check == nil {
			t.Fatalf("malformed claim %+v", c)
		}
		if seen[c.ID] {
			t.Fatalf("duplicate claim id %q", c.ID)
		}
		seen[c.ID] = true
	}
	if len(seen) < 8 {
		t.Fatalf("claim suite too small: %d", len(seen))
	}
}

func TestStatOfAndMeanScore(t *testing.T) {
	s := statOf([]float64{3, 1, 2})
	if s.Min != 1 || s.Max != 3 || s.Mean != 2 {
		t.Fatalf("stat = %+v", s)
	}
	if z := statOf(nil); z != (Stat{}) {
		t.Fatalf("empty stat = %+v", z)
	}
	vms := []VMPerf{{Throughput: 10}, {Throughput: 20}}
	if MeanScore(vms) != 15 {
		t.Fatal("MeanScore wrong")
	}
	if MeanScore(nil) != 0 {
		t.Fatal("MeanScore nil")
	}
	if SeedFromUint64(7) != 7 {
		t.Fatal("SeedFromUint64")
	}
}

func TestFig3bAnd5bShapes(t *testing.T) {
	// The mixed-workload scenario: three different apps in the same WAS.
	base := Fig3b(Options{Scale: testScale, Quick: true})
	if len(base.Bars) != 3 {
		t.Fatalf("bars = %d", len(base.Bars))
	}
	labels := map[string]bool{}
	for _, b := range base.Bars {
		labels[b.Label] = true
		cm := b.Cat(jvm.CatClassMeta)
		if cm.SharedMB/cm.MappedMB > 0.15 {
			t.Fatalf("baseline mixed class metadata shared in %s", b.Label)
		}
	}
	for _, want := range []string{"DayTrader", "SPECjEnterprise", "TPC-W"} {
		if !labels[want] {
			t.Fatalf("missing %s bar", want)
		}
	}
	pre := Fig5b(Options{Scale: testScale, Quick: true})
	high := 0
	for _, b := range pre.Bars {
		cm := b.Cat(jvm.CatClassMeta)
		if cm.SharedMB/cm.MappedMB > 0.6 {
			high++
		}
	}
	// Two non-primary WAS processes share most of their (middleware-
	// dominated) class metadata even though the apps differ — the paper's
	// §5.A point about Fig. 5(b).
	if high != 2 {
		t.Fatalf("mixed preloaded: %d of 3 share most metadata, want 2", high)
	}
}

func TestSweepQuickShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is slow")
	}
	o := Options{Scale: 64, Quick: true}
	f7 := Fig7(o)
	if len(f7.Points) == 0 || f7.Unit != "req/s" {
		t.Fatalf("fig7 = %+v", f7)
	}
	for i := 1; i < len(f7.Points); i++ {
		if f7.Points[i].NumVMs <= f7.Points[i-1].NumVMs {
			t.Fatal("points not sorted")
		}
	}
	// At small VM counts both configurations run at the unloaded rate.
	first := f7.Points[0]
	want := float64(first.NumVMs) * 19.0
	if first.Default.Mean < want*0.9 || first.Preloaded.Mean < want*0.9 {
		t.Fatalf("unloaded point degraded: %+v", first)
	}
}
