package core

import (
	"fmt"

	"repro/internal/workload"
)

// KSMShardRow is one cell of the ksmshard sweep: one workload scenario run
// at one scanner shard count. Every outcome column is byte-identical across
// the shard axis — that invariance is the point of the sweep (and what the
// CI smoke diffs); sharding buys scan-pass wall time, which the
// BenchmarkShardedScanPass harness measures (BENCH_ksmshard.json), never
// different merges.
type KSMShardRow struct {
	Workload string
	Guests   int
	Shards   int
	// SharingMB is KSM saved memory at the end of the run.
	SharingMB float64
	// Merges is total stable + unstable merges; PagesScanned and FullScans
	// are the scanner's cumulative effort.
	Merges       uint64
	PagesScanned uint64
	FullScans    uint64
	// ScanCPUPct is the scanner's simulated duty cycle (per-page scan cost ×
	// pages / wall), identical at every shard count by construction: the
	// cost model charges pages, not workers.
	ScanCPUPct float64
	// ShardPagesScanned is the per-shard routed-candidate split, proving the
	// checksum partition spreads work rather than collapsing onto one shard.
	ShardPagesScanned []uint64
}

// KSMShardFigure is the ksmshard experiment result.
type KSMShardFigure struct {
	ID    string
	Title string
	Rows  []KSMShardRow
}

// KSMShardSweep runs workload scenarios at shard counts 1, 2 and 4 and
// reports identical sharing outcomes with the per-shard work split. The
// Options.KSMShards flag is ignored here — the sweep supplies its own shard
// axis.
func KSMShardSweep(o Options) KSMShardFigure {
	fig := KSMShardFigure{
		ID:    "ksmshard",
		Title: "Sharded KSM scanning: identical outcomes per shard count (wall-time scaling in BENCH_ksmshard.json)",
	}
	scenarios := []struct {
		label  string
		spec   workload.Spec
		guests int
	}{
		{"daytrader", workload.DayTrader(), 4},
		{"tuscany", workload.Tuscany(), 3},
	}
	shardCounts := []int{1, 2, 4}
	var jobs []Job[KSMShardRow]
	for _, sc := range scenarios {
		for _, shards := range shardCounts {
			sc, shards := sc, shards
			seq := len(jobs)
			label := fmt.Sprintf("ksmshard %s x%d shards=%d", sc.label, sc.guests, shards)
			jobs = append(jobs, Job[KSMShardRow]{
				Label: label,
				Run: func() KSMShardRow {
					cfg := ClusterConfig{
						Scale:         o.scale(),
						Specs:         []workload.Spec{sc.spec},
						NumVMs:        sc.guests,
						SharedClasses: true,
						BaseSeed:      o.Seed,
						EnableMetrics: o.Telemetry != nil,
						KSMShards:     shards,
					}
					if o.Quick {
						cfg.SteadyRounds = 15
					}
					c := BuildCluster(cfg)
					o.Telemetry.CollectAt(seq, label, c.Metrics)
					c.Run()
					kst := c.Scanner.Stats()
					return KSMShardRow{
						Workload:          sc.label,
						Guests:            sc.guests,
						Shards:            shards,
						SharingMB:         mb(kst.SavedBytes, c.Cfg.Scale),
						Merges:            kst.StableMerges + kst.UnstableMerges,
						PagesScanned:      kst.PagesScanned,
						FullScans:         kst.FullScans,
						ScanCPUPct:        kst.CPUPercent(),
						ShardPagesScanned: c.Scanner.ShardPagesScanned(),
					}
				},
			})
		}
	}
	fig.Rows = RunAll(o.runner(), jobs)
	return fig
}
