package core

import (
	"strings"
	"testing"

	"repro/internal/metrics"
	"repro/internal/workload"
)

// TestFiguresByteIdenticalWithMetrics is the determinism contract of the
// telemetry subsystem: sampling is read-only, so the rendered figure of a
// metrics-on run must be byte-identical to a metrics-off run at the same
// seed.
func TestFiguresByteIdenticalWithMetrics(t *testing.T) {
	o := Options{Scale: testScale, Quick: true}
	memOff, javaOff := Fig2(o)
	o.Telemetry = NewTelemetry()
	memOn, javaOn := Fig2(o)
	if RenderMemFigure(memOff) != RenderMemFigure(memOn) {
		t.Fatal("MemFigure differs with metrics enabled")
	}
	if RenderJavaFigure(javaOff) != RenderJavaFigure(javaOn) {
		t.Fatal("JavaFigure differs with metrics enabled")
	}
	if len(o.Telemetry.Entries()) != 1 {
		t.Fatalf("collected %d registries, want 1", len(o.Telemetry.Entries()))
	}
}

// TestConvergenceWithinWarmup is the paper-fidelity check: on the §2.C
// DayTrader scenario the cumulative merged-pages series must flatten no
// later than the fixed warm-up window the paper uses — otherwise the fixed
// window would be cutting the merge ramp short.
func TestConvergenceWithinWarmup(t *testing.T) {
	c := BuildCluster(ClusterConfig{
		Scale:         testScale,
		Specs:         []workload.Spec{workload.DayTrader()},
		NumVMs:        4,
		SteadyRounds:  15,
		EnableMetrics: true,
	})
	c.Run()
	s := c.Metrics.Get("ksm.pages_merged")
	if s == nil || s.Len() == 0 {
		t.Fatal("no merged-pages series")
	}
	at, ok := (metrics.ConvergenceConfig{}).ConvergedAt(s)
	if !ok {
		t.Fatal("merged-pages series never flattened")
	}
	if at > c.WarmupEnded() {
		t.Fatalf("converged at %v, after warm-up ended at %v", at, c.WarmupEnded())
	}
}

// TestAdaptiveWarmupMatchesFixedSavings runs the same scenario under fixed
// and adaptive warm-up: the sharing state both flows settle into must agree
// closely (the detector must not end warm-up while merging is still
// ramping).
func TestAdaptiveWarmupMatchesFixedSavings(t *testing.T) {
	build := func(adaptive bool) int64 {
		c := BuildCluster(ClusterConfig{
			Scale:          testScale,
			Specs:          []workload.Spec{workload.DayTrader()},
			NumVMs:         2,
			SteadyRounds:   15,
			AdaptiveWarmup: adaptive,
			EnableMetrics:  true,
		})
		c.Run()
		return c.Analyze().TotalSavingsBytes()
	}
	fixed, adaptive := build(false), build(true)
	if fixed == 0 {
		t.Fatal("no savings in fixed run")
	}
	ratio := float64(adaptive) / float64(fixed)
	if ratio < 0.9 || ratio > 1.1 {
		t.Fatalf("adaptive savings %d vs fixed %d (ratio %.2f)", adaptive, fixed, ratio)
	}
}

// TestTelemetryIdenticalAcrossJobs fans the Fig. 7 sweep out at two pool
// widths with telemetry collected from the concurrent workers; the rendered
// timelines and CSV must be byte-identical (and under -race this doubles as
// the concurrent-collection safety check).
func TestTelemetryIdenticalAcrossJobs(t *testing.T) {
	run := func(jobs int) (string, string) {
		// Double the test scale: the sweep runs 8 clusters of up to 9 VMs
		// twice, and the comparison only needs identical bytes, not fidelity.
		o := Options{Scale: 2 * testScale, Quick: true, Jobs: jobs, Telemetry: NewTelemetry()}
		fig := Fig7(o)
		if len(fig.Points) == 0 {
			t.Fatal("empty sweep")
		}
		return o.Telemetry.RenderTimelines(), o.Telemetry.CSV()
	}
	tl1, csv1 := run(1)
	tl4, csv4 := run(4)
	if tl1 != tl4 {
		t.Fatal("timelines differ between -jobs 1 and -jobs 4")
	}
	if csv1 != csv4 {
		t.Fatal("metrics CSV differs between -jobs 1 and -jobs 4")
	}
	if !strings.Contains(tl1, "TIMELINE — fig7 n=") {
		t.Fatalf("unexpected timeline header:\n%.200s", tl1)
	}
}

// TestClusterGaugeSanity cross-checks sampled gauges against the direct
// accessors at the end of a run.
func TestClusterGaugeSanity(t *testing.T) {
	c := BuildCluster(ClusterConfig{
		Scale:         testScale,
		Specs:         []workload.Spec{workload.DayTrader()},
		NumVMs:        2,
		SteadyRounds:  15,
		EnableMetrics: true,
	})
	c.Run()
	c.Metrics.Sample() // align the final sample with the accessors
	last := func(name string) float64 {
		s := c.Metrics.Get(name)
		if s == nil {
			t.Fatalf("missing series %q", name)
		}
		v, ok := s.Last()
		if !ok {
			t.Fatalf("empty series %q", name)
		}
		return v.V
	}
	pm := c.Host.Phys()
	if got := last("mem.frames_in_use"); got != float64(pm.FramesInUse()) {
		t.Fatalf("frames_in_use gauge %g != %d", got, pm.FramesInUse())
	}
	if got := last("mem.frames_ksm"); got != float64(pm.KSMFrames()) {
		t.Fatalf("frames_ksm gauge %g != %d", got, pm.KSMFrames())
	}
	st := c.Scanner.Stats()
	if got := last("ksm.pages_shared"); got != float64(st.PagesShared) {
		t.Fatalf("pages_shared gauge %g != %d", got, st.PagesShared)
	}
	if got := last("ksm.pages_scanned"); got != float64(st.PagesScanned) {
		t.Fatalf("pages_scanned gauge %g != %d", got, st.PagesScanned)
	}
	if last("jvm.classes_loaded") == 0 || last("jvm.heap_used_bytes") == 0 {
		t.Fatal("JVM gauges stayed zero")
	}
	if last("mem.frames_ksm") == 0 {
		t.Fatal("no KSM frames at end of run")
	}
	if csv := c.Metrics.CSV(); !strings.HasPrefix(csv, "time_s,") {
		t.Fatalf("CSV header: %.60s", csv)
	}
}

// TestWaitConvergedRequiresMetrics pins the fail-fast contract.
func TestWaitConvergedRequiresMetrics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic without EnableMetrics")
		}
	}()
	c := BuildCluster(ClusterConfig{
		Scale:        testScale,
		Specs:        []workload.Spec{workload.DayTrader()},
		NumVMs:       1,
		SteadyRounds: 15,
	})
	c.WaitConverged(metrics.ConvergenceConfig{}, 0)
}

// TestTelemetryCollectorOrdering pins the (Seq, Label) ordering and
// nil-safety of the cross-run collector.
func TestTelemetryCollectorOrdering(t *testing.T) {
	var nilT *Telemetry
	nilT.Collect("x", nil) // must not panic
	if nilT.Entries() != nil {
		t.Fatal("nil collector not inert")
	}
	tel := NewTelemetry()
	c := BuildCluster(ClusterConfig{
		Scale:         testScale,
		Specs:         []workload.Spec{workload.DayTrader()},
		NumVMs:        1,
		SteadyRounds:  15,
		EnableMetrics: true,
	})
	tel.CollectAt(2, "later", c.Metrics)
	tel.CollectAt(0, "earlier", c.Metrics)
	tel.Collect("ignored-nil", nil) // nil registry entries are skipped
	got := tel.Entries()
	if len(got) != 2 || got[0].Label != "earlier" || got[1].Label != "later" {
		t.Fatalf("entries = %+v", got)
	}
}
