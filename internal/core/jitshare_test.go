package core

import (
	"testing"

	"repro/internal/jvm"
	"repro/internal/workload"
)

// TestJITShareSweepQualitativeAndDeterministic runs the jitshare sweep once
// sequentially and once on four workers: the figure must be byte-identical
// at any -jobs width, and the rows must show the tentpole claim — the code
// area goes from unshareable (the paper's result) to substantially shared
// with PIC bodies, decaying from warm to end as re-JITs break the merges.
func TestJITShareSweepQualitativeAndDeterministic(t *testing.T) {
	seq := JITShareSweep(Options{Scale: testScale, Quick: true, Jobs: 1})
	par := JITShareSweep(Options{Scale: testScale, Quick: true, Jobs: 4})
	if RenderJITShareFigure(seq) != RenderJITShareFigure(par) {
		t.Fatal("jitshare differs between -jobs 1 and -jobs 4")
	}
	if JITShareFigureTable(seq).CSV() != JITShareFigureTable(par).CSV() {
		t.Fatal("jitshare CSV differs between -jobs 1 and -jobs 4")
	}

	row := func(wl, mode string) JITShareRow {
		for _, r := range seq.Rows {
			if r.Workload == wl && r.Mode == mode {
				return r
			}
		}
		t.Fatalf("no row for %s mode=%s", wl, mode)
		return JITShareRow{}
	}
	for _, wl := range []string{"daytrader", "tuscany"} {
		off := row(wl, "off")
		pic := row(wl, "pic")
		// Off is the paper's measured behaviour: no archive machinery at
		// all, and essentially nothing in the code area shares.
		if off.ArchivePages != 0 || off.ArchivedMethods != 0 || off.ReJITs != 0 ||
			off.COWBroken != 0 || off.MergedWarm != 0 || off.MergedEnd != 0 {
			t.Fatalf("off row shows archive activity: %+v", off)
		}
		if off.StubMappedMB != 0 {
			t.Fatalf("off row maps %f MB of profile stubs", off.StubMappedMB)
		}
		if off.RatioEndPct > 1 {
			t.Fatalf("%s: %.1f%% of private JIT code shared without the archive", wl, off.RatioEndPct)
		}
		// PIC mode: real sharing after warm-up...
		if pic.RatioWarmPct < 10 {
			t.Fatalf("%s: warm code-sharing ratio only %.1f%% with the archive", wl, pic.RatioWarmPct)
		}
		if pic.ArchivedMethods == 0 || pic.MergedWarm == 0 {
			t.Fatalf("pic row never populated or merged the archive: %+v", pic)
		}
		// ...that decays under steady-state warming but does not vanish.
		if pic.RatioEndPct >= pic.RatioWarmPct {
			t.Fatalf("%s: sharing did not decay (warm %.1f%%, end %.1f%%)",
				wl, pic.RatioWarmPct, pic.RatioEndPct)
		}
		if pic.RatioEndPct <= 0 {
			t.Fatalf("%s: sharing decayed to nothing", wl)
		}
		if pic.ReJITs == 0 || pic.COWBroken == 0 {
			t.Fatalf("pic row decayed without re-JIT COW breaks: %+v", pic)
		}
		// The profile stubs exist and stay private — the point of the split.
		if pic.StubMappedMB <= 0 {
			t.Fatalf("pic row has no profile stubs: %+v", pic)
		}
		if pic.StubSharedMB > 0.2*pic.StubMappedMB {
			t.Fatalf("%s: %.2f of %.2f stub MB shared; stubs must stay per-process",
				wl, pic.StubSharedMB, pic.StubMappedMB)
		}
	}
}

// TestJITShareFigureSplitsJITData: with the archive on, the Java breakdown
// figure grows a "JIT data stubs" category after the code cache; with it
// off, the category list is exactly the baseline — figures stay
// byte-compatible with the seed.
func TestJITShareFigureSplitsJITData(t *testing.T) {
	build := func(share bool) JavaFigure {
		c := BuildCluster(ClusterConfig{
			Scale:         testScale,
			Specs:         []workload.Spec{workload.DayTrader()},
			NumVMs:        1,
			SharedClasses: true,
			JITShare:      share,
			SteadyRounds:  5,
		})
		c.RunWarmup()
		return javaFigureFrom("fig-t", "t", c.Analyze(), c.Cfg.Scale, nil)
	}

	catsOf := func(f JavaFigure) []string {
		var out []string
		for _, cu := range f.Bars[0].Cats {
			out = append(out, cu.Name)
		}
		return out
	}

	off := catsOf(build(false))
	if len(off) != len(jvm.Categories()) {
		t.Fatalf("flag-off figure has %d categories, want the baseline %d: %v",
			len(off), len(jvm.Categories()), off)
	}
	for _, c := range off {
		if c == jvm.CatJITData {
			t.Fatal("flag-off figure grew a JIT data row")
		}
	}

	on := catsOf(build(true))
	if len(on) != len(jvm.Categories())+1 {
		t.Fatalf("flag-on figure has %d categories, want %d: %v",
			len(on), len(jvm.Categories())+1, on)
	}
	for i, c := range on {
		if c == jvm.CatJITData {
			if i == 0 || on[i-1] != jvm.CatJITCode {
				t.Fatalf("JIT data row not adjacent to the code cache: %v", on)
			}
			return
		}
	}
	t.Fatalf("flag-on figure missing %q: %v", jvm.CatJITData, on)
}
