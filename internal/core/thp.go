package core

import (
	"fmt"

	"repro/internal/thp"
	"repro/internal/workload"
)

// THPRow is one cell of the THP-vs-KSM tradeoff sweep: one policy at one
// guest count, with both axes of the tradeoff in paper-scale units.
type THPRow struct {
	// Policy labels the row: "never", "madvise", "always", "ksm-split"
	// (always + KSM splitting whole huge pages over duplicates), or "fhpm"
	// (fine-grained per-subpage split/promote).
	Policy string
	Guests int
	// HugeMB is guest memory backed by huge mappings; HugeCoveragePct is its
	// share of all attributed guest memory.
	HugeMB          float64
	HugeCoveragePct float64
	// TLBReachMB estimates how much memory a fixed-size TLB covers under the
	// resulting page-size mix (memanalysis.EstimatedTLBReachBytes).
	TLBReachMB float64
	// SharingMB is KSM saved memory (the paper's TPS savings axis);
	// SharingPages is the raw pages_sharing count behind it.
	SharingMB    float64
	SharingPages int
	// Collapses and Splits count huge-page lifecycle events; KSMSkips counts
	// scan candidates KSM had to pass over because a huge mapping hid them —
	// the "sharing lost" side of the ledger.
	Collapses uint64
	Splits    uint64
	KSMSkips  uint64
	// PartialSplits counts subpages carved out of huge blocks one at a time
	// (FHPM demotions plus KSM's per-subpage duplicate splits); Reabsorbs
	// counts quiesced blocks promoted back to a full huge mapping.
	PartialSplits uint64
	Reabsorbs     uint64
}

// THPFigure is the thp-tradeoff experiment result.
type THPFigure struct {
	ID    string
	Title string
	Rows  []THPRow
}

// thpPolicies enumerates the sweep's policy axis. "madvise" equals "always"
// for guest RAM (QEMU madvises it MADV_HUGEPAGE) and serves as that very
// sanity check.
var thpPolicies = []struct {
	label  string
	policy thp.Policy
	split  bool
}{
	{"never", thp.PolicyNever, false},
	{"madvise", thp.PolicyMadvise, false},
	{"always", thp.PolicyAlways, false},
	{"ksm-split", thp.PolicyAlways, true},
	{"fhpm", thp.PolicyFHPM, false},
}

// THPTradeoff sweeps THP policy × guest count on the DayTrader scenario and
// reports both axes of the huge-page/page-sharing tension: under "always"
// khugepaged claims dense runs before KSM's two-sighting gate can merge out
// of them, trading TPS savings for TLB reach; "ksm-split" buys most of the
// sharing back by dissolving huge pages over verified duplicates. The
// Options.THPPolicy flag is ignored here — the sweep supplies its own.
func THPTradeoff(o Options) THPFigure {
	fig := THPFigure{
		ID:    "thp-tradeoff",
		Title: "THP huge-page coverage vs KSM sharing (DayTrader guests)",
	}
	counts := []int{2, 4}
	var jobs []Job[THPRow]
	for _, n := range counts {
		for _, pol := range thpPolicies {
			n, pol := n, pol
			seq := len(jobs)
			label := fmt.Sprintf("thp-tradeoff n=%d policy=%s", n, pol.label)
			jobs = append(jobs, Job[THPRow]{
				Label: label,
				Run: func() THPRow {
					cfg := ClusterConfig{
						Scale:          o.scale(),
						Specs:          []workload.Spec{workload.DayTrader()},
						NumVMs:         n,
						SharedClasses:  true,
						BaseSeed:       o.Seed,
						THPPolicy:      pol.policy,
						THPKSMSplit:    pol.split,
						THPMaxPtesNone: o.THPMaxPtesNone,
						TLBEntries:     o.TLBEntries,
						EnableMetrics:  o.Telemetry != nil,
						KSMShards:      o.KSMShards,
					}
					if o.Quick {
						cfg.SteadyRounds = 15
					}
					c := BuildCluster(cfg)
					o.Telemetry.CollectAt(seq, label, c.Metrics)
					c.Run()
					a := c.Analyze()
					huge, base := a.FrameSizeCounts()
					kst := c.Scanner.Stats()
					tst := c.THP.Stats()
					scale := c.Cfg.Scale
					ps := int64(c.Host.PageSize())
					row := THPRow{
						Policy:        pol.label,
						Guests:        n,
						HugeMB:        mb(int64(huge)*ps, scale),
						TLBReachMB:    mb(a.EstimatedTLBReachBytes(), scale),
						SharingMB:     mb(kst.SavedBytes, scale),
						SharingPages:  kst.PagesSharing,
						Collapses:     tst.Collapses,
						Splits:        tst.Splits,
						KSMSkips:      kst.HugeSkips,
						PartialSplits: tst.PartialSplits,
						Reabsorbs:     tst.Reabsorbs,
					}
					if huge+base > 0 {
						row.HugeCoveragePct = 100 * float64(huge) / float64(huge+base)
					}
					return row
				},
			})
		}
	}
	fig.Rows = RunAll(o.runner(), jobs)
	return fig
}
