package core

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/metrics"
	"repro/internal/report"
)

// Telemetry collects the metrics registries of fanned-out cluster runs so
// their series can be rendered after the fan-out completes, without
// interleaving on stdout. Collection is keyed by an explicit submission
// sequence (or call order for sequential builders), and Entries sorts by
// it, so rendered timelines are byte-identical at every -jobs width — the
// same contract the Runner gives figure output.
//
// A nil *Telemetry is the disabled state: Collect is a no-op, matching the
// nil-safety of the metrics package.
type Telemetry struct {
	mu      sync.Mutex
	entries []TelemetryEntry
}

// TelemetryEntry is one collected run.
type TelemetryEntry struct {
	Seq      int
	Label    string
	Registry *metrics.Registry
}

// NewTelemetry creates an empty collector.
func NewTelemetry() *Telemetry { return &Telemetry{} }

// Collect stores a run's registry with the next sequence number. Use it
// from sequential builders, where call order is deterministic; parallel
// fan-outs must use CollectAt with the job's submission index.
func (t *Telemetry) Collect(label string, r *metrics.Registry) {
	if t == nil || r == nil {
		return
	}
	t.mu.Lock()
	t.entries = append(t.entries, TelemetryEntry{Seq: len(t.entries), Label: label, Registry: r})
	t.mu.Unlock()
}

// CollectAt stores a run's registry under an explicit sequence number.
func (t *Telemetry) CollectAt(seq int, label string, r *metrics.Registry) {
	if t == nil || r == nil {
		return
	}
	t.mu.Lock()
	t.entries = append(t.entries, TelemetryEntry{Seq: seq, Label: label, Registry: r})
	t.mu.Unlock()
}

// Entries returns the collected runs ordered by (Seq, Label).
func (t *Telemetry) Entries() []TelemetryEntry {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]TelemetryEntry, len(t.entries))
	copy(out, t.entries)
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Seq != out[j].Seq {
			return out[i].Seq < out[j].Seq
		}
		return out[i].Label < out[j].Label
	})
	return out
}

// sparkWidth is the timeline column width of RenderTimeline.
const sparkWidth = 48

// RenderTimeline renders one run's series as an ASCII timeline: a sparkline
// per metric plus its first/last/min/max values.
func RenderTimeline(label string, r *metrics.Registry) string {
	if r == nil {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "TIMELINE — %s  (interval %.1fs, %d samples)\n",
		label, r.Interval().Seconds(), r.Ticks())
	tab := &report.Table{Headers: []string{"metric", "timeline", "first", "last", "min", "max"}}
	for _, s := range r.All() {
		if s.Len() == 0 {
			continue
		}
		vs := s.Values()
		last, _ := s.Last()
		tab.AddRow(s.Name(), report.Spark(vs, sparkWidth),
			fmt.Sprintf("%g", s.At(0).V), fmt.Sprintf("%g", last.V),
			fmt.Sprintf("%g", s.Min()), fmt.Sprintf("%g", s.Max()))
	}
	b.WriteString(tab.String())
	return b.String()
}

// RenderTimelines renders every collected run in sequence order.
func (t *Telemetry) RenderTimelines() string {
	var b strings.Builder
	for _, e := range t.Entries() {
		b.WriteString(RenderTimeline(e.Label, e.Registry))
		b.WriteString("\n")
	}
	return b.String()
}

// CSV renders every collected run's wide CSV, each preceded by a comment
// line naming the run.
func (t *Telemetry) CSV() string {
	var b strings.Builder
	for _, e := range t.Entries() {
		fmt.Fprintf(&b, "# %s\n", e.Label)
		b.WriteString(e.Registry.CSV())
	}
	return b.String()
}
