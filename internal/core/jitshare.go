package core

import (
	"fmt"

	"repro/internal/jvm"
	"repro/internal/workload"
)

// JITShareRow is one cell of the jitshare sweep: one sharing mode on one
// workload scenario, measured after warm-up and again after steady state so
// the re-JIT decay is visible.
type JITShareRow struct {
	// Workload labels the scenario; Mode is "off" (the paper's measured
	// behaviour: all JIT output private) or "pic" (ShareJIT
	// position-independent bodies in the shared archive).
	Workload string
	Mode     string
	Guests   int
	// JVMs is the number of Java processes per guest.
	JVMs int
	// CodeMappedMB / CodeSharedMB are the end-state CatJITCode totals over
	// all JVMs (paper-scale MB); RatioWarmPct and RatioEndPct are the
	// code-area sharing ratios (shared/mapped) right after warm-up and at
	// the end of steady state — the gap is the re-JIT decay.
	CodeMappedMB float64
	CodeSharedMB float64
	RatioWarmPct float64
	RatioEndPct  float64
	// StubMappedMB / StubSharedMB are the CatJITData profile-stub totals
	// (stubs are per-process and churning, so StubSharedMB stays ≈0 — the
	// point of the split).
	StubMappedMB float64
	StubSharedMB float64
	// ArchivePages / MergedWarm / MergedEnd / COWBroken are the census
	// counts over every process's archive mapping: resident merge
	// candidates, those KSM actually merged at each measurement point, and
	// the canonical pages permanently invalidated by re-JIT writes.
	ArchivePages int
	MergedWarm   int
	MergedEnd    int
	COWBroken    int
	// ArchivedMethods / OverflowMethods / ReJITs sum the JIT counters over
	// all processes.
	ArchivedMethods int
	OverflowMethods int
	ReJITs          int
	// KSMSavingMB is total scanner saving at the end (paper-scale MB).
	KSMSavingMB float64
}

// JITShareFigure is the jitshare experiment result.
type JITShareFigure struct {
	ID    string
	Title string
	Rows  []JITShareRow
}

// JITShareSweep measures the code-area sharing ratio with and without the
// ShareJIT archive on the DayTrader and Tuscany multi-JVM scenarios — the
// experiment the paper couldn't run, since the measured J9 had no way to
// make JIT output position-independent. Class preloading is on in every
// cell so the only axis is the code area. The Options.JITShare flag is
// ignored here: the sweep supplies its own mode axis.
func JITShareSweep(o Options) JITShareFigure {
	fig := JITShareFigure{
		ID:    "jitshare",
		Title: "Code-area TPS sharing: private JIT output vs ShareJIT PIC archive",
	}
	scenarios := []struct {
		name   string
		spec   workload.Spec
		guests int
		jvms   int
	}{
		// The paper's main scenario, and the Tuscany multi-JVM case where
		// several processes per guest multiply the identical code mappings.
		{"daytrader", workload.DayTrader(), 2, 1},
		{"tuscany", workload.Tuscany(), 3, 2},
	}
	modes := []struct {
		label string
		share bool
	}{
		{"off", false},
		{"pic", true},
	}
	var jobs []Job[JITShareRow]
	for _, sc := range scenarios {
		for _, mode := range modes {
			sc, mode := sc, mode
			seq := len(jobs)
			label := fmt.Sprintf("jitshare %s x%d mode=%s", sc.name, sc.guests, mode.label)
			jobs = append(jobs, Job[JITShareRow]{
				Label: label,
				Run: func() JITShareRow {
					cfg := ClusterConfig{
						Scale:         o.scale(),
						Specs:         []workload.Spec{sc.spec},
						NumVMs:        sc.guests,
						JVMsPerGuest:  sc.jvms,
						SharedClasses: true,
						JITShare:      mode.share,
						BaseSeed:      o.Seed,
						EnableMetrics: o.Telemetry != nil,
						KSMShards:     o.KSMShards,
					}
					if o.Quick {
						cfg.SteadyRounds = 15
					}
					c := BuildCluster(cfg)
					o.Telemetry.CollectAt(seq, label, c.Metrics)
					c.RunWarmup()
					warmRatio, _, _ := codeSharing(c)
					warmCensus := c.JITShareCensus()
					c.RunSteady()
					endRatio, codeMapped, codeShared := codeSharing(c)
					endCensus := c.JITShareCensus()

					row := JITShareRow{
						Workload:     sc.name,
						Mode:         mode.label,
						Guests:       sc.guests,
						JVMs:         sc.jvms,
						CodeMappedMB: mb(codeMapped, c.Cfg.Scale),
						CodeSharedMB: mb(codeShared, c.Cfg.Scale),
						RatioWarmPct: warmRatio * 100,
						RatioEndPct:  endRatio * 100,
						ArchivePages: endCensus.Shareable,
						MergedWarm:   warmCensus.Merged,
						MergedEnd:    endCensus.Merged,
						KSMSavingMB:  mb(c.Scanner.Stats().SavedBytes, c.Cfg.Scale),
					}
					a := c.Analyze()
					for _, jb := range a.JavaBreakdowns() {
						cu := jb.ByCat[jvm.CatJITData]
						row.StubMappedMB += mb(cu.MappedBytes, c.Cfg.Scale)
						row.StubSharedMB += mb(cu.SharedBytes, c.Cfg.Scale)
					}
					for _, w := range c.Workers {
						st := w.JVM.JIT().Stats()
						row.ArchivedMethods += st.ArchivedMethods
						row.OverflowMethods += st.OverflowMethods
						row.ReJITs += st.ReJITs
						row.COWBroken += st.CanonicalPagesInvalidated
					}
					return row
				},
			})
		}
	}
	fig.Rows = RunAll(o.runner(), jobs)
	return fig
}

// codeSharing reports the cluster-wide code-area sharing ratio
// (CatJITCode shared/mapped over every JVM) plus the raw byte totals, via
// the standard read-only analysis walk.
func codeSharing(c *Cluster) (ratio float64, mapped, shared int64) {
	a := c.Analyze()
	for _, jb := range a.JavaBreakdowns() {
		cu := jb.ByCat[jvm.CatJITCode]
		mapped += cu.MappedBytes
		shared += cu.SharedBytes
	}
	if mapped > 0 {
		ratio = float64(shared) / float64(mapped)
	}
	return ratio, mapped, shared
}
