package core

import (
	"testing"

	"repro/internal/workload"
)

// TestDirtyLogSweepQualitativeAndDeterministic runs the dirtylog sweep once
// sequentially and once on four workers: the figure must be byte-identical
// at any -jobs width, and the rows must show the tentpole claim — the linear
// scanner's converged cost tracks registered pages while incremental mode's
// tracks churn, without giving up the merges.
func TestDirtyLogSweepQualitativeAndDeterministic(t *testing.T) {
	seq := DirtyLogSweep(Options{Scale: testScale, Quick: true, Jobs: 1})
	par := DirtyLogSweep(Options{Scale: testScale, Quick: true, Jobs: 4})
	if RenderDirtyLogFigure(seq) != RenderDirtyLogFigure(par) {
		t.Fatal("dirtylog differs between -jobs 1 and -jobs 4")
	}
	if DirtyLogFigureTable(seq).CSV() != DirtyLogFigureTable(par).CSV() {
		t.Fatal("dirtylog CSV differs between -jobs 1 and -jobs 4")
	}

	row := func(guests, churn int, mode string) DirtyLogRow {
		for _, r := range seq.Rows {
			if r.Guests == guests && r.ChurnPct == churn && r.Mode == mode {
				return r
			}
		}
		t.Fatalf("no row for %d guests, churn %d%%, mode %s", guests, churn, mode)
		return DirtyLogRow{}
	}
	for _, guests := range []int{2, 4} {
		for _, churn := range []int{0, 2, 8} {
			full := row(guests, churn, "full")
			inc := row(guests, churn, "incremental")
			// Full mode never builds rings, so the ring mechanics are silent.
			if full.DirtyDrained != 0 || full.RingOverflows != 0 || full.IncrementalRounds != 0 {
				t.Fatalf("full row shows ring activity: %+v", full)
			}
			if inc.IncrementalRounds == 0 {
				t.Fatalf("incremental row never entered incremental mode: %+v", inc)
			}
			if inc.ScanPerInterval >= full.ScanPerInterval {
				t.Fatalf("incremental scanned %.0f pages/interval, full %.0f (%d guests, %d%% churn)",
					inc.ScanPerInterval, full.ScanPerInterval, guests, churn)
			}
			// Incremental mode must keep the sharing the linear scanner found.
			if inc.SharingMB < 0.9*full.SharingMB {
				t.Fatalf("incremental sharing %.1f MB << full %.1f MB (%d guests, %d%% churn)",
					inc.SharingMB, full.SharingMB, guests, churn)
			}
		}
		// The headline ratio: on an idle cluster the incremental scanner is
		// at least 5x cheaper than the linear scanner's treadmill.
		idleFull := row(guests, 0, "full")
		idleInc := row(guests, 0, "incremental")
		if idleInc.ScanPerInterval*5 > idleFull.ScanPerInterval {
			t.Fatalf("idle rescan reduction < 5x: full %.0f vs incremental %.0f pages/interval",
				idleFull.ScanPerInterval, idleInc.ScanPerInterval)
		}
		// Churn feeds the incremental cost: more churn, more rescans.
		if row(guests, 8, "incremental").ScanPerInterval <= row(guests, 0, "incremental").ScanPerInterval {
			t.Fatal("incremental cost did not grow with churn")
		}
	}
}

// TestIncrementalScanOffLeavesClusterUntouched is the compatibility contract:
// without the flag no rings are built and the scanner stays linear.
func TestIncrementalScanOffLeavesClusterUntouched(t *testing.T) {
	c := BuildCluster(ClusterConfig{
		Scale:        testScale,
		Specs:        []workload.Spec{workload.DayTrader()},
		NumVMs:       2,
		SteadyRounds: 5,
	})
	c.Run()
	if c.Host.DirtyLogEnabled() {
		t.Fatal("dirty logging enabled without the flag")
	}
	st := c.Scanner.Stats()
	if st.IncrementalRounds != 0 || st.IncrementalScanned != 0 || st.DirtyDrained != 0 {
		t.Fatalf("incremental machinery ran with the flag off: %+v", st)
	}
}

// TestIncrementalScanOptionAppliesToPaperExperiments checks the -incremental
// flag path: Fig2 with the option on must run deterministically and with the
// scanner actually in incremental mode by the end of the steady phase.
func TestIncrementalScanOptionAppliesToPaperExperiments(t *testing.T) {
	o := Options{Scale: testScale, Quick: true, IncrementalScan: true}
	memA, _ := Fig2(o)
	memB, _ := Fig2(o)
	if RenderMemFigure(memA) != RenderMemFigure(memB) {
		t.Fatal("Fig2 under incremental scan is not deterministic")
	}
	c := dayTraderCluster(o, false)
	if !c.Host.DirtyLogEnabled() {
		t.Fatal("IncrementalScan option did not reach the figure's host config")
	}
	c.Run()
	if c.Scanner.Stats().IncrementalRounds == 0 {
		t.Fatal("figure scanner never entered incremental mode")
	}
}
