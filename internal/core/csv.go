package core

import (
	"fmt"

	"repro/internal/report"
)

// Tabular forms of every figure, for CSV export (cmd/tpsim -csv) and
// machine-readable post-processing.

// MemFigureTable flattens a Fig. 2 / Fig. 4 result.
func MemFigureTable(f MemFigure) *report.Table {
	t := &report.Table{
		Title:   f.ID,
		Headers: []string{"vm", "java_mb", "other_mb", "kernel_mb", "vm_overhead_mb", "total_mb", "tps_saving_mb"},
	}
	for _, v := range f.VMs {
		t.AddRow(v.Name, v.JavaMB, v.OtherMB, v.KernelMB, v.OverheadMB, v.Total(), v.SavingsMB)
	}
	t.AddRow("TOTAL", "", "", "", "", f.TotalMB, f.TotalSavingsMB)
	return t
}

// JavaFigureTable flattens a Fig. 3 / Fig. 5 result.
func JavaFigureTable(f JavaFigure) *report.Table {
	t := &report.Table{
		Title:   f.ID,
		Headers: []string{"jvm", "pid", "category", "mapped_mb", "shared_mb"},
	}
	for _, bar := range f.Bars {
		for _, c := range bar.Cats {
			t.AddRow(bar.Label, bar.PID, c.Name, c.MappedMB, c.SharedMB)
		}
	}
	return t
}

// SweepFigureTable flattens a Fig. 7 / Fig. 8 result.
func SweepFigureTable(f SweepFigure) *report.Table {
	t := &report.Table{
		Title: f.ID,
		Headers: []string{"guest_vms",
			"default_min", "default_mean", "default_max", "default_sla_violated",
			"ours_min", "ours_mean", "ours_max", "ours_sla_violated"},
	}
	for _, p := range f.Points {
		t.AddRow(p.NumVMs,
			p.Default.Min, p.Default.Mean, p.Default.Max, fmt.Sprint(p.DefaultSLAViolated),
			p.Preloaded.Min, p.Preloaded.Mean, p.Preloaded.Max, fmt.Sprint(p.PreloadedSLAViolated))
	}
	return t
}

// THPFigureTable flattens the thp-tradeoff result.
func THPFigureTable(f THPFigure) *report.Table {
	t := &report.Table{
		Title: f.ID,
		Headers: []string{"guests", "policy", "huge_mb", "huge_coverage_pct", "tlb_reach_mb",
			"ksm_saving_mb", "sharing_pages", "collapses", "splits",
			"partial_splits", "reabsorbs", "ksm_skips"},
	}
	for _, r := range f.Rows {
		t.AddRow(r.Guests, r.Policy, r.HugeMB, r.HugeCoveragePct, r.TLBReachMB,
			r.SharingMB, r.SharingPages, fmt.Sprint(r.Collapses), fmt.Sprint(r.Splits),
			fmt.Sprint(r.PartialSplits), fmt.Sprint(r.Reabsorbs), fmt.Sprint(r.KSMSkips))
	}
	return t
}

// ChaosFigureTable flattens the chaos sweep result.
func ChaosFigureTable(f ChaosFigure) *report.Table {
	t := &report.Table{
		Title: f.ID,
		Headers: []string{"guests", "profile", "kills", "kills_skipped", "restarts", "spikes",
			"oom_kills", "stalls", "balloon_pages", "claimed_pages", "leak_checks",
			"leak_failures", "final_alive", "ksm_saving_mb", "major_faults", "swap_outs"},
	}
	for _, r := range f.Rows {
		t.AddRow(r.Guests, r.Profile, fmt.Sprint(r.Kills), fmt.Sprint(r.KillsSkipped),
			fmt.Sprint(r.Restarts), fmt.Sprint(r.Spikes), fmt.Sprint(r.OOMKills),
			fmt.Sprint(r.Stalls), fmt.Sprint(r.BalloonPages), fmt.Sprint(r.ClaimedPages),
			r.LeakChecks, r.LeakFailures, r.FinalAlive, r.SharingMB,
			fmt.Sprint(r.MajorFaults), fmt.Sprint(r.SwapOuts))
	}
	return t
}

// DatacenterFigureTable flattens the datacenter sweep result.
func DatacenterFigureTable(f DatacenterFigure) *report.Table {
	t := &report.Table{
		Title: f.ID,
		Headers: []string{"hosts", "guests", "placement", "migration", "migrations",
			"aborted", "precopy_rounds", "wire_mb", "downtime_max_ms", "host_kills",
			"host_drains", "guest_kills", "guest_restarts", "leak_checks",
			"leak_failures", "served", "blocked", "cluster_ksm_mb"},
	}
	for _, r := range f.Rows {
		t.AddRow(r.Hosts, r.Guests, r.Placement, r.Migration, r.Migrations,
			r.Aborted, r.PrecopyRounds, r.WireMB, r.DowntimeMaxMs,
			fmt.Sprint(r.HostKills), fmt.Sprint(r.HostDrains),
			fmt.Sprint(r.GuestKills), r.GuestRestarts, r.LeakChecks,
			r.LeakFailures, fmt.Sprint(r.Served), fmt.Sprint(r.Blocked),
			r.ClusterSavingMB)
	}
	return t
}

// DirtyLogFigureTable flattens the dirtylog sweep result.
func DirtyLogFigureTable(f DirtyLogFigure) *report.Table {
	t := &report.Table{
		Title: f.ID,
		Headers: []string{"guests", "churn_pct", "mode", "scan_pages_per_interval",
			"registered_pages", "ksm_saving_mb", "dirty_drained", "ring_overflows",
			"incremental_rounds", "full_scans"},
	}
	for _, r := range f.Rows {
		t.AddRow(r.Guests, r.ChurnPct, r.Mode, r.ScanPerInterval, r.RegisteredPages,
			r.SharingMB, fmt.Sprint(r.DirtyDrained), fmt.Sprint(r.RingOverflows),
			fmt.Sprint(r.IncrementalRounds), fmt.Sprint(r.FullScans))
	}
	return t
}

// KSMShardFigureTable flattens the ksmshard sweep result.
func KSMShardFigureTable(f KSMShardFigure) *report.Table {
	t := &report.Table{
		Title: f.ID,
		Headers: []string{"workload", "guests", "shards", "ksm_saving_mb",
			"merges", "pages_scanned", "full_scans", "scan_cpu_pct",
			"shard_pages_scanned"},
	}
	for _, r := range f.Rows {
		t.AddRow(r.Workload, r.Guests, r.Shards, r.SharingMB,
			fmt.Sprint(r.Merges), fmt.Sprint(r.PagesScanned),
			fmt.Sprint(r.FullScans), r.ScanCPUPct,
			shardSplit(r.ShardPagesScanned))
	}
	return t
}

// JITShareFigureTable flattens the jitshare sweep result.
func JITShareFigureTable(f JITShareFigure) *report.Table {
	t := &report.Table{
		Title: f.ID,
		Headers: []string{"workload", "mode", "guests", "jvms_per_guest",
			"code_mapped_mb", "code_shared_mb", "ratio_warm_pct", "ratio_end_pct",
			"stub_mapped_mb", "stub_shared_mb", "archive_pages", "merged_warm",
			"merged_end", "cow_broken_pages", "archived_methods", "overflow_methods",
			"rejits", "ksm_saving_mb"},
	}
	for _, r := range f.Rows {
		t.AddRow(r.Workload, r.Mode, r.Guests, r.JVMs,
			r.CodeMappedMB, r.CodeSharedMB, r.RatioWarmPct, r.RatioEndPct,
			r.StubMappedMB, r.StubSharedMB, r.ArchivePages, r.MergedWarm,
			r.MergedEnd, r.COWBroken, r.ArchivedMethods, r.OverflowMethods,
			r.ReJITs, r.KSMSavingMB)
	}
	return t
}

// PowerFigureTable flattens the Fig. 6 result.
func PowerFigureTable(f PowerFigure) *report.Table {
	t := &report.Table{
		Title:   f.ID,
		Headers: []string{"configuration", "before_mb", "after_mb", "saving_mb"},
	}
	t.AddRow("preloaded", f.Preload.BeforeMB, f.Preload.AfterMB, f.Preload.SavingMB())
	t.AddRow("not_preloaded", f.NoPreload.BeforeMB, f.NoPreload.AfterMB, f.NoPreload.SavingMB())
	t.AddRow("delta", "", "", f.DeltaMB())
	return t
}
