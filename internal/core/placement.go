package core

import (
	"fmt"
	"sort"

	"repro/internal/mem"
	"repro/internal/placement"
	"repro/internal/workload"
)

// Memory Buddies end-to-end evaluation. The pure placement algorithms
// (fingerprints, round-robin, similarity packing) live in
// internal/placement; this file owns the parts that need a simulated
// cluster — fingerprinting a live workload and measuring a placement's
// real TPS outcome — so the placement package stays free of core and the
// datacenter scheduler can import it without a cycle.

// FingerprintSpec runs one VM of the given workload solo (no KSM, ample
// host memory) and fingerprints its guest memory.
func FingerprintSpec(spec workload.Spec, shared bool, scale int, seed mem.Seed) placement.Fingerprint {
	c := BuildCluster(ClusterConfig{
		Scale:         scale,
		Specs:         []workload.Spec{spec},
		NumVMs:        1,
		SharedClasses: shared,
		DisableKSM:    true,
		BaseSeed:      seed,
		SteadyRounds:  10,
	})
	c.Run()
	fp := make(placement.Fingerprint)
	vm := c.Host.VMs()[0]
	pm := c.Host.Phys()
	for _, reg := range vm.MergeableRegions() {
		for vpn := reg.Start; vpn < reg.End; vpn++ {
			if f, ok := vm.ResolveResident(vpn); ok {
				fp[pm.Checksum(f)] = struct{}{}
			}
		}
	}
	return fp
}

// PlacementHostResult is one host's measured memory outcome.
type PlacementHostResult struct {
	HostIndex  int
	Workloads  []string
	UsedMB     float64
	SavedMB    float64
	GuestCount int
}

// PlacementEvalResult is the end-to-end outcome of a placement.
type PlacementEvalResult struct {
	Hosts        []PlacementHostResult
	TotalUsedMB  float64
	TotalSavedMB float64
}

// EvaluatePlacement builds one simulated host per placement bin, runs it
// to steady state with KSM, and measures real usage and savings.
func EvaluatePlacement(reqs []placement.Request, pl placement.Placement, shared bool, scale int, seed mem.Seed) PlacementEvalResult {
	var res PlacementEvalResult
	for h, bin := range pl {
		if len(bin) == 0 {
			continue
		}
		specs := make([]workload.Spec, 0, len(bin))
		names := make([]string, 0, len(bin))
		for _, i := range bin {
			specs = append(specs, reqs[i].Spec)
			names = append(names, reqs[i].Spec.Name)
		}
		sort.Strings(names)
		c := BuildCluster(ClusterConfig{
			Scale:         scale,
			Specs:         specs,
			NumVMs:        len(specs),
			SharedClasses: shared,
			BaseSeed:      mem.Combine(seed, mem.Seed(h+1)),
			SteadyRounds:  15,
		})
		c.Run()
		a := c.Analyze()
		hr := PlacementHostResult{HostIndex: h, Workloads: names, GuestCount: len(specs)}
		for _, b := range a.VMBreakdowns() {
			hr.UsedMB += float64(b.Total()*int64(scale)) / (1 << 20)
			hr.SavedMB += float64(b.SavingsBytes*int64(scale)) / (1 << 20)
		}
		res.Hosts = append(res.Hosts, hr)
		res.TotalUsedMB += hr.UsedMB
		res.TotalSavedMB += hr.SavedMB
	}
	return res
}

// String renders the result compactly.
func (r PlacementEvalResult) String() string {
	s := ""
	for _, h := range r.Hosts {
		s += fmt.Sprintf("host %d: %v — used %.0f MB, TPS saved %.0f MB\n", h.HostIndex, h.Workloads, h.UsedMB, h.SavedMB)
	}
	s += fmt.Sprintf("TOTAL used %.0f MB, saved %.0f MB\n", r.TotalUsedMB, r.TotalSavedMB)
	return s
}
