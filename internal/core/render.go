package core

import (
	"fmt"
	"strings"

	"repro/internal/report"
)

// RenderMemFigure prints a Fig. 2 / Fig. 4 result: one stacked bar per VM
// plus the TPS savings column, in paper-scale MB.
func RenderMemFigure(f MemFigure) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n\n", strings.ToUpper(f.ID), f.Title)
	var max float64
	for _, v := range f.VMs {
		if t := v.Total(); t > max {
			max = t
		}
	}
	for _, v := range f.VMs {
		b.WriteString(report.StackedBar(v.Name, []report.Segment{
			{Label: "java", Value: v.JavaMB},
			{Label: "other", Value: v.OtherMB},
			{Label: "kernel", Value: v.KernelMB},
			{Label: "vm", Value: v.OverheadMB},
		}, max, 48))
		b.WriteString("\n")
		fmt.Fprintf(&b, "%-10s  saving by TPS in guest: %.0f MB\n", "", v.SavingsMB)
	}
	fmt.Fprintf(&b, "\nTotal physical memory used by guests: %.0f MB (TPS savings %.0f MB)\n",
		f.TotalMB, f.TotalSavingsMB)
	return b.String()
}

// RenderJavaFigure prints a Fig. 3 / Fig. 5 result: one stacked bar per JVM
// with the Table IV categories and the TPS-shared portion of each.
func RenderJavaFigure(f JavaFigure) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n\n", strings.ToUpper(f.ID), f.Title)
	t := &report.Table{Headers: []string{"JVM", "Category", "Mapped MB", "Shared w/ TPS MB", "Shared %"}}
	for _, bar := range f.Bars {
		first := true
		for _, c := range bar.Cats {
			label := ""
			if first {
				label = fmt.Sprintf("%s (pid %d)", bar.Label, bar.PID)
				first = false
			}
			pct := 0.0
			if c.MappedMB > 0 {
				pct = 100 * c.SharedMB / c.MappedMB
			}
			t.AddRow(label, c.Name, fmt.Sprintf("%.1f", c.MappedMB), fmt.Sprintf("%.1f", c.SharedMB), fmt.Sprintf("%.1f", pct))
		}
		t.AddRow("", "TOTAL", fmt.Sprintf("%.1f", bar.TotalMapped()), fmt.Sprintf("%.1f", bar.TotalShared()), "")
	}
	b.WriteString(t.String())
	return b.String()
}

// RenderSweepFigure prints a Fig. 7 / Fig. 8 result with min/mean/max bars.
func RenderSweepFigure(f SweepFigure) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n\n", strings.ToUpper(f.ID), f.Title)
	t := &report.Table{Headers: []string{
		"Guest VMs",
		"Default (" + f.Unit + ") min/mean/max", "",
		"Our approach (" + f.Unit + ") min/mean/max", "",
		"SLA",
	}}
	var max float64
	for _, p := range f.Points {
		if p.Default.Max > max {
			max = p.Default.Max
		}
		if p.Preloaded.Max > max {
			max = p.Preloaded.Max
		}
	}
	for _, p := range f.Points {
		sla := ""
		if p.DefaultSLAViolated {
			sla += "default:VIOLATED "
		}
		if p.PreloadedSLAViolated {
			sla += "ours:VIOLATED"
		}
		t.AddRow(
			fmt.Sprintf("%d", p.NumVMs),
			fmt.Sprintf("%.1f/%.1f/%.1f", p.Default.Min, p.Default.Mean, p.Default.Max),
			report.HBar(p.Default.Mean, max, 20),
			fmt.Sprintf("%.1f/%.1f/%.1f", p.Preloaded.Min, p.Preloaded.Mean, p.Preloaded.Max),
			report.HBar(p.Preloaded.Mean, max, 20),
			sla,
		)
	}
	b.WriteString(t.String())
	return b.String()
}

// RenderTHPFigure prints the thp-tradeoff result: one row per policy ×
// guest-count cell with both axes of the THP-vs-KSM tension.
func RenderTHPFigure(f THPFigure) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n\n", strings.ToUpper(f.ID), f.Title)
	t := &report.Table{Headers: []string{
		"Guests", "THP policy", "Huge MB", "Huge %", "Est. TLB reach MB",
		"KSM saving MB", "Sharing pages", "Collapses", "Splits", "Partial",
		"Reabsorbs", "KSM skips",
	}}
	for _, r := range f.Rows {
		t.AddRow(
			fmt.Sprintf("%d", r.Guests),
			r.Policy,
			fmt.Sprintf("%.1f", r.HugeMB),
			fmt.Sprintf("%.1f", r.HugeCoveragePct),
			fmt.Sprintf("%.1f", r.TLBReachMB),
			fmt.Sprintf("%.1f", r.SharingMB),
			fmt.Sprintf("%d", r.SharingPages),
			fmt.Sprintf("%d", r.Collapses),
			fmt.Sprintf("%d", r.Splits),
			fmt.Sprintf("%d", r.PartialSplits),
			fmt.Sprintf("%d", r.Reabsorbs),
			fmt.Sprintf("%d", r.KSMSkips),
		)
	}
	b.WriteString(t.String())
	b.WriteString("\nTHP raises TLB reach by hiding 4 KB duplicates from KSM; ksm-split buys the sharing back; fhpm carves only the duplicate subpages and keeps the rest huge.\n")
	return b.String()
}

// RenderChaosFigure prints the chaos sweep: one row per fault profile ×
// guest count, with the fault history, the leak-invariant record, and the
// sharing that survived the churn.
func RenderChaosFigure(f ChaosFigure) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n\n", strings.ToUpper(f.ID), f.Title)
	t := &report.Table{Headers: []string{
		"Guests", "Profile", "Kills", "Skipped", "Restarts", "Spikes", "OOM kills",
		"Stalls", "Balloon pg", "Claimed pg", "Leak checks", "Leak fails",
		"Alive", "KSM saving MB", "Major faults", "Swap-outs",
	}}
	for _, r := range f.Rows {
		t.AddRow(
			fmt.Sprintf("%d", r.Guests),
			r.Profile,
			fmt.Sprintf("%d", r.Kills),
			fmt.Sprintf("%d", r.KillsSkipped),
			fmt.Sprintf("%d", r.Restarts),
			fmt.Sprintf("%d", r.Spikes),
			fmt.Sprintf("%d", r.OOMKills),
			fmt.Sprintf("%d", r.Stalls),
			fmt.Sprintf("%d", r.BalloonPages),
			fmt.Sprintf("%d", r.ClaimedPages),
			fmt.Sprintf("%d", r.LeakChecks),
			fmt.Sprintf("%d", r.LeakFailures),
			fmt.Sprintf("%d", r.FinalAlive),
			fmt.Sprintf("%.1f", r.SharingMB),
			fmt.Sprintf("%d", r.MajorFaults),
			fmt.Sprintf("%d", r.SwapOuts),
		)
	}
	b.WriteString(t.String())
	b.WriteString("\nEvery kill/restart runs the leak invariant; a non-zero 'Leak fails' column is a bug.\n")
	return b.String()
}

// RenderDatacenterFigure prints the datacenter sweep: one row per placement
// policy × migration protocol, with the migration ledger, the wire bill, and
// the cluster-wide sharing that survived the faults.
func RenderDatacenterFigure(f DatacenterFigure) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n\n", strings.ToUpper(f.ID), f.Title)
	t := &report.Table{Headers: []string{
		"Hosts", "Guests", "Placement", "Migration", "Moves", "Aborted", "Rounds",
		"Wire MB", "Downtime ms", "Host kills", "Drains", "Kills", "Restarts",
		"Leak checks", "Leak fails", "Served", "Blocked", "Cluster KSM MB",
	}}
	for _, r := range f.Rows {
		t.AddRow(
			fmt.Sprintf("%d", r.Hosts),
			fmt.Sprintf("%d", r.Guests),
			r.Placement,
			r.Migration,
			fmt.Sprintf("%d", r.Migrations),
			fmt.Sprintf("%d", r.Aborted),
			fmt.Sprintf("%d", r.PrecopyRounds),
			fmt.Sprintf("%.1f", r.WireMB),
			fmt.Sprintf("%.2f", r.DowntimeMaxMs),
			fmt.Sprintf("%d", r.HostKills),
			fmt.Sprintf("%d", r.HostDrains),
			fmt.Sprintf("%d", r.GuestKills),
			fmt.Sprintf("%d", r.GuestRestarts),
			fmt.Sprintf("%d", r.LeakChecks),
			fmt.Sprintf("%d", r.LeakFailures),
			fmt.Sprintf("%d", r.Served),
			fmt.Sprintf("%d", r.Blocked),
			fmt.Sprintf("%.1f", r.ClusterSavingMB),
		)
	}
	b.WriteString(t.String())
	b.WriteString("\nContent-addressed rows bill only never-seen literal bytes; descriptors ride at 16 B/page.\n")
	return b.String()
}

// RenderDirtyLogFigure prints the dirtylog sweep: one row per mode × guest
// count × churn rate with the converged per-interval rescan cost.
func RenderDirtyLogFigure(f DirtyLogFigure) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n\n", strings.ToUpper(f.ID), f.Title)
	t := &report.Table{Headers: []string{
		"Guests", "Churn %", "Mode", "Scan pages/interval", "Registered pages",
		"KSM saving MB", "Dirty drained", "Ring overflows", "Inc rounds", "Full scans",
	}}
	for _, r := range f.Rows {
		t.AddRow(
			fmt.Sprintf("%d", r.Guests),
			fmt.Sprintf("%d", r.ChurnPct),
			r.Mode,
			fmt.Sprintf("%.0f", r.ScanPerInterval),
			fmt.Sprintf("%d", r.RegisteredPages),
			fmt.Sprintf("%.1f", r.SharingMB),
			fmt.Sprintf("%d", r.DirtyDrained),
			fmt.Sprintf("%d", r.RingOverflows),
			fmt.Sprintf("%d", r.IncrementalRounds),
			fmt.Sprintf("%d", r.FullScans),
		)
	}
	b.WriteString(t.String())
	b.WriteString("\nThe linear scanner's converged cost tracks registered pages; incremental mode's tracks churn.\n")
	return b.String()
}

// RenderKSMShardFigure prints the ksmshard sweep: one row per workload ×
// shard count, outcomes identical down the shard axis with the per-shard
// work split alongside.
func RenderKSMShardFigure(f KSMShardFigure) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n\n", strings.ToUpper(f.ID), f.Title)
	t := &report.Table{Headers: []string{
		"Workload", "Guests", "Shards", "KSM saving MB", "Merges",
		"Pages scanned", "Full scans", "Scan CPU %", "Per-shard scanned",
	}}
	for _, r := range f.Rows {
		t.AddRow(
			r.Workload,
			fmt.Sprintf("%d", r.Guests),
			fmt.Sprintf("%d", r.Shards),
			fmt.Sprintf("%.1f", r.SharingMB),
			fmt.Sprintf("%d", r.Merges),
			fmt.Sprintf("%d", r.PagesScanned),
			fmt.Sprintf("%d", r.FullScans),
			fmt.Sprintf("%.1f", r.ScanCPUPct),
			shardSplit(r.ShardPagesScanned),
		)
	}
	b.WriteString(t.String())
	b.WriteString("\nOutcome columns are identical at every shard count; sharding buys scan-pass wall time (BENCH_ksmshard.json), never different merges.\n")
	return b.String()
}

// shardSplit formats a per-shard counter vector as "a/b/c".
func shardSplit(counts []uint64) string {
	var b strings.Builder
	for i, c := range counts {
		if i > 0 {
			b.WriteByte('/')
		}
		fmt.Fprintf(&b, "%d", c)
	}
	return b.String()
}

// RenderJITShareFigure prints the jitshare sweep: one row per workload ×
// sharing mode with the code-area sharing ratio after warm-up and at the
// end of steady state.
func RenderJITShareFigure(f JITShareFigure) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n\n", strings.ToUpper(f.ID), f.Title)
	t := &report.Table{Headers: []string{
		"Workload", "Mode", "Guests", "JVMs/guest", "Code mapped MB", "Code shared MB",
		"Ratio warm %", "Ratio end %", "Stub MB", "Archive pages", "Merged warm",
		"Merged end", "COW-broken", "Archived", "Overflow", "Re-JITs", "KSM saving MB",
	}}
	for _, r := range f.Rows {
		t.AddRow(
			r.Workload,
			r.Mode,
			fmt.Sprintf("%d", r.Guests),
			fmt.Sprintf("%d", r.JVMs),
			fmt.Sprintf("%.1f", r.CodeMappedMB),
			fmt.Sprintf("%.1f", r.CodeSharedMB),
			fmt.Sprintf("%.1f", r.RatioWarmPct),
			fmt.Sprintf("%.1f", r.RatioEndPct),
			fmt.Sprintf("%.1f", r.StubMappedMB),
			fmt.Sprintf("%d", r.ArchivePages),
			fmt.Sprintf("%d", r.MergedWarm),
			fmt.Sprintf("%d", r.MergedEnd),
			fmt.Sprintf("%d", r.COWBroken),
			fmt.Sprintf("%d", r.ArchivedMethods),
			fmt.Sprintf("%d", r.OverflowMethods),
			fmt.Sprintf("%d", r.ReJITs),
			fmt.Sprintf("%.1f", r.KSMSavingMB),
		)
	}
	b.WriteString(t.String())
	b.WriteString("\nPIC bodies merge across processes; tier-2 re-JITs rewrite canonical slots and the ratio decays from warm to end.\n")
	return b.String()
}

// RenderPowerFigure prints the Fig. 6 result.
func RenderPowerFigure(f PowerFigure) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n\n", strings.ToUpper(f.ID), f.Title)
	t := &report.Table{Headers: []string{"Configuration", "Just after starting WAS (MB)", "After page sharing (MB)", "Saving (MB)"}}
	t.AddRow("Classes preloaded", fmt.Sprintf("%.1f", f.Preload.BeforeMB), fmt.Sprintf("%.1f", f.Preload.AfterMB), fmt.Sprintf("%.1f", f.Preload.SavingMB()))
	t.AddRow("Classes not preloaded", fmt.Sprintf("%.1f", f.NoPreload.BeforeMB), fmt.Sprintf("%.1f", f.NoPreload.AfterMB), fmt.Sprintf("%.1f", f.NoPreload.SavingMB()))
	b.WriteString(t.String())
	fmt.Fprintf(&b, "\nIncreased sharing by preloading: %.1f MB (paper: 181.0 MB)\n", f.DeltaMB())
	return b.String()
}
