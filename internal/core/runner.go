package core

import (
	"runtime"
	"sync"
	"time"
)

// Runner executes independent experiment jobs across a bounded worker pool.
//
// Every experiment cluster owns its own simclock.Clock and mem.PhysMem, so
// whole-cluster runs (sweep points, error-bar repetitions, separate figures)
// are independent and can run concurrently. The runner fans them out over at
// most Jobs workers and hands results back in submission order, so any
// output rendered from the results is byte-identical to a sequential run.
// With Jobs == 1 the jobs execute inline on the calling goroutine — exactly
// today's sequential behaviour, with no goroutines involved.
type Runner struct {
	jobs int

	mu       sync.Mutex
	progress func(JobEvent)
}

// JobEvent reports the start or completion of one job to the progress
// callback. Events may be emitted from worker goroutines in any order; only
// the result collection is ordered.
type JobEvent struct {
	Index   int    // submission index of the job
	Total   int    // number of jobs in this RunAll batch
	Label   string // display label of the job
	Done    bool   // false on start, true on completion
	Elapsed time.Duration
}

// NewRunner creates a runner with the given worker-pool width; jobs <= 0
// selects runtime.GOMAXPROCS(0).
func NewRunner(jobs int) *Runner {
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	return &Runner{jobs: jobs}
}

// Jobs reports the worker-pool width.
func (r *Runner) Jobs() int { return r.jobs }

// OnProgress installs a callback receiving a JobEvent when each job starts
// and finishes. The callback is serialized by the runner and must not block
// for long.
func (r *Runner) OnProgress(fn func(JobEvent)) {
	r.mu.Lock()
	r.progress = fn
	r.mu.Unlock()
}

func (r *Runner) emit(ev JobEvent) {
	r.mu.Lock()
	fn := r.progress
	if fn != nil {
		fn(ev)
	}
	r.mu.Unlock()
}

// Job is one labelled unit of independent work.
type Job[T any] struct {
	Label string
	Run   func() T
}

// RunAll executes the jobs on the runner's pool and returns their results
// indexed by submission order. (A free function because Go methods cannot
// introduce type parameters.)
func RunAll[T any](r *Runner, jobs []Job[T]) []T {
	results := make([]T, len(jobs))
	run := func(i int) {
		start := time.Now()
		r.emit(JobEvent{Index: i, Total: len(jobs), Label: jobs[i].Label})
		results[i] = jobs[i].Run()
		r.emit(JobEvent{Index: i, Total: len(jobs), Label: jobs[i].Label,
			Done: true, Elapsed: time.Since(start)})
	}
	if r.jobs == 1 || len(jobs) == 1 {
		for i := range jobs {
			run(i)
		}
		return results
	}
	workers := r.jobs
	if workers > len(jobs) {
		workers = len(jobs)
	}
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				run(i)
			}
		}()
	}
	for i := range jobs {
		next <- i
	}
	close(next)
	wg.Wait()
	return results
}
