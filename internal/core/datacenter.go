package core

import (
	"fmt"

	"repro/internal/datacenter"
	"repro/internal/faults"
	"repro/internal/mem"
	"repro/internal/simclock"
	"repro/internal/workload"
)

// DatacenterRow is one cell of the datacenter sweep: one placement policy ×
// one migration wire protocol on the same faulted multi-host scenario.
type DatacenterRow struct {
	Hosts     int
	Guests    int
	Placement string
	Migration string

	// Migration ledger.
	Migrations    int
	Aborted       int
	PrecopyRounds int
	// WireMB is total bytes on the migration network in paper-scale MB —
	// the figure the content-addressed protocol exists to shrink.
	WireMB float64
	// DowntimeMaxMs is the worst stop-and-copy pause (virtual ms).
	DowntimeMaxMs float64

	// Fault history (host kills/drains force the scheduler's hand).
	HostKills     uint64
	HostDrains    uint64
	GuestKills    uint64
	GuestRestarts int

	// LeakChecks ran after every migration, abort, kill and restart;
	// LeakFailures must be zero.
	LeakChecks   int
	LeakFailures int

	// Traffic outcome: requests served vs lost to dead/paused guests.
	Served  int64
	Blocked int64
	// ClusterSavingMB is KSM saved memory summed over the surviving hosts,
	// in paper-scale MB.
	ClusterSavingMB float64
}

// DatacenterFigure is the datacenter experiment result.
type DatacenterFigure struct {
	ID    string
	Title string
	Rows  []DatacenterRow
}

// datacenterModes enumerates the sweep's wire-protocol axis.
var datacenterModes = []datacenter.MigrationMode{
	datacenter.MigrationOff,
	datacenter.MigrationNaive,
	datacenter.MigrationContent,
}

// datacenterPlacements enumerates the sweep's placement axis.
var datacenterPlacements = []datacenter.PlacementPolicy{
	datacenter.PlaceRoundRobin,
	datacenter.PlaceBySimilarity,
}

// Datacenter sweeps placement policy × migration mode over a multi-host
// cluster under a diurnal traffic model and a deterministic fault schedule
// (host drains the scheduler must evacuate, host kills it must recover
// from, guest kills it must restart). Every cell runs the same virtual
// span with a seed folded from the cell label, so rows are independent of
// execution order and the figure is byte-identical at every Jobs width.
func Datacenter(o Options) DatacenterFigure {
	hosts := o.DCHosts
	if hosts <= 0 {
		hosts = 3
	}
	fig := DatacenterFigure{
		ID: "datacenter",
		Title: fmt.Sprintf("Placement × migration protocol on %d hosts under host faults (seed %d)",
			hosts, o.ChaosSeed),
	}
	var jobs []Job[DatacenterRow]
	for _, p := range datacenterPlacements {
		for _, m := range datacenterModes {
			p, m := p, m
			seq := len(jobs)
			label := fmt.Sprintf("datacenter placement=%s migration=%s", p, m)
			jobs = append(jobs, Job[DatacenterRow]{
				Label: label,
				Run:   func() DatacenterRow { return datacenterCell(o, hosts, p, m, label, seq) },
			})
		}
	}
	fig.Rows = RunAll(o.runner(), jobs)
	return fig
}

// datacenterCell runs one datacenter under one placement × migration pair.
func datacenterCell(o Options, hosts int, p datacenter.PlacementPolicy, m datacenter.MigrationMode, label string, seq int) DatacenterRow {
	horizon := 30 * simclock.Second
	if o.Quick {
		horizon = 12 * simclock.Second
	}
	cfg := datacenter.Config{
		Scale: o.scale(),
		Hosts: hosts,
		// Two workload families: similarity placement packs same-spec guests
		// together, which is what makes both the cluster KSM saving and the
		// content-addressed wire cheap.
		Specs:         []workload.Spec{workload.DayTrader(), workload.Tuscany()},
		SharedClasses: true,
		SharedAOT:     true,
		Placement:     p,
		Migration:     m,
		THPPolicy:     o.THPPolicy,
		NetGbps:       o.NetGbps,
		BaseSeed:      o.Seed,
		Horizon:       horizon,
		Faults: faults.Config{
			// The seed folds in the placement but NOT the migration mode:
			// the three protocol rows of one placement face the identical
			// fault storm, so their wire bills and downtime are directly
			// comparable.
			Seed:    uint64(mem.Combine(mem.Seed(o.ChaosSeed), mem.HashString(p.String()))),
			Horizon: horizon,
			// Intervals scale with the horizon so quick and full runs both
			// see guest churn, host failures and forced evacuations.
			KillEvery:      horizon / 2,
			HostKillEvery:  horizon * 3 / 4,
			HostDrainEvery: horizon / 4,
			StallEvery:     horizon / 3,
		},
	}
	dc := datacenter.New(cfg)
	dc.Run()

	st := dc.Stats()
	fst := dc.InjectorStats()
	return DatacenterRow{
		Hosts:           hosts,
		Guests:          dc.Cfg.Guests,
		Placement:       p.String(),
		Migration:       m.String(),
		Migrations:      st.Migrations,
		Aborted:         st.MigrationsAborted,
		PrecopyRounds:   st.PrecopyRounds,
		WireMB:          mb(dc.Net.Stats().TotalBytes(), dc.Cfg.Scale),
		DowntimeMaxMs:   float64(st.DowntimeMax) / float64(simclock.Millisecond),
		HostKills:       fst.HostKills,
		HostDrains:      fst.HostDrains,
		GuestKills:      fst.Kills,
		GuestRestarts:   st.GuestRestarts,
		LeakChecks:      st.LeakChecks,
		LeakFailures:    st.LeakFailures,
		Served:          st.RequestsServed,
		Blocked:         st.RequestsBlocked,
		ClusterSavingMB: mb(dc.ClusterSavedBytes(), dc.Cfg.Scale),
	}
}
