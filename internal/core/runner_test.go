package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/mem"
	"repro/internal/workload"
)

func TestRunnerResultsInSubmissionOrder(t *testing.T) {
	for _, width := range []int{1, 2, 4, 16} {
		r := NewRunner(width)
		jobs := make([]Job[int], 40)
		for i := range jobs {
			i := i
			jobs[i] = Job[int]{Label: fmt.Sprint(i), Run: func() int {
				// Early jobs sleep longest so out-of-order completion is the
				// norm, not a scheduling accident.
				time.Sleep(time.Duration(len(jobs)-i) * 100 * time.Microsecond)
				return i * i
			}}
		}
		for i, v := range RunAll(r, jobs) {
			if v != i*i {
				t.Fatalf("width %d: result[%d] = %d, want %d", width, i, v, i*i)
			}
		}
	}
}

func TestRunnerBoundsConcurrency(t *testing.T) {
	const width = 3
	r := NewRunner(width)
	var inFlight, peak atomic.Int32
	jobs := make([]Job[struct{}], 24)
	for i := range jobs {
		jobs[i] = Job[struct{}]{Run: func() struct{} {
			n := inFlight.Add(1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			inFlight.Add(-1)
			return struct{}{}
		}}
	}
	RunAll(r, jobs)
	if p := peak.Load(); p > width {
		t.Fatalf("peak concurrency %d exceeds pool width %d", p, width)
	}
}

func TestRunnerProgressEvents(t *testing.T) {
	r := NewRunner(4)
	var mu sync.Mutex
	started, finished := map[int]bool{}, map[int]bool{}
	r.OnProgress(func(ev JobEvent) {
		mu.Lock()
		defer mu.Unlock()
		if ev.Total != 8 {
			t.Errorf("Total = %d, want 8", ev.Total)
		}
		if ev.Done {
			finished[ev.Index] = true
		} else {
			started[ev.Index] = true
		}
	})
	jobs := make([]Job[int], 8)
	for i := range jobs {
		jobs[i] = Job[int]{Label: fmt.Sprint(i), Run: func() int { return 0 }}
	}
	RunAll(r, jobs)
	if len(started) != 8 || len(finished) != 8 {
		t.Fatalf("events: %d started, %d finished, want 8/8", len(started), len(finished))
	}
}

func TestRunnerDefaultsAndSingleJob(t *testing.T) {
	if NewRunner(0).Jobs() < 1 {
		t.Fatal("default pool width < 1")
	}
	got := RunAll(NewRunner(8), []Job[string]{{Run: func() string { return "only" }}})
	if len(got) != 1 || got[0] != "only" {
		t.Fatalf("single job: %v", got)
	}
	if len(RunAll[int](NewRunner(4), nil)) != 0 {
		t.Fatal("empty job list should return empty results")
	}
}

// TestSweepDeterministicAcrossJobWidths is the acceptance check for the
// parallel runner: the rendered figure and its CSV must be byte-identical
// whether the sweep's cluster runs execute sequentially or on 4 workers,
// across two seeds.
func TestSweepDeterministicAcrossJobWidths(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is slow")
	}
	for _, seed := range []mem.Seed{0, 42} {
		var text, csv []string
		for _, jobs := range []int{1, 4} {
			o := Options{Scale: 64, Seed: seed, Jobs: jobs}
			f := sweep(o, "fig7", "determinism probe", "req/s",
				workload.DayTrader(), []int{1, 2}, 2, true)
			text = append(text, RenderSweepFigure(f))
			csv = append(csv, SweepFigureTable(f).CSV())
		}
		if text[0] != text[1] {
			t.Fatalf("seed %d: rendered text differs between -jobs 1 and -jobs 4:\n%s\n---\n%s",
				seed, text[0], text[1])
		}
		if csv[0] != csv[1] {
			t.Fatalf("seed %d: CSV differs between -jobs 1 and -jobs 4:\n%s\n---\n%s",
				seed, csv[0], csv[1])
		}
	}
}

// TestFig6DeterministicAcrossJobWidths covers the non-sweep fan-out path.
func TestFig6DeterministicAcrossJobWidths(t *testing.T) {
	if testing.Short() {
		t.Skip("fig6 is slow")
	}
	var outs []string
	for _, jobs := range []int{1, 2} {
		f := Fig6(Options{Scale: 96, Quick: true, Jobs: jobs})
		outs = append(outs, RenderPowerFigure(f)+PowerFigureTable(f).CSV())
	}
	if outs[0] != outs[1] {
		t.Fatalf("fig6 output differs between -jobs 1 and -jobs 2:\n%s\n---\n%s", outs[0], outs[1])
	}
}
