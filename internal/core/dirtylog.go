package core

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/simclock"
	"repro/internal/workload"
)

// DirtyLogRow is one cell of the dirty-log sweep: one scan mode at one guest
// count under one churn rate, measured after the cluster has converged.
type DirtyLogRow struct {
	// Mode labels the row: "full" (linear scanner) or "incremental"
	// (dirty-ring rescans).
	Mode   string
	Guests int
	// ChurnPct is the share of each guest's RAM rewritten per measurement
	// interval (0 = idle guests).
	ChurnPct int
	// ScanPerInterval is the average pages the scanner examined per
	// measurement interval once converged — the rescan cost the tentpole
	// claims scales with churn, not cluster size.
	ScanPerInterval float64
	// RegisteredPages is the linear scanner's per-pass cost for comparison
	// (what a full pass must walk).
	RegisteredPages int
	// SharingMB is KSM saved memory at the end of measurement, proving
	// incremental mode kept the merges.
	SharingMB float64
	// DirtyDrained, RingOverflows and IncrementalRounds expose the ring
	// mechanics behind the cost (all zero in full mode).
	DirtyDrained      uint64
	RingOverflows     uint64
	IncrementalRounds uint64
	FullScans         uint64
}

// DirtyLogFigure is the dirtylog experiment result.
type DirtyLogFigure struct {
	ID    string
	Title string
	Rows  []DirtyLogRow
}

// dirtyLogMeasureIntervals is how many one-second intervals the converged
// measurement averages over.
const dirtyLogMeasureIntervals = 5

// DirtyLogSweep compares the converged rescan cost of the linear scanner
// against dirty-ring incremental mode across guest count × churn rate on the
// DayTrader scenario. After the standard warm-up and steady phases each cell
// runs idle-plus-churn measurement intervals: a churn writer rewrites the
// configured share of every guest's RAM, the clock advances one second, and
// the scanner's pages-scanned delta is recorded. The linear scanner walks
// all registered pages regardless of churn; incremental mode's cost tracks
// the dirtied set. The Options.IncrementalScan flag is ignored here — the
// sweep supplies its own mode axis.
func DirtyLogSweep(o Options) DirtyLogFigure {
	fig := DirtyLogFigure{
		ID:    "dirtylog",
		Title: "Converged KSM rescan cost: linear vs dirty-ring incremental (DayTrader guests)",
	}
	counts := []int{2, 4}
	churns := []int{0, 2, 8}
	modes := []struct {
		label       string
		incremental bool
	}{
		{"full", false},
		{"incremental", true},
	}
	var jobs []Job[DirtyLogRow]
	for _, n := range counts {
		for _, churn := range churns {
			for _, mode := range modes {
				n, churn, mode := n, churn, mode
				seq := len(jobs)
				label := fmt.Sprintf("dirtylog n=%d churn=%d%% mode=%s", n, churn, mode.label)
				jobs = append(jobs, Job[DirtyLogRow]{
					Label: label,
					Run: func() DirtyLogRow {
						cfg := ClusterConfig{
							Scale:           o.scale(),
							Specs:           []workload.Spec{workload.DayTrader()},
							NumVMs:          n,
							SharedClasses:   true,
							BaseSeed:        o.Seed,
							IncrementalScan: mode.incremental,
							EnableMetrics:   o.Telemetry != nil,
							KSMShards:       o.KSMShards,
						}
						if o.Quick {
							cfg.SteadyRounds = 15
						}
						c := BuildCluster(cfg)
						o.Telemetry.CollectAt(seq, label, c.Metrics)
						c.Run()
						scanned := measureConvergedScanRate(c, churn)
						kst := c.Scanner.Stats()
						return DirtyLogRow{
							Mode:              mode.label,
							Guests:            n,
							ChurnPct:          churn,
							ScanPerInterval:   scanned,
							RegisteredPages:   c.totalGuestPages(),
							SharingMB:         mb(kst.SavedBytes, c.Cfg.Scale),
							DirtyDrained:      kst.DirtyDrained,
							RingOverflows:     kst.RingOverflows,
							IncrementalRounds: kst.IncrementalRounds,
							FullScans:         kst.FullScans,
						}
					},
				})
			}
		}
	}
	fig.Rows = RunAll(o.runner(), jobs)
	return fig
}

// measureConvergedScanRate runs the measurement intervals on a cluster that
// has finished its steady phase and reports the average pages scanned per
// interval. Each interval rewrites churnPct percent of every guest's RAM
// with fresh interval-unique content — guest-side churn the scanner has to
// notice — then advances the clock one second.
func measureConvergedScanRate(c *Cluster, churnPct int) float64 {
	before := c.Scanner.Stats().PagesScanned
	for interval := 0; interval < dirtyLogMeasureIntervals; interval++ {
		for vi, vm := range c.Host.VMs() {
			dirty := vm.GuestPages() * churnPct / 100
			seed := mem.Combine(mem.Combine(mem.HashString("dirtylog-churn"),
				c.Cfg.BaseSeed), mem.Seed(vi<<16|interval))
			for p := 0; p < dirty; p++ {
				vm.FillGuestPage(uint64(p), mem.Combine(seed, mem.Seed(p)))
			}
		}
		c.Clock.RunFor(simclock.Second)
	}
	after := c.Scanner.Stats().PagesScanned
	return float64(after-before) / float64(dirtyLogMeasureIntervals)
}
