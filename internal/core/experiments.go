package core

import (
	"fmt"

	"repro/internal/jvm"
	"repro/internal/mem"
	"repro/internal/memanalysis"
	"repro/internal/thp"
	"repro/internal/workload"
)

// SeedFromUint64 converts a raw integer into an experiment seed.
func SeedFromUint64(v uint64) mem.Seed { return mem.Seed(v) }

// Options tunes an experiment run.
type Options struct {
	// Scale overrides the memory scale (0 = DefaultScale).
	Scale int
	// Seed perturbs all randomization (error-bar repetitions change it).
	Seed mem.Seed
	// Quick shrinks steady-state length and sweep points for fast benches.
	Quick bool
	// Jobs bounds the worker pool used to fan out independent cluster runs
	// (sweep points, error-bar repetitions, claim checks). 0 means
	// runtime.GOMAXPROCS(0); 1 runs everything sequentially inline. Results
	// are collected in submission order, so rendered output is identical at
	// every width.
	Jobs int
	// Progress, when set, receives a JobEvent as each fanned-out job starts
	// and finishes (cmd/tpsim routes these to stderr).
	Progress func(JobEvent)
	// Telemetry, when set, enables metrics sampling on every cluster the
	// experiment builds and collects each run's registry for rendering after
	// the fan-out completes (tpsim -timeline / -metrics-csv). Sampling is
	// read-only, so figures are unchanged by it.
	Telemetry *Telemetry
	// THPPolicy enables the transparent-huge-page collapse daemon on every
	// cluster the experiment builds (tpsim -thp). The zero value keeps THP
	// off and all figures byte-identical to earlier releases.
	THPPolicy thp.Policy
	// THPKSMSplit lets KSM split huge mappings over verified duplicate
	// content (tpsim -thp-ksm-split).
	THPKSMSplit bool
	// THPMaxPtesNone overrides khugepaged's max_ptes_none collapse budget on
	// every cluster the experiment builds (tpsim -thp-max-ptes-none, 0 =
	// the thp package default of 64).
	THPMaxPtesNone int
	// TLBEntries overrides the analyzer's modeled TLB size
	// (tpsim -tlb-entries, 0 = memanalysis.TLBEntries).
	TLBEntries int
	// ChaosSeed derives the chaos experiment's fault schedule
	// (tpsim -chaos-seed). Fixed seed ⇒ byte-identical sweep output at any
	// Jobs width. Only the chaos experiment reads it.
	ChaosSeed uint64
	// IncrementalScan enables the dirty-ring incremental KSM rescan mode on
	// every cluster the experiment builds (tpsim -incremental). The zero
	// value keeps the linear scanner and all figures byte-identical.
	IncrementalScan bool
	// JITShare attaches the ShareJIT-style shared code archive on every
	// cluster the experiment builds (tpsim -jitshare). The zero value keeps
	// all JIT output private and every figure byte-identical. The jitshare
	// sweep supplies its own mode axis and ignores this flag.
	JITShare bool
	// KSMShards partitions the KSM scanner's merge state by checksum bucket
	// on every cluster the experiment builds (tpsim -ksm-shards). Figures
	// are byte-identical at every value — sharding changes scan-pass wall
	// time, never outcomes. The ksmshard sweep supplies its own shard axis
	// and ignores this flag.
	KSMShards int
	// DCHosts is the datacenter sweep's host count (tpsim -hosts, 0 = 3).
	// Only the datacenter experiment reads it.
	DCHosts int
	// NetGbps is the datacenter sweep's migration link rate
	// (tpsim -net-gbps, 0 = 10 Gb/s). Only the datacenter experiment
	// reads it.
	NetGbps float64
}

func (o Options) scale() int {
	if o.Scale == 0 {
		return DefaultScale
	}
	return o.Scale
}

// runner builds a Runner from the options, wiring the progress callback.
func (o Options) runner() *Runner {
	r := NewRunner(o.Jobs)
	if o.Progress != nil {
		r.OnProgress(o.Progress)
	}
	return r
}

// MemFigure is a Fig. 2 / Fig. 4 result: per-VM physical memory breakdown
// plus TPS savings, in paper-scale MB.
type MemFigure struct {
	ID    string
	Title string
	VMs   []VMRow
	// TotalMB is the owner-oriented total over all guests (the paper quotes
	// 3 648 MB baseline → 3 314 MB with preloading).
	TotalMB        float64
	TotalSavingsMB float64
}

// VMRow is one guest VM's stacked bar.
type VMRow struct {
	Name       string
	JavaMB     float64
	OtherMB    float64
	KernelMB   float64
	OverheadMB float64
	SavingsMB  float64
}

// Total reports the VM's physical usage in MB.
func (r VMRow) Total() float64 { return r.JavaMB + r.OtherMB + r.KernelMB + r.OverheadMB }

// JavaFigure is a Fig. 3 / Fig. 5 result: per-JVM Table IV category
// breakdown, in paper-scale MB.
type JavaFigure struct {
	ID    string
	Title string
	Bars  []JavaBar
}

// JavaBar is one JVM's stacked bar.
type JavaBar struct {
	Label string
	PID   int
	Cats  []CatRow
}

// CatRow is one Table IV category of one JVM.
type CatRow struct {
	Name     string
	MappedMB float64
	SharedMB float64 // the graded "Shared with TPS" portion
}

// Cat finds a category row by name (zero row if absent).
func (b JavaBar) Cat(name string) CatRow {
	for _, c := range b.Cats {
		if c.Name == name {
			return c
		}
	}
	return CatRow{Name: name}
}

// TotalMapped sums the bar's mapped MB.
func (b JavaBar) TotalMapped() float64 {
	var t float64
	for _, c := range b.Cats {
		t += c.MappedMB
	}
	return t
}

// TotalShared sums the bar's TPS-shared MB.
func (b JavaBar) TotalShared() float64 {
	var t float64
	for _, c := range b.Cats {
		t += c.SharedMB
	}
	return t
}

// mb converts simulated bytes to paper-scale MB.
func mb(bytes int64, scale int) float64 {
	return float64(bytes) * float64(scale) / (1 << 20)
}

// memFigureFrom converts an analysis into a MemFigure.
func memFigureFrom(id, title string, a *memanalysis.Analysis, scale int) MemFigure {
	fig := MemFigure{ID: id, Title: title}
	for _, b := range a.VMBreakdowns() {
		fig.VMs = append(fig.VMs, VMRow{
			Name:       b.VMName,
			JavaMB:     mb(b.JavaBytes, scale),
			OtherMB:    mb(b.OtherProcBytes, scale),
			KernelMB:   mb(b.KernelBytes, scale),
			OverheadMB: mb(b.VMOverheadBytes, scale),
			SavingsMB:  mb(b.SavingsBytes, scale),
		})
		fig.TotalMB += mb(b.Total(), scale)
		fig.TotalSavingsMB += mb(b.SavingsBytes, scale)
	}
	return fig
}

// javaFigureFrom converts an analysis into a JavaFigure, one bar per Java
// process, ordered by VM. Labels follow the paper ("JVM1".."JVM4" for the
// DayTrader figures; workload names for Fig. 3(b)/5(b)).
func javaFigureFrom(id, title string, a *memanalysis.Analysis, scale int, labels []string) JavaFigure {
	fig := JavaFigure{ID: id, Title: title}
	jbs := a.JavaBreakdowns()
	cats := figureCategories(jbs)
	for i, jb := range jbs {
		label := jb.VMName
		if i < len(labels) {
			label = labels[i]
		}
		bar := JavaBar{Label: label, PID: jb.PID}
		for _, cat := range cats {
			cu := jb.ByCat[cat]
			bar.Cats = append(bar.Cats, CatRow{
				Name:     cat,
				MappedMB: mb(cu.MappedBytes, scale),
				SharedMB: mb(cu.SharedBytes, scale),
			})
		}
		fig.Bars = append(fig.Bars, bar)
	}
	return fig
}

// figureCategories returns the Table IV category order for a Java figure,
// splitting the ShareJIT profile stubs (CatJITData) out of the code row
// when any JVM actually has stub memory. Flag-off runs never do, so their
// figures keep the exact seven-row layout and stay byte-identical; without
// the split, stub memory would either lump into the code category or
// silently vanish from the breakdown.
func figureCategories(jbs []memanalysis.JavaBreakdown) []string {
	cats := jvm.Categories()
	for _, jb := range jbs {
		if cu, ok := jb.ByCat[jvm.CatJITData]; ok && cu.MappedBytes > 0 {
			out := make([]string, 0, len(cats)+1)
			for _, c := range cats {
				out = append(out, c)
				if c == jvm.CatJITCode {
					out = append(out, jvm.CatJITData)
				}
			}
			return out
		}
	}
	return cats
}

// dayTraderCluster builds the §2.C measurement scenario: four 1 GB guests
// each running WAS + DayTrader on a 6 GB host.
func dayTraderCluster(o Options, shared bool) *Cluster {
	cfg := ClusterConfig{
		Scale:         o.scale(),
		Specs:         []workload.Spec{workload.DayTrader()},
		NumVMs:        4,
		SharedClasses: shared,
		BaseSeed:      o.Seed,
	}
	if o.Quick {
		cfg.SteadyRounds = 15
	}
	cfg.EnableMetrics = o.Telemetry != nil
	cfg.THPPolicy = o.THPPolicy
	cfg.THPKSMSplit = o.THPKSMSplit
	cfg.THPMaxPtesNone = o.THPMaxPtesNone
	cfg.TLBEntries = o.TLBEntries
	cfg.IncrementalScan = o.IncrementalScan
	cfg.JITShare = o.JITShare
	cfg.KSMShards = o.KSMShards
	c := BuildCluster(cfg)
	o.Telemetry.Collect(fmt.Sprintf("daytrader x4 shared=%v", shared), c.Metrics)
	return c
}

// Fig2 runs the baseline (no preloading) DayTrader scenario and returns the
// Fig. 2 VM breakdown together with the Fig. 3(a) Java breakdown from the
// same run, exactly as in the paper.
func Fig2(o Options) (MemFigure, JavaFigure) {
	c := dayTraderCluster(o, false)
	c.Run()
	a := c.Analyze()
	labels := []string{"JVM1", "JVM2", "JVM3", "JVM4"}
	return memFigureFrom("fig2", "Physical memory usage and TPS savings (baseline)", a, c.Cfg.Scale),
		javaFigureFrom("fig3a", "Java memory breakdown per WAS process (baseline)", a, c.Cfg.Scale, labels)
}

// Fig4 runs the same scenario with the shared class cache copied into every
// guest and returns the Fig. 4 VM breakdown and Fig. 5(a) Java breakdown.
func Fig4(o Options) (MemFigure, JavaFigure) {
	c := dayTraderCluster(o, true)
	c.Run()
	a := c.Analyze()
	labels := []string{"JVM1", "JVM2", "JVM3", "JVM4"}
	return memFigureFrom("fig4", "Physical memory usage and TPS savings (classes preloaded)", a, c.Cfg.Scale),
		javaFigureFrom("fig5a", "Java memory breakdown per WAS process (classes preloaded)", a, c.Cfg.Scale, labels)
}

// mixedCluster is the Fig. 3(b)/5(b) scenario: three guests running
// DayTrader, SPECjEnterprise 2010 and TPC-W in the same WAS version.
func mixedCluster(o Options, shared bool) *Cluster {
	cfg := ClusterConfig{
		Scale:         o.scale(),
		Specs:         []workload.Spec{workload.DayTrader(), workload.SPECjEnterprise(), workload.TPCW()},
		NumVMs:        3,
		SharedClasses: shared,
		BaseSeed:      o.Seed,
	}
	if o.Quick {
		cfg.SteadyRounds = 15
	}
	cfg.EnableMetrics = o.Telemetry != nil
	cfg.THPPolicy = o.THPPolicy
	cfg.THPKSMSplit = o.THPKSMSplit
	cfg.THPMaxPtesNone = o.THPMaxPtesNone
	cfg.TLBEntries = o.TLBEntries
	cfg.IncrementalScan = o.IncrementalScan
	cfg.JITShare = o.JITShare
	cfg.KSMShards = o.KSMShards
	c := BuildCluster(cfg)
	o.Telemetry.Collect(fmt.Sprintf("mixed x3 shared=%v", shared), c.Metrics)
	return c
}

// Fig3b runs the mixed-workload baseline breakdown.
func Fig3b(o Options) JavaFigure {
	c := mixedCluster(o, false)
	c.Run()
	return javaFigureFrom("fig3b", "Java breakdown: DayTrader / SPECjEnterprise / TPC-W in WAS (baseline)",
		c.Analyze(), c.Cfg.Scale, []string{"DayTrader", "SPECjEnterprise", "TPC-W"})
}

// Fig5b runs the mixed-workload breakdown with per-application shared
// caches (§4.B: a separate cache name per Java program; here all three use
// the WAS cache populated with their own stacks — the WAS classes dominate,
// which is the paper's point).
func Fig5b(o Options) JavaFigure {
	c := mixedCluster(o, true)
	c.Run()
	return javaFigureFrom("fig5b", "Java breakdown: DayTrader / SPECjEnterprise / TPC-W in WAS (preloaded)",
		c.Analyze(), c.Cfg.Scale, []string{"DayTrader", "SPECjEnterprise", "TPC-W"})
}

// tuscanyCluster is the Fig. 3(c)/5(c) scenario: three Tuscany bigbank
// guests.
func tuscanyCluster(o Options, shared bool) *Cluster {
	cfg := ClusterConfig{
		Scale:         o.scale(),
		Specs:         []workload.Spec{workload.Tuscany()},
		NumVMs:        3,
		SharedClasses: shared,
		BaseSeed:      o.Seed,
	}
	if o.Quick {
		cfg.SteadyRounds = 15
	}
	cfg.EnableMetrics = o.Telemetry != nil
	cfg.THPPolicy = o.THPPolicy
	cfg.THPKSMSplit = o.THPKSMSplit
	cfg.THPMaxPtesNone = o.THPMaxPtesNone
	cfg.TLBEntries = o.TLBEntries
	cfg.IncrementalScan = o.IncrementalScan
	cfg.JITShare = o.JITShare
	cfg.KSMShards = o.KSMShards
	c := BuildCluster(cfg)
	o.Telemetry.Collect(fmt.Sprintf("tuscany x3 shared=%v", shared), c.Metrics)
	return c
}

// Fig3c runs the Tuscany baseline breakdown.
func Fig3c(o Options) JavaFigure {
	c := tuscanyCluster(o, false)
	c.Run()
	return javaFigureFrom("fig3c", "Java breakdown: three Tuscany bigbank servers (baseline)",
		c.Analyze(), c.Cfg.Scale, []string{"JVM1", "JVM2", "JVM3"})
}

// Fig5c runs the Tuscany breakdown with the 25 MB shared cache.
func Fig5c(o Options) JavaFigure {
	c := tuscanyCluster(o, true)
	c.Run()
	return javaFigureFrom("fig5c", "Java breakdown: three Tuscany bigbank servers (preloaded)",
		c.Analyze(), c.Cfg.Scale, []string{"JVM1", "JVM2", "JVM3"})
}
