package core

import (
	"fmt"

	"repro/internal/balloon"
	"repro/internal/faults"
	"repro/internal/hypervisor"
	"repro/internal/mem"
	"repro/internal/simclock"
	"repro/internal/workload"
)

// ChaosRow is one cell of the chaos sweep: one fault profile at one guest
// count, with the fault history and the sharing that survived it.
type ChaosRow struct {
	Guests  int
	Profile string

	// Fault history.
	Kills        uint64
	KillsSkipped uint64
	Restarts     uint64
	Spikes       uint64
	OOMKills     uint64
	Stalls       uint64
	// BalloonPages / ClaimedPages are the spikes' degradation ledger: pages
	// recovered from guest caches vs frames taken via eviction.
	BalloonPages uint64
	ClaimedPages uint64

	// LeakChecks ran after every kill, restart and OOM kill plus once at the
	// end; LeakFailures must be zero.
	LeakChecks   int
	LeakFailures int

	// FinalAlive is how many guests survived to the end of the run.
	FinalAlive int
	// SharingMB is KSM saved memory at the end, in paper-scale MB — how much
	// sharing the host recovered after all the churn.
	SharingMB   float64
	MajorFaults uint64
	SwapOuts    uint64
}

// ChaosFigure is the chaos experiment result.
type ChaosFigure struct {
	ID    string
	Title string
	Rows  []ChaosRow
}

// chaosProfile scales fault pressure. Intervals are virtual time; spike size
// is a fraction of host RAM.
type chaosProfile struct {
	label      string
	killEvery  simclock.Time
	spikeEvery simclock.Time
	stallEvery simclock.Time
	// spikeFrac divides the host's total frames to size each demand spike.
	spikeFrac int
}

// chaosProfiles enumerates the sweep's fault-rate axis.
var chaosProfiles = []chaosProfile{
	{label: "calm", killEvery: 30 * simclock.Second, spikeEvery: 12 * simclock.Second,
		stallEvery: 20 * simclock.Second, spikeFrac: 16},
	{label: "stormy", killEvery: 8 * simclock.Second, spikeEvery: 5 * simclock.Second,
		stallEvery: 10 * simclock.Second, spikeFrac: 8},
}

// Chaos sweeps fault profiles × guest counts on the DayTrader scenario with
// shared class caches: guests are killed and restarted, the host absorbs
// memory-demand spikes through the balloon → swap/huge-split → OOM-kill
// degradation, and the KSM daemon is stalled — all on a deterministic,
// seed-driven schedule (Options.ChaosSeed). After every lifecycle event the
// leak invariant is checked; the row records any failure. Cells are
// independent cluster runs and fan out across Options.Jobs with
// submission-order collection, so output is byte-identical at every width.
func Chaos(o Options) ChaosFigure {
	fig := ChaosFigure{
		ID:    "chaos",
		Title: fmt.Sprintf("Guest churn and memory pressure under fault injection (seed %d)", o.ChaosSeed),
	}
	counts := []int{2, 4}
	var jobs []Job[ChaosRow]
	for _, n := range counts {
		for _, p := range chaosProfiles {
			n, p := n, p
			seq := len(jobs)
			label := fmt.Sprintf("chaos n=%d profile=%s", n, p.label)
			jobs = append(jobs, Job[ChaosRow]{
				Label: label,
				Run:   func() ChaosRow { return chaosCell(o, n, p, label, seq) },
			})
		}
	}
	fig.Rows = RunAll(o.runner(), jobs)
	return fig
}

// chaosCell runs one cluster under one fault profile.
func chaosCell(o Options, guests int, p chaosProfile, label string, seq int) ChaosRow {
	cfg := ClusterConfig{
		Scale:           o.scale(),
		Specs:           []workload.Spec{workload.DayTrader()},
		NumVMs:          guests,
		SharedClasses:   true,
		BaseSeed:        o.Seed,
		EnableMetrics:   o.Telemetry != nil,
		IncrementalScan: o.IncrementalScan,
		KSMShards:       o.KSMShards,
	}
	if o.Quick {
		cfg.SteadyRounds = 15
	}
	c := BuildCluster(cfg)
	o.Telemetry.CollectAt(seq, label, c.Metrics)

	h := newChaosHarness(c)
	inj := faults.New(c.Clock, faults.Config{
		// Each cell draws from its own stream: the seed folds in the cell
		// label so rows are independent of execution order and of each other.
		Seed:       uint64(mem.Combine(mem.Seed(o.ChaosSeed), mem.HashString(label))),
		KillEvery:  p.killEvery,
		SpikeEvery: p.spikeEvery,
		StallEvery: p.stallEvery,
		SpikePages: c.Host.Phys().TotalFrames() / p.spikeFrac,
	}, h)
	inj.Instrument(c.Metrics)
	inj.Start()
	c.Run()

	// End of run: let any outstanding spike go and close the books.
	h.ReleaseSpike()
	h.leakCheck()

	st := inj.Stats()
	kst := c.Scanner.Stats()
	hst := c.Host.Stats()
	alive := 0
	for i := 0; i < c.GuestSlots(); i++ {
		if c.GuestAlive(i) {
			alive++
		}
	}
	return ChaosRow{
		Guests:       guests,
		Profile:      p.label,
		Kills:        st.Kills,
		KillsSkipped: st.KillsSkipped,
		Restarts:     st.Restarts,
		Spikes:       st.Spikes,
		OOMKills:     st.OOMKills,
		Stalls:       st.Stalls,
		BalloonPages: st.BalloonPages,
		ClaimedPages: st.ClaimedPages,
		LeakChecks:   h.leakChecks,
		LeakFailures: h.leakFailures,
		FinalAlive:   alive,
		SharingMB:    mb(kst.SavedBytes, c.Cfg.Scale),
		MajorFaults:  hst.MajorFaults,
		SwapOuts:     hst.SwapOuts,
	}
}

// chaosHarness adapts a Cluster to faults.Target, applying the paper-world
// degradation order for demand spikes — balloon (guests shrink caches) →
// swap and huge-page splits (the evictor) → OOM kill (largest guest) — and
// running the leak invariant after every lifecycle event.
type chaosHarness struct {
	c       *Cluster
	balloon *balloon.Manager
	// oomPolicy picks the OOM victim among live VMs (default VictimLargest).
	oomPolicy hypervisor.OOMPolicy

	leakChecks   int
	leakFailures int
}

func newChaosHarness(c *Cluster) *chaosHarness {
	h := &chaosHarness{
		c:         c,
		balloon:   balloon.NewManager(c.Host, c.Kernels, balloon.Config{}),
		oomPolicy: hypervisor.VictimLargest,
	}
	if c.Host.DirtyLogEnabled() {
		// With dirty logging on, the scanner's drain observations give every
		// guest a working-set estimate; kill the coldest instead of the
		// largest so reclaim destroys the least cached value.
		h.oomPolicy = hypervisor.VictimColdest
	}
	return h
}

// leakCheck asserts the leak invariant, recording rather than failing so the
// sweep reports breakage as data.
func (h *chaosHarness) leakCheck() {
	h.leakChecks++
	if err := h.c.CheckLeaks(); err != nil {
		h.leakFailures++
	}
}

func (h *chaosHarness) Guests() int         { return h.c.GuestSlots() }
func (h *chaosHarness) Alive(slot int) bool { return h.c.GuestAlive(slot) }

func (h *chaosHarness) Kill(slot int) {
	// Detach the kernel from the balloon manager BEFORE the hypervisor
	// reclaims its pages: a balance pass between teardown and drop would
	// drive reclaim against a guest whose memory no longer exists.
	if k := h.c.GuestKernel(slot); k != nil {
		h.balloon.DropGuest(k)
	}
	h.c.KillGuest(slot)
	h.leakCheck()
}

func (h *chaosHarness) Restart(slot int) {
	if k := h.c.RestartGuest(slot); k != nil {
		h.balloon.AddGuest(k)
	}
	h.leakCheck()
}

func (h *chaosHarness) DemandSpike(pages int) faults.SpikeOutcome {
	var out faults.SpikeOutcome
	// 1. Balloon: ask the guests to give back page cache first (cheap).
	out.BalloonPages = h.balloon.ReclaimPages(pages)
	// 2./3. Claim from the pool: the evictor swaps cold private pages and
	// splits cold huge mappings on the way.
	got := h.c.Host.ClaimFrames(pages)
	// 4. OOM: the spike still cannot be served — kill the largest guest
	// (pluggable policy) and retry until it fits or nobody is left.
	for got < pages {
		victim := h.oomPolicy(h.c.Host.VMs())
		if victim == nil {
			break
		}
		slot := h.slotOf(victim)
		if slot < 0 {
			break
		}
		h.Kill(slot)
		out.OOMKills++
		got += h.c.Host.ClaimFrames(pages - got)
	}
	out.ClaimedPages = got
	return out
}

// slotOf maps a VM process back to its guest slot.
func (h *chaosHarness) slotOf(vm *hypervisor.VMProcess) int {
	for i := 0; i < h.c.GuestSlots(); i++ {
		if h.c.GuestAlive(i) && h.c.GuestVM(i) == vm {
			return i
		}
	}
	return -1
}

func (h *chaosHarness) ReleaseSpike() {
	h.c.Host.ReleaseClaimed()
}

func (h *chaosHarness) StallScanner(d simclock.Time) {
	h.c.Scanner.Stall(d)
}
