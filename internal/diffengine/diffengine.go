// Package diffengine implements an analysis-mode baseline after Gupta et
// al.'s Difference Engine (OSDI '08), which the paper discusses as related
// work: beyond whole-page sharing it exploits (a) sub-page sharing — storing
// a similar page as a delta against a reference page — and (b) page
// compression. Both recover memory that TPS cannot, at the cost of
// reconstructing the full page on every access, whereas TPS-shared pages
// are read directly (the paper's argument for why TPS suits read-only class
// metadata).
//
// The engine here evaluates what those techniques would save on the live
// memory state of a host, without mutating it: it is the comparator for the
// ablation benchmarks, not a second sharing path.
package diffengine

import (
	"repro/internal/hypervisor"
	"repro/internal/mem"
)

// blockCount splits a page into this many blocks for similarity detection.
const blockCount = 8

// Config tunes the analysis.
type Config struct {
	// MinSharedBlocks is how many of a page's blocks must match a reference
	// page for delta encoding to be worthwhile (Difference Engine requires
	// the patch to be under a size threshold).
	MinSharedBlocks int
	// PatchOverheadBytes is the fixed cost of a patch header.
	PatchOverheadBytes int
	// CompressOverheadBytes is the fixed cost of a compressed page header.
	CompressOverheadBytes int
}

// DefaultConfig mirrors Difference Engine's thresholds at page scale.
func DefaultConfig() Config {
	return Config{MinSharedBlocks: 5, PatchOverheadBytes: 64, CompressOverheadBytes: 48}
}

// Result summarizes the recoverable memory.
type Result struct {
	ScannedPages int
	// IdenticalBytes is what whole-page sharing (TPS/KSM) recovers.
	IdenticalBytes int64
	IdenticalPages int
	// SubPageBytes is the additional recovery from delta-encoding similar
	// (but not identical) pages against references.
	SubPageBytes int64
	PatchedPages int
	// CompressionBytes is the additional recovery from compressing the
	// remaining unique pages.
	CompressionBytes int64
	CompressedPages  int
	// AccessPenaltyPages counts pages that would need reconstruction before
	// every read — the overhead class TPS avoids entirely.
	AccessPenaltyPages int
}

// TotalBytes is the combined recovery.
func (r Result) TotalBytes() int64 {
	return r.IdenticalBytes + r.SubPageBytes + r.CompressionBytes
}

// Analyze scans every resident guest page of the host and reports what a
// Difference-Engine-style policy would recover from the current state.
func Analyze(host *hypervisor.Host, cfg Config) Result {
	pm := host.Phys()
	pageSize := int64(host.PageSize())

	var res Result
	seenFrame := map[mem.FrameID]bool{}
	fullHash := map[uint64][]mem.FrameID{}
	blockIndex := map[uint64][]mem.FrameID{} // block hash -> frames containing it

	var frames []mem.FrameID
	for _, vm := range host.VMs() {
		for _, reg := range vm.MergeableRegions() {
			for vpn := reg.Start; vpn < reg.End; vpn++ {
				f, ok := vm.ResolveResident(vpn)
				if !ok || seenFrame[f] {
					continue
				}
				seenFrame[f] = true
				frames = append(frames, f)
			}
		}
	}

	for _, f := range frames {
		res.ScannedPages++
		sum := pm.Checksum(f)
		// Whole-page identity first (what TPS gets).
		dup := false
		for _, g := range fullHash[sum] {
			if pm.Equal(f, g) {
				res.IdenticalBytes += pageSize
				res.IdenticalPages++
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		fullHash[sum] = append(fullHash[sum], f)

		// Sub-page similarity: count blocks shared with the best reference.
		blocks := blockHashes(pm.Bytes(f))
		best, bestShared := mem.NilFrame, 0
		tried := map[mem.FrameID]bool{}
		for _, bh := range blocks {
			for _, cand := range blockIndex[bh] {
				if tried[cand] {
					continue
				}
				tried[cand] = true
				shared := sharedBlocks(blocks, blockHashes(pm.Bytes(cand)))
				if shared > bestShared {
					best, bestShared = cand, shared
				}
			}
		}
		if best != mem.NilFrame && bestShared >= cfg.MinSharedBlocks {
			patch := (blockCount-bestShared)*int(pageSize)/blockCount + cfg.PatchOverheadBytes
			if int64(patch) < pageSize {
				res.SubPageBytes += pageSize - int64(patch)
				res.PatchedPages++
				res.AccessPenaltyPages++
				continue
			}
		}
		for _, bh := range blocks {
			blockIndex[bh] = append(blockIndex[bh], f)
		}

		// Compression on what remains. Synthetic content is incompressible
		// except for its zero runs, so this is a conservative floor.
		if comp := compressedSize(pm.Bytes(f), cfg.CompressOverheadBytes); int64(comp) < pageSize {
			saved := pageSize - int64(comp)
			if saved > 0 {
				res.CompressionBytes += saved
				res.CompressedPages++
				res.AccessPenaltyPages++
			}
		}
	}
	return res
}

// blockHashes hashes each block of a page.
func blockHashes(page []byte) [blockCount]uint64 {
	var out [blockCount]uint64
	bs := len(page) / blockCount
	for i := 0; i < blockCount; i++ {
		out[i] = mem.ChecksumBytes(page[i*bs : (i+1)*bs])
	}
	return out
}

// sharedBlocks counts positionally matching block hashes.
func sharedBlocks(a, b [blockCount]uint64) int {
	n := 0
	for i := range a {
		if a[i] == b[i] {
			n++
		}
	}
	return n
}

// compressedSize models compression as zero-run elimination: non-zero bytes
// survive, plus a header.
func compressedSize(page []byte, overhead int) int {
	nz := 0
	for _, b := range page {
		if b != 0 {
			nz++
		}
	}
	return nz + overhead
}
