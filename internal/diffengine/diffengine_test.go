package diffengine

import (
	"testing"

	"repro/internal/hypervisor"
	"repro/internal/mem"
	"repro/internal/simclock"
)

const pg = mem.DefaultPageSize

func newHost(t *testing.T) (*hypervisor.Host, *hypervisor.VMProcess, *hypervisor.VMProcess) {
	t.Helper()
	h := hypervisor.NewHost(hypervisor.Config{Name: "t", RAMBytes: 512 * pg}, simclock.New())
	vm1 := h.NewVM(hypervisor.VMConfig{Name: "a", GuestMemBytes: 64 * pg, Seed: 1})
	vm2 := h.NewVM(hypervisor.VMConfig{Name: "b", GuestMemBytes: 64 * pg, Seed: 2})
	return h, vm1, vm2
}

func TestIdenticalPagesCounted(t *testing.T) {
	h, vm1, vm2 := newHost(t)
	for i := uint64(0); i < 4; i++ {
		vm1.FillGuestPage(i, mem.Seed(100+i))
		vm2.FillGuestPage(i, mem.Seed(100+i))
	}
	r := Analyze(h, DefaultConfig())
	if r.IdenticalPages != 4 {
		t.Fatalf("identical pages = %d, want 4", r.IdenticalPages)
	}
	if r.IdenticalBytes != 4*pg {
		t.Fatalf("identical bytes = %d", r.IdenticalBytes)
	}
}

func TestSubPageSharingOnPartialPages(t *testing.T) {
	h, vm1, vm2 := newHost(t)
	// Two pages sharing 7 of 8 blocks: same content except the last block.
	base := mem.FillBytes(pg, 7)
	vm1.WriteGuestPage(0, 0, base)
	mod := append([]byte(nil), base...)
	mem.Fill(mod[pg-pg/8:], 99)
	vm2.WriteGuestPage(0, 0, mod)
	r := Analyze(h, DefaultConfig())
	if r.PatchedPages != 1 {
		t.Fatalf("patched pages = %d, want 1 (result %+v)", r.PatchedPages, r)
	}
	if r.SubPageBytes <= 0 || r.SubPageBytes >= pg {
		t.Fatalf("sub-page savings = %d", r.SubPageBytes)
	}
	if r.AccessPenaltyPages == 0 {
		t.Fatal("patched pages must carry an access penalty")
	}
}

func TestCompressionOnSparsePages(t *testing.T) {
	h, vm1, _ := newHost(t)
	// A page with 128 nonzero bytes compresses well.
	vm1.WriteGuestPage(3, 0, mem.FillBytes(128, 5))
	r := Analyze(h, DefaultConfig())
	if r.CompressedPages == 0 {
		t.Fatalf("sparse page not compressed: %+v", r)
	}
	if r.CompressionBytes < pg/2 {
		t.Fatalf("compression savings too small: %d", r.CompressionBytes)
	}
}

func TestFullyRandomPagesIncompressible(t *testing.T) {
	h, vm1, vm2 := newHost(t)
	vm1.FillGuestPage(0, 11)
	vm2.FillGuestPage(0, 22)
	r := Analyze(h, DefaultConfig())
	if r.CompressionBytes > 0 || r.SubPageBytes > 0 || r.IdenticalBytes > 0 {
		t.Fatalf("random pages recovered memory: %+v", r)
	}
	if r.ScannedPages != 2 {
		t.Fatalf("scanned = %d", r.ScannedPages)
	}
}

func TestTotalsAdditive(t *testing.T) {
	h, vm1, vm2 := newHost(t)
	vm1.FillGuestPage(0, 7)
	vm2.FillGuestPage(0, 7)                             // identical
	vm1.WriteGuestPage(1, 0, mem.FillBytes(64, 3))      // compressible
	vm2.WriteGuestPage(1, 100, mem.FillBytes(2000, 42)) // compressible
	r := Analyze(h, DefaultConfig())
	if r.TotalBytes() != r.IdenticalBytes+r.SubPageBytes+r.CompressionBytes {
		t.Fatal("TotalBytes not additive")
	}
	if r.TotalBytes() <= 0 {
		t.Fatal("no recovery at all")
	}
}
