// Package mem models host physical memory at page granularity: a pool of
// page frames with reference counting and real byte contents, page tables
// mapping virtual page numbers to frames, and deterministic content
// generators.
//
// Every page in the simulator is backed by real bytes. Components fill pages
// with bytes derived deterministically from logical identity (a class name,
// a file path, a per-process randomization seed), so that two pages end up
// byte-identical exactly when the simulated system would have produced
// identical pages — content identity is emergent, never asserted. That is
// the property the paper's Transparent Page Sharing analysis rests on.
package mem

// Seed is a 64-bit value that deterministically identifies a piece of
// logical content. Seeds are combined with SplitMix64-style mixing so that
// related identities (same class, different process) produce unrelated byte
// streams.
type Seed uint64

// Mix advances a seed through the SplitMix64 finalizer. It is the core
// primitive behind all deterministic content in the simulator.
func Mix(x Seed) Seed {
	z := uint64(x) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return Seed(z ^ (z >> 31))
}

// Combine folds any number of seeds into one. Order matters:
// Combine(a, b) != Combine(b, a) in general.
func Combine(seeds ...Seed) Seed {
	var acc Seed = 0x243f6a8885a308d3 // pi, for want of anything better
	for _, s := range seeds {
		acc = Mix(acc ^ s)
	}
	return acc
}

// HashString hashes a string into a Seed using FNV-1a.
func HashString(s string) Seed {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return Seed(h)
}

// Fill writes a deterministic byte stream derived from seed into dst. The
// stream is a xorshift64* generator; the same (seed, len) always produces
// the same bytes, and different seeds produce streams that share no long
// common runs, so accidental page-content collisions do not happen.
func Fill(dst []byte, seed Seed) {
	s := uint64(Mix(seed))
	if s == 0 {
		s = 0x9e3779b97f4a7c15
	}
	i := 0
	for i+8 <= len(dst) {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		v := s * 0x2545f4914f6cdd1d
		dst[i] = byte(v)
		dst[i+1] = byte(v >> 8)
		dst[i+2] = byte(v >> 16)
		dst[i+3] = byte(v >> 24)
		dst[i+4] = byte(v >> 32)
		dst[i+5] = byte(v >> 40)
		dst[i+6] = byte(v >> 48)
		dst[i+7] = byte(v >> 56)
		i += 8
	}
	if i < len(dst) {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		v := s * 0x2545f4914f6cdd1d
		for ; i < len(dst); i++ {
			dst[i] = byte(v)
			v >>= 8
		}
	}
}

// FillBytes allocates and fills a fresh deterministic buffer.
func FillBytes(n int, seed Seed) []byte {
	b := make([]byte, n)
	Fill(b, seed)
	return b
}

// ChecksumBytes computes the FNV-1a checksum of a byte slice. KSM uses this
// as its volatility gate: a page whose checksum changed between scan passes
// is considered too volatile to merge.
func ChecksumBytes(b []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, c := range b {
		h ^= uint64(c)
		h *= prime64
	}
	return h
}

// ChecksumSeed computes ChecksumBytes(FillBytes(n, seed)) without
// materializing the buffer: the generator words are folded straight into
// the hash. The content store checksums seeded (never-read) pages this way,
// so the volatility gate costs no page-sized memory traffic for them.
func ChecksumSeed(seed Seed, n int) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	s := uint64(Mix(seed))
	if s == 0 {
		s = 0x9e3779b97f4a7c15
	}
	h := uint64(offset64)
	i := 0
	for i+8 <= n {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		v := s * 0x2545f4914f6cdd1d
		for k := 0; k < 8; k++ {
			h ^= v >> (8 * k) & 0xff
			h *= prime64
		}
		i += 8
	}
	if i < n {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		v := s * 0x2545f4914f6cdd1d
		for ; i < n; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	return h
}
