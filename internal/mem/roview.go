package mem

import "bytes"

// ROView is a strictly read-only window onto a pool's frame contents, built
// for the sharded KSM scanner's worker goroutines. The regular accessors
// (Checksum, Equal, Compare, Bytes) are cheap *because* they mutate: they
// lazily materialize seeded descriptors into interned blobs, cache checksums
// on blobs and in the per-seed table, and share one scratch buffer — none of
// which is safe with several workers reading the same pool. An ROView
// computes the same answers without writing any pool state: seeded content
// is regenerated into view-owned buffers, uncached checksums are recomputed
// in place, and the only caches touched are the view's own.
//
// Concurrency contract: any number of ROViews may be used from separate
// goroutines, provided nothing mutates the pool (or the frames' contents)
// concurrently. The scanner guarantees this by freezing all pool and
// page-table writes for the duration of a worker phase and funnelling them
// through a serial commit step.
//
// The price of not writing is repeated work — a seeded page is regenerated
// on every byte comparison instead of being interned once. Fills records
// which frames paid that price so the serial commit step can materialize
// them through the normal mutating path afterwards, restoring the
// compute-once steady state for later batches.
type ROView struct {
	pm   *PhysMem
	bufA []byte
	bufB []byte
	// seedSums caches checksums for seeds missing from the pool's shared
	// cache. Seed→checksum is a pure function of (seed, page size), so the
	// view's copy can persist for its whole lifetime.
	seedSums map[Seed]uint64
	// filled collects frames whose seeded content the view had to
	// regenerate for a byte comparison; see Fills.
	filled []FrameID
}

// NewROView creates a read-only content view over the pool.
func (pm *PhysMem) NewROView() *ROView {
	return &ROView{pm: pm}
}

// Checksum returns the frame's content checksum, identical to
// PhysMem.Checksum but without caching into pool state.
func (v *ROView) Checksum(id FrameID) uint64 {
	f := v.pm.frameAt(id)
	switch f.desc.kind {
	case descZero:
		return v.pm.zeroSum
	case descSeeded:
		return v.seedSum(f.desc.seed)
	default:
		b := f.desc.blob
		if b.sumValid {
			return b.sum
		}
		return ChecksumBytes(b.data)
	}
}

func (v *ROView) seedSum(seed Seed) uint64 {
	// The pool's cache is written only between worker phases, so a
	// concurrent read here is safe and catches most seeds.
	if s, ok := v.pm.cs.seedSums[seed]; ok {
		return s
	}
	if s, ok := v.seedSums[seed]; ok {
		return s
	}
	s := ChecksumSeed(seed, v.pm.pageSize)
	if v.seedSums == nil {
		v.seedSums = make(map[Seed]uint64)
	}
	v.seedSums[seed] = s
	return s
}

// bytesRO returns the frame's content bytes, regenerating seeded pages into
// the given view-owned buffer instead of materializing them.
func (v *ROView) bytesRO(id FrameID, f *frame, buf *[]byte) []byte {
	switch f.desc.kind {
	case descZero:
		return v.pm.zero
	case descSeeded:
		if *buf == nil {
			*buf = make([]byte, v.pm.pageSize)
		}
		Fill(*buf, f.desc.seed)
		v.filled = append(v.filled, id)
		return *buf
	default:
		return f.desc.blob.data
	}
}

// Equal reports whether two frames hold byte-identical content; same answer
// as PhysMem.Equal, no pool writes.
func (v *ROView) Equal(a, b FrameID) bool {
	if a == b {
		return true
	}
	fa, fb := v.pm.frameAt(a), v.pm.frameAt(b)
	if eq, ok := descsEqualFast(fa.desc, fb.desc); ok {
		return eq
	}
	if v.Checksum(a) != v.Checksum(b) {
		return false
	}
	return bytes.Equal(v.bytesRO(a, fa, &v.bufA), v.bytesRO(b, fb, &v.bufB))
}

// Compare orders two frames by lexicographic byte comparison; same answer as
// PhysMem.Compare, no pool writes.
func (v *ROView) Compare(a, b FrameID) int {
	if a == b {
		return 0
	}
	fa, fb := v.pm.frameAt(a), v.pm.frameAt(b)
	if eq, ok := descsEqualFast(fa.desc, fb.desc); ok && eq {
		return 0
	}
	return bytes.Compare(v.bytesRO(a, fa, &v.bufA), v.bytesRO(b, fb, &v.bufB))
}

// Fills returns the frames whose seeded content this view regenerated since
// the last ResetFills — candidates for one-time materialization through the
// pool's normal mutating path once single-threaded control resumes. Entries
// may repeat; materializing a frame twice is a cheap no-op.
func (v *ROView) Fills() []FrameID { return v.filled }

// ResetFills clears the regenerated-frame log. Call it at the start of each
// frozen phase: frame ids recorded before pool mutations resumed may since
// have been freed or refilled.
func (v *ROView) ResetFills() { v.filled = v.filled[:0] }

// AdoptChecksum installs a checksum computed by an ROView into the pool's
// caches, restoring the compute-once property for content the read-only
// path could not cache. sum must be the frame's current content checksum
// (i.e. computed while nothing mutated the frame); an already-cached value
// wins, so a correct caller never changes an existing cache entry.
func (pm *PhysMem) AdoptChecksum(id FrameID, sum uint64) {
	f := pm.frameAt(id)
	switch f.desc.kind {
	case descZero:
		// Precomputed per pool; nothing to adopt.
	case descSeeded:
		if _, ok := pm.cs.seedSums[f.desc.seed]; !ok {
			pm.cs.seedSums[f.desc.seed] = sum
		}
	default:
		b := f.desc.blob
		if !b.sumValid {
			b.sum = sum
			b.sumValid = true
		}
	}
}

// Materialize forces the frame's content through the normal read path,
// interning seeded pages exactly as a mutating accessor would have. The
// serial commit step uses it to repay the ROView's regenerated reads.
func (pm *PhysMem) Materialize(id FrameID) { pm.bytesOf(pm.frameAt(id)) }
