package mem

import (
	"bytes"
	"math/rand"
	"testing"
)

// Satellite coverage for descriptor export/import across pools: every
// content kind must round-trip byte-exactly, classify correctly, and
// conserve references so that tearing the destination pool back down
// releases every blob the imports created.

func allocFrame(t *testing.T, pm *PhysMem) FrameID {
	t.Helper()
	id, err := pm.Alloc()
	if err != nil {
		t.Fatalf("Alloc: %v", err)
	}
	return id
}

// TestExportImportKinds walks one page of each kind across two pools and
// checks bytes, classification, and checksum against the naive model.
func TestExportImportKinds(t *testing.T) {
	src := NewPhysMem(1<<20, DefaultPageSize)
	dst := NewPhysMem(1<<20, DefaultPageSize)

	literal := bytes.Repeat([]byte("JavaSharedClassCache!"), 200)[:DefaultPageSize]
	unique := FillBytes(DefaultPageSize, HashString("private-literal"))

	// Source pages: untouched zero, seeded fill, a literal the destination
	// already holds, and a literal it has never seen.
	zeroF := allocFrame(t, src)
	seedF := allocFrame(t, src)
	src.FillFrame(seedF, HashString("kernel-text"))
	dupF := allocFrame(t, src)
	src.Write(dupF, 0, literal)
	copyF := allocFrame(t, src)
	src.Write(copyF, 0, unique)

	// Pre-seed the destination with the duplicate content via its own
	// write + snapshot (the path swap dedup uses to intern literals).
	preF := allocFrame(t, dst)
	dst.Write(preF, 0, literal)
	dst.Release(dst.Snapshot(preF))

	cases := []struct {
		name  string
		frame FrameID
		class ImportClass
		want  []byte
	}{
		{"zero", zeroF, ImportZero, make([]byte, DefaultPageSize)},
		{"seed", seedF, ImportSeed, FillBytes(DefaultPageSize, HashString("kernel-text"))},
		{"dup", dupF, ImportDup, literal},
		{"copy", copyF, ImportCopy, unique},
	}
	for _, tc := range cases {
		e := src.ExportFrame(tc.frame)
		if e.Sum != ChecksumBytes(tc.want) {
			t.Fatalf("%s: exported Sum %#x != content checksum %#x", tc.name, e.Sum, ChecksumBytes(tc.want))
		}
		into := allocFrame(t, dst)
		// Dirty the target first so the import must actually overwrite.
		dst.Write(into, 0, []byte("stale"))
		class := dst.ImportPage(into, e)
		if class != tc.class {
			t.Fatalf("%s: ImportPage class = %v, want %v", tc.name, class, tc.class)
		}
		if !bytes.Equal(dst.Bytes(into), tc.want) {
			t.Fatalf("%s: imported bytes differ from naive copy", tc.name)
		}
		if dst.Checksum(into) != e.Sum {
			t.Fatalf("%s: destination checksum %#x != wire checksum %#x", tc.name, dst.Checksum(into), e.Sum)
		}
	}
	if dst.ZeroFrames() < 1 {
		t.Fatal("zero import did not maintain the zero-frame gauge")
	}
}

// TestImportPageRejectsSharedFrames documents the contract: imports land
// only on privately mapped frames.
func TestImportPageRejectsSharedFrames(t *testing.T) {
	src := NewPhysMem(1<<20, DefaultPageSize)
	dst := NewPhysMem(1<<20, DefaultPageSize)
	e := src.ExportFrame(allocFrame(t, src))

	shared := allocFrame(t, dst)
	dst.IncRef(shared)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("ImportPage into a shared frame did not panic")
			}
		}()
		dst.ImportPage(shared, e)
	}()
	dst.DecRef(shared)

	ksmF := allocFrame(t, dst)
	dst.SetKSM(ksmF, true)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("ImportPage into a KSM frame did not panic")
			}
		}()
		dst.ImportPage(ksmF, e)
	}()
}

// TestExportImportContentRoundTrip moves detached PageContent handles —
// the swapped-page path — between pools.
func TestExportImportContentRoundTrip(t *testing.T) {
	src := NewPhysMem(1<<20, DefaultPageSize)
	dst := NewPhysMem(1<<20, DefaultPageSize)

	payload := FillBytes(DefaultPageSize, HashString("swapped-heap-page"))
	f := allocFrame(t, src)
	src.Write(f, 0, payload)
	snap := src.Snapshot(f)

	c, class := dst.ImportContent(src.ExportContent(snap))
	if class != ImportCopy {
		t.Fatalf("first import of unseen content classified %v, want copy", class)
	}
	src.Release(snap)

	into := allocFrame(t, dst)
	dst.Restore(into, c)
	if !bytes.Equal(dst.Bytes(into), payload) {
		t.Fatal("restored content differs from the source page")
	}

	// A second import of the same content must attach, not copy.
	f2 := allocFrame(t, src)
	src.Write(f2, 0, payload)
	snap2 := src.Snapshot(f2)
	c2, class2 := dst.ImportContent(src.ExportContent(snap2))
	if class2 != ImportDup {
		t.Fatalf("re-import of known content classified %v, want dup", class2)
	}
	src.Release(snap2)
	dst.Release(c2)
}

// TestExportImportProperty is the satellite property test: a randomized
// page population exported from one pool and imported into another must
// match a naive byte-copy model page-for-page, classify dup/copy by
// first-sight order, and conserve references — freeing everything in the
// destination returns its content store to empty.
func TestExportImportProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	src := NewPhysMem(4<<20, DefaultPageSize)
	dst := NewPhysMem(4<<20, DefaultPageSize)

	seeds := []Seed{HashString("text"), HashString("rodata"), HashString("cds")}
	palette := make([][]byte, 4)
	for i := range palette {
		palette[i] = FillBytes(DefaultPageSize, Combine(HashString("palette"), Seed(i)))
	}

	const pages = 200
	type page struct {
		frame FrameID
		want  []byte // the naive model: the bytes a memcpy would move
		class ImportClass
	}
	model := make([]page, 0, pages)
	seen := map[uint64]bool{} // content already present in dst
	for i := 0; i < pages; i++ {
		f := allocFrame(t, src)
		p := page{frame: f}
		switch rng.Intn(4) {
		case 0: // zero
			p.want = make([]byte, DefaultPageSize)
			p.class = ImportZero
		case 1: // seeded
			s := seeds[rng.Intn(len(seeds))]
			src.FillFrame(f, s)
			p.want = FillBytes(DefaultPageSize, s)
			p.class = ImportSeed
		case 2: // palette literal: dup after first sight
			data := palette[rng.Intn(len(palette))]
			src.Write(f, 0, data)
			p.want = data
			sum := ChecksumBytes(data)
			if seen[sum] {
				p.class = ImportDup
			} else {
				p.class = ImportCopy
				seen[sum] = true
			}
		default: // unique literal: always a copy
			data := FillBytes(DefaultPageSize, Combine(HashString("unique"), Seed(i)))
			src.Write(f, 0, data)
			p.want = data
			p.class = ImportCopy
		}
		model = append(model, p)
	}

	srcBlobs := src.ContentStats().Blobs
	imported := make([]FrameID, 0, pages)
	var copies int
	for _, p := range model {
		e := src.ExportFrame(p.frame)
		into := allocFrame(t, dst)
		class := dst.ImportPage(into, e)
		if class != p.class {
			t.Fatalf("page %d: class %v, want %v", p.frame, class, p.class)
		}
		if class == ImportCopy {
			copies++
		}
		imported = append(imported, into)
	}
	// Export is read-only on the source store: no blobs appeared or died.
	if got := src.ContentStats().Blobs; got != srcBlobs {
		t.Fatalf("export changed source blob count: %d -> %d", srcBlobs, got)
	}
	// Only first-sight literals allocated destination buffers. (Checked
	// before reading any destination frame: reads materialize seeded
	// descriptors into blobs.)
	if got := dst.ContentStats().Blobs; got != copies {
		t.Fatalf("destination holds %d blobs after import, want %d (one per ImportCopy)", got, copies)
	}
	for i, p := range model {
		if !bytes.Equal(dst.Bytes(imported[i]), p.want) {
			t.Fatalf("page %d: imported bytes diverge from the byte-copy model", p.frame)
		}
	}
	// Refcount conservation: dropping every imported frame drains the store.
	for _, id := range imported {
		dst.DecRef(id)
	}
	if st := dst.ContentStats(); st.Blobs != 0 || st.BlobBytes != 0 {
		t.Fatalf("destination store not empty after teardown: %+v", st)
	}
}
