package mem

import (
	"bytes"
	"math/rand"
	"sort"
	"testing"
)

// This file is the content-store differential test: a naive reference model
// that stores one materialized byte array per live frame (exactly the old
// PhysMem representation) runs the same random operation stream as the real
// pool, and every observable — Bytes, Equal, Compare, Checksum, IsZero —
// must agree at every step. Snapshot/Restore/Release handles ride along so
// the swap-store aliasing path is exercised too, and a blob census checks
// that every literal blob's refcount equals the number of frame descriptors
// and live handles pointing at it.

type diffSnap struct {
	c    PageContent
	data []byte // reference copy of the snapshotted content
}

type diffModel struct {
	pm    *PhysMem
	pages map[FrameID][]byte // reference content per live frame
	refs  map[FrameID]int
	snaps []diffSnap
}

func newDiffModel(frames int) *diffModel {
	return &diffModel{
		pm:    NewPhysMem(int64(frames)*DefaultPageSize, DefaultPageSize),
		pages: make(map[FrameID][]byte),
		refs:  make(map[FrameID]int),
	}
}

func (m *diffModel) pick(r *rand.Rand) (FrameID, bool) {
	if len(m.pages) == 0 {
		return 0, false
	}
	// Sort before choosing so the stream is independent of map iteration
	// order and a failing (seed, steps) pair replays exactly.
	ids := make([]FrameID, 0, len(m.pages))
	for id := range m.pages {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids[r.Intn(len(ids))], true
}

// step applies one random operation to both the pool and the model.
func (m *diffModel) step(r *rand.Rand) {
	switch r.Intn(10) {
	case 0, 1: // alloc
		id, err := m.pm.Alloc()
		if err != nil {
			return
		}
		m.pages[id] = make([]byte, DefaultPageSize)
		m.refs[id] = 1
	case 2: // incref / decref
		id, ok := m.pick(r)
		if !ok {
			return
		}
		if r.Intn(2) == 0 {
			m.pm.IncRef(id)
			m.refs[id]++
		} else {
			m.pm.DecRef(id)
			if m.refs[id]--; m.refs[id] == 0 {
				delete(m.refs, id)
				delete(m.pages, id)
			}
		}
	case 3, 4: // write: random span, sometimes all-zero bytes
		id, ok := m.pick(r)
		if !ok {
			return
		}
		n := r.Intn(64) + 1
		off := r.Intn(DefaultPageSize - n)
		data := make([]byte, n)
		if r.Intn(4) != 0 {
			r.Read(data)
		}
		m.pm.Write(id, off, data)
		copy(m.pages[id][off:], data)
	case 5: // fill from a small seed pool, forcing cross-frame sharing
		id, ok := m.pick(r)
		if !ok {
			return
		}
		seed := Seed(r.Intn(4) + 1)
		m.pm.FillFrame(id, seed)
		Fill(m.pages[id], seed)
	case 6: // zero
		id, ok := m.pick(r)
		if !ok {
			return
		}
		m.pm.ZeroFrame(id)
		for i := range m.pages[id] {
			m.pages[id][i] = 0
		}
	case 7: // copy one live frame onto another
		src, ok := m.pick(r)
		if !ok {
			return
		}
		dst, _ := m.pick(r)
		m.pm.CopyFrame(dst, src)
		copy(m.pages[dst], m.pages[src])
	case 8: // snapshot a frame's content into a detached handle
		id, ok := m.pick(r)
		if !ok {
			return
		}
		data := make([]byte, DefaultPageSize)
		copy(data, m.pages[id])
		m.snaps = append(m.snaps, diffSnap{c: m.pm.Snapshot(id), data: data})
	case 9: // consume a handle: restore into a live frame, or release
		if len(m.snaps) == 0 {
			return
		}
		i := r.Intn(len(m.snaps))
		s := m.snaps[i]
		m.snaps = append(m.snaps[:i], m.snaps[i+1:]...)
		if id, ok := m.pick(r); ok && r.Intn(2) == 0 {
			m.pm.Restore(id, s.c)
			copy(m.pages[id], s.data)
		} else {
			m.pm.Release(s.c)
		}
	}
}

// verify checks every observable of every live frame against the model, and
// pairwise Equal/Compare over a handful of frames.
func (m *diffModel) verify(t *testing.T) {
	t.Helper()
	pm := m.pm
	ids := make([]FrameID, 0, len(m.pages))
	for id := range m.pages {
		ids = append(ids, id)
	}
	for _, id := range ids {
		want := m.pages[id]
		if !bytes.Equal(pm.Bytes(id), want) {
			t.Fatalf("frame %d: Bytes diverged from model", id)
		}
		if got, wantSum := pm.Checksum(id), ChecksumBytes(want); got != wantSum {
			t.Fatalf("frame %d: Checksum %#x, model %#x", id, got, wantSum)
		}
		wantZero := true
		for _, b := range want {
			if b != 0 {
				wantZero = false
				break
			}
		}
		if pm.IsZero(id) != wantZero {
			t.Fatalf("frame %d: IsZero %v, model %v", id, pm.IsZero(id), wantZero)
		}
	}
	for i, a := range ids {
		for _, b := range ids[i:] {
			wantEq := bytes.Equal(m.pages[a], m.pages[b])
			if pm.Equal(a, b) != wantEq {
				t.Fatalf("Equal(%d,%d)=%v, model %v", a, b, pm.Equal(a, b), wantEq)
			}
			if got, want := pm.Compare(a, b), bytes.Compare(m.pages[a], m.pages[b]); got != want {
				t.Fatalf("Compare(%d,%d)=%d, model %d", a, b, got, want)
			}
		}
	}
	m.checkBlobs(t)
}

// checkBlobs censuses every literal blob reachable from frame descriptors
// and live handles and compares refcounts and store gauges.
func (m *diffModel) checkBlobs(t *testing.T) {
	t.Helper()
	want := make(map[*blob]int32)
	for i := range m.pm.frames {
		f := &m.pm.frames[i]
		if f.refcnt > 0 && f.desc.kind == descLiteral {
			want[f.desc.blob]++
		}
	}
	for _, s := range m.snaps {
		if s.c.d.kind == descLiteral {
			want[s.c.d.blob]++
		}
	}
	interned := 0
	for b, n := range want {
		if b.refs != n {
			t.Fatalf("blob %p: refs %d, census %d", b, b.refs, n)
		}
		if b.interned {
			interned++
		}
	}
	cs := m.pm.cs
	if cs.blobs != len(want) || cs.internedBlobs != interned {
		t.Fatalf("store gauges blobs=%d interned=%d, census blobs=%d interned=%d",
			cs.blobs, cs.internedBlobs, len(want), interned)
	}
	tabled := 0
	for _, bucket := range cs.table {
		tabled += len(bucket)
	}
	if tabled != interned {
		t.Fatalf("content table holds %d blobs, census %d interned", tabled, interned)
	}
}

// drain releases every reference and handle; the pool must come back to
// fresh with an empty content store.
func (m *diffModel) drain(t *testing.T) {
	t.Helper()
	for _, s := range m.snaps {
		m.pm.Release(s.c)
	}
	m.snaps = nil
	for id, n := range m.refs {
		for i := 0; i < n; i++ {
			m.pm.DecRef(id)
		}
	}
	m.refs = make(map[FrameID]int)
	m.pages = make(map[FrameID][]byte)
	if m.pm.FramesInUse() != 0 {
		t.Fatalf("drained pool still holds %d frames", m.pm.FramesInUse())
	}
	cs := m.pm.cs
	if cs.blobs != 0 || cs.internedBlobs != 0 || cs.blobBytes != 0 || len(cs.table) != 0 {
		t.Fatalf("drained store not empty: blobs=%d interned=%d bytes=%d table=%d",
			cs.blobs, cs.internedBlobs, cs.blobBytes, len(cs.table))
	}
}

// TestContentStoreDifferential is the satellite property test: long random
// operation sequences, model-checked throughout.
func TestContentStoreDifferential(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		r := rand.New(rand.NewSource(seed))
		m := newDiffModel(64)
		for step := 0; step < 3000; step++ {
			m.step(r)
			if step%200 == 0 {
				m.verify(t)
			}
		}
		m.verify(t)
		m.drain(t)
	}
}

// FuzzContentStoreDifferential replays fuzzer-chosen operation streams
// through the same model; `go test` runs the seed corpus, `go test -fuzz`
// explores further.
func FuzzContentStoreDifferential(f *testing.F) {
	f.Add(int64(42), 500)
	f.Add(int64(7), 2000)
	f.Fuzz(func(t *testing.T, seed int64, steps int) {
		if steps < 0 || steps > 4000 {
			return
		}
		r := rand.New(rand.NewSource(seed))
		m := newDiffModel(32)
		for i := 0; i < steps; i++ {
			m.step(r)
			if i%500 == 0 {
				m.verify(t)
			}
		}
		m.verify(t)
		m.drain(t)
	})
}

// TestChecksumSeedMatchesMaterialized pins the streamed seeded checksum to
// the byte-materialized reference for a spread of seeds and sizes.
func TestChecksumSeedMatchesMaterialized(t *testing.T) {
	for _, n := range []int{8, 24, 4096, 4100, 16384} {
		for s := uint64(0); s < 64; s++ {
			seed := Mix(Seed(s * 0x9e37))
			if got, want := ChecksumSeed(seed, n), ChecksumBytes(FillBytes(n, seed)); got != want {
				t.Fatalf("seed %#x n=%d: ChecksumSeed %#x, materialized %#x", uint64(seed), n, got, want)
			}
		}
	}
}
