package mem

import "testing"

// Huge-run boundary behavior of hugeHead and its callers: the first and last
// subpage of the block must behave exactly like the middle, and pages just
// outside the run must be untouched by its guards.

func TestHugeRunBoundaryLookup(t *testing.T) {
	pt := NewPageTable()
	pt.InstallHuge(HugePages, PTE{Frame: 512, Writable: true})

	// First subpage (the head itself).
	e, ok := pt.Lookup(HugePages)
	if !ok || !e.Huge || e.Frame != 512 {
		t.Fatalf("head lookup = %+v ok=%v", e, ok)
	}
	// Last subpage of the run.
	e, ok = pt.Lookup(2*HugePages - 1)
	if !ok || !e.Huge || e.Frame != 512+FrameID(HugePages-1) {
		t.Fatalf("last-subpage lookup = %+v ok=%v", e, ok)
	}
	// One page before and one page after the run.
	if _, ok := pt.Lookup(HugePages - 1); ok {
		t.Fatal("page before the run mapped")
	}
	if _, ok := pt.Lookup(2 * HugePages); ok {
		t.Fatal("page after the run mapped")
	}
}

func TestHugeRunBoundarySetDelete(t *testing.T) {
	pt := NewPageTable()
	pt.InstallHuge(HugePages, PTE{Frame: 512})

	// Set and Delete inside the run panic at both extremes and in the middle.
	mustPanic(t, "Set at run head", func() { pt.Set(HugePages, PTE{Frame: 9}) })
	mustPanic(t, "Set at run middle", func() { pt.Set(HugePages+HugePages/2, PTE{Frame: 9}) })
	mustPanic(t, "Set at last subpage", func() { pt.Set(2*HugePages-1, PTE{Frame: 9}) })
	mustPanic(t, "Delete at run head", func() { pt.Delete(HugePages) })
	mustPanic(t, "Delete at last subpage", func() { pt.Delete(2*HugePages - 1) })

	// The pages flanking the run are ordinary.
	pt.Set(HugePages-1, PTE{Frame: 100})
	pt.Set(2*HugePages, PTE{Frame: 101})
	if _, ok := pt.Delete(HugePages - 1); !ok {
		t.Fatal("delete before the run failed")
	}
	if _, ok := pt.Delete(2 * HugePages); !ok {
		t.Fatal("delete after the run failed")
	}
}

func TestHugeHeadsAcrossSplitRecollapse(t *testing.T) {
	pt := NewPageTable()
	pt.InstallHuge(0, PTE{Frame: 0})
	pt.InstallHuge(HugePages, PTE{Frame: 512})
	if pt.HugeMappings() != 2 {
		t.Fatalf("HugeMappings = %d, want 2", pt.HugeMappings())
	}
	pt.SplitHuge(0)
	if pt.HugeMappings() != 1 {
		t.Fatalf("HugeMappings = %d after split, want 1", pt.HugeMappings())
	}
	// Re-collapse the split run: the base entries are dropped and the head
	// count comes back.
	pt.InstallHuge(0, PTE{Frame: 1024})
	if pt.HugeMappings() != 2 {
		t.Fatalf("HugeMappings = %d after re-collapse, want 2", pt.HugeMappings())
	}
	if pt.Len() != 2 {
		t.Fatalf("Len = %d after re-collapse, want 2 heads", pt.Len())
	}
	if pt.PresentCount() != 2*HugePages {
		t.Fatalf("present = %d, want %d", pt.PresentCount(), 2*HugePages)
	}
}

// Per-subpage carve-outs (FHPM).

func TestSplitHugeSubpagesCarvesBaseEntries(t *testing.T) {
	pt := NewPageTable()
	pt.InstallHuge(0, PTE{Frame: 1024, Writable: true})
	before := pt.PresentCount()

	pt.SplitHugeSubpages(0, []VPN{3, HugePages - 1})
	if pt.PresentCount() != before {
		t.Fatalf("present changed across carve: %d -> %d", before, pt.PresentCount())
	}
	if pt.HugeMappings() != 1 {
		t.Fatal("huge head did not survive the partial split")
	}
	if got := pt.CarvedCount(0); got != 2 {
		t.Fatalf("CarvedCount = %d, want 2", got)
	}
	for _, vpn := range []VPN{3, HugePages - 1} {
		if !pt.CarvedAt(vpn) {
			t.Fatalf("CarvedAt(%d) = false", vpn)
		}
		e, ok := pt.Lookup(vpn)
		if !ok || e.Huge || e.Frame != 1024+FrameID(vpn) || !e.Writable {
			t.Fatalf("carved vpn %d lookup = %+v ok=%v", vpn, e, ok)
		}
	}
	if got := pt.CarvedSubpages(0); len(got) != 2 || got[0] != 3 || got[1] != HugePages-1 {
		t.Fatalf("CarvedSubpages = %v", got)
	}
	// The uncarved remainder still answers through the head.
	if e, ok := pt.Lookup(4); !ok || !e.Huge {
		t.Fatalf("uncarved subpage lookup = %+v ok=%v", e, ok)
	}

	// Carved subpages are ordinary base pages: Set and Delete work.
	pt.Set(3, PTE{Frame: 9000})
	if e, _ := pt.Lookup(3); e.Frame != 9000 {
		t.Fatal("Set on carved subpage did not stick")
	}
	if _, ok := pt.Delete(HugePages - 1); !ok {
		t.Fatal("Delete of carved subpage failed")
	}
	if pt.PresentCount() != before-1 {
		t.Fatalf("present = %d after deleting a carved page, want %d", pt.PresentCount(), before-1)
	}
}

func TestSplitHugeSubpagesGuards(t *testing.T) {
	pt := NewPageTable()
	pt.InstallHuge(0, PTE{Frame: 1024})
	mustPanic(t, "carve of head subpage", func() { pt.SplitHugeSubpages(0, []VPN{0}) })
	mustPanic(t, "carve outside the run", func() { pt.SplitHugeSubpages(0, []VPN{HugePages}) })
	mustPanic(t, "carve of non-huge head", func() { pt.SplitHugeSubpages(HugePages, []VPN{HugePages + 1}) })
	pt.SplitHugeSubpages(0, []VPN{7})
	mustPanic(t, "double carve", func() { pt.SplitHugeSubpages(0, []VPN{7}) })
	mustPanic(t, "uncarve of uncarved subpage", func() { pt.UncarveSubpage(0, 8) })
}

func TestUncarveSubpageRestoresCoverage(t *testing.T) {
	pt := NewPageTable()
	pt.InstallHuge(0, PTE{Frame: 1024, Writable: true})
	before := pt.PresentCount()
	pt.SplitHugeSubpages(0, []VPN{5})

	pt.UncarveSubpage(0, 5)
	if pt.CarvedCount(0) != 0 || pt.CarvedAt(5) {
		t.Fatal("carve state survived uncarve")
	}
	if pt.PresentCount() != before {
		t.Fatalf("present = %d after uncarve, want %d", pt.PresentCount(), before)
	}
	// Coverage is synthesized through the head again.
	e, ok := pt.Lookup(5)
	if !ok || !e.Huge || e.Frame != 1029 {
		t.Fatalf("lookup after uncarve = %+v ok=%v", e, ok)
	}

	// An absent carved page (deleted base entry) uncarves too: the head's
	// coverage re-materializes it, and present grows by one.
	pt.SplitHugeSubpages(0, []VPN{9})
	pt.Delete(9)
	if pt.PresentCount() != before-1 {
		t.Fatalf("present = %d after deleting carved page", pt.PresentCount())
	}
	pt.UncarveSubpage(0, 9)
	if pt.PresentCount() != before {
		t.Fatalf("present = %d after uncarving absent page, want %d", pt.PresentCount(), before)
	}
}

func TestSplitHugeSkipsCarvedSubpages(t *testing.T) {
	pt := NewPageTable()
	pt.InstallHuge(0, PTE{Frame: 1024})
	pt.SplitHugeSubpages(0, []VPN{2})
	// The carved page was remapped elsewhere (COW, merge) in the meantime.
	pt.Set(2, PTE{Frame: 7777})
	before := pt.PresentCount()

	pt.SplitHuge(0)
	if pt.HugeMappings() != 0 {
		t.Fatal("huge mapping survived full split")
	}
	if e, _ := pt.Lookup(2); e.Frame != 7777 {
		t.Fatalf("carved entry clobbered by full split: %+v", e)
	}
	if pt.PresentCount() != before {
		t.Fatalf("present changed across split: %d -> %d", before, pt.PresentCount())
	}
	if pt.Len() != HugePages {
		t.Fatalf("Len = %d after split, want %d", pt.Len(), HugePages)
	}
}

func TestInstallHugeResetsCarveState(t *testing.T) {
	pt := NewPageTable()
	pt.InstallHuge(0, PTE{Frame: 1024})
	pt.SplitHugeSubpages(0, []VPN{4})
	pt.NoteSubpageDirty(4)
	pt.SplitHuge(0)
	for i := VPN(0); i < HugePages; i++ {
		if i != 4 {
			pt.Delete(i)
		}
	}
	pt.Delete(4)
	// A fresh collapse of the same range starts clean.
	pt.InstallHuge(0, PTE{Frame: 2048})
	if pt.CarvedCount(0) != 0 || pt.CarvedAt(4) {
		t.Fatal("carve state leaked into the fresh collapse")
	}
	if pt.SubpageHeat(4) != 0 {
		t.Fatal("heat leaked into the fresh collapse")
	}
}

// Per-subpage heat (the FHPM demote/promote signal).

func TestSubpageHeatFeedAndDecay(t *testing.T) {
	pt := NewPageTable()
	pt.InstallHuge(0, PTE{Frame: 1024})
	pt.NoteSubpageDirty(3)
	pt.NoteSubpageDirty(3)
	pt.NoteSubpageDirty(HugePages - 1)
	// Outside any run: a no-op, not a panic.
	pt.NoteSubpageDirty(5 * HugePages)
	if got := pt.SubpageHeat(3); got != 2 {
		t.Fatalf("SubpageHeat(3) = %d, want 2", got)
	}

	age, quiet := pt.DecaySubpageHeat(0)
	if age != 1 || quiet != 0 {
		t.Fatalf("decay #1: age=%d quiet=%d, want 1,0", age, quiet)
	}
	if got := pt.SubpageHeat(3); got != 1 {
		t.Fatalf("heat after decay = %d, want 1", got)
	}
	// Two more decays drain the remaining heat; quiet starts counting only
	// once a whole visit saw zero total heat.
	if _, quiet := pt.DecaySubpageHeat(0); quiet != 0 {
		t.Fatalf("quiet = %d while heat remained", quiet)
	}
	if _, quiet := pt.DecaySubpageHeat(0); quiet != 1 {
		t.Fatalf("quiet = %d on first all-quiet visit, want 1", quiet)
	}
	// A write resets the quiet clock.
	pt.NoteSubpageDirty(7)
	if _, quiet := pt.DecaySubpageHeat(0); quiet != 0 {
		t.Fatalf("quiet = %d after a write, want 0", quiet)
	}
}

func TestCarveResetsQuietClock(t *testing.T) {
	pt := NewPageTable()
	pt.InstallHuge(0, PTE{Frame: 1024})
	for i := 0; i < 3; i++ {
		pt.DecaySubpageHeat(0)
	}
	if _, quiet := pt.DecaySubpageHeat(0); quiet != 4 {
		t.Fatalf("quiet = %d before carve, want 4", quiet)
	}
	// A demotion restarts the promotion window from zero.
	pt.SplitHugeSubpages(0, []VPN{6})
	if _, quiet := pt.DecaySubpageHeat(0); quiet != 1 {
		t.Fatalf("quiet = %d right after carve, want 1", quiet)
	}
}

// Partial release and reclaim of huge-block frames (PhysMem side).

func TestReleaseReclaimHugeFrame(t *testing.T) {
	pm := NewPhysMem(int64(2*HugePages)*DefaultPageSize, DefaultPageSize)
	base, err := pm.AllocHugeBlock()
	if err != nil {
		t.Fatalf("AllocHugeBlock: %v", err)
	}
	if pm.HugeBlocks() != 1 || pm.HugeFrames() != HugePages {
		t.Fatalf("blocks=%d hugeFrames=%d after alloc", pm.HugeBlocks(), pm.HugeFrames())
	}

	carved := base + 17
	pm.ReleaseHugeFrame(carved)
	if pm.IsHugeFrame(carved) {
		t.Fatal("released frame still huge")
	}
	if pm.HugeBlocks() != 1 {
		t.Fatal("block dissolved after one release")
	}
	if pm.HugeFrames() != HugePages-1 {
		t.Fatalf("hugeFrames = %d, want %d", pm.HugeFrames(), HugePages-1)
	}
	mustPanic(t, "double release", func() { pm.ReleaseHugeFrame(carved) })

	// A released frame is an ordinary refcounted frame: free it and claim it
	// back by id.
	pm.DecRef(carved)
	if !pm.IsFree(carved) {
		t.Fatal("freed carved frame not free")
	}
	if !pm.ClaimSpecific(carved) {
		t.Fatal("ClaimSpecific of free frame failed")
	}
	if pm.ClaimSpecific(carved) {
		t.Fatal("ClaimSpecific of in-use frame succeeded")
	}

	// Reclaim restores huge-block membership.
	pm.ReclaimHugeFrame(carved)
	if !pm.IsHugeFrame(carved) || pm.HugeFrames() != HugePages {
		t.Fatalf("reclaim: huge=%v hugeFrames=%d", pm.IsHugeFrame(carved), pm.HugeFrames())
	}
	mustPanic(t, "reclaim of already-huge frame", func() { pm.ReclaimHugeFrame(carved) })
}

func TestBlockDissolvesWhenLastHugeFrameReleased(t *testing.T) {
	pm := NewPhysMem(int64(2*HugePages)*DefaultPageSize, DefaultPageSize)
	base, err := pm.AllocHugeBlock()
	if err != nil {
		t.Fatalf("AllocHugeBlock: %v", err)
	}
	for i := 0; i < HugePages; i++ {
		pm.ReleaseHugeFrame(base + FrameID(i))
	}
	if pm.HugeBlocks() != 0 || pm.HugeFrames() != 0 {
		t.Fatalf("blocks=%d hugeFrames=%d after releasing all", pm.HugeBlocks(), pm.HugeFrames())
	}
	// Reclaiming one frame re-forms the (partial) block.
	pm.ReclaimHugeFrame(base)
	if pm.HugeBlocks() != 1 || pm.HugeFrames() != 1 {
		t.Fatalf("blocks=%d hugeFrames=%d after reclaim", pm.HugeBlocks(), pm.HugeFrames())
	}
}

func TestSplitHugeBlockSkipsCarvedFrames(t *testing.T) {
	pm := NewPhysMem(int64(2*HugePages)*DefaultPageSize, DefaultPageSize)
	base, err := pm.AllocHugeBlock()
	if err != nil {
		t.Fatalf("AllocHugeBlock: %v", err)
	}
	// Carve two frames out; free one of them entirely (SplitHugeBlock must
	// not touch freed frames).
	pm.ReleaseHugeFrame(base + 1)
	pm.ReleaseHugeFrame(base + 2)
	pm.DecRef(base + 2)

	pm.SplitHugeBlock(base)
	if pm.HugeBlocks() != 0 || pm.HugeFrames() != 0 {
		t.Fatalf("blocks=%d hugeFrames=%d after split", pm.HugeBlocks(), pm.HugeFrames())
	}
	if pm.IsHugeFrame(base) || pm.IsHugeFrame(base+1) {
		t.Fatal("huge flag survived split")
	}
	if !pm.IsFree(base + 2) {
		t.Fatal("freed carved frame disturbed by split")
	}
	mustPanic(t, "split of non-huge block", func() { pm.SplitHugeBlock(base) })
}
