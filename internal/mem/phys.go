package mem

import (
	"bytes"
	"errors"
	"fmt"
)

// DefaultPageSize is the page size used throughout the simulator. It matches
// the 4 KiB base pages of the paper's x86 and POWER measurement platforms.
const DefaultPageSize = 4096

// HugePages is the number of base pages covered by one transparent huge
// page: 2 MiB / 4 KiB = 512, as on the paper's x86 hosts. Huge blocks are
// HugePages-aligned runs of frames allocated and mapped as one unit.
const HugePages = 512

// FrameID names a host physical page frame. NilFrame is the zero-value
// sentinel for "no frame".
type FrameID uint32

// NilFrame is an invalid frame id; page-table entries that are not present
// carry it.
const NilFrame FrameID = ^FrameID(0)

// ErrOutOfMemory is returned by Alloc when every frame is in use. The
// hypervisor turns this condition into swapping.
var ErrOutOfMemory = errors.New("mem: out of physical memory")

// frame is a single physical page. A nil data slice means the page is
// all-zero; the backing bytes are materialized lazily on first write, so an
// untouched guest costs almost nothing.
type frame struct {
	data   []byte
	refcnt int32
	ksm    bool // frame is a KSM stable-tree page (write-protected, shared)
	// huge marks a frame inside an allocated huge block: one huge PTE maps
	// the whole aligned run, so the frame is never shared or freed
	// individually (SplitHugeBlock dissolves the block first).
	huge bool
	// inFree marks a frame id as live on the free stack. AllocHugeBlock
	// claims free frames without removing their stack entries, so Alloc
	// validates entries lazily against this flag.
	inFree bool
	// sum caches the FNV-1a checksum of data; invalidated on every write.
	// KSM's volatility gate checksums every scanned page each pass, and the
	// cache makes re-scanning untouched pages O(1).
	sum      uint64
	sumValid bool
}

// PhysMem is a pool of physical page frames with reference counting.
//
// The pool is intentionally not safe for concurrent use: the simulator is
// single-threaded (see simclock) so that runs are reproducible.
type PhysMem struct {
	pageSize int
	frames   []frame
	// free is a stack of candidate frame ids. It may contain stale entries
	// for frames AllocHugeBlock claimed in place; the per-frame inFree flag
	// is authoritative and freeCount counts the frames actually free.
	free      []FrameID
	freeCount int
	inUse     int

	// blockFree tracks, per aligned HugePages block, how many of its frames
	// are free — the huge-block allocator picks the lowest fully-free block.
	// Frames past the last whole block are never huge-backed.
	blockFree  []int
	hugeBlocks int

	zero    []byte // canonical zero page for comparisons
	zeroSum uint64 // checksum of the zero page, precomputed per pool

	// Statistics.
	allocs       uint64
	frees        uint64
	materialized uint64
	// Gauges maintained at state transitions so telemetry sampling never
	// has to walk the frame array.
	ksmFrames  int // frames flagged as KSM stable pages
	zeroFrames int // in-use frames still backed by the lazy zero page
}

// NewPhysMem creates a pool holding totalBytes of physical memory divided
// into pages of pageSize bytes. totalBytes is rounded down to a whole number
// of pages; at least one page is required.
func NewPhysMem(totalBytes int64, pageSize int) *PhysMem {
	if pageSize <= 0 || pageSize%8 != 0 {
		panic(fmt.Sprintf("mem: invalid page size %d", pageSize))
	}
	n := totalBytes / int64(pageSize)
	if n < 1 {
		panic(fmt.Sprintf("mem: total %d smaller than one page", totalBytes))
	}
	pm := &PhysMem{
		pageSize: pageSize,
		frames:   make([]frame, n),
		free:     make([]FrameID, 0, n),
		zero:     make([]byte, pageSize),
	}
	// Precomputed here rather than cached in a package-level map: pools in
	// concurrently running clusters checksum zero frames without sharing any
	// mutable state.
	pm.zeroSum = ChecksumBytes(pm.zero)
	// Push frames so that low frame numbers are handed out first; this keeps
	// frame assignment deterministic and debuggable.
	for i := int64(n) - 1; i >= 0; i-- {
		pm.free = append(pm.free, FrameID(i))
		pm.frames[i].inFree = true
	}
	pm.freeCount = int(n)
	pm.blockFree = make([]int, n/HugePages)
	for i := range pm.blockFree {
		pm.blockFree[i] = HugePages
	}
	return pm
}

// PageSize reports the page size in bytes.
func (pm *PhysMem) PageSize() int { return pm.pageSize }

// TotalFrames reports the number of frames in the pool.
func (pm *PhysMem) TotalFrames() int { return len(pm.frames) }

// FramesInUse reports how many frames are currently allocated.
func (pm *PhysMem) FramesInUse() int { return pm.inUse }

// FreeFrames reports how many frames are available.
func (pm *PhysMem) FreeFrames() int { return pm.freeCount }

// BytesInUse reports allocated physical memory in bytes.
func (pm *PhysMem) BytesInUse() int64 { return int64(pm.inUse) * int64(pm.pageSize) }

// KSMFrames reports how many frames are currently KSM stable pages.
func (pm *PhysMem) KSMFrames() int { return pm.ksmFrames }

// ZeroFrames reports how many in-use frames are still lazily zero (never
// materialized, or reset by ZeroFrame). A frame whose materialized bytes
// happen to be all zero does not count; the gauge tracks the untouched set.
func (pm *PhysMem) ZeroFrames() int { return pm.zeroFrames }

// HugeBlocks reports how many huge blocks are currently allocated.
func (pm *PhysMem) HugeBlocks() int { return pm.hugeBlocks }

// HugeFrames reports how many frames currently back huge mappings.
func (pm *PhysMem) HugeFrames() int { return pm.hugeBlocks * HugePages }

// IsHugeFrame reports whether the frame belongs to an allocated huge block.
func (pm *PhysMem) IsHugeFrame(id FrameID) bool { return pm.frameAt(id).huge }

// noteTaken and noteFreed maintain the free count and the per-block free
// gauges at every frame state transition.
func (pm *PhysMem) noteTaken(id FrameID) {
	pm.frames[id].inFree = false
	pm.freeCount--
	if b := int(id) / HugePages; b < len(pm.blockFree) {
		pm.blockFree[b]--
	}
}

func (pm *PhysMem) noteFreed(id FrameID) {
	pm.frames[id].inFree = true
	pm.freeCount++
	if b := int(id) / HugePages; b < len(pm.blockFree) {
		pm.blockFree[b]++
	}
}

// Alloc hands out a zeroed frame with refcount 1.
func (pm *PhysMem) Alloc() (FrameID, error) {
	if pm.freeCount == 0 {
		return NilFrame, ErrOutOfMemory
	}
	// Pop until a live entry surfaces: entries for frames that
	// AllocHugeBlock claimed in place are skipped lazily here. freeCount > 0
	// guarantees at least one live entry remains on the stack.
	var id FrameID
	for {
		id = pm.free[len(pm.free)-1]
		pm.free = pm.free[:len(pm.free)-1]
		if pm.frames[id].inFree {
			break
		}
	}
	pm.noteTaken(id)
	f := &pm.frames[id]
	f.data = nil
	f.refcnt = 1
	f.ksm = false
	f.huge = false
	f.sumValid = false
	pm.inUse++
	pm.allocs++
	pm.zeroFrames++
	return id, nil
}

// AllocHugeBlock claims one aligned run of HugePages free frames — the
// backing of a transparent huge page. Every frame comes back zeroed with
// refcount 1 and the huge flag set. The scan prefers the lowest fully-free
// block, keeping frame assignment deterministic; there is no defragmentation,
// so a fragmented pool returns ErrOutOfMemory even when enough scattered
// frames are free (exactly khugepaged's allocation-failure mode).
func (pm *PhysMem) AllocHugeBlock() (FrameID, error) {
	for b, n := range pm.blockFree {
		if n != HugePages {
			continue
		}
		base := FrameID(b * HugePages)
		for i := 0; i < HugePages; i++ {
			id := base + FrameID(i)
			pm.noteTaken(id)
			f := &pm.frames[id]
			f.data = nil
			f.refcnt = 1
			f.ksm = false
			f.huge = true
			f.sumValid = false
		}
		pm.inUse += HugePages
		pm.allocs += HugePages
		pm.zeroFrames += HugePages
		pm.hugeBlocks++
		return base, nil
	}
	return NilFrame, ErrOutOfMemory
}

// SplitHugeBlock dissolves a huge block back into HugePages independent base
// frames; contents and refcounts are preserved. The caller re-points its
// page tables at the now-ordinary frames (see hypervisor.VMProcess.SplitHuge).
func (pm *PhysMem) SplitHugeBlock(base FrameID) {
	if base%HugePages != 0 {
		panic(fmt.Sprintf("mem: SplitHugeBlock(%d) not block-aligned", base))
	}
	for i := 0; i < HugePages; i++ {
		f := pm.frameAt(base + FrameID(i))
		if !f.huge {
			panic(fmt.Sprintf("mem: SplitHugeBlock(%d): frame %d not huge", base, int(base)+i))
		}
		f.huge = false
	}
	pm.hugeBlocks--
}

func (pm *PhysMem) frameAt(id FrameID) *frame {
	if int(id) >= len(pm.frames) {
		panic(fmt.Sprintf("mem: frame %d out of range", id))
	}
	f := &pm.frames[id]
	if f.refcnt <= 0 {
		panic(fmt.Sprintf("mem: use of free frame %d", id))
	}
	return f
}

// IncRef adds a reference to a live frame (used when a page becomes shared).
// Huge-block frames are mapped by exactly one huge PTE and never shared.
func (pm *PhysMem) IncRef(id FrameID) {
	f := pm.frameAt(id)
	if f.huge {
		panic(fmt.Sprintf("mem: IncRef on huge-block frame %d", id))
	}
	f.refcnt++
}

// RefCount reports the current reference count of a live frame.
func (pm *PhysMem) RefCount(id FrameID) int {
	return int(pm.frameAt(id).refcnt)
}

// LiveRefCount reports a frame's reference count, or 0 for a free frame.
// Unlike RefCount it never panics, so the leak checker can sweep the whole
// pool comparing actual counts against expectations.
func (pm *PhysMem) LiveRefCount(id FrameID) int {
	if int(id) >= len(pm.frames) {
		panic(fmt.Sprintf("mem: frame %d out of range", id))
	}
	if n := pm.frames[id].refcnt; n > 0 {
		return int(n)
	}
	return 0
}

// DecRef drops a reference; the frame returns to the free list when the
// count reaches zero. Huge-block frames cannot be freed individually — the
// owner must SplitHugeBlock first.
func (pm *PhysMem) DecRef(id FrameID) {
	f := pm.frameAt(id)
	if f.huge {
		panic(fmt.Sprintf("mem: DecRef on huge-block frame %d (split the block first)", id))
	}
	f.refcnt--
	if f.refcnt == 0 {
		if f.data == nil {
			pm.zeroFrames--
		}
		if f.ksm {
			pm.ksmFrames--
		}
		f.data = nil
		f.ksm = false
		pm.free = append(pm.free, id)
		pm.noteFreed(id)
		pm.inUse--
		pm.frees++
	}
}

// SetKSM marks or clears the frame's KSM stable-page flag. KSM stable pages
// are shared copy-on-write; the flag lets the analyzer attribute savings.
func (pm *PhysMem) SetKSM(id FrameID, v bool) {
	f := pm.frameAt(id)
	if v && f.huge {
		panic(fmt.Sprintf("mem: SetKSM on huge-block frame %d", id))
	}
	if v && !f.ksm {
		pm.ksmFrames++
	} else if !v && f.ksm {
		pm.ksmFrames--
	}
	f.ksm = v
}

// IsKSM reports whether the frame is a KSM stable page.
func (pm *PhysMem) IsKSM(id FrameID) bool { return pm.frameAt(id).ksm }

// Bytes returns a read-only view of the frame contents. All-zero frames
// return the canonical zero page; callers must not mutate the result.
func (pm *PhysMem) Bytes(id FrameID) []byte {
	f := pm.frameAt(id)
	if f.data == nil {
		return pm.zero
	}
	return f.data
}

// IsZero reports whether the frame content is all zero bytes. Lazily
// materialized frames answer without scanning.
func (pm *PhysMem) IsZero(id FrameID) bool {
	f := pm.frameAt(id)
	if f.data == nil {
		return true
	}
	for _, b := range f.data {
		if b != 0 {
			return false
		}
	}
	return true
}

// Write copies data into the frame at the given offset, materializing the
// backing bytes if needed. Writing to a KSM stable page is a bug in the
// caller (the hypervisor must break COW first) and panics.
func (pm *PhysMem) Write(id FrameID, off int, data []byte) {
	f := pm.frameAt(id)
	if f.ksm {
		panic(fmt.Sprintf("mem: direct write to KSM stable frame %d", id))
	}
	if off < 0 || off+len(data) > pm.pageSize {
		panic(fmt.Sprintf("mem: write [%d,%d) outside page of %d bytes", off, off+len(data), pm.pageSize))
	}
	if f.data == nil {
		allZero := true
		for _, b := range data {
			if b != 0 {
				allZero = false
				break
			}
		}
		if allZero {
			return // zero write to a zero page is a no-op
		}
		f.data = make([]byte, pm.pageSize)
		pm.materialized++
		pm.zeroFrames--
	}
	copy(f.data[off:], data)
	f.sumValid = false
}

// FillFrame overwrites the whole frame with a deterministic byte stream.
func (pm *PhysMem) FillFrame(id FrameID, seed Seed) {
	f := pm.frameAt(id)
	if f.ksm {
		panic(fmt.Sprintf("mem: direct fill of KSM stable frame %d", id))
	}
	if f.data == nil {
		f.data = make([]byte, pm.pageSize)
		pm.materialized++
		pm.zeroFrames--
	}
	Fill(f.data, seed)
	f.sumValid = false
}

// ZeroFrame resets the frame to the canonical zero page (dropping the
// backing bytes). GC uses this when it sweeps free regions.
func (pm *PhysMem) ZeroFrame(id FrameID) {
	f := pm.frameAt(id)
	if f.ksm {
		panic(fmt.Sprintf("mem: direct zero of KSM stable frame %d", id))
	}
	if f.data != nil {
		pm.zeroFrames++
	}
	f.data = nil
	f.sumValid = false
}

// CopyFrame copies src's content into dst (used by COW breaks and swap-in).
func (pm *PhysMem) CopyFrame(dst, src FrameID) {
	if dst == src {
		return
	}
	sf := pm.frameAt(src)
	df := pm.frameAt(dst)
	if df.ksm {
		panic(fmt.Sprintf("mem: copy into KSM stable frame %d", dst))
	}
	df.sumValid = false
	if sf.data == nil {
		if df.data != nil {
			pm.zeroFrames++
		}
		df.data = nil
		return
	}
	if df.data == nil {
		df.data = make([]byte, pm.pageSize)
		pm.materialized++
		pm.zeroFrames--
	}
	copy(df.data, sf.data)
}

// Equal reports whether two frames have byte-identical contents.
func (pm *PhysMem) Equal(a, b FrameID) bool {
	if a == b {
		return true
	}
	fa, fb := pm.frameAt(a), pm.frameAt(b)
	switch {
	case fa.data == nil && fb.data == nil:
		return true
	case fa.data == nil:
		return pm.IsZero(b)
	case fb.data == nil:
		return pm.IsZero(a)
	}
	return bytes.Equal(fa.data, fb.data)
}

// Compare orders two frames by lexicographic byte comparison; the KSM
// stable and unstable trees use it as their key order.
func (pm *PhysMem) Compare(a, b FrameID) int {
	if a == b {
		return 0
	}
	return bytes.Compare(pm.Bytes(a), pm.Bytes(b))
}

// Checksum computes the FNV-1a checksum of the frame contents, cached
// until the next write.
func (pm *PhysMem) Checksum(id FrameID) uint64 {
	f := pm.frameAt(id)
	if f.sumValid {
		return f.sum
	}
	if f.data == nil {
		f.sum = pm.zeroSum
	} else {
		f.sum = ChecksumBytes(f.data)
	}
	f.sumValid = true
	return f.sum
}

// Stats reports cumulative allocator statistics.
type Stats struct {
	Allocs       uint64
	Frees        uint64
	Materialized uint64
	InUse        int
	Free         int
}

// Stats returns a snapshot of allocator counters.
func (pm *PhysMem) Stats() Stats {
	return Stats{
		Allocs:       pm.allocs,
		Frees:        pm.frees,
		Materialized: pm.materialized,
		InUse:        pm.inUse,
		Free:         pm.freeCount,
	}
}
