package mem

import (
	"bytes"
	"errors"
	"fmt"
)

// DefaultPageSize is the page size used throughout the simulator. It matches
// the 4 KiB base pages of the paper's x86 and POWER measurement platforms.
const DefaultPageSize = 4096

// HugePages is the number of base pages covered by one transparent huge
// page: 2 MiB / 4 KiB = 512, as on the paper's x86 hosts. Huge blocks are
// HugePages-aligned runs of frames allocated and mapped as one unit.
const HugePages = 512

// FrameID names a host physical page frame. NilFrame is the zero-value
// sentinel for "no frame".
type FrameID uint32

// NilFrame is an invalid frame id; page-table entries that are not present
// carry it.
const NilFrame FrameID = ^FrameID(0)

// ErrOutOfMemory is returned by Alloc when every frame is in use. The
// hypervisor turns this condition into swapping.
var ErrOutOfMemory = errors.New("mem: out of physical memory")

// frame is a single physical page. Content lives behind the desc content
// descriptor (see store.go): the zero-value desc is the all-zero page, a
// seeded desc materializes lazily on first read, and literal descs share
// refcounted blobs, so an untouched guest costs almost nothing and
// duplicate content is stored once.
type frame struct {
	desc   desc
	refcnt int32
	ksm    bool // frame is a KSM stable-tree page (write-protected, shared)
	// huge marks a frame inside an allocated huge block: one huge PTE maps
	// the whole aligned run, so the frame is never shared or freed
	// individually (SplitHugeBlock dissolves the block first).
	huge bool
	// inFree marks a frame id as live on the free stack. AllocHugeBlock
	// claims free frames without removing their stack entries, so Alloc
	// validates entries lazily against this flag.
	inFree bool
}

// PhysMem is a pool of physical page frames with reference counting.
//
// The pool is intentionally not safe for concurrent use: the simulator is
// single-threaded (see simclock) so that runs are reproducible.
type PhysMem struct {
	pageSize int
	frames   []frame
	// free is a stack of candidate frame ids. It may contain stale entries
	// for frames AllocHugeBlock claimed in place; the per-frame inFree flag
	// is authoritative and freeCount counts the frames actually free.
	free      []FrameID
	freeCount int
	inUse     int

	// blockFree tracks, per aligned HugePages block, how many of its frames
	// are free — the huge-block allocator picks the lowest fully-free block.
	// Frames past the last whole block are never huge-backed.
	blockFree  []int
	hugeBlocks int
	// blockHuge tracks, per aligned block, how many of its frames still
	// carry the huge flag. A freshly allocated block holds HugePages; FHPM
	// carve-outs (ReleaseHugeFrame) decrement it, re-absorption increments
	// it, and the block dissolves when it reaches zero.
	blockHuge []int
	// hugeFrameN counts frames with the huge flag set, pool-wide, so the
	// HugeFrames gauge stays O(1) with partially carved blocks.
	hugeFrameN int

	zero    []byte // canonical zero page for comparisons
	zeroSum uint64 // checksum of the zero page, precomputed per pool

	// cs is the pool's content store: interned literal blobs keyed by
	// checksum plus the per-seed checksum cache. scratch is a single page
	// buffer reused to generate seeded content for checksumming/interning.
	cs      *contentStore
	scratch []byte

	// Statistics.
	allocs       uint64
	frees        uint64
	materialized uint64
	// Gauges maintained at state transitions so telemetry sampling never
	// has to walk the frame array.
	ksmFrames  int // frames flagged as KSM stable pages
	zeroFrames int // in-use frames whose descriptor is the lazy zero page
}

// NewPhysMem creates a pool holding totalBytes of physical memory divided
// into pages of pageSize bytes. totalBytes is rounded down to a whole number
// of pages; at least one page is required.
func NewPhysMem(totalBytes int64, pageSize int) *PhysMem {
	if pageSize <= 0 || pageSize%8 != 0 {
		panic(fmt.Sprintf("mem: invalid page size %d", pageSize))
	}
	n := totalBytes / int64(pageSize)
	if n < 1 {
		panic(fmt.Sprintf("mem: total %d smaller than one page", totalBytes))
	}
	pm := &PhysMem{
		pageSize: pageSize,
		frames:   make([]frame, n),
		free:     make([]FrameID, 0, n),
		zero:     make([]byte, pageSize),
		cs:       newContentStore(),
	}
	// Precomputed here rather than cached in a package-level map: pools in
	// concurrently running clusters checksum zero frames without sharing any
	// mutable state.
	pm.zeroSum = ChecksumBytes(pm.zero)
	// Push frames so that low frame numbers are handed out first; this keeps
	// frame assignment deterministic and debuggable.
	for i := int64(n) - 1; i >= 0; i-- {
		pm.free = append(pm.free, FrameID(i))
		pm.frames[i].inFree = true
	}
	pm.freeCount = int(n)
	pm.blockFree = make([]int, n/HugePages)
	for i := range pm.blockFree {
		pm.blockFree[i] = HugePages
	}
	pm.blockHuge = make([]int, n/HugePages)
	return pm
}

// PageSize reports the page size in bytes.
func (pm *PhysMem) PageSize() int { return pm.pageSize }

// TotalFrames reports the number of frames in the pool.
func (pm *PhysMem) TotalFrames() int { return len(pm.frames) }

// FramesInUse reports how many frames are currently allocated.
func (pm *PhysMem) FramesInUse() int { return pm.inUse }

// FreeFrames reports how many frames are available.
func (pm *PhysMem) FreeFrames() int { return pm.freeCount }

// BytesInUse reports allocated physical memory in bytes.
func (pm *PhysMem) BytesInUse() int64 { return int64(pm.inUse) * int64(pm.pageSize) }

// KSMFrames reports how many frames are currently KSM stable pages.
func (pm *PhysMem) KSMFrames() int { return pm.ksmFrames }

// ZeroFrames reports how many in-use frames are still lazily zero (never
// materialized, or reset by ZeroFrame). A frame whose materialized bytes
// happen to be all zero does not count; the gauge tracks the untouched set.
func (pm *PhysMem) ZeroFrames() int { return pm.zeroFrames }

// HugeBlocks reports how many huge blocks are currently allocated (blocks
// with at least one frame still carrying the huge flag; a partially carved
// block counts as one).
func (pm *PhysMem) HugeBlocks() int { return pm.hugeBlocks }

// HugeFrames reports how many frames currently back huge mappings. Carved
// subpage frames (released via ReleaseHugeFrame) no longer count.
func (pm *PhysMem) HugeFrames() int { return pm.hugeFrameN }

// IsHugeFrame reports whether the frame belongs to an allocated huge block.
func (pm *PhysMem) IsHugeFrame(id FrameID) bool { return pm.frameAt(id).huge }

// noteTaken and noteFreed maintain the free count and the per-block free
// gauges at every frame state transition.
func (pm *PhysMem) noteTaken(id FrameID) {
	pm.frames[id].inFree = false
	pm.freeCount--
	if b := int(id) / HugePages; b < len(pm.blockFree) {
		pm.blockFree[b]--
	}
}

func (pm *PhysMem) noteFreed(id FrameID) {
	pm.frames[id].inFree = true
	pm.freeCount++
	if b := int(id) / HugePages; b < len(pm.blockFree) {
		pm.blockFree[b]++
	}
}

// Alloc hands out a zeroed frame with refcount 1.
func (pm *PhysMem) Alloc() (FrameID, error) {
	if pm.freeCount == 0 {
		return NilFrame, ErrOutOfMemory
	}
	// Pop until a live entry surfaces: entries for frames that
	// AllocHugeBlock claimed in place are skipped lazily here. freeCount > 0
	// guarantees at least one live entry remains on the stack.
	var id FrameID
	for {
		id = pm.free[len(pm.free)-1]
		pm.free = pm.free[:len(pm.free)-1]
		if pm.frames[id].inFree {
			break
		}
	}
	pm.noteTaken(id)
	f := &pm.frames[id]
	f.desc = desc{} // free frames always carry a released zero descriptor
	f.refcnt = 1
	f.ksm = false
	f.huge = false
	pm.inUse++
	pm.allocs++
	pm.zeroFrames++
	return id, nil
}

// AllocHugeBlock claims one aligned run of HugePages free frames — the
// backing of a transparent huge page. Every frame comes back zeroed with
// refcount 1 and the huge flag set. The scan prefers the lowest fully-free
// block, keeping frame assignment deterministic; there is no defragmentation,
// so a fragmented pool returns ErrOutOfMemory even when enough scattered
// frames are free (exactly khugepaged's allocation-failure mode).
func (pm *PhysMem) AllocHugeBlock() (FrameID, error) {
	for b, n := range pm.blockFree {
		if n != HugePages {
			continue
		}
		base := FrameID(b * HugePages)
		for i := 0; i < HugePages; i++ {
			id := base + FrameID(i)
			pm.noteTaken(id)
			f := &pm.frames[id]
			f.desc = desc{}
			f.refcnt = 1
			f.ksm = false
			f.huge = true
		}
		pm.inUse += HugePages
		pm.allocs += HugePages
		pm.zeroFrames += HugePages
		pm.hugeBlocks++
		pm.blockHuge[b] = HugePages
		pm.hugeFrameN += HugePages
		return base, nil
	}
	return NilFrame, ErrOutOfMemory
}

// SplitHugeBlock dissolves a huge block back into independent base frames;
// contents and refcounts are preserved. Frames already carved out of the
// block (no longer huge — possibly even freed by their owner) are skipped.
// The caller re-points its page tables at the now-ordinary frames (see
// hypervisor.VMProcess.SplitHuge).
func (pm *PhysMem) SplitHugeBlock(base FrameID) {
	if base%HugePages != 0 {
		panic(fmt.Sprintf("mem: SplitHugeBlock(%d) not block-aligned", base))
	}
	b := int(base) / HugePages
	if b >= len(pm.blockHuge) || pm.blockHuge[b] == 0 {
		panic(fmt.Sprintf("mem: SplitHugeBlock(%d): no huge frames in block", base))
	}
	cleared := 0
	for i := 0; i < HugePages; i++ {
		// Direct indexing, not frameAt: a carved frame may have been freed
		// already and frameAt rejects free frames.
		f := &pm.frames[base+FrameID(i)]
		if !f.huge {
			continue
		}
		f.huge = false
		cleared++
	}
	pm.blockHuge[b] -= cleared
	pm.hugeFrameN -= cleared
	pm.hugeBlocks--
}

// ReleaseHugeFrame carves one frame out of its huge block: the frame keeps
// its content and refcount but loses the huge flag, becoming an ordinary
// frame that can be shared (IncRef/SetKSM) or freed individually. When the
// last huge frame of a block is released the block itself dissolves.
func (pm *PhysMem) ReleaseHugeFrame(id FrameID) {
	f := pm.frameAt(id)
	if !f.huge {
		panic(fmt.Sprintf("mem: ReleaseHugeFrame on non-huge frame %d", id))
	}
	f.huge = false
	b := int(id) / HugePages
	pm.blockHuge[b]--
	pm.hugeFrameN--
	if pm.blockHuge[b] == 0 {
		pm.hugeBlocks--
	}
}

// ReclaimHugeFrame restores a previously carved frame into its huge block
// (the re-absorption step of a collapse). The frame must be live, private
// (refcount 1) and not a KSM stable page — shared content cannot silently
// rejoin a huge mapping.
func (pm *PhysMem) ReclaimHugeFrame(id FrameID) {
	f := pm.frameAt(id)
	if f.huge {
		panic(fmt.Sprintf("mem: ReclaimHugeFrame on already-huge frame %d", id))
	}
	if f.refcnt != 1 || f.ksm {
		panic(fmt.Sprintf("mem: ReclaimHugeFrame on shared frame %d (refcnt %d, ksm %v)", id, f.refcnt, f.ksm))
	}
	f.huge = true
	b := int(id) / HugePages
	pm.blockHuge[b]++
	pm.hugeFrameN++
	if pm.blockHuge[b] == 1 {
		pm.hugeBlocks++
	}
}

// IsFree reports whether the frame is currently on the free list.
func (pm *PhysMem) IsFree(id FrameID) bool {
	if int(id) >= len(pm.frames) {
		panic(fmt.Sprintf("mem: frame %d out of range", id))
	}
	return pm.frames[id].inFree
}

// ClaimSpecific allocates one specific free frame (zeroed, refcount 1),
// reporting whether it was free to claim. Re-absorption uses it to pull a
// carved subpage's original slot back into its block; the frame's stale
// free-stack entry is skipped lazily by Alloc, exactly as with
// AllocHugeBlock's in-place claims.
func (pm *PhysMem) ClaimSpecific(id FrameID) bool {
	if int(id) >= len(pm.frames) {
		panic(fmt.Sprintf("mem: frame %d out of range", id))
	}
	f := &pm.frames[id]
	if !f.inFree {
		return false
	}
	pm.noteTaken(id)
	f.desc = desc{}
	f.refcnt = 1
	f.ksm = false
	f.huge = false
	pm.inUse++
	pm.allocs++
	pm.zeroFrames++
	return true
}

func (pm *PhysMem) frameAt(id FrameID) *frame {
	if int(id) >= len(pm.frames) {
		panic(fmt.Sprintf("mem: frame %d out of range", id))
	}
	f := &pm.frames[id]
	if f.refcnt <= 0 {
		panic(fmt.Sprintf("mem: use of free frame %d", id))
	}
	return f
}

// IncRef adds a reference to a live frame (used when a page becomes shared).
// Huge-block frames are mapped by exactly one huge PTE and never shared.
func (pm *PhysMem) IncRef(id FrameID) {
	f := pm.frameAt(id)
	if f.huge {
		panic(fmt.Sprintf("mem: IncRef on huge-block frame %d", id))
	}
	f.refcnt++
}

// RefCount reports the current reference count of a live frame.
func (pm *PhysMem) RefCount(id FrameID) int {
	return int(pm.frameAt(id).refcnt)
}

// LiveRefCount reports a frame's reference count, or 0 for a free frame.
// Unlike RefCount it never panics, so the leak checker can sweep the whole
// pool comparing actual counts against expectations.
func (pm *PhysMem) LiveRefCount(id FrameID) int {
	if int(id) >= len(pm.frames) {
		panic(fmt.Sprintf("mem: frame %d out of range", id))
	}
	if n := pm.frames[id].refcnt; n > 0 {
		return int(n)
	}
	return 0
}

// DecRef drops a reference; the frame returns to the free list when the
// count reaches zero. Huge-block frames cannot be freed individually — the
// owner must SplitHugeBlock first.
func (pm *PhysMem) DecRef(id FrameID) {
	f := pm.frameAt(id)
	if f.huge {
		panic(fmt.Sprintf("mem: DecRef on huge-block frame %d (split the block first)", id))
	}
	f.refcnt--
	if f.refcnt == 0 {
		if f.desc.kind == descZero {
			pm.zeroFrames--
		}
		if f.ksm {
			pm.ksmFrames--
		}
		pm.cs.release(f.desc)
		f.desc = desc{}
		f.ksm = false
		pm.free = append(pm.free, id)
		pm.noteFreed(id)
		pm.inUse--
		pm.frees++
	}
}

// SetKSM marks or clears the frame's KSM stable-page flag. KSM stable pages
// are shared copy-on-write; the flag lets the analyzer attribute savings.
func (pm *PhysMem) SetKSM(id FrameID, v bool) {
	f := pm.frameAt(id)
	if v && f.huge {
		panic(fmt.Sprintf("mem: SetKSM on huge-block frame %d", id))
	}
	if v && !f.ksm {
		pm.ksmFrames++
		// A stable page's content is host-wide shared content: register it
		// in the content table so byte-identical imports (migration) and
		// snapshots attach to it instead of copying.
		if f.desc.kind == descLiteral {
			pm.cs.internExisting(f.desc.blob)
		}
	} else if !v && f.ksm {
		pm.ksmFrames--
	}
	f.ksm = v
}

// IsKSM reports whether the frame is a KSM stable page.
func (pm *PhysMem) IsKSM(id FrameID) bool { return pm.frameAt(id).ksm }

// Bytes returns a read-only view of the frame contents. All-zero frames
// return the canonical zero page; seeded frames materialize into an
// interned blob shared by every frame with the same content. Callers must
// not mutate the result.
func (pm *PhysMem) Bytes(id FrameID) []byte {
	return pm.bytesOf(pm.frameAt(id))
}

func (pm *PhysMem) bytesOf(f *frame) []byte {
	switch f.desc.kind {
	case descZero:
		return pm.zero
	case descSeeded:
		f.desc = desc{kind: descLiteral, blob: pm.internSeeded(f.desc.seed)}
		return f.desc.blob.data
	default:
		return f.desc.blob.data
	}
}

// fillScratch regenerates seed's page into the pool's scratch buffer.
func (pm *PhysMem) fillScratch(seed Seed) []byte {
	if pm.scratch == nil {
		pm.scratch = make([]byte, pm.pageSize)
	}
	Fill(pm.scratch, seed)
	return pm.scratch
}

// seedSum returns the checksum of seed's page, computed at most once per
// pool per seed, streamed straight from the generator without touching a
// page buffer.
func (pm *PhysMem) seedSum(seed Seed) uint64 {
	if v, ok := pm.cs.seedSums[seed]; ok {
		return v
	}
	v := ChecksumSeed(seed, pm.pageSize)
	pm.cs.seedSums[seed] = v
	return v
}

// internSeeded materializes seed's page as an interned blob; frames sharing
// a fill seed converge on one buffer, and every materialization after the
// first is a seed-index hit that never regenerates or compares bytes.
func (pm *PhysMem) internSeeded(seed Seed) *blob {
	cs := pm.cs
	if b, ok := cs.seedBlobs[seed]; ok {
		b.refs++
		cs.internHits++
		return b
	}
	sum := pm.seedSum(seed)
	before := cs.blobs
	b := cs.intern(pm.fillScratch(seed), sum)
	if cs.blobs != before {
		pm.materialized++
	}
	if !b.seeded {
		b.seeded = true
		b.seed = seed
		cs.seedBlobs[seed] = b
	}
	return b
}

// IsZero reports whether the frame content is all zero bytes. Zero
// descriptors answer immediately; otherwise the cached content checksum is
// compared against the pool's zero-page checksum first, so a byte scan only
// happens when the checksum is dirty or actually collides with zeroSum.
func (pm *PhysMem) IsZero(id FrameID) bool {
	return pm.isZeroFrame(pm.frameAt(id))
}

func (pm *PhysMem) isZeroFrame(f *frame) bool {
	switch f.desc.kind {
	case descZero:
		return true
	case descSeeded:
		return pm.seedSum(f.desc.seed) == pm.zeroSum && bytes.Equal(pm.bytesOf(f), pm.zero)
	default:
		b := f.desc.blob
		if b.sumValid && b.sum != pm.zeroSum {
			return false
		}
		return bytes.Equal(b.data, pm.zero)
	}
}

// Write copies data into the frame at the given offset, privatizing the
// backing content if it is shared: a zero or seeded descriptor materializes
// into a fresh private blob, a shared or interned blob is copied before
// mutation (copy-on-write), and a frame holding the sole reference to a
// private blob mutates in place. Writing to a KSM stable page is a bug in
// the caller (the hypervisor must break COW first) and panics.
func (pm *PhysMem) Write(id FrameID, off int, data []byte) {
	f := pm.frameAt(id)
	if f.ksm {
		panic(fmt.Sprintf("mem: direct write to KSM stable frame %d", id))
	}
	if off < 0 || off+len(data) > pm.pageSize {
		panic(fmt.Sprintf("mem: write [%d,%d) outside page of %d bytes", off, off+len(data), pm.pageSize))
	}
	if len(data) == 0 {
		return
	}
	switch f.desc.kind {
	case descZero:
		allZero := true
		for _, b := range data {
			if b != 0 {
				allZero = false
				break
			}
		}
		if allZero {
			return // zero write to a zero page is a no-op
		}
		buf := make([]byte, pm.pageSize)
		copy(buf[off:], data)
		f.desc = desc{kind: descLiteral, blob: pm.cs.newBlob(buf, false)}
		pm.materialized++
		pm.zeroFrames--
	case descSeeded:
		buf := make([]byte, pm.pageSize)
		Fill(buf, f.desc.seed)
		copy(buf[off:], data)
		f.desc = desc{kind: descLiteral, blob: pm.cs.newBlob(buf, false)}
		pm.materialized++
	default:
		b := f.desc.blob
		if b.refs == 1 && !b.interned {
			copy(b.data[off:], data)
			b.sumValid = false
			return
		}
		buf := make([]byte, pm.pageSize)
		copy(buf, b.data)
		copy(buf[off:], data)
		pm.cs.release(f.desc)
		f.desc = desc{kind: descLiteral, blob: pm.cs.newBlob(buf, false)}
		pm.cs.cowCopies++
		pm.materialized++
	}
}

// FillFrame overwrites the whole frame with a deterministic byte stream.
// The frame just records the seed; bytes exist only if something later
// reads or partially overwrites them.
func (pm *PhysMem) FillFrame(id FrameID, seed Seed) {
	f := pm.frameAt(id)
	if f.ksm {
		panic(fmt.Sprintf("mem: direct fill of KSM stable frame %d", id))
	}
	if f.desc.kind == descZero {
		pm.zeroFrames--
	}
	pm.cs.release(f.desc)
	f.desc = desc{kind: descSeeded, seed: seed}
}

// ZeroFrame resets the frame to the canonical zero page (dropping the
// backing content). GC uses this when it sweeps free regions.
func (pm *PhysMem) ZeroFrame(id FrameID) {
	f := pm.frameAt(id)
	if f.ksm {
		panic(fmt.Sprintf("mem: direct zero of KSM stable frame %d", id))
	}
	if f.desc.kind != descZero {
		pm.zeroFrames++
	}
	pm.cs.release(f.desc)
	f.desc = desc{}
}

// CopyFrame gives dst the same content as src (used by COW breaks, huge
// collapse, and lifecycle paths). It aliases src's descriptor — no bytes
// move; a later Write through either frame privatizes its copy.
func (pm *PhysMem) CopyFrame(dst, src FrameID) {
	if dst == src {
		return
	}
	sf := pm.frameAt(src)
	df := pm.frameAt(dst)
	if df.ksm {
		panic(fmt.Sprintf("mem: copy into KSM stable frame %d", dst))
	}
	nd := pm.cs.retain(sf.desc)
	wasZero := df.desc.kind == descZero
	pm.cs.release(df.desc)
	df.desc = nd
	if nowZero := nd.kind == descZero; wasZero && !nowZero {
		pm.zeroFrames--
	} else if !wasZero && nowZero {
		pm.zeroFrames++
	}
}

// descsEqualFast decides equality from descriptors alone when possible:
// same kind with same identity (both zero, same seed, same blob) is equal;
// anything else is unknown (ok=false) and needs the checksum/byte path.
func descsEqualFast(x, y desc) (eq, ok bool) {
	if x.kind != y.kind {
		return false, false
	}
	switch x.kind {
	case descZero:
		return true, true
	case descSeeded:
		if x.seed == y.seed {
			return true, true
		}
	default:
		if x.blob == y.blob {
			return true, true
		}
	}
	return false, false
}

// Equal reports whether two frames have byte-identical contents: O(1) on
// matching descriptors, checksum reject for the common different case, and
// a byte verify only when checksums collide.
func (pm *PhysMem) Equal(a, b FrameID) bool {
	if a == b {
		return true
	}
	fa, fb := pm.frameAt(a), pm.frameAt(b)
	if eq, ok := descsEqualFast(fa.desc, fb.desc); ok {
		return eq
	}
	if pm.checksumOf(fa) != pm.checksumOf(fb) {
		return false
	}
	return bytes.Equal(pm.bytesOf(fa), pm.bytesOf(fb))
}

// Compare orders two frames by lexicographic byte comparison; the KSM
// stable and unstable trees use it as their key order. The order must stay
// byte-based — tree shape feeds frame-free order and therefore frame
// assignment, which every figure depends on — but equal descriptors
// short-circuit to 0 without materializing.
func (pm *PhysMem) Compare(a, b FrameID) int {
	if a == b {
		return 0
	}
	fa, fb := pm.frameAt(a), pm.frameAt(b)
	if eq, ok := descsEqualFast(fa.desc, fb.desc); ok && eq {
		return 0
	}
	return bytes.Compare(pm.bytesOf(fa), pm.bytesOf(fb))
}

// Checksum returns the FNV-1a checksum of the frame contents, computed at
// most once per content — zero pages use the pool's precomputed sum, seeded
// pages the per-seed cache, literal blobs a sum cached on the blob itself.
func (pm *PhysMem) Checksum(id FrameID) uint64 {
	return pm.checksumOf(pm.frameAt(id))
}

func (pm *PhysMem) checksumOf(f *frame) uint64 {
	switch f.desc.kind {
	case descZero:
		return pm.zeroSum
	case descSeeded:
		return pm.seedSum(f.desc.seed)
	default:
		return f.desc.blob.checksum()
	}
}

// Stats reports cumulative allocator statistics.
type Stats struct {
	Allocs       uint64
	Frees        uint64
	Materialized uint64
	InUse        int
	Free         int
}

// Stats returns a snapshot of allocator counters.
func (pm *PhysMem) Stats() Stats {
	return Stats{
		Allocs:       pm.allocs,
		Frees:        pm.frees,
		Materialized: pm.materialized,
		InUse:        pm.inUse,
		Free:         pm.freeCount,
	}
}
