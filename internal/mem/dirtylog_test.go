package mem

import "testing"

func TestDirtyRingDedupPerCycle(t *testing.T) {
	r := NewDirtyRing(8)
	r.Log(3)
	r.Log(3)
	r.Log(5)
	r.Log(3)
	if r.Depth() != 2 {
		t.Fatalf("depth = %d, want 2", r.Depth())
	}
	if r.Appends() != 2 {
		t.Fatalf("appends = %d, want 2", r.Appends())
	}
	pages, full := r.Drain()
	if full {
		t.Fatal("unexpected overflow")
	}
	if len(pages) != 2 || pages[0] != 3 || pages[1] != 5 {
		t.Fatalf("pages = %v, want [3 5]", pages)
	}
	// A new cycle may log the same page again.
	r.Log(3)
	if r.Depth() != 1 {
		t.Fatalf("depth after re-log = %d, want 1", r.Depth())
	}
}

func TestDirtyRingOverflowLatches(t *testing.T) {
	r := NewDirtyRing(2)
	r.Log(1)
	r.Log(2)
	if r.Overflowed() {
		t.Fatal("overflowed before the wall")
	}
	r.Log(3)
	r.Log(4)
	if !r.Overflowed() {
		t.Fatal("overflow not latched")
	}
	if r.Overflows() != 1 {
		t.Fatalf("overflows = %d, want 1 (latched once per cycle)", r.Overflows())
	}
	// Pages logged before the wall are retained; the flag tells the consumer
	// the list is incomplete.
	pages, full := r.Drain()
	if !full || len(pages) != 2 {
		t.Fatalf("drain = (%v, %v), want 2 pages + overflow", pages, full)
	}
	if r.Overflowed() || r.Depth() != 0 {
		t.Fatal("drain did not reset the cycle")
	}
	// The next cycle can overflow again.
	r.Log(1)
	r.Log(2)
	r.Log(3)
	if r.Overflows() != 2 {
		t.Fatalf("overflows = %d, want 2", r.Overflows())
	}
}

func TestDirtyRingReset(t *testing.T) {
	r := NewDirtyRing(2)
	r.Log(7)
	r.Log(8)
	r.Log(9)
	n, full := r.Reset()
	if n != 2 || !full {
		t.Fatalf("reset = (%d, %v), want (2, true)", n, full)
	}
	if r.Depth() != 0 || r.Overflowed() {
		t.Fatal("reset left state behind")
	}
	if n, full := r.Reset(); n != 0 || full {
		t.Fatalf("idle reset = (%d, %v), want (0, false)", n, full)
	}
}

func TestDirtyRingDefaultCap(t *testing.T) {
	if got := NewDirtyRing(0).Cap(); got != DefaultDirtyRingPages {
		t.Fatalf("cap = %d, want %d", got, DefaultDirtyRingPages)
	}
}
