package mem

import (
	"fmt"
	"testing"
	"testing/quick"
)

func newPool(t *testing.T, pages int) *PhysMem {
	t.Helper()
	return NewPhysMem(int64(pages)*DefaultPageSize, DefaultPageSize)
}

func TestAllocFreeCycle(t *testing.T) {
	pm := newPool(t, 4)
	var ids []FrameID
	for i := 0; i < 4; i++ {
		id, err := pm.Alloc()
		if err != nil {
			t.Fatalf("Alloc #%d: %v", i, err)
		}
		ids = append(ids, id)
	}
	if _, err := pm.Alloc(); err != ErrOutOfMemory {
		t.Fatalf("Alloc on full pool: err = %v, want ErrOutOfMemory", err)
	}
	if pm.FramesInUse() != 4 || pm.FreeFrames() != 0 {
		t.Fatalf("in use %d free %d, want 4/0", pm.FramesInUse(), pm.FreeFrames())
	}
	for _, id := range ids {
		pm.DecRef(id)
	}
	if pm.FramesInUse() != 0 || pm.FreeFrames() != 4 {
		t.Fatalf("after free: in use %d free %d, want 0/4", pm.FramesInUse(), pm.FreeFrames())
	}
}

func TestAllocDeterministicOrder(t *testing.T) {
	pm := newPool(t, 3)
	a, _ := pm.Alloc()
	b, _ := pm.Alloc()
	c, _ := pm.Alloc()
	if a != 0 || b != 1 || c != 2 {
		t.Fatalf("alloc order = %d,%d,%d, want 0,1,2", a, b, c)
	}
}

func TestFreshFrameIsZero(t *testing.T) {
	pm := newPool(t, 2)
	id, _ := pm.Alloc()
	if !pm.IsZero(id) {
		t.Fatal("fresh frame not zero")
	}
	for _, b := range pm.Bytes(id) {
		if b != 0 {
			t.Fatal("fresh frame bytes not zero")
		}
	}
}

func TestWriteMaterializesAndReads(t *testing.T) {
	pm := newPool(t, 2)
	id, _ := pm.Alloc()
	pm.Write(id, 100, []byte{1, 2, 3})
	b := pm.Bytes(id)
	if b[100] != 1 || b[101] != 2 || b[102] != 3 {
		t.Fatalf("bytes at 100 = %v", b[100:103])
	}
	if pm.IsZero(id) {
		t.Fatal("written frame reported zero")
	}
}

func TestZeroWriteToZeroPageStaysLazy(t *testing.T) {
	pm := newPool(t, 2)
	id, _ := pm.Alloc()
	pm.Write(id, 0, make([]byte, 64))
	if pm.Stats().Materialized != 0 {
		t.Fatal("zero write materialized the page")
	}
	if !pm.IsZero(id) {
		t.Fatal("frame no longer zero after zero write")
	}
}

func TestRefcountSharing(t *testing.T) {
	pm := newPool(t, 2)
	id, _ := pm.Alloc()
	pm.IncRef(id)
	pm.IncRef(id)
	if got := pm.RefCount(id); got != 3 {
		t.Fatalf("RefCount = %d, want 3", got)
	}
	pm.DecRef(id)
	pm.DecRef(id)
	if pm.FramesInUse() != 1 {
		t.Fatal("frame freed while references remain")
	}
	pm.DecRef(id)
	if pm.FramesInUse() != 0 {
		t.Fatal("frame not freed at refcount 0")
	}
}

func TestUseAfterFreePanics(t *testing.T) {
	pm := newPool(t, 2)
	id, _ := pm.Alloc()
	pm.DecRef(id)
	defer func() {
		if recover() == nil {
			t.Fatal("Bytes on freed frame did not panic")
		}
	}()
	pm.Bytes(id)
}

func TestKSMFrameWriteProtected(t *testing.T) {
	pm := newPool(t, 2)
	id, _ := pm.Alloc()
	pm.SetKSM(id, true)
	if !pm.IsKSM(id) {
		t.Fatal("IsKSM false after SetKSM")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("write to KSM stable frame did not panic")
		}
	}()
	pm.Write(id, 0, []byte{1})
}

func TestEqualAndCompare(t *testing.T) {
	pm := newPool(t, 4)
	a, _ := pm.Alloc()
	b, _ := pm.Alloc()
	c, _ := pm.Alloc()
	if !pm.Equal(a, b) {
		t.Fatal("two zero frames not equal")
	}
	pm.FillFrame(a, 42)
	pm.FillFrame(b, 42)
	pm.FillFrame(c, 43)
	if !pm.Equal(a, b) {
		t.Fatal("same-seed frames not equal")
	}
	if pm.Equal(a, c) {
		t.Fatal("different-seed frames equal")
	}
	if pm.Compare(a, b) != 0 {
		t.Fatal("Compare(a,b) != 0 for equal frames")
	}
	if x, y := pm.Compare(a, c), pm.Compare(c, a); x == 0 || y == 0 || (x < 0) == (y < 0) {
		t.Fatalf("Compare not antisymmetric: %d vs %d", x, y)
	}
}

func TestEqualZeroVsMaterializedZero(t *testing.T) {
	pm := newPool(t, 2)
	a, _ := pm.Alloc()
	b, _ := pm.Alloc()
	pm.Write(b, 0, []byte{7}) // materialize
	pm.Write(b, 0, []byte{0}) // back to all-zero content, still materialized
	if !pm.Equal(a, b) || !pm.Equal(b, a) {
		t.Fatal("lazy zero and materialized zero not equal")
	}
}

func TestChecksumMatchesContent(t *testing.T) {
	pm := newPool(t, 3)
	a, _ := pm.Alloc()
	b, _ := pm.Alloc()
	pm.FillFrame(a, 7)
	pm.FillFrame(b, 7)
	if pm.Checksum(a) != pm.Checksum(b) {
		t.Fatal("equal content, different checksums")
	}
	z, _ := pm.Alloc()
	if pm.Checksum(z) != ChecksumBytes(make([]byte, DefaultPageSize)) {
		t.Fatal("zero page checksum mismatch")
	}
}

// TestChecksumZeroFramesConcurrentPools guards the fix for the shared
// zero-checksum cache: checksumming zero frames used to write a
// package-level map, a data race once two clusters (each with its own pool)
// run concurrently. Run under -race, independent pools must be able to
// checksum zero frames simultaneously.
func TestChecksumZeroFramesConcurrentPools(t *testing.T) {
	want := ChecksumBytes(make([]byte, DefaultPageSize))
	done := make(chan error, 4)
	for g := 0; g < 4; g++ {
		go func() {
			pm := NewPhysMem(8*DefaultPageSize, DefaultPageSize)
			for i := 0; i < 100; i++ {
				id, err := pm.Alloc()
				if err != nil {
					done <- err
					return
				}
				if got := pm.Checksum(id); got != want {
					done <- fmt.Errorf("zero checksum = %#x, want %#x", got, want)
					return
				}
				pm.DecRef(id)
			}
			done <- nil
		}()
	}
	for g := 0; g < 4; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestCopyFrame(t *testing.T) {
	pm := newPool(t, 3)
	a, _ := pm.Alloc()
	b, _ := pm.Alloc()
	pm.FillFrame(a, 99)
	pm.CopyFrame(b, a)
	if !pm.Equal(a, b) {
		t.Fatal("copy not equal to source")
	}
	// Copy of a lazy zero page drops the destination's bytes.
	z, _ := pm.Alloc()
	pm.CopyFrame(b, z)
	if !pm.IsZero(b) {
		t.Fatal("copy of zero page did not zero destination")
	}
}

func TestZeroFrameResets(t *testing.T) {
	pm := newPool(t, 2)
	a, _ := pm.Alloc()
	pm.FillFrame(a, 5)
	pm.ZeroFrame(a)
	if !pm.IsZero(a) {
		t.Fatal("ZeroFrame did not zero")
	}
}

func TestPropertyFillDeterministic(t *testing.T) {
	f := func(seed uint64, n uint16) bool {
		size := int(n%2048) + 1
		a := FillBytes(size, Seed(seed))
		b := FillBytes(size, Seed(seed))
		if len(a) != size {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyDifferentSeedsDiffer(t *testing.T) {
	f := func(s1, s2 uint64) bool {
		if s1 == s2 {
			return true
		}
		a := FillBytes(256, Seed(s1))
		b := FillBytes(256, Seed(s2))
		same := 0
		for i := range a {
			if a[i] == b[i] {
				same++
			}
		}
		return same < len(a) // not byte-identical
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyCombineOrderMatters(t *testing.T) {
	f := func(a, b uint64) bool {
		if a == b {
			return true
		}
		return Combine(Seed(a), Seed(b)) != Combine(Seed(b), Seed(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHashStringStable(t *testing.T) {
	if HashString("java/lang/Object") != HashString("java/lang/Object") {
		t.Fatal("HashString not deterministic")
	}
	if HashString("a") == HashString("b") {
		t.Fatal("trivial collision")
	}
}

// TestGaugeCountersTrackTransitions walks a frame through every lifecycle
// transition and checks the maintained KSMFrames/ZeroFrames gauges against
// a brute-force recount, so telemetry sampling never needs a frame walk.
func TestGaugeCountersTrackTransitions(t *testing.T) {
	pm := newPool(t, 8)
	recount := func() (ksm, zero int) {
		for id := 0; id < pm.TotalFrames(); id++ {
			f := FrameID(id)
			if pm.frames[id].refcnt <= 0 {
				continue
			}
			if pm.IsKSM(f) {
				ksm++
			}
			if pm.frames[id].desc.kind == descZero {
				zero++
			}
		}
		return
	}
	check := func(step string) {
		t.Helper()
		ksm, zero := recount()
		if pm.KSMFrames() != ksm || pm.ZeroFrames() != zero {
			t.Fatalf("%s: gauges ksm=%d zero=%d, recount ksm=%d zero=%d",
				step, pm.KSMFrames(), pm.ZeroFrames(), ksm, zero)
		}
	}

	a, _ := pm.Alloc()
	b, _ := pm.Alloc()
	c, _ := pm.Alloc()
	check("alloc x3 (all lazily zero)")

	pm.Write(a, 0, []byte{1, 2, 3})
	check("write materializes a")
	pm.Write(b, 0, []byte{0, 0}) // zero write keeps b lazy
	check("zero write keeps b lazy")
	pm.FillFrame(b, Seed(7))
	check("fill materializes b")
	pm.ZeroFrame(b)
	check("zero-frame returns b to lazy")
	pm.ZeroFrame(b) // already lazy: no double count
	check("double zero-frame")

	pm.CopyFrame(c, a)
	check("copy materialized a into c")
	pm.CopyFrame(c, b)
	check("copy lazy b back into c")

	pm.SetKSM(a, true)
	pm.SetKSM(a, true) // idempotent
	check("mark a KSM")
	pm.SetKSM(a, false)
	pm.SetKSM(a, false)
	check("unmark a KSM")

	pm.SetKSM(a, true)
	pm.IncRef(a)
	pm.DecRef(a)
	check("shared KSM frame drops one ref")
	pm.DecRef(a)
	check("free KSM frame clears gauge")
	pm.DecRef(b)
	pm.DecRef(c)
	check("free remaining")
	if pm.KSMFrames() != 0 || pm.ZeroFrames() != 0 {
		t.Fatalf("gauges not zero after freeing all: ksm=%d zero=%d", pm.KSMFrames(), pm.ZeroFrames())
	}
}
