package mem

import "bytes"

// This file is the content-addressed page store behind PhysMem. A frame no
// longer owns a private 4 KiB byte array; it holds a small content
// descriptor that says how to produce the bytes:
//
//   - Zero: the canonical all-zero page (no storage at all);
//   - Seeded: a deterministic Fill(seed) stream, materializable on demand
//     (no storage until somebody actually reads the bytes);
//   - Literal: a reference-counted blob of real bytes.
//
// Literal blobs come in two flavours. Interned blobs live in a
// checksum-keyed content table, are immutable, and are shared by every
// frame, swap slot, and snapshot whose content is byte-identical — the
// simulator's own memory is deduplicated the same way the modelled KSM
// deduplicates guest frames. Private blobs are the product of Write:
// freshly mutated content that is expected to keep changing, held outside
// the table. A private blob can still be aliased (CopyFrame, swap
// snapshots); mutation through any alias is copy-on-write once more than
// one reference exists.
//
// All of this is invisible above the PhysMem API: Bytes materializes on
// read, Equal/Compare/Checksum answer from descriptors and cached checksums
// whenever possible and fall back to byte verification on checksum
// collision, so every observable byte, comparison, and merge decision is
// identical to the old one-array-per-frame representation.

// descKind enumerates the content descriptor kinds.
type descKind uint8

const (
	descZero descKind = iota
	descSeeded
	descLiteral
)

// desc is one frame's content descriptor. The zero value is the zero page.
type desc struct {
	kind descKind
	seed Seed  // descSeeded: Fill(page, seed) produces the bytes
	blob *blob // descLiteral
}

// blob is a reference-counted page buffer. refs counts every descriptor
// holding it: frame descs, swap-slot snapshots, and any other PageContent
// handle. Interned blobs are immutable and indexed in the content table
// under their checksum; private blobs are mutable only while exactly one
// reference exists.
type blob struct {
	data     []byte
	refs     int32
	sum      uint64
	sumValid bool
	interned bool
	// seeded marks a blob registered in the seedBlobs index under seed, so
	// its death can unregister it. Set on the first materialization of a
	// Seeded descriptor; later frames with the same seed attach in O(1).
	seeded bool
	seed   Seed
}

// checksum returns the blob's content checksum, computing and caching it on
// first use — once per content, not per frame per scan pass.
func (b *blob) checksum() uint64 {
	if !b.sumValid {
		b.sum = ChecksumBytes(b.data)
		b.sumValid = true
	}
	return b.sum
}

// contentStore holds the pool's interned blobs and per-seed checksum cache.
// It is per-PhysMem: concurrently running clusters share no mutable state.
type contentStore struct {
	// table indexes interned blobs by content checksum; buckets are scanned
	// in insertion order and verified byte-for-byte, so checksum collisions
	// cost a memcmp, never a wrong share.
	table map[uint64][]*blob
	// seedSums caches the page checksum of each Seed ever checksummed, so
	// seeded frames answer Checksum without generating bytes again.
	seedSums map[Seed]uint64
	// seedBlobs indexes live interned blobs by the fill seed that produced
	// them: materializing a seed that some frame already materialized is a
	// map hit, not a fill-and-compare.
	seedBlobs map[Seed]*blob

	blobs         int   // live blobs, interned + private
	internedBlobs int   // blobs currently in the table
	blobBytes     int64 // bytes held by live blobs
	internHits    uint64
	cowCopies     uint64
}

func newContentStore() *contentStore {
	return &contentStore{
		table:     make(map[uint64][]*blob),
		seedSums:  make(map[Seed]uint64),
		seedBlobs: make(map[Seed]*blob),
	}
}

// newBlob registers a fresh buffer with the store's accounting.
func (cs *contentStore) newBlob(data []byte, interned bool) *blob {
	b := &blob{data: data, refs: 1, interned: interned}
	cs.blobs++
	cs.blobBytes += int64(len(data))
	if interned {
		cs.internedBlobs++
	}
	return b
}

// retain takes one more reference on a descriptor's backing, if any.
func (cs *contentStore) retain(d desc) desc {
	if d.kind == descLiteral {
		d.blob.refs++
	}
	return d
}

// release drops one reference; a blob whose last reference goes away leaves
// the table (if interned) and its bytes return to the Go heap.
func (cs *contentStore) release(d desc) {
	if d.kind != descLiteral {
		return
	}
	b := d.blob
	b.refs--
	if b.refs > 0 {
		return
	}
	if b.refs < 0 {
		panic("mem: content blob over-released")
	}
	cs.blobs--
	cs.blobBytes -= int64(len(b.data))
	if b.seeded {
		delete(cs.seedBlobs, b.seed)
		b.seeded = false
	}
	if b.interned {
		cs.internedBlobs--
		cs.removeInterned(b)
	}
}

// internExisting registers an already-live blob in the content table
// without copying or taking a reference (the table never owns one; dying
// blobs remove themselves). Used when a frame becomes a KSM stable page:
// content the host proved shared should be discoverable by checksum, so
// imports of byte-identical pages attach instead of copying. A blob whose
// bytes already have a table entry is left alone.
func (cs *contentStore) internExisting(b *blob) {
	if b.interned {
		return
	}
	sum := b.checksum()
	if cs.lookupInterned(b.data, sum) != nil {
		return
	}
	b.interned = true
	cs.internedBlobs++
	cs.table[sum] = append(cs.table[sum], b)
}

// removeInterned deletes a dying blob from its table bucket.
func (cs *contentStore) removeInterned(b *blob) {
	sum := b.checksum()
	bucket := cs.table[sum]
	for i, cand := range bucket {
		if cand == b {
			bucket = append(bucket[:i], bucket[i+1:]...)
			break
		}
	}
	if len(bucket) == 0 {
		delete(cs.table, sum)
	} else {
		cs.table[sum] = bucket
	}
}

// lookupInterned returns the table blob byte-equal to data, if any.
func (cs *contentStore) lookupInterned(data []byte, sum uint64) *blob {
	for _, cand := range cs.table[sum] {
		if bytes.Equal(cand.data, data) {
			return cand
		}
	}
	return nil
}

// intern returns an interned blob holding exactly data's bytes, reusing an
// existing table entry on a verified match and cloning data into a new
// immutable blob otherwise. The returned blob carries one new reference.
func (cs *contentStore) intern(data []byte, sum uint64) *blob {
	if cand := cs.lookupInterned(data, sum); cand != nil {
		cand.refs++
		cs.internHits++
		return cand
	}
	buf := make([]byte, len(data))
	copy(buf, data)
	b := cs.newBlob(buf, true)
	b.sum = sum
	b.sumValid = true
	cs.table[sum] = append(cs.table[sum], b)
	return b
}

// ContentStats is a snapshot of the content store's occupancy, for tests,
// benchmarks, and the heap-footprint trajectory in BENCH_content.json.
type ContentStats struct {
	// Blobs is the number of live page buffers (interned + private);
	// BlobBytes is the bytes they hold — the store's whole variable-size
	// footprint, where the old representation held one page per frame.
	Blobs     int
	BlobBytes int64
	// InternedBlobs counts blobs shared through the content table.
	InternedBlobs int
	// SeedSums is the per-seed checksum cache size.
	SeedSums int
	// InternHits counts materializations and writes served by an existing
	// interned blob instead of a new buffer.
	InternHits uint64
	// COWCopies counts writes that had to copy a shared or interned blob
	// before mutating.
	COWCopies uint64
}

// ContentStats returns a snapshot of the content store's counters.
func (pm *PhysMem) ContentStats() ContentStats {
	return ContentStats{
		Blobs:         pm.cs.blobs,
		BlobBytes:     pm.cs.blobBytes,
		InternedBlobs: pm.cs.internedBlobs,
		SeedSums:      len(pm.cs.seedSums),
		InternHits:    pm.cs.internHits,
		COWCopies:     pm.cs.cowCopies,
	}
}

// PageContent is a refcounted handle on one page's content, detached from
// any frame: the swap store holds one per occupied slot, so swapping a page
// out costs a descriptor copy instead of a 4 KiB buffer copy, and slots
// holding identical content share one blob. The zero value is the zero
// page. Handles obtained from Snapshot must be returned to the pool exactly
// once, through Restore (install into a frame) or Release (discard).
type PageContent struct {
	d desc
}

// IsZero reports whether the handle is the canonical zero page. Snapshot
// canonicalizes all-zero content, so this is the swap store's same-filled
// page test.
func (c PageContent) IsZero() bool { return c.d.kind == descZero }

// Snapshot captures the frame's current content as a detached handle,
// aliasing the backing blob instead of copying bytes. All-zero content —
// lazy or materialized — canonicalizes to the zero handle, exactly matching
// the byte-level IsZero test the swap store used to run. A private literal
// blob is promoted into the content table first, so snapshots of
// byte-identical pages converge on one blob: this is what makes the swap
// store content-deduplicated for free.
func (pm *PhysMem) Snapshot(id FrameID) PageContent {
	f := pm.frameAt(id)
	if pm.isZeroFrame(f) {
		return PageContent{}
	}
	if f.desc.kind == descLiteral && !f.desc.blob.interned {
		b := f.desc.blob
		sum := b.checksum()
		if existing := pm.cs.lookupInterned(b.data, sum); existing != nil {
			// The table already holds this content: retarget the frame and
			// drop the private duplicate.
			existing.refs++
			pm.cs.internHits++
			pm.cs.release(f.desc)
			f.desc = desc{kind: descLiteral, blob: existing}
		} else {
			// Adopt the private buffer into the table in place — no copy.
			b.interned = true
			pm.cs.internedBlobs++
			pm.cs.table[sum] = append(pm.cs.table[sum], b)
		}
	}
	return PageContent{d: pm.cs.retain(f.desc)}
}

// Restore installs a snapshot's content into a frame, consuming the handle.
// The frame's previous content is released.
func (pm *PhysMem) Restore(id FrameID, c PageContent) {
	f := pm.frameAt(id)
	if f.ksm {
		panic("mem: Restore into KSM stable frame")
	}
	wasZero := f.desc.kind == descZero
	pm.cs.release(f.desc)
	f.desc = c.d
	nowZero := f.desc.kind == descZero
	if wasZero && !nowZero {
		pm.zeroFrames--
	} else if !wasZero && nowZero {
		pm.zeroFrames++
	}
}

// Release discards a snapshot without installing it (a swap slot dropped
// while its page was unmapped).
func (pm *PhysMem) Release(c PageContent) { pm.cs.release(c.d) }
