package mem

import "fmt"

// This file is the cross-pool face of the content store: descriptor
// export/import for live migration. A page leaves its pool as an
// ExportedPage — the same zero/seed/blob taxonomy desc uses internally,
// plus the content checksum — and enters another pool by descriptor
// identity: zero and seeded pages reconstruct from the descriptor alone,
// and literal pages attach to an existing interned blob when the
// destination already holds byte-identical content. Only a literal page
// the destination has never seen costs a byte copy, which is exactly the
// distinction a content-addressed migration wire protocol needs.
//
// Nothing here weakens content identity: imports go through the same
// checksum-then-byte-verify intern path as every other blob, so a
// checksum collision costs a memcmp, never a corrupted page.

// ExportKind enumerates the wire descriptor kinds. They mirror descKind
// but are a separate public type: the wire format is API, the frame
// representation is not.
type ExportKind uint8

const (
	// ExportZero is the canonical all-zero page.
	ExportZero ExportKind = iota
	// ExportSeed is a deterministic Fill(seed) page — content both sides
	// can generate, the cross-host analogue of the paper's copy-the-
	// CDS-archive trick (the receiver already owns the base image).
	ExportSeed
	// ExportBlob is literal bytes identified by checksum.
	ExportBlob
)

func (k ExportKind) String() string {
	switch k {
	case ExportZero:
		return "zero"
	case ExportSeed:
		return "seed"
	default:
		return "blob"
	}
}

// ExportedPage is one page's content descriptor in wire form. Sum is
// filled for every kind (the zero-page sum, the seed's cached sum, or the
// blob's cached sum), so receivers can index content without generating
// bytes. Data is only set for ExportBlob and aliases the source pool's
// buffer: it is read-only and valid until the source pool next mutates,
// which makes a synchronous export→import hand-off free of copies.
type ExportedPage struct {
	Kind ExportKind
	Seed Seed   // ExportSeed: the fill seed
	Sum  uint64 // content checksum, all kinds
	Data []byte // ExportBlob: the literal bytes (borrowed, do not mutate)
}

// exportDesc converts an internal descriptor to wire form. A literal blob
// that the store knows was generated from a fill seed (reads materialize
// seeded pages into interned blobs, but the provenance sticks) exports as
// its seed: the receiver regenerates the bytes, so the page costs a
// descriptor instead of a copy even after materialization.
func (pm *PhysMem) exportDesc(d desc) ExportedPage {
	switch d.kind {
	case descZero:
		return ExportedPage{Kind: ExportZero, Sum: pm.zeroSum}
	case descSeeded:
		return ExportedPage{Kind: ExportSeed, Seed: d.seed, Sum: pm.seedSum(d.seed)}
	default:
		if d.blob.seeded {
			return ExportedPage{Kind: ExportSeed, Seed: d.blob.seed, Sum: d.blob.checksum()}
		}
		return ExportedPage{Kind: ExportBlob, Sum: d.blob.checksum(), Data: d.blob.data}
	}
}

// ExportFrame captures a live frame's content as a wire descriptor
// without materializing, copying, or touching access state.
func (pm *PhysMem) ExportFrame(id FrameID) ExportedPage {
	return pm.exportDesc(pm.frameAt(id).desc)
}

// ExportContent captures a detached content handle (a swap slot's
// snapshot) as a wire descriptor. The handle keeps its reference; the
// export merely borrows.
func (pm *PhysMem) ExportContent(c PageContent) ExportedPage {
	return pm.exportDesc(c.d)
}

// ImportClass reports how an import was satisfied — the signal a
// migration engine turns into bytes-on-wire accounting.
type ImportClass uint8

const (
	// ImportZero: the descriptor alone reconstructs the page (all zero).
	ImportZero ImportClass = iota
	// ImportSeed: the descriptor alone reconstructs the page (seeded fill).
	ImportSeed
	// ImportDup: the destination pool already held byte-identical content;
	// the page attached to the existing interned blob.
	ImportDup
	// ImportCopy: the destination had never seen this content, so the
	// literal bytes had to travel and be stored.
	ImportCopy
)

func (c ImportClass) String() string {
	switch c {
	case ImportZero:
		return "zero"
	case ImportSeed:
		return "seed"
	case ImportDup:
		return "dup"
	default:
		return "copy"
	}
}

// importBlob resolves an ExportBlob descriptor against this pool's
// content table: a verified match attaches (ImportDup), anything else is
// copied in and interned (ImportCopy). The returned blob carries one new
// reference either way.
func (pm *PhysMem) importBlob(e ExportedPage) (*blob, ImportClass) {
	before := pm.cs.internHits
	b := pm.cs.intern(e.Data, e.Sum)
	if pm.cs.internHits > before {
		return b, ImportDup
	}
	return b, ImportCopy
}

// ImportPage overwrites a frame with an exported page's content, like a
// whole-page write from the wire. The frame must be privately mapped:
// importing into a KSM stable page or a frame shared by several mappings
// is a caller bug (break COW first) and panics.
func (pm *PhysMem) ImportPage(id FrameID, e ExportedPage) ImportClass {
	f := pm.frameAt(id)
	if f.ksm {
		panic(fmt.Sprintf("mem: ImportPage into KSM stable frame %d", id))
	}
	if f.refcnt > 1 {
		panic(fmt.Sprintf("mem: ImportPage into shared frame %d (refcount %d)", id, f.refcnt))
	}
	wasZero := f.desc.kind == descZero
	var nd desc
	class := ImportZero
	switch e.Kind {
	case ExportZero:
		nd = desc{}
	case ExportSeed:
		nd = desc{kind: descSeeded, seed: e.Seed}
		class = ImportSeed
	default:
		var b *blob
		b, class = pm.importBlob(e)
		nd = desc{kind: descLiteral, blob: b}
	}
	pm.cs.release(f.desc)
	f.desc = nd
	if nowZero := nd.kind == descZero; wasZero && !nowZero {
		pm.zeroFrames--
	} else if !wasZero && nowZero {
		pm.zeroFrames++
	}
	return class
}

// ImportContent materializes an exported page as a detached content
// handle in this pool — the frameless counterpart of ImportPage, used to
// move swapped-out pages between pools. Like Snapshot's result, the
// handle must be returned exactly once through Restore or Release.
func (pm *PhysMem) ImportContent(e ExportedPage) (PageContent, ImportClass) {
	switch e.Kind {
	case ExportZero:
		return PageContent{}, ImportZero
	case ExportSeed:
		return PageContent{d: desc{kind: descSeeded, seed: e.Seed}}, ImportSeed
	default:
		b, class := pm.importBlob(e)
		return PageContent{d: desc{kind: descLiteral, blob: b}}, class
	}
}
