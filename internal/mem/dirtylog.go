package mem

// DirtyRing is a bounded dirty-page log in the style of Intel's Page
// Modification Logging: the hypervisor appends the page number of every
// write fault, COW break and demand fault, and a consumer (the KSM scanner)
// drains the log to revisit only pages whose content may have changed since
// the last drain.
//
// Like the hardware dirty bit that gates PML appends, each page is recorded
// at most once per drain cycle: the first write logs it, further writes to
// the same page are free. When the ring fills, the log-full condition is
// latched instead of wrapping — the consumer must treat the VM
// conservatively (rescan everything), exactly what KVM does when the PML
// buffer overflows between exits.
type DirtyRing struct {
	cap   int
	pages []VPN
	// member is the per-cycle dirty bit: pages already logged this cycle
	// are not appended again.
	member map[VPN]struct{}
	// full latches the log-full condition until the next Drain/Reset.
	full bool

	appends   uint64
	overflows uint64
}

// DefaultDirtyRingPages bounds a ring when the caller passes zero. Real PML
// buffers hold 512 entries; with the per-cycle dedup above, entries are
// distinct pages, so a few thousand covers a busy guest between drains.
const DefaultDirtyRingPages = 4096

// NewDirtyRing returns an empty ring holding at most capPages distinct
// pages per drain cycle (0 = DefaultDirtyRingPages).
func NewDirtyRing(capPages int) *DirtyRing {
	if capPages <= 0 {
		capPages = DefaultDirtyRingPages
	}
	return &DirtyRing{cap: capPages, member: make(map[VPN]struct{})}
}

// Cap reports the ring capacity in distinct pages per cycle.
func (r *DirtyRing) Cap() int { return r.cap }

// Log records a dirtied page. Pages already logged this cycle are ignored;
// once the ring is full, new pages only latch the overflow flag.
func (r *DirtyRing) Log(page VPN) {
	if _, dup := r.member[page]; dup {
		return
	}
	if len(r.pages) >= r.cap {
		if !r.full {
			r.full = true
			r.overflows++
		}
		return
	}
	r.member[page] = struct{}{}
	r.pages = append(r.pages, page)
	r.appends++
}

// Depth reports how many distinct pages the current cycle holds.
func (r *DirtyRing) Depth() int { return len(r.pages) }

// Overflowed reports whether the current cycle hit the capacity wall.
func (r *DirtyRing) Overflowed() bool { return r.full }

// Drain returns the pages dirtied since the last drain, in append order,
// plus the log-full flag, and starts a fresh cycle. An overflowed drain's
// page list is incomplete by construction — the consumer must fall back to
// a full rescan.
func (r *DirtyRing) Drain() ([]VPN, bool) {
	pages, full := r.pages, r.full
	r.pages = nil
	r.member = make(map[VPN]struct{})
	r.full = false
	return pages, full
}

// Reset discards the current cycle without materializing it, reporting how
// many pages were dropped and whether the cycle had overflowed. A linear
// full scan uses this when it passes a VM: everything logged so far is
// about to be visited anyway.
func (r *DirtyRing) Reset() (n int, overflowed bool) {
	n, overflowed = len(r.pages), r.full
	if n > 0 || overflowed {
		r.pages = nil
		r.member = make(map[VPN]struct{})
		r.full = false
	}
	return n, overflowed
}

// Appends reports the lifetime count of pages logged (post-dedup).
func (r *DirtyRing) Appends() uint64 { return r.appends }

// Overflows reports how many cycles hit the capacity wall.
func (r *DirtyRing) Overflows() uint64 { return r.overflows }
