package mem

import (
	"math/rand"
	"sort"
	"testing"
)

// physModel mirrors what a correct PhysMem must report: which frames are
// live, their refcounts, and which belong to un-split huge blocks.
type physModel struct {
	pm   *PhysMem
	refs map[FrameID]int // live base frames
	huge []FrameID       // bases of live huge blocks
	ksm  map[FrameID]bool
}

func newPhysModel(pages int) *physModel {
	return &physModel{
		pm:   NewPhysMem(int64(pages)*DefaultPageSize, DefaultPageSize),
		refs: map[FrameID]int{},
		ksm:  map[FrameID]bool{},
	}
}

// step applies one operation selected by op, keeping the model in sync.
func (m *physModel) step(op byte, r *rand.Rand) {
	pick := func() (FrameID, bool) {
		if len(m.refs) == 0 {
			return 0, false
		}
		ids := make([]FrameID, 0, len(m.refs))
		for id := range m.refs {
			ids = append(ids, id)
		}
		// Sort so the pick depends only on the rand stream, not on Go's
		// randomized map iteration order.
		sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
		return ids[r.Intn(len(ids))], true
	}
	switch op % 10 {
	case 0, 1: // alloc
		id, err := m.pm.Alloc()
		if err == nil {
			m.refs[id] = 1
		}
	case 2: // alloc huge block
		base, err := m.pm.AllocHugeBlock()
		if err == nil {
			m.huge = append(m.huge, base)
		}
	case 3: // split a huge block into base frames
		if len(m.huge) > 0 {
			i := r.Intn(len(m.huge))
			base := m.huge[i]
			m.huge = append(m.huge[:i], m.huge[i+1:]...)
			m.pm.SplitHugeBlock(base)
			for j := 0; j < HugePages; j++ {
				m.refs[base+FrameID(j)] = 1
			}
		}
	case 4: // incref
		if id, ok := pick(); ok {
			m.pm.IncRef(id)
			m.refs[id]++
		}
	case 5: // decref
		if id, ok := pick(); ok {
			m.pm.DecRef(id)
			if m.refs[id]--; m.refs[id] == 0 {
				delete(m.refs, id)
				delete(m.ksm, id)
			}
		}
	case 6: // fill with content (not on KSM stable pages)
		if id, ok := pick(); ok && !m.ksm[id] {
			m.pm.FillFrame(id, Seed(r.Uint64()))
		}
	case 7: // zero (not on KSM stable pages)
		if id, ok := pick(); ok && !m.ksm[id] {
			m.pm.ZeroFrame(id)
		}
	case 8: // toggle the KSM stable flag
		if id, ok := pick(); ok {
			v := !m.ksm[id]
			m.pm.SetKSM(id, v)
			if v {
				m.ksm[id] = true
			} else {
				delete(m.ksm, id)
			}
		}
	case 9: // read-only probes must not disturb accounting
		if id, ok := pick(); ok {
			m.pm.Checksum(id)
			m.pm.IsZero(id)
			_ = m.pm.Bytes(id)
		}
	}
}

// check recounts every gauge from scratch and compares with the maintained
// counters. This is the satellite invariant: FramesInUse + FreeFrames ==
// TotalFrames, and the KSM / zero / huge gauges match a full recount.
func (m *physModel) check(t *testing.T) {
	t.Helper()
	pm := m.pm
	if pm.FramesInUse()+pm.FreeFrames() != pm.TotalFrames() {
		t.Fatalf("inUse %d + free %d != total %d",
			pm.FramesInUse(), pm.FreeFrames(), pm.TotalFrames())
	}
	var inUse, zero, ksm, huge int
	for i := range pm.frames {
		f := &pm.frames[i]
		if f.refcnt > 0 {
			inUse++
			if f.desc.kind == descZero {
				zero++
			}
		}
		if f.ksm {
			ksm++
		}
		if f.huge {
			huge++
		}
	}
	if inUse != pm.FramesInUse() {
		t.Fatalf("FramesInUse %d, recount %d", pm.FramesInUse(), inUse)
	}
	if zero != pm.ZeroFrames() {
		t.Fatalf("ZeroFrames %d, recount %d", pm.ZeroFrames(), zero)
	}
	if ksm != pm.KSMFrames() {
		t.Fatalf("KSMFrames %d, recount %d", pm.KSMFrames(), ksm)
	}
	if huge != pm.HugeFrames() {
		t.Fatalf("HugeFrames %d, recount %d", pm.HugeFrames(), huge)
	}
	wantLive := len(m.refs) + len(m.huge)*HugePages
	if inUse != wantLive {
		t.Fatalf("pool holds %d frames, model holds %d", inUse, wantLive)
	}
}

// TestPhysMemAccountingProperty drives long random operation sequences over
// a pool spanning several huge blocks and recounts the gauges throughout.
func TestPhysMemAccountingProperty(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		r := rand.New(rand.NewSource(seed))
		m := newPhysModel(3 * HugePages)
		for step := 0; step < 4000; step++ {
			m.step(byte(r.Intn(256)), r)
			if step%250 == 0 {
				m.check(t)
			}
		}
		// Drain: split every huge block and release every reference, then
		// the pool must be exactly as fresh.
		for _, base := range m.huge {
			m.pm.SplitHugeBlock(base)
			for j := 0; j < HugePages; j++ {
				m.refs[base+FrameID(j)] = 1
			}
		}
		m.huge = nil
		for id, n := range m.refs {
			if m.ksm[id] {
				m.pm.SetKSM(id, false)
			}
			for ; n > 0; n-- {
				m.pm.DecRef(id)
			}
			delete(m.refs, id)
			delete(m.ksm, id)
		}
		m.check(t)
		if m.pm.FreeFrames() != m.pm.TotalFrames() || m.pm.FramesInUse() != 0 {
			t.Fatalf("seed %d: pool not empty after drain: inUse=%d free=%d",
				seed, m.pm.FramesInUse(), m.pm.FreeFrames())
		}
	}
}

// FuzzPhysMemAccounting feeds arbitrary op strings through the same model.
// Each input byte selects one operation; the rand stream derived from the
// input length keeps frame picks deterministic per input.
func FuzzPhysMemAccounting(f *testing.F) {
	f.Add([]byte{0, 2, 3, 5, 6, 8, 5, 9})
	f.Add([]byte{2, 2, 2, 3, 3, 3, 5, 5, 5, 5})
	f.Add([]byte{0, 0, 0, 4, 4, 5, 5, 5, 7, 1, 8, 8, 6})
	f.Fuzz(func(t *testing.T, ops []byte) {
		if len(ops) > 2048 {
			ops = ops[:2048]
		}
		r := rand.New(rand.NewSource(int64(len(ops)) + 1))
		m := newPhysModel(2 * HugePages)
		for _, op := range ops {
			m.step(op, r)
		}
		m.check(t)
	})
}
