package mem

import (
	"fmt"
	"sort"
)

// VPN is a virtual page number: a virtual address divided by the page size.
// The same type serves every translation layer (guest-virtual, guest-
// physical, host-virtual), because each layer is just a sparse mapping from
// page numbers to the next layer down.
type VPN uint64

// HugeAlign rounds vpn down to the HugePages boundary that would head a huge
// mapping covering it.
func HugeAlign(vpn VPN) VPN { return vpn &^ (HugePages - 1) }

// PTE is a page-table entry. A PTE exists in a PageTable only when the page
// is present (mapped to a frame) or swapped out (content lives in a swap
// slot); unmapped pages simply have no entry.
type PTE struct {
	Frame    FrameID
	Writable bool
	// COW marks a write-protected shared mapping: the next write must
	// allocate a private copy. Both KSM merging and fork-style sharing set
	// it.
	COW bool
	// Swapped marks an entry whose content has been written to swap;
	// Frame is NilFrame and SwapSlot identifies the swap page.
	Swapped  bool
	SwapSlot uint32
	// Huge marks a transparent-huge-page mapping: one stored entry at a
	// HugePages-aligned VPN covers the whole aligned run, backed by a
	// contiguous frame block. Lookup synthesizes the middle entries, so only
	// the head lives in the table.
	Huge bool
	// LastUse is a virtual timestamp (simclock microseconds) of the most
	// recent access, maintained by the hypervisor for LRU eviction.
	LastUse int64
	// Accessed is the referenced bit of the second-chance (clock)
	// replacement policy: set on every touch, cleared when the clock hand
	// passes.
	Accessed bool
}

// PageTable is a sparse mapping from virtual page numbers to PTEs.
//
// Huge mappings store a single entry at the aligned head VPN with Huge set;
// lookups of the other HugePages-1 page numbers in the run synthesize their
// PTE from the head (Frame = head frame + offset). Base entries may not be
// installed inside a huge run — split it first.
//
// Iteration over the underlying map is randomized by the runtime, so any
// code that needs determinism must use SortedVPNs or RangeSorted. Linear
// scans (KSM, the analyzer) walk explicit address ranges instead and are
// deterministic by construction.
type PageTable struct {
	entries map[VPN]PTE
	// present counts resident (non-swapped) entries, maintained on
	// Set/Delete so PresentCount is O(1) for telemetry gauges. A huge entry
	// counts as HugePages resident pages.
	present int
	// hugeHeads counts huge entries; when zero, Lookup and the mutation
	// guards skip all huge-range work, so tables that never collapse pay
	// nothing.
	hugeHeads int
}

// NewPageTable returns an empty table.
func NewPageTable() *PageTable {
	return &PageTable{entries: make(map[VPN]PTE)}
}

// Len reports the number of stored entries (present + swapped). A huge
// mapping counts as one entry.
func (pt *PageTable) Len() int { return len(pt.entries) }

// HugeMappings reports how many huge entries the table holds.
func (pt *PageTable) HugeMappings() int { return pt.hugeHeads }

// hugeHead returns the huge entry covering vpn, if one exists.
func (pt *PageTable) hugeHead(vpn VPN) (VPN, PTE, bool) {
	if pt.hugeHeads == 0 {
		return 0, PTE{}, false
	}
	head := HugeAlign(vpn)
	e, ok := pt.entries[head]
	if !ok || !e.Huge {
		return 0, PTE{}, false
	}
	return head, e, true
}

// Lookup fetches the entry for vpn. Page numbers inside a huge run answer
// with a synthesized entry: the head's flags and the frame at the matching
// offset into the backing block, with Huge set so callers can tell.
func (pt *PageTable) Lookup(vpn VPN) (PTE, bool) {
	e, ok := pt.entries[vpn]
	if ok {
		return e, true
	}
	if head, he, ok := pt.hugeHead(vpn); ok {
		he.Frame += FrameID(vpn - head)
		return he, true
	}
	return PTE{}, false
}

// Set installs or replaces the entry for vpn. Installing a base entry inside
// an existing huge run is a bug in the caller (the run must be split first)
// and panics; replacing a huge head with a non-huge entry likewise.
func (pt *PageTable) Set(vpn VPN, e PTE) {
	if e.Huge {
		if vpn%HugePages != 0 {
			panic(fmt.Sprintf("mem: huge PTE at unaligned vpn %d", vpn))
		}
	} else if head, _, ok := pt.hugeHead(vpn); ok {
		panic(fmt.Sprintf("mem: base PTE at vpn %d inside huge run headed at %d", vpn, head))
	}
	old, existed := pt.entries[vpn]
	pt.entries[vpn] = e
	pt.present += pteResident(e) - residentIf(existed, old)
	pt.hugeHeads += hugeIf(e.Huge) - hugeIf(existed && old.Huge)
}

// Delete removes the entry for vpn, reporting whether it existed. Deleting
// inside a huge run (including its head) panics — split the run first, then
// delete the base entries.
func (pt *PageTable) Delete(vpn VPN) (PTE, bool) {
	if head, _, ok := pt.hugeHead(vpn); ok {
		panic(fmt.Sprintf("mem: delete of vpn %d inside huge run headed at %d", vpn, head))
	}
	e, ok := pt.entries[vpn]
	if ok {
		delete(pt.entries, vpn)
		pt.present -= pteResident(e)
	}
	return e, ok
}

// InstallHuge collapses the run headed at the aligned vpn into one huge
// entry backed by the frame block at base: any stored base entries in the
// run are dropped and replaced by the single huge head.
func (pt *PageTable) InstallHuge(vpn VPN, e PTE) {
	if vpn%HugePages != 0 {
		panic(fmt.Sprintf("mem: InstallHuge at unaligned vpn %d", vpn))
	}
	for i := VPN(0); i < HugePages; i++ {
		if old, ok := pt.entries[vpn+i]; ok {
			if old.Huge {
				panic(fmt.Sprintf("mem: InstallHuge over existing huge run at %d", vpn))
			}
			delete(pt.entries, vpn+i)
			pt.present -= pteResident(old)
		}
	}
	e.Huge = true
	pt.entries[vpn] = e
	pt.present += HugePages
	pt.hugeHeads++
}

// SplitHuge dissolves the huge entry headed at vpn into HugePages base
// entries pointing at consecutive frames, preserving the head's flags. The
// backing frames must already have been released from their block (see
// PhysMem.SplitHugeBlock). Resident count is unchanged.
func (pt *PageTable) SplitHuge(vpn VPN) {
	e, ok := pt.entries[vpn]
	if !ok || !e.Huge {
		panic(fmt.Sprintf("mem: SplitHuge at vpn %d: no huge entry", vpn))
	}
	e.Huge = false
	// Replace the head first so the hugeHead guard in Set no longer sees the
	// run, then fan the remaining entries out.
	pt.entries[vpn] = e
	pt.hugeHeads--
	for i := VPN(1); i < HugePages; i++ {
		sub := e
		sub.Frame = e.Frame + FrameID(i)
		pt.entries[vpn+i] = sub
	}
	// present is unchanged: HugePages resident pages before and after.
}

// Range calls fn for every stored entry in unspecified order, stopping early
// if fn returns false. Huge runs are visited once via their head entry. Use
// only for order-insensitive aggregation.
func (pt *PageTable) Range(fn func(vpn VPN, e PTE) bool) {
	for vpn, e := range pt.entries {
		if !fn(vpn, e) {
			return
		}
	}
}

// SortedVPNs returns all stored page numbers in ascending order (huge runs
// contribute only their head).
func (pt *PageTable) SortedVPNs() []VPN {
	vpns := make([]VPN, 0, len(pt.entries))
	for vpn := range pt.entries {
		vpns = append(vpns, vpn)
	}
	sort.Slice(vpns, func(i, j int) bool { return vpns[i] < vpns[j] })
	return vpns
}

// RangeSorted calls fn for every stored entry in ascending VPN order.
func (pt *PageTable) RangeSorted(fn func(vpn VPN, e PTE) bool) {
	for _, vpn := range pt.SortedVPNs() {
		if !fn(vpn, pt.entries[vpn]) {
			return
		}
	}
}

// PresentCount reports how many pages are resident (not swapped), counting a
// huge mapping as HugePages pages. Maintained on every mutation, so this is
// O(1).
func (pt *PageTable) PresentCount() int { return pt.present }

// pteResident is the number of resident pages an entry contributes.
func pteResident(e PTE) int {
	if e.Swapped {
		return 0
	}
	if e.Huge {
		return HugePages
	}
	return 1
}

func residentIf(existed bool, e PTE) int {
	if !existed {
		return 0
	}
	return pteResident(e)
}

func hugeIf(b bool) int {
	if b {
		return 1
	}
	return 0
}
