package mem

import (
	"fmt"
	"sort"
)

// VPN is a virtual page number: a virtual address divided by the page size.
// The same type serves every translation layer (guest-virtual, guest-
// physical, host-virtual), because each layer is just a sparse mapping from
// page numbers to the next layer down.
type VPN uint64

// HugeAlign rounds vpn down to the HugePages boundary that would head a huge
// mapping covering it.
func HugeAlign(vpn VPN) VPN { return vpn &^ (HugePages - 1) }

// PTE is a page-table entry. A PTE exists in a PageTable only when the page
// is present (mapped to a frame) or swapped out (content lives in a swap
// slot); unmapped pages simply have no entry.
type PTE struct {
	Frame    FrameID
	Writable bool
	// COW marks a write-protected shared mapping: the next write must
	// allocate a private copy. Both KSM merging and fork-style sharing set
	// it.
	COW bool
	// Swapped marks an entry whose content has been written to swap;
	// Frame is NilFrame and SwapSlot identifies the swap page.
	Swapped  bool
	SwapSlot uint32
	// Huge marks a transparent-huge-page mapping: one stored entry at a
	// HugePages-aligned VPN covers the whole aligned run, backed by a
	// contiguous frame block. Lookup synthesizes the middle entries, so only
	// the head lives in the table.
	Huge bool
	// LastUse is a virtual timestamp (simclock microseconds) of the most
	// recent access, maintained by the hypervisor for LRU eviction.
	LastUse int64
	// Accessed is the referenced bit of the second-chance (clock)
	// replacement policy: set on every touch, cleared when the clock hand
	// passes.
	Accessed bool
}

// PageTable is a sparse mapping from virtual page numbers to PTEs.
//
// Huge mappings store a single entry at the aligned head VPN with Huge set;
// lookups of the other HugePages-1 page numbers in the run synthesize their
// PTE from the head (Frame = head frame + offset). Base entries may not be
// installed inside a huge run — split it first, either wholesale
// (SplitHuge) or per-subpage (SplitHugeSubpages, the FHPM carve-out path).
//
// Iteration over the underlying map is randomized by the runtime, so any
// code that needs determinism must use SortedVPNs or RangeSorted. Linear
// scans (KSM, the analyzer) walk explicit address ranges instead and are
// deterministic by construction.
type PageTable struct {
	entries map[VPN]PTE
	// present counts resident (non-swapped) entries, maintained on
	// Set/Delete so PresentCount is O(1) for telemetry gauges. A huge entry
	// counts as HugePages resident pages minus the carved subpages that left
	// the run (their own base entries carry the count instead — see
	// SplitHugeSubpages for the bookkeeping contract).
	present int
	// hugeHeads counts huge entries; when zero, Lookup and the mutation
	// guards skip all huge-range work, so tables that never collapse pay
	// nothing.
	hugeHeads int
	// aux holds per-subpage state (carve-out bitmap, dirty-ring-fed heat)
	// keyed by huge head VPN. Allocated lazily; entries live only while the
	// head entry is huge.
	aux map[VPN]*hugeAux
}

// hugeAux is the fine-grained state of one huge entry: which subpages have
// been carved out of the run (they own real base PTEs, the head no longer
// covers them) and the dirty-ring-fed per-subpage heat counters the FHPM
// daemon uses for its demote/promote decisions.
type hugeAux struct {
	// carved is a HugePages-wide bitmap; bit i set means head+i is excluded
	// from the huge run. Offset 0 is never carved: the head subpage anchors
	// the huge entry itself (the compound-page head, in Linux terms).
	carved  [HugePages / 64]uint64
	ncarved int
	// heat counts dirty-log events per subpage since the last decay,
	// saturating. The daemon halves them each visit, so the effective
	// signal is an EWMA of the write rate.
	heat [HugePages]uint16
	// age counts decay passes since the aux was created; demotion waits for
	// age >= 2 so a freshly collapsed block gets a chance to show heat.
	age uint8
	// quiet counts consecutive decay passes that began with zero total
	// heat; re-promotion waits for quiet >= 2 (the block has quiesced).
	quiet uint8
}

func (a *hugeAux) isCarved(off VPN) bool {
	return a.carved[off/64]&(1<<(off%64)) != 0
}

func (a *hugeAux) setCarved(off VPN)   { a.carved[off/64] |= 1 << (off % 64) }
func (a *hugeAux) clearCarved(off VPN) { a.carved[off/64] &^= 1 << (off % 64) }

func (pt *PageTable) ensureAux(head VPN) *hugeAux {
	if pt.aux == nil {
		pt.aux = make(map[VPN]*hugeAux)
	}
	a := pt.aux[head]
	if a == nil {
		a = &hugeAux{}
		pt.aux[head] = a
	}
	return a
}

// NewPageTable returns an empty table.
func NewPageTable() *PageTable {
	return &PageTable{entries: make(map[VPN]PTE)}
}

// Len reports the number of stored entries (present + swapped). A huge
// mapping counts as one entry.
func (pt *PageTable) Len() int { return len(pt.entries) }

// HugeMappings reports how many huge entries the table holds.
func (pt *PageTable) HugeMappings() int { return pt.hugeHeads }

// hugeHead returns the huge entry covering vpn, if one exists. A carved
// subpage is NOT covered: it has its own base entry and behaves like any
// base page for Lookup/Set/Delete.
func (pt *PageTable) hugeHead(vpn VPN) (VPN, PTE, bool) {
	if pt.hugeHeads == 0 {
		return 0, PTE{}, false
	}
	head := HugeAlign(vpn)
	e, ok := pt.entries[head]
	if !ok || !e.Huge {
		return 0, PTE{}, false
	}
	if vpn != head {
		if a := pt.aux[head]; a != nil && a.isCarved(vpn-head) {
			return 0, PTE{}, false
		}
	}
	return head, e, true
}

// Lookup fetches the entry for vpn. Page numbers inside a huge run answer
// with a synthesized entry: the head's flags and the frame at the matching
// offset into the backing block, with Huge set so callers can tell.
func (pt *PageTable) Lookup(vpn VPN) (PTE, bool) {
	e, ok := pt.entries[vpn]
	if ok {
		return e, true
	}
	if head, he, ok := pt.hugeHead(vpn); ok {
		he.Frame += FrameID(vpn - head)
		return he, true
	}
	return PTE{}, false
}

// Set installs or replaces the entry for vpn. Installing a base entry inside
// an existing huge run is a bug in the caller (the run must be split first)
// and panics; replacing a huge head with a non-huge entry likewise.
func (pt *PageTable) Set(vpn VPN, e PTE) {
	if e.Huge {
		if vpn%HugePages != 0 {
			panic(fmt.Sprintf("mem: huge PTE at unaligned vpn %d", vpn))
		}
	} else if head, _, ok := pt.hugeHead(vpn); ok {
		panic(fmt.Sprintf("mem: base PTE at vpn %d inside huge run headed at %d", vpn, head))
	}
	old, existed := pt.entries[vpn]
	pt.entries[vpn] = e
	pt.present += pteResident(e) - residentIf(existed, old)
	pt.hugeHeads += hugeIf(e.Huge) - hugeIf(existed && old.Huge)
}

// Delete removes the entry for vpn, reporting whether it existed. Deleting
// inside a huge run (including its head) panics — split the run first, then
// delete the base entries.
func (pt *PageTable) Delete(vpn VPN) (PTE, bool) {
	if head, _, ok := pt.hugeHead(vpn); ok {
		panic(fmt.Sprintf("mem: delete of vpn %d inside huge run headed at %d", vpn, head))
	}
	e, ok := pt.entries[vpn]
	if ok {
		delete(pt.entries, vpn)
		pt.present -= pteResident(e)
	}
	return e, ok
}

// InstallHuge collapses the run headed at the aligned vpn into one huge
// entry backed by the frame block at base: any stored base entries in the
// run are dropped and replaced by the single huge head.
func (pt *PageTable) InstallHuge(vpn VPN, e PTE) {
	if vpn%HugePages != 0 {
		panic(fmt.Sprintf("mem: InstallHuge at unaligned vpn %d", vpn))
	}
	for i := VPN(0); i < HugePages; i++ {
		if old, ok := pt.entries[vpn+i]; ok {
			if old.Huge {
				panic(fmt.Sprintf("mem: InstallHuge over existing huge run at %d", vpn))
			}
			delete(pt.entries, vpn+i)
			pt.present -= pteResident(old)
		}
	}
	e.Huge = true
	pt.entries[vpn] = e
	pt.present += HugePages
	pt.hugeHeads++
	// A fresh collapse starts with clean per-subpage state (no carve-outs,
	// no heat history from a previous life of this address range).
	delete(pt.aux, vpn)
}

// SplitHuge dissolves the huge entry headed at vpn into HugePages base
// entries pointing at consecutive frames, preserving the head's flags. The
// backing frames must already have been released from their block (see
// PhysMem.SplitHugeBlock). Resident count is unchanged.
func (pt *PageTable) SplitHuge(vpn VPN) {
	e, ok := pt.entries[vpn]
	if !ok || !e.Huge {
		panic(fmt.Sprintf("mem: SplitHuge at vpn %d: no huge entry", vpn))
	}
	a := pt.aux[vpn]
	e.Huge = false
	// Replace the head first so the hugeHead guard in Set no longer sees the
	// run, then fan the remaining entries out. Carved subpages already own
	// base entries (possibly remapped elsewhere by COW or merging) and are
	// left alone.
	pt.entries[vpn] = e
	pt.hugeHeads--
	for i := VPN(1); i < HugePages; i++ {
		if a != nil && a.isCarved(i) {
			continue
		}
		sub := e
		sub.Frame = e.Frame + FrameID(i)
		pt.entries[vpn+i] = sub
	}
	delete(pt.aux, vpn)
	// present is unchanged: the same pages are resident before and after —
	// the head's contribution is replaced one-for-one by the fanned-out base
	// entries, and carved entries were already counted by themselves.
}

// SplitHugeSubpages carves the given subpages out of the huge run headed at
// head: each one gets a real base PTE pointing at its frame within the
// backing block, while the remainder of the run stays huge. The caller must
// first release the matching frames from the block (PhysMem.ReleaseHugeFrame)
// so they become ordinary refcounted frames. The head subpage (offset 0)
// cannot be carved — it anchors the huge entry.
func (pt *PageTable) SplitHugeSubpages(head VPN, vpns []VPN) {
	e, ok := pt.entries[head]
	if !ok || !e.Huge {
		panic(fmt.Sprintf("mem: SplitHugeSubpages at vpn %d: no huge entry", head))
	}
	a := pt.ensureAux(head)
	for _, vpn := range vpns {
		if vpn <= head || vpn >= head+HugePages {
			panic(fmt.Sprintf("mem: SplitHugeSubpages vpn %d outside run headed at %d", vpn, head))
		}
		off := vpn - head
		if a.isCarved(off) {
			panic(fmt.Sprintf("mem: SplitHugeSubpages vpn %d already carved", vpn))
		}
		sub := e
		sub.Huge = false
		sub.Frame = e.Frame + FrameID(off)
		a.setCarved(off)
		a.ncarved++
		// Bookkeeping contract: the head keeps contributing HugePages to
		// present, standing in for resident carved base entries, which are
		// therefore installed without counting. Later mutations of the base
		// entry (swap-out, delete) adjust present normally, keeping the
		// total equal to the true resident page count.
		pt.entries[vpn] = sub
	}
	// A fresh carve restarts the quiesce clock: re-promotion must wait for
	// a full quiet window after the most recent demotion.
	a.quiet = 0
}

// UncarveSubpage re-absorbs one carved subpage into the huge run headed at
// head: the base entry (if any) is dropped and the head's coverage of the
// subpage resumes. The caller must have restored the matching frame into the
// backing block first (PhysMem.ReclaimHugeFrame).
func (pt *PageTable) UncarveSubpage(head, vpn VPN) {
	e, ok := pt.entries[head]
	if !ok || !e.Huge {
		panic(fmt.Sprintf("mem: UncarveSubpage at vpn %d: no huge entry", head))
	}
	a := pt.aux[head]
	if vpn <= head || vpn >= head+HugePages || a == nil || !a.isCarved(vpn-head) {
		panic(fmt.Sprintf("mem: UncarveSubpage vpn %d not carved from run at %d", vpn, head))
	}
	if cur, ok := pt.entries[vpn]; ok {
		delete(pt.entries, vpn)
		pt.present -= pteResident(cur)
	}
	a.clearCarved(vpn - head)
	a.ncarved--
	// The subpage is resident again through the head's coverage.
	pt.present++
}

// CarvedCount reports how many subpages have been carved out of the huge run
// headed at head (0 when the head is not huge or nothing is carved).
func (pt *PageTable) CarvedCount(head VPN) int {
	if a := pt.aux[head]; a != nil {
		return a.ncarved
	}
	return 0
}

// CarvedAt reports whether vpn is a carved subpage of a live huge run.
func (pt *PageTable) CarvedAt(vpn VPN) bool {
	if pt.hugeHeads == 0 || pt.aux == nil {
		return false
	}
	head := HugeAlign(vpn)
	if vpn == head {
		return false
	}
	a := pt.aux[head]
	return a != nil && a.isCarved(vpn-head)
}

// CarvedSubpages returns the carved subpage VPNs of the run headed at head,
// ascending.
func (pt *PageTable) CarvedSubpages(head VPN) []VPN {
	a := pt.aux[head]
	if a == nil || a.ncarved == 0 {
		return nil
	}
	out := make([]VPN, 0, a.ncarved)
	for i := VPN(1); i < HugePages; i++ {
		if a.isCarved(i) {
			out = append(out, head+i)
		}
	}
	return out
}

// NoteSubpageDirty feeds one dirty-log event into the per-subpage heat
// counter of the huge run covering vpn (carved subpages included — their
// heat still matters for the re-promotion decision). A no-op when vpn is
// not inside a huge run.
func (pt *PageTable) NoteSubpageDirty(vpn VPN) {
	if pt.hugeHeads == 0 {
		return
	}
	head := HugeAlign(vpn)
	e, ok := pt.entries[head]
	if !ok || !e.Huge {
		return
	}
	a := pt.ensureAux(head)
	if off := vpn - head; a.heat[off] < ^uint16(0) {
		a.heat[off]++
	}
}

// SubpageHeat reports the current heat counter for vpn's slot in the huge
// run covering it (0 when there is no huge run or no recorded writes).
func (pt *PageTable) SubpageHeat(vpn VPN) uint16 {
	if pt.aux == nil {
		return 0
	}
	if a := pt.aux[HugeAlign(vpn)]; a != nil {
		return a.heat[vpn-HugeAlign(vpn)]
	}
	return 0
}

// SubpageHeats returns a snapshot of the per-subpage heat counters for the
// huge entry headed at head.
func (pt *PageTable) SubpageHeats(head VPN) [HugePages]uint16 {
	if a := pt.aux[head]; a != nil {
		return a.heat
	}
	return [HugePages]uint16{}
}

// DecaySubpageHeat halves every heat counter of the run headed at head (the
// EWMA step) and advances the age/quiet clocks, returning their new values.
// The FHPM daemon calls this once per visit: age gates demotion (give a new
// block time to show heat), quiet gates re-promotion (the block has had no
// writes for that many consecutive visits).
func (pt *PageTable) DecaySubpageHeat(head VPN) (age, quiet int) {
	e, ok := pt.entries[head]
	if !ok || !e.Huge {
		panic(fmt.Sprintf("mem: DecaySubpageHeat at vpn %d: no huge entry", head))
	}
	a := pt.ensureAux(head)
	total := 0
	for i := range a.heat {
		total += int(a.heat[i])
		a.heat[i] >>= 1
	}
	if a.age < ^uint8(0) {
		a.age++
	}
	if total == 0 {
		if a.quiet < ^uint8(0) {
			a.quiet++
		}
	} else {
		a.quiet = 0
	}
	return int(a.age), int(a.quiet)
}

// Range calls fn for every stored entry in unspecified order, stopping early
// if fn returns false. Huge runs are visited once via their head entry. Use
// only for order-insensitive aggregation.
func (pt *PageTable) Range(fn func(vpn VPN, e PTE) bool) {
	for vpn, e := range pt.entries {
		if !fn(vpn, e) {
			return
		}
	}
}

// SortedVPNs returns all stored page numbers in ascending order (huge runs
// contribute only their head).
func (pt *PageTable) SortedVPNs() []VPN {
	vpns := make([]VPN, 0, len(pt.entries))
	for vpn := range pt.entries {
		vpns = append(vpns, vpn)
	}
	sort.Slice(vpns, func(i, j int) bool { return vpns[i] < vpns[j] })
	return vpns
}

// RangeSorted calls fn for every stored entry in ascending VPN order.
func (pt *PageTable) RangeSorted(fn func(vpn VPN, e PTE) bool) {
	for _, vpn := range pt.SortedVPNs() {
		if !fn(vpn, pt.entries[vpn]) {
			return
		}
	}
}

// PresentCount reports how many pages are resident (not swapped), counting a
// huge mapping as HugePages pages. Maintained on every mutation, so this is
// O(1).
func (pt *PageTable) PresentCount() int { return pt.present }

// pteResident is the number of resident pages an entry contributes.
func pteResident(e PTE) int {
	if e.Swapped {
		return 0
	}
	if e.Huge {
		return HugePages
	}
	return 1
}

func residentIf(existed bool, e PTE) int {
	if !existed {
		return 0
	}
	return pteResident(e)
}

func hugeIf(b bool) int {
	if b {
		return 1
	}
	return 0
}
