package mem

import "sort"

// VPN is a virtual page number: a virtual address divided by the page size.
// The same type serves every translation layer (guest-virtual, guest-
// physical, host-virtual), because each layer is just a sparse mapping from
// page numbers to the next layer down.
type VPN uint64

// PTE is a page-table entry. A PTE exists in a PageTable only when the page
// is present (mapped to a frame) or swapped out (content lives in a swap
// slot); unmapped pages simply have no entry.
type PTE struct {
	Frame    FrameID
	Writable bool
	// COW marks a write-protected shared mapping: the next write must
	// allocate a private copy. Both KSM merging and fork-style sharing set
	// it.
	COW bool
	// Swapped marks an entry whose content has been written to swap;
	// Frame is NilFrame and SwapSlot identifies the swap page.
	Swapped  bool
	SwapSlot uint32
	// LastUse is a virtual timestamp (simclock microseconds) of the most
	// recent access, maintained by the hypervisor for LRU eviction.
	LastUse int64
	// Accessed is the referenced bit of the second-chance (clock)
	// replacement policy: set on every touch, cleared when the clock hand
	// passes.
	Accessed bool
}

// PageTable is a sparse mapping from virtual page numbers to PTEs.
//
// Iteration over the underlying map is randomized by the runtime, so any
// code that needs determinism must use SortedVPNs or RangeSorted. Linear
// scans (KSM, the analyzer) walk explicit address ranges instead and are
// deterministic by construction.
type PageTable struct {
	entries map[VPN]PTE
}

// NewPageTable returns an empty table.
func NewPageTable() *PageTable {
	return &PageTable{entries: make(map[VPN]PTE)}
}

// Len reports the number of entries (present + swapped).
func (pt *PageTable) Len() int { return len(pt.entries) }

// Lookup fetches the entry for vpn.
func (pt *PageTable) Lookup(vpn VPN) (PTE, bool) {
	e, ok := pt.entries[vpn]
	return e, ok
}

// Set installs or replaces the entry for vpn.
func (pt *PageTable) Set(vpn VPN, e PTE) {
	pt.entries[vpn] = e
}

// Delete removes the entry for vpn, reporting whether it existed.
func (pt *PageTable) Delete(vpn VPN) (PTE, bool) {
	e, ok := pt.entries[vpn]
	if ok {
		delete(pt.entries, vpn)
	}
	return e, ok
}

// Range calls fn for every entry in unspecified order, stopping early if fn
// returns false. Use only for order-insensitive aggregation.
func (pt *PageTable) Range(fn func(vpn VPN, e PTE) bool) {
	for vpn, e := range pt.entries {
		if !fn(vpn, e) {
			return
		}
	}
}

// SortedVPNs returns all mapped page numbers in ascending order.
func (pt *PageTable) SortedVPNs() []VPN {
	vpns := make([]VPN, 0, len(pt.entries))
	for vpn := range pt.entries {
		vpns = append(vpns, vpn)
	}
	sort.Slice(vpns, func(i, j int) bool { return vpns[i] < vpns[j] })
	return vpns
}

// RangeSorted calls fn for every entry in ascending VPN order.
func (pt *PageTable) RangeSorted(fn func(vpn VPN, e PTE) bool) {
	for _, vpn := range pt.SortedVPNs() {
		if !fn(vpn, pt.entries[vpn]) {
			return
		}
	}
}

// PresentCount reports how many entries are resident (not swapped).
func (pt *PageTable) PresentCount() int {
	n := 0
	for _, e := range pt.entries {
		if !e.Swapped {
			n++
		}
	}
	return n
}
