package mem

import (
	"testing"
	"testing/quick"
)

func TestPageTableSetLookupDelete(t *testing.T) {
	pt := NewPageTable()
	if _, ok := pt.Lookup(5); ok {
		t.Fatal("lookup on empty table succeeded")
	}
	pt.Set(5, PTE{Frame: 42, Writable: true})
	e, ok := pt.Lookup(5)
	if !ok || e.Frame != 42 || !e.Writable {
		t.Fatalf("lookup = %+v ok=%v", e, ok)
	}
	if pt.Len() != 1 {
		t.Fatalf("Len = %d, want 1", pt.Len())
	}
	old, ok := pt.Delete(5)
	if !ok || old.Frame != 42 {
		t.Fatalf("delete = %+v ok=%v", old, ok)
	}
	if _, ok := pt.Delete(5); ok {
		t.Fatal("double delete succeeded")
	}
}

func TestSortedVPNsAscending(t *testing.T) {
	pt := NewPageTable()
	for _, v := range []VPN{9, 1, 7, 3, 5} {
		pt.Set(v, PTE{Frame: FrameID(v)})
	}
	vpns := pt.SortedVPNs()
	for i := 1; i < len(vpns); i++ {
		if vpns[i] <= vpns[i-1] {
			t.Fatalf("not ascending: %v", vpns)
		}
	}
	if len(vpns) != 5 {
		t.Fatalf("len = %d, want 5", len(vpns))
	}
}

func TestRangeSortedEarlyStop(t *testing.T) {
	pt := NewPageTable()
	for v := VPN(0); v < 10; v++ {
		pt.Set(v, PTE{})
	}
	n := 0
	pt.RangeSorted(func(vpn VPN, _ PTE) bool {
		n++
		return vpn < 4 // stop after visiting vpn 4
	})
	if n != 5 {
		t.Fatalf("visited %d entries, want 5", n)
	}
}

func TestPresentCount(t *testing.T) {
	pt := NewPageTable()
	pt.Set(1, PTE{Frame: 1})
	pt.Set(2, PTE{Swapped: true, Frame: NilFrame})
	pt.Set(3, PTE{Frame: 3})
	if got := pt.PresentCount(); got != 2 {
		t.Fatalf("PresentCount = %d, want 2", got)
	}
}

func TestPropertySetLookupRoundTrip(t *testing.T) {
	f := func(vpns []uint32) bool {
		pt := NewPageTable()
		seen := map[VPN]bool{}
		for i, v := range vpns {
			pt.Set(VPN(v), PTE{Frame: FrameID(i)})
			seen[VPN(v)] = true
		}
		if pt.Len() != len(seen) {
			return false
		}
		for v := range seen {
			if _, ok := pt.Lookup(v); !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
