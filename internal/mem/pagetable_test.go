package mem

import (
	"testing"
	"testing/quick"
)

func TestPageTableSetLookupDelete(t *testing.T) {
	pt := NewPageTable()
	if _, ok := pt.Lookup(5); ok {
		t.Fatal("lookup on empty table succeeded")
	}
	pt.Set(5, PTE{Frame: 42, Writable: true})
	e, ok := pt.Lookup(5)
	if !ok || e.Frame != 42 || !e.Writable {
		t.Fatalf("lookup = %+v ok=%v", e, ok)
	}
	if pt.Len() != 1 {
		t.Fatalf("Len = %d, want 1", pt.Len())
	}
	old, ok := pt.Delete(5)
	if !ok || old.Frame != 42 {
		t.Fatalf("delete = %+v ok=%v", old, ok)
	}
	if _, ok := pt.Delete(5); ok {
		t.Fatal("double delete succeeded")
	}
}

func TestSortedVPNsAscending(t *testing.T) {
	pt := NewPageTable()
	for _, v := range []VPN{9, 1, 7, 3, 5} {
		pt.Set(v, PTE{Frame: FrameID(v)})
	}
	vpns := pt.SortedVPNs()
	for i := 1; i < len(vpns); i++ {
		if vpns[i] <= vpns[i-1] {
			t.Fatalf("not ascending: %v", vpns)
		}
	}
	if len(vpns) != 5 {
		t.Fatalf("len = %d, want 5", len(vpns))
	}
}

func TestRangeSortedEarlyStop(t *testing.T) {
	pt := NewPageTable()
	for v := VPN(0); v < 10; v++ {
		pt.Set(v, PTE{})
	}
	n := 0
	pt.RangeSorted(func(vpn VPN, _ PTE) bool {
		n++
		return vpn < 4 // stop after visiting vpn 4
	})
	if n != 5 {
		t.Fatalf("visited %d entries, want 5", n)
	}
}

func TestPresentCount(t *testing.T) {
	pt := NewPageTable()
	pt.Set(1, PTE{Frame: 1})
	pt.Set(2, PTE{Swapped: true, Frame: NilFrame})
	pt.Set(3, PTE{Frame: 3})
	if got := pt.PresentCount(); got != 2 {
		t.Fatalf("PresentCount = %d, want 2", got)
	}
}

func TestPropertySetLookupRoundTrip(t *testing.T) {
	f := func(vpns []uint32) bool {
		pt := NewPageTable()
		seen := map[VPN]bool{}
		for i, v := range vpns {
			pt.Set(VPN(v), PTE{Frame: FrameID(i)})
			seen[VPN(v)] = true
		}
		if pt.Len() != len(seen) {
			return false
		}
		for v := range seen {
			if _, ok := pt.Lookup(v); !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s did not panic", what)
		}
	}()
	fn()
}

func TestHugeLookupSynthesizesRun(t *testing.T) {
	pt := NewPageTable()
	pt.InstallHuge(HugePages, PTE{Frame: 512, Writable: true, LastUse: 7})
	if pt.Len() != 1 || pt.HugeMappings() != 1 {
		t.Fatalf("len=%d huge=%d after one huge install", pt.Len(), pt.HugeMappings())
	}
	for i := VPN(0); i < HugePages; i++ {
		e, ok := pt.Lookup(HugePages + i)
		if !ok {
			t.Fatalf("vpn %d in run not mapped", HugePages+i)
		}
		if !e.Huge || e.Frame != 512+FrameID(i) || !e.Writable || e.LastUse != 7 {
			t.Fatalf("vpn %d synthesized wrong: %+v", HugePages+i, e)
		}
	}
	if _, ok := pt.Lookup(HugePages - 1); ok {
		t.Fatal("page before the run mapped")
	}
	if _, ok := pt.Lookup(2 * HugePages); ok {
		t.Fatal("page after the run mapped")
	}
}

func TestHugeMutationGuards(t *testing.T) {
	pt := NewPageTable()
	pt.InstallHuge(0, PTE{Frame: 0})
	mustPanic(t, "Set of base PTE inside huge run", func() { pt.Set(3, PTE{Frame: 900}) })
	mustPanic(t, "Set of non-huge PTE over huge head", func() { pt.Set(0, PTE{Frame: 900}) })
	mustPanic(t, "Delete inside huge run", func() { pt.Delete(5) })
	mustPanic(t, "Delete of huge head", func() { pt.Delete(0) })
	mustPanic(t, "huge Set at unaligned vpn", func() { pt.Set(HugePages+1, PTE{Frame: 512, Huge: true}) })
	mustPanic(t, "InstallHuge at unaligned vpn", func() { pt.InstallHuge(HugePages+1, PTE{Frame: 512}) })
	mustPanic(t, "InstallHuge over huge run", func() { pt.InstallHuge(0, PTE{Frame: 512}) })
	mustPanic(t, "SplitHuge of non-huge vpn", func() { pt.SplitHuge(HugePages) })
}

func TestInstallHugeDropsBaseEntries(t *testing.T) {
	pt := NewPageTable()
	pt.Set(1, PTE{Frame: 100})
	pt.Set(2, PTE{Frame: 101, Swapped: true, SwapSlot: 9})
	pt.Set(HugePages+3, PTE{Frame: 200})
	pt.InstallHuge(0, PTE{Frame: 0, Writable: true})
	if got := pt.PresentCount(); got != HugePages+1 {
		t.Fatalf("present %d, want run (%d) + outside page", got, HugePages)
	}
	e, _ := pt.Lookup(2)
	if e.Swapped || e.Frame != 2 {
		t.Fatalf("swapped base entry survived collapse: %+v", e)
	}
	if e, _ := pt.Lookup(HugePages + 3); e.Huge || e.Frame != 200 {
		t.Fatalf("entry outside the run disturbed: %+v", e)
	}
}

func TestSplitHugeRoundTrip(t *testing.T) {
	pt := NewPageTable()
	pt.InstallHuge(0, PTE{Frame: 1024, Writable: true, LastUse: 3})
	before := pt.PresentCount()
	pt.SplitHuge(0)
	if pt.HugeMappings() != 0 {
		t.Fatal("huge mapping survived split")
	}
	if pt.PresentCount() != before {
		t.Fatalf("present changed across split: %d -> %d", before, pt.PresentCount())
	}
	if pt.Len() != HugePages {
		t.Fatalf("len %d after split, want %d base entries", pt.Len(), HugePages)
	}
	for i := VPN(0); i < HugePages; i++ {
		e, ok := pt.Lookup(i)
		if !ok || e.Huge || e.Frame != 1024+FrameID(i) || !e.Writable || e.LastUse != 3 {
			t.Fatalf("vpn %d wrong after split: %+v ok=%v", i, e, ok)
		}
	}
	// Base entries are mutable again.
	pt.Set(3, PTE{Frame: 9000})
	if _, ok := pt.Delete(4); !ok {
		t.Fatal("delete of split base entry failed")
	}
	if pt.PresentCount() != before-1 {
		t.Fatalf("present %d after one delete", pt.PresentCount())
	}
}

func TestPresentCountMatchesRecountWithHuge(t *testing.T) {
	pt := NewPageTable()
	pt.Set(5, PTE{Frame: 1})
	pt.Set(6, PTE{Swapped: true, SwapSlot: 1})
	pt.InstallHuge(HugePages, PTE{Frame: 512})
	pt.InstallHuge(4*HugePages, PTE{Frame: 1536})
	pt.SplitHuge(4 * HugePages)
	pt.Delete(4*HugePages + 7)
	recount := 0
	pt.Range(func(_ VPN, e PTE) bool {
		recount += pteResident(e)
		return true
	})
	if pt.PresentCount() != recount {
		t.Fatalf("PresentCount %d, recount %d", pt.PresentCount(), recount)
	}
	if want := 1 + HugePages + (HugePages - 1); recount != want {
		t.Fatalf("recount %d, want %d", recount, want)
	}
}
