package guestos

import (
	"fmt"
	"sort"

	"repro/internal/mem"
)

// File is a file in a guest's disk image. Content is either generated
// deterministically from a seed (regular base-image files: the kernel image,
// shared libraries, the JVM binary, JAR files) or explicit bytes (the shared
// class cache image, whose exact bytes the CDS layer produces).
//
// Two guests whose images contain a file with the same path and the same
// content version produce byte-identical page-cache pages — that identity is
// what lets TPS share the code area and the copied cache file across VMs.
type File struct {
	Path string
	// SizeBytes is the file length; the last page is zero-padded.
	SizeBytes int64
	// ContentSeed generates page bytes when Data is nil.
	ContentSeed mem.Seed
	// Data holds explicit content (used for the shared class cache).
	Data []byte
}

// Pages reports the file length in pages.
func (f *File) Pages(pageSize int) int {
	return int((f.SizeBytes + int64(pageSize) - 1) / int64(pageSize))
}

// FillPage writes the file's content for page idx into dst (len(dst) is the
// page size).
func (f *File) FillPage(dst []byte, idx int) {
	if f.Data != nil {
		for i := range dst {
			dst[i] = 0
		}
		off := idx * len(dst)
		if off < len(f.Data) {
			copy(dst, f.Data[off:])
		}
		return
	}
	start := int64(idx) * int64(len(dst))
	if start >= f.SizeBytes {
		for i := range dst {
			dst[i] = 0
		}
		return
	}
	mem.Fill(dst, mem.Combine(f.ContentSeed, mem.Seed(idx)))
	// Zero-pad the tail of the final page so identical files stay identical
	// regardless of how the simulator sizes pages.
	if rem := f.SizeBytes - start; rem < int64(len(dst)) {
		for i := int(rem); i < len(dst); i++ {
			dst[i] = 0
		}
	}
}

// PageSeed reports the fill seed that produces page idx in full, when the
// page is exactly one deterministic Fill stream: generator-backed, inside
// the file, and not the zero-padded final partial page. Callers with a
// seeded fill path (FillGuestPage and friends) can then install the page
// without materializing bytes; the seed matches FillPage's, so content is
// byte-identical either way. Data-backed and partial pages return false and
// must go through FillPage.
func (f *File) PageSeed(idx, pageSize int) (mem.Seed, bool) {
	if f.Data != nil {
		return 0, false
	}
	start := int64(idx) * int64(pageSize)
	if start >= f.SizeBytes || f.SizeBytes-start < int64(pageSize) {
		return 0, false
	}
	return mem.Combine(f.ContentSeed, mem.Seed(idx)), true
}

// FS is the guest's file system view: a flat path-to-file map, which is all
// the simulation needs (no directories, permissions, or mutation beyond
// whole-file installs).
type FS struct {
	files map[string]*File
}

// NewFS returns an empty file system.
func NewFS() *FS {
	return &FS{files: make(map[string]*File)}
}

// Install adds or replaces a file.
func (fs *FS) Install(f *File) {
	if f.Path == "" {
		panic("guestos: file with empty path")
	}
	if f.Data != nil {
		f.SizeBytes = int64(len(f.Data))
	}
	fs.files[f.Path] = f
}

// InstallGenerated is a convenience for seed-generated base-image files.
// The content seed is derived from the path and a version string only, so
// every guest image carrying the same (path, version) has identical bytes.
func (fs *FS) InstallGenerated(path, version string, sizeBytes int64) *File {
	f := &File{
		Path:        path,
		SizeBytes:   sizeBytes,
		ContentSeed: mem.Combine(mem.HashString(path), mem.HashString(version)),
	}
	fs.Install(f)
	return f
}

// Lookup finds a file by path.
func (fs *FS) Lookup(path string) (*File, bool) {
	f, ok := fs.files[path]
	return f, ok
}

// MustLookup finds a file or panics; loaders use it for files they installed
// themselves.
func (fs *FS) MustLookup(path string) *File {
	f, ok := fs.files[path]
	if !ok {
		panic(fmt.Sprintf("guestos: no such file %q", path))
	}
	return f
}

// Paths lists installed files in sorted order (deterministic iteration).
func (fs *FS) Paths() []string {
	out := make([]string, 0, len(fs.files))
	for p := range fs.files {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}
