// Package guestos models the guest operating system layer: a kernel with
// text/data/slab memory and a page cache, a file system backed by the VM's
// disk image, and user processes with virtual memory areas and guest page
// tables. It provides the first of the paper's three translation layers
// (guest virtual → guest physical); the hypervisor provides the rest.
package guestos

import (
	"fmt"

	"repro/internal/mem"
)

// Machine is the virtual hardware a guest kernel boots on: guest physical
// memory backed by some hypervisor. Two implementations exist, matching the
// paper's Fig. 1: the process-VM hypervisor (internal/hypervisor, KVM-style,
// three translation layers) and the system-VM hypervisor
// (internal/powervm, PowerVM-style, two layers).
type Machine interface {
	Name() string
	Seed() mem.Seed
	PageSize() int
	GuestPages() int
	TouchGuestPage(gpfn uint64, write bool)
	ReadGuestPage(gpfn uint64) []byte
	WriteGuestPage(gpfn uint64, off int, data []byte)
	FillGuestPage(gpfn uint64, seed mem.Seed)
	ZeroGuestPage(gpfn uint64)
	ReleaseGuestPage(gpfn uint64)
}

// KernelConfig sizes the guest kernel's own memory at boot.
type KernelConfig struct {
	// Version identifies the kernel build; kernels with the same version
	// have byte-identical text pages across VMs (same base image).
	Version string
	// TextBytes is the kernel code + read-only data (identical across VMs).
	TextBytes int64
	// DataBytes is boot-time kernel data (per-VM content).
	DataBytes int64
	// SlabBytes is dynamic kernel allocations that grow at boot
	// (per-VM content).
	SlabBytes int64
}

// pageOwner tags who holds a guest physical page, for the analyzer.
type pageOwner uint8

const (
	ownerNone pageOwner = iota
	ownerKernelText
	ownerKernelData
	ownerKernelSlab
	ownerPageCache
	ownerProcess
)

// cacheKey identifies one page of one file in the page cache.
type cacheKey struct {
	path string
	idx  int
}

// Kernel is the guest operating system instance of one VM.
type Kernel struct {
	vm       Machine
	fs       *FS
	pageSize int

	freePFNs []uint64
	owners   []pageOwner // indexed by gpfn
	// mapCount tracks, per gpfn, how many process PTEs map the page; the
	// analyzer uses it to decide whether a page-cache page is process
	// memory (mapped) or kernel buffer/cache (unmapped).
	mapCount []int32

	pageCache map[cacheKey]uint64
	cacheFIFO []cacheKey // reclaim order

	procs   []*Process
	nextPID int

	bootSeed mem.Seed

	stats KernelStats
}

// KernelStats counts guest-level memory events.
type KernelStats struct {
	PageCacheFills uint64
	PageCacheDrops uint64
	PageCacheDirty uint64
	OOMReclaims    uint64
	ProcAnonFaults uint64
	ProcFileFaults uint64
}

// Boot initializes a guest OS on the VM, populating kernel text, data and
// slab memory and creating the file system.
func Boot(vm Machine, cfg KernelConfig) *Kernel {
	k := &Kernel{
		vm:        vm,
		fs:        NewFS(),
		pageSize:  vm.PageSize(),
		owners:    make([]pageOwner, vm.GuestPages()),
		mapCount:  make([]int32, vm.GuestPages()),
		pageCache: make(map[cacheKey]uint64),
		nextPID:   1,
		bootSeed:  mem.Combine(mem.HashString("guest-boot"), vm.Seed()),
	}
	// Free list: hand out low PFNs first so the kernel occupies the same
	// guest physical range in every VM (no KASLR, as on the paper's RHEL 5).
	k.freePFNs = make([]uint64, 0, vm.GuestPages())
	for pfn := vm.GuestPages() - 1; pfn >= 0; pfn-- {
		k.freePFNs = append(k.freePFNs, uint64(pfn))
	}

	textSeed := mem.Combine(mem.HashString("kernel-text"), mem.HashString(cfg.Version))
	for i := 0; i < int(cfg.TextBytes/int64(k.pageSize)); i++ {
		pfn := k.allocPFN(ownerKernelText)
		vm.FillGuestPage(pfn, mem.Combine(textSeed, mem.Seed(i)))
	}
	for i := 0; i < int(cfg.DataBytes/int64(k.pageSize)); i++ {
		pfn := k.allocPFN(ownerKernelData)
		vm.FillGuestPage(pfn, mem.Combine(k.bootSeed, mem.HashString("kdata"), mem.Seed(i)))
	}
	for i := 0; i < int(cfg.SlabBytes/int64(k.pageSize)); i++ {
		pfn := k.allocPFN(ownerKernelSlab)
		vm.FillGuestPage(pfn, mem.Combine(k.bootSeed, mem.HashString("slab"), mem.Seed(i)))
	}
	return k
}

// VM returns the underlying virtual machine.
func (k *Kernel) VM() Machine { return k.vm }

// Migrate re-points the kernel at a different virtual machine — the
// destination of a live migration, whose guest physical memory the
// migration engine has already made byte-identical to the source's. Guest
// state (page owners, file system, processes, page cache) is guest
// physical and travels with the memory image, so nothing else changes;
// every process access funnels through the kernel's vm and follows the
// switch. The replacement machine must have identical geometry.
func (k *Kernel) Migrate(vm Machine) {
	if vm.GuestPages() != len(k.owners) || vm.PageSize() != k.pageSize {
		panic("guestos: Migrate onto a machine with different memory geometry")
	}
	k.vm = vm
}

// FS returns the guest file system.
func (k *Kernel) FS() *FS { return k.fs }

// PageSize reports the page size in bytes.
func (k *Kernel) PageSize() int { return k.pageSize }

// Stats returns a snapshot of kernel counters.
func (k *Kernel) Stats() KernelStats { return k.stats }

// Processes lists user processes in spawn order.
func (k *Kernel) Processes() []*Process { return k.procs }

// allocPFN takes a guest physical page, reclaiming page cache under
// pressure. Exhausting guest memory entirely panics: the scenarios size
// guests so that anonymous memory fits, as the paper's do.
func (k *Kernel) allocPFN(owner pageOwner) uint64 {
	if len(k.freePFNs) == 0 && !k.reclaimOne() {
		panic(fmt.Sprintf("guestos: VM %q out of guest memory", k.vm.Name()))
	}
	pfn := k.freePFNs[len(k.freePFNs)-1]
	k.freePFNs = k.freePFNs[:len(k.freePFNs)-1]
	k.owners[pfn] = owner
	return pfn
}

// freePFN returns a page to the free list and releases its host backing.
func (k *Kernel) freePFN(pfn uint64) {
	k.owners[pfn] = ownerNone
	k.mapCount[pfn] = 0
	k.vm.ReleaseGuestPage(pfn)
	k.freePFNs = append(k.freePFNs, pfn)
}

// reclaimOne drops one unmapped page-cache page (FIFO), reporting false when
// nothing is reclaimable. The scan is bounded to one full rotation of the
// FIFO: mapped pages rotate to the tail and stale keys fall out.
func (k *Kernel) reclaimOne() bool {
	for scanned, limit := 0, len(k.cacheFIFO); scanned < limit && len(k.cacheFIFO) > 0; scanned++ {
		key := k.cacheFIFO[0]
		k.cacheFIFO = k.cacheFIFO[1:]
		pfn, ok := k.pageCache[key]
		if !ok {
			continue // stale: already dropped
		}
		if k.mapCount[pfn] > 0 {
			k.cacheFIFO = append(k.cacheFIFO, key)
			continue
		}
		delete(k.pageCache, key)
		k.freePFN(pfn)
		k.stats.OOMReclaims++
		k.stats.PageCacheDrops++
		return true
	}
	return false
}

// ReclaimPages drops up to n unmapped page-cache pages (balloon inflation
// asks the guest for memory and the guest shrinks its disk cache first),
// returning how many pages were freed.
func (k *Kernel) ReclaimPages(n int) int {
	freed := 0
	for freed < n && k.reclaimOne() {
		freed++
	}
	return freed
}

// pageCacheGet returns the guest page holding file content page idx, reading
// it "from disk" (filling from the file's deterministic content) on a miss.
func (k *Kernel) pageCacheGet(f *File, idx int) uint64 {
	key := cacheKey{path: f.Path, idx: idx}
	if pfn, ok := k.pageCache[key]; ok {
		return pfn
	}
	pfn := k.allocPFN(ownerPageCache)
	if seed, ok := f.PageSeed(idx, k.pageSize); ok {
		// Full generator pages install as a seed, not bytes: the backing
		// frame stays unmaterialized until something actually reads it, and
		// identical file pages across guests share one interned buffer.
		k.vm.FillGuestPage(pfn, seed)
	} else {
		buf := make([]byte, k.pageSize)
		f.FillPage(buf, idx)
		k.vm.WriteGuestPage(pfn, 0, buf)
	}
	k.pageCache[key] = pfn
	k.cacheFIFO = append(k.cacheFIFO, key)
	k.stats.PageCacheFills++
	return pfn
}

// AppendFile models a buffered log write: the file grows by n bytes and the
// affected page-cache pages are (re)written with writer-specific content.
// Application-server logs are the classic source of dirty, per-VM page
// cache that never shares across guests.
func (k *Kernel) AppendFile(path string, n int, seed mem.Seed) {
	f := k.fs.MustLookup(path)
	start := f.SizeBytes
	f.SizeBytes += int64(n)
	firstPage := int(start / int64(k.pageSize))
	lastPage := int((f.SizeBytes - 1) / int64(k.pageSize))
	for idx := firstPage; idx <= lastPage; idx++ {
		pfn := k.pageCacheGet(f, idx)
		// Overwrite with the writer's bytes; the generator content is stale
		// once the file has been appended to.
		k.vm.FillGuestPage(pfn, mem.Combine(seed, mem.HashString(path), mem.Seed(idx)))
		k.stats.PageCacheDirty++
	}
}

// ReadFileAll touches every page of a file through the page cache (what a
// sequential read or a classloader scan does), warming identical pages into
// guest memory.
func (k *Kernel) ReadFileAll(path string) {
	f := k.fs.MustLookup(path)
	for i := 0; i < f.Pages(k.pageSize); i++ {
		k.pageCacheGet(f, i)
	}
}

// DropCaches evicts every unmapped page-cache page (echo 3 >
// /proc/sys/vm/drop_caches).
func (k *Kernel) DropCaches() {
	for key, pfn := range clonePageCache(k.pageCache) {
		if k.mapCount[pfn] > 0 {
			continue
		}
		delete(k.pageCache, key)
		k.freePFN(pfn)
		k.stats.PageCacheDrops++
	}
}

func clonePageCache(m map[cacheKey]uint64) map[cacheKey]uint64 {
	out := make(map[cacheKey]uint64, len(m))
	for k2, v := range m {
		out[k2] = v
	}
	return out
}

// KernelPageCount reports the guest pages held by the kernel itself, split
// by class. Unmapped page-cache pages count as kernel (the paper's "guest
// kernel including buffers and caches").
type KernelPageCount struct {
	Text, Data, Slab      int
	PageCacheUnmapped     int
	PageCacheMappedShared int // cache pages currently mapped by processes
}

// CountKernelPages tallies kernel-owned guest pages.
func (k *Kernel) CountKernelPages() KernelPageCount {
	var c KernelPageCount
	for pfn, o := range k.owners {
		switch o {
		case ownerKernelText:
			c.Text++
		case ownerKernelData:
			c.Data++
		case ownerKernelSlab:
			c.Slab++
		case ownerPageCache:
			if k.mapCount[pfn] > 0 {
				c.PageCacheMappedShared++
			} else {
				c.PageCacheUnmapped++
			}
		}
	}
	return c
}

// UsedGuestPages reports all allocated guest pages (kernel + processes).
func (k *Kernel) UsedGuestPages() int {
	return k.vm.GuestPages() - len(k.freePFNs)
}

// KernelClass labels kernel-owned guest pages for the analyzer.
type KernelClass string

// Kernel page classes. Page-cache pages mapped into processes are NOT
// listed here: the paper's methodology attributes them to the mapping
// processes, and the analyzer discovers them through the process walks.
const (
	KernelText          KernelClass = "kernel-text"
	KernelData          KernelClass = "kernel-data"
	KernelSlab          KernelClass = "kernel-slab"
	KernelCacheUnmapped KernelClass = "page-cache"
)

// KernelPage is one kernel-owned guest page.
type KernelPage struct {
	GPFN  uint64
	Class KernelClass
}

// KernelOwnedPages lists guest pages attributed to the kernel itself:
// text, data, slab, and page-cache pages not currently mapped by any
// process ("buffers and caches" in the paper's Fig. 2 category).
func (k *Kernel) KernelOwnedPages() []KernelPage {
	var out []KernelPage
	for pfn, o := range k.owners {
		switch o {
		case ownerKernelText:
			out = append(out, KernelPage{uint64(pfn), KernelText})
		case ownerKernelData:
			out = append(out, KernelPage{uint64(pfn), KernelData})
		case ownerKernelSlab:
			out = append(out, KernelPage{uint64(pfn), KernelSlab})
		case ownerPageCache:
			if k.mapCount[pfn] == 0 {
				out = append(out, KernelPage{uint64(pfn), KernelCacheUnmapped})
			}
		}
	}
	return out
}
