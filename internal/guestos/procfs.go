package guestos

import (
	"fmt"
	"strings"
)

// This file provides the /proc-style introspection surface the paper's
// methodology starts from (§2.A mentions /proc/<pid>/smaps and its PSS
// values): per-process smaps rows and a kernel meminfo summary. The
// host-physical attribution — which needs the other translation layers —
// lives in internal/memanalysis.

// SmapsRow describes one VMA like a /proc/<pid>/smaps entry.
type SmapsRow struct {
	Start, End uint64 // byte addresses
	Kind       VMAKind
	Category   string
	Label      string
	SizeBytes  int64
	RSSBytes   int64
}

// Smaps reports the process's memory map with resident sizes, ordered by
// address.
func (p *Process) Smaps() []SmapsRow {
	ps := int64(p.kernel.pageSize)
	var rows []SmapsRow
	for _, v := range p.SortedVMAs() {
		rss := int64(0)
		for vpn := v.Start; vpn < v.End; vpn++ {
			if _, ok := p.pt.Lookup(vpn); ok {
				rss += ps
			}
		}
		rows = append(rows, SmapsRow{
			Start:     uint64(v.Start) * uint64(ps),
			End:       uint64(v.End) * uint64(ps),
			Kind:      v.Kind,
			Category:  v.Category,
			Label:     v.Label,
			SizeBytes: int64(v.Pages()) * ps,
			RSSBytes:  rss,
		})
	}
	return rows
}

// RSSBytes totals the process's resident set.
func (p *Process) RSSBytes() int64 {
	return int64(p.ResidentPages()) * int64(p.kernel.pageSize)
}

// FormatSmaps renders the map in a smaps-like text format.
func (p *Process) FormatSmaps() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (pid %d) — %d VMAs, RSS %d kB\n", p.Name, p.PID, len(p.vmas), p.RSSBytes()/1024)
	for _, r := range p.Smaps() {
		kind := "anon"
		if r.Kind == VMAFile {
			kind = "file"
		}
		fmt.Fprintf(&b, "%012x-%012x %s %-20s %-28s Size:%8d kB  Rss:%8d kB\n",
			r.Start, r.End, kind, r.Category, r.Label, r.SizeBytes/1024, r.RSSBytes/1024)
	}
	return b.String()
}

// MemInfo is the guest's /proc/meminfo summary.
type MemInfo struct {
	MemTotalBytes int64
	MemFreeBytes  int64
	CachedBytes   int64 // page cache (mapped + unmapped)
	SlabBytes     int64
	KernelBytes   int64 // text + data
	AnonBytes     int64 // process-private pages
}

// MemInfo summarizes the guest's physical memory usage from the kernel's
// own view.
func (k *Kernel) MemInfo() MemInfo {
	ps := int64(k.pageSize)
	mi := MemInfo{MemTotalBytes: int64(k.vm.GuestPages()) * ps}
	for _, o := range k.owners {
		switch o {
		case ownerNone:
			// counted via free list below
		case ownerKernelText, ownerKernelData:
			mi.KernelBytes += ps
		case ownerKernelSlab:
			mi.SlabBytes += ps
		case ownerPageCache:
			mi.CachedBytes += ps
		case ownerProcess:
			mi.AnonBytes += ps
		}
	}
	mi.MemFreeBytes = int64(len(k.freePFNs)) * ps
	return mi
}

// String renders the meminfo in the familiar format.
func (mi MemInfo) String() string {
	return fmt.Sprintf(
		"MemTotal: %8d kB\nMemFree:  %8d kB\nCached:   %8d kB\nSlab:     %8d kB\nKernel:   %8d kB\nAnonPages:%8d kB",
		mi.MemTotalBytes/1024, mi.MemFreeBytes/1024, mi.CachedBytes/1024,
		mi.SlabBytes/1024, mi.KernelBytes/1024, mi.AnonBytes/1024)
}
