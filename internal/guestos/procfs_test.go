package guestos

import (
	"strings"
	"testing"
)

func TestSmapsReflectsVMAs(t *testing.T) {
	k := bootVM(t, 128, KernelConfig{Version: "v", TextBytes: 2 * pg})
	f := k.FS().InstallGenerated("/bin/app", "1", 4*pg)
	p := k.Spawn("app", false)
	cv := p.MapFile(f, 0, 0, "code", "/bin/app")
	av := p.MapAnon(8, "heap", "app-heap")
	p.TouchAll(cv, false)
	p.Touch(av.Start, true)
	p.Touch(av.Start+1, true)

	rows := p.Smaps()
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	byLabel := map[string]SmapsRow{}
	for _, r := range rows {
		byLabel[r.Label] = r
	}
	code := byLabel["/bin/app"]
	if code.Kind != VMAFile || code.SizeBytes != 4*pg || code.RSSBytes != 4*pg {
		t.Fatalf("code row wrong: %+v", code)
	}
	heap := byLabel["app-heap"]
	if heap.Kind != VMAAnon || heap.SizeBytes != 8*pg || heap.RSSBytes != 2*pg {
		t.Fatalf("heap row wrong: %+v", heap)
	}
	if p.RSSBytes() != 6*pg {
		t.Fatalf("RSS = %d, want %d", p.RSSBytes(), 6*pg)
	}
	out := p.FormatSmaps()
	if !strings.Contains(out, "/bin/app") || !strings.Contains(out, "Rss:") {
		t.Fatalf("smaps text:\n%s", out)
	}
}

func TestMemInfoAccountsEverything(t *testing.T) {
	k := bootVM(t, 256, KernelConfig{Version: "v", TextBytes: 4 * pg, DataBytes: 2 * pg, SlabBytes: 3 * pg})
	k.FS().InstallGenerated("/f", "1", 8*pg)
	k.ReadFileAll("/f")
	p := k.Spawn("app", false)
	v := p.MapAnon(5, "heap", "h")
	p.TouchAll(v, true)

	mi := k.MemInfo()
	if mi.MemTotalBytes != 256*pg {
		t.Fatalf("MemTotal = %d", mi.MemTotalBytes)
	}
	if mi.KernelBytes != 6*pg || mi.SlabBytes != 3*pg {
		t.Fatalf("kernel/slab wrong: %+v", mi)
	}
	if mi.CachedBytes != 8*pg {
		t.Fatalf("Cached = %d", mi.CachedBytes)
	}
	if mi.AnonBytes != 5*pg {
		t.Fatalf("Anon = %d", mi.AnonBytes)
	}
	sum := mi.MemFreeBytes + mi.CachedBytes + mi.SlabBytes + mi.KernelBytes + mi.AnonBytes
	if sum != mi.MemTotalBytes {
		t.Fatalf("meminfo does not partition total: %d != %d", sum, mi.MemTotalBytes)
	}
	if !strings.Contains(mi.String(), "MemTotal") {
		t.Fatal("String() wrong")
	}
}
