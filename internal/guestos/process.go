package guestos

import (
	"fmt"
	"sort"

	"repro/internal/mem"
)

// VMAKind distinguishes anonymous memory from read-only file mappings.
type VMAKind uint8

const (
	// VMAAnon is demand-zero anonymous memory (heap, arenas, stacks).
	VMAAnon VMAKind = iota
	// VMAFile is a read-only file-backed mapping served by the page cache
	// (executables, shared libraries, the shared class cache).
	VMAFile
)

// VMA is a virtual memory area of a process. Category carries the paper's
// Table 4 label ("Code area", "Class metadata", …) so the analyzer can
// produce the detailed Java breakdowns; non-Java processes use free-form
// labels.
type VMA struct {
	Start, End mem.VPN // [Start, End) in guest-virtual pages
	Kind       VMAKind
	File       *File
	FileOffPgs int
	Category   string
	Label      string
}

// Pages reports the VMA length in pages.
func (v *VMA) Pages() int { return int(v.End - v.Start) }

// Contains reports whether vpn falls inside the area.
func (v *VMA) Contains(vpn mem.VPN) bool { return vpn >= v.Start && vpn < v.End }

// Process is a guest user process: an ordered set of VMAs plus a guest page
// table mapping guest-virtual pages to guest-physical pages.
type Process struct {
	kernel *Kernel
	PID    int
	Name   string
	// IsJava marks JVM processes; the owner-oriented analyzer prefers them
	// as page owners, as the paper's methodology does.
	IsJava bool

	vmas []*VMA
	pt   *mem.PageTable

	// mmapCursor is where the next VMA is placed; its initial value is
	// ASLR-randomized per process so absolute addresses (and therefore any
	// pointers embedded in page contents) differ across processes and VMs.
	mmapCursor mem.VPN

	seed mem.Seed
}

// Spawn creates a process. PIDs increase monotonically within a guest from a
// boot-randomized origin, so PIDs bear no relationship across VMs (the
// paper notes the same of its testbed).
func (k *Kernel) Spawn(name string, isJava bool) *Process {
	if k.nextPID == 1 {
		k.nextPID = 100 + int(uint64(mem.Mix(k.bootSeed))%400)
	}
	p := &Process{
		kernel:     k,
		PID:        k.nextPID,
		Name:       name,
		IsJava:     isJava,
		pt:         mem.NewPageTable(),
		seed:       mem.Combine(k.bootSeed, mem.HashString(name), mem.Seed(k.nextPID)),
		mmapCursor: mem.VPN(0x10000 + uint64(mem.Mix(mem.Combine(k.bootSeed, mem.Seed(k.nextPID))))%4096),
	}
	k.nextPID += 1 + int(uint64(mem.Mix(p.seed))%7)
	k.procs = append(k.procs, p)
	return p
}

// Exit unmaps everything and removes the process from the kernel's table.
func (p *Process) Exit() {
	for _, v := range append([]*VMA(nil), p.vmas...) {
		p.Unmap(v)
	}
	for i, q := range p.kernel.procs {
		if q == p {
			p.kernel.procs = append(p.kernel.procs[:i], p.kernel.procs[i+1:]...)
			break
		}
	}
}

// Kernel returns the owning guest kernel.
func (p *Process) Kernel() *Kernel { return p.kernel }

// Seed returns the process's layout-randomization seed.
func (p *Process) Seed() mem.Seed { return p.seed }

// VMAs lists the process's areas in mapping order.
func (p *Process) VMAs() []*VMA { return p.vmas }

// PageTable exposes the guest page table for the analyzer.
func (p *Process) PageTable() *mem.PageTable { return p.pt }

// MapAnon creates an anonymous demand-zero area.
func (p *Process) MapAnon(pages int, category, label string) *VMA {
	if pages <= 0 {
		panic(fmt.Sprintf("guestos: MapAnon(%d)", pages))
	}
	v := &VMA{
		Start:    p.mmapCursor,
		End:      p.mmapCursor + mem.VPN(pages),
		Kind:     VMAAnon,
		Category: category,
		Label:    label,
	}
	p.mmapCursor = v.End + 16 // guard gap
	p.vmas = append(p.vmas, v)
	return v
}

// MapFile maps pages of a file read-only starting at file page offPgs. A
// pages value of 0 maps the whole remainder of the file.
func (p *Process) MapFile(f *File, offPgs, pages int, category, label string) *VMA {
	filePages := f.Pages(p.kernel.pageSize)
	if pages == 0 {
		pages = filePages - offPgs
	}
	if offPgs < 0 || pages <= 0 || offPgs+pages > filePages {
		panic(fmt.Sprintf("guestos: MapFile(%q, off=%d, pages=%d) outside %d file pages", f.Path, offPgs, pages, filePages))
	}
	v := &VMA{
		Start:      p.mmapCursor,
		End:        p.mmapCursor + mem.VPN(pages),
		Kind:       VMAFile,
		File:       f,
		FileOffPgs: offPgs,
		Category:   category,
		Label:      label,
	}
	p.mmapCursor = v.End + 16
	p.vmas = append(p.vmas, v)
	return v
}

// Unmap removes an area, releasing anonymous pages and unpinning file pages.
func (p *Process) Unmap(v *VMA) {
	for vpn := v.Start; vpn < v.End; vpn++ {
		pte, ok := p.pt.Delete(vpn)
		if !ok {
			continue
		}
		gpfn := uint64(pte.Frame)
		switch v.Kind {
		case VMAAnon:
			p.kernel.freePFN(gpfn)
		case VMAFile:
			p.kernel.mapCount[gpfn]--
		}
	}
	for i, q := range p.vmas {
		if q == v {
			p.vmas = append(p.vmas[:i], p.vmas[i+1:]...)
			return
		}
	}
}

// findVMA locates the area containing vpn.
func (p *Process) findVMA(vpn mem.VPN) *VMA {
	for _, v := range p.vmas {
		if v.Contains(vpn) {
			return v
		}
	}
	return nil
}

// ensure resolves a guest-virtual page to a guest-physical page, faulting it
// in on first touch.
func (p *Process) ensure(vpn mem.VPN, write bool) uint64 {
	if pte, ok := p.pt.Lookup(vpn); ok {
		gpfn := uint64(pte.Frame)
		if write && !pte.Writable {
			panic(fmt.Sprintf("guestos: write to read-only page %#x in %s", vpn, p.Name))
		}
		// Propagate the access to the host layer (demand paging, swap-in,
		// COW breaking all live there).
		p.kernel.vm.TouchGuestPage(gpfn, write)
		return gpfn
	}
	v := p.findVMA(vpn)
	if v == nil {
		panic(fmt.Sprintf("guestos: segfault at page %#x in %s (pid %d)", vpn, p.Name, p.PID))
	}
	switch v.Kind {
	case VMAAnon:
		gpfn := p.kernel.allocPFN(ownerProcess)
		p.kernel.mapCount[gpfn] = 1
		p.pt.Set(vpn, mem.PTE{Frame: mem.FrameID(gpfn), Writable: true})
		p.kernel.stats.ProcAnonFaults++
		p.kernel.vm.TouchGuestPage(gpfn, write)
		return gpfn
	case VMAFile:
		if write {
			panic(fmt.Sprintf("guestos: write fault on read-only file mapping %q", v.File.Path))
		}
		idx := v.FileOffPgs + int(vpn-v.Start)
		gpfn := p.kernel.pageCacheGet(v.File, idx)
		p.kernel.mapCount[gpfn]++
		p.pt.Set(vpn, mem.PTE{Frame: mem.FrameID(gpfn), Writable: false})
		p.kernel.stats.ProcFileFaults++
		p.kernel.vm.TouchGuestPage(gpfn, false)
		return gpfn
	default:
		panic("guestos: unknown VMA kind")
	}
}

// Touch simulates an access to a guest-virtual page.
func (p *Process) Touch(vpn mem.VPN, write bool) {
	p.ensure(vpn, write)
}

// WritePage writes bytes into a page at byte offset off.
func (p *Process) WritePage(vpn mem.VPN, off int, data []byte) {
	gpfn := p.ensure(vpn, true)
	p.kernel.vm.WriteGuestPage(gpfn, off, data)
}

// FillPage overwrites a whole anonymous page with seed-derived content.
func (p *Process) FillPage(vpn mem.VPN, seed mem.Seed) {
	gpfn := p.ensure(vpn, true)
	p.kernel.vm.FillGuestPage(gpfn, seed)
}

// ZeroPage clears a page to zeros (GC sweep, arena recycling).
func (p *Process) ZeroPage(vpn mem.VPN) {
	gpfn := p.ensure(vpn, true)
	p.kernel.vm.ZeroGuestPage(gpfn)
}

// ReadPage returns a read-only view of the page's current bytes.
func (p *Process) ReadPage(vpn mem.VPN) []byte {
	gpfn := p.ensure(vpn, false)
	return p.kernel.vm.ReadGuestPage(gpfn)
}

// ResidentPages counts pages currently mapped in the process.
func (p *Process) ResidentPages() int { return p.pt.Len() }

// TouchAll faults in an entire VMA (readahead / eager population).
func (p *Process) TouchAll(v *VMA, write bool) {
	for vpn := v.Start; vpn < v.End; vpn++ {
		p.ensure(vpn, write)
	}
}

// SortedVMAs returns the areas ordered by start address.
func (p *Process) SortedVMAs() []*VMA {
	out := append([]*VMA(nil), p.vmas...)
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}
