package guestos

import (
	"testing"
	"testing/quick"

	"repro/internal/hypervisor"
	"repro/internal/mem"
	"repro/internal/simclock"
)

const pg = mem.DefaultPageSize

func bootVM(t *testing.T, guestPages int, cfg KernelConfig) *Kernel {
	if t != nil {
		t.Helper()
	}
	clock := simclock.New()
	host := hypervisor.NewHost(hypervisor.Config{Name: "t", RAMBytes: int64(guestPages*4) * pg}, clock)
	vm := host.NewVM(hypervisor.VMConfig{Name: "vm1", GuestMemBytes: int64(guestPages) * pg, Seed: 11})
	return Boot(vm, cfg)
}

func TestBootKernelMemory(t *testing.T) {
	k := bootVM(t, 256, KernelConfig{Version: "2.6.18", TextBytes: 8 * pg, DataBytes: 4 * pg, SlabBytes: 2 * pg})
	c := k.CountKernelPages()
	if c.Text != 8 || c.Data != 4 || c.Slab != 2 {
		t.Fatalf("kernel pages = %+v", c)
	}
	if got := k.UsedGuestPages(); got != 14 {
		t.Fatalf("used guest pages = %d, want 14", got)
	}
}

func TestKernelTextIdenticalAcrossVMs(t *testing.T) {
	clock := simclock.New()
	host := hypervisor.NewHost(hypervisor.Config{Name: "t", RAMBytes: 1024 * pg}, clock)
	cfg := KernelConfig{Version: "2.6.18", TextBytes: 4 * pg, DataBytes: 4 * pg}
	vm1 := host.NewVM(hypervisor.VMConfig{Name: "vm1", GuestMemBytes: 128 * pg, Seed: 1})
	vm2 := host.NewVM(hypervisor.VMConfig{Name: "vm2", GuestMemBytes: 128 * pg, Seed: 2})
	Boot(vm1, cfg)
	Boot(vm2, cfg)
	// Kernel text occupies the same low gpfns in both VMs with identical
	// content; kernel data must differ.
	for gpfn := uint64(0); gpfn < 4; gpfn++ {
		b1 := vm1.ReadGuestPage(gpfn)
		b2 := vm2.ReadGuestPage(gpfn)
		for i := range b1 {
			if b1[i] != b2[i] {
				t.Fatalf("kernel text page %d differs across VMs", gpfn)
			}
		}
	}
	d1 := vm1.ReadGuestPage(5)
	d2 := vm2.ReadGuestPage(5)
	same := true
	for i := range d1 {
		if d1[i] != d2[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("kernel data identical across VMs; boot seed unused")
	}
}

func TestSpawnPIDsMonotonicAndJittered(t *testing.T) {
	k := bootVM(t, 128, KernelConfig{Version: "v", TextBytes: pg})
	p1 := k.Spawn("init", false)
	p2 := k.Spawn("sshd", false)
	p3 := k.Spawn("java", true)
	if !(p1.PID < p2.PID && p2.PID < p3.PID) {
		t.Fatalf("PIDs not monotonic: %d %d %d", p1.PID, p2.PID, p3.PID)
	}
	if len(k.Processes()) != 3 {
		t.Fatalf("process count = %d", len(k.Processes()))
	}
}

func TestAnonMappingDemandZero(t *testing.T) {
	k := bootVM(t, 128, KernelConfig{Version: "v"})
	p := k.Spawn("app", false)
	v := p.MapAnon(8, "heap", "test-heap")
	if p.ResidentPages() != 0 {
		t.Fatal("anon VMA eagerly populated")
	}
	p.WritePage(v.Start, 10, []byte{1, 2})
	if p.ResidentPages() != 1 {
		t.Fatalf("resident = %d, want 1", p.ResidentPages())
	}
	b := p.ReadPage(v.Start)
	if b[10] != 1 || b[11] != 2 {
		t.Fatal("write not visible")
	}
	b2 := p.ReadPage(v.Start + 1)
	for _, c := range b2 {
		if c != 0 {
			t.Fatal("fresh anon page not zero")
		}
	}
}

func TestFileMappingServedByPageCache(t *testing.T) {
	k := bootVM(t, 128, KernelConfig{Version: "v"})
	f := k.FS().InstallGenerated("/usr/bin/prog", "1.0", 6*pg)
	p1 := k.Spawn("a", false)
	p2 := k.Spawn("b", false)
	v1 := p1.MapFile(f, 0, 0, "code", "prog")
	v2 := p2.MapFile(f, 0, 0, "code", "prog")
	if v1.Pages() != 6 {
		t.Fatalf("file vma pages = %d, want 6", v1.Pages())
	}
	p1.TouchAll(v1, false)
	p2.TouchAll(v2, false)
	// Both processes map the same guest-physical pages.
	g1, _ := p1.PageTable().Lookup(v1.Start)
	g2, _ := p2.PageTable().Lookup(v2.Start)
	if g1.Frame != g2.Frame {
		t.Fatal("page cache not shared between processes")
	}
	if k.Stats().PageCacheFills != 6 {
		t.Fatalf("page cache fills = %d, want 6", k.Stats().PageCacheFills)
	}
	// Content matches the file generator.
	want := make([]byte, pg)
	f.FillPage(want, 0)
	got := p1.ReadPage(v1.Start)
	for i := range want {
		if got[i] != want[i] {
			t.Fatal("file page content mismatch")
		}
	}
}

func TestWriteToFileMappingPanics(t *testing.T) {
	k := bootVM(t, 128, KernelConfig{Version: "v"})
	f := k.FS().InstallGenerated("/lib/x.so", "1", 2*pg)
	p := k.Spawn("a", false)
	v := p.MapFile(f, 0, 0, "code", "x")
	defer func() {
		if recover() == nil {
			t.Fatal("write to file mapping did not panic")
		}
	}()
	p.WritePage(v.Start, 0, []byte{1})
}

func TestSegfaultOutsideVMA(t *testing.T) {
	k := bootVM(t, 128, KernelConfig{Version: "v"})
	p := k.Spawn("a", false)
	defer func() {
		if recover() == nil {
			t.Fatal("unmapped access did not panic")
		}
	}()
	p.Touch(0xdead, false)
}

func TestUnmapReleasesAnonPages(t *testing.T) {
	k := bootVM(t, 128, KernelConfig{Version: "v"})
	p := k.Spawn("a", false)
	v := p.MapAnon(8, "heap", "h")
	p.TouchAll(v, true)
	used := k.UsedGuestPages()
	p.Unmap(v)
	if got := k.UsedGuestPages(); got != used-8 {
		t.Fatalf("used pages after unmap = %d, want %d", got, used-8)
	}
	if p.ResidentPages() != 0 {
		t.Fatal("PTEs survived unmap")
	}
}

func TestUnmapFileKeepsPageCache(t *testing.T) {
	k := bootVM(t, 128, KernelConfig{Version: "v"})
	f := k.FS().InstallGenerated("/jar", "1", 4*pg)
	p := k.Spawn("a", false)
	v := p.MapFile(f, 0, 0, "code", "jar")
	p.TouchAll(v, false)
	p.Unmap(v)
	c := k.CountKernelPages()
	if c.PageCacheUnmapped != 4 {
		t.Fatalf("unmapped cache pages = %d, want 4", c.PageCacheUnmapped)
	}
	// Remapping hits the cache, no new fills.
	fills := k.Stats().PageCacheFills
	v2 := p.MapFile(f, 0, 0, "code", "jar")
	p.TouchAll(v2, false)
	if k.Stats().PageCacheFills != fills {
		t.Fatal("remap refilled page cache")
	}
}

func TestExplicitFileContent(t *testing.T) {
	k := bootVM(t, 128, KernelConfig{Version: "v"})
	data := make([]byte, pg+100)
	for i := range data {
		data[i] = byte(i % 251)
	}
	k.FS().Install(&File{Path: "/cache", Data: data})
	f := k.FS().MustLookup("/cache")
	if f.SizeBytes != int64(len(data)) {
		t.Fatalf("size = %d", f.SizeBytes)
	}
	p := k.Spawn("a", false)
	v := p.MapFile(f, 0, 0, "classmeta", "cache")
	if v.Pages() != 2 {
		t.Fatalf("pages = %d, want 2", v.Pages())
	}
	got := p.ReadPage(v.Start + 1)
	if got[0] != data[pg] {
		t.Fatal("explicit content mismatch")
	}
	// Tail beyond EOF is zero.
	if got[200] != 0 {
		t.Fatal("EOF tail not zero-padded")
	}
}

func TestIdenticalFilesAcrossVMsProduceIdenticalPages(t *testing.T) {
	clock := simclock.New()
	host := hypervisor.NewHost(hypervisor.Config{Name: "t", RAMBytes: 1024 * pg}, clock)
	var pages [][]byte
	for i := 0; i < 2; i++ {
		vm := host.NewVM(hypervisor.VMConfig{Name: "vm", GuestMemBytes: 128 * pg, Seed: mem.Seed(i + 1)})
		k := Boot(vm, KernelConfig{Version: "v"})
		f := k.FS().InstallGenerated("/opt/jvm/libjvm.so", "J9-SR9", 4*pg)
		p := k.Spawn("java", true)
		v := p.MapFile(f, 0, 0, "code", "libjvm")
		p.TouchAll(v, false)
		pages = append(pages, append([]byte(nil), p.ReadPage(v.Start+2)...))
	}
	for i := range pages[0] {
		if pages[0][i] != pages[1][i] {
			t.Fatal("same base-image file differs across VMs")
		}
	}
}

func TestPageCacheReclaimUnderPressure(t *testing.T) {
	// Guest with 32 pages; fill page cache with 24 file pages, then demand
	// 20 anon pages: the cache must shrink instead of OOMing.
	k := bootVM(t, 32, KernelConfig{Version: "v"})
	k.FS().InstallGenerated("/big", "1", 24*pg)
	k.ReadFileAll("/big")
	p := k.Spawn("a", false)
	v := p.MapAnon(20, "heap", "h")
	p.TouchAll(v, true)
	if k.Stats().OOMReclaims == 0 {
		t.Fatal("no reclaim happened")
	}
	if k.UsedGuestPages() > 32 {
		t.Fatal("guest over-allocated")
	}
}

func TestDropCaches(t *testing.T) {
	k := bootVM(t, 128, KernelConfig{Version: "v"})
	k.FS().InstallGenerated("/f", "1", 8*pg)
	k.ReadFileAll("/f")
	if k.CountKernelPages().PageCacheUnmapped != 8 {
		t.Fatal("cache not populated")
	}
	k.DropCaches()
	if k.CountKernelPages().PageCacheUnmapped != 0 {
		t.Fatal("DropCaches left pages behind")
	}
}

func TestExitCleansUp(t *testing.T) {
	k := bootVM(t, 128, KernelConfig{Version: "v"})
	p := k.Spawn("a", false)
	v := p.MapAnon(4, "heap", "h")
	p.TouchAll(v, true)
	used := k.UsedGuestPages()
	p.Exit()
	if got := k.UsedGuestPages(); got != used-4 {
		t.Fatalf("used after exit = %d, want %d", got, used-4)
	}
	if len(k.Processes()) != 0 {
		t.Fatal("process still listed after exit")
	}
}

func TestASLRDistinctCursors(t *testing.T) {
	clock := simclock.New()
	host := hypervisor.NewHost(hypervisor.Config{Name: "t", RAMBytes: 1024 * pg}, clock)
	starts := map[mem.VPN]bool{}
	for i := 0; i < 4; i++ {
		vm := host.NewVM(hypervisor.VMConfig{Name: "vm", GuestMemBytes: 64 * pg, Seed: mem.Seed(i + 1)})
		k := Boot(vm, KernelConfig{Version: "v"})
		p := k.Spawn("java", true)
		v := p.MapAnon(1, "heap", "h")
		starts[v.Start] = true
	}
	if len(starts) < 3 {
		t.Fatalf("ASLR too weak: only %d distinct bases of 4", len(starts))
	}
}

// Property: any interleaving of map/touch/unmap keeps guest page accounting
// exact: used pages equals kernel pages + resident process pages + unmapped
// cache pages.
func TestPropertyGuestAccounting(t *testing.T) {
	f := func(ops []uint8) bool {
		k := bootVM(nil, 64, KernelConfig{Version: "v", TextBytes: 2 * pg})
		k.FS().InstallGenerated("/f", "1", 4*pg)
		file := k.FS().MustLookup("/f")
		p := k.Spawn("a", false)
		var anons, files []*VMA
		for _, op := range ops {
			switch op % 5 {
			case 0:
				anons = append(anons, p.MapAnon(2, "heap", "h"))
			case 1:
				files = append(files, p.MapFile(file, 0, 0, "code", "f"))
			case 2:
				if len(anons) > 0 {
					p.TouchAll(anons[len(anons)-1], true)
				}
			case 3:
				if len(files) > 0 {
					p.TouchAll(files[len(files)-1], false)
				}
			case 4:
				if len(anons) > 0 {
					p.Unmap(anons[len(anons)-1])
					anons = anons[:len(anons)-1]
				}
			}
		}
		c := k.CountKernelPages()
		kernelPages := c.Text + c.Data + c.Slab + c.PageCacheUnmapped + c.PageCacheMappedShared
		// Count distinct resident anon pages across the process.
		anonResident := 0
		p.PageTable().Range(func(_ mem.VPN, pte mem.PTE) bool {
			if k.owners[pte.Frame] == ownerProcess {
				anonResident++
			}
			return true
		})
		return k.UsedGuestPages() == kernelPages+anonResident
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestAppendFileDirtiesPageCache(t *testing.T) {
	k := bootVM(t, 256, KernelConfig{Version: "v"})
	k.FS().Install(&File{Path: "/var/log/app.log", SizeBytes: 0, ContentSeed: 1})
	k.AppendFile("/var/log/app.log", 3*pg+100, 42)
	f := k.FS().MustLookup("/var/log/app.log")
	if f.SizeBytes != int64(3*pg+100) {
		t.Fatalf("size = %d", f.SizeBytes)
	}
	if k.Stats().PageCacheDirty == 0 || k.Stats().PageCacheFills == 0 {
		t.Fatalf("stats: %+v", k.Stats())
	}
	// Appends from different writers produce different page content.
	k2 := bootVM(t, 256, KernelConfig{Version: "v"})
	k2.FS().Install(&File{Path: "/var/log/app.log", SizeBytes: 0, ContentSeed: 1})
	k2.AppendFile("/var/log/app.log", 3*pg+100, 43)
	p1 := k.pageCacheGet(k.FS().MustLookup("/var/log/app.log"), 0)
	p2 := k2.pageCacheGet(k2.FS().MustLookup("/var/log/app.log"), 0)
	b1 := k.VM().ReadGuestPage(p1)
	b2 := k2.VM().ReadGuestPage(p2)
	same := true
	for i := range b1 {
		if b1[i] != b2[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different writers produced identical log pages")
	}
}

func TestAppendFileGrowsIncrementally(t *testing.T) {
	k := bootVM(t, 256, KernelConfig{Version: "v"})
	k.FS().Install(&File{Path: "/log", SizeBytes: 0, ContentSeed: 1})
	for i := 0; i < 20; i++ {
		k.AppendFile("/log", 700, 9)
	}
	f := k.FS().MustLookup("/log")
	if f.SizeBytes != 20*700 {
		t.Fatalf("size = %d", f.SizeBytes)
	}
	if got := f.Pages(pg); got != (20*700+pg-1)/pg {
		t.Fatalf("pages = %d", got)
	}
}

func TestFSPathsAndLookup(t *testing.T) {
	k := bootVM(t, 64, KernelConfig{Version: "v"})
	k.FS().InstallGenerated("/b", "1", pg)
	k.FS().InstallGenerated("/a", "1", pg)
	if _, ok := k.FS().Lookup("/a"); !ok {
		t.Fatal("lookup failed")
	}
	if _, ok := k.FS().Lookup("/missing"); ok {
		t.Fatal("phantom file")
	}
	paths := k.FS().Paths()
	if len(paths) != 2 || paths[0] != "/a" || paths[1] != "/b" {
		t.Fatalf("paths = %v", paths)
	}
	if k.PageSize() != pg {
		t.Fatal("PageSize accessor")
	}
}

func TestProcessAccessorsAndPageOps(t *testing.T) {
	k := bootVM(t, 64, KernelConfig{Version: "v"})
	p := k.Spawn("app", false)
	if p.Kernel() != k {
		t.Fatal("Kernel accessor")
	}
	if p.Seed() == 0 {
		t.Fatal("zero process seed")
	}
	v := p.MapAnon(2, "heap", "h")
	if len(p.VMAs()) != 1 {
		t.Fatal("VMAs accessor")
	}
	p.FillPage(v.Start, 9)
	b := p.ReadPage(v.Start)
	nz := false
	for _, c := range b {
		if c != 0 {
			nz = true
			break
		}
	}
	if !nz {
		t.Fatal("FillPage left zeros")
	}
	p.ZeroPage(v.Start)
	b = p.ReadPage(v.Start)
	for _, c := range b {
		if c != 0 {
			t.Fatal("ZeroPage left content")
		}
	}
}

func TestReclaimPagesDirect(t *testing.T) {
	k := bootVM(t, 64, KernelConfig{Version: "v"})
	k.FS().InstallGenerated("/f", "1", 8*pg)
	k.ReadFileAll("/f")
	if got := k.ReclaimPages(3); got != 3 {
		t.Fatalf("reclaimed %d, want 3", got)
	}
	if got := k.ReclaimPages(100); got != 5 {
		t.Fatalf("reclaimed %d, want the remaining 5", got)
	}
	if k.ReclaimPages(1) != 0 {
		t.Fatal("reclaimed from empty cache")
	}
}

func TestKernelOwnedPagesClasses(t *testing.T) {
	k := bootVM(t, 64, KernelConfig{Version: "v", TextBytes: 2 * pg, DataBytes: pg, SlabBytes: pg})
	k.FS().InstallGenerated("/f", "1", 2*pg)
	k.ReadFileAll("/f")
	byClass := map[KernelClass]int{}
	for _, kp := range k.KernelOwnedPages() {
		byClass[kp.Class]++
	}
	if byClass[KernelText] != 2 || byClass[KernelData] != 1 || byClass[KernelSlab] != 1 || byClass[KernelCacheUnmapped] != 2 {
		t.Fatalf("classes = %v", byClass)
	}
}
