// Package memanalysis implements the paper's measurement methodology (§2.A):
// it fully identifies the usage of each host physical page frame by the
// component that allocated it, by walking all three address-translation
// layers — guest page tables, the KVM memslot, and the host page tables —
// exactly as the paper's crash-dump analysis and host kernel module do.
//
// Shared frames are accounted with the paper's owner-oriented approach: one
// process owns the frame (a Java process with the smallest PID when any
// Java process maps it) and is charged its full size; every other mapper
// uses it for free, which directly measures the marginal memory cost of one
// more VM. The distribution-oriented alternative (Linux PSS) is implemented
// alongside for comparison.
package memanalysis

import (
	"sort"

	"repro/internal/guestos"
	"repro/internal/hypervisor"
	"repro/internal/mem"
)

// UserKind classifies who maps a frame.
type UserKind uint8

const (
	// KindProcess is a guest user process mapping (via its page table).
	KindProcess UserKind = iota
	// KindKernel is guest kernel memory (text, data, slab, unmapped cache).
	KindKernel
	// KindVMOverhead is the VM process's own working memory.
	KindVMOverhead
)

// PageUser is one mapper of one frame.
type PageUser struct {
	VM   *hypervisor.VMProcess
	Kind UserKind
	// Proc is set for KindProcess.
	Proc *guestos.Process
	// Category is the VMA category for processes, the kernel page class
	// for kernel pages, and "vm-overhead" for VM overhead.
	Category string
}

func (u PageUser) isJava() bool { return u.Kind == KindProcess && u.Proc.IsJava }

// Analysis is a frozen snapshot of frame attribution.
type Analysis struct {
	pageSize   int
	tlbEntries int
	phys       *mem.PhysMem
	// users lists every (frame, user) mapping pair.
	users map[mem.FrameID][]PageUser
	// owner[frame] is the index into users[frame] of the owning mapper.
	owner map[mem.FrameID]int
}

// Option configures an Analyze run.
type Option func(*Analysis)

// WithTLBEntries sizes the modeled TLB for EstimatedTLBReachBytes. Values
// <= 0 keep the TLBEntries default.
func WithTLBEntries(n int) Option {
	return func(a *Analysis) {
		if n > 0 {
			a.tlbEntries = n
		}
	}
}

// Analyze walks every translation layer of every guest and attributes every
// resident host frame. The kernels slice supplies the guest-OS view of each
// VM (in the same order as host.VMs()).
func Analyze(host *hypervisor.Host, kernels []*guestos.Kernel, opts ...Option) *Analysis {
	a := &Analysis{
		pageSize:   host.PageSize(),
		tlbEntries: TLBEntries,
		phys:       host.Phys(),
		users:      make(map[mem.FrameID][]PageUser),
		owner:      make(map[mem.FrameID]int),
	}
	for _, opt := range opts {
		opt(a)
	}
	for _, k := range kernels {
		a.walkGuest(k)
	}
	a.chooseOwners()
	return a
}

// walkGuest records every mapper within one guest VM. The analyzer is the
// KVM-side tool (it walks the memslot and host page table layers), so the
// kernel must be running on a process-VM machine.
func (a *Analysis) walkGuest(k *guestos.Kernel) {
	vm, ok := k.VM().(*hypervisor.VMProcess)
	if !ok {
		panic("memanalysis: guest is not running on a process-VM (KVM) machine")
	}

	// Kernel-owned pages (text/data/slab/unmapped page cache).
	for _, kp := range k.KernelOwnedPages() {
		if f, ok := vm.ResolveResident(vm.GPFNToHostVPN(kp.GPFN)); ok {
			a.addUser(f, PageUser{VM: vm, Kind: KindKernel, Category: string(kp.Class)})
		}
	}

	// User processes: guest virtual → guest physical → host virtual → frame.
	for _, p := range k.Processes() {
		for _, v := range p.SortedVMAs() {
			for vpn := v.Start; vpn < v.End; vpn++ {
				pte, ok := p.PageTable().Lookup(vpn)
				if !ok {
					continue
				}
				gpfn := uint64(pte.Frame)
				f, ok := vm.ResolveResident(vm.GPFNToHostVPN(gpfn))
				if !ok {
					continue // swapped out: not host physical memory
				}
				a.addUser(f, PageUser{VM: vm, Kind: KindProcess, Proc: p, Category: v.Category})
			}
		}
	}

	// The VM process's own overhead pages.
	start, end := vm.OverheadRegion()
	for vpn := start; vpn < end; vpn++ {
		if f, ok := vm.ResolveResident(vpn); ok {
			a.addUser(f, PageUser{VM: vm, Kind: KindVMOverhead, Category: "vm-overhead"})
		}
	}
}

func (a *Analysis) addUser(f mem.FrameID, u PageUser) {
	a.users[f] = append(a.users[f], u)
}

// chooseOwners applies the paper's rule: if any Java process maps the frame,
// the Java process with the smallest PID owns it (ties broken by VM id);
// otherwise the first mapper in deterministic walk order owns it.
func (a *Analysis) chooseOwners() {
	for f, us := range a.users {
		best := 0
		for i := 1; i < len(us); i++ {
			if ownerLess(us[i], us[best]) {
				best = i
			}
		}
		a.owner[f] = best
	}
}

// ownerLess orders candidate owners: Java processes first (smallest PID,
// then VM id), then everything else in walk order (stable because we only
// replace on strict improvement).
func ownerLess(x, y PageUser) bool {
	xj, yj := x.isJava(), y.isJava()
	if xj != yj {
		return xj
	}
	if !xj {
		return false // non-Java: keep first-walked
	}
	if x.Proc.PID != y.Proc.PID {
		return x.Proc.PID < y.Proc.PID
	}
	return x.VM.ID() < y.VM.ID()
}

// PageSize reports the analyzed page size.
func (a *Analysis) PageSize() int { return a.pageSize }

// SharedFrameCount reports how many frames have more than one mapper.
func (a *Analysis) SharedFrameCount() int {
	n := 0
	for _, us := range a.users {
		if len(us) > 1 {
			n++
		}
	}
	return n
}

// TotalGuestBytes reports all host physical memory attributed to guests.
func (a *Analysis) TotalGuestBytes() int64 {
	return int64(len(a.users)) * int64(a.pageSize)
}

// FrameSizeCounts attributes the analyzed frames by backing page size:
// hugeBacked frames are subpages of transparent huge pages (mapped by one
// 2 MiB entry), base frames are ordinary 4 KiB mappings.
func (a *Analysis) FrameSizeCounts() (hugeBacked, base int) {
	for f := range a.users {
		if a.phys.IsHugeFrame(f) {
			hugeBacked++
		} else {
			base++
		}
	}
	return hugeBacked, base
}

// HugeCoverage reports the fraction of attributed guest frames backed by
// huge mappings — the benefit axis of the THP-vs-KSM tradeoff.
func (a *Analysis) HugeCoverage() float64 {
	huge, base := a.FrameSizeCounts()
	if huge+base == 0 {
		return 0
	}
	return float64(huge) / float64(huge+base)
}

// TLBEntries is the default modeled TLB size for the reach estimate: 1024
// entries, the order of a unified L2 TLB on the paper's era of x86 hosts.
// Override per run with WithTLBEntries.
const TLBEntries = 1024

// EstimatedTLBReachBytes estimates how much of the attributed memory the
// modeled TLB can cover: each distinct huge block with attributed
// huge-backed frames spends one entry (the huge mapping covers the whole
// block — for a partially-split block, the uncarved remainder), and each
// base frame spends one entry on itself. Reach is the TLB entry count times
// the average bytes per mapping entry. Carved-out subpages of a partially
// split block are base frames, so they cost one entry each — exactly the
// per-subpage granularity FHPM trades against sharing.
func (a *Analysis) EstimatedTLBReachBytes() int64 {
	huge, base := a.FrameSizeCounts()
	blocks := make(map[mem.FrameID]struct{})
	for f := range a.users {
		if a.phys.IsHugeFrame(f) {
			blocks[f/mem.HugePages] = struct{}{}
		}
	}
	entries := len(blocks) + base
	if entries == 0 {
		return 0
	}
	totalBytes := int64(huge+base) * int64(a.pageSize)
	return int64(a.tlbEntries) * totalBytes / int64(entries)
}

// TotalSavingsBytes reports cluster-wide TPS savings: for each shared frame,
// every mapper beyond the owner would otherwise need its own copy.
func (a *Analysis) TotalSavingsBytes() int64 {
	var extra int64
	for _, us := range a.users {
		extra += int64(len(us) - 1)
	}
	return extra * int64(a.pageSize)
}

// VMBreakdown is one guest VM's bar in Fig. 2 / Fig. 4.
type VMBreakdown struct {
	VMName string
	VMID   int
	// Owner-oriented physical usage in bytes by component.
	JavaBytes       int64
	OtherProcBytes  int64
	KernelBytes     int64
	VMOverheadBytes int64
	// SavingsBytes is guest memory this VM maps without owning — the
	// "Saving by TPS in guest" bars.
	SavingsBytes int64
}

// Total reports the VM's owner-oriented physical usage.
func (b VMBreakdown) Total() int64 {
	return b.JavaBytes + b.OtherProcBytes + b.KernelBytes + b.VMOverheadBytes
}

// VMBreakdowns computes the Fig. 2 / Fig. 4 view, ordered by VM id.
func (a *Analysis) VMBreakdowns() []VMBreakdown {
	byVM := map[int]*VMBreakdown{}
	get := func(vm *hypervisor.VMProcess) *VMBreakdown {
		b, ok := byVM[vm.ID()]
		if !ok {
			b = &VMBreakdown{VMName: vm.Name(), VMID: vm.ID()}
			byVM[vm.ID()] = b
		}
		return b
	}
	ps := int64(a.pageSize)
	for f, us := range a.users {
		oi := a.owner[f]
		o := us[oi]
		b := get(o.VM)
		switch {
		case o.Kind == KindKernel:
			b.KernelBytes += ps
		case o.Kind == KindVMOverhead:
			b.VMOverheadBytes += ps
		case o.isJava():
			b.JavaBytes += ps
		default:
			b.OtherProcBytes += ps
		}
		// TPS savings: every mapping of the frame beyond the single owned
		// one uses the page for free — without sharing, each of those PTEs
		// would need its own frame. This counts KSM-merged zero pages many
		// times within one VM, exactly as KSM's own saved-memory accounting
		// does.
		for i, u := range us {
			if i != oi {
				get(u.VM).SavingsBytes += ps
			}
		}
	}
	out := make([]VMBreakdown, 0, len(byVM))
	for _, b := range byVM {
		out = append(out, *b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].VMID < out[j].VMID })
	return out
}

// CategoryUsage is one Table IV category of one Java process.
type CategoryUsage struct {
	// MappedBytes is all resident memory the process maps in the category.
	MappedBytes int64
	// OwnedBytes is the owner-oriented physical usage (mapped minus what
	// other owners provide).
	OwnedBytes int64
	// SharedBytes = Mapped - Owned: the graded "Shared with TPS" portion of
	// the Fig. 3 / Fig. 5 bars.
	SharedBytes int64
}

// JavaBreakdown is one Java process's stacked bar in Fig. 3 / Fig. 5.
type JavaBreakdown struct {
	VMName   string
	VMID     int
	ProcName string
	PID      int
	ByCat    map[string]CategoryUsage
}

// TotalMapped sums mapped bytes across categories.
func (b JavaBreakdown) TotalMapped() int64 {
	var t int64
	for _, c := range b.ByCat {
		t += c.MappedBytes
	}
	return t
}

// TotalShared sums TPS-shared bytes across categories.
func (b JavaBreakdown) TotalShared() int64 {
	var t int64
	for _, c := range b.ByCat {
		t += c.SharedBytes
	}
	return t
}

// JavaBreakdowns computes the per-JVM category view, ordered by VM id then
// PID.
func (a *Analysis) JavaBreakdowns() []JavaBreakdown {
	type procKey struct {
		vmID int
		pid  int
	}
	byProc := map[procKey]*JavaBreakdown{}
	ps := int64(a.pageSize)
	for f, us := range a.users {
		oi := a.owner[f]
		// Every PTE counts: a process mapping one KSM-merged frame many
		// times (zeroed heap regions, recycled work areas) occupies that
		// many virtual pages, of which exactly one — the owner's — costs
		// physical memory.
		for i, u := range us {
			if !u.isJava() {
				continue
			}
			k := procKey{u.VM.ID(), u.Proc.PID}
			b, ok := byProc[k]
			if !ok {
				b = &JavaBreakdown{
					VMName:   u.VM.Name(),
					VMID:     u.VM.ID(),
					ProcName: u.Proc.Name,
					PID:      u.Proc.PID,
					ByCat:    map[string]CategoryUsage{},
				}
				byProc[k] = b
			}
			cu := b.ByCat[u.Category]
			cu.MappedBytes += ps
			if i == oi {
				cu.OwnedBytes += ps
			} else {
				cu.SharedBytes += ps
			}
			b.ByCat[u.Category] = cu
		}
	}
	out := make([]JavaBreakdown, 0, len(byProc))
	for _, b := range byProc {
		out = append(out, *b)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].VMID != out[j].VMID {
			return out[i].VMID < out[j].VMID
		}
		return out[i].PID < out[j].PID
	})
	return out
}

// PSS computes the distribution-oriented usage (Linux smaps PSS) of one
// process in bytes: each mapped frame contributes pageSize divided by its
// total mapper count.
func (a *Analysis) PSS(proc *guestos.Process) float64 {
	var pss float64
	for _, us := range a.users {
		n := len(us)
		for _, u := range us {
			if u.Kind == KindProcess && u.Proc == proc {
				pss += float64(a.pageSize) / float64(n)
			}
		}
	}
	return pss
}

// OwnerOrientedBytes reports one process's owner-oriented usage in bytes.
func (a *Analysis) OwnerOrientedBytes(proc *guestos.Process) int64 {
	var t int64
	for f, us := range a.users {
		if u := us[a.owner[f]]; u.Kind == KindProcess && u.Proc == proc {
			t += int64(a.pageSize)
		}
	}
	return t
}
