package memanalysis

import (
	"testing"

	"repro/internal/cds"
	"repro/internal/classlib"
	"repro/internal/guestos"
	"repro/internal/hypervisor"
	"repro/internal/jvm"
	"repro/internal/ksm"
	"repro/internal/mem"
	"repro/internal/simclock"
)

const (
	pg    = mem.DefaultPageSize
	scale = 64
)

// cluster builds nVMs guests each running one JVM that loads the Derby
// group, optionally from a shared cache copied into every VM.
type cluster struct {
	clock   *simclock.Clock
	host    *hypervisor.Host
	kernels []*guestos.Kernel
	jvms    []*jvm.JVM
	scanner *ksm.KSM
}

func buildCluster(t *testing.T, nVMs int, shared bool) *cluster {
	t.Helper()
	clock := simclock.New()
	host := hypervisor.NewHost(hypervisor.Config{Name: "t", RAMBytes: int64(nVMs+1) * (64 << 20)}, clock)
	corpus := classlib.NewCorpus(jvm.RuntimeVersion, scale)

	var img *cds.Image
	var fileBytes []byte
	if shared {
		img = cds.Build("was", jvm.RuntimeVersion, 8<<20, corpus.Stack(classlib.GroupDerby, classlib.GroupOSGi))
		fileBytes = img.FileBytes(corpus)
	}

	c := &cluster{clock: clock, host: host}
	for i := 0; i < nVMs; i++ {
		vmp := host.NewVM(hypervisor.VMConfig{
			Name: "VM", GuestMemBytes: 48 << 20, OverheadBytes: 1 << 20, Seed: mem.Seed(i + 1),
		})
		k := guestos.Boot(vmp, guestos.KernelConfig{
			Version: "2.6.18", TextBytes: 2 << 20, DataBytes: 1 << 20, SlabBytes: 1 << 20,
		})
		opts := jvm.Options{GCPolicy: jvm.OptThruput, HeapBytes: 8 << 20, Threads: 4}
		if shared {
			k.FS().Install(&guestos.File{Path: "/opt/cache", Data: fileBytes})
			opts.SharedClasses = true
			opts.CacheImage = img
			opts.CachePath = "/opt/cache"
		}
		j := jvm.Launch(k, "java-was", corpus, opts, jvm.DefaultSizes(scale))
		j.LoadGroups(true, classlib.GroupDerby, classlib.GroupOSGi)
		// A little request churn so the heap and work areas are populated.
		for it := 0; it < 400; it++ {
			j.Heap().Alloc(1024+it%2048, mem.Seed(it), it%8 == 0)
		}
		// A small native daemon per guest.
		d := k.Spawn("syslogd", false)
		dv := d.MapAnon(16, "anon", "daemon-heap")
		d.TouchAll(dv, true)
		c.kernels = append(c.kernels, k)
		c.jvms = append(c.jvms, j)
	}
	c.scanner = ksm.New(host, ksm.DefaultConfig())
	c.scanner.RegisterAll()
	return c
}

func (c *cluster) scan(passes int) {
	total := 0
	for _, vm := range c.host.VMs() {
		total += vm.GuestPages()
	}
	c.scanner.ScanChunk(total*passes + 1)
}

func TestAnalyzeAttributesEveryUsedFrame(t *testing.T) {
	c := buildCluster(t, 2, false)
	a := Analyze(c.host, c.kernels)
	if a.TotalGuestBytes() == 0 {
		t.Fatal("nothing attributed")
	}
	// Attributed frames must not exceed frames in use.
	if int(a.TotalGuestBytes()/pg) > c.host.Phys().FramesInUse() {
		t.Fatal("attributed more frames than exist")
	}
	bds := a.VMBreakdowns()
	if len(bds) != 2 {
		t.Fatalf("breakdowns = %d", len(bds))
	}
	for _, b := range bds {
		if b.JavaBytes == 0 || b.KernelBytes == 0 || b.VMOverheadBytes == 0 || b.OtherProcBytes == 0 {
			t.Fatalf("empty component in %+v", b)
		}
	}
}

func TestNoSharingBeforeKSM(t *testing.T) {
	c := buildCluster(t, 2, false)
	a := Analyze(c.host, c.kernels)
	for _, b := range a.VMBreakdowns() {
		if b.SavingsBytes != 0 {
			t.Fatalf("savings %d before any scanning", b.SavingsBytes)
		}
	}
}

func TestKSMSharesKernelTextAndCode(t *testing.T) {
	c := buildCluster(t, 2, false)
	c.scan(3)
	a := Analyze(c.host, c.kernels)
	bds := a.VMBreakdowns()
	// Exactly one VM pays for the shared pages; the other saves.
	totalSavings := bds[0].SavingsBytes + bds[1].SavingsBytes
	if totalSavings == 0 {
		t.Fatal("no TPS savings after scanning identical guests")
	}
	// Kernel text (2 MB) should be fully shared: one VM's worth of savings
	// at least that big.
	if totalSavings < 2<<20 {
		t.Fatalf("savings %d smaller than kernel text", totalSavings)
	}
}

func TestJavaBreakdownCategories(t *testing.T) {
	c := buildCluster(t, 2, false)
	a := Analyze(c.host, c.kernels)
	jbs := a.JavaBreakdowns()
	if len(jbs) != 2 {
		t.Fatalf("java breakdowns = %d", len(jbs))
	}
	for _, b := range jbs {
		for _, cat := range []string{jvm.CatCode, jvm.CatClassMeta, jvm.CatHeap, jvm.CatJVMWork, jvm.CatStack} {
			if b.ByCat[cat].MappedBytes == 0 {
				t.Fatalf("category %q empty in %s", cat, b.ProcName)
			}
		}
		if b.TotalMapped() == 0 {
			t.Fatal("zero total")
		}
	}
}

func TestBaselineClassMetadataUnshared(t *testing.T) {
	c := buildCluster(t, 3, false)
	c.scan(3)
	a := Analyze(c.host, c.kernels)
	for _, b := range a.JavaBreakdowns() {
		cm := b.ByCat[jvm.CatClassMeta]
		frac := float64(cm.SharedBytes) / float64(cm.MappedBytes)
		if frac > 0.10 {
			t.Fatalf("baseline class metadata %.1f%% shared; paper expects ≈0", frac*100)
		}
	}
}

func TestSharedCacheClassMetadataShared(t *testing.T) {
	c := buildCluster(t, 3, true)
	c.scan(3)
	a := Analyze(c.host, c.kernels)
	jbs := a.JavaBreakdowns()
	nonPrimarySharedHigh := 0
	for _, b := range jbs {
		cm := b.ByCat[jvm.CatClassMeta]
		frac := float64(cm.SharedBytes) / float64(cm.MappedBytes)
		if frac > 0.5 {
			nonPrimarySharedHigh++
		}
	}
	// With 3 VMs, the owner JVM pays and the two non-primary JVMs see their
	// class metadata mostly eliminated (paper: 89.6 %).
	if nonPrimarySharedHigh != 2 {
		t.Fatalf("%d of 3 JVMs share most class metadata, want 2", nonPrimarySharedHigh)
	}
}

func TestCodeAreaSharedAcrossVMs(t *testing.T) {
	c := buildCluster(t, 2, false)
	c.scan(3)
	a := Analyze(c.host, c.kernels)
	jbs := a.JavaBreakdowns()
	sharedSum := jbs[0].ByCat[jvm.CatCode].SharedBytes + jbs[1].ByCat[jvm.CatCode].SharedBytes
	mapped := jbs[0].ByCat[jvm.CatCode].MappedBytes
	// One JVM's worth of code should be shared (the other's pages merged
	// into it): at least half of one mapping.
	if sharedSum < mapped/2 {
		t.Fatalf("code sharing %d of %d mapped; expected most of one copy", sharedSum, mapped)
	}
}

func TestOwnerIsSmallestPIDJava(t *testing.T) {
	c := buildCluster(t, 3, true)
	c.scan(3)
	a := Analyze(c.host, c.kernels)
	jbs := a.JavaBreakdowns()
	minPID := jbs[0].PID
	ownerIdx := 0
	for i, b := range jbs {
		if b.PID < minPID {
			minPID = b.PID
			ownerIdx = i
		}
	}
	// The smallest-PID JVM must have the least shared class metadata (it
	// owns the cache pages).
	ownerShared := jbs[ownerIdx].ByCat[jvm.CatClassMeta].SharedBytes
	for i, b := range jbs {
		if i == ownerIdx {
			continue
		}
		if b.ByCat[jvm.CatClassMeta].SharedBytes <= ownerShared {
			t.Fatalf("owner JVM (pid %d) shares more than non-primary (pid %d)", minPID, b.PID)
		}
	}
}

func TestPSSVersusOwnerOriented(t *testing.T) {
	c := buildCluster(t, 2, true)
	c.scan(3)
	a := Analyze(c.host, c.kernels)
	var pssSum, ownerSum float64
	for _, j := range c.jvms {
		pssSum += a.PSS(j.Process())
		ownerSum += float64(a.OwnerOrientedBytes(j.Process()))
	}
	if pssSum <= 0 || ownerSum <= 0 {
		t.Fatal("empty accounting")
	}
	// Both schemes conserve total frames mapped exclusively by Java; PSS of
	// a shared frame is split while owner-oriented gives it to one, so the
	// totals over the same process set must agree within the frames shared
	// with non-Java users.
	diff := pssSum - ownerSum
	if diff < 0 {
		diff = -diff
	}
	if diff > pssSum*0.25 {
		t.Fatalf("PSS %0.f vs owner %0.f diverge too much", pssSum, ownerSum)
	}
}

func TestTotalSavingsMatchesVMSavings(t *testing.T) {
	c := buildCluster(t, 3, true)
	c.scan(3)
	a := Analyze(c.host, c.kernels)
	var vmSavings int64
	for _, b := range a.VMBreakdowns() {
		vmSavings += b.SavingsBytes
	}
	// Cross-VM savings cannot exceed total extra-mapper savings.
	if vmSavings > a.TotalSavingsBytes() {
		t.Fatalf("VM savings %d exceed total %d", vmSavings, a.TotalSavingsBytes())
	}
	if vmSavings == 0 {
		t.Fatal("no savings in shared-cache cluster")
	}
}

func TestCachePagesStaySharedAfterUnload(t *testing.T) {
	// §4.B: "the preloaded read-only part of an unloaded class will stay in
	// memory as a part of the shared class cache ... the pages will remain
	// shared if they are TPS-shared."
	c := buildCluster(t, 2, true)
	c.scan(3)
	sharedBefore := func() int64 {
		a := Analyze(c.host, c.kernels)
		var s int64
		for _, jb := range a.JavaBreakdowns() {
			s += jb.ByCat[jvm.CatClassMeta].SharedBytes
		}
		return s
	}()
	if sharedBefore == 0 {
		t.Fatal("setup: nothing shared")
	}
	// Unload half the Derby classes in one JVM.
	corpus := classlib.NewCorpus(jvm.RuntimeVersion, scale)
	derby := corpus.Group(classlib.GroupDerby)
	for _, cl := range derby[:len(derby)/2] {
		c.jvms[1].UnloadClass(cl.Name)
	}
	c.scan(2)
	sharedAfter := func() int64 {
		a := Analyze(c.host, c.kernels)
		var s int64
		for _, jb := range a.JavaBreakdowns() {
			s += jb.ByCat[jvm.CatClassMeta].SharedBytes
		}
		return s
	}()
	if sharedAfter < sharedBefore {
		t.Fatalf("class metadata sharing shrank on unload: %d -> %d", sharedBefore, sharedAfter)
	}
}

func TestTLBEntriesOptionScalesReach(t *testing.T) {
	c := buildCluster(t, 2, false)
	base := Analyze(c.host, c.kernels).EstimatedTLBReachBytes()
	if base == 0 {
		t.Fatal("no TLB reach on a populated cluster")
	}
	// Reach is linear in the entry count: doubling the modeled TLB doubles
	// the estimate exactly.
	doubled := Analyze(c.host, c.kernels, WithTLBEntries(2*TLBEntries)).EstimatedTLBReachBytes()
	if doubled != 2*base {
		t.Fatalf("2x entries reach = %d, want %d", doubled, 2*base)
	}
	// Zero and negative keep the default.
	for _, n := range []int{0, -5} {
		if got := Analyze(c.host, c.kernels, WithTLBEntries(n)).EstimatedTLBReachBytes(); got != base {
			t.Fatalf("WithTLBEntries(%d) reach = %d, want default %d", n, got, base)
		}
	}
}
