package memanalysis

import (
	"testing"

	"repro/internal/jvm"
)

// Conservation laws of the attribution: whatever the sharing state, the
// owner-oriented accounting must partition the attributed memory exactly.

func TestVMBreakdownsPartitionTotal(t *testing.T) {
	for _, shared := range []bool{false, true} {
		c := buildCluster(t, 3, shared)
		c.scan(3)
		a := Analyze(c.host, c.kernels)
		var sum int64
		for _, b := range a.VMBreakdowns() {
			sum += b.Total()
		}
		if sum != a.TotalGuestBytes() {
			t.Fatalf("shared=%v: VM totals %d != attributed %d", shared, sum, a.TotalGuestBytes())
		}
	}
}

func TestOwnedPlusSharedEqualsMapped(t *testing.T) {
	c := buildCluster(t, 3, true)
	c.scan(3)
	a := Analyze(c.host, c.kernels)
	for _, jb := range a.JavaBreakdowns() {
		for _, cat := range jvm.Categories() {
			cu := jb.ByCat[cat]
			if cu.OwnedBytes+cu.SharedBytes != cu.MappedBytes {
				t.Fatalf("%s/%s: owned %d + shared %d != mapped %d",
					jb.ProcName, cat, cu.OwnedBytes, cu.SharedBytes, cu.MappedBytes)
			}
			if cu.OwnedBytes < 0 || cu.SharedBytes < 0 {
				t.Fatalf("negative accounting in %s/%s", jb.ProcName, cat)
			}
		}
	}
}

func TestJavaOwnedMatchesVMAttribution(t *testing.T) {
	// The Java bytes attributed at VM level must equal the sum of the Java
	// processes' owned bytes in that VM.
	c := buildCluster(t, 2, true)
	c.scan(3)
	a := Analyze(c.host, c.kernels)
	javaOwned := map[int]int64{}
	for _, jb := range a.JavaBreakdowns() {
		for _, cu := range jb.ByCat {
			javaOwned[jb.VMID] += cu.OwnedBytes
		}
	}
	for _, b := range a.VMBreakdowns() {
		if b.JavaBytes != javaOwned[b.VMID] {
			t.Fatalf("VM %d: VM-level java %d != per-process owned %d", b.VMID, b.JavaBytes, javaOwned[b.VMID])
		}
	}
}

func TestAttributedNeverExceedsPhysical(t *testing.T) {
	c := buildCluster(t, 3, true)
	c.scan(3)
	a := Analyze(c.host, c.kernels)
	inUse := int64(c.host.Phys().FramesInUse()) * int64(c.host.PageSize())
	if a.TotalGuestBytes() > inUse {
		t.Fatalf("attributed %d > frames in use %d", a.TotalGuestBytes(), inUse)
	}
}
