package dump

import (
	"sort"

	"repro/internal/memanalysis"
)

// Offline analysis: the simulated `crash` utility. It applies the same
// owner-oriented methodology as internal/memanalysis, but over a serialized
// Dump instead of live structures, and produces the same result types — so
// a dump taken on one machine can be analyzed anywhere, as the paper's
// offline workflow does.

type userKind uint8

const (
	kindProcess userKind = iota
	kindKernel
	kindVMOverhead
)

type user struct {
	guest    *GuestDump
	kind     userKind
	proc     *ProcessDump
	category string
}

// Analysis is the offline attribution of a dump.
type Analysis struct {
	pageSize int
	users    map[uint32][]user
	owner    map[uint32]int
}

// Analyze attributes every frame referenced by the dump.
func Analyze(d *Dump) *Analysis {
	a := &Analysis{
		pageSize: d.PageSize,
		users:    make(map[uint32][]user),
		owner:    make(map[uint32]int),
	}
	for gi := range d.Guests {
		g := &d.Guests[gi]
		// Kernel-owned pages.
		for _, kp := range g.KernelPages {
			if f, ok := g.HostPTEs[g.MemslotBase+kp.GPFN]; ok {
				a.users[f] = append(a.users[f], user{guest: g, kind: kindKernel, category: kp.Class})
			}
		}
		// Processes: guest virtual → guest physical → host virtual → frame.
		for pi := range g.Processes {
			p := &g.Processes[pi]
			for _, v := range p.VMAs {
				for vpn := v.Start; vpn < v.End; vpn++ {
					gpfn, ok := p.PTEs[vpn]
					if !ok {
						continue
					}
					f, ok := g.HostPTEs[g.MemslotBase+gpfn]
					if !ok {
						continue
					}
					a.users[f] = append(a.users[f], user{guest: g, kind: kindProcess, proc: p, category: v.Category})
				}
			}
		}
		// VM process overhead.
		for vpn := g.OverheadStart; vpn < g.OverheadEnd; vpn++ {
			if f, ok := g.HostPTEs[vpn]; ok {
				a.users[f] = append(a.users[f], user{guest: g, kind: kindVMOverhead, category: "vm-overhead"})
			}
		}
	}
	for f, us := range a.users {
		best := 0
		for i := 1; i < len(us); i++ {
			if ownerLess(us[i], us[best]) {
				best = i
			}
		}
		a.owner[f] = best
	}
	return a
}

func (u user) isJava() bool { return u.kind == kindProcess && u.proc.IsJava }

func ownerLess(x, y user) bool {
	xj, yj := x.isJava(), y.isJava()
	if xj != yj {
		return xj
	}
	if !xj {
		return false
	}
	if x.proc.PID != y.proc.PID {
		return x.proc.PID < y.proc.PID
	}
	return x.guest.ID < y.guest.ID
}

// TotalGuestBytes reports all attributed memory.
func (a *Analysis) TotalGuestBytes() int64 {
	return int64(len(a.users)) * int64(a.pageSize)
}

// VMBreakdowns computes the Fig. 2/4 view from the dump, identical in
// semantics to the live analyzer's.
func (a *Analysis) VMBreakdowns() []memanalysis.VMBreakdown {
	byVM := map[int]*memanalysis.VMBreakdown{}
	get := func(g *GuestDump) *memanalysis.VMBreakdown {
		b, ok := byVM[g.ID]
		if !ok {
			b = &memanalysis.VMBreakdown{VMName: g.Name, VMID: g.ID}
			byVM[g.ID] = b
		}
		return b
	}
	ps := int64(a.pageSize)
	for f, us := range a.users {
		oi := a.owner[f]
		o := us[oi]
		b := get(o.guest)
		switch {
		case o.kind == kindKernel:
			b.KernelBytes += ps
		case o.kind == kindVMOverhead:
			b.VMOverheadBytes += ps
		case o.isJava():
			b.JavaBytes += ps
		default:
			b.OtherProcBytes += ps
		}
		for i, u := range us {
			if i != oi {
				get(u.guest).SavingsBytes += ps
			}
		}
	}
	out := make([]memanalysis.VMBreakdown, 0, len(byVM))
	for _, b := range byVM {
		out = append(out, *b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].VMID < out[j].VMID })
	return out
}

// JavaBreakdowns computes the Fig. 3/5 view from the dump.
func (a *Analysis) JavaBreakdowns() []memanalysis.JavaBreakdown {
	type key struct {
		vmID int
		pid  int
	}
	byProc := map[key]*memanalysis.JavaBreakdown{}
	ps := int64(a.pageSize)
	for f, us := range a.users {
		oi := a.owner[f]
		for i, u := range us {
			if !u.isJava() {
				continue
			}
			k := key{u.guest.ID, u.proc.PID}
			b, ok := byProc[k]
			if !ok {
				b = &memanalysis.JavaBreakdown{
					VMName:   u.guest.Name,
					VMID:     u.guest.ID,
					ProcName: u.proc.Name,
					PID:      u.proc.PID,
					ByCat:    map[string]memanalysis.CategoryUsage{},
				}
				byProc[k] = b
			}
			cu := b.ByCat[u.category]
			cu.MappedBytes += ps
			if i == oi {
				cu.OwnedBytes += ps
			} else {
				cu.SharedBytes += ps
			}
			b.ByCat[u.category] = cu
		}
	}
	out := make([]memanalysis.JavaBreakdown, 0, len(byProc))
	for _, b := range byProc {
		out = append(out, *b)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].VMID != out[j].VMID {
			return out[i].VMID < out[j].VMID
		}
		return out[i].PID < out[j].PID
	})
	return out
}
