// Package dump implements the paper's §2.B collection step: the authors
// take system dumps of the host and of every guest (crash dumps plus
// `virsh dump`), extract the KVM translation tables with a host kernel
// module, and analyze everything offline with the crash utility. This
// package captures the equivalent state of a simulated cluster into a
// self-contained, serializable snapshot that internal/memanalysis can
// analyze without the live cluster — the same decoupling of collection
// from analysis the paper relies on.
package dump

import (
	"bytes"
	"compress/gzip"
	"encoding/gob"
	"fmt"
	"io"

	"repro/internal/guestos"
	"repro/internal/hypervisor"
	"repro/internal/mem"
)

// FormatVersion guards against analyzing dumps from incompatible builds.
const FormatVersion = 1

// Dump is a frozen snapshot of everything the analyzer needs: the frame
// contents summary plus all three translation layers of every guest.
type Dump struct {
	Version  int
	HostName string
	PageSize int
	// FrameChecksums holds the content checksum of every referenced frame;
	// the analyzer does not need full bytes, only attribution structure,
	// but checksums let consumers verify dump integrity. Capturing them is
	// cheap: mem's content store computes each distinct content's checksum
	// at most once, so a snapshot never re-hashes page bytes that any scan
	// or earlier dump already hashed.
	FrameChecksums map[uint32]uint64
	Guests         []GuestDump
}

// GuestDump is one guest VM's state.
type GuestDump struct {
	Name        string
	ID          int
	GuestPages  int
	MemslotBase uint64
	// HostPTEs maps host-virtual page number -> frame id for resident pages
	// (the paper's kernel module extracts exactly this from the kvm-vm
	// device's private data).
	HostPTEs map[uint64]uint32
	// Overhead is the VM process's own mapped range.
	OverheadStart, OverheadEnd uint64
	// Kernel-owned guest pages by class.
	KernelPages []KernelPageDump
	// Processes are the guest's user processes with their VMAs and guest
	// page tables (what crash extracts from the guest dump).
	Processes []ProcessDump
}

// KernelPageDump tags one kernel-owned guest page.
type KernelPageDump struct {
	GPFN  uint64
	Class string
}

// ProcessDump is one guest process.
type ProcessDump struct {
	PID    int
	Name   string
	IsJava bool
	VMAs   []VMADump
	// PTEs maps guest-virtual page -> guest physical page.
	PTEs map[uint64]uint64
}

// VMADump is one memory area.
type VMADump struct {
	Start, End uint64
	Category   string
	Label      string
	File       string
}

// Capture freezes the cluster state. The host must be a process-VM
// (KVM-style) machine for every guest.
func Capture(host *hypervisor.Host, kernels []*guestos.Kernel) *Dump {
	d := &Dump{
		Version:        FormatVersion,
		HostName:       host.Name(),
		PageSize:       host.PageSize(),
		FrameChecksums: make(map[uint32]uint64),
	}
	pm := host.Phys()
	for _, k := range kernels {
		vm, ok := k.VM().(*hypervisor.VMProcess)
		if !ok {
			panic("dump: guest is not on a process-VM machine")
		}
		gd := GuestDump{
			Name:        vm.Name(),
			ID:          vm.ID(),
			GuestPages:  vm.GuestPages(),
			MemslotBase: uint64(vm.MemslotBase()),
			HostPTEs:    make(map[uint64]uint32),
		}
		os, oe := vm.OverheadRegion()
		gd.OverheadStart, gd.OverheadEnd = uint64(os), uint64(oe)

		vm.HostPageTable().Range(func(vpn mem.VPN, pte mem.PTE) bool {
			if pte.Swapped {
				return true
			}
			f := uint32(pte.Frame)
			gd.HostPTEs[uint64(vpn)] = f
			if _, seen := d.FrameChecksums[f]; !seen {
				d.FrameChecksums[f] = pm.Checksum(pte.Frame)
			}
			return true
		})

		for _, kp := range k.KernelOwnedPages() {
			gd.KernelPages = append(gd.KernelPages, KernelPageDump{GPFN: kp.GPFN, Class: string(kp.Class)})
		}

		for _, p := range k.Processes() {
			pd := ProcessDump{PID: p.PID, Name: p.Name, IsJava: p.IsJava, PTEs: make(map[uint64]uint64)}
			for _, v := range p.SortedVMAs() {
				file := ""
				if v.File != nil {
					file = v.File.Path
				}
				pd.VMAs = append(pd.VMAs, VMADump{
					Start: uint64(v.Start), End: uint64(v.End),
					Category: v.Category, Label: v.Label, File: file,
				})
			}
			p.PageTable().Range(func(vpn mem.VPN, pte mem.PTE) bool {
				pd.PTEs[uint64(vpn)] = uint64(pte.Frame)
				return true
			})
			gd.Processes = append(gd.Processes, pd)
		}
		d.Guests = append(d.Guests, gd)
	}
	return d
}

// Write serializes the dump (gob, gzip-compressed).
func (d *Dump) Write(w io.Writer) error {
	zw := gzip.NewWriter(w)
	if err := gob.NewEncoder(zw).Encode(d); err != nil {
		return fmt.Errorf("dump: encode: %w", err)
	}
	return zw.Close()
}

// Read deserializes a dump and checks its format version.
func Read(r io.Reader) (*Dump, error) {
	zr, err := gzip.NewReader(r)
	if err != nil {
		return nil, fmt.Errorf("dump: gzip: %w", err)
	}
	defer zr.Close()
	var d Dump
	if err := gob.NewDecoder(zr).Decode(&d); err != nil {
		return nil, fmt.Errorf("dump: decode: %w", err)
	}
	if d.Version != FormatVersion {
		return nil, fmt.Errorf("dump: format version %d, want %d", d.Version, FormatVersion)
	}
	return &d, nil
}

// Bytes serializes to a byte slice.
func (d *Dump) Bytes() []byte {
	var buf bytes.Buffer
	if err := d.Write(&buf); err != nil {
		panic(err) // cannot fail on a bytes.Buffer
	}
	return buf.Bytes()
}

// FromBytes deserializes from a byte slice.
func FromBytes(b []byte) (*Dump, error) {
	return Read(bytes.NewReader(b))
}
