package dump

import (
	"bytes"
	"testing"

	"repro/internal/cds"
	"repro/internal/classlib"
	"repro/internal/guestos"
	"repro/internal/hypervisor"
	"repro/internal/jvm"
	"repro/internal/ksm"
	"repro/internal/mem"
	"repro/internal/memanalysis"
	"repro/internal/simclock"
)

const scale = 64

// buildLive assembles a small shared-cache cluster, scans it, and returns
// the live pieces.
func buildLive(t *testing.T) (*hypervisor.Host, []*guestos.Kernel) {
	t.Helper()
	clock := simclock.New()
	host := hypervisor.NewHost(hypervisor.Config{Name: "dump-t", RAMBytes: 256 << 20}, clock)
	corpus := classlib.NewCorpus(jvm.RuntimeVersion, scale)
	img := cds.Build("was", jvm.RuntimeVersion, 8<<20, corpus.Stack(classlib.GroupDerby))
	fileBytes := img.FileBytes(corpus)

	var kernels []*guestos.Kernel
	for i := 0; i < 2; i++ {
		vmp := host.NewVM(hypervisor.VMConfig{
			Name: "VM", GuestMemBytes: 48 << 20, OverheadBytes: 1 << 20, Seed: mem.Seed(i + 1),
		})
		k := guestos.Boot(vmp, guestos.KernelConfig{Version: "v", TextBytes: 2 << 20, DataBytes: 1 << 20})
		k.FS().Install(&guestos.File{Path: "/cache", Data: fileBytes})
		j := jvm.Launch(k, "java", corpus, jvm.Options{
			GCPolicy: jvm.OptThruput, HeapBytes: 8 << 20, Threads: 2,
			SharedClasses: true, CacheImage: img, CachePath: "/cache",
		}, jvm.DefaultSizes(scale))
		j.LoadGroups(true, classlib.GroupDerby)
		for it := 0; it < 200; it++ {
			j.Heap().Alloc(1024, mem.Seed(it), it%8 == 0)
		}
		kernels = append(kernels, k)
	}
	k := ksm.New(host, ksm.DefaultConfig())
	k.RegisterAll()
	total := 0
	for _, vm := range host.VMs() {
		total += vm.GuestPages()
	}
	k.ScanChunk(total*3 + 1)
	return host, kernels
}

func TestRoundTripSerialization(t *testing.T) {
	host, kernels := buildLive(t)
	d := Capture(host, kernels)
	data := d.Bytes()
	if len(data) == 0 {
		t.Fatal("empty dump")
	}
	d2, err := FromBytes(data)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if d2.HostName != d.HostName || len(d2.Guests) != len(d.Guests) {
		t.Fatal("round trip lost structure")
	}
	if len(d2.FrameChecksums) != len(d.FrameChecksums) {
		t.Fatal("frame checksums lost")
	}
	for i := range d.Guests {
		if len(d2.Guests[i].HostPTEs) != len(d.Guests[i].HostPTEs) {
			t.Fatalf("guest %d PTEs lost", i)
		}
		if len(d2.Guests[i].Processes) != len(d.Guests[i].Processes) {
			t.Fatalf("guest %d processes lost", i)
		}
	}
}

func TestBadDumpRejected(t *testing.T) {
	if _, err := FromBytes([]byte("not a dump")); err == nil {
		t.Fatal("garbage accepted")
	}
	host, kernels := buildLive(t)
	d := Capture(host, kernels)
	d.Version = 99
	if _, err := FromBytes(d.Bytes()); err == nil {
		t.Fatal("wrong version accepted")
	}
}

// TestOfflineMatchesLive is the key property: analyzing the dump offline
// must produce byte-for-byte the same attribution as the live analyzer —
// the dump loses nothing the methodology needs.
func TestOfflineMatchesLive(t *testing.T) {
	host, kernels := buildLive(t)

	live := memanalysis.Analyze(host, kernels)
	d, err := FromBytes(Capture(host, kernels).Bytes()) // through serialization
	if err != nil {
		t.Fatal(err)
	}
	off := Analyze(d)

	if off.TotalGuestBytes() != live.TotalGuestBytes() {
		t.Fatalf("totals differ: offline %d, live %d", off.TotalGuestBytes(), live.TotalGuestBytes())
	}

	lb, ob := live.VMBreakdowns(), off.VMBreakdowns()
	if len(lb) != len(ob) {
		t.Fatalf("VM breakdown count: %d vs %d", len(lb), len(ob))
	}
	for i := range lb {
		if lb[i] != ob[i] {
			t.Fatalf("VM breakdown %d differs:\nlive    %+v\noffline %+v", i, lb[i], ob[i])
		}
	}

	lj, oj := live.JavaBreakdowns(), off.JavaBreakdowns()
	if len(lj) != len(oj) {
		t.Fatalf("java breakdown count: %d vs %d", len(lj), len(oj))
	}
	for i := range lj {
		if lj[i].PID != oj[i].PID || lj[i].VMID != oj[i].VMID {
			t.Fatalf("java breakdown %d identity differs", i)
		}
		for cat, lcu := range lj[i].ByCat {
			if oj[i].ByCat[cat] != lcu {
				t.Fatalf("java breakdown %d category %q differs: live %+v offline %+v",
					i, cat, lcu, oj[i].ByCat[cat])
			}
		}
	}
}

func TestDumpIsCompressed(t *testing.T) {
	host, kernels := buildLive(t)
	d := Capture(host, kernels)
	data := d.Bytes()
	var raw bytes.Buffer
	// A dump of tens of thousands of PTEs must compress well below the
	// naive 16+ bytes per entry.
	entries := 0
	for _, g := range d.Guests {
		entries += len(g.HostPTEs)
		for _, p := range g.Processes {
			entries += len(p.PTEs)
		}
	}
	if len(data) > entries*16 {
		t.Fatalf("dump %d bytes for %d entries: compression missing?", len(data), entries)
	}
	_ = raw
}
