package thp

import (
	"testing"

	"repro/internal/hypervisor"
	"repro/internal/mem"
	"repro/internal/simclock"
)

// TestFHPMDemotesAndReabsorbs drives the full promote/demote cycle on a run
// with collapse-time zero-fill bloat. Without a dirty log every subpage reads
// as cold, so once the block ages past fhpmMinAge the daemon carves the
// zero-content subpages; with nothing keeping them carved (no KSM to merge
// them), fhpmQuietPromote quiet visits later it re-absorbs the block.
func TestFHPMDemotesAndReabsorbs(t *testing.T) {
	clock, h := newHost(t, 4)
	vm := h.NewVM(hypervisor.VMConfig{Name: "vm", GuestMemBytes: int64(hp) * pg, Seed: 1})
	for i := uint64(0); i < hp; i++ {
		if i%50 == 10 {
			continue // leave holes for collapse to zero-fill
		}
		vm.FillGuestPage(i, mem.Seed(1000+i))
	}
	cfg := DefaultConfig()
	cfg.Policy = PolicyFHPM
	d := New(h, cfg)
	d.Register(vm, false)
	d.Start()
	clock.RunFor(2 * simclock.Second)

	s := d.Stats()
	if s.Collapses == 0 {
		t.Fatal("fhpm never collapsed the dense run")
	}
	if s.Demotions == 0 {
		t.Fatal("fhpm never demoted the cold zero-filled subpages")
	}
	if s.PartialSplits < s.Demotions {
		t.Fatalf("partial splits %d < demotions %d", s.PartialSplits, s.Demotions)
	}
	if s.Reabsorbs == 0 {
		t.Fatal("fhpm never re-absorbed the quiesced block")
	}
	if vm.HugeMappings() != 1 {
		t.Fatalf("huge mappings %d, want 1", vm.HugeMappings())
	}
	if err := h.CheckLeaks(nil); err != nil {
		t.Fatalf("leaks after fhpm cycling: %v", err)
	}
}

// TestFHPMHeatProtectsHotSubpages keeps one zero subpage hot through the
// dirty ring while an equally zero neighbour stays cold: only the cold one
// may be demoted, and the run must stay huge throughout.
func TestFHPMHeatProtectsHotSubpages(t *testing.T) {
	clock := simclock.New()
	h := hypervisor.NewHost(hypervisor.Config{
		Name: "t", RAMBytes: 4 * hp * pg, DirtyLog: true,
	}, clock)
	vm := h.NewVM(hypervisor.VMConfig{Name: "vm", GuestMemBytes: int64(hp) * pg, Seed: 1})
	for i := uint64(0); i < hp; i++ {
		vm.FillGuestPage(i, mem.Seed(1000+i))
	}
	vm.ZeroGuestPage(50) // hot zero page
	vm.ZeroGuestPage(51) // cold zero page
	if got := vm.CollapseHuge(vm.MemslotBase(), 0); got != hypervisor.CollapseOK {
		t.Fatalf("setup collapse: %v", got)
	}
	vm.DrainDirtyLog() // discard the fill backlog

	cfg := DefaultConfig()
	cfg.Policy = PolicyFHPM
	cfg.ScanPages = hp // exactly one visit per wake
	d := New(h, cfg)
	d.Register(vm, false)
	d.Start()

	// Re-dirty page 50 between daemon visits so its ring-fed heat never
	// decays to zero, while page 51 goes cold.
	for i := 0; i < 6; i++ {
		vm.ZeroGuestPage(50)
		vm.DrainDirtyLog()
		clock.RunFor(simclock.Time(cfg.SleepMillis) * simclock.Millisecond)
	}

	pt := vm.HostPageTable()
	head := vm.MemslotBase()
	if !pt.CarvedAt(head + 51) {
		t.Fatal("cold zero subpage never demoted")
	}
	if pt.CarvedAt(head + 50) {
		t.Fatal("hot subpage demoted despite dirty-ring heat")
	}
	if vm.HugeMappings() != 1 {
		t.Fatal("run lost its huge mapping")
	}
	if d.Stats().Demotions == 0 {
		t.Fatal("no demotions recorded")
	}
}

// TestFHPMRespectsMinAge verifies the demotion gate: a freshly collapsed
// block may not be carved before fhpmMinAge daemon visits, giving the guest
// time to touch pages the collapse zero-filled.
func TestFHPMRespectsMinAge(t *testing.T) {
	clock, h := newHost(t, 4)
	vm := h.NewVM(hypervisor.VMConfig{Name: "vm", GuestMemBytes: int64(hp) * pg, Seed: 1})
	for i := uint64(0); i < hp; i++ {
		if i == 10 {
			continue
		}
		vm.FillGuestPage(i, mem.Seed(1000+i))
	}
	cfg := DefaultConfig()
	cfg.Policy = PolicyFHPM
	cfg.ScanPages = hp // one visit per wake
	d := New(h, cfg)
	d.Register(vm, false)
	d.Start()

	// Visit 1 collapses; visits 2..fhpmMinAge only age the block.
	for i := 0; i < fhpmMinAge; i++ {
		clock.RunFor(simclock.Time(cfg.SleepMillis) * simclock.Millisecond)
	}
	if got := d.Stats().Demotions; got != 0 {
		t.Fatalf("demoted %d subpages before min age", got)
	}
	clock.RunFor(simclock.Time(cfg.SleepMillis) * simclock.Millisecond)
	if d.Stats().Demotions == 0 {
		t.Fatal("no demotion once the block aged past the gate")
	}
	if !vm.HostPageTable().CarvedAt(vm.MemslotBase() + 10) {
		t.Fatal("the zero-filled hole was not the page demoted")
	}
}

// TestFHPMFallsBackToCollapseOnBasePages checks the state machine's entry
// edge: a run that is not huge yet gets the ordinary collapse treatment.
func TestFHPMFallsBackToCollapseOnBasePages(t *testing.T) {
	clock, h := newHost(t, 4)
	vm := denseVM(t, h, 2)
	cfg := DefaultConfig()
	cfg.Policy = PolicyFHPM
	d := New(h, cfg)
	d.Register(vm, false)
	d.Start()
	clock.RunFor(simclock.Second)
	if vm.HugeMappings() != 2 {
		t.Fatalf("huge mappings %d, want 2", vm.HugeMappings())
	}
	if d.Stats().Collapses != 2 {
		t.Fatalf("collapses %d, want 2", d.Stats().Collapses)
	}
}
