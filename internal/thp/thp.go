// Package thp implements a transparent-huge-page collapse daemon in the
// style of Linux's khugepaged. The daemon scans host-virtual ranges that VMs
// register (guest RAM, like KSM's mergeable regions), HugePages-aligned run
// by run, and collapses runs that are dense, resident, and privately mapped
// into one huge mapping backed by a contiguous frame block
// (hypervisor.VMProcess.CollapseHuge).
//
// THP and KSM pull the host in opposite directions: a collapsed run raises
// TLB reach but hides its 4 KiB subpages from the merge scanner, so sharing
// is forgone (or must be bought back by splitting — ksm.Config.
// SplitHugePages). The thp-tradeoff experiment in internal/core sweeps the
// policies against each other; FHPM (arXiv:2307.10618) measures the same
// tension on real hardware.
//
// Deviation from Linux noted in DESIGN.md: khugepaged defaults to
// 4096 pages every 10 s; our default is 8192 pages every 100 ms. The
// simulator compresses a day of guest runtime into minutes of virtual time,
// and the daemon must see a dense run before KSM's two-sighting checksum
// gate merges pages out of it, or `always` would never contend with KSM at
// all. The ratio of THP scan rate to KSM scan rate is what the tradeoff
// experiment actually probes.
package thp

import (
	"fmt"

	"repro/internal/hypervisor"
	"repro/internal/mem"
	"repro/internal/metrics"
	"repro/internal/simclock"
)

// Policy mirrors /sys/kernel/mm/transparent_hugepage/enabled.
type Policy int

const (
	// PolicyNever disables collapse entirely; the daemon never starts.
	PolicyNever Policy = iota
	// PolicyMadvise collapses only ranges explicitly registered as
	// huge-page candidates (Register with madvise=true).
	PolicyMadvise
	// PolicyAlways collapses every registered range.
	PolicyAlways
	// PolicyFHPM treats every registered range as eligible (like always)
	// and additionally runs the fine-grained promote/demote state machine
	// (arXiv:2307.10618): cold zero subpages are carved out of huge
	// mappings so KSM can merge them, and quiesced carved blocks are
	// re-absorbed into full huge mappings.
	PolicyFHPM
)

// String reports the sysfs spelling of the policy.
func (p Policy) String() string {
	switch p {
	case PolicyNever:
		return "never"
	case PolicyMadvise:
		return "madvise"
	case PolicyAlways:
		return "always"
	case PolicyFHPM:
		return "fhpm"
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

// ParsePolicy converts the sysfs spelling back into a Policy.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "never", "":
		return PolicyNever, nil
	case "madvise":
		return PolicyMadvise, nil
	case "always":
		return PolicyAlways, nil
	case "fhpm":
		return PolicyFHPM, nil
	}
	return PolicyNever, fmt.Errorf("thp: unknown policy %q (want never|madvise|always|fhpm)", s)
}

// Config holds the daemon's tuning parameters, mirroring
// /sys/kernel/mm/transparent_hugepage/khugepaged/*.
type Config struct {
	// Policy selects which registered ranges are eligible.
	Policy Policy
	// ScanPages is the number of base pages examined per wake-up
	// (khugepaged's pages_to_scan).
	ScanPages int
	// SleepMillis is the sleep between wake-ups (scan_sleep_millisecs).
	SleepMillis int
	// MaxPtesNone is the per-run budget of absent pages a collapse may
	// zero-fill (khugepaged's max_ptes_none; Linux defaults to 511, we
	// default tighter to keep the bloat honest at simulation scale).
	MaxPtesNone int
}

// DefaultConfig returns the simulator's defaults; see the package comment
// for why the scan rate deviates from Linux.
func DefaultConfig() Config {
	return Config{
		Policy:      PolicyNever,
		ScanPages:   8192,
		SleepMillis: 100,
		MaxPtesNone: 64,
	}
}

// Stats aggregates daemon counters, echoing khugepaged's vmstat names.
type Stats struct {
	PagesScanned   uint64 // base pages examined
	Collapses      uint64 // runs collapsed (thp_collapse_alloc)
	CollapseFailed uint64 // runs scanned but refused or failed
	FullScans      uint64 // complete passes over all registered ranges
	// Splits counts huge mappings dissolved by anyone — the evictor, KSM's
	// split policy, or guest page releases (thp_split_page).
	Splits uint64
	// PartialSplits counts subpages carved out of huge mappings by anyone
	// (the FHPM demoter or KSM's partial-split policy).
	PartialSplits uint64
	// Demotions counts the subset of PartialSplits initiated by this
	// daemon's cold-subpage demoter.
	Demotions uint64
	// Reabsorbs counts carved blocks the daemon promoted back to full huge
	// mappings after their heat quiesced.
	Reabsorbs uint64
}

// FHPM state-machine thresholds, in units of daemon visits to one block
// (the heat-decay cadence).
const (
	// fhpmMinAge delays demotion of a freshly collapsed block: its
	// subpages start with zero heat, so the daemon waits this many decay
	// passes for the dirty log to show which ones are actually hot.
	fhpmMinAge = 2
	// fhpmQuietPromote is how many consecutive quiet (zero-heat) visits a
	// carved block must accumulate since its last carve before the daemon
	// tries to re-absorb it. The window gives KSM time to merge the carved
	// subpages first — a merged subpage blocks re-absorption (the collapse
	// refuses to break sharing), which is the preferred outcome.
	fhpmQuietPromote = 8
)

// region is one registered scan range, aligned inward to whole runs.
type region struct {
	vm         *hypervisor.VMProcess
	start, end mem.VPN // [start, end), HugePages-aligned
	madvised   bool
}

// Daemon is the khugepaged instance for one host. A nil Daemon is inert:
// every method is a no-op, so callers thread an optional daemon without
// guards.
type Daemon struct {
	host *hypervisor.Host
	cfg  Config

	regions   []region
	regionIdx int
	cursor    mem.VPN

	running bool
	stats   Stats
}

// New creates a daemon for the host and hooks huge-split notifications so
// Stats.Splits counts splits initiated elsewhere (eviction, KSM, releases).
func New(host *hypervisor.Host, cfg Config) *Daemon {
	if cfg.ScanPages <= 0 {
		panic(fmt.Sprintf("thp: ScanPages = %d", cfg.ScanPages))
	}
	if cfg.SleepMillis <= 0 {
		panic(fmt.Sprintf("thp: SleepMillis = %d", cfg.SleepMillis))
	}
	if cfg.MaxPtesNone < 0 || cfg.MaxPtesNone >= mem.HugePages {
		panic(fmt.Sprintf("thp: MaxPtesNone = %d (want 0..%d)", cfg.MaxPtesNone, mem.HugePages-1))
	}
	d := &Daemon{host: host, cfg: cfg}
	host.OnHugeSplit = func(*hypervisor.VMProcess, mem.VPN) { d.stats.Splits++ }
	host.OnPartialSplit = func(_ *hypervisor.VMProcess, _ mem.VPN, n int) {
		d.stats.PartialSplits += uint64(n)
	}
	return d
}

// Config returns the daemon's tuning parameters.
func (d *Daemon) Config() Config { return d.cfg }

// Register adds a VM's guest RAM to the scan list, aligned inward to whole
// HugePages runs (a partial run can never collapse). madvised marks the
// range as an explicit huge-page candidate for PolicyMadvise.
func (d *Daemon) Register(vm *hypervisor.VMProcess, madvised bool) {
	if d == nil {
		return
	}
	base := vm.MemslotBase()
	start := base + mem.VPN(mem.HugePages-1)
	start = mem.HugeAlign(start)
	end := mem.HugeAlign(base + mem.VPN(vm.GuestPages()))
	if start >= end {
		return // guest smaller than one aligned run
	}
	for _, r := range d.regions {
		if r.vm == vm && r.start == start && r.end == end {
			return
		}
	}
	d.regions = append(d.regions, region{vm: vm, start: start, end: end, madvised: madvised})
}

// Unregister drops a VM's ranges from the scan list (the process exited).
// The circular cursor is repaired the same way as KSM's: removals before the
// current region shift the index down, removing the current region restarts
// at whichever region slides into its slot, and a wrap past the shrunken
// list does not count a full scan. A nil Daemon is a no-op.
func (d *Daemon) Unregister(vm *hypervisor.VMProcess) {
	if d == nil {
		return
	}
	kept := d.regions[:0]
	newIdx := d.regionIdx
	for i, r := range d.regions {
		if r.vm == vm {
			if i < d.regionIdx {
				newIdx--
			} else if i == d.regionIdx {
				d.cursor = 0
			}
			continue
		}
		kept = append(kept, r)
	}
	d.regions = kept
	d.regionIdx = newIdx
	if d.regionIdx >= len(d.regions) {
		d.regionIdx = 0
		d.cursor = 0
	}
}

// eligible reports whether the region may collapse under the policy.
func (d *Daemon) eligible(r region) bool {
	switch d.cfg.Policy {
	case PolicyAlways, PolicyFHPM:
		return true
	case PolicyMadvise:
		return r.madvised
	}
	return false
}

// Start schedules the scan loop on the host clock; under PolicyNever it
// does nothing. A nil Daemon is a no-op.
func (d *Daemon) Start() {
	if d == nil || d.running || d.cfg.Policy == PolicyNever {
		return
	}
	d.running = true
	d.host.Clock().Every(simclock.Time(d.cfg.SleepMillis)*simclock.Millisecond, func(now simclock.Time) bool {
		if !d.running {
			return false
		}
		d.ScanChunk(d.cfg.ScanPages)
		return true
	})
}

// Stop halts the scan loop after the current wake-up.
func (d *Daemon) Stop() {
	if d == nil {
		return
	}
	d.running = false
}

// Stats returns a snapshot of daemon counters. Safe on a nil Daemon.
func (d *Daemon) Stats() Stats {
	if d == nil {
		return Stats{}
	}
	return d.stats
}

// ScanChunk examines up to n base pages of eligible regions, advancing a
// circular cursor run by run, and attempts to collapse each aligned run it
// lands on — the khugepaged loop, driven here by the simulated clock.
func (d *Daemon) ScanChunk(n int) {
	if d == nil || !d.anyEligible() {
		return
	}
	if d.regionIdx >= len(d.regions) {
		d.regionIdx = 0
		d.cursor = 0
	}
	for scanned := 0; scanned < n; {
		for !d.eligible(d.regions[d.regionIdx]) {
			d.advanceRegion()
		}
		reg := d.regions[d.regionIdx]
		if d.cursor < reg.start {
			d.cursor = reg.start
		}
		head := d.cursor
		d.cursor += mem.HugePages
		if d.cursor >= reg.end {
			d.advanceRegion()
		}
		if d.cfg.Policy == PolicyFHPM {
			d.fhpmVisit(reg.vm, head)
		} else {
			switch reg.vm.CollapseHuge(head, d.cfg.MaxPtesNone) {
			case hypervisor.CollapseOK:
				d.stats.Collapses++
			case hypervisor.CollapseAlreadyHuge:
				// Nothing to do; not a failure.
			default:
				d.stats.CollapseFailed++
			}
		}
		scanned += mem.HugePages
		d.stats.PagesScanned += mem.HugePages
	}
}

// fhpmVisit is one step of the FHPM promote/demote state machine on the run
// headed at head:
//
//   - a run that is not huge gets the ordinary collapse attempt;
//   - a huge run has its dirty-ring-fed heat counters decayed (the EWMA
//     step), then cold zero-content subpages are demoted — carved out so
//     the merge scanner can fold them into the shared zero page, undoing
//     collapse's max_ptes_none zero-fill bloat without giving up the hot
//     remainder's TLB reach;
//   - a carved run whose heat has stayed quiet since the last carve is
//     offered back to CollapseHuge for re-absorption. Subpages KSM merged
//     in the meantime keep the block carved (re-absorption never breaks
//     sharing); only fully private quiesced blocks promote back.
func (d *Daemon) fhpmVisit(vm *hypervisor.VMProcess, head mem.VPN) {
	pte, ok := vm.ResidentPTE(head)
	if !ok || !pte.Huge {
		switch vm.CollapseHuge(head, d.cfg.MaxPtesNone) {
		case hypervisor.CollapseOK:
			d.stats.Collapses++
		case hypervisor.CollapseAlreadyHuge:
			// Not a failure.
		default:
			d.stats.CollapseFailed++
		}
		return
	}
	pt := vm.HostPageTable()
	age, quiet := pt.DecaySubpageHeat(head)
	if age >= fhpmMinAge {
		heats := pt.SubpageHeats(head)
		phys := vm.Host().Phys()
		var cold []mem.VPN
		for off := mem.VPN(1); off < mem.HugePages; off++ {
			if heats[off] != 0 || pt.CarvedAt(head+off) {
				continue
			}
			if phys.IsZero(pte.Frame + mem.FrameID(off)) {
				cold = append(cold, head+off)
			}
		}
		if len(cold) > 0 {
			vm.SplitHugeSubpages(head, cold)
			d.stats.Demotions += uint64(len(cold))
			return
		}
	}
	if quiet >= fhpmQuietPromote && pt.CarvedCount(head) > 0 {
		if vm.CollapseHuge(head, d.cfg.MaxPtesNone) == hypervisor.CollapseOK {
			d.stats.Reabsorbs++
		}
		// A refused re-absorption (carved subpages still shared) is the
		// steady state of a block contributing KSM savings, not a failure.
	}
}

// anyEligible reports whether the policy admits at least one region.
func (d *Daemon) anyEligible() bool {
	for _, r := range d.regions {
		if d.eligible(r) {
			return true
		}
	}
	return false
}

// advanceRegion moves the cursor to the next region, counting a full scan
// when it wraps.
func (d *Daemon) advanceRegion() {
	d.regionIdx++
	d.cursor = 0
	if d.regionIdx >= len(d.regions) {
		d.regionIdx = 0
		d.stats.FullScans++
	}
}

// Instrument registers the daemon's telemetry gauges. Both a nil Daemon and
// a nil registry are no-ops, matching the metrics API.
func (d *Daemon) Instrument(r *metrics.Registry) {
	if d == nil || r == nil {
		return
	}
	r.Gauge("thp.pages_scanned", func() float64 { return float64(d.stats.PagesScanned) })
	r.Gauge("thp.collapses", func() float64 { return float64(d.stats.Collapses) })
	r.Gauge("thp.collapse_failed", func() float64 { return float64(d.stats.CollapseFailed) })
	r.Gauge("thp.splits", func() float64 { return float64(d.stats.Splits) })
	r.Gauge("thp.partial_splits", func() float64 { return float64(d.stats.PartialSplits) })
	r.Gauge("thp.demotions", func() float64 { return float64(d.stats.Demotions) })
	r.Gauge("thp.reabsorbs", func() float64 { return float64(d.stats.Reabsorbs) })
	r.Gauge("thp.huge_frames", func() float64 { return float64(d.host.Phys().HugeFrames()) })
	r.Gauge("thp.huge_coverage", func() float64 {
		pm := d.host.Phys()
		if pm.FramesInUse() == 0 {
			return 0
		}
		return float64(pm.HugeFrames()) / float64(pm.FramesInUse())
	})
}
