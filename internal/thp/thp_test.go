package thp

import (
	"testing"

	"repro/internal/hypervisor"
	"repro/internal/mem"
	"repro/internal/simclock"
)

const (
	pg = mem.DefaultPageSize
	hp = mem.HugePages
)

func newHost(t *testing.T, blocks int) (*simclock.Clock, *hypervisor.Host) {
	t.Helper()
	clock := simclock.New()
	return clock, hypervisor.NewHost(hypervisor.Config{Name: "t", RAMBytes: int64(blocks) * hp * pg}, clock)
}

func denseVM(t *testing.T, h *hypervisor.Host, runs int) *hypervisor.VMProcess {
	t.Helper()
	vm := h.NewVM(hypervisor.VMConfig{Name: "vm", GuestMemBytes: int64(runs) * hp * pg, Seed: 1})
	for i := uint64(0); i < uint64(runs)*hp; i++ {
		vm.FillGuestPage(i, mem.Seed(1000+i))
	}
	return vm
}

func TestParsePolicyRoundTrip(t *testing.T) {
	for _, p := range []Policy{PolicyNever, PolicyMadvise, PolicyAlways, PolicyFHPM} {
		got, err := ParsePolicy(p.String())
		if err != nil || got != p {
			t.Fatalf("round trip of %v: %v, %v", p, got, err)
		}
	}
	if p, err := ParsePolicy(""); err != nil || p != PolicyNever {
		t.Fatalf("empty spelling: %v, %v", p, err)
	}
	if _, err := ParsePolicy("sometimes"); err == nil {
		t.Fatal("bad spelling accepted")
	}
}

func TestNilDaemonIsInert(t *testing.T) {
	var d *Daemon
	d.Register(nil, true)
	d.Start()
	d.Stop()
	d.ScanChunk(100)
	d.Instrument(nil)
	if d.Stats() != (Stats{}) {
		t.Fatal("nil daemon has stats")
	}
}

func TestDaemonCollapsesDenseRunsOnClock(t *testing.T) {
	clock, h := newHost(t, 8)
	vm := denseVM(t, h, 2)
	cfg := DefaultConfig()
	cfg.Policy = PolicyAlways
	d := New(h, cfg)
	d.Register(vm, false)
	d.Start()
	clock.RunFor(2 * simclock.Second)
	if vm.HugeMappings() != 2 {
		t.Fatalf("huge mappings %d after daemon run, want 2", vm.HugeMappings())
	}
	s := d.Stats()
	if s.Collapses != 2 || s.PagesScanned == 0 || s.FullScans == 0 {
		t.Fatalf("stats %+v", s)
	}
	// Collapsed runs stay collapsed on later passes (already-huge is not a
	// failure).
	failed := s.CollapseFailed
	clock.RunFor(simclock.Second)
	if got := d.Stats().CollapseFailed; got != failed {
		t.Fatalf("already-huge runs counted as failures: %d -> %d", failed, got)
	}
	d.Stop()
	scanned := d.Stats().PagesScanned
	clock.RunFor(simclock.Second)
	if d.Stats().PagesScanned != scanned {
		t.Fatal("daemon kept scanning after Stop")
	}
}

func TestPolicyNeverNeverStarts(t *testing.T) {
	clock, h := newHost(t, 8)
	vm := denseVM(t, h, 1)
	d := New(h, DefaultConfig()) // Policy: never
	d.Register(vm, true)
	d.Start()
	clock.RunFor(2 * simclock.Second)
	if vm.HugeMappings() != 0 || d.Stats().PagesScanned != 0 {
		t.Fatalf("never policy acted: mappings=%d stats=%+v", vm.HugeMappings(), d.Stats())
	}
}

func TestPolicyMadviseCollapsesOnlyAdvisedRegions(t *testing.T) {
	clock, h := newHost(t, 12)
	advised := denseVM(t, h, 1)
	plain := denseVM(t, h, 1)
	cfg := DefaultConfig()
	cfg.Policy = PolicyMadvise
	d := New(h, cfg)
	d.Register(advised, true)
	d.Register(plain, false)
	d.Start()
	clock.RunFor(2 * simclock.Second)
	if advised.HugeMappings() != 1 {
		t.Fatal("madvised region not collapsed")
	}
	if plain.HugeMappings() != 0 {
		t.Fatal("non-advised region collapsed under madvise policy")
	}
}

func TestRegisterIsIdempotentAndAlignsInward(t *testing.T) {
	_, h := newHost(t, 8)
	vm := denseVM(t, h, 1)
	cfg := DefaultConfig()
	cfg.Policy = PolicyAlways
	d := New(h, cfg)
	d.Register(vm, false)
	d.Register(vm, false)
	if len(d.regions) != 1 {
		t.Fatalf("duplicate registration: %d regions", len(d.regions))
	}
	// A guest smaller than one aligned run can never collapse and is not
	// registered at all.
	tiny := h.NewVM(hypervisor.VMConfig{Name: "tiny", GuestMemBytes: 8 * pg, Seed: 9})
	d.Register(tiny, false)
	if len(d.regions) != 1 {
		t.Fatal("sub-run guest registered")
	}
}

func TestSplitsElsewhereCounted(t *testing.T) {
	clock, h := newHost(t, 8)
	vm := denseVM(t, h, 1)
	cfg := DefaultConfig()
	cfg.Policy = PolicyAlways
	d := New(h, cfg)
	d.Register(vm, false)
	d.Start()
	clock.RunFor(simclock.Second)
	if vm.HugeMappings() != 1 {
		t.Fatal("setup: no collapse")
	}
	// A guest release splits the mapping; the daemon's split gauge must see
	// it via the host hook.
	vm.ReleaseGuestPage(3)
	if d.Stats().Splits != 1 {
		t.Fatalf("splits %d after release-driven split", d.Stats().Splits)
	}
}

func TestUnregisterDropsVMFromScan(t *testing.T) {
	clock, h := newHost(t, 16)
	vm1 := denseVM(t, h, 1)
	vm2 := h.NewVM(hypervisor.VMConfig{Name: "vm2", GuestMemBytes: int64(hp) * pg, Seed: 2})
	for i := uint64(0); i < hp; i++ {
		vm2.FillGuestPage(i, mem.Seed(2000+i))
	}
	cfg := DefaultConfig()
	cfg.Policy = PolicyAlways
	d := New(h, cfg)
	d.Register(vm1, false)
	d.Register(vm2, false)
	d.Start()

	// Drop vm2 mid-flight (as a guest kill does) and let the daemon run: it
	// must keep collapsing vm1 and never touch the dead process.
	d.Unregister(vm2)
	h.KillVM(vm2)
	clock.RunFor(2 * simclock.Second)
	if vm1.HugeMappings() != 1 {
		t.Fatalf("survivor not collapsed: %d huge mappings", vm1.HugeMappings())
	}
	if d.Stats().FullScans == 0 {
		t.Fatal("cursor never completed a pass after unregister")
	}

	// Unregistering the last region mid-pass leaves an empty, sane daemon.
	d.Unregister(vm1)
	scanned := d.Stats().PagesScanned
	clock.RunFor(simclock.Second)
	if d.Stats().PagesScanned != scanned {
		t.Fatal("daemon scanned with no registered regions")
	}
	d.Unregister(vm1)              // double unregister is a no-op
	(*Daemon)(nil).Unregister(vm1) // nil-safe like the rest of the API
}
