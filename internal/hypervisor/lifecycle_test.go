package hypervisor

import (
	"strings"
	"testing"

	"repro/internal/mem"
)

func TestKillVMFreesResidentAndSwapped(t *testing.T) {
	// 8 RAM frames, guest touches 16 pages: part resident, part swapped.
	h := newHost(t, 8)
	vm := h.NewVM(VMConfig{Name: "vm1", GuestMemBytes: 32 * pg, Seed: 1})
	for i := uint64(0); i < 16; i++ {
		vm.FillGuestPage(i, mem.Seed(100+i))
	}
	if h.SwapUsedSlots() == 0 {
		t.Fatal("scenario did not push pages into swap")
	}
	h.KillVM(vm)
	if vm.Alive() {
		t.Fatal("VM still alive after KillVM")
	}
	if got := h.Phys().FramesInUse(); got != 0 {
		t.Fatalf("%d frames leaked by kill", got)
	}
	if got := h.SwapUsedSlots(); got != 0 {
		t.Fatalf("%d swap slots leaked by kill", got)
	}
	if len(h.VMs()) != 0 {
		t.Fatal("dead VM still listed on the host")
	}
	if err := h.CheckLeaks(nil); err != nil {
		t.Fatalf("leak check after kill: %v", err)
	}
	if h.Stats().Kills != 1 {
		t.Fatalf("Kills = %d, want 1", h.Stats().Kills)
	}
}

func TestKillVMFreesZeroSwapSlots(t *testing.T) {
	h := newHost(t, 8)
	vm := h.NewVM(VMConfig{Name: "vm1", GuestMemBytes: 32 * pg, Seed: 1})
	for i := uint64(0); i < 20; i++ {
		vm.TouchGuestPage(i, true) // demand-zero pages, some end up swapped
	}
	if h.SwapUsedSlots() == 0 {
		t.Fatal("scenario did not push zero pages into swap")
	}
	h.KillVM(vm)
	if got := h.SwapUsedSlots(); got != 0 {
		t.Fatalf("%d zero swap slots leaked by kill", got)
	}
	if err := h.CheckLeaks(nil); err != nil {
		t.Fatalf("leak check after kill: %v", err)
	}
}

func TestKillVMDropsSharedFrameReference(t *testing.T) {
	h := newHost(t, 64)
	vm1 := h.NewVM(VMConfig{Name: "vm1", GuestMemBytes: 8 * pg, Seed: 1})
	vm2 := h.NewVM(VMConfig{Name: "vm2", GuestMemBytes: 8 * pg, Seed: 2})
	vm1.FillGuestPage(0, 7)
	vm2.FillGuestPage(0, 7)

	// Merge as KSM would: vm2's page 0 remaps to vm1's frame.
	vpn1 := vm1.GPFNToHostVPN(0)
	f1, _ := vm1.ResolveResident(vpn1)
	h.Phys().SetKSM(f1, true)
	vm1.WriteProtect(vpn1)
	h.Phys().IncRef(f1)
	vm2.RemapShared(vm2.GPFNToHostVPN(0), f1)

	// Killing the sharer drops one reference; the frame survives for vm1.
	h.KillVM(vm2)
	if got := h.Phys().RefCount(f1); got != 1 {
		t.Fatalf("shared frame refcount after sharer kill = %d, want 1", got)
	}
	if err := h.CheckLeaks(nil); err != nil {
		t.Fatalf("leak check after sharer kill: %v", err)
	}
	b := vm1.ReadGuestPage(0)
	want := mem.FillBytes(pg, 7)
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("surviving VM's shared page corrupted at byte %d", i)
		}
	}
	// Killing the last mapper frees the frame entirely.
	h.KillVM(vm1)
	if got := h.Phys().FramesInUse(); got != 0 {
		t.Fatalf("%d frames leaked after both kills", got)
	}
	if err := h.CheckLeaks(nil); err != nil {
		t.Fatalf("leak check after both kills: %v", err)
	}
}

func TestKillVMDissolvesHugeMapping(t *testing.T) {
	h := newHost(t, 4*mem.HugePages)
	vm := h.NewVM(VMConfig{Name: "vm1", GuestMemBytes: int64(mem.HugePages) * pg, Seed: 1})
	for i := uint64(0); i < uint64(mem.HugePages); i++ {
		vm.FillGuestPage(i, mem.Seed(i))
	}
	if out := vm.CollapseHuge(vm.GPFNToHostVPN(0), 0); out != CollapseOK {
		t.Fatalf("collapse failed: %v", out)
	}
	if vm.HugeMappings() != 1 {
		t.Fatal("no huge mapping to tear down")
	}
	h.KillVM(vm)
	if got := h.Phys().FramesInUse(); got != 0 {
		t.Fatalf("%d frames leaked by huge-mapping kill", got)
	}
	if err := h.CheckLeaks(nil); err != nil {
		t.Fatalf("leak check after huge kill: %v", err)
	}
	// The block dissolved without a split event: exit frees it as a unit.
	if h.Stats().HugeSplits != 0 {
		t.Fatalf("kill counted %d huge splits", h.Stats().HugeSplits)
	}
}

func TestRestartVMBootsFreshProcess(t *testing.T) {
	h := newHost(t, 64)
	vm := h.NewVM(VMConfig{Name: "vm1", GuestMemBytes: 8 * pg, Seed: 1})
	vm.FillGuestPage(0, 7)
	oldID, oldBase := vm.ID(), vm.MemslotBase()
	h.KillVM(vm)
	nvm := h.RestartVM(vm, 99)
	if !nvm.Alive() || nvm.Seed() != 99 {
		t.Fatalf("restart produced %v (seed %d)", nvm.Alive(), nvm.Seed())
	}
	if nvm.ID() == oldID || nvm.MemslotBase() == oldBase {
		t.Fatal("restarted VM reuses the dead process's id or memslot")
	}
	nvm.FillGuestPage(0, 8)
	if err := h.CheckLeaks(nil); err != nil {
		t.Fatalf("leak check after restart: %v", err)
	}
	if h.Stats().Restarts != 1 {
		t.Fatalf("Restarts = %d, want 1", h.Stats().Restarts)
	}
}

func TestKillAndRestartPanics(t *testing.T) {
	h := newHost(t, 64)
	vm := h.NewVM(VMConfig{Name: "vm1", GuestMemBytes: 8 * pg, Seed: 1})
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("RestartVM on a live VM", func() { h.RestartVM(vm, 2) })
	h.KillVM(vm)
	mustPanic("KillVM twice", func() { h.KillVM(vm) })
	mustPanic("memory access on a dead VM", func() { vm.TouchGuestPage(0, true) })
}

func TestClaimFramesDegradesThroughEviction(t *testing.T) {
	h := newHost(t, 8)
	vm := h.NewVM(VMConfig{Name: "vm1", GuestMemBytes: 32 * pg, Seed: 1})
	for i := uint64(0); i < 6; i++ {
		vm.FillGuestPage(i, mem.Seed(10+i))
	}
	// Demand far exceeds RAM: the claim sweeps the free pool, then evicts the
	// guest's cold pages, then hits the wall.
	got := h.ClaimFrames(1000)
	if got != 8 {
		t.Fatalf("claimed %d of 8 claimable frames", got)
	}
	if h.ClaimedFrames() != got {
		t.Fatalf("ledger %d != claimed %d", h.ClaimedFrames(), got)
	}
	if h.Stats().SwapOuts == 0 {
		t.Fatal("claim under pressure did not evict")
	}
	if err := h.CheckLeaks(nil); err != nil {
		t.Fatalf("leak check while claimed: %v", err)
	}
	if n := h.ReleaseClaimed(); n != got {
		t.Fatalf("released %d, want %d", n, got)
	}
	if h.ClaimedFrames() != 0 || h.Phys().FramesInUse() != 0 {
		t.Fatal("release left the ledger or pool dirty")
	}
	// The evicted guest pages survive in swap and fault back intact.
	b := vm.ReadGuestPage(0)
	want := mem.FillBytes(pg, 10)
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("page content corrupted by claim/release at byte %d", i)
		}
	}
	if err := h.CheckLeaks(nil); err != nil {
		t.Fatalf("leak check after release: %v", err)
	}
}

func TestVictimLargestPicksBiggestFootprint(t *testing.T) {
	h := newHost(t, 256)
	small := h.NewVM(VMConfig{Name: "small", GuestMemBytes: 32 * pg, Seed: 1})
	big := h.NewVM(VMConfig{Name: "big", GuestMemBytes: 32 * pg, Seed: 2})
	for i := uint64(0); i < 2; i++ {
		small.FillGuestPage(i, mem.Seed(i))
	}
	for i := uint64(0); i < 12; i++ {
		big.FillGuestPage(i, mem.Seed(i))
	}
	if v := VictimLargest(h.VMs()); v != big {
		t.Fatalf("victim = %s, want big", v.Name())
	}
	if v := VictimLargest(nil); v != nil {
		t.Fatal("victim on empty host should be nil")
	}
}

func TestCheckLeaksDetectsOrphans(t *testing.T) {
	h := newHost(t, 64)
	vm := h.NewVM(VMConfig{Name: "vm1", GuestMemBytes: 8 * pg, Seed: 1})
	vm.FillGuestPage(0, 7)
	if err := h.CheckLeaks(nil); err != nil {
		t.Fatalf("clean state reported dirty: %v", err)
	}
	// Manufacture a leak: an extra reference no page table explains.
	f, _ := vm.ResolveResident(vm.GPFNToHostVPN(0))
	h.Phys().IncRef(f)
	err := h.CheckLeaks(nil)
	if err == nil {
		t.Fatal("orphaned refcount not detected")
	}
	if !strings.Contains(err.Error(), "refcount") {
		t.Fatalf("unhelpful leak report: %v", err)
	}
	h.Phys().DecRef(f)
	if err := h.CheckLeaks(nil); err != nil {
		t.Fatalf("state still dirty after repair: %v", err)
	}
}

func TestSwapDataPagesChargeBytes(t *testing.T) {
	h := newHost(t, 8)
	vm := h.NewVM(VMConfig{Name: "vm1", GuestMemBytes: 32 * pg, Seed: 1})
	for i := uint64(0); i < 16; i++ {
		vm.FillGuestPage(i, mem.Seed(100+i)) // non-zero content only
	}
	slots := h.SwapUsedSlots()
	if slots == 0 {
		t.Fatal("expected swap occupancy")
	}
	if got, want := h.SwapUsedBytes(), int64(slots)*pg; got != want {
		t.Fatalf("data slots charged %d bytes, want %d (%d slots)", got, want, slots)
	}
}
