package hypervisor

import (
	"bytes"
	"testing"

	"repro/internal/mem"
	"repro/internal/simclock"
)

const hp = mem.HugePages

// thpHost builds a host with ramBlocks aligned huge blocks of RAM and one VM
// whose guest spans guestPages pages. memslotBase is block-aligned, so guest
// page 0 heads an aligned run.
func thpHost(t *testing.T, ramBlocks, guestPages int) (*Host, *VMProcess) {
	t.Helper()
	h := NewHost(Config{Name: "t", RAMBytes: int64(ramBlocks) * hp * pg}, simclock.New())
	vm := h.NewVM(VMConfig{Name: "vm", GuestMemBytes: int64(guestPages) * pg, Seed: 1})
	if vm.MemslotBase()%hp != 0 {
		t.Fatalf("memslot base %d not huge-aligned", vm.MemslotBase())
	}
	return h, vm
}

func fillRun(vm *VMProcess, n int, seed mem.Seed) {
	for i := 0; i < n; i++ {
		vm.FillGuestPage(uint64(i), mem.Combine(seed, mem.Seed(i)))
	}
}

func TestCollapseHugeDenseRun(t *testing.T) {
	h, vm := thpHost(t, 4, 2*hp)
	fillRun(vm, hp, 7)
	resident := vm.Stats().ResidentPages
	if got := vm.CollapseHuge(vm.MemslotBase(), 0); got != CollapseOK {
		t.Fatalf("collapse of dense run: %v", got)
	}
	if vm.HugeMappings() != 1 || h.Phys().HugeFrames() != hp {
		t.Fatalf("huge mappings %d, huge frames %d", vm.HugeMappings(), h.Phys().HugeFrames())
	}
	if h.Stats().Collapses != 1 {
		t.Fatalf("collapse counter %d", h.Stats().Collapses)
	}
	if got := vm.Stats().ResidentPages; got != resident {
		t.Fatalf("dense collapse changed resident: %d -> %d", resident, got)
	}
	// Contents must have moved into the block byte-for-byte.
	for i := 0; i < hp; i++ {
		want := mem.FillBytes(pg, mem.Combine(7, mem.Seed(i)))
		if got := vm.ReadGuestPage(uint64(i)); !bytes.Equal(got, want) {
			t.Fatalf("page %d content lost in collapse", i)
		}
	}
	if got := vm.CollapseHuge(vm.MemslotBase(), 0); got != CollapseAlreadyHuge {
		t.Fatalf("re-collapse: %v", got)
	}
}

func TestCollapseRespectsDensityBudget(t *testing.T) {
	_, vm := thpHost(t, 4, 2*hp)
	fillRun(vm, hp-100, 3)
	if got := vm.CollapseHuge(vm.MemslotBase(), 64); got != CollapseNotDense {
		t.Fatalf("collapse of sparse run: %v", got)
	}
	if got := vm.CollapseHuge(vm.MemslotBase(), 100); got != CollapseOK {
		t.Fatalf("collapse within budget: %v", got)
	}
}

func TestCollapseBloatsAbsentPages(t *testing.T) {
	_, vm := thpHost(t, 4, 2*hp)
	fillRun(vm, hp-10, 3)
	resident := vm.Stats().ResidentPages
	if got := vm.CollapseHuge(vm.MemslotBase(), 10); got != CollapseOK {
		t.Fatalf("collapse: %v", got)
	}
	// The 10 absent pages materialized as zero subpages — THP's bloat.
	if got := vm.Stats().ResidentPages; got != resident+10 {
		t.Fatalf("resident %d, want %d (+bloat)", got, resident+10)
	}
	if got := vm.ReadGuestPage(hp - 1); !bytes.Equal(got, make([]byte, pg)) {
		t.Fatal("absent page not zero after collapse")
	}
}

func TestCollapseRefusesSharedPages(t *testing.T) {
	_, vm := thpHost(t, 4, 2*hp)
	fillRun(vm, hp, 3)
	vm.WriteProtect(vm.MemslotBase() + 17)
	if got := vm.CollapseHuge(vm.MemslotBase(), 0); got != CollapseShared {
		t.Fatalf("collapse over COW page: %v", got)
	}
}

func TestCollapseRefusesSwappedPages(t *testing.T) {
	// RAM one block + slack; filling a full run plus extra forces eviction,
	// so part of the run is in swap when the collapse is attempted.
	h, vm := thpHost(t, 1, 2*hp)
	fillRun(vm, hp+64, 3)
	if vm.Stats().SwappedPages == 0 {
		t.Fatal("setup: nothing swapped")
	}
	if got := vm.CollapseHuge(vm.MemslotBase(), 0); got != CollapseSwapped {
		t.Fatalf("collapse over swapped run: %v", got)
	}
	_ = h
}

func TestCollapseNoFreeBlock(t *testing.T) {
	// Two blocks of RAM: the dense run fills block 0, and a little extra
	// demand dirties block 1, so no fully-free aligned block remains.
	_, vm := thpHost(t, 2, 2*hp)
	fillRun(vm, hp, 3)
	for i := hp; i < hp+8; i++ {
		vm.FillGuestPage(uint64(i), mem.Seed(9000+i))
	}
	if got := vm.CollapseHuge(vm.MemslotBase(), 0); got != CollapseNoMemory {
		t.Fatalf("collapse without a free block: %v", got)
	}
}

func TestSplitHugePreservesContent(t *testing.T) {
	h, vm := thpHost(t, 4, 2*hp)
	fillRun(vm, hp, 5)
	if got := vm.CollapseHuge(vm.MemslotBase(), 0); got != CollapseOK {
		t.Fatalf("collapse: %v", got)
	}
	vm.SplitHuge(vm.MemslotBase())
	if vm.HugeMappings() != 0 || h.Phys().HugeFrames() != 0 {
		t.Fatal("split left huge state behind")
	}
	if h.Stats().HugeSplits != 1 {
		t.Fatalf("split counter %d", h.Stats().HugeSplits)
	}
	for i := 0; i < hp; i++ {
		want := mem.FillBytes(pg, mem.Combine(5, mem.Seed(i)))
		if got := vm.ReadGuestPage(uint64(i)); !bytes.Equal(got, want) {
			t.Fatalf("page %d content lost in split", i)
		}
	}
	// Split pages are individually evictable/releasable again.
	vm.ReleaseGuestPage(3)
	if got := vm.Stats().ResidentPages; got != hp-1 {
		t.Fatalf("resident %d after releasing one split page", got)
	}
}

func TestReleaseInsideHugeRunSplitsFirst(t *testing.T) {
	h, vm := thpHost(t, 4, 2*hp)
	fillRun(vm, hp, 5)
	if got := vm.CollapseHuge(vm.MemslotBase(), 0); got != CollapseOK {
		t.Fatalf("collapse: %v", got)
	}
	vm.ReleaseGuestPage(100)
	if vm.HugeMappings() != 0 {
		t.Fatal("release inside huge run did not split it")
	}
	if h.Stats().HugeSplits != 1 {
		t.Fatalf("split counter %d", h.Stats().HugeSplits)
	}
	if got := vm.Stats().ResidentPages; got != hp-1 {
		t.Fatalf("resident %d after split+release", got)
	}
	if got := vm.ReadGuestPage(99); !bytes.Equal(got, mem.FillBytes(pg, mem.Combine(5, mem.Seed(99)))) {
		t.Fatal("neighbour page corrupted by split+release")
	}
}

func TestEvictionSplitsColdHugeMapping(t *testing.T) {
	// Two blocks of RAM: the collapse claims one, then a second VM's demand
	// exceeds what is left free, forcing eviction, which must split the
	// (cold) huge mapping rather than skip it forever.
	h, vm := thpHost(t, 2, hp)
	fillRun(vm, hp-64, 5)
	if got := vm.CollapseHuge(vm.MemslotBase(), 64); got != CollapseOK {
		t.Fatalf("collapse: %v", got)
	}
	vm2 := h.NewVM(VMConfig{Name: "late", GuestMemBytes: int64(2*hp) * pg, Seed: 2})
	for i := uint64(0); i < hp+64; i++ {
		vm2.FillGuestPage(i, mem.Seed(100+i))
	}
	if vm.HugeMappings() != 0 {
		t.Fatal("eviction never split the cold huge mapping")
	}
	if h.Stats().HugeSplits == 0 || h.Stats().SwapOuts == 0 {
		t.Fatalf("stats after pressure: %+v", h.Stats())
	}
	// The collapsed content must survive the split + swap round trip.
	if got := vm.ReadGuestPage(7); !bytes.Equal(got, mem.FillBytes(pg, mem.Combine(5, mem.Seed(7)))) {
		t.Fatal("content lost across eviction split")
	}
}
