package hypervisor

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/simclock"
)

func dirtyHost(t *testing.T, ramPages, ringPages int) *Host {
	t.Helper()
	return NewHost(Config{
		Name:           "t",
		RAMBytes:       int64(ramPages) * pg,
		DirtyLog:       true,
		DirtyRingPages: ringPages,
	}, simclock.New())
}

func TestDirtyLogOffMeansNoRing(t *testing.T) {
	h := NewHost(Config{Name: "t", RAMBytes: 256 * pg}, simclock.New())
	vm := h.NewVM(VMConfig{Name: "vm", GuestMemBytes: 16 * pg, Seed: 1})
	vm.TouchGuestPage(0, true)
	if pages, overflowed := vm.DrainDirtyLog(); pages != nil || overflowed {
		t.Fatalf("ringless VM drained %v (overflow %v)", pages, overflowed)
	}
	if vm.DirtyLogDepth() != 0 {
		t.Fatal("ringless VM reports ring depth")
	}
	if h.DirtyLogEnabled() {
		t.Fatal("DirtyLogEnabled true on a default host")
	}
}

func TestDirtyLogRecordsFaultsAndWrites(t *testing.T) {
	h := dirtyHost(t, 256, 0)
	vm := h.NewVM(VMConfig{Name: "vm", GuestMemBytes: 16 * pg, Seed: 1})

	vm.TouchGuestPage(3, false) // minor fault: first touch dirties the frame
	vm.TouchGuestPage(5, true)  // write access
	vm.TouchGuestPage(5, true)  // same cycle: deduplicated
	if got := vm.DirtyLogDepth(); got != 2 {
		t.Fatalf("ring depth = %d, want 2", got)
	}
	pages, overflowed := vm.DrainDirtyLog()
	if overflowed {
		t.Fatal("unexpected overflow")
	}
	want := []mem.VPN{vm.GPFNToHostVPN(3), vm.GPFNToHostVPN(5)}
	if len(pages) != 2 || pages[0] != want[0] || pages[1] != want[1] {
		t.Fatalf("drained %v, want %v (host VPNs in append order)", pages, want)
	}

	// A read of an already-mapped page is not a dirtying access...
	vm.TouchGuestPage(5, false)
	if got := vm.DirtyLogDepth(); got != 0 {
		t.Fatalf("read access logged: depth %d", got)
	}
	// ...but a write of it is, dedup having reset with the drain cycle.
	vm.TouchGuestPage(5, true)
	if got := vm.DirtyLogDepth(); got != 1 {
		t.Fatalf("post-drain write not logged: depth %d", got)
	}
}

func TestDirtyLogOverflowIsConservative(t *testing.T) {
	h := dirtyHost(t, 256, 4)
	vm := h.NewVM(VMConfig{Name: "vm", GuestMemBytes: 16 * pg, Seed: 1})
	for i := uint64(0); i < 10; i++ {
		vm.TouchGuestPage(i, true)
	}
	pages, overflowed := vm.DrainDirtyLog()
	if !overflowed {
		t.Fatal("10 writes through a 4-entry ring did not overflow")
	}
	if len(pages) != 4 {
		t.Fatalf("retained %d pages, want the 4 that fit", len(pages))
	}
	if vm.DirtyLogOverflows() != 1 {
		t.Fatalf("overflow counter = %d, want 1 (latched once per cycle)", vm.DirtyLogOverflows())
	}
	// The next cycle starts clean.
	vm.TouchGuestPage(0, true)
	if pages, overflowed := vm.DrainDirtyLog(); overflowed || len(pages) != 1 {
		t.Fatalf("post-overflow cycle drained %v (overflow %v)", pages, overflowed)
	}
}

func TestWorkingSetEWMA(t *testing.T) {
	h := dirtyHost(t, 256, 0)
	vm := h.NewVM(VMConfig{Name: "vm", GuestMemBytes: 16 * pg, Seed: 1})
	if _, ok := vm.WorkingSetPages(); ok {
		t.Fatal("estimate exists before any drain observation")
	}
	vm.ObserveDirtyDrain(100)
	if ws, ok := vm.WorkingSetPages(); !ok || ws != 100 {
		t.Fatalf("first observation: ws=%d ok=%v, want 100 true", ws, ok)
	}
	vm.ObserveDirtyDrain(0)
	if ws, _ := vm.WorkingSetPages(); ws != 50 {
		t.Fatalf("EWMA after empty drain = %d, want 50", ws)
	}
	vm.ObserveDirtyDrain(0)
	if ws, _ := vm.WorkingSetPages(); ws != 25 {
		t.Fatalf("EWMA after second empty drain = %d, want 25", ws)
	}
}

func TestVictimColdestPolicy(t *testing.T) {
	h := dirtyHost(t, 512, 0)
	hot := h.NewVM(VMConfig{Name: "hot", GuestMemBytes: 16 * pg, Seed: 1})
	cold := h.NewVM(VMConfig{Name: "cold", GuestMemBytes: 16 * pg, Seed: 2})
	noEst := h.NewVM(VMConfig{Name: "unknown", GuestMemBytes: 64 * pg, Seed: 3})
	for i := uint64(0); i < 64; i++ {
		noEst.TouchGuestPage(i, true)
	}
	hot.ObserveDirtyDrain(500)
	cold.ObserveDirtyDrain(3)
	if v := VictimColdest(h.VMs()); v != cold {
		t.Fatalf("victim = %s, want the cold guest", v.Name())
	}
	// With no estimates anywhere the policy degrades to VictimLargest.
	fresh := dirtyHost(t, 512, 0)
	a := fresh.NewVM(VMConfig{Name: "small", GuestMemBytes: 8 * pg, Seed: 1})
	b := fresh.NewVM(VMConfig{Name: "large", GuestMemBytes: 64 * pg, Seed: 2})
	for i := uint64(0); i < 8; i++ {
		a.TouchGuestPage(i, false)
	}
	for i := uint64(0); i < 64; i++ {
		b.TouchGuestPage(i, false)
	}
	if v := VictimColdest(fresh.VMs()); v != b {
		t.Fatalf("fallback victim = %s, want the largest guest", v.Name())
	}
}
