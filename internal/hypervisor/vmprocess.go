package hypervisor

import (
	"fmt"

	"repro/internal/mem"
)

// VMConfig describes one guest VM process.
type VMConfig struct {
	// Name labels the VM in reports ("VM 1").
	Name string
	// GuestMemBytes is the guest physical memory size.
	GuestMemBytes int64
	// OverheadBytes models the VM process's own working memory (device
	// emulation state, I/O buffers — what the paper calls "the memory used
	// by the guest VM itself", which it found to be quite small).
	OverheadBytes int64
	// Seed randomizes per-VM layout and private content, standing in for
	// ASLR and boot-time nondeterminism.
	Seed mem.Seed
}

// VMStats aggregates per-VM paging counters.
type VMStats struct {
	ResidentPages int
	SwappedPages  int
	MajorFaults   uint64
	MinorFaults   uint64
	COWBreaks     uint64
}

// VMProcess is a guest VM implemented as a host process (the KVM model).
// Guest physical memory occupies one memslot in the process's host-virtual
// address space; the host page table maps host-virtual pages to physical
// frames on demand.
type VMProcess struct {
	host *Host
	id   int
	cfg  VMConfig

	guestPages  int
	memslotBase mem.VPN // host-virtual page of guest physical page 0
	hpt         *mem.PageTable

	overheadStart mem.VPN
	overheadPages int

	// dead marks a process torn down by KillVM. A dead VM owns no frames or
	// swap slots; touching its memory is a bug and panics.
	dead bool
	// paused marks stopped vCPUs during a migration's stop-and-copy phase.
	// Guest accesses while paused panic; host-side mechanisms (KSM, THP,
	// balloon, export) keep working, as they do under a real vCPU stop.
	paused bool

	// dirty is the VM's PML-style dirty-page ring (nil unless the host was
	// configured with DirtyLog). It records guest frame numbers.
	dirty *mem.DirtyRing
	// wsEWMA smooths the per-drain distinct-dirty-page counts into a
	// working-set estimate; wsValid is false until the first drain.
	wsEWMA  float64
	wsValid bool

	stats VMStats
}

// memslotSpacing leaves a gap between VM processes' nominal host-virtual
// ranges so that per-process addresses are visibly distinct in dumps.
const memslotSpacing = 1 << 24 // pages

// NewVM creates and boots a guest VM process on the host. The VM's own
// overhead pages are populated immediately (the emulator allocates its
// working set at startup); guest memory is demand-paged.
func (h *Host) NewVM(cfg VMConfig) *VMProcess {
	if cfg.GuestMemBytes < int64(h.cfg.PageSize) {
		panic(fmt.Sprintf("hypervisor: guest memory %d smaller than a page", cfg.GuestMemBytes))
	}
	// The slot counter is monotonic, never reused: a restarted VM gets a
	// fresh id and memslot base, so stale references to the dead process can
	// never alias the new one. With no kills this numbering is identical to
	// the historical len(h.vms)+1.
	h.nextVMSlot++
	vm := &VMProcess{
		host:        h,
		id:          h.nextVMSlot,
		cfg:         cfg,
		guestPages:  int(cfg.GuestMemBytes / int64(h.cfg.PageSize)),
		memslotBase: mem.VPN(uint64(h.nextVMSlot) * memslotSpacing),
		hpt:         mem.NewPageTable(),
	}
	if h.cfg.DirtyLog {
		vm.dirty = mem.NewDirtyRing(h.cfg.DirtyRingPages)
	}
	vm.overheadStart = vm.memslotBase + mem.VPN(vm.guestPages) + 256
	vm.overheadPages = int(cfg.OverheadBytes / int64(h.cfg.PageSize))
	h.vms = append(h.vms, vm)
	vm.populateOverhead()
	return vm
}

// populateOverhead fills the VM process's private working memory with
// per-VM content; it never merges across VMs.
func (vm *VMProcess) populateOverhead() {
	seed := mem.Combine(mem.HashString("vm-overhead"), vm.cfg.Seed)
	for i := 0; i < vm.overheadPages; i++ {
		vpn := vm.overheadStart + mem.VPN(i)
		f := vm.host.allocFrame()
		vm.host.phys.FillFrame(f, mem.Combine(seed, mem.Seed(i)))
		vm.hpt.Set(vpn, mem.PTE{Frame: f, Writable: true, LastUse: vm.host.now()})
		vm.stats.ResidentPages++
		vm.host.noteMapped(vm, vpn)
	}
}

// ID reports the VM's 1-based slot number on its host. Slots are never
// reused, so a restarted VM has a fresh ID.
func (vm *VMProcess) ID() int { return vm.id }

// Alive reports whether the VM process is still running (false after
// Host.KillVM).
func (vm *VMProcess) Alive() bool { return !vm.dead }

// Name reports the VM's label.
func (vm *VMProcess) Name() string { return vm.cfg.Name }

// Seed reports the VM's layout-randomization seed.
func (vm *VMProcess) Seed() mem.Seed { return vm.cfg.Seed }

// Host returns the host machine.
func (vm *VMProcess) Host() *Host { return vm.host }

// PageSize reports the page size in bytes (guestos.Machine interface).
func (vm *VMProcess) PageSize() int { return vm.host.PageSize() }

// GuestPages reports the guest physical memory size in pages.
func (vm *VMProcess) GuestPages() int { return vm.guestPages }

// Stats returns a snapshot of the VM's paging counters.
func (vm *VMProcess) Stats() VMStats { return vm.stats }

// HostPageTable exposes the VM process's host page table; the analyzer and
// the KSM scanner walk it.
func (vm *VMProcess) HostPageTable() *mem.PageTable { return vm.hpt }

// MemslotBase reports the host-virtual page where guest physical page 0 is
// mapped (the KVM memslot translation the paper's kernel module extracts).
func (vm *VMProcess) MemslotBase() mem.VPN { return vm.memslotBase }

// GPFNToHostVPN translates a guest physical page number to the VM process's
// host-virtual page number.
func (vm *VMProcess) GPFNToHostVPN(gpfn uint64) mem.VPN {
	if gpfn >= uint64(vm.guestPages) {
		panic(fmt.Sprintf("hypervisor: gpfn %d outside guest memory (%d pages)", gpfn, vm.guestPages))
	}
	return vm.memslotBase + mem.VPN(gpfn)
}

// OverheadRegion reports the host-virtual range of the VM process's own
// working memory (outside guest RAM), for the analyzer.
func (vm *VMProcess) OverheadRegion() (start, end mem.VPN) {
	return vm.overheadStart, vm.overheadStart + mem.VPN(vm.overheadPages)
}

// MergeableRegion describes a host-virtual range registered with KSM. KVM
// madvises all guest RAM as MERGEABLE; the VM process's own overhead is not
// registered, matching QEMU.
type MergeableRegion struct {
	VM         *VMProcess
	Start, End mem.VPN // [Start, End)
}

// MergeableRegions reports the VM's KSM-registered ranges.
func (vm *VMProcess) MergeableRegions() []MergeableRegion {
	return []MergeableRegion{{
		VM:    vm,
		Start: vm.memslotBase,
		End:   vm.memslotBase + mem.VPN(vm.guestPages),
	}}
}

// ensureMapped resolves a host-virtual page to a frame, demand-paging or
// swapping in as needed. With forWrite set, COW mappings are broken.
//
// Dirty logging: any fault that (re)materializes the page appends it to the
// VM's dirty ring — a fresh demand-zero page or a swapped-in page is new
// content as far as the incremental scanner is concerned — and so does every
// write access. Read touches of resident pages change nothing and log
// nothing.
func (vm *VMProcess) ensureMapped(vpn mem.VPN, forWrite bool) mem.FrameID {
	if vm.dead {
		panic(fmt.Sprintf("hypervisor: memory access on killed %s", vm.cfg.Name))
	}
	if vm.paused {
		panic(fmt.Sprintf("hypervisor: guest memory access on paused %s", vm.cfg.Name))
	}
	pte, ok := vm.hpt.Lookup(vpn)
	switch {
	case !ok:
		// Minor fault: first touch of an anonymous page.
		f := vm.host.allocFrame()
		vm.hpt.Set(vpn, mem.PTE{Frame: f, Writable: true, LastUse: vm.host.now(), Accessed: true})
		vm.stats.ResidentPages++
		vm.stats.MinorFaults++
		vm.host.stats.MinorFaults++
		vm.host.noteMapped(vm, vpn)
		vm.logDirty(vpn)
		return f
	case pte.Swapped:
		// Major fault: bring the page back from swap. Shared pages are never
		// evicted, so a swapped-in page is always private (no COW to break).
		f := vm.host.allocFrame()
		vm.host.swap.in(vm.host.phys, pte.SwapSlot, f)
		vm.hpt.Set(vpn, mem.PTE{Frame: f, Writable: pte.Writable, LastUse: vm.host.now(), Accessed: true})
		vm.stats.ResidentPages++
		vm.stats.SwappedPages--
		vm.stats.MajorFaults++
		vm.host.stats.MajorFaults++
		vm.host.noteMapped(vm, vpn)
		vm.logDirty(vpn)
		return f
	default:
		if pte.Huge {
			// Touch bookkeeping lives on the stored head entry; middle PTEs
			// are synthesized. Huge mappings are never COW (collapse refuses
			// shared runs), so writes need no break.
			head := mem.HugeAlign(vpn)
			he, _ := vm.hpt.Lookup(head)
			he.LastUse = vm.host.now()
			he.Accessed = true
			vm.hpt.Set(head, he)
			if forWrite {
				vm.logDirty(vpn)
			}
			return pte.Frame
		}
		pte.LastUse = vm.host.now()
		pte.Accessed = true
		if forWrite {
			vm.logDirty(vpn)
			if pte.COW {
				return vm.breakCOW(vpn, pte)
			}
		}
		vm.hpt.Set(vpn, pte)
		return pte.Frame
	}
}

// breakCOW resolves a write fault on a shared mapping by copying the page.
func (vm *VMProcess) breakCOW(vpn mem.VPN, pte mem.PTE) mem.FrameID {
	old := pte.Frame
	f := vm.host.allocFrame()
	vm.host.phys.CopyFrame(f, old)
	vm.host.phys.DecRef(old)
	vm.hpt.Set(vpn, mem.PTE{Frame: f, Writable: true, LastUse: vm.host.now(), Accessed: true})
	vm.stats.COWBreaks++
	vm.host.stats.COWBreaks++
	vm.host.noteMapped(vm, vpn)
	if vm.host.OnCOWBreak != nil {
		vm.host.OnCOWBreak(vm, vpn, old)
	}
	return f
}

// TouchGuestPage simulates a guest access to a guest physical page.
func (vm *VMProcess) TouchGuestPage(gpfn uint64, write bool) {
	vm.ensureMapped(vm.GPFNToHostVPN(gpfn), write)
}

// ReadGuestPage returns a read-only view of a guest physical page's bytes,
// faulting it in if necessary.
func (vm *VMProcess) ReadGuestPage(gpfn uint64) []byte {
	f := vm.ensureMapped(vm.GPFNToHostVPN(gpfn), false)
	return vm.host.phys.Bytes(f)
}

// WriteGuestPage writes bytes into a guest physical page at off.
func (vm *VMProcess) WriteGuestPage(gpfn uint64, off int, data []byte) {
	f := vm.ensureMapped(vm.GPFNToHostVPN(gpfn), true)
	vm.host.phys.Write(f, off, data)
}

// FillGuestPage overwrites a whole guest physical page with deterministic
// content derived from seed.
func (vm *VMProcess) FillGuestPage(gpfn uint64, seed mem.Seed) {
	f := vm.ensureMapped(vm.GPFNToHostVPN(gpfn), true)
	vm.host.phys.FillFrame(f, seed)
}

// ZeroGuestPage clears a guest physical page to zeros (what the guest GC's
// sweep does).
func (vm *VMProcess) ZeroGuestPage(gpfn uint64) {
	f := vm.ensureMapped(vm.GPFNToHostVPN(gpfn), true)
	vm.host.phys.ZeroFrame(f)
}

// ReleaseGuestPage models the guest returning a page to the hypervisor
// (free-page hinting / balloon deflate): the backing frame or swap slot is
// released and the next touch demand-faults a fresh zero page.
func (vm *VMProcess) ReleaseGuestPage(gpfn uint64) {
	vpn := vm.GPFNToHostVPN(gpfn)
	if pte, ok := vm.hpt.Lookup(vpn); ok && pte.Huge {
		// The page is inside a huge mapping; Linux splits the huge page
		// before freeing a subpage, and so do we.
		vm.SplitHuge(mem.HugeAlign(vpn))
	}
	pte, ok := vm.hpt.Delete(vpn)
	if !ok {
		return
	}
	if pte.Swapped {
		vm.host.swap.drop(vm.host.phys, pte.SwapSlot)
		vm.stats.SwappedPages--
		return
	}
	vm.host.phys.DecRef(pte.Frame)
	vm.stats.ResidentPages--
}

// ResolveResident reports the frame currently backing a host-virtual page,
// without faulting, swapping in, or updating access state. The KSM scanner
// and the analyzer use it.
func (vm *VMProcess) ResolveResident(vpn mem.VPN) (mem.FrameID, bool) {
	pte, ok := vm.hpt.Lookup(vpn)
	if !ok || pte.Swapped {
		return mem.NilFrame, false
	}
	return pte.Frame, true
}

// ResidentPTE reports the full PTE backing a resident host-virtual page,
// without faulting, swapping in, or updating access state. Unlike
// ResolveResident it exposes the Huge and COW flags, which the KSM scanner
// and the THP daemon dispatch on.
func (vm *VMProcess) ResidentPTE(vpn mem.VPN) (mem.PTE, bool) {
	pte, ok := vm.hpt.Lookup(vpn)
	if !ok || pte.Swapped {
		return mem.PTE{}, false
	}
	return pte, true
}

// RemapShared replaces the frame behind vpn with an already-referenced
// shared frame, write-protecting the mapping. The caller (KSM) must have
// IncRef'd shared before calling; the old frame's reference is dropped.
func (vm *VMProcess) RemapShared(vpn mem.VPN, shared mem.FrameID) {
	pte, ok := vm.hpt.Lookup(vpn)
	if !ok || pte.Swapped {
		panic("hypervisor: RemapShared on non-resident page")
	}
	if pte.Huge {
		panic("hypervisor: RemapShared inside a huge mapping (split it first)")
	}
	vm.host.phys.DecRef(pte.Frame)
	pte.Frame = shared
	pte.COW = true
	vm.hpt.Set(vpn, pte)
}

// logDirty appends a guest-RAM page to the VM's dirty ring, if logging is
// on. Pages outside the memslot (VM overhead) are never scan candidates and
// are not logged. The ring stores guest frame numbers, as PML logs GPAs.
func (vm *VMProcess) logDirty(vpn mem.VPN) {
	if vm.dirty == nil {
		return
	}
	if vpn < vm.memslotBase || vpn >= vm.memslotBase+mem.VPN(vm.guestPages) {
		return
	}
	vm.dirty.Log(vpn - vm.memslotBase)
}

// DrainDirtyLog returns the host-virtual page numbers dirtied since the
// last drain (append order) plus the log-full flag, and starts a fresh
// cycle. With an overflowed cycle the list is incomplete and the caller
// must rescan the whole VM. Nil/false when dirty logging is off.
//
// Every drain also feeds the per-subpage heat counters of huge mappings
// (mem.PageTable.NoteSubpageDirty): one event per distinct dirty page per
// cycle, which is exactly the PML-grade write signal the FHPM daemon's
// demote/promote decisions run on.
func (vm *VMProcess) DrainDirtyLog() ([]mem.VPN, bool) {
	if vm.dirty == nil {
		return nil, false
	}
	gfns, full := vm.dirty.Drain()
	for i, g := range gfns {
		vpn := vm.memslotBase + g
		gfns[i] = vpn
		vm.hpt.NoteSubpageDirty(vpn)
	}
	return gfns, full
}

// ResetDirtyLog discards the current dirty cycle — a linear full scan is
// about to visit every page anyway — reporting how many distinct pages were
// pending and whether the cycle had overflowed. When the VM holds huge
// mappings the pending pages still feed the per-subpage heat counters
// before being discarded, so the FHPM heat signal survives linear scans.
func (vm *VMProcess) ResetDirtyLog() (n int, overflowed bool) {
	if vm.dirty == nil {
		return 0, false
	}
	if vm.hpt.HugeMappings() == 0 {
		return vm.dirty.Reset()
	}
	gfns, full := vm.dirty.Drain()
	for _, g := range gfns {
		vm.hpt.NoteSubpageDirty(vm.memslotBase + g)
	}
	return len(gfns), full
}

// DirtyLogDepth reports the current cycle's distinct dirty pages (telemetry).
func (vm *VMProcess) DirtyLogDepth() int {
	if vm.dirty == nil {
		return 0
	}
	return vm.dirty.Depth()
}

// DirtyLogOverflows reports the lifetime count of overflowed cycles.
func (vm *VMProcess) DirtyLogOverflows() uint64 {
	if vm.dirty == nil {
		return 0
	}
	return vm.dirty.Overflows()
}

// ObserveDirtyDrain feeds one drain cycle's distinct-dirty-page count into
// the VM's working-set estimator (an EWMA with α = ½, so the estimate
// tracks churn shifts within a couple of scan intervals).
func (vm *VMProcess) ObserveDirtyDrain(pages int) {
	if !vm.wsValid {
		vm.wsEWMA = float64(pages)
		vm.wsValid = true
		return
	}
	vm.wsEWMA = (vm.wsEWMA + float64(pages)) / 2
}

// WorkingSetPages reports the dirty-log working-set estimate in pages.
// ok is false when dirty logging is off or no drain has been observed yet —
// consumers must then treat the VM as hot (unknown ≠ cold).
func (vm *VMProcess) WorkingSetPages() (int, bool) {
	if !vm.wsValid {
		return 0, false
	}
	return int(vm.wsEWMA + 0.5), true
}

// WriteProtect marks the mapping COW so the next write faults (used when a
// page becomes a KSM stable page in place).
func (vm *VMProcess) WriteProtect(vpn mem.VPN) {
	pte, ok := vm.hpt.Lookup(vpn)
	if !ok || pte.Swapped {
		panic("hypervisor: WriteProtect on non-resident page")
	}
	if pte.Huge {
		panic("hypervisor: WriteProtect inside a huge mapping (split it first)")
	}
	pte.COW = true
	vm.hpt.Set(vpn, pte)
}
