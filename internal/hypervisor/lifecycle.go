package hypervisor

import (
	"fmt"

	"repro/internal/mem"
)

// KillVM tears a guest VM process down end to end, as the host kernel does
// when a QEMU process dies: every mapping is unmapped, private and
// KSM-shared frames drop their reference (a stable page survives as long as
// other VMs map it; the scanner's end-of-pass prune collects the rest), huge
// blocks are dissolved and freed, swap slots are released, and the process
// leaves the host's VM list and eviction queue. The KSM and THP daemons keep
// their own region lists — callers must Unregister the VM there; CheckLeaks
// verifies nothing was orphaned.
func (h *Host) KillVM(vm *VMProcess) {
	if vm.dead {
		panic(fmt.Sprintf("hypervisor: KillVM on already-dead %s", vm.cfg.Name))
	}
	for _, vpn := range vm.hpt.SortedVPNs() {
		pte, ok := vm.hpt.Lookup(vpn)
		if !ok {
			continue
		}
		switch {
		case pte.Swapped:
			h.swap.drop(h.phys, pte.SwapSlot)
		case pte.Huge:
			// Exit frees a huge page as a unit — no split event, no
			// re-queueing of base pages; the block just dissolves back into
			// free frames. Carved subpages own their (possibly remapped)
			// frames through their base PTEs, which this same loop visits,
			// so the huge branch releases only the uncarved remainder.
			h.phys.SplitHugeBlock(pte.Frame)
			for i := 0; i < mem.HugePages; i++ {
				if vm.hpt.CarvedAt(vpn + mem.VPN(i)) {
					continue
				}
				h.phys.DecRef(pte.Frame + mem.FrameID(i))
			}
		default:
			h.phys.DecRef(pte.Frame)
		}
	}
	vm.hpt = mem.NewPageTable()
	vm.stats.ResidentPages = 0
	vm.stats.SwappedPages = 0
	vm.dead = true
	for i, other := range h.vms {
		if other == vm {
			h.vms = append(h.vms[:i], h.vms[i+1:]...)
			break
		}
	}
	kept := h.evictQueue[:0]
	for _, m := range h.evictQueue {
		if m.vm != vm {
			kept = append(kept, m)
		}
	}
	h.evictQueue = kept
	h.stats.Kills++
}

// RestartVM boots a replacement process for a killed VM: same configuration
// (name, guest memory, overhead) but a fresh layout seed — a rebooted guest
// re-randomizes like any cold boot — and a fresh id and memslot base. The
// caller re-registers the new process with KSM/THP and reboots a guest OS in
// it.
func (h *Host) RestartVM(old *VMProcess, seed mem.Seed) *VMProcess {
	if old == nil || !old.dead {
		panic("hypervisor: RestartVM needs a VM killed by KillVM")
	}
	cfg := old.cfg
	cfg.Seed = seed
	h.stats.Restarts++
	return h.NewVM(cfg)
}

// ClaimFrames takes up to n frames from the pool into the host's demand
// ledger (a memory-demand spike: host-side allocation that guests cannot
// satisfy). Like any allocation it degrades through the eviction path —
// swapping cold private pages out and splitting cold huge mappings — but
// unlike allocFrame it stops at the wall instead of panicking, returning how
// many frames it actually claimed. The shortfall is the caller's OOM signal.
func (h *Host) ClaimFrames(n int) int {
	for got := 0; got < n; {
		id, err := h.phys.Alloc()
		if err != nil {
			if !h.evictOne() {
				return got
			}
			continue
		}
		h.claimed = append(h.claimed, id)
		got++
	}
	return n
}

// ReleaseClaimed returns every demand-ledger frame to the pool (the spike
// subsided) and reports how many were released.
func (h *Host) ReleaseClaimed() int {
	n := len(h.claimed)
	for _, id := range h.claimed {
		h.phys.DecRef(id)
	}
	h.claimed = h.claimed[:0]
	return n
}

// ClaimedFrames reports the current demand-ledger size in frames.
func (h *Host) ClaimedFrames() int { return len(h.claimed) }

// OOMPolicy selects which live VM dies when the host cannot satisfy a
// demand spike. It receives the host's VMs in creation order and returns the
// victim (nil means nothing killable).
type OOMPolicy func(vms []*VMProcess) *VMProcess

// VictimLargest is the default policy: kill the guest with the largest
// footprint (resident + swapped pages — the closest analogue of the Linux
// OOM killer's badness score in this model), breaking ties toward the
// oldest. Killing the largest guest frees the most memory per kill, which is
// what a consolidation host wants under pressure.
func VictimLargest(vms []*VMProcess) *VMProcess {
	var victim *VMProcess
	best := -1
	for _, vm := range vms {
		size := vm.stats.ResidentPages + vm.stats.SwappedPages
		if size > best {
			best = size
			victim = vm
		}
	}
	return victim
}

// VictimColdest kills the guest with the smallest dirty-log working-set
// estimate — the one whose pages are least likely to be needed again, so the
// kill destroys the least cached value per freed frame. Guests without an
// estimate (dirty logging off, or no drain observed yet) are treated as hot
// and skipped; ties break toward the oldest. When no guest has an estimate
// the policy degrades to VictimLargest, so it is safe as a default wherever
// dirty logging may be off.
func VictimColdest(vms []*VMProcess) *VMProcess {
	var victim *VMProcess
	best := 0
	for _, vm := range vms {
		ws, ok := vm.WorkingSetPages()
		if !ok {
			continue
		}
		if victim == nil || ws < best {
			best = ws
			victim = vm
		}
	}
	if victim == nil {
		return VictimLargest(vms)
	}
	return victim
}
