package hypervisor

import (
	"testing"
	"testing/quick"

	"repro/internal/mem"
	"repro/internal/simclock"
)

const pg = mem.DefaultPageSize

func newHost(t *testing.T, ramPages int) *Host {
	t.Helper()
	return NewHost(Config{Name: "test", RAMBytes: int64(ramPages) * pg}, simclock.New())
}

func TestHostKernelReserve(t *testing.T) {
	h := NewHost(Config{Name: "t", RAMBytes: 64 * pg, KernelReserveBytes: 16 * pg}, simclock.New())
	if got := h.Phys().FramesInUse(); got != 16 {
		t.Fatalf("frames in use after reserve = %d, want 16", got)
	}
}

func TestVMDemandPaging(t *testing.T) {
	h := newHost(t, 64)
	vm := h.NewVM(VMConfig{Name: "vm1", GuestMemBytes: 32 * pg, Seed: 1})
	if h.Phys().FramesInUse() != 0 {
		t.Fatalf("guest memory eagerly allocated: %d frames", h.Phys().FramesInUse())
	}
	vm.TouchGuestPage(0, false)
	vm.TouchGuestPage(5, true)
	if got := vm.Stats().ResidentPages; got != 2 {
		t.Fatalf("resident = %d, want 2", got)
	}
	if got := vm.Stats().MinorFaults; got != 2 {
		t.Fatalf("minor faults = %d, want 2", got)
	}
	// Re-touch costs nothing.
	vm.TouchGuestPage(0, true)
	if got := vm.Stats().MinorFaults; got != 2 {
		t.Fatalf("re-touch minor faults = %d, want 2", got)
	}
}

func TestVMOverheadPopulated(t *testing.T) {
	h := newHost(t, 64)
	vm := h.NewVM(VMConfig{Name: "vm1", GuestMemBytes: 8 * pg, OverheadBytes: 4 * pg, Seed: 1})
	if got := vm.Stats().ResidentPages; got != 4 {
		t.Fatalf("overhead resident = %d, want 4", got)
	}
	// Overhead content is per-VM: two VMs must not have identical pages.
	vm2 := h.NewVM(VMConfig{Name: "vm2", GuestMemBytes: 8 * pg, OverheadBytes: 4 * pg, Seed: 2})
	f1, ok1 := vm.ResolveResident(vm.overheadStart)
	f2, ok2 := vm2.ResolveResident(vm2.overheadStart)
	if !ok1 || !ok2 {
		t.Fatal("overhead pages not resident")
	}
	if h.Phys().Equal(f1, f2) {
		t.Fatal("per-VM overhead pages are identical; seeds not applied")
	}
}

func TestWriteReadGuestPage(t *testing.T) {
	h := newHost(t, 64)
	vm := h.NewVM(VMConfig{Name: "vm1", GuestMemBytes: 8 * pg, Seed: 1})
	vm.WriteGuestPage(3, 128, []byte{0xde, 0xad})
	b := vm.ReadGuestPage(3)
	if b[128] != 0xde || b[129] != 0xad {
		t.Fatalf("read back %v", b[128:130])
	}
}

func TestFillAndZeroGuestPage(t *testing.T) {
	h := newHost(t, 64)
	vm := h.NewVM(VMConfig{Name: "vm1", GuestMemBytes: 8 * pg, Seed: 1})
	vm.FillGuestPage(2, 42)
	f, _ := vm.ResolveResident(vm.GPFNToHostVPN(2))
	if h.Phys().IsZero(f) {
		t.Fatal("filled page is zero")
	}
	vm.ZeroGuestPage(2)
	if !h.Phys().IsZero(f) {
		t.Fatal("zeroed page is not zero")
	}
}

func TestReleaseGuestPage(t *testing.T) {
	h := newHost(t, 64)
	vm := h.NewVM(VMConfig{Name: "vm1", GuestMemBytes: 8 * pg, Seed: 1})
	vm.FillGuestPage(1, 9)
	before := h.Phys().FramesInUse()
	vm.ReleaseGuestPage(1)
	if h.Phys().FramesInUse() != before-1 {
		t.Fatal("release did not free the frame")
	}
	// Next touch gets a fresh zero page.
	b := vm.ReadGuestPage(1)
	for _, c := range b {
		if c != 0 {
			t.Fatal("page content survived release")
		}
	}
}

func TestSwapEvictionAndMajorFault(t *testing.T) {
	// 8 RAM pages, guest wants 16: forced eviction.
	h := newHost(t, 8)
	vm := h.NewVM(VMConfig{Name: "vm1", GuestMemBytes: 32 * pg, Seed: 1})
	for i := uint64(0); i < 16; i++ {
		vm.FillGuestPage(i, mem.Seed(100+i))
	}
	if h.Stats().SwapOuts == 0 {
		t.Fatal("no swap-outs under memory pressure")
	}
	if vm.Stats().ResidentPages > 8 {
		t.Fatalf("resident %d exceeds RAM", vm.Stats().ResidentPages)
	}
	// Read back an early page: contents must survive the swap round-trip.
	b := vm.ReadGuestPage(0)
	want := mem.FillBytes(pg, 100)
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("swapped page content corrupted at byte %d", i)
		}
	}
	if vm.Stats().MajorFaults == 0 {
		t.Fatal("swap-in did not count a major fault")
	}
}

func TestSwapZeroPagesCheap(t *testing.T) {
	h := newHost(t, 8)
	vm := h.NewVM(VMConfig{Name: "vm1", GuestMemBytes: 32 * pg, Seed: 1})
	for i := uint64(0); i < 20; i++ {
		vm.TouchGuestPage(i, true) // zero pages
	}
	// Swap store holds zero pages as nil slots: they occupy slot numbers but
	// cost no backing bytes (zswap-style same-filled accounting).
	if h.SwapUsedSlots() == 0 {
		t.Fatal("expected swap slot occupancy")
	}
	if h.SwapUsedBytes() != 0 {
		t.Fatalf("all-zero swap slots should charge no bytes, got %d", h.SwapUsedBytes())
	}
	b := vm.ReadGuestPage(0)
	for _, c := range b {
		if c != 0 {
			t.Fatal("zero page corrupted by swap round-trip")
		}
	}
}

func TestCOWBreakOnSharedWrite(t *testing.T) {
	h := newHost(t, 64)
	vm1 := h.NewVM(VMConfig{Name: "vm1", GuestMemBytes: 8 * pg, Seed: 1})
	vm2 := h.NewVM(VMConfig{Name: "vm2", GuestMemBytes: 8 * pg, Seed: 2})
	vm1.FillGuestPage(0, 7)
	vm2.FillGuestPage(0, 7)

	// Manually merge as KSM would: vm2's page 0 remaps to vm1's frame.
	vpn1 := vm1.GPFNToHostVPN(0)
	vpn2 := vm2.GPFNToHostVPN(0)
	f1, _ := vm1.ResolveResident(vpn1)
	h.Phys().SetKSM(f1, true)
	vm1.WriteProtect(vpn1)
	h.Phys().IncRef(f1)
	vm2.RemapShared(vpn2, f1)

	if h.Phys().RefCount(f1) != 2 {
		t.Fatalf("refcount = %d, want 2", h.Phys().RefCount(f1))
	}

	var broke []mem.FrameID
	h.OnCOWBreak = func(_ *VMProcess, _ mem.VPN, old mem.FrameID) { broke = append(broke, old) }

	vm2.WriteGuestPage(0, 0, []byte{1})
	if len(broke) != 1 || broke[0] != f1 {
		t.Fatalf("COW break hook = %v, want [%d]", broke, f1)
	}
	if h.Phys().RefCount(f1) != 1 {
		t.Fatalf("stable frame refcount after break = %d, want 1", h.Phys().RefCount(f1))
	}
	// vm1's view is unchanged; vm2 diverged.
	b1 := vm1.ReadGuestPage(0)
	b2 := vm2.ReadGuestPage(0)
	if b1[0] == b2[0] {
		t.Fatal("write leaked through COW sharing")
	}
	if h.Stats().COWBreaks != 1 {
		t.Fatalf("host COW breaks = %d, want 1", h.Stats().COWBreaks)
	}
}

func TestSharedPagesNotEvicted(t *testing.T) {
	h := newHost(t, 8)
	vm1 := h.NewVM(VMConfig{Name: "vm1", GuestMemBytes: 32 * pg, Seed: 1})
	vm2 := h.NewVM(VMConfig{Name: "vm2", GuestMemBytes: 32 * pg, Seed: 2})
	vm1.FillGuestPage(0, 7)
	vm2.FillGuestPage(0, 7)
	vpn1 := vm1.GPFNToHostVPN(0)
	f1, _ := vm1.ResolveResident(vpn1)
	h.Phys().SetKSM(f1, true)
	vm1.WriteProtect(vpn1)
	h.Phys().IncRef(f1)
	vm2.RemapShared(vm2.GPFNToHostVPN(0), f1)

	// Thrash with private pages; the stable frame must remain resident.
	for i := uint64(1); i < 20; i++ {
		vm1.FillGuestPage(i, mem.Seed(i))
	}
	if got, ok := vm1.ResolveResident(vpn1); !ok || got != f1 {
		t.Fatal("KSM stable page was evicted")
	}
}

func TestGPFNOutOfRangePanics(t *testing.T) {
	h := newHost(t, 8)
	vm := h.NewVM(VMConfig{Name: "vm1", GuestMemBytes: 4 * pg, Seed: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range gpfn did not panic")
		}
	}()
	vm.TouchGuestPage(4, false)
}

func TestMergeableRegionsCoverGuestOnly(t *testing.T) {
	h := newHost(t, 64)
	vm := h.NewVM(VMConfig{Name: "vm1", GuestMemBytes: 8 * pg, OverheadBytes: 4 * pg, Seed: 1})
	regs := vm.MergeableRegions()
	if len(regs) != 1 {
		t.Fatalf("regions = %d, want 1", len(regs))
	}
	r := regs[0]
	if r.Start != vm.MemslotBase() || r.End != vm.MemslotBase()+8 {
		t.Fatalf("region [%d,%d), want [%d,%d)", r.Start, r.End, vm.MemslotBase(), vm.MemslotBase()+8)
	}
	if vm.overheadStart < r.End {
		t.Fatal("overhead overlaps the mergeable region")
	}
}

// Property: any sequence of fill/zero/release on distinct pages keeps the
// frame accounting consistent (resident + free + reserved == total).
func TestPropertyFrameAccounting(t *testing.T) {
	f := func(ops []uint8) bool {
		h := NewHost(Config{Name: "p", RAMBytes: 32 * pg}, simclock.New())
		vm := h.NewVM(VMConfig{Name: "vm", GuestMemBytes: 16 * pg, Seed: 3})
		for i, op := range ops {
			gpfn := uint64(op % 16)
			switch (int(op) + i) % 3 {
			case 0:
				vm.FillGuestPage(gpfn, mem.Seed(op))
			case 1:
				vm.ZeroGuestPage(gpfn)
			case 2:
				vm.ReleaseGuestPage(gpfn)
			}
		}
		inUse := h.Phys().FramesInUse()
		free := h.Phys().FreeFrames()
		if inUse+free != h.Phys().TotalFrames() {
			return false
		}
		return vm.Stats().ResidentPages == inUse
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: swap round-trips preserve content for arbitrary page seeds.
func TestPropertySwapPreservesContent(t *testing.T) {
	f := func(seeds []uint16) bool {
		if len(seeds) == 0 {
			return true
		}
		if len(seeds) > 24 {
			seeds = seeds[:24]
		}
		h := NewHost(Config{Name: "p", RAMBytes: 8 * pg}, simclock.New())
		vm := h.NewVM(VMConfig{Name: "vm", GuestMemBytes: 32 * pg, Seed: 3})
		for i, s := range seeds {
			vm.FillGuestPage(uint64(i), mem.Seed(s)+1000)
		}
		for i, s := range seeds {
			got := vm.ReadGuestPage(uint64(i))
			want := mem.FillBytes(pg, mem.Seed(s)+1000)
			for j := range want {
				if got[j] != want[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
