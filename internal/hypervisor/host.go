// Package hypervisor models a process-VM host in the style of KVM
// (paper Fig. 1(b)): each guest VM is a host process whose host-virtual
// address space contains the guest's physical memory through a memslot
// mapping. Three translation layers exist, exactly as the paper's
// measurement methodology requires:
//
//	guest virtual --(guest page table, internal/guestos)--> guest physical
//	guest physical --(memslot)--> host virtual (of the VM process)
//	host virtual --(host page table, this package)--> host physical frame
//
// The host demand-pages guest memory, shares frames copy-on-write (KSM
// merges install shared mappings here), and evicts resident pages to a swap
// store when physical memory runs out. Swap-ins are the "major faults" that
// the performance model in internal/core turns into request latency.
package hypervisor

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/simclock"
)

// Config describes a host machine.
type Config struct {
	// Name labels the host in reports (e.g. "BladeCenter LS21").
	Name string
	// RAMBytes is the physical memory size (already divided by the
	// experiment's MemScale when the caller scales the scenario down).
	RAMBytes int64
	// PageSize is the base page size; zero means mem.DefaultPageSize.
	PageSize int
	// KernelReserveBytes is carved out at boot for the host kernel and
	// never available to guests.
	KernelReserveBytes int64
	// SwapBytes bounds the swap store; zero means effectively unbounded
	// (the paper's hosts never exhausted swap, only thrashed).
	SwapBytes int64
	// DirtyLog gives every VM process a bounded dirty-page ring in the
	// style of Intel PML: demand faults, swap-ins, write accesses and
	// huge-page splits append the guest frame number, and the KSM scanner
	// drains the rings for incremental rescans. Off (the default) no rings
	// exist and every code path is byte-identical to earlier releases.
	DirtyLog bool
	// DirtyRingPages bounds each VM's ring in distinct pages per drain
	// cycle (0 = mem.DefaultDirtyRingPages). An overflowing ring forces a
	// conservative full rescan of that VM.
	DirtyRingPages int
}

// Host is a physical machine running guest VM processes.
type Host struct {
	cfg   Config
	clock *simclock.Clock
	phys  *mem.PhysMem

	vms  []*VMProcess
	swap *swapStore
	// nextVMSlot numbers VM processes monotonically; slots are never reused
	// even after a kill, so ids and memslot bases stay unique for the host's
	// lifetime.
	nextVMSlot int

	// kernelFrames are the frames pinned at boot for the host kernel; the
	// leak checker needs to know who owns them.
	kernelFrames []mem.FrameID

	// claimed is the host's demand ledger: frames taken from the pool for
	// host-side needs (fault injection's memory-demand spikes) and not mapped
	// by any VM. They pin until ReleaseClaimed.
	claimed []mem.FrameID

	// evictQueue approximates LRU: mappings enter at the tail when they are
	// first mapped or swapped back in, and eviction pops from the head with
	// lazy validation. Hot pages that get evicted fault straight back in and
	// rejoin at the tail, so the head converges on the cold set.
	evictQueue []mapping

	// OnCOWBreak, if set, is invoked after a copy-on-write fault has been
	// resolved. The KSM scanner registers itself here to keep its sharing
	// statistics exact.
	OnCOWBreak func(vm *VMProcess, vpn mem.VPN, oldFrame mem.FrameID)

	// OnHugeSplit, if set, is invoked after a huge mapping has been split
	// back into base pages (by the evictor, KSM, or a guest release). The
	// THP daemon registers itself here to count splits it didn't initiate.
	OnHugeSplit func(vm *VMProcess, head mem.VPN)

	// OnPartialSplit, if set, is invoked after n subpages have been carved
	// out of the huge mapping headed at head (the FHPM partial split). The
	// THP daemon registers itself here to count KSM-initiated carves.
	OnPartialSplit func(vm *VMProcess, head mem.VPN, n int)

	stats HostStats
}

// HostStats aggregates host-level counters.
type HostStats struct {
	MajorFaults   uint64 // swap-ins
	SwapOuts      uint64
	COWBreaks     uint64
	MinorFaults   uint64 // first-touch demand mappings
	Collapses     uint64 // huge-page collapses (khugepaged successes)
	HugeSplits    uint64 // huge mappings split back to base pages
	PartialSplits uint64 // subpages carved out of huge mappings (FHPM)
	Reabsorbs     uint64 // carved blocks re-promoted to full huge mappings
	Kills         uint64 // VM processes torn down by KillVM
	Restarts      uint64 // VM processes rebooted by RestartVM
}

// mapping identifies one PTE in one VM process, for the eviction queue.
type mapping struct {
	vm  *VMProcess
	vpn mem.VPN
}

// NewHost boots a host with the given configuration and virtual clock.
func NewHost(cfg Config, clock *simclock.Clock) *Host {
	if cfg.PageSize == 0 {
		cfg.PageSize = mem.DefaultPageSize
	}
	if cfg.RAMBytes < int64(cfg.PageSize) {
		panic(fmt.Sprintf("hypervisor: host RAM %d smaller than a page", cfg.RAMBytes))
	}
	h := &Host{
		cfg:   cfg,
		clock: clock,
		phys:  mem.NewPhysMem(cfg.RAMBytes, cfg.PageSize),
		swap:  newSwapStore(cfg.SwapBytes, cfg.PageSize),
	}
	h.reserveKernel(cfg.KernelReserveBytes)
	return h
}

// reserveKernel pins frames for the host kernel itself. The frames carry
// host-unique content so they never merge with guest pages.
func (h *Host) reserveKernel(bytes int64) {
	pages := int(bytes / int64(h.cfg.PageSize))
	seed := mem.Combine(mem.HashString("host-kernel"), mem.HashString(h.cfg.Name))
	for i := 0; i < pages; i++ {
		id, err := h.phys.Alloc()
		if err != nil {
			panic("hypervisor: host kernel reserve exceeds RAM")
		}
		h.phys.FillFrame(id, mem.Combine(seed, mem.Seed(i)))
		h.kernelFrames = append(h.kernelFrames, id)
	}
}

// Clock returns the host's virtual clock.
func (h *Host) Clock() *simclock.Clock { return h.clock }

// Phys exposes the physical frame pool (the KSM scanner and the analyzer
// need direct frame access).
func (h *Host) Phys() *mem.PhysMem { return h.phys }

// PageSize reports the base page size in bytes.
func (h *Host) PageSize() int { return h.cfg.PageSize }

// Name reports the host's label.
func (h *Host) Name() string { return h.cfg.Name }

// VMs returns the guest VM processes in creation order.
func (h *Host) VMs() []*VMProcess { return h.vms }

// Stats returns a snapshot of host counters.
func (h *Host) Stats() HostStats { return h.stats }

// DirtyLogEnabled reports whether VM processes carry dirty-page rings.
func (h *Host) DirtyLogEnabled() bool { return h.cfg.DirtyLog }

// SwapUsedBytes reports the current swap disk occupancy. Zero-page slots
// occupy a slot but no disk bytes (see swapStore.usedBytes).
func (h *Host) SwapUsedBytes() int64 { return h.swap.usedBytes() }

// SwapUsedSlots reports how many swap slots are occupied, zero-page slots
// included.
func (h *Host) SwapUsedSlots() int { return h.swap.usedSlots() }

// FreeBytes reports unallocated physical memory.
func (h *Host) FreeBytes() int64 {
	return int64(h.phys.FreeFrames()) * int64(h.cfg.PageSize)
}

// allocFrame obtains a free frame, evicting resident pages to swap when the
// pool is exhausted.
func (h *Host) allocFrame() mem.FrameID {
	for {
		id, err := h.phys.Alloc()
		if err == nil {
			return id
		}
		if !h.evictOne() {
			panic("hypervisor: out of memory and nothing evictable (swap full or all pages shared)")
		}
	}
}

// evictOne pushes one resident page to swap using second-chance (clock)
// replacement: recently-touched pages get their referenced bit cleared and
// another trip around the queue, so the victim is globally cold regardless
// of which VM owns it — approximating Linux's global LRU. KSM stable pages
// and shared COW pages are skipped: evicting them would need reverse
// mappings we don't model, and the cold tail is dominated by private
// anonymous pages anyway.
func (h *Host) evictOne() bool {
	// Bounded: each iteration evicts, drops a stale/shared entry, or clears
	// one referenced bit; after two full rotations something must give.
	for spins := 2*len(h.evictQueue) + 1; spins > 0 && len(h.evictQueue) > 0; spins-- {
		m := h.evictQueue[0]
		h.evictQueue = h.evictQueue[1:]
		pte, ok := m.vm.hpt.Lookup(m.vpn)
		if !ok || pte.Swapped || pte.Frame == mem.NilFrame {
			continue // stale entry
		}
		if pte.Huge {
			// Huge mappings get the same second chance, tracked on the head
			// entry; a cold huge page is split so its base pages can be
			// evicted individually on later spins (Linux splits huge pages
			// on reclaim the same way).
			head := mem.HugeAlign(m.vpn)
			he, _ := m.vm.hpt.Lookup(head)
			if he.Accessed {
				he.Accessed = false
				m.vm.hpt.Set(head, he)
				h.evictQueue = append(h.evictQueue, m)
				continue
			}
			m.vm.SplitHuge(head)
			// SplitHuge re-queued the run's base pages; reset the budget to
			// cover the grown queue.
			spins = 2*len(h.evictQueue) + 1
			continue
		}
		if h.phys.IsKSM(pte.Frame) || h.phys.RefCount(pte.Frame) > 1 {
			continue // shared: unevictable; re-queued on COW break
		}
		if pte.Accessed {
			pte.Accessed = false
			m.vm.hpt.Set(m.vpn, pte)
			h.evictQueue = append(h.evictQueue, m)
			continue
		}
		slot, ok := h.swap.out(h.phys, pte.Frame)
		if !ok {
			// Swap full; put the mapping back and give up.
			h.evictQueue = append(h.evictQueue, m)
			return false
		}
		h.phys.DecRef(pte.Frame)
		m.vm.hpt.Set(m.vpn, mem.PTE{Frame: mem.NilFrame, Swapped: true, SwapSlot: slot, Writable: pte.Writable})
		m.vm.stats.ResidentPages--
		m.vm.stats.SwappedPages++
		h.stats.SwapOuts++
		return true
	}
	return false
}

// noteMapped registers a freshly mapped page with the eviction queue.
func (h *Host) noteMapped(vm *VMProcess, vpn mem.VPN) {
	h.evictQueue = append(h.evictQueue, mapping{vm: vm, vpn: vpn})
}

// now returns the current virtual time as an int64 for PTE bookkeeping.
func (h *Host) now() int64 { return int64(h.clock.Now()) }
