package hypervisor

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/simclock"
)

func TestBoundedSwapRefusesEviction(t *testing.T) {
	// 8 RAM pages, swap bounded to 4 pages: after 4 evictions the store is
	// full, the next allocation beyond RAM+swap must panic loudly instead of
	// silently corrupting state.
	h := NewHost(Config{Name: "t", RAMBytes: 8 * pg, SwapBytes: 4 * pg}, simclock.New())
	vm := h.NewVM(VMConfig{Name: "vm", GuestMemBytes: 32 * pg, Seed: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("no panic when RAM and swap are both exhausted")
		}
		if h.SwapUsedBytes() != 4*pg {
			t.Fatalf("swap used %d, want full 4 pages", h.SwapUsedBytes())
		}
	}()
	for i := uint64(0); i < 16; i++ {
		vm.FillGuestPage(i, mem.Seed(100+i))
	}
}

func TestSwapSlotsRecycled(t *testing.T) {
	h := NewHost(Config{Name: "t", RAMBytes: 8 * pg}, simclock.New())
	vm := h.NewVM(VMConfig{Name: "vm", GuestMemBytes: 64 * pg, Seed: 1})
	// Cycle a working set larger than RAM several times; swap occupancy must
	// stay bounded by (working set - RAM), not grow monotonically.
	for round := 0; round < 5; round++ {
		for i := uint64(0); i < 16; i++ {
			vm.FillGuestPage(i, mem.Combine(mem.Seed(round), mem.Seed(i)))
		}
	}
	if used := h.SwapUsedBytes(); used > 16*pg {
		t.Fatalf("swap leaked slots: %d bytes", used)
	}
	if h.Stats().MajorFaults == 0 {
		t.Fatal("no refaults during cycling")
	}
}

// TestSwapByteAccountingAcrossCycle pins the simulated swap-byte totals for
// every content flavour across a full swap-out/swap-in cycle: the handle
// refactor dedupes the simulator's Go heap, but the modelled disk must
// charge exactly what the byte-copying store charged — full page size per
// non-zero slot, nothing for zero slots (lazy or materialized all-zero
// alike, the PR-4 zero-slot rule).
func TestSwapByteAccountingAcrossCycle(t *testing.T) {
	pm := mem.NewPhysMem(16*pg, pg)
	s := newSwapStore(0, pg)

	alloc := func() mem.FrameID {
		id, err := pm.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		return id
	}
	lazyZero := alloc()
	seeded := alloc()
	written := alloc()
	zeroedBack := alloc()
	pm.FillFrame(seeded, mem.Seed(7))
	pm.Write(written, 0, []byte{1, 2, 3})
	pm.Write(zeroedBack, 0, []byte{9, 9, 9})
	pm.Write(zeroedBack, 0, []byte{0, 0, 0}) // materialized, content all zero again

	frames := []mem.FrameID{lazyZero, seeded, written, zeroedBack}
	want := make([][]byte, len(frames))
	for i, f := range frames {
		want[i] = append([]byte(nil), pm.Bytes(f)...)
	}

	slots := make([]uint32, len(frames))
	for i, f := range frames {
		slot, ok := s.out(pm, f)
		if !ok {
			t.Fatalf("swap store refused frame %d", f)
		}
		slots[i] = slot
		pm.DecRef(f)
	}
	// Two of the four pages are zero content: only the seeded and written
	// pages may be charged, at full page size each.
	if got := s.usedBytes(); got != 2*pg {
		t.Fatalf("swapped out: usedBytes %d, want %d", got, 2*pg)
	}
	if got := s.usedSlots(); got != 4 {
		t.Fatalf("swapped out: usedSlots %d, want 4", got)
	}

	for i, slot := range slots {
		f := alloc()
		s.in(pm, slot, f)
		if !bytesEqual(pm.Bytes(f), want[i]) {
			t.Fatalf("slot %d: content corrupted across swap cycle", slot)
		}
		frames[i] = f
	}
	if s.usedBytes() != 0 || s.usedSlots() != 0 {
		t.Fatalf("swapped in: store not drained (%d bytes, %d slots)",
			s.usedBytes(), s.usedSlots())
	}

	// Second cycle through recycled slots charges identically.
	for i, f := range frames {
		slots[i], _ = s.out(pm, f)
		pm.DecRef(f)
	}
	if got := s.usedBytes(); got != 2*pg {
		t.Fatalf("second cycle: usedBytes %d, want %d", got, 2*pg)
	}
	for _, slot := range slots {
		s.drop(pm, slot)
	}
	if s.usedBytes() != 0 || s.usedSlots() != 0 {
		t.Fatal("dropped slots not drained")
	}
	if cs := pm.ContentStats(); cs.Blobs != 0 {
		t.Fatalf("content store leaked %d blobs after drain", cs.Blobs)
	}
}

// TestSwapSlotsShareIdenticalContent checks the side effect the handle
// store buys for free: slots holding byte-identical pages alias one content
// blob in the simulator while still charging full disk bytes each.
func TestSwapSlotsShareIdenticalContent(t *testing.T) {
	pm := mem.NewPhysMem(16*pg, pg)
	s := newSwapStore(0, pg)
	payload := []byte{4, 2}
	var frames []mem.FrameID
	for i := 0; i < 3; i++ {
		f, err := pm.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		pm.Write(f, 0, payload)
		frames = append(frames, f)
	}
	// Three independently written pages hold three private buffers; swap-out
	// interns them onto one shared blob.
	if got := pm.ContentStats().Blobs; got != 3 {
		t.Fatalf("before swap: %d blobs, want 3 private buffers", got)
	}
	for _, f := range frames {
		if _, ok := s.out(pm, f); !ok {
			t.Fatal("swap store refused")
		}
		pm.DecRef(f)
	}
	if got := pm.ContentStats().Blobs; got != 1 {
		t.Fatalf("after swap: %d blobs, want the 3 slots sharing 1", got)
	}
	if got := s.usedBytes(); got != 3*pg {
		t.Fatalf("usedBytes %d: dedup must not discount simulated disk (want %d)", got, 3*pg)
	}
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestReleaseWhileSwappedDropsSlot(t *testing.T) {
	h := NewHost(Config{Name: "t", RAMBytes: 8 * pg}, simclock.New())
	vm := h.NewVM(VMConfig{Name: "vm", GuestMemBytes: 64 * pg, Seed: 1})
	for i := uint64(0); i < 16; i++ {
		vm.FillGuestPage(i, mem.Seed(i))
	}
	before := h.SwapUsedBytes()
	if before == 0 {
		t.Fatal("nothing swapped")
	}
	// Release every guest page; swap must drain completely.
	for i := uint64(0); i < 16; i++ {
		vm.ReleaseGuestPage(i)
	}
	if h.SwapUsedBytes() != 0 {
		t.Fatalf("swap not drained: %d", h.SwapUsedBytes())
	}
	if vm.Stats().SwappedPages != 0 {
		t.Fatalf("swapped count %d after releasing all", vm.Stats().SwappedPages)
	}
}
