package hypervisor

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/simclock"
)

func TestBoundedSwapRefusesEviction(t *testing.T) {
	// 8 RAM pages, swap bounded to 4 pages: after 4 evictions the store is
	// full, the next allocation beyond RAM+swap must panic loudly instead of
	// silently corrupting state.
	h := NewHost(Config{Name: "t", RAMBytes: 8 * pg, SwapBytes: 4 * pg}, simclock.New())
	vm := h.NewVM(VMConfig{Name: "vm", GuestMemBytes: 32 * pg, Seed: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("no panic when RAM and swap are both exhausted")
		}
		if h.SwapUsedBytes() != 4*pg {
			t.Fatalf("swap used %d, want full 4 pages", h.SwapUsedBytes())
		}
	}()
	for i := uint64(0); i < 16; i++ {
		vm.FillGuestPage(i, mem.Seed(100+i))
	}
}

func TestSwapSlotsRecycled(t *testing.T) {
	h := NewHost(Config{Name: "t", RAMBytes: 8 * pg}, simclock.New())
	vm := h.NewVM(VMConfig{Name: "vm", GuestMemBytes: 64 * pg, Seed: 1})
	// Cycle a working set larger than RAM several times; swap occupancy must
	// stay bounded by (working set - RAM), not grow monotonically.
	for round := 0; round < 5; round++ {
		for i := uint64(0); i < 16; i++ {
			vm.FillGuestPage(i, mem.Combine(mem.Seed(round), mem.Seed(i)))
		}
	}
	if used := h.SwapUsedBytes(); used > 16*pg {
		t.Fatalf("swap leaked slots: %d bytes", used)
	}
	if h.Stats().MajorFaults == 0 {
		t.Fatal("no refaults during cycling")
	}
}

func TestReleaseWhileSwappedDropsSlot(t *testing.T) {
	h := NewHost(Config{Name: "t", RAMBytes: 8 * pg}, simclock.New())
	vm := h.NewVM(VMConfig{Name: "vm", GuestMemBytes: 64 * pg, Seed: 1})
	for i := uint64(0); i < 16; i++ {
		vm.FillGuestPage(i, mem.Seed(i))
	}
	before := h.SwapUsedBytes()
	if before == 0 {
		t.Fatal("nothing swapped")
	}
	// Release every guest page; swap must drain completely.
	for i := uint64(0); i < 16; i++ {
		vm.ReleaseGuestPage(i)
	}
	if h.SwapUsedBytes() != 0 {
		t.Fatalf("swap not drained: %d", h.SwapUsedBytes())
	}
	if vm.Stats().SwappedPages != 0 {
		t.Fatalf("swapped count %d after releasing all", vm.Stats().SwappedPages)
	}
}
